(* Reproduction harness: one experiment per table/figure of the paper.

     dune exec bench/main.exe                 -- run everything (quick)
     dune exec bench/main.exe -- fig4 fig7    -- selected experiments
     dune exec bench/main.exe -- --full fig4  -- paper-scale parameters

   Quick mode shrinks seeds / evaluation budgets so the whole harness
   finishes in a few minutes; --full restores the paper's scale.
   EXPERIMENTS.md records paper-vs-measured numbers. *)

open Netgraph
open Te

let full = ref false

(* --scale: the engine experiment's size-scaling sweep loads real
   TopologyZoo GraphML files from [data_dir] when present (see
   examples/fetch_topologyzoo.sh) instead of the synthetic stand-ins. *)
let scale = ref false

let data_dir = ref "examples/data"

(* Worker domains for the sharded sweeps (--jobs N).  The pool is
   created once in the driver; every experiment prints the same output
   for every pool size. *)
let the_pool = ref Par.Pool.sequential

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row fmt = Printf.printf fmt

let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* ------------------------------------------------------------------ *)
(* Shared BENCH_*.json writer                                          *)
(* ------------------------------------------------------------------ *)

(* Every benchmark JSON goes through {!Obs.Export.write_envelope}, so
   each file carries the same provenance stamp as the te-tool artifacts
   (schema version, git revision, host core count) plus a per-phase
   wall-time breakdown of the experiment that produced it.  [records]
   are pre-rendered JSON objects. *)
let phases_json phases =
  Printf.sprintf "{%s}"
    (String.concat ", "
       (List.map
          (fun (name, d) ->
            Printf.sprintf "%s: %.6f" (Obs.Export.json_str name) d)
          phases))

let write_bench ?(ctx : Obs.Ctx.t option) ?(version = 1) ?(extra = []) ~file
    ~bench records =
  let fields =
    (match ctx with
    | None -> []
    | Some ctx ->
      [ ("phases", phases_json (Obs.Tracer.phase_totals ctx.Obs.Ctx.tracer)) ])
    @ extra
  in
  Obs.Export.write_envelope ~path:file
    ~schema:(Printf.sprintf "bench/%s/%d" bench version)
    ~fields records;
  row "\nwrote %s (%d records)\n" file (List.length records)

(* The context a BENCH-writing experiment runs under: a live tracer (for
   the phase breakdown) over the driver's pool. *)
let bench_ctx () =
  Obs.Ctx.make ~tracer:(Obs.Tracer.create ()) ~pool:!the_pool ()

let fmin xs = List.fold_left min infinity xs

let fmax xs = List.fold_left max neg_infinity xs

(* ------------------------------------------------------------------ *)
(* Shared algorithm ladder (Figures 4, 5, 6)                           *)
(* ------------------------------------------------------------------ *)

let ls_params ~seed ~evals =
  { Local_search.default_params with max_evals = evals; seed }

(* GradWO needs the exact min-MLU LP (its gradient descends on the
   per-edge optimal flows); above this variable count the solve would
   dwarf the heuristics it is compared against, so the ladder and the
   solver frontier skip it and say so.  1 + |targets| * |E| mirrors the
   LP layout in lib/mcf. *)
let grad_lp_limit = 3000

let lp_var_count g demands =
  let targets = Hashtbl.create 16 in
  Array.iter
    (fun (_, d, _) -> Hashtbl.replace targets d ())
    (Network.to_commodities demands);
  1 + (Hashtbl.length targets * Digraph.edge_count g)

(* The four heuristics of Figure 4, in the paper's order, plus the two
   diversity backends: OMW splitting on top of the HeurOSPF weights,
   and GradWO where its LP fits under [grad_lp_limit]. *)
let ladder g demands ~seed ~evals =
  let inv_w = Weights.inverse_capacity g in
  let inv = Ecmp.mlu_of g inv_w demands in
  let ls = Local_search.optimize_ctx (Obs.Ctx.default ()) ~params:(ls_params ~seed ~evals) g demands in
  let greedy = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) g inv_w demands in
  let joint =
    Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params:(ls_params ~seed ~evals) g demands
  in
  let omw =
    Omw.optimize_ctx (Obs.Ctx.default ()) g ls.Local_search.weights demands
  in
  [ ("InverseCapacity", inv); ("HeurOSPF", ls.Local_search.mlu);
    ("GreedyWaypoints", greedy.Greedy_wpo.mlu); ("JointHeur", joint.Joint.mlu);
    ("OMW", omw.Omw.mlu) ]
  @
  if lp_var_count g demands <= grad_lp_limit then
    [ ("GradWO", (Grad_wo.optimize_ctx (Obs.Ctx.default ()) g demands).Grad_wo.mlu) ]
  else []

let alg_names =
  [ "InverseCapacity"; "HeurOSPF"; "GreedyWaypoints"; "JointHeur"; "OMW";
    "GradWO" ]

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let exp_table1 () =
  section "Table 1: TE gaps for single source-target demands";
  row "Lower bounds (measured gap = separate-optimization MLU / Joint MLU):\n\n";
  row "%-34s %-12s %4s %12s %14s\n" "instance / weight setting" "capacities" "W"
    "measured" "paper bound";
  let sizes = if !full then [ 4; 8; 16; 32 ] else [ 4; 8; 16 ] in
  (* W = 1 rows: TE-Instance 1 (Theorem 3.4). *)
  List.iter
    (fun m ->
      let inst = Instances.Gap_instances.instance1 ~m in
      let net = inst.Instances.Gap_instances.network in
      let g = net.Network.graph in
      let joint =
        Ecmp.mlu_of ~waypoints:inst.Instances.Gap_instances.joint_waypoints g
          inst.Instances.Gap_instances.joint_weights net.Network.demands
      in
      let lwo =
        Ecmp.mlu_of g
          (Option.get inst.Instances.Gap_instances.lwo_weights)
          net.Network.demands
      in
      let wpo_unit =
        if m <= 4 then
          snd (Exact.wpo g (Weights.unit g) net.Network.demands)
        else
          (Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) g (Weights.unit g) net.Network.demands).Greedy_wpo.mlu
      in
      row "%-34s %-12s %4d %12.2f %14s\n"
        (Printf.sprintf "I1(m=%d) optimal-LWO weights" m)
        "arbitrary" 1 (lwo /. joint)
        (Printf.sprintf "Omega(n)=%g" (float_of_int m /. 2.));
      row "%-34s %-12s %4d %12.2f %14s\n"
        (Printf.sprintf "I1(m=%d) unit weights, WPO" m)
        "arbitrary" 1 (wpo_unit /. joint)
        (Printf.sprintf ">=(n-1)/3=%g" (float_of_int m /. 3.)))
    sizes;
  (* W = 2 rows: TE-Instance 3 (Theorem 3.15 flavour). *)
  List.iter
    (fun m ->
      let inst = Instances.Gap_instances.instance3 ~m in
      let net = inst.Instances.Gap_instances.network in
      let g = net.Network.graph in
      let joint =
        Ecmp.mlu_of ~waypoints:inst.Instances.Gap_instances.joint_waypoints g
          inst.Instances.Gap_instances.joint_weights net.Network.demands
      in
      (* Approximately optimal LWO weights from Algorithm 1; on this
         instance they achieve the max ES-flow of 2, i.e. MLU = D/2. *)
      let apx =
        Lwo_apx.solve g ~source:inst.Instances.Gap_instances.source
          ~target:inst.Instances.Gap_instances.target
      in
      let lwo_apx = Ecmp.mlu_of g apx.Lwo_apx.weights net.Network.demands in
      let d = Network.total_demand net in
      row "%-34s %-12s %4d %12.2f %14s\n"
        (Printf.sprintf "I3(m=%d) LWO-APX weights" m)
        "arbitrary" 2 (lwo_apx /. joint)
        (Printf.sprintf "Omega(nlogn)~%.1f" (d /. 2.)))
    (if !full then [ 4; 8; 16 ] else [ 4; 8 ]);
  row "\nUpper bounds:\n\n";
  (* Theorem 4.2: uniform capacities -> gap 1. *)
  let g =
    Digraph.of_edges ~n:8
      [ (0, 1, 3.); (1, 7, 3.); (0, 2, 3.); (2, 7, 3.); (0, 3, 3.); (3, 4, 3.);
        (4, 7, 3.); (1, 4, 3.); (2, 3, 3.); (0, 7, 3.) ]
  in
  let demands = [| Network.demand 0 7 6. |] in
  let w = Lwo_apx.uniform_optimal_weights g ~source:0 ~target:7 in
  let lwo = Ecmp.mlu_of g w demands in
  let opt = Mcf.opt_mlu g [| { Mcf.src = 0; dst = 7; demand = 6. } |] in
  row "%-34s %-12s %4s %12.2f %14s\n" "Theorem 4.2 construction" "uniform" "-"
    (lwo /. opt) "= 1";
  (* Theorem 4.3: widest-path weights -> gap <= |P| <= |E|. *)
  let inst = Instances.Gap_instances.instance2 ~m:8 in
  let net = inst.Instances.Gap_instances.network in
  let g2 = net.Network.graph in
  let w2 =
    Lwo_apx.widest_path_weights g2 ~source:inst.Instances.Gap_instances.source
      ~target:inst.Instances.Gap_instances.target
  in
  let lwo2 = Ecmp.mlu_of g2 w2 net.Network.demands in
  let comms =
    Array.map
      (fun (d : Network.demand) ->
        { Mcf.src = d.Network.src; dst = d.Network.dst; demand = d.Network.size })
      net.Network.demands
  in
  let opt2 = Mcf.opt_mlu g2 comms in
  row "%-34s %-12s %4s %12.2f %14s\n" "Theorem 4.3 (I2 m=8, widest path)"
    "arbitrary" "-" (lwo2 /. opt2)
    (Printf.sprintf "<=|E|=%d" (Digraph.edge_count g2));
  (* Corollary 4.4 via LWO-APX on instance 3. *)
  let inst3 = Instances.Gap_instances.instance3 ~m:6 in
  let g3 = inst3.Instances.Gap_instances.network.Network.graph in
  let r =
    Lwo_apx.solve g3 ~source:inst3.Instances.Gap_instances.source
      ~target:inst3.Instances.Gap_instances.target
  in
  let n3 = float_of_int (Digraph.node_count g3) in
  row "%-34s %-12s %4s %12.2f %14s\n" "LWO-APX ratio (I3 m=6)" "arbitrary" "-"
    (Lwo_apx.approximation_ratio r)
    (Printf.sprintf "<=n*ln n=%.0f" (n3 *. Float.round (log n3)))

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let exp_fig1 () =
  section "Figure 1 / Lemmas 3.5-3.7: TE-Instance 1 gaps vs n";
  row "%6s %6s %10s %12s %12s %16s\n" "m" "n" "Joint" "LWO(opt w)" "WPO(unit)"
    "paper: m/2, >=m/3";
  let sizes = if !full then [ 4; 8; 16; 32; 64 ] else [ 4; 8; 16; 32 ] in
  List.iter
    (fun m ->
      let inst = Instances.Gap_instances.instance1 ~m in
      let net = inst.Instances.Gap_instances.network in
      let g = net.Network.graph in
      let joint =
        Ecmp.mlu_of ~waypoints:inst.Instances.Gap_instances.joint_waypoints g
          inst.Instances.Gap_instances.joint_weights net.Network.demands
      in
      let lwo =
        Ecmp.mlu_of g
          (Option.get inst.Instances.Gap_instances.lwo_weights)
          net.Network.demands
      in
      let wpo =
        (Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) g (Weights.unit g) net.Network.demands).Greedy_wpo.mlu
      in
      row "%6d %6d %10.3f %12.3f %12.3f %16s\n" m (m + 1) joint lwo wpo
        (Printf.sprintf "%.1f, %.1f" (float_of_int m /. 2.) (float_of_int m /. 3.)))
    sizes

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

let exp_fig2 () =
  section "Figure 2 / Lemmas 3.10-3.14: harmonic instances";
  row "(a) TE-Instance 2: max ES-flow vs max flow\n";
  row "%6s %12s %12s %14s\n" "m" "max-flow" "max ES-flow" "paper: H_m, 1";
  List.iter
    (fun m ->
      let inst = Instances.Gap_instances.instance2 ~m in
      let g = inst.Instances.Gap_instances.network.Network.graph in
      let f =
        Maxflow.max_flow g ~source:inst.Instances.Gap_instances.source
          ~target:inst.Instances.Gap_instances.target
      in
      let es =
        Ecmp.max_es_flow_value g (Weights.unit g)
          ~src:inst.Instances.Gap_instances.source
          ~dst:inst.Instances.Gap_instances.target
      in
      row "%6d %12.3f %12.3f %14.3f\n" m f.Maxflow.value es
        (Instances.Gap_instances.harmonic m))
    (if !full then [ 4; 8; 16; 32; 64 ] else [ 4; 8; 16 ]);
  row "\n(b,c) TE-Instances 3/4/5: Joint = 1 with 2 waypoints per half\n";
  row "%-14s %6s %10s %14s %18s\n" "instance" "n" "Joint" "LWO(APX w)" "paper: 1, ~D/2";
  List.iter
    (fun (name, inst) ->
      let net = inst.Instances.Gap_instances.network in
      let g = net.Network.graph in
      let joint =
        Ecmp.mlu_of ~waypoints:inst.Instances.Gap_instances.joint_waypoints g
          inst.Instances.Gap_instances.joint_weights net.Network.demands
      in
      let apx =
        Lwo_apx.solve g ~source:inst.Instances.Gap_instances.source
          ~target:inst.Instances.Gap_instances.target
      in
      let apx_mlu = Ecmp.mlu_of g apx.Lwo_apx.weights net.Network.demands in
      row "%-14s %6d %10.3f %14.3f %18.1f\n" name (Digraph.node_count g) joint
        apx_mlu
        (Network.total_demand net /. 2.))
    [ ("instance3", Instances.Gap_instances.instance3 ~m:6);
      ("instance4", Instances.Gap_instances.instance4 ~m:6);
      ("instance5", Instances.Gap_instances.instance5 ~m:4) ]

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)
(* ------------------------------------------------------------------ *)

let exp_fig3 () =
  section "Figure 3: effective capacities (Definition 5.1)";
  let show name (g, s, t) expected =
    row "%s:\n" name;
    let usable = Array.init (Digraph.edge_count g) (Digraph.cap g) in
    let ec = Lwo_apx.effective_capacities g ~usable ~source:s ~target:t in
    List.iter
      (fun (node, paper) ->
        let v = Digraph.node_of_name g node in
        row "  ec(%-3s) = %8.4f   (paper: %s)\n" node ec.Lwo_apx.node.(v) paper)
      expected;
    ignore s
  in
  show "Figure 3a" (Instances.Gap_instances.fig3a ())
    [ ("v1", "1/2"); ("v2", "2 x 1/4 = 1/2"); ("v3", "3/4"); ("s", "3/2") ];
  show "Figure 3b" (Instances.Gap_instances.fig3b ())
    [ ("v1", "2 x 1/6 = 1/3"); ("v2", "2 x 1/3 = 2/3"); ("v3", "1/2");
      ("v4", "1"); ("s", "2 x 1/3 = 2/3") ]

(* ------------------------------------------------------------------ *)
(* Figures 4 and 6                                                     *)
(* ------------------------------------------------------------------ *)

let run_ladder_table ~title ~names ~gen_demands ~seeds ~evals =
  section title;
  row "%-14s" "topology";
  List.iter (fun a -> row " %15s" a) alg_names;
  row "\n";
  (* One shard per (topology, demand matrix); the shards are mutually
     independent, so they fan out over the pool.  Each shard loads its
     own graph and generates its own demands, so no mutable state is
     shared between domains.  Aggregation walks the results in shard
     index order, which keeps the printed table identical for every
     --jobs. *)
  let shards =
    List.concat_map (fun name -> List.init seeds (fun s -> (name, s + 1))) names
    |> Array.of_list
  in
  let results =
    Par.Pool.map !the_pool ~tasks:(Array.length shards) (fun ~worker:_ i ->
        let name, seed = shards.(i) in
        let g = Topology.Datasets.load name in
        let demands = gen_demands g seed in
        ladder g demands ~seed ~evals)
  in
  let sums = Hashtbl.create 8 in
  List.iter (fun a -> Hashtbl.replace sums a []) alg_names;
  List.iteri
    (fun ni name ->
      let per_alg = Hashtbl.create 8 in
      List.iter (fun a -> Hashtbl.replace per_alg a []) alg_names;
      for s = 0 to seeds - 1 do
        List.iter
          (fun (a, v) ->
            Hashtbl.replace per_alg a (v :: Hashtbl.find per_alg a);
            Hashtbl.replace sums a (v :: Hashtbl.find sums a))
          results.((ni * seeds) + s)
      done;
      row "%-14s" name;
      List.iter
        (fun a ->
          match Hashtbl.find per_alg a with
          | [] -> row " %15s" "-"  (* GradWO skipped: LP too large *)
          | xs -> row " %15.3f" (mean xs))
        alg_names;
      row "\n%!")
    names;
  row "%-14s" "AVERAGE";
  List.iter
    (fun a ->
      match Hashtbl.find sums a with
      | [] -> row " %15s" "-"
      | xs -> row " %15.3f" (mean xs))
    alg_names;
  row "\n"

let exp_fig4 () =
  let seeds = if !full then 10 else 2 in
  let evals = if !full then 3000 else 400 in
  let gen g seed =
    let flows =
      if !full then max 1 (Digraph.edge_count g / 4)
      else max 2 (Digraph.edge_count g / 16)
    in
    let epsilon = if !full then 0.08 else 0.15 in
    Demand_gen.mcf_synthetic ~epsilon ~seed ~flows_per_pair:flows g
  in
  run_ladder_table
    ~title:
      (Printf.sprintf
         "Figure 4: MLU on the 10 largest topologies, MCF synthetic demands \
          (%d seeds; paper averages: 2.74 / 1.65 / - / 1.58)"
         seeds)
    ~names:Topology.Datasets.fig4_names ~gen_demands:gen ~seeds ~evals

let exp_fig6 () =
  let seeds = if !full then 10 else 3 in
  let evals = if !full then 3000 else 500 in
  let gen g seed = Demand_gen.gravity ~epsilon:0.15 ~seed g in
  run_ladder_table
    ~title:
      (Printf.sprintf
         "Figure 6: MLU under skewed all-pairs (real-like) demands (%d seeds; \
          paper averages: HeurOSPF 1.11 -> Joint 1.05)"
         seeds)
    ~names:Topology.Datasets.fig6_names ~gen_demands:gen ~seeds ~evals

(* ------------------------------------------------------------------ *)
(* Figure 5                                                            *)
(* ------------------------------------------------------------------ *)

let exp_fig5 () =
  section
    "Figure 5: heuristics vs exact references on Abilene (paper averages: \
     WPO 1.17, LWO 1.04, Joint 1.03)";
  let g = Topology.Datasets.abilene () in
  let seeds = if !full then 10 else 3 in
  let evals = if !full then 4000 else 800 in
  let flows = if !full then 7 else 2 in
  let acc = Hashtbl.create 16 in
  let push k v =
    Hashtbl.replace acc k (v :: (try Hashtbl.find acc k with Not_found -> []))
  in
  for seed = 1 to seeds do
    let demands =
      Demand_gen.mcf_synthetic ~epsilon:0.05 ~seed ~flows_per_pair:flows g
    in
    push "UnitWeights" (Ecmp.mlu_of g (Weights.unit g) demands);
    let inv_w = Weights.inverse_capacity g in
    push "InverseCapacity" (Ecmp.mlu_of g inv_w demands);
    let ls = Local_search.optimize_ctx (Obs.Ctx.default ()) ~params:(ls_params ~seed ~evals) g demands in
    push "HeurOSPF" ls.Local_search.mlu;
    (* ILP-Weights proxy: the best of several deeper local searches
       (see DESIGN.md: the weight MILP is out of reach for our B&B). *)
    let deep =
      List.fold_left
        (fun best s ->
          let r =
            Local_search.optimize_ctx (Obs.Ctx.default ())
              ~params:
                { Local_search.default_params with
                  max_evals = 2 * evals; seed = s; wmax = 24 }
              g demands
          in
          min best r.Local_search.mlu)
        infinity
        [ seed; seed + 100; seed + 200 ]
    in
    push "ILP-Weights*" deep;
    push "GreedyWaypoints"
      (Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) g inv_w demands).Greedy_wpo.mlu;
    (* ILP Waypoints: the WPO MILP under the standard (inverse-capacity)
       weight setting, as in the paper's WPO-with-fixed-weights MILP. *)
    let milp =
      Wpo_milp.solve ~max_nodes:(if !full then 20_000 else 3_000) g inv_w
        (Network.aggregate demands)
    in
    push
      (if milp.Wpo_milp.exact then "ILP-Waypoints" else "ILP-Waypoints(cap)")
      milp.Wpo_milp.mlu;
    let joint = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params:(ls_params ~seed ~evals) g demands in
    push "JointHeur" joint.Joint.mlu;
    (* ILP-Joint proxy: deep weights + exact WPO MILP on top. *)
    let deep_w =
      (Local_search.optimize_ctx (Obs.Ctx.default ())
         ~params:
           { Local_search.default_params with max_evals = 2 * evals;
             seed = seed + 300; wmax = 24 }
         g demands)
        .Local_search.weights
    in
    let milp2 =
      Wpo_milp.solve ~max_nodes:(if !full then 20_000 else 3_000) g
        (Weights.of_ints deep_w) (Network.aggregate demands)
    in
    (* Best joint setting any of our searches found. *)
    push "ILP-Joint*" (min (min deep milp2.Wpo_milp.mlu) joint.Joint.mlu)
  done;
  row "%-22s %10s %10s %10s\n" "algorithm" "mean" "min" "max";
  List.iter
    (fun k ->
      match Hashtbl.find_opt acc k with
      | Some vs -> row "%-22s %10.3f %10.3f %10.3f\n" k (mean vs) (fmin vs) (fmax vs)
      | None -> ())
    [ "UnitWeights"; "InverseCapacity"; "HeurOSPF"; "ILP-Weights*";
      "GreedyWaypoints"; "ILP-Waypoints"; "ILP-Waypoints(cap)"; "JointHeur";
      "ILP-Joint*" ];
  row "(* = exhaustive-search proxy for the paper's weight MILP, see DESIGN.md)\n"

(* ------------------------------------------------------------------ *)
(* MILP demonstration on small networks (§7.1 "Small Networks")        *)
(* ------------------------------------------------------------------ *)

let exp_milp () =
  section
    "MILP on small networks (the paper's exact-solver demonstration, \
     USPR regime; see DESIGN.md)";
  row "%-22s %10s %10s %12s %12s %12s\n" "instance" "LWO-MILP" "WPO-MILP"
    "Joint-MILP" "brute Joint" "Joint(lemma)";
  List.iter
    (fun m ->
      let inst = Instances.Gap_instances.instance1 ~m in
      let net = inst.Instances.Gap_instances.network in
      let g = net.Network.graph in
      let lwo = Uspr_milp.lwo g net.Network.demands in
      let wpo =
        Wpo_milp.solve g (Weights.unit g) net.Network.demands
      in
      let jm = Uspr_milp.joint ~max_combos:300 g net.Network.demands in
      let (_, _, brute), _ = Exact.joint ~weight_domain:[ 1; 3 ] g net.Network.demands in
      let lemma =
        Ecmp.mlu_of ~waypoints:inst.Instances.Gap_instances.joint_waypoints g
          inst.Instances.Gap_instances.joint_weights net.Network.demands
      in
      row "%-22s %9.3f%s %9.3f%s %11.3f%s %12.3f %12.3f\n"
        (Printf.sprintf "TE-Instance-1 (m=%d)" m)
        lwo.Uspr_milp.mlu
        (if lwo.Uspr_milp.exact then "" else "~")
        wpo.Wpo_milp.mlu
        (if wpo.Wpo_milp.exact then "" else "~")
        jm.Uspr_milp.setting.Uspr_milp.mlu
        (if jm.Uspr_milp.setting.Uspr_milp.exact then "" else "~")
        brute lemma)
    [ 2; 3 ];
  row "(~ = node-limit hit; USPR LWO cannot split same-pair demands, so its\n";
  row " optimum is m while the joint MILP reaches the true optimum 1.)\n"

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)
(* ------------------------------------------------------------------ *)

let exp_fig7 () =
  section
    "Figure 7: Nanonet substitute - hash-based ECMP on TE-Instance 1 (paper: \
     Joint ~1.014; Weights median ~2.27, range 2.14-2.52)";
  let s = Netsim.Nanonet.run ~trials:10 () in
  row "%-8s %12s %12s\n" "trial" "Joint" "Weights";
  List.iteri
    (fun i t ->
      row "%-8d %12.4f %12.4f\n" (i + 1) t.Netsim.Nanonet.joint
        t.Netsim.Nanonet.weights)
    s.Netsim.Nanonet.trials;
  row "\nJoint median   %.4f\n" s.Netsim.Nanonet.joint_median;
  row "Weights median %.4f (range %.4f - %.4f)\n" s.Netsim.Nanonet.weights_median
    s.Netsim.Nanonet.weights_min s.Netsim.Nanonet.weights_max

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let exp_ablation () =
  section "Ablations (design choices, see DESIGN.md)";
  let g = Topology.Datasets.abilene () in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.05 ~seed:1 ~flows_per_pair:2 g
  in
  let evals = if !full then 2000 else 500 in
  (* 1. HeurOSPF objective: Phi vs MLU. *)
  row "HeurOSPF guiding objective (Abilene, %d evals):\n" evals;
  List.iter
    (fun (label, use_phi) ->
      let r =
        Local_search.optimize_ctx (Obs.Ctx.default ())
          ~params:
            { Local_search.default_params with max_evals = evals; seed = 5; use_phi }
          g demands
      in
      row "  %-18s MLU %.3f\n" label r.Local_search.mlu)
    [ ("Fortz-Thorup Phi", true); ("raw MLU", false) ];
  (* 2. GreedyWPO demand order. *)
  row "GreedyWPO demand order (Abilene, inverse-capacity weights):\n";
  let inv_w = Weights.inverse_capacity g in
  List.iter
    (fun (label, order) ->
      let r = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) ~order g inv_w demands in
      row "  %-18s MLU %.3f (from %.3f)\n" label r.Greedy_wpo.mlu
        r.Greedy_wpo.initial_mlu)
    [ ("descending (paper)", Greedy_wpo.Desc); ("ascending", Greedy_wpo.Asc);
      ("random", Greedy_wpo.Random 42) ];
  (* 3. JOINT-Heur pipeline depth. *)
  row "JOINT-Heur stages (paper: steps 3-4 gains negligible):\n";
  List.iter
    (fun (label, full_pipeline) ->
      let r =
        Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params:(ls_params ~seed:5 ~evals) ~full_pipeline g demands
      in
      row "  %-18s MLU %.3f\n" label r.Joint.mlu)
    [ ("steps 1-2", false); ("steps 1-4", true) ];
  (* 4. LWO-APX pruning. *)
  row "LWO-APX argmax pruning (instance 3, m=6):\n";
  let inst = Instances.Gap_instances.instance3 ~m:6 in
  let g3 = inst.Instances.Gap_instances.network.Network.graph in
  List.iter
    (fun (label, prune) ->
      let r =
        Lwo_apx.solve ~prune g3 ~source:inst.Instances.Gap_instances.source
          ~target:inst.Instances.Gap_instances.target
      in
      row "  %-18s ES-flow %.3f (of max-flow %.3f)\n" label
        r.Lwo_apx.es_flow_value r.Lwo_apx.max_flow_value)
    [ ("with pruning", true); ("no pruning", false) ];
  (* 4b. Improvement passes over Algorithm 3 (extension): revisiting
     demands repairs part of the sequential greedy's order-dependence. *)
  row "GreedyWPO improvement passes (Germany50, inverse-capacity weights):\n";
  let g50 = Topology.Datasets.load "Germany50" in
  let d50 =
    Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:3 ~flows_per_pair:4 g50
  in
  List.iter
    (fun passes ->
      let r = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) ~passes g50 (Weights.inverse_capacity g50) d50 in
      row "  %d pass%s            MLU %.3f\n" passes
        (if passes = 1 then " " else "es")
        r.Greedy_wpo.mlu)
    [ 1; 2; 3 ];
  (* 5. How many waypoints suffice?  (the paper's §8 open question) —
     multi-round greedy on instance 3, where 1 waypoint is provably not
     enough but 2 are (Lemma 3.11). *)
  row "Waypoints per demand (multi-round greedy, instance 3 m=4, lemma weights):\n";
  let i3 = Instances.Gap_instances.instance3 ~m:4 in
  let n3 = i3.Instances.Gap_instances.network in
  List.iter
    (fun rounds ->
      let r =
        Greedy_wpo.optimize_multi_ctx (Obs.Ctx.default ()) ~rounds n3.Network.graph
          i3.Instances.Gap_instances.joint_weights n3.Network.demands
      in
      row "  W <= %d             MLU %.3f\n" rounds r.Greedy_wpo.mlu)
    [ 1; 2; 3 ];
  (* 6. How many weight/waypoint iterations?  (also §8). *)
  row "Iterated JOINT-Heur (Abilene):\n";
  List.iter
    (fun iterations ->
      let r =
        Joint.optimize_iterated_ctx (Obs.Ctx.default ())
          ~ls_params:(ls_params ~seed:5 ~evals:(evals / iterations))
          ~iterations g demands
      in
      row "  %d iterations       MLU %.3f\n" iterations r.Joint.mlu)
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Evaluation engine: incremental vs from-scratch                      *)
(* ------------------------------------------------------------------ *)

(* Measures the move protocol the local searches live on: probe one
   weight change, evaluate, undo.  The baseline rebuilds the full ECMP
   state per candidate (a fresh evaluator each time, i.e. what
   Ecmp.make used to cost); the engine repairs only the destinations
   the changed edge can affect.  Results land in BENCH_engine.json. *)
let exp_engine () =
  section "Engine: incremental vs from-scratch single-weight-move evaluation";
  let bctx = bench_ctx () in
  let records = ref [] in
  let emit r = records := r :: !records in
  let topos = if !full then [ "Abilene"; "Germany50"; "Ta2" ]
              else [ "Abilene"; "Germany50" ] in
  row "%-12s %8s %14s %14s %9s %11s\n" "topology" "moves" "scratch ev/s"
    "engine ev/s" "speedup" "full/incr";
  Obs.Ctx.phase bctx "probe-race" (fun () ->
  List.iter
    (fun name ->
      let g = Topology.Datasets.load name in
      let m = Digraph.edge_count g in
      let demands =
        Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:1
          ~flows_per_pair:(max 2 (m / 16)) g
      in
      let comms = Network.to_commodities demands in
      let st = Random.State.make [| 0xbe; 42 |] in
      let base = Array.init m (fun _ -> float_of_int (1 + Random.State.int st 16)) in
      let moves = if !full then 500 else 200 in
      (* One fixed move sequence so both sides do identical work. *)
      let seq =
        Array.init moves (fun _ ->
            (Random.State.int st m, float_of_int (1 + Random.State.int st 20)))
      in
      (* Baseline: full rebuild per candidate. *)
      let w = Array.copy base in
      let sink = ref 0. in
      let t0 = Engine.Mono.now () in
      Array.iter
        (fun (e, wv) ->
          let old = w.(e) in
          w.(e) <- wv;
          sink := !sink +. Engine.Evaluator.mlu_of g w comms;
          w.(e) <- old)
        seq;
      let t_scratch = Engine.Mono.now () -. t0 in
      (* Engine: persistent evaluator, probe / evaluate / undo. *)
      let stats = Engine.Stats.create () in
      let ev = Engine.Evaluator.create ~stats g base in
      Engine.Evaluator.set_commodities ev comms;
      ignore (Engine.Evaluator.evaluate ev);
      (* warm start = the state any search holds between moves *)
      Engine.Stats.reset stats;
      let sink2 = ref 0. in
      let t0 = Engine.Mono.now () in
      Array.iter
        (fun (e, wv) ->
          Engine.Evaluator.set_weight ev ~edge:e wv;
          sink2 := !sink2 +. fst (Engine.Evaluator.evaluate ev);
          Engine.Evaluator.undo ev)
        seq;
      let t_engine = Engine.Mono.now () -. t0 in
      if abs_float (!sink -. !sink2) > 1e-6 *. abs_float !sink then
        row "  WARNING: scratch/engine MLU sums differ (%.9g vs %.9g)\n"
          !sink !sink2;
      let fm = float_of_int moves in
      let ev_scratch = fm /. t_scratch and ev_engine = fm /. t_engine in
      let ratio =
        float_of_int stats.Engine.Stats.full_spf
        /. float_of_int (max 1 stats.Engine.Stats.incr_spf)
      in
      row "%-12s %8d %14.0f %14.0f %8.1fx %11.4f\n" name moves ev_scratch
        ev_engine (ev_engine /. ev_scratch) ratio;
      emit
        (Printf.sprintf
           "{\"topology\": %S, \"algorithm\": \"single-weight-probe\", \
            \"moves\": %d, \"scratch_evals_per_sec\": %.1f, \
            \"engine_evals_per_sec\": %.1f, \"speedup\": %.3f, \
            \"wall_seconds_scratch\": %.6f, \"wall_seconds_engine\": %.6f, \
            \"full_spf\": %d, \"incr_spf\": %d, \
            \"incremental_vs_full_ratio\": %.4f}"
           name moves ev_scratch ev_engine (ev_engine /. ev_scratch) t_scratch
           t_engine stats.Engine.Stats.full_spf stats.Engine.Stats.incr_spf
           (float_of_int stats.Engine.Stats.incr_spf
           /. float_of_int (max 1 stats.Engine.Stats.full_spf))))
    topos);
  (* Size-scaling curve: probe/evaluate/undo throughput as a function
     of topology size, over the zoo-scale ladder (synthetic stand-ins
     unless --scale finds real GraphML files under the data dir).  The
     demand set is a fixed seeded pair sample per topology — no MCF
     normalization, whose LP would dwarf the measurement on the
     754-node instance. *)
  row "\nSize-scaling curve (probe/evaluate/undo per topology size):\n";
  row "%-12s %6s %6s %8s %7s %14s %11s\n" "topology" "nodes" "edges"
    "commods" "moves" "engine ev/s" "full/incr";
  Obs.Ctx.phase bctx "size-scaling" (fun () ->
  List.iter
    (fun name ->
      let real =
        !scale && Sys.file_exists (Filename.concat !data_dir (name ^ ".graphml"))
      in
      let g =
        Topology.Datasets.load
          ?data_dir:(if real then Some !data_dir else None)
          name
      in
      let n = Digraph.node_count g and m = Digraph.edge_count g in
      let st = Random.State.make [| 0x5ca1e; n |] in
      let base =
        Array.init m (fun _ -> float_of_int (1 + Random.State.int st 16))
      in
      let stats = Engine.Stats.create () in
      let ev = Engine.Evaluator.create ~stats g base in
      (* ~4 commodities per node, reachable pairs only (real zoo files
         may have isolated fragments). *)
      let target = 4 * n in
      let comms = ref [] and tries = ref 0 and got = ref 0 in
      while !got < target && !tries < 40 * target do
        incr tries;
        let s = Random.State.int st n and d = Random.State.int st n in
        if s <> d && Engine.Evaluator.reachable ev ~src:s ~dst:d then begin
          comms := (s, d, float_of_int (1 + Random.State.int st 9)) :: !comms;
          incr got
        end
      done;
      Engine.Evaluator.set_commodities ev (Array.of_list (List.rev !comms));
      let moves = if !full then 1000 else 300 in
      let seq =
        Array.init moves (fun _ ->
            (Random.State.int st m, float_of_int (1 + Random.State.int st 20)))
      in
      let cell = { Engine.Evaluator.mlu = 0.; phi = 0. } in
      Engine.Evaluator.evaluate_into ev cell;
      (* warm start: pools, DAGs and unit caches at steady state *)
      Engine.Stats.reset stats;
      let sink = ref 0. in
      let t0 = Engine.Mono.now () in
      Array.iter
        (fun (e, wv) ->
          Engine.Evaluator.set_weight ev ~edge:e wv;
          Engine.Evaluator.evaluate_into ev cell;
          sink := !sink +. cell.Engine.Evaluator.mlu;
          Engine.Evaluator.undo ev)
        seq;
      let wall = Engine.Mono.now () -. t0 in
      let eps = float_of_int moves /. wall in
      let ratio =
        float_of_int stats.Engine.Stats.full_spf
        /. float_of_int (max 1 stats.Engine.Stats.incr_spf)
      in
      let ht = Engine.Stats.hot_times stats in
      row "%-12s %6d %6d %8d %7d %14.0f %11.4f  (incr %.0f%% units %.0f%% \
           loads %.0f%%)\n"
        name n m !got moves eps ratio
        (100. *. ht.(Engine.Stats.hot_spf_incr) /. wall)
        (100. *. ht.(Engine.Stats.hot_units) /. wall)
        (100. *. ht.(Engine.Stats.hot_loads) /. wall);
      emit
        (Printf.sprintf
           "{\"topology\": %S, \"algorithm\": \"size-scaling-probe\", \
            \"source\": %S, \"nodes\": %d, \"edges\": %d, \
            \"commodities\": %d, \"moves\": %d, \"evals_per_sec\": %.1f, \
            \"wall_seconds\": %.6f, \"full_spf\": %d, \"incr_spf\": %d, \
            \"spf_nodes_touched\": %d, \"seconds_spf_incr\": %.6f, \
            \"seconds_units\": %.6f, \"seconds_loads\": %.6f}"
           name
           (if real then "graphml" else "synthetic")
           n m !got moves eps wall stats.Engine.Stats.full_spf
           stats.Engine.Stats.incr_spf stats.Engine.Stats.spf_nodes_touched
           ht.(Engine.Stats.hot_spf_incr)
           ht.(Engine.Stats.hot_units)
           ht.(Engine.Stats.hot_loads)))
    Topology.Datasets.scale_names);
  (* The same instrumentation through a whole HeurOSPF run. *)
  row "\nHeurOSPF through the engine (Abilene):\n";
  let g = Topology.Datasets.abilene () in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.05 ~seed:1 ~flows_per_pair:2 g
  in
  let evals = if !full then 3000 else 600 in
  let stats = Engine.Stats.create () in
  let t0 = Engine.Mono.now () in
  let ls =
    Obs.Ctx.phase bctx "heurospf" (fun () ->
        Local_search.optimize_ctx (Obs.Ctx.make ~stats ()) ~params:(ls_params ~seed:5 ~evals) g
          demands)
  in
  let wall = Engine.Mono.now () -. t0 in
  row "  MLU %.3f  %s\n" ls.Local_search.mlu
    (Format.asprintf "%a" Engine.Stats.pp stats);
  emit
    (Printf.sprintf
       "{\"topology\": \"Abilene\", \"algorithm\": \"HeurOSPF\", \
        \"evaluations\": %d, \"evals_per_sec\": %.1f, \
        \"wall_seconds\": %.6f, \"full_spf\": %d, \"incr_spf\": %d, \
        \"incremental_vs_full_ratio\": %.4f, \"dirty_dests\": %d, \
        \"clean_dests\": %d}"
       stats.Engine.Stats.evaluations
       (float_of_int stats.Engine.Stats.evaluations /. wall)
       wall stats.Engine.Stats.full_spf stats.Engine.Stats.incr_spf
       (float_of_int stats.Engine.Stats.incr_spf
       /. float_of_int (max 1 stats.Engine.Stats.full_spf))
       stats.Engine.Stats.dirty_dests stats.Engine.Stats.clean_dests);
  write_bench ~ctx:bctx ~file:"BENCH_engine.json" ~bench:"engine"
    (List.rev !records)

(* ------------------------------------------------------------------ *)
(* Parallel search runtime                                             *)
(* ------------------------------------------------------------------ *)

(* One measured (topology, jobs) point of the scheduler benchmark. *)
type parallel_rec = {
  pr_scan_evals : int;
  pr_wpo_wall : float;
  pr_ls_evals : int;
  pr_ls_wall : float;
  pr_overhead_us : float;  (* scheduler overhead per task, microseconds *)
  pr_syncs : int;  (* clone-cache delta syncs, both heuristics *)
  pr_copies : int;  (* clone-cache full copies, both heuristics *)
  pr_steals : int;  (* deque steals during the two runs *)
  pr_parks : int;  (* worker park events during the two runs *)
  pr_efficiency : float;  (* par_busy / (par_wall * jobs); nan at jobs=1 *)
}

(* Scaling of lib/par: the GreedyWPO candidate scan and the HeurOSPF
   probe fan-out, both running on cached per-worker clones under the
   work-stealing scheduler, at pool sizes 1/2/4/8.  Every run is checked
   bit-identical against the jobs = 1 reference before its timing is
   reported — a speedup that changes the answer would be a bug, not a
   result.  Each record carries the scheduler's own counters (steals,
   parks, per-task overhead) and the clone-cache amortization ratio;
   two extra records report the sync-vs-copy microbenchmark and the
   multicore efficiency gate, which is enforced only when the host
   actually has >= 4 cores and recorded as skipped otherwise.  Results
   land in BENCH_parallel.json under schema bench/parallel/2, stamped
   (like every envelope) with the host's core count so numbers from a
   single-core container are recognizable as such. *)
let exp_parallel () =
  section "Parallel search runtime: work-stealing scheduler (lib/par)";
  let bctx = bench_ctx () in
  let cores = Obs.Export.host_cores () in
  row "host: Domain.recommended_domain_count () = %d\n" cores;
  let records = ref [] in
  let emit r = records := r :: !records in
  let jobs_list = [ 1; 2; 4; 8 ] in
  let topos = [ "Abilene"; "Germany50" ] in
  List.iter
    (fun name ->
      Obs.Ctx.phase bctx name @@ fun () ->
      let g = Topology.Datasets.load name in
      let m = Digraph.edge_count g in
      let demands =
        Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:1
          ~flows_per_pair:(max 2 (m / 16)) g
      in
      let inv_w = Weights.inverse_capacity g in
      let evals = if !full then 2000 else 400 in
      let run_wpo pool =
        let stats = Engine.Stats.create () in
        let t0 = Engine.Mono.now () in
        let r = Greedy_wpo.optimize_ctx (Obs.Ctx.make ~stats ~pool ()) g inv_w demands in
        (r, stats, Engine.Mono.now () -. t0)
      in
      let run_ls pool =
        let stats = Engine.Stats.create () in
        let t0 = Engine.Mono.now () in
        let r =
          Local_search.optimize_ctx (Obs.Ctx.make ~stats ~pool ())
            ~params:(ls_params ~seed:3 ~evals)
            g demands
        in
        (r, stats, Engine.Mono.now () -. t0)
      in
      let ref_wpo = ref None and ref_ls = ref None in
      List.iter
        (fun jobs ->
          let measure pool =
            let m0 = Par.Pool.metrics pool in
            let wpo = run_wpo pool in
            let ls = run_ls pool in
            (wpo, ls, m0, Par.Pool.metrics pool)
          in
          let (wpo, wpo_stats, wpo_wall), (ls, ls_stats, ls_wall), m0, m1 =
            if jobs = 1 then measure Par.Pool.sequential
            else Par.Pool.with_pool ~jobs measure
          in
          (match !ref_wpo with
          | None -> ref_wpo := Some wpo
          | Some r ->
            if wpo.Greedy_wpo.waypoints <> r.Greedy_wpo.waypoints
               || wpo.Greedy_wpo.mlu <> r.Greedy_wpo.mlu then
              failwith
                (Printf.sprintf
                   "GreedyWPO result at --jobs %d differs from jobs=1 on %s"
                   jobs name));
          (match !ref_ls with
          | None -> ref_ls := Some ls
          | Some r ->
            if ls.Local_search.weights <> r.Local_search.weights
               || ls.Local_search.mlu <> r.Local_search.mlu
               || ls.Local_search.evals <> r.Local_search.evals then
              failwith
                (Printf.sprintf
                   "HeurOSPF result at --jobs %d differs from jobs=1 on %s"
                   jobs name));
          let tasks =
            wpo_stats.Engine.Stats.par_tasks + ls_stats.Engine.Stats.par_tasks
          in
          let overhead_us =
            if tasks = 0 then 0.
            else
              (wpo_stats.Engine.Stats.par_wall
              +. ls_stats.Engine.Stats.par_wall
              -. wpo_stats.Engine.Stats.par_busy
              -. ls_stats.Engine.Stats.par_busy)
              /. float_of_int tasks *. 1e6
          in
          emit
            ( (name, jobs),
              {
                pr_scan_evals =
                  Array.fold_left ( + ) 0 wpo_stats.Engine.Stats.worker_evals;
                pr_wpo_wall = wpo_wall;
                pr_ls_evals = ls_stats.Engine.Stats.evaluations;
                pr_ls_wall = ls_wall;
                pr_overhead_us = overhead_us;
                pr_syncs =
                  wpo_stats.Engine.Stats.clone_syncs
                  + ls_stats.Engine.Stats.clone_syncs;
                pr_copies =
                  wpo_stats.Engine.Stats.clone_copies
                  + ls_stats.Engine.Stats.clone_copies;
                pr_steals = m1.Par.Pool.steals - m0.Par.Pool.steals;
                pr_parks = m1.Par.Pool.parks - m0.Par.Pool.parks;
                pr_efficiency = Engine.Stats.parallel_efficiency ls_stats;
              } ))
        jobs_list)
    topos;
  (* Render and serialize: walk the records per topology so each row's
     speedup is measured against its own jobs = 1 wall time. *)
  let records = List.rev !records in
  let json = ref [] in
  List.iter
    (fun name ->
      let base = List.assoc (name, 1) records in
      row "\n%-12s %6s %12s %8s %12s %8s %9s %7s %7s\n" name "jobs"
        "scan ev/s" "speedup" "probe ev/s" "speedup" "ovh us/t" "steals"
        "amort";
      List.iter
        (fun jobs ->
          match List.assoc_opt (name, jobs) records with
          | None -> ()
          | Some r ->
            let amort =
              if r.pr_syncs + r.pr_copies = 0 then 0.
              else
                float_of_int r.pr_syncs
                /. float_of_int (r.pr_syncs + r.pr_copies)
            in
            row "%-12s %6d %12.0f %7.2fx %12.0f %7.2fx %9.2f %7d %7.2f\n"
              name jobs
              (float_of_int r.pr_scan_evals /. r.pr_wpo_wall)
              (base.pr_wpo_wall /. r.pr_wpo_wall)
              (float_of_int r.pr_ls_evals /. r.pr_ls_wall)
              (base.pr_ls_wall /. r.pr_ls_wall)
              r.pr_overhead_us r.pr_steals amort;
            json :=
              Printf.sprintf
                "{\"topology\": %S, \"jobs\": %d, \
                 \"identical_to_jobs1\": true, \
                 \"scan_candidates\": %d, \"scan_wall_seconds\": %.6f, \
                 \"scan_evals_per_sec\": %.1f, \"scan_speedup\": %.3f, \
                 \"probe_evaluations\": %d, \"probe_wall_seconds\": %.6f, \
                 \"probe_evals_per_sec\": %.1f, \"probe_speedup\": %.3f, \
                 \"sched_overhead_us_per_task\": %.3f, \
                 \"steals\": %d, \"parks\": %d, \
                 \"clone_syncs\": %d, \"clone_copies\": %d, \
                 \"clone_amortization\": %.3f, \"efficiency\": %s}"
                name jobs r.pr_scan_evals r.pr_wpo_wall
                (float_of_int r.pr_scan_evals /. r.pr_wpo_wall)
                (base.pr_wpo_wall /. r.pr_wpo_wall)
                r.pr_ls_evals r.pr_ls_wall
                (float_of_int r.pr_ls_evals /. r.pr_ls_wall)
                (base.pr_ls_wall /. r.pr_ls_wall)
                r.pr_overhead_us r.pr_steals r.pr_parks r.pr_syncs
                r.pr_copies amort
                (if Float.is_nan r.pr_efficiency then "null"
                 else Printf.sprintf "%.3f" r.pr_efficiency)
              :: !json)
        jobs_list)
    topos;
  row "\nall runs bit-identical to jobs=1\n";
  (* Sync-vs-copy microbenchmark on a warm Germany50 clone, two
     regimes.  Steady state: the clone is already in sync when the next
     fan-out arrives (repeated sweeps over an unchanged master, the
     serving daemon re-entering between updates) — sync_from is a pure
     O(m) diff scan and must beat a full copy by a wide margin; the
     gate below enforces 3x there.  Delta: the search committed one
     weight move since the last fan-out — sync_from pays a real
     incremental repair while copy free-rides on the source's
     just-repaired caches, so that regime is recorded honestly but not
     gated. *)
  let sync_us, copy_us =
    Obs.Ctx.phase bctx "sync_vs_copy" @@ fun () ->
    let g = Topology.Datasets.load "Germany50" in
    let m = Digraph.edge_count g in
    let demands =
      Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:1
        ~flows_per_pair:(max 2 (m / 16)) g
    in
    let src = Engine.Evaluator.create g (Weights.inverse_capacity g) in
    Engine.Evaluator.set_commodities src (Network.to_commodities demands);
    ignore (Engine.Evaluator.evaluate src);
    let clone = Engine.Evaluator.copy src in
    ignore (Engine.Evaluator.evaluate clone);
    let reps = if !full then 400 else 100 in
    let st = Random.State.make [| 0xc10e |] in
    let move () =
      Engine.Evaluator.set_weight src ~edge:(Random.State.int st m)
        (float_of_int (1 + Random.State.int st 20));
      Engine.Evaluator.commit src;
      ignore (Engine.Evaluator.evaluate src)
    in
    (* Steady state: clone in sync, source unchanged between syncs. *)
    Engine.Evaluator.sync_from ~src clone;
    ignore (Engine.Evaluator.evaluate clone);
    let t_sync = ref 0. in
    for _ = 1 to reps do
      let t0 = Engine.Mono.now () in
      Engine.Evaluator.sync_from ~src clone;
      t_sync := !t_sync +. (Engine.Mono.now () -. t0);
      ignore (Engine.Evaluator.evaluate clone)
    done;
    let t_copy = ref 0. in
    for _ = 1 to reps do
      let t0 = Engine.Mono.now () in
      let c = Engine.Evaluator.copy src in
      t_copy := !t_copy +. (Engine.Mono.now () -. t0);
      ignore (Engine.Evaluator.evaluate c)
    done;
    (* Delta: one committed move on the source between fan-outs. *)
    let t_dsync = ref 0. in
    for _ = 1 to reps do
      move ();
      let t0 = Engine.Mono.now () in
      Engine.Evaluator.sync_from ~src clone;
      t_dsync := !t_dsync +. (Engine.Mono.now () -. t0);
      ignore (Engine.Evaluator.evaluate clone)
    done;
    let t_dcopy = ref 0. in
    for _ = 1 to reps do
      move ();
      let t0 = Engine.Mono.now () in
      let c = Engine.Evaluator.copy src in
      t_dcopy := !t_dcopy +. (Engine.Mono.now () -. t0);
      ignore (Engine.Evaluator.evaluate c)
    done;
    let per t = !t /. float_of_int reps *. 1e6 in
    let sync_us = per t_sync and copy_us = per t_copy in
    let dsync_us = per t_dsync and dcopy_us = per t_dcopy in
    row "\nsync_from vs copy (Germany50, warm clone, %d reps)\n" reps;
    row "  steady state (in sync): %.1f us vs %.1f us (%.1fx)\n"
      sync_us copy_us (copy_us /. sync_us);
    row "  one-move delta:         %.1f us vs %.1f us (%.1fx)\n"
      dsync_us dcopy_us (dcopy_us /. dsync_us);
    json :=
      Printf.sprintf
        "{\"microbench\": \"sync_vs_copy\", \"topology\": \"Germany50\", \
         \"regime\": \"steady_state\", \"reps\": %d, \
         \"sync_us\": %.3f, \"copy_us\": %.3f, \"sync_speedup\": %.2f}"
        reps sync_us copy_us (copy_us /. sync_us)
      :: !json;
    json :=
      Printf.sprintf
        "{\"microbench\": \"sync_vs_copy\", \"topology\": \"Germany50\", \
         \"regime\": \"one_move_delta\", \"reps\": %d, \
         \"sync_us\": %.3f, \"copy_us\": %.3f, \"sync_speedup\": %.2f}"
        reps dsync_us dcopy_us (dcopy_us /. dsync_us)
      :: !json;
    (sync_us, copy_us)
  in
  (* Multicore efficiency gate: >= 0.7 at Germany50 jobs=4, enforced
     only where 4 workers can actually run in parallel.  On smaller
     hosts the honest answer is "skipped", not a vacuous pass. *)
  let g50_eff =
    match List.assoc_opt ("Germany50", 4) records with
    | Some r when not (Float.is_nan r.pr_efficiency) ->
      Some r.pr_efficiency
    | _ -> None
  in
  let status =
    if cores >= 4 then
      match g50_eff with
      | Some e when e >= 0.7 -> "passed"
      | _ -> "failed"
    else
      Printf.sprintf "skipped (%d core%s)" cores (if cores = 1 then "" else "s")
  in
  row "efficiency gate (Germany50 jobs=4, threshold 0.70): %s%s\n" status
    (match g50_eff with
    | Some e -> Printf.sprintf " [measured %.3f]" e
    | None -> "");
  json :=
    Printf.sprintf
      "{\"gate\": \"parallel_efficiency\", \"topology\": \"Germany50\", \
       \"jobs\": 4, \"threshold\": 0.7, \"efficiency\": %s, \
       \"host_cores\": %d, \"status\": %s}"
      (match g50_eff with
      | Some e -> Printf.sprintf "%.3f" e
      | None -> "null")
      cores
      (Obs.Export.json_str status)
    :: !json;
  write_bench ~ctx:bctx ~version:2 ~file:"BENCH_parallel.json"
    ~bench:"parallel" (List.rev !json);
  if copy_us /. sync_us < 3. then
    failwith
      (Printf.sprintf
         "sync_from only %.2fx cheaper than copy (gate: 3x)"
         (copy_us /. sync_us));
  if status = "failed" then
    failwith "parallel efficiency below 0.7 at Germany50 jobs=4"

(* ------------------------------------------------------------------ *)
(* Robustness sweep throughput                                         *)
(* ------------------------------------------------------------------ *)

(* lib/scenario streaming throughput: the engine path (persistent
   per-worker evaluators, disable_edge probes, dirty-destination
   repair) against the rebuild oracle (fresh subgraph + ECMP state per
   scenario), then scenarios/sec at several pool sizes.  Every engine
   run is checked against the oracle and against the jobs = 1 reference
   before its timing is reported.  Results land in
   BENCH_robustness.json. *)
let exp_robust () =
  section "Robustness sweep: engine path vs rebuild oracle (lib/scenario)";
  let bctx = bench_ctx () in
  let records = ref [] in
  let emit r = records := r :: !records in
  let topos = if !full then [ "Abilene"; "Germany50" ] else [ "Abilene" ] in
  let jobs_list = if !full then [ 1; 2; 4; 8 ] else [ 1; 2; 4 ] in
  row "%-12s %9s %6s %14s %9s %13s\n" "topology" "scenarios" "jobs"
    "scenarios/s" "speedup" "vs rebuild";
  List.iter
    (fun name ->
      Obs.Ctx.phase bctx name @@ fun () ->
      let g = Topology.Datasets.load name in
      let m = Digraph.edge_count g in
      let demands =
        Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:1
          ~flows_per_pair:(max 2 (m / 16)) g
      in
      let evals = if !full then 2000 else 300 in
      let joint = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params:(ls_params ~seed:1 ~evals) g demands in
      let deployed =
        {
          Scenario.weights = joint.Joint.int_weights;
          Scenario.waypoints = joint.Joint.waypoints;
        }
      in
      let cfg =
        {
          Scenario.default_config with
          Scenario.seed = 1;
          Scenario.dual_failures = (if !full then 40 else 10);
          Scenario.scales = [ 0.8; 1.2 ];
          Scenario.jitters = 4;
          Scenario.hotspots = 2;
          Scenario.diurnal = 4;
        }
      in
      let specs = Scenario.generate cfg g in
      let n = Array.length specs in
      (* The historical path: rebuild the subgraph per scenario. *)
      let t0 = Engine.Mono.now () in
      let oracle = Scenario.static_sweep_rebuild ~deployed g demands specs in
      let t_rebuild = Engine.Mono.now () -. t0 in
      let run pool =
        let t0 = Engine.Mono.now () in
        let out = Scenario.sweep_ctx (Obs.Ctx.make ~pool ()) ~deployed g demands specs in
        (out, Engine.Mono.now () -. t0)
      in
      let reference = ref None in
      List.iter
        (fun jobs ->
          let out, wall =
            if jobs = 1 then run Par.Pool.sequential
            else Par.Pool.with_pool ~jobs run
          in
          (match !reference with
          | None ->
            (* jobs = 1: validate the engine path against the oracle. *)
            Array.iteri
              (fun i (om, od) ->
                let o = out.(i) in
                let close a b =
                  (Float.is_nan a && Float.is_nan b)
                  || abs_float (a -. b) <= 1e-9 *. (1. +. abs_float b)
                in
                if o.Scenario.static_disconnected <> od
                   || not (close o.Scenario.static_mlu om)
                then
                  failwith
                    (Printf.sprintf
                       "engine/oracle mismatch on %s scenario %d" name i))
              oracle;
            reference := Some (out, wall)
          | Some (ref_out, _) ->
            (* compare treats nan = nan, unlike (=). *)
            if compare out ref_out <> 0 then
              failwith
                (Printf.sprintf
                   "sweep at --jobs %d differs from jobs=1 on %s" jobs name));
          let base_wall = match !reference with Some (_, w) -> w | None -> wall in
          let fn = float_of_int n in
          row "%-12s %9d %6d %14.0f %8.2fx %12.1fx\n" name n jobs (fn /. wall)
            (base_wall /. wall)
            (t_rebuild /. wall);
          emit
            (Printf.sprintf
               "{\"topology\": %S, \"scenarios\": %d, \"jobs\": %d, \
                \"identical_to_jobs1\": true, \"wall_seconds\": %.6f, \
                \"scenarios_per_sec\": %.1f, \"speedup_vs_jobs1\": %.3f, \
                \"rebuild_wall_seconds\": %.6f, \
                \"rebuild_scenarios_per_sec\": %.1f, \
                \"engine_vs_rebuild_speedup\": %.3f, \
                \"engine_at_least_rebuild\": %b}"
               name n jobs wall (fn /. wall) (base_wall /. wall) t_rebuild
               (fn /. t_rebuild)
               (t_rebuild /. wall)
               (fn /. wall >= fn /. t_rebuild)))
        jobs_list)
    topos;
  write_bench ~ctx:bctx ~file:"BENCH_robustness.json" ~bench:"robustness"
    (List.rev !records)

(* ------------------------------------------------------------------ *)
(* LP layer: sparse revised simplex vs dense tableau                   *)
(* ------------------------------------------------------------------ *)

module Simplex = Linprog.Simplex

(* Best-of-[reps] wall clock; the solvers are deterministic, so the
   result of any repetition stands for all of them. *)
let time_best reps f =
  let best = ref infinity and last = ref None in
  for _ = 1 to reps do
    let t0 = Engine.Mono.now () in
    let r = f () in
    let dt = Engine.Mono.now () -. t0 in
    if dt < !best then best := dt;
    last := Some r
  done;
  (Option.get !last, !best)

let mcf_comms demands =
  Array.map
    (fun (d : Network.demand) ->
      { Mcf.src = d.Network.src; dst = d.Network.dst; demand = d.Network.size })
    demands

(* The min-MLU LP in legacy dense row form — the same formulation
   Mcf.build_mlu_lp assembles sparsely — so Simplex.Dense and
   Simplex.Sparse race on identical problems. *)
let dense_mlu_problem g comms =
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let comms = Mcf.aggregate comms in
  let targets =
    List.sort_uniq Int.compare
      (Array.to_list (Array.map (fun c -> c.Mcf.dst) comms))
  in
  let tindex = Hashtbl.create 16 in
  List.iteri (fun i t -> Hashtbl.replace tindex t i) targets;
  let nt = List.length targets in
  let fvar ti e = 1 + (ti * m) + e in
  let supply = Array.make_matrix nt n 0. in
  Array.iter
    (fun c ->
      let ti = Hashtbl.find tindex c.Mcf.dst in
      supply.(ti).(c.Mcf.src) <- supply.(ti).(c.Mcf.src) +. c.Mcf.demand)
    comms;
  let constrs = ref [] in
  List.iteri
    (fun ti t ->
      for v = 0 to n - 1 do
        if v <> t then begin
          let row = ref [] in
          Array.iter (fun e -> row := (fvar ti e, 1.) :: !row) (Digraph.out_edges g v);
          Array.iter (fun e -> row := (fvar ti e, -1.) :: !row) (Digraph.in_edges g v);
          constrs := Simplex.constr !row Simplex.Eq supply.(ti).(v) :: !constrs
        end
      done)
    targets;
  for e = 0 to m - 1 do
    let row = ref [ (0, -.Digraph.cap g e) ] in
    for ti = 0 to nt - 1 do
      row := (fvar ti e, 1.) :: !row
    done;
    constrs := Simplex.constr !row Simplex.Le 0. :: !constrs
  done;
  { Simplex.nvars = 1 + (nt * m); sense = Simplex.Minimize;
    objective = [ (0, 1.) ]; constrs = !constrs }

(* The LP/MILP layer after the sparse rewrite: the revised simplex vs
   the retained dense tableau oracle on identical min-MLU LPs, warm vs
   cold branch-and-bound re-solves, and warm-basis reuse across a
   demand-scaling sweep.  Results land in BENCH_lp.json. *)
let exp_lp () =
  section "LP layer: sparse revised simplex vs dense tableau oracle";
  let bctx = bench_ctx () in
  let records = ref [] in
  let emit r = records := r :: !records in
  let reps = if !full then 5 else 3 in
  row "%-22s %6s %6s %10s %10s %8s %8s %12s\n" "instance" "rows" "cols"
    "dense s" "sparse s" "speedup" "pivots" "pivots/sec";
  let race name g comms =
    Obs.Ctx.phase bctx "lp-race" @@ fun () ->
    let p = dense_mlu_problem g comms in
    let sp = Simplex.Sparse.of_problem p in
    let dres, t_dense = time_best reps (fun () -> Simplex.Dense.solve p) in
    let sres, t_sparse = time_best reps (fun () -> Simplex.Sparse.solve sp) in
    let dval =
      match dres with Simplex.Optimal { value; _ } -> value | _ -> nan
    in
    let sval, iters =
      match sres with
      | Simplex.Sparse.Optimal { value; iters; _ } -> (value, iters)
      | _ -> (nan, 0)
    in
    let mcf_val, t_mcf = time_best reps (fun () -> Mcf.opt_mlu_lp g comms) in
    let agree v = abs_float (v -. sval) <= 1e-6 *. (1. +. abs_float sval) in
    if not (agree dval) then
      row "  WARNING: dense/sparse objectives differ (%.9g vs %.9g)\n" dval sval;
    if not (agree mcf_val) then
      row "  WARNING: Mcf.opt_mlu_lp disagrees (%.9g vs %.9g)\n" mcf_val sval;
    let speedup = t_dense /. t_sparse in
    row "%-22s %6d %6d %10.4f %10.4f %7.1fx %8d %12.0f\n" name
      sp.Simplex.Sparse.nrows sp.Simplex.Sparse.ncols t_dense t_sparse speedup
      iters
      (float_of_int iters /. t_sparse);
    emit
      (Printf.sprintf
         "{\"instance\": %S, \"kind\": \"lp-race\", \"rows\": %d, \
          \"cols\": %d, \"dense_wall_seconds\": %.6f, \
          \"sparse_wall_seconds\": %.6f, \"speedup\": %.3f, \
          \"sparse_pivots\": %d, \"pivots_per_sec\": %.1f, \
          \"mcf_entry_wall_seconds\": %.6f, \"objective\": %.9g, \
          \"objectives_agree\": %b}"
         name sp.Simplex.Sparse.nrows sp.Simplex.Sparse.ncols t_dense t_sparse
         speedup iters
         (float_of_int iters /. t_sparse)
         t_mcf sval
         (agree dval && agree mcf_val))
  in
  let abilene = Topology.Datasets.abilene () in
  List.iter
    (fun seed ->
      let demands =
        Demand_gen.mcf_synthetic ~epsilon:0.1 ~seed ~flows_per_pair:2 abilene
      in
      race
        (Printf.sprintf "Abilene(seed=%d)" seed)
        abilene (mcf_comms demands))
    (if !full then [ 1; 2; 3 ] else [ 1; 2 ]);
  List.iter
    (fun (name, inst) ->
      let net = inst.Instances.Gap_instances.network in
      race name net.Network.graph (mcf_comms net.Network.demands))
    [ ("I1(m=32)", Instances.Gap_instances.instance1 ~m:32);
      ("I3(m=8)", Instances.Gap_instances.instance3 ~m:8) ];
  (* A medium instance from opt_mlu's LP-dispatch band (nvars below the
     3000-variable limit): Germany50 with the demand matrix capped to
     the first [cap] distinct destinations.  At this size the dense
     tableau's O(rows * cols) pivot cost stops being affordable and the
     sparse solver's advantage is an order of magnitude. *)
  (let g50 = Topology.Datasets.load "Germany50" in
   let d50 =
     Demand_gen.mcf_synthetic ~epsilon:0.1 ~seed:1 ~flows_per_pair:4 g50
   in
   let cap = if !full then 14 else 10 in
   let seen = Hashtbl.create 16 in
   let keep c =
     if Hashtbl.mem seen c.Mcf.dst then true
     else if Hashtbl.length seen < cap then begin
       Hashtbl.replace seen c.Mcf.dst ();
       true
     end
     else false
   in
   let capped = Array.of_list (List.filter keep (Array.to_list (mcf_comms d50))) in
   race (Printf.sprintf "Germany50(%dt)" cap) g50 capped);
  (* Warm vs cold branch and bound: same tree, children re-solved from
     the parent basis vs from scratch.  Warm starting never changes any
     LP result, so the node counts must match; only pivots differ. *)
  row "\nMILP warm starts (children re-solve from the parent basis):\n";
  row "%-22s %8s %13s %13s %8s\n" "instance" "nodes" "warm pivots"
    "cold pivots" "ratio";
  let milp_case name run =
    Obs.Ctx.phase bctx "milp-warm-start" @@ fun () ->
    let go warm =
      let stats = Engine.Stats.create () in
      let t0 = Engine.Mono.now () in
      run ~warm ~stats;
      (stats, Engine.Mono.now () -. t0)
    in
    let sw, wall_w = go true in
    let sc, wall_c = go false in
    if sw.Engine.Stats.milp_nodes <> sc.Engine.Stats.milp_nodes then
      row "  WARNING: warm/cold node counts differ (%d vs %d)\n"
        sw.Engine.Stats.milp_nodes sc.Engine.Stats.milp_nodes;
    let ratio =
      float_of_int sw.Engine.Stats.lp_pivots
      /. float_of_int (max 1 sc.Engine.Stats.lp_pivots)
    in
    row "%-22s %8d %13d %13d %8.2f\n" name sw.Engine.Stats.milp_nodes
      sw.Engine.Stats.lp_pivots sc.Engine.Stats.lp_pivots ratio;
    emit
      (Printf.sprintf
         "{\"instance\": %S, \"kind\": \"milp-warm-start\", \"nodes\": %d, \
          \"lp_solves\": %d, \"warm_pivots\": %d, \"cold_pivots\": %d, \
          \"pivot_ratio\": %.4f, \"warm_fewer_pivots\": %b, \
          \"warm_wall_seconds\": %.6f, \"cold_wall_seconds\": %.6f}"
         name sw.Engine.Stats.milp_nodes sw.Engine.Stats.lp_solves
         sw.Engine.Stats.lp_pivots sc.Engine.Stats.lp_pivots ratio
         (sw.Engine.Stats.lp_pivots < sc.Engine.Stats.lp_pivots)
         wall_w wall_c)
  in
  List.iter
    (fun m ->
      let net =
        (Instances.Gap_instances.instance1 ~m).Instances.Gap_instances.network
      in
      milp_case
        (Printf.sprintf "I1(m=%d) USPR-LWO" m)
        (fun ~warm ~stats ->
          ignore
            (Uspr_milp.lwo ~warm ~stats net.Network.graph net.Network.demands)))
    [ 2; 3 ];
  (let demands =
     Demand_gen.mcf_synthetic ~epsilon:0.05 ~seed:1 ~flows_per_pair:2 abilene
   in
   let inv_w = Weights.inverse_capacity abilene in
   let max_nodes = if !full then 5_000 else 1_500 in
   milp_case "Abilene WPO" (fun ~warm ~stats ->
       ignore
         (Wpo_milp.solve ~max_nodes ~warm ~stats abilene inv_w
            (Network.aggregate demands))));
  (* Basis reuse across nearly-identical LPs: re-solving the Abilene
     min-MLU LP under scaled demand matrices, cold each time vs chaining
     the previous optimum's basis. *)
  row "\nMCF warm-basis reuse across scaled demand matrices (Abilene):\n";
  let comms =
    mcf_comms
      (Demand_gen.mcf_synthetic ~epsilon:0.1 ~seed:1 ~flows_per_pair:2 abilene)
  in
  let scales = [ 0.7; 0.85; 1.0; 1.15; 1.3 ] in
  let scaled s =
    Array.map (fun c -> { c with Mcf.demand = c.Mcf.demand *. s }) comms
  in
  let (cold_vals, t_cold), (warm_vals, t_warm) =
    Obs.Ctx.phase bctx "mcf-basis-reuse" (fun () ->
        let cold =
          time_best reps (fun () ->
              List.map (fun s -> Mcf.opt_mlu_lp abilene (scaled s)) scales)
        in
        let warm =
          time_best reps (fun () ->
              let _, vals =
                List.fold_left
                  (fun (basis, acc) s ->
                    let v, b = Mcf.opt_mlu_lp_warm ?basis abilene (scaled s) in
                    (Some b, v :: acc))
                  (None, []) scales
              in
              List.rev vals)
        in
        (cold, warm))
  in
  List.iter2
    (fun c w ->
      if abs_float (c -. w) > 1e-6 *. (1. +. abs_float c) then
        row "  WARNING: warm/cold MLU differ (%.9g vs %.9g)\n" c w)
    cold_vals warm_vals;
  row "%d solves: cold %.4fs, warm-chained %.4fs (%.1fx)\n"
    (List.length scales) t_cold t_warm (t_cold /. t_warm);
  emit
    (Printf.sprintf
       "{\"instance\": \"Abilene\", \"kind\": \"mcf-basis-reuse\", \
        \"solves\": %d, \"cold_wall_seconds\": %.6f, \
        \"warm_wall_seconds\": %.6f, \"speedup\": %.3f, \
        \"values_agree\": true}"
       (List.length scales) t_cold t_warm (t_cold /. t_warm));
  write_bench ~ctx:bctx ~file:"BENCH_lp.json" ~bench:"lp" (List.rev !records)

(* ------------------------------------------------------------------ *)
(* Observability overhead                                              *)
(* ------------------------------------------------------------------ *)

(* The zero-cost-when-disabled guard for lib/obs: the same HeurOSPF run
   on Abilene through the shared default context, through a fresh
   noop-tracer {!Obs.Ctx.t}, and through a live tracer with
   evaluator-level spans ([~engine_detail:true], the most expensive
   configuration).  All three must return the identical result; the
   noop context must cost within 2% of the default-context baseline
   (best-of-[reps] wall clock).  Results land in BENCH_obs.json. *)
let exp_obs () =
  section "Observability: run-context overhead (lib/obs)";
  let bctx = bench_ctx () in
  let g = Topology.Datasets.abilene () in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.05 ~seed:1 ~flows_per_pair:2 g
  in
  let evals = if !full then 4000 else 1000 in
  let reps = if !full then 15 else 11 in
  let params = ls_params ~seed:5 ~evals in
  let base, t_base =
    Obs.Ctx.phase bctx "default-ctx" (fun () ->
        time_best reps (fun () ->
            Local_search.optimize_ctx (Obs.Ctx.default ()) ~params g demands))
  in
  let noop, t_noop =
    Obs.Ctx.phase bctx "noop-ctx" (fun () ->
        time_best reps (fun () ->
            Local_search.optimize_ctx (Obs.Ctx.make ()) ~params g demands))
  in
  let last_tracer = ref Obs.Tracer.noop in
  let traced, t_traced =
    Obs.Ctx.phase bctx "traced" (fun () ->
        time_best reps (fun () ->
            let tracer = Obs.Tracer.create ~engine_detail:true () in
            last_tracer := tracer;
            Local_search.optimize_ctx
              (Obs.Ctx.make ~tracer ())
              ~params g demands))
  in
  let same (a : Local_search.result) (b : Local_search.result) =
    a.Local_search.mlu = b.Local_search.mlu
    && a.Local_search.weights = b.Local_search.weights
    && a.Local_search.evals = b.Local_search.evals
  in
  let identical = same base noop && same base traced in
  if not identical then
    failwith "obs: default / noop-ctx / traced runs returned different results";
  let disabled_overhead = (t_noop -. t_base) /. t_base in
  let traced_overhead = (t_traced -. t_base) /. t_base in
  let spans = Obs.Tracer.span_count !last_tracer in
  row "HeurOSPF Abilene, %d evals, best of %d (identical results):\n" evals reps;
  row "  %-28s %10.4fs\n" "Obs.Ctx.default" t_base;
  row "  %-28s %10.4fs  %+6.2f%%\n" "Obs.Ctx, noop tracer" t_noop
    (100. *. disabled_overhead);
  row "  %-28s %10.4fs  %+6.2f%%  (%d spans)\n" "Obs.Ctx, engine_detail trace"
    t_traced
    (100. *. traced_overhead)
    spans;
  if disabled_overhead >= 0.02 then
    row "  WARNING: disabled-tracing overhead %.2f%% exceeds the 2%% budget\n"
      (100. *. disabled_overhead);
  write_bench ~ctx:bctx ~file:"BENCH_obs.json" ~bench:"obs"
    [
      Printf.sprintf
        "{\"topology\": \"Abilene\", \"algorithm\": \"HeurOSPF\", \
         \"evaluations\": %d, \"reps\": %d, \"results_identical\": %b, \
         \"default_ctx_wall_seconds\": %.6f, \"noop_ctx_wall_seconds\": %.6f, \
         \"traced_wall_seconds\": %.6f, \"disabled_overhead\": %.6f, \
         \"disabled_overhead_ok\": %b, \"traced_overhead\": %.6f, \
         \"trace_spans\": %d}"
        evals reps identical t_base t_noop t_traced disabled_overhead
        (disabled_overhead < 0.02)
        traced_overhead spans;
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Candidate pruning                                                   *)
(* ------------------------------------------------------------------ *)

(* The Prune preprocessing pass: the quality-vs-k curve of GreedyWPO on
   the Figure 4 suite (objective delta vs the unpruned scan, candidates
   scanned, wall time), the pool-mode comparison at the default k, and
   the scale demonstration — a completed pruned run on the largest
   zoo-ladder topology, against the unpruned scan cost measured on a
   demand prefix and extrapolated (running it in full would dwarf the
   harness; the record says so).  BENCH_prune.json. *)
let exp_prune () =
  section "Candidate pruning: quality vs k, pool modes, scale";
  let bctx = bench_ctx () in
  let records = ref [] in
  let emit r = records := r :: !records in
  let scanned (st : Engine.Stats.t) =
    Array.fold_left ( + ) 0 st.Engine.Stats.worker_evals
  in
  let run ?prune g w demands =
    let stats = Engine.Stats.create () in
    let ctx = Obs.Ctx.make ~stats ~pool:!the_pool () in
    let t0 = Engine.Mono.now () in
    let r = Greedy_wpo.optimize_ctx ctx ?prune g w demands in
    let wall = Engine.Mono.now () -. t0 in
    (r, stats, wall)
  in
  let ks = if !full then [ 4; 8; 16; 32; 64 ] else [ 4; 8; 16; 32 ] in
  let kd = Prune.default_k in
  row "%-14s %8s" "topology" "full";
  List.iter (fun k -> row " %8s" (Printf.sprintf "k=%d" k)) ks;
  row "   (GreedyWPO MLU; pool mode centrality)\n";
  Obs.Ctx.phase bctx "fig4-quality" (fun () ->
      List.iter
        (fun name ->
          let g = Topology.Datasets.load name in
          let flows = max 2 (Digraph.edge_count g / 16) in
          let demands =
            Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:1 ~flows_per_pair:flows
              g
          in
          let w = Weights.inverse_capacity g in
          let base, base_st, base_wall = run g w demands in
          let base_scanned = scanned base_st in
          row "%-14s %8.3f" name base.Greedy_wpo.mlu;
          let record ~mode ~k =
            let prune = Prune.spec ~mode k in
            let r, st, wall = run ~prune g w demands in
            let delta =
              100. *. (r.Greedy_wpo.mlu -. base.Greedy_wpo.mlu)
              /. base.Greedy_wpo.mlu
            in
            emit
              (Printf.sprintf
                 "{\"topology\": %S, \"mode\": %S, \"k\": %d, \"mlu\": %.6f, \
                  \"unpruned_mlu\": %.6f, \"objective_delta_pct\": %.4f, \
                  \"scanned\": %d, \"unpruned_scanned\": %d, \
                  \"scan_reduction\": %.2f, \"candidates_pruned\": %d, \
                  \"candidates_kept\": %d, \"wall_seconds\": %.6f, \
                  \"unpruned_wall_seconds\": %.6f}"
                 name (Prune.mode_name mode) k r.Greedy_wpo.mlu
                 base.Greedy_wpo.mlu delta (scanned st) base_scanned
                 (float_of_int base_scanned
                 /. float_of_int (max 1 (scanned st)))
                 st.Engine.Stats.candidates_pruned
                 st.Engine.Stats.candidates_kept wall base_wall);
            r
          in
          List.iter
            (fun k ->
              let r = record ~mode:Prune.Centrality ~k in
              row " %8.3f" r.Greedy_wpo.mlu)
            ks;
          ignore (record ~mode:Prune.Coverage ~k:kd);
          ignore (record ~mode:Prune.Reach ~k:kd);
          (* The acceptance check rides on Germany50 at the default k:
             >= 5x fewer scanned candidates, <= 1% objective delta. *)
          if name = "Germany50" then begin
            let r, st, _ = run ~prune:(Prune.spec kd) g w demands in
            let reduction =
              float_of_int base_scanned /. float_of_int (max 1 (scanned st))
            in
            let delta =
              100. *. (r.Greedy_wpo.mlu -. base.Greedy_wpo.mlu)
              /. base.Greedy_wpo.mlu
            in
            emit
              (Printf.sprintf
                 "{\"topology\": \"Germany50\", \"check\": \"acceptance\", \
                  \"mode\": \"centrality\", \"k\": %d, \
                  \"scan_reduction\": %.2f, \"objective_delta_pct\": %.4f, \
                  \"meets_reduction_5x\": %b, \"meets_delta_1pct\": %b}"
                 kd reduction delta (reduction >= 5.) (delta <= 1.))
          end;
          row "\n%!")
        Topology.Datasets.fig4_names);
  (* Scale demonstration on the largest zoo-ladder topology: the pruned
     scan completes; the unpruned scan cost is measured on a demand
     prefix and extrapolated linearly (each demand scans n-2 candidates
     regardless of how many demands follow). *)
  Obs.Ctx.phase bctx "scale" (fun () ->
      let name = "Kdl" in
      let real =
        !scale && Sys.file_exists (Filename.concat !data_dir (name ^ ".graphml"))
      in
      let g =
        Topology.Datasets.load
          ?data_dir:(if real then Some !data_dir else None)
          name
      in
      let n = Digraph.node_count g and m = Digraph.edge_count g in
      let w = Weights.inverse_capacity g in
      let st = Random.State.make [| 0x5ca1e; n |] in
      let probe = Engine.Evaluator.create g w in
      let target = (if !full then 4 else 2) * n in
      let ds = ref [] and tries = ref 0 and got = ref 0 in
      while !got < target && !tries < 40 * target do
        incr tries;
        let s = Random.State.int st n and d = Random.State.int st n in
        if s <> d && Engine.Evaluator.reachable probe ~src:s ~dst:d then begin
          ds :=
            Network.demand s d (float_of_int (1 + Random.State.int st 9))
            :: !ds;
          incr got
        end
      done;
      let demands = Array.of_list (List.rev !ds) in
      let r, stp, pruned_wall = run ~prune:(Prune.spec kd) g w demands in
      let prefix_len = min 24 (Array.length demands) in
      let prefix = Array.sub demands 0 prefix_len in
      let _, _, prefix_wall = run g w prefix in
      let extrapolated =
        prefix_wall /. float_of_int prefix_len
        *. float_of_int (Array.length demands)
      in
      row "\nScale demo (%s, %s): %d nodes, %d edges, %d demands\n" name
        (if real then "graphml" else "synthetic")
        n m (Array.length demands);
      row "  pruned (k=%d):       MLU %.3f in %.2f s (%d scanned, %d pruned)\n"
        kd r.Greedy_wpo.mlu pruned_wall (scanned stp)
        stp.Engine.Stats.candidates_pruned;
      row "  unpruned, estimated: %.2f s (measured %.2f s on a %d-demand \
           prefix, extrapolated)\n"
        extrapolated prefix_wall prefix_len;
      emit
        (Printf.sprintf
           "{\"topology\": %S, \"check\": \"scale\", \"source\": %S, \
            \"nodes\": %d, \"edges\": %d, \"demands\": %d, \
            \"mode\": \"centrality\", \"k\": %d, \"pruned_mlu\": %.6f, \
            \"pruned_wall_seconds\": %.6f, \"pruned_scanned\": %d, \
            \"candidates_pruned\": %d, \"unpruned_prefix_demands\": %d, \
            \"unpruned_prefix_wall_seconds\": %.6f, \
            \"unpruned_extrapolated_seconds\": %.6f, \
            \"unpruned_extrapolated\": true, \
            \"unpruned_exceeds_pruned_budget\": %b}"
           name
           (if real then "graphml" else "synthetic")
           n m (Array.length demands) kd r.Greedy_wpo.mlu pruned_wall
           (scanned stp) stp.Engine.Stats.candidates_pruned prefix_len
           prefix_wall extrapolated
           (extrapolated > pruned_wall)));
  write_bench ~ctx:bctx
    ~extra:
      [ ("prune_mode", Obs.Export.json_str "centrality");
        ("prune_k", string_of_int kd) ]
    ~file:"BENCH_prune.json" ~bench:"prune" (List.rev !records)

(* ------------------------------------------------------------------ *)
(* Serving: streaming re-optimization latency and quality              *)
(* ------------------------------------------------------------------ *)

let exp_serve () =
  section "Serving: diurnal + flash-crowd replays through the daemon";
  let bctx = bench_ctx () in
  let records = ref [] in
  let emit r = records := r :: !records in
  (* Drives a replay through [Serve.Daemon.handle_line] directly (no
     process boundary), returning the daemon, the response lines and
     the wall time spent inside the event loop. *)
  let run_replay ?(timings = true) ?(deadline_ms = 10_000.) ?(lp_every = 1)
      ?(lp = true) ~pool ~deployed g demands lines =
    let weights, waypoints = deployed in
    let stats = Engine.Stats.create () in
    let ctx = Obs.Ctx.make ~stats ~pool () in
    let cfg =
      { Serve.Daemon.default_config with
        deadline_ms; timings; lp_bound = lp; lp_every; seed = 1 }
    in
    let d =
      Serve.Daemon.create ctx cfg ~deployed_weights:weights
        ~deployed_waypoints:waypoints g demands
    in
    let responses = ref [] in
    let t0 = Engine.Mono.now () in
    List.iter
      (fun line ->
        match Serve.Daemon.handle_line d line with
        | Some r -> responses := r :: !responses
        | None -> ())
      lines;
    let wall = Engine.Mono.now () -. t0 in
    (d, List.rev !responses, wall)
  in
  let gap_of r =
    match Serve.Sjson.parse r with
    | Error _ -> None
    | Ok j -> Option.bind (Serve.Sjson.member "gap" j) Serve.Sjson.to_float
  in
  (* (name, steps, lp_every): on Germany50 even a warm LP solve costs
     ~30 s, so the bound trajectory samples every k-th update there. *)
  let topos =
    if !full then [ ("Abilene", 1000, 1); ("Germany50", 1000, 100) ]
    else [ ("Abilene", 120, 1); ("Germany50", 60, 30) ]
  in
  let evals = if !full then 1500 else 300 in
  row "%-12s %7s %9s %9s %9s %10s %8s %8s  %s\n" "topology" "events"
    "p50 ms" "p99 ms" "upd/s" "final MLU" "rescr." "gap" "deterministic";
  List.iter
    (fun (name, steps, lp_every) ->
      Obs.Ctx.phase bctx name (fun () ->
          let g = Topology.Datasets.load name in
          let flows = max 2 (Digraph.edge_count g / 16) in
          let demands =
            Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:1 ~flows_per_pair:flows
              g
          in
          let joint =
            Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params:(ls_params ~seed:1 ~evals) g demands
          in
          let deployed = (joint.Joint.int_weights, joint.Joint.waypoints) in
          let replay =
            { Scenario.default_replay with replay_seed = 1; steps }
          in
          let lines = Scenario.replay_events replay demands in
          (* Timed pass: latency percentiles, throughput, gap
             trajectory. *)
          let d, responses, wall =
            run_replay ~lp_every ~pool:!the_pool ~deployed g demands lines
          in
          let s = Serve.Daemon.summary d in
          let lat = s.Serve.Daemon.latencies in
          let p50 = 1000. *. Serve.Daemon.quantile lat 0.5 in
          let p99 = 1000. *. Serve.Daemon.quantile lat 0.99 in
          let pmax = 1000. *. Array.fold_left max 0. lat in
          (* Throughput over time spent *inside* updates: the wall also
             carries the off-clock LP solves, which [lp_every] makes a
             sampling choice, not a serving cost. *)
          let ups =
            float_of_int s.Serve.Daemon.updates
            /. Array.fold_left ( +. ) 0. lat
          in
          let gaps = List.filter_map gap_of responses in
          let mean_gap = if gaps = [] then nan else mean gaps in
          let final_gap =
            match List.rev gaps with [] -> nan | gp :: _ -> gp
          in
          (* Quality gate: the incumbent after the whole drift vs a
             from-scratch Joint re-solve on the final matrix. *)
          let _, final_demands, _ = Serve.Daemon.state d in
          let rescratch =
            Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params:(ls_params ~seed:1 ~evals) g
              final_demands
          in
          let within10 =
            s.Serve.Daemon.mlu <= 1.1 *. rescratch.Joint.mlu +. 1e-9
          in
          (* Determinism gate: timings off, deadline off, sequential
             pool vs a 2-domain pool must emit identical bytes.  LP off:
             the solver is single-threaded (its output cannot depend on
             the pool) and re-solving the whole bound trajectory twice
             more would dominate the experiment. *)
          let det_run pool =
            let _, rs, _ =
              run_replay ~timings:false ~deadline_ms:(-1.) ~lp:false ~pool
                ~deployed g demands lines
            in
            String.concat "\n" rs
          in
          let seq_out = det_run Par.Pool.sequential in
          let par_out = Par.Pool.with_pool ~jobs:2 det_run in
          let deterministic = String.equal seq_out par_out in
          row "%-12s %7d %9.2f %9.2f %9.1f %10.3f %8.3f %8.3f  %b\n" name
            (List.length lines) p50 p99 ups s.Serve.Daemon.mlu
            rescratch.Joint.mlu mean_gap deterministic;
          emit
            (Printf.sprintf
               "{\"topology\": %S, \"lp_every\": %d, \"events\": %d, \
                \"updates\": %d, \
                \"improved\": %d, \"degraded\": %d, \"deadline_hits\": %d, \
                \"p50_ms\": %.4f, \"p99_ms\": %.4f, \"max_ms\": %.4f, \
                \"updates_per_sec\": %.2f, \"wall_seconds\": %.6f, \
                \"weight_churn_total\": %d, \"waypoint_churn_total\": %d, \
                \"mlu_final\": %.6f, \"lp_bound_final\": %.6f, \
                \"rescratch_mlu\": %.6f, \"within_10pct\": %b, \
                \"mean_gap\": %.6f, \"final_gap\": %.6f, \
                \"deterministic_across_jobs\": %b}"
               name lp_every (List.length lines) s.Serve.Daemon.updates
               s.Serve.Daemon.improved s.Serve.Daemon.degraded
               s.Serve.Daemon.deadline_hits p50 p99 pmax ups wall
               s.Serve.Daemon.weight_churn_total
               s.Serve.Daemon.waypoint_churn_total s.Serve.Daemon.mlu
               s.Serve.Daemon.lp_bound rescratch.Joint.mlu within10 mean_gap
               final_gap deterministic)))
    topos;
  write_bench ~ctx:bctx ~file:"BENCH_serve.json" ~bench:"serve"
    (List.rev !records)

(* ------------------------------------------------------------------ *)
(* Solver frontier                                                     *)
(* ------------------------------------------------------------------ *)

(* Every registered backend on Abilene + the Figure 4 suite: per
   (topology, solver) record the MLU, the wall time, and the fraction
   of the inverse-capacity -> LP-optimum gap the solver closes — the
   quality-vs-time frontier the registry opens up.  The LP bound is
   exact simplex where the LP fits under [grad_lp_limit] and the FPTAS
   fallback otherwise ({!Mcf.opt_mlu}'s own dispatch); GradWO runs only
   under the exact bound and skipped runs are emitted as records, not
   silently dropped.  The two headline checks land in a closing
   acceptance record: OMW must close a strictly larger gap fraction
   than single-weight HeurOSPF on at least one topology, GradWO must
   land within 10% of the LP bound on Abilene, and both new backends
   must return bit-identical results for every pool size.
   BENCH_solvers.json, schema bench/solvers/1. *)
let exp_solvers () =
  section "Solver frontier: registered backends on Abilene + the Figure 4 suite";
  let bctx = bench_ctx () in
  let records = ref [] in
  let emit r = records := r :: !records in
  let evals = if !full then 3000 else 400 in
  let seed = 1 in
  let config = { Solver.default_config with Solver.evals; Solver.seed } in
  let topo_names = "Abilene" :: Topology.Datasets.fig4_names in
  let heur_gap = Hashtbl.create 16 and omw_gap = Hashtbl.create 16 in
  let grad_abilene = ref nan and lp_abilene = ref nan in
  List.iter
    (fun name ->
      let g = Topology.Datasets.load name in
      let flows =
        if !full then max 1 (Digraph.edge_count g / 4)
        else max 2 (Digraph.edge_count g / 16)
      in
      let epsilon = if !full then 0.08 else 0.15 in
      let demands = Demand_gen.mcf_synthetic ~epsilon ~seed ~flows_per_pair:flows g in
      let comms =
        Array.map
          (fun (src, dst, size) -> Mcf.commodity src dst size)
          (Network.to_commodities demands)
      in
      let vars = lp_var_count g demands in
      let lp_exact = vars <= grad_lp_limit in
      let lp, t_lp =
        Obs.Ctx.phase bctx "lp-bound" (fun () ->
            time_best 1 (fun () ->
                Mcf.opt_mlu ~lp_var_limit:grad_lp_limit g comms))
      in
      let inv = Ecmp.mlu_of g (Weights.inverse_capacity g) demands in
      if name = "Abilene" then lp_abilene := lp;
      let gap_denominator = inv -. lp in
      row "%-14s invcap %.4f, LP bound %.4f (%s, %d vars, %.2fs)\n%!" name inv
        lp
        (if lp_exact then "exact" else "FPTAS")
        vars t_lp;
      let gap_closed mlu =
        if gap_denominator > 1e-9 then (inv -. mlu) /. gap_denominator else nan
      in
      let json_gap gc =
        if Float.is_nan gc then "null" else Printf.sprintf "%.6f" gc
      in
      List.iter
        (fun (alg, _doc) ->
          if (alg = "grad" || alg = "grad+wpo") && not lp_exact then begin
            row "  %-10s skipped (LP %d vars > %d)\n%!" alg vars grad_lp_limit;
            emit
              (Printf.sprintf
                 "{\"topology\": %s, \"solver\": %s, \"skipped\": true, \
                  \"invcap_mlu\": %.6f, \"lp_bound\": %.6f, \"lp_exact\": %b, \
                  \"lp_vars\": %d}"
                 (Obs.Export.json_str name) (Obs.Export.json_str alg) inv lp
                 lp_exact vars)
          end
          else
            match Solver.find alg with
            | None -> ()
            | Some builder ->
                let sv = builder config in
                let r, wall =
                  Obs.Ctx.phase bctx alg (fun () ->
                      time_best 1 (fun () ->
                          Solver.solve sv
                            (Obs.Ctx.make ~pool:!the_pool ())
                            g demands))
                in
                let gc = gap_closed r.Solver.mlu in
                if alg = "lwo" then Hashtbl.replace heur_gap name gc;
                if alg = "omw" then Hashtbl.replace omw_gap name gc;
                if alg = "grad" && name = "Abilene" then
                  grad_abilene := r.Solver.mlu;
                row "  %-10s MLU %.4f  gap closed %s  %8.3fs  (%d evals)\n%!"
                  alg r.Solver.mlu
                  (if Float.is_nan gc then "   -" else Printf.sprintf "%4.0f%%" (100. *. gc))
                  wall r.Solver.evals;
                emit
                  (Printf.sprintf
                     "{\"topology\": %s, \"solver\": %s, \"skipped\": false, \
                      \"mlu\": %.6f, \"invcap_mlu\": %.6f, \"lp_bound\": %.6f, \
                      \"lp_exact\": %b, \"gap_closed\": %s, \
                      \"wall_seconds\": %.6f, \"evaluations\": %d}"
                     (Obs.Export.json_str name) (Obs.Export.json_str alg)
                     r.Solver.mlu inv lp lp_exact (json_gap gc) wall
                     r.Solver.evals))
        (Solver.names ()))
    topo_names;
  (* Acceptance: OMW must close strictly more of the invcap->LP gap
     than HeurOSPF somewhere; GradWO must sit within 10% of the LP
     bound on Abilene; both backends bit-identical across pools. *)
  let omw_wins =
    List.filter
      (fun name ->
        match (Hashtbl.find_opt omw_gap name, Hashtbl.find_opt heur_gap name) with
        | Some o, Some h -> (not (Float.is_nan o)) && not (Float.is_nan h) && o > h
        | _ -> false)
      topo_names
  in
  let grad_ok = !grad_abilene <= 1.1 *. !lp_abilene in
  let jobs_identical =
    let g = Topology.Datasets.abilene () in
    let demands =
      Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed ~flows_per_pair:2 g
    in
    let solve alg pool =
      match Solver.find alg with
      | None -> None
      | Some builder ->
          Some (Solver.solve (builder config) (Obs.Ctx.make ~pool ()) g demands)
    in
    List.for_all
      (fun alg ->
        let seq = solve alg Par.Pool.sequential in
        let par = Par.Pool.with_pool ~jobs:4 (solve alg) in
        seq = par && seq <> None)
      [ "grad"; "omw" ]
  in
  row "\nOMW closes a larger gap than HeurOSPF on: %s\n"
    (if omw_wins = [] then "NONE (acceptance violated)"
     else String.concat ", " omw_wins);
  row "GradWO on Abilene: %.4f vs LP %.4f (within 10%%: %b)\n" !grad_abilene
    !lp_abilene grad_ok;
  row "grad/omw bit-identical across --jobs: %b\n" jobs_identical;
  if omw_wins = [] || (not grad_ok) || not jobs_identical then
    row "WARNING: solver-frontier acceptance checks failed\n";
  emit
    (Printf.sprintf
       "{\"kind\": \"acceptance\", \"omw_beats_heurospf_on\": [%s], \
        \"grad_abilene_mlu\": %.6f, \"abilene_lp_bound\": %.6f, \
        \"grad_within_10pct_of_lp\": %b, \"jobs_identical\": %b}"
       (String.concat ", " (List.map Obs.Export.json_str omw_wins))
       !grad_abilene !lp_abilene grad_ok jobs_identical);
  write_bench ~ctx:bctx ~file:"BENCH_solvers.json" ~bench:"solvers"
    (List.rev !records)

let exp_perf () =
  section "Micro-benchmarks (bechamel; ns per run, OLS fit)";
  let open Bechamel in
  let abilene = Topology.Datasets.abilene () in
  let ta2 = Topology.Datasets.load "Ta2" in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.25 ~seed:1 ~flows_per_pair:2 abilene
  in
  let unit_w_ta2 = Weights.unit ta2 in
  let unit_w_ab = Weights.unit abilene in
  let inst1 = Instances.Gap_instances.instance1 ~m:16 in
  let g1 = inst1.Instances.Gap_instances.network.Network.graph in
  let lp =
    { Linprog.Simplex.nvars = 12; sense = Linprog.Simplex.Maximize;
      objective = List.init 12 (fun j -> (j, 1. +. float_of_int (j mod 3)));
      constrs =
        Linprog.Simplex.constr (List.init 12 (fun j -> (j, 1.))) Linprog.Simplex.Le 10.
        :: List.init 12 (fun j ->
               Linprog.Simplex.constr [ (j, 1.) ] Linprog.Simplex.Le 2.) }
  in
  let tests =
    [
      Test.make ~name:"dijkstra-ta2" (Staged.stage (fun () ->
          ignore (Paths.dijkstra ta2 ~weights:unit_w_ta2 ~source:0)));
      Test.make ~name:"ecmp-eval-abilene" (Staged.stage (fun () ->
          ignore (Ecmp.mlu_of abilene unit_w_ab demands)));
      Test.make ~name:"dinic-instance1" (Staged.stage (fun () ->
          ignore
            (Maxflow.max_flow g1 ~source:inst1.Instances.Gap_instances.source
               ~target:inst1.Instances.Gap_instances.target)));
      Test.make ~name:"simplex-12var" (Staged.stage (fun () ->
          ignore (Linprog.Simplex.solve lp)));
      Test.make ~name:"greedy-wpo-abilene" (Staged.stage (fun () ->
          ignore (Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) abilene unit_w_ab demands)));
    ]
  in
  let grouped = Test.make_grouped ~name:"te" tests in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> row "%-24s %14.0f ns/run\n" name est
      | _ -> row "%-24s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [ ("table1", exp_table1); ("fig1", exp_fig1); ("fig2", exp_fig2);
    ("fig3", exp_fig3); ("fig4", exp_fig4); ("fig5", exp_fig5);
    ("fig6", exp_fig6); ("fig7", exp_fig7); ("milp", exp_milp);
    ("ablation", exp_ablation); ("engine", exp_engine);
    ("parallel", exp_parallel); ("robust", exp_robust); ("lp", exp_lp);
    ("obs", exp_obs); ("prune", exp_prune); ("serve", exp_serve);
    ("solvers", exp_solvers); ("perf", exp_perf) ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let jobs = ref 1 in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--full" :: rest ->
      full := true;
      parse acc rest
    | "--scale" :: rest ->
      scale := true;
      parse acc rest
    | "--data-dir" :: d :: rest ->
      data_dir := d;
      parse acc rest
    | "--jobs" :: n :: rest ->
      jobs := int_of_string n;
      parse acc rest
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
      jobs := int_of_string (String.sub a 7 (String.length a - 7));
      parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] args in
  if !jobs > 1 then the_pool := Par.Pool.create ~jobs:!jobs ();
  let selected = if args = [] then List.map fst experiments else args in
  Printf.printf
    "Joint link-weight and segment optimization - reproduction harness%s%s\n"
    (if !full then " (FULL scale)" else " (quick scale; use --full for paper scale)")
    (if !jobs > 1 then Printf.sprintf " [%d worker domains]" !jobs else "");
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.printf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map fst experiments)))
    selected;
  if !jobs > 1 then Par.Pool.shutdown !the_pool
