(* te-tool: command-line front end for the joint link-weight and segment
   optimization library.

     te-tool topos                       list bundled topologies
     te-tool mlu -t Abilene -w invcap    MLU of a standard weight setting
     te-tool lwo -t Germany50            HeurOSPF link-weight optimization
     te-tool wpo -t Abilene -w invcap    GreedyWPO waypoints
     te-tool joint -t Abilene            JOINT-Heur (Algorithm 2)
     te-tool gap -i 1 -m 16              gap summary of a paper instance
     te-tool lwo-apx -i 3 -m 6           Algorithm 1 on a paper instance
     te-tool nanonet                     the Figure 7 experiment
     te-tool robust -t Abilene           robustness sweep (failures x shifts x policies)

   Topologies may also be read from SNDLib (XML or native) or GraphML
   files with --file. *)

open Cmdliner
open Te

(* Returns the graph plus any demand matrix carried by the file. *)
let load_topology name file =
  match file with
  | Some path ->
    if Filename.check_suffix path ".graphml" || Filename.check_suffix path ".gml"
    then (Topology.Graphml.load_file path, [])
    else
      let t = Topology.Sndlib.load_file path in
      (t.Topology.Sndlib.graph, t.Topology.Sndlib.demands)
  | None -> (
    try (Topology.Datasets.load name, [])
    with Not_found ->
      Printf.eprintf "unknown topology %S; try `te-tool topos'\n" name;
      exit 2)

let load_graph name file = fst (load_topology name file)

let make_demands ?(file_demands = []) g ~seed ~kind ~flows =
  match (kind, file_demands) with
  | "file", [] ->
    Printf.eprintf "--demands file requires an SNDLib file with a DEMANDS section\n";
    exit 2
  | "file", ds ->
    (* The file's own matrix, MCF-rescaled so OPT = 1 like the paper. *)
    let demands =
      List.filter_map
        (fun (s, t, v) ->
          match
            ( Netgraph.Digraph.node_of_name g s,
              Netgraph.Digraph.node_of_name g t )
          with
          | exception Not_found -> None
          | s, t when s <> t && v > 0. -> Some (Network.demand s t v)
          | _ -> None)
        ds
      |> Array.of_list
    in
    fst (Demand_gen.scale_to_opt ~epsilon:0.1 g demands)
  | "mcf", _ -> Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed ~flows_per_pair:flows g
  | "gravity", _ -> Demand_gen.gravity ~epsilon:0.15 ~seed ~flows_per_pair:flows g
  | other, _ ->
    Printf.eprintf "unknown demand kind %S (mcf|gravity|file)\n" other;
    exit 2

let weights_of g = function
  | "unit" -> Weights.unit g
  | "invcap" -> Weights.inverse_capacity g
  | other ->
    Printf.eprintf "unknown weight setting %S (unit|invcap)\n" other;
    exit 2

(* Shared options *)
let topo_arg =
  Arg.(value & opt string "Abilene" & info [ "t"; "topology" ] ~docv:"NAME"
         ~doc:"Bundled topology name (see `te-tool topos').")

let file_arg =
  Arg.(value & opt (some file) None & info [ "file" ] ~docv:"PATH"
         ~doc:"Load the topology from an SNDLib (XML/native) or GraphML file.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed for demand generation.")

let demands_arg =
  Arg.(value & opt string "mcf" & info [ "demands" ] ~docv:"KIND"
         ~doc:"Demand generator: mcf (Figure 4 style), gravity (Figure 6 \
               style), or file (the SNDLib file's own matrix, MCF-rescaled).")

let flows_arg =
  Arg.(value & opt int 2 & info [ "flows" ] ~doc:"Sub-flows per demand pair.")

let weights_arg =
  Arg.(value & opt string "invcap" & info [ "w"; "weights" ] ~docv:"SETTING"
         ~doc:"Weight setting: unit or invcap.")

let evals_arg =
  Arg.(value & opt int 1500 & info [ "evals" ] ~doc:"Local-search evaluation budget.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print the evaluation engine's counters and timers \
               (evaluations, full vs. incremental SPF rebuilds, cache \
               hits, parallel efficiency) after the run.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for the candidate scans and probe fan-out. \
               The result is bit-identical for every N; only the wall \
               time changes.")

let restarts_arg =
  Arg.(value & opt int 1 & info [ "restarts" ] ~docv:"N"
         ~doc:"Independent reseeded local-search walks run in parallel; \
               the best-MLU walk wins.  1 reproduces the historical \
               single walk.")

(* Runs [f] inside a pool of [jobs] worker domains.  jobs = 1 uses the
   shared sequential pool, so no domain is ever spawned. *)
let with_pool jobs f =
  if jobs < 1 then begin
    Printf.eprintf "--jobs must be >= 1\n";
    exit 2
  end;
  if jobs = 1 then f Par.Pool.sequential else Par.Pool.with_pool ~jobs f

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH"
         ~doc:"Write the run's span stream (schema trace/1, one JSON \
               object per line) to $(docv).")

let summary_arg =
  Arg.(value & flag & info [ "summary" ]
         ~doc:"Print a run-summary/1 JSON digest after the run: per-phase \
               wall time, engine counters, solver metrics, parallel \
               efficiency.")

(* One run context per CLI invocation: the worker pool from --jobs, and
   a live tracer exactly when --trace/--summary needs one (otherwise the
   noop tracer, whose probes cost one load+branch).  [f] solves and
   prints its result; engine stats, the trace file and the summary
   follow in that order. *)
let with_ctx ~jobs ~stats ~trace ~summary f =
  let tracer =
    if trace <> None || summary then Obs.Tracer.create () else Obs.Tracer.noop
  in
  let ctx, wall =
    with_pool jobs (fun pool ->
        let ctx = Obs.Ctx.make ~tracer ~pool () in
        let t0 = Engine.Mono.now () in
        f ctx;
        (ctx, Engine.Mono.now () -. t0))
  in
  if stats then Format.printf "%a@." Engine.Stats.pp ctx.Obs.Ctx.stats;
  (match trace with
  | Some path ->
    Obs.Export.write_trace ~path tracer;
    Printf.printf "wrote %s\n" path
  | None -> ());
  if summary then print_string (Obs.Export.run_summary ~wall ctx)

let m_arg =
  Arg.(value & opt int 8 & info [ "m" ] ~doc:"Size parameter of the paper instance.")

let instance_arg =
  Arg.(value & opt int 1 & info [ "i"; "instance" ] ~doc:"Paper TE-Instance number (1-5).")

let instance_of i m =
  match i with
  | 1 -> Instances.Gap_instances.instance1 ~m
  | 2 -> Instances.Gap_instances.instance2 ~m
  | 3 -> Instances.Gap_instances.instance3 ~m
  | 4 -> Instances.Gap_instances.instance4 ~m
  | 5 -> Instances.Gap_instances.instance5 ~m
  | _ ->
    Printf.eprintf "instance must be 1-5\n";
    exit 2

(* topos *)
let topos_cmd =
  let run () =
    Printf.printf "%-14s %6s %6s %s\n" "name" "nodes" "links" "kind";
    List.iter
      (fun i ->
        Printf.printf "%-14s %6d %6d %s\n" i.Topology.Datasets.name
          i.Topology.Datasets.nodes i.Topology.Datasets.links
          (match i.Topology.Datasets.kind with
          | Topology.Datasets.Embedded -> "embedded (real structure)"
          | Topology.Datasets.Synthetic -> "synthetic stand-in"))
      Topology.Datasets.all
  in
  Cmd.v (Cmd.info "topos" ~doc:"List the bundled topologies")
    Term.(const run $ const ())

(* mlu *)
let mlu_cmd =
  let run topo file seed kind flows wsetting =
    let g, file_demands = load_topology topo file in
    let demands = make_demands ~file_demands g ~seed ~kind ~flows in
    let w = weights_of g wsetting in
    let mlu = Ecmp.mlu_of g w demands in
    Printf.printf "topology %s: %d nodes, %d edges, %d demands\n" topo
      (Netgraph.Digraph.node_count g) (Netgraph.Digraph.edge_count g)
      (Array.length demands);
    Printf.printf "MLU under %s weights: %.4f (demands scaled so OPT = 1)\n"
      wsetting mlu
  in
  Cmd.v (Cmd.info "mlu" ~doc:"Evaluate the MLU of a standard weight setting")
    Term.(const run $ topo_arg $ file_arg $ seed_arg $ demands_arg $ flows_arg
          $ weights_arg)

(* The optimizer table: each entry packs a fully configured
   first-class Solver.S module from its own flags, plus a printer in the
   command's historical output format.  The shared driver below loads,
   generates demands and solves under one run context, with each phase
   recorded for --trace/--summary. *)

let print_lwo _g _demands (r : Solver.result) =
  Printf.printf "HeurOSPF: MLU %.4f -> %.4f (%d evaluations)\n"
    r.Solver.initial_mlu r.Solver.mlu r.Solver.evals;
  match r.Solver.weights with
  | Some w ->
    Printf.printf "weights:";
    Array.iteri
      (fun e wv ->
        if e < 20 then Printf.printf " %d" wv
        else if e = 20 then Printf.printf " ...")
      w;
    print_newline ()
  | None -> ()

let print_wpo wsetting _g demands (r : Solver.result) =
  let used =
    match r.Solver.waypoints with
    | Some s -> Segments.count_waypoints s
    | None -> 0
  in
  Printf.printf
    "GreedyWPO under %s weights: MLU %.4f -> %.4f (%d/%d demands got a waypoint)\n"
    wsetting r.Solver.initial_mlu r.Solver.mlu used (Array.length demands)

let print_joint _g _demands (r : Solver.result) =
  List.iter
    (fun (stage, mlu) -> Printf.printf "%-12s MLU %.4f\n" stage mlu)
    r.Solver.stages;
  Printf.printf "final        MLU %.4f (%d waypoints in use)\n" r.Solver.mlu
    (match r.Solver.waypoints with
    | Some s -> Segments.count_waypoints s
    | None -> 0)

let run_solver (solver, print) topo file seed kind flows jobs stats trace
    summary =
  with_ctx ~jobs ~stats ~trace ~summary (fun ctx ->
      let g, file_demands =
        Obs.Ctx.phase ctx "load" (fun () -> load_topology topo file)
      in
      let demands =
        Obs.Ctx.phase ctx "demands" (fun () ->
            make_demands ~file_demands g ~seed ~kind ~flows)
      in
      let r =
        Obs.Ctx.phase ctx "solve" (fun () -> Solver.solve solver ctx g demands)
      in
      print g demands r)

let solver_cmd (name, doc, conf_term) =
  Cmd.v (Cmd.info name ~doc)
    Term.(const run_solver $ conf_term $ topo_arg $ file_arg $ seed_arg
          $ demands_arg $ flows_arg $ jobs_arg $ stats_arg $ trace_arg
          $ summary_arg)

let full_pipeline_arg =
  Arg.(value & flag & info [ "full-pipeline" ]
         ~doc:"Run Algorithm 2 steps 3-4 (split demands, re-optimize weights).")

let prune_arg =
  Arg.(value & opt (some int) None & info [ "prune" ] ~docv:"K"
         ~doc:"Prune the waypoint candidate scan: keep a pool of K \
               centrality-scored middlepoints and cap each demand's \
               candidate list at K (a non-positive K selects the built-in \
               default).  Off when omitted — results are then \
               byte-identical to runs without the flag.")

let prune_mode_arg =
  Arg.(value & opt string "centrality" & info [ "prune-mode" ] ~docv:"MODE"
         ~doc:"Middlepoint pool selection under --prune: centrality (top-K \
               ECMP betweenness), coverage (greedy marginal group \
               coverage), or reach (per-demand filters only).")

let prune_spec_of k mode =
  match k with
  | None -> None
  | Some k -> (
    let k = if k <= 0 then Prune.default_k else k in
    match Prune.mode_of_string mode with
    | Ok mode -> Some (Prune.spec ~mode k)
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2)

let passes_arg =
  Arg.(value & opt int 1 & info [ "passes" ] ~docv:"N"
         ~doc:"Greedy waypoint passes: later passes revisit every demand \
               and may reassign or drop its waypoint.")

(* The shared solver configuration, one term for every algorithm
   command: each registered builder applies only the fields its
   algorithm uses. *)
let config_term =
  Term.(const (fun seed evals restarts passes full_pipeline prune prune_mode
                   wsetting ->
            {
              Solver.seed;
              evals;
              restarts;
              passes;
              full_pipeline;
              prune = prune_spec_of prune prune_mode;
              weights = (fun g -> weights_of g wsetting);
            })
        $ seed_arg $ evals_arg $ restarts_arg $ passes_arg $ full_pipeline_arg
        $ prune_arg $ prune_mode_arg $ weights_arg)

(* Every algorithm command resolves its solver through the registry —
   the historical lwo/wpo/joint commands are aliases for `solve --alg'
   with their historical printers. *)
let solver_of_alg alg config =
  match Solver.find alg with
  | Some builder -> builder config
  | None ->
    Printf.eprintf "unknown algorithm %S; try `te-tool list-algs'\n" alg;
    exit 2

let print_generic _g _demands (r : Solver.result) =
  List.iter
    (fun (stage, mlu) -> Printf.printf "%-12s MLU %.4f\n" stage mlu)
    r.Solver.stages;
  Printf.printf "final        MLU %.4f" r.Solver.mlu;
  if Float.is_finite r.Solver.initial_mlu then
    Printf.printf " (start %.4f)" r.Solver.initial_mlu;
  if r.Solver.evals > 0 then Printf.printf "; %d evaluations" r.Solver.evals;
  (match r.Solver.waypoints with
  | Some s -> Printf.printf "; %d waypoints" (Segments.count_waypoints s)
  | None -> ());
  (match r.Solver.splits with
  | Some a ->
    let split =
      Array.fold_left (fun acc x -> if x < 1. then acc + 1 else acc) 0 a
    in
    Printf.printf "; %d/%d demands split onto the second system" split
      (Array.length a)
  | None -> ());
  print_newline ()

let alg_arg_of_solve =
  Arg.(value & opt string "joint" & info [ "alg" ] ~docv:"NAME"
         ~doc:"Registered solver to run (see `te-tool list-algs').")

let lwo_conf =
  Term.(const (fun cfg -> (solver_of_alg "lwo" cfg, print_lwo)) $ config_term)

let wpo_conf =
  Term.(const (fun cfg wsetting ->
            (solver_of_alg "wpo" cfg, print_wpo wsetting))
        $ config_term $ weights_arg)

let joint_conf =
  Term.(const (fun cfg -> (solver_of_alg "joint" cfg, print_joint))
        $ config_term)

let solve_conf =
  Term.(const (fun alg cfg -> (solver_of_alg alg cfg, print_generic))
        $ alg_arg_of_solve $ config_term)

let solver_cmds =
  List.map solver_cmd
    [ ("lwo", "Link-weight optimization (HeurOSPF local search)", lwo_conf);
      ("wpo", "Waypoint optimization (Algorithm 3, GreedyWPO)", wpo_conf);
      ("joint", "Joint optimization (Algorithm 2, JOINT-Heur)", joint_conf);
      ("solve", "Run any registered solver (--alg NAME)", solve_conf) ]

let list_algs_cmd =
  let run () =
    List.iter
      (fun (name, doc) -> Printf.printf "%-10s %s\n" name doc)
      (Solver.names ())
  in
  Cmd.v
    (Cmd.info "list-algs" ~doc:"List the registered solver algorithms")
    Term.(const run $ const ())

(* gap *)
let gap_cmd =
  let run i m =
    let inst = instance_of i m in
    let net = inst.Instances.Gap_instances.network in
    let g = net.Network.graph in
    Printf.printf "%s: %d nodes, %d edges, %d demands (total %.3f)\n"
      inst.Instances.Gap_instances.name (Netgraph.Digraph.node_count g)
      (Netgraph.Digraph.edge_count g)
      (Array.length net.Network.demands)
      (Network.total_demand net);
    let joint =
      Ecmp.mlu_of ~waypoints:inst.Instances.Gap_instances.joint_waypoints g
        inst.Instances.Gap_instances.joint_weights net.Network.demands
    in
    Printf.printf "Joint (lemma construction)  MLU %.4f (predicted %.4f)\n" joint
      inst.Instances.Gap_instances.predicted_joint_mlu;
    (match inst.Instances.Gap_instances.lwo_weights with
    | Some w ->
      let lwo = Ecmp.mlu_of g w net.Network.demands in
      Printf.printf "LWO (optimal weights)       MLU %.4f" lwo;
      (match inst.Instances.Gap_instances.predicted_lwo_mlu with
      | Some p -> Printf.printf " (predicted %.4f)" p
      | None -> ());
      Printf.printf "  -> gap %.2f\n" (lwo /. joint)
    | None -> ());
    let wpo =
      Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) g (Weights.unit g)
        net.Network.demands
    in
    Printf.printf "WPO greedy (unit weights)   MLU %.4f  -> gap %.2f\n"
      wpo.Greedy_wpo.mlu (wpo.Greedy_wpo.mlu /. joint)
  in
  Cmd.v (Cmd.info "gap" ~doc:"Optimality-gap summary of a paper TE instance")
    Term.(const run $ instance_arg $ m_arg)

(* lwo-apx *)
let lwo_apx_cmd =
  let run i m =
    let inst = instance_of i m in
    let g = inst.Instances.Gap_instances.network.Network.graph in
    let r =
      Lwo_apx.solve g ~source:inst.Instances.Gap_instances.source
        ~target:inst.Instances.Gap_instances.target
    in
    Printf.printf "LWO-APX on %s:\n" inst.Instances.Gap_instances.name;
    Printf.printf "  max (s,t)-flow       %.4f\n" r.Lwo_apx.max_flow_value;
    Printf.printf "  realized ES-flow     %.4f\n" r.Lwo_apx.es_flow_value;
    Printf.printf "  approximation ratio  %.4f (Theorem 5.4 bound: n ln n = %.1f)\n"
      (Lwo_apx.approximation_ratio r)
      (let n = float_of_int (Netgraph.Digraph.node_count g) in
       n *. log n)
  in
  Cmd.v
    (Cmd.info "lwo-apx"
       ~doc:"Run Algorithm 1 (approximate LWO) on a paper TE instance")
    Term.(const run $ instance_arg $ m_arg)

(* nanonet *)
let nanonet_cmd =
  let run trials streams =
    let s = Netsim.Nanonet.run ~trials ~streams_per_demand:streams () in
    List.iteri
      (fun i t ->
        Printf.printf "trial %-2d  Joint %.4f  Weights %.4f\n" (i + 1)
          t.Netsim.Nanonet.joint t.Netsim.Nanonet.weights)
      s.Netsim.Nanonet.trials;
    Printf.printf "Joint median %.4f; Weights median %.4f (range %.4f-%.4f)\n"
      s.Netsim.Nanonet.joint_median s.Netsim.Nanonet.weights_median
      s.Netsim.Nanonet.weights_min s.Netsim.Nanonet.weights_max
  in
  let trials_arg = Arg.(value & opt int 10 & info [ "trials" ] ~doc:"Trials.") in
  let streams_arg =
    Arg.(value & opt int 32 & info [ "streams" ] ~doc:"Hashed streams per demand.")
  in
  Cmd.v
    (Cmd.info "nanonet" ~doc:"Hash-based ECMP validation experiment (Figure 7)")
    Term.(const run $ trials_arg $ streams_arg)

(* failures *)
let failures_cmd =
  let run topo file seed kind flows evals =
    let g, file_demands = load_topology topo file in
    let demands = make_demands ~file_demands g ~seed ~kind ~flows in
    let ls_params = { Local_search.default_params with max_evals = evals; seed } in
    let joint = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params g demands in
    Printf.printf "no-failure MLU %.4f; sweeping single link-pair failures:\n"
      joint.Joint.mlu;
    List.iter
      (fun o ->
        Printf.printf "  %-8s -> %-8s  %s\n"
          (Netgraph.Digraph.node_name g (Netgraph.Digraph.src g o.Failures.edge))
          (Netgraph.Digraph.node_name g (Netgraph.Digraph.dst g o.Failures.edge))
          (if o.Failures.disconnected > 0 then
             Printf.sprintf "disconnects %d demands" o.Failures.disconnected
           else Printf.sprintf "MLU %.4f" o.Failures.mlu))
      (Failures.single_failures ~waypoints:joint.Joint.waypoints g
         joint.Joint.weights demands)
  in
  Cmd.v
    (Cmd.info "failures" ~doc:"Single-link-failure sweep of an optimized setting")
    Term.(const run $ topo_arg $ file_arg $ seed_arg $ demands_arg $ flows_arg
          $ evals_arg)

(* robust *)
let robust_cmd =
  let run topo file seed kind flows evals jobs stats trace summary policies_s
      dual scales_s jitter hotspots diurnal cross chunk reopt_evals out =
    let policies =
      try Scenario.policies_of_string policies_s
      with Invalid_argument m ->
        Printf.eprintf "%s\n" m;
        exit 2
    in
    let scales =
      if scales_s = "" then []
      else
        List.map
          (fun s ->
            match float_of_string_opt (String.trim s) with
            | Some f -> f
            | None ->
              Printf.eprintf "bad scale factor %S\n" s;
              exit 2)
          (String.split_on_char ',' scales_s)
    in
    with_ctx ~jobs ~stats ~trace ~summary (fun ctx ->
        let g, file_demands =
          Obs.Ctx.phase ctx "load" (fun () -> load_topology topo file)
        in
        let demands =
          Obs.Ctx.phase ctx "demands" (fun () ->
              make_demands ~file_demands g ~seed ~kind ~flows)
        in
        (* Deploy a JOINT-Heur setting, then stress it. *)
        let ls_params =
          { Local_search.default_params with max_evals = evals; seed }
        in
        let joint =
          Obs.Ctx.phase ctx "deploy" (fun () ->
              Joint.optimize_ctx ctx ~ls_params g demands)
        in
        let deployed =
          {
            Scenario.weights = joint.Joint.int_weights;
            Scenario.waypoints = joint.Joint.waypoints;
          }
        in
        let nominal_mlu =
          Ecmp.mlu_of ~waypoints:deployed.Scenario.waypoints g
            (Weights.of_ints deployed.Scenario.weights)
            demands
        in
        let cfg =
          {
            Scenario.default_config with
            Scenario.seed;
            Scenario.dual_failures = dual;
            Scenario.scales = scales;
            Scenario.jitters = jitter;
            Scenario.hotspots = hotspots;
            Scenario.diurnal = diurnal;
            Scenario.cross = cross;
          }
        in
        let specs = Scenario.generate cfg g in
        let outcomes =
          Obs.Ctx.phase ctx "sweep" (fun () ->
              Scenario.sweep_ctx ctx ~chunk ~policies ~reopt_evals ~deployed g
                demands specs)
        in
        let report = Scenario.summarize ~topology:topo ~nominal_mlu outcomes in
        let json = Scenario.report_to_json g report in
        match out with
        | Some path ->
          let oc = open_out path in
          output_string oc json;
          output_char oc '\n';
          close_out oc;
          Printf.printf "deployed MLU %.4f; %d scenarios\n" nominal_mlu
            (Array.length specs);
          List.iter
            (fun s ->
              Printf.printf
                "%-12s worst %7.4f  mean %7.4f  p95 %7.4f  disconnected %d/%d\n"
                (Scenario.policy_name s.Scenario.policy)
                s.Scenario.worst_mlu s.Scenario.mean_mlu s.Scenario.p95
                s.Scenario.disconnected_scenarios s.Scenario.scenarios)
            report.Scenario.summaries;
          Printf.printf "wrote %s\n" path
        | None -> print_endline json)
  in
  let policies_arg =
    Arg.(value & opt string "static" & info [ "policies" ] ~docv:"LIST"
           ~doc:"Comma-separated reaction policies: static, repair \
                 (re-run GreedyWPO on the surviving topology), and/or \
                 reweight:K (re-optimize at most K link weights).")
  in
  let dual_arg =
    Arg.(value & opt int 0 & info [ "dual" ] ~docv:"N"
           ~doc:"Sample N distinct dual-failure scenarios (pairs of \
                 single-failure cases).")
  in
  let scales_arg =
    Arg.(value & opt string "" & info [ "scales" ] ~docv:"F,F,..."
           ~doc:"Uniform demand scale factors to sweep, e.g. 0.8,1.2,1.5.")
  in
  let jitter_arg =
    Arg.(value & opt int 0 & info [ "jitter" ] ~docv:"N"
           ~doc:"Lognormal per-demand jitter scenarios.")
  in
  let hotspots_arg =
    Arg.(value & opt int 0 & info [ "hotspots" ] ~docv:"N"
           ~doc:"Hot-spot burst scenarios (3 demands x3 each).")
  in
  let diurnal_arg =
    Arg.(value & opt int 0 & info [ "diurnal" ] ~docv:"N"
           ~doc:"Diurnal time-of-day scenarios, evenly spaced over the day.")
  in
  let cross_arg =
    Arg.(value & flag & info [ "cross" ]
           ~doc:"Take the full failure x demand-shift product instead of \
                 varying one axis at a time.")
  in
  let chunk_arg =
    Arg.(value & opt int 4 & info [ "chunk" ] ~docv:"N"
           ~doc:"Scenarios per streaming block; results are bit-identical \
                 for every value, only locality changes.")
  in
  let reopt_evals_arg =
    Arg.(value & opt int 400 & info [ "reopt-evals" ]
           ~doc:"Per-scenario search budget of the reweight policy.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Write the JSON report to a file (and print a summary \
                 table) instead of dumping JSON to stdout.")
  in
  Cmd.v
    (Cmd.info "robust"
       ~doc:"Robustness sweep of an optimized setting: link failures x \
             demand shifts x reaction policies, streamed through the \
             incremental engine.  The report is bit-identical for every \
             --jobs value.")
    Term.(const run $ topo_arg $ file_arg $ seed_arg $ demands_arg $ flows_arg
          $ evals_arg $ jobs_arg $ stats_arg $ trace_arg $ summary_arg
          $ policies_arg $ dual_arg $ scales_arg $ jitter_arg $ hotspots_arg
          $ diurnal_arg $ cross_arg $ chunk_arg $ reopt_evals_arg $ out_arg)

(* exact *)
let exact_cmd =
  let run alg topo file seed kind flows wsetting i m max_nodes cold prune
      prune_mode stats trace summary =
    let warm = not cold in
    let prune = prune_spec_of prune prune_mode in
    with_ctx ~jobs:1 ~stats ~trace ~summary (fun ctx ->
        match alg with
        | "wpo" ->
          let g, file_demands =
            Obs.Ctx.phase ctx "load" (fun () -> load_topology topo file)
          in
          let demands =
            Obs.Ctx.phase ctx "demands" (fun () ->
                make_demands ~file_demands g ~seed ~kind ~flows)
          in
          let w = weights_of g wsetting in
          let r =
            Obs.Ctx.phase ctx "solve" (fun () ->
                Wpo_milp.solve_ctx ctx ?max_nodes ~warm ?prune g w demands)
          in
          let used =
            Array.fold_left
              (fun acc o -> if o = [] then acc else acc + 1)
              0 r.Wpo_milp.waypoints
          in
          Printf.printf
            "exact WPO (MILP, %s weights): MLU %.4f (%s; %d B&B nodes; \
             %d/%d demands got waypoints)\n"
            wsetting r.Wpo_milp.mlu
            (if r.Wpo_milp.exact then "optimal" else "node limit hit")
            r.Wpo_milp.nodes_explored used (Array.length demands)
        | "lwo" ->
          let inst = instance_of i m in
          let net = inst.Instances.Gap_instances.network in
          let r =
            Obs.Ctx.phase ctx "solve" (fun () ->
                Uspr_milp.lwo_ctx ctx ?max_nodes ~warm net.Network.graph
                  net.Network.demands)
          in
          Printf.printf "exact USPR weights (MILP) on %s: MLU %.4f (%s; %d B&B nodes)\n"
            inst.Instances.Gap_instances.name r.Uspr_milp.mlu
            (if r.Uspr_milp.exact then "optimal" else "node limit hit")
            r.Uspr_milp.nodes_explored
        | "joint" ->
          let inst = instance_of i m in
          let net = inst.Instances.Gap_instances.network in
          let r =
            Obs.Ctx.phase ctx "solve" (fun () ->
                Uspr_milp.joint_ctx ctx ?max_nodes net.Network.graph
                  net.Network.demands)
          in
          Printf.printf
            "exact joint (enumerated waypoints x weight MILP) on %s: MLU %.4f \
             (%d waypoints in use)\n"
            inst.Instances.Gap_instances.name r.Uspr_milp.setting.Uspr_milp.mlu
            (Segments.count_waypoints r.Uspr_milp.waypoints)
        | other ->
          Printf.eprintf "unknown exact algorithm %S (wpo|lwo|joint)\n" other;
          exit 2)
  in
  let alg_arg =
    Arg.(value & opt string "wpo" & info [ "alg" ] ~docv:"ALG"
           ~doc:"Exact formulation to solve: wpo (waypoint MILP on a \
                 topology), lwo (USPR weight MILP on a paper instance), or \
                 joint (waypoint enumeration x weight MILP on a paper \
                 instance).")
  in
  let exact_m_arg =
    Arg.(value & opt int 3 & info [ "m" ]
           ~doc:"Size parameter of the paper instance (lwo/joint).")
  in
  let max_nodes_arg =
    Arg.(value & opt (some int) None & info [ "max-nodes" ] ~docv:"N"
           ~doc:"Branch-and-bound node budget (defaults to the \
                 formulation's own limit).")
  in
  let cold_arg =
    Arg.(value & flag & info [ "cold" ]
           ~doc:"Disable parent-basis warm starts in the branch and bound \
                 (for comparing LP effort; the result is unchanged).")
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:"Exact MILP optimization (branch and bound over warm-started \
             sparse LP relaxations); --stats reports B&B nodes and LP \
             pivot effort alongside the engine counters.")
    Term.(const run $ alg_arg $ topo_arg $ file_arg $ seed_arg $ demands_arg
          $ flows_arg $ weights_arg $ instance_arg $ exact_m_arg
          $ max_nodes_arg $ cold_arg $ prune_arg $ prune_mode_arg $ stats_arg
          $ trace_arg $ summary_arg)

(* replay *)
let replay_cmd =
  let run topo file seed kind flows steps days flash flash_pairs flash_factor
      flash_len report_every no_quit out =
    let g, file_demands = load_topology topo file in
    let demands = make_demands ~file_demands g ~seed ~kind ~flows in
    let spec =
      {
        Scenario.replay_seed = seed;
        steps;
        days;
        flash_crowds = flash;
        flash_pairs;
        flash_factor;
        flash_len;
        report_every;
        quit = not no_quit;
      }
    in
    let lines = Scenario.replay_events spec demands in
    match out with
    | Some path ->
      let oc = open_out path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      Printf.printf "wrote %d events to %s\n" (List.length lines) path
    | None -> List.iter print_endline lines
  in
  let steps_arg =
    Arg.(value & opt int 100 & info [ "steps" ] ~docv:"N"
           ~doc:"Diurnal steps (at most one delta event each).")
  in
  let days_arg =
    Arg.(value & opt float 1. & info [ "days" ]
           ~doc:"Diurnal periods the steps sweep through.")
  in
  let flash_arg =
    Arg.(value & opt int 2 & info [ "flash" ] ~docv:"N"
           ~doc:"Flash-crowd bursts layered over the diurnal drift.")
  in
  let flash_pairs_arg =
    Arg.(value & opt int 3 & info [ "flash-pairs" ] ~docv:"N"
           ~doc:"Demand pairs scaled by each burst.")
  in
  let flash_factor_arg =
    Arg.(value & opt float 3. & info [ "flash-factor" ] ~docv:"F"
           ~doc:"Burst demand multiplier.")
  in
  let flash_len_arg =
    Arg.(value & opt int 8 & info [ "flash-len" ] ~docv:"N"
           ~doc:"Steps each burst stays active.")
  in
  let report_every_arg =
    Arg.(value & opt int 0 & info [ "report-every" ] ~docv:"K"
           ~doc:"Interleave a report event every K steps (0 = never).")
  in
  let no_quit_arg =
    Arg.(value & flag & info [ "no-quit" ]
           ~doc:"Omit the trailing quit event (the daemon then runs to EOF).")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Write the event JSONL to a file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Generate a serve/1 event trace: the topology's demand matrix \
             drifting through diurnal phases with seeded flash-crowd \
             bursts, rendered as demand-delta JSONL for `te-tool serve'.  \
             Deterministic: same options, byte-identical trace.")
    Term.(const run $ topo_arg $ file_arg $ seed_arg $ demands_arg $ flows_arg
          $ steps_arg $ days_arg $ flash_arg $ flash_pairs_arg
          $ flash_factor_arg $ flash_len_arg $ report_every_arg $ no_quit_arg
          $ out_arg)

(* serve *)
let serve_cmd =
  let run topo file seed kind flows evals jobs stats trace summary deploy
      deadline_ms churn_budget reopt_evals resolve_evals no_lp lp_every
      no_prune no_timings input output =
    with_ctx ~jobs ~stats ~trace ~summary (fun ctx ->
        let g, file_demands =
          Obs.Ctx.phase ctx "load" (fun () -> load_topology topo file)
        in
        let demands =
          Obs.Ctx.phase ctx "demands" (fun () ->
              make_demands ~file_demands g ~seed ~kind ~flows)
        in
        (* Deploy a starting setting, then serve the event stream
           against it. *)
        let deployed_weights, deployed_waypoints =
          Obs.Ctx.phase ctx "deploy" (fun () ->
              match deploy with
              | "joint" ->
                let ls_params =
                  { Local_search.default_params with max_evals = evals; seed }
                in
                let joint = Joint.optimize_ctx ctx ~ls_params g demands in
                (joint.Joint.int_weights, joint.Joint.waypoints)
              | setting ->
                ( Weights.round_to_range ~wmax:16 (weights_of g setting),
                  Segments.none demands ))
        in
        let cfg =
          {
            Serve.Daemon.deadline_ms;
            churn_budget;
            reopt_evals;
            resolve_evals;
            lp_bound = not no_lp;
            lp_every;
            prune = not no_prune;
            timings = not no_timings;
            seed;
          }
        in
        let daemon =
          Serve.Daemon.create ctx cfg ~deployed_weights ~deployed_waypoints g
            demands
        in
        let ic = match input with None -> stdin | Some p -> open_in p in
        let oc = match output with None -> stdout | Some p -> open_out p in
        Obs.Ctx.phase ctx "serve" (fun () -> Serve.Daemon.run daemon ic oc);
        if input <> None then close_in ic;
        if output <> None then close_out oc;
        let s = Serve.Daemon.summary daemon in
        let lat = s.Serve.Daemon.latencies in
        Printf.eprintf
          "serve: %d events (%d updates, %d improved, %d degraded, %d \
           errors), final MLU %.4f"
          s.Serve.Daemon.events s.Serve.Daemon.updates
          s.Serve.Daemon.improved s.Serve.Daemon.degraded
          s.Serve.Daemon.errors s.Serve.Daemon.mlu;
        if Float.is_finite s.Serve.Daemon.lp_bound then
          Printf.eprintf " (LP bound %.4f)" s.Serve.Daemon.lp_bound;
        if Array.length lat > 0 then
          Printf.eprintf "; latency p50 %.1f ms p99 %.1f ms"
            (1000. *. Serve.Daemon.quantile lat 0.5)
            (1000. *. Serve.Daemon.quantile lat 0.99);
        prerr_newline ())
  in
  let deploy_arg =
    Arg.(value & opt string "joint" & info [ "deploy" ] ~docv:"SETTING"
           ~doc:"Initial deployment: joint (optimize weights+waypoints \
                 first, --evals budget) or unit/invcap static weights.")
  in
  let deadline_arg =
    Arg.(value & opt float 1000. & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-update latency budget.  A search overrunning it stops \
                 early with the best setting so far; 0 degrades every \
                 update to the incumbent; negative disables the deadline.")
  in
  let churn_arg =
    Arg.(value & opt int 0 & info [ "churn-budget" ] ~docv:"K"
           ~doc:"Max links re-weighted per update (0 = |E|/10).")
  in
  let reopt_evals_arg =
    Arg.(value & opt int 400 & info [ "reopt-evals" ]
           ~doc:"Local-search evaluation budget per update.")
  in
  let resolve_evals_arg =
    Arg.(value & opt int 4000 & info [ "resolve-evals" ]
           ~doc:"Evaluation budget for resolve events.")
  in
  let no_lp_arg =
    Arg.(value & flag & info [ "no-lp" ]
           ~doc:"Skip the per-update warm-basis LP lower bound (no \
                 optimality-gap readout in responses).")
  in
  let lp_every_arg =
    Arg.(value & opt int 1 & info [ "lp-every" ] ~docv:"K"
           ~doc:"Solve the LP bound only on every K-th update (resolve \
                 always solves); thins the cadence on topologies where \
                 even a warm solve dwarfs the re-optimization.")
  in
  let no_prune_arg =
    Arg.(value & flag & info [ "no-prune" ]
           ~doc:"Disable candidate pruning in the waypoint re-pick.")
  in
  let no_timings_arg =
    Arg.(value & flag & info [ "no-timings" ]
           ~doc:"Omit latency fields from responses, making the response \
                 stream byte-identical across runs and --jobs.")
  in
  let input_arg =
    Arg.(value & opt (some file) None & info [ "i"; "input" ] ~docv:"PATH"
           ~doc:"Read events from a file instead of stdin.")
  in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Write responses to a file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"TE-as-a-service: a long-running loop reading demand deltas, \
             matrix swaps and link up/down events as JSONL (see `te-tool \
             replay'), answering each with a churn-budgeted incremental \
             re-optimization under a latency deadline, one serve/1 JSON \
             response line per event.  Holds a warm evaluator and warm LP \
             bases across the whole stream; a summary line goes to stderr.")
    Term.(const run $ topo_arg $ file_arg $ seed_arg $ demands_arg $ flows_arg
          $ evals_arg $ jobs_arg $ stats_arg $ trace_arg $ summary_arg
          $ deploy_arg $ deadline_arg $ churn_arg $ reopt_evals_arg
          $ resolve_evals_arg $ no_lp_arg $ lp_every_arg $ no_prune_arg
          $ no_timings_arg $ input_arg $ output_arg)

(* export *)
let export_cmd =
  let run topo file fmt out =
    let g = load_graph topo file in
    let contents =
      match fmt with
      | "dot" -> Topology.Export.to_dot g
      | "sndlib" -> Topology.Export.to_sndlib_native g
      | other ->
        Printf.eprintf "unknown format %S (dot|sndlib)\n" other;
        exit 2
    in
    match out with
    | Some path ->
      Topology.Export.write_file path contents;
      Printf.printf "wrote %s\n" path
    | None -> print_string contents
  in
  let fmt_arg =
    Arg.(value & opt string "dot" & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: dot or sndlib.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Write to a file instead of stdout.")
  in
  Cmd.v (Cmd.info "export" ~doc:"Export a topology as Graphviz DOT or SNDLib native")
    Term.(const run $ topo_arg $ file_arg $ fmt_arg $ out_arg)

let () =
  let doc = "Traffic engineering with joint link weight and segment optimization" in
  let info = Cmd.info "te-tool" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          (topos_cmd :: mlu_cmd :: list_algs_cmd :: solver_cmds
          @ [ gap_cmd; lwo_apx_cmd; nanonet_cmd; failures_cmd; robust_cmd;
              replay_cmd; serve_cmd; exact_cmd; export_cmd ])))
