(* Property tests for the flat CSR data plane.

   Two families:
   - 200 seeded random graphs: the CSR adjacency (borrowed flat arrays,
     iterators, allocating views) must present one identical byte-level
     story — ascending edge ids per row, each edge in exactly one out-
     and one in-row, name lookups stable — and rebuilding the graph
     from its own edge list must reproduce the flat arrays verbatim
     (iteration order and edge ids are what every shortest-path DAG and
     unit-flow computation downstream is keyed to).
   - repeated runs of the four solvers (HeurOSPF local search,
     GreedyWPO, JOINT-Heur, Reopt) under independently built contexts
     must return byte-identical results — context construction carries
     no hidden state. *)

open Netgraph
open Te

(* ------------------------------------------------------------------ *)
(* CSR consistency over 200 seeded random graphs                       *)
(* ------------------------------------------------------------------ *)

let random_graph seed =
  let nodes = 6 + (seed mod 23) in
  let links = nodes + (seed mod 11) in
  Topology.Gen.synthetic ~seed ~name:(Printf.sprintf "csrprop%d" seed) ~nodes
    ~links ()

let check_csr_graph seed g =
  let ctx msg = Printf.sprintf "seed %d: %s" seed msg in
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let out_row = Digraph.out_offsets g and out_col = Digraph.out_index g in
  let in_row = Digraph.in_offsets g and in_col = Digraph.in_index g in
  let srcs = Digraph.srcs g and dsts = Digraph.dsts g and caps = Digraph.caps g in
  Alcotest.(check int) (ctx "out_offsets length") (n + 1) (Array.length out_row);
  Alcotest.(check int) (ctx "out_index length") m (Array.length out_col);
  Alcotest.(check int) (ctx "in_offsets length") (n + 1) (Array.length in_row);
  Alcotest.(check int) (ctx "in_index length") m (Array.length in_col);
  Alcotest.(check int) (ctx "out row end") m out_row.(n);
  Alcotest.(check int) (ctx "in row end") m in_row.(n);
  let seen_out = Array.make m 0 and seen_in = Array.make m 0 in
  for v = 0 to n - 1 do
    (* the allocating view, the iterator and the borrowed row must agree
       element for element, ascending *)
    let view = Digraph.out_edges g v in
    let row = Array.sub out_col out_row.(v) (out_row.(v + 1) - out_row.(v)) in
    Alcotest.(check (array int)) (ctx "out view = borrowed row") row view;
    let iterated = ref [] in
    Digraph.iter_out g v (fun e -> iterated := e :: !iterated);
    Alcotest.(check (array int))
      (ctx "out iter = view")
      view
      (Array.of_list (List.rev !iterated));
    Array.iteri
      (fun i e ->
        if i > 0 then
          Alcotest.(check bool) (ctx "out row ascending") true (e > view.(i - 1));
        Alcotest.(check int) (ctx "out row src") v srcs.(e);
        seen_out.(e) <- seen_out.(e) + 1)
      view;
    let iview = Digraph.in_edges g v in
    let irow = Array.sub in_col in_row.(v) (in_row.(v + 1) - in_row.(v)) in
    Alcotest.(check (array int)) (ctx "in view = borrowed row") irow iview;
    let iiter = ref [] in
    Digraph.iter_in g v (fun e -> iiter := e :: !iiter);
    Alcotest.(check (array int))
      (ctx "in iter = view")
      iview
      (Array.of_list (List.rev !iiter));
    Array.iteri
      (fun i e ->
        if i > 0 then
          Alcotest.(check bool) (ctx "in row ascending") true (e > iview.(i - 1));
        Alcotest.(check int) (ctx "in row dst") v dsts.(e);
        seen_in.(e) <- seen_in.(e) + 1)
      iview;
    (* name lookups are stable *)
    Alcotest.(check int)
      (ctx "by_name roundtrip")
      v
      (Digraph.node_of_name g (Digraph.node_name g v))
  done;
  for e = 0 to m - 1 do
    Alcotest.(check int) (ctx "edge once in out rows") 1 seen_out.(e);
    Alcotest.(check int) (ctx "edge once in in rows") 1 seen_in.(e);
    Alcotest.(check int) (ctx "srcs array") (Digraph.src g e) srcs.(e);
    Alcotest.(check int) (ctx "dsts array") (Digraph.dst g e) dsts.(e);
    Alcotest.(check (float 0.)) (ctx "caps array") (Digraph.cap g e) caps.(e)
  done;
  (* Rebuilding from the graph's own edge list must reproduce the flat
     arrays byte for byte: edge ids and iteration order are part of the
     representation contract, not an accident of construction. *)
  let names = Array.init n (Digraph.node_name g) in
  let g' = Digraph.of_edges ~names ~n (Digraph.edges g) in
  Alcotest.(check (array int)) (ctx "rebuilt out_offsets") out_row
    (Digraph.out_offsets g');
  Alcotest.(check (array int)) (ctx "rebuilt out_index") out_col
    (Digraph.out_index g');
  Alcotest.(check (array int)) (ctx "rebuilt in_offsets") in_row
    (Digraph.in_offsets g');
  Alcotest.(check (array int)) (ctx "rebuilt in_index") in_col
    (Digraph.in_index g');
  Alcotest.(check (array int)) (ctx "rebuilt srcs") srcs (Digraph.srcs g');
  Alcotest.(check (array int)) (ctx "rebuilt dsts") dsts (Digraph.dsts g')

let test_csr_random_graphs () =
  for seed = 1 to 200 do
    check_csr_graph seed (random_graph seed)
  done

(* ------------------------------------------------------------------ *)
(* Shim = arena entry point, for all four solvers                      *)
(* ------------------------------------------------------------------ *)

let solver_instance seed =
  let nodes = 8 + (seed mod 4) in
  let links = nodes + 3 in
  let g =
    Topology.Gen.synthetic ~seed ~name:(Printf.sprintf "solver%d" seed) ~nodes
      ~links ()
  in
  let st = Random.State.make [| 0x5b1; seed |] in
  let demands =
    Array.init 6 (fun _ ->
        let s = Random.State.int st nodes in
        let d = (s + 1 + Random.State.int st (nodes - 1)) mod nodes in
        Network.demand s d (float_of_int (1 + Random.State.int st 5)))
  in
  (g, demands)

let ls_params = { Local_search.default_params with max_evals = 120; seed = 11 }

let test_ctx_local_search () =
  for seed = 1 to 3 do
    let g, demands = solver_instance seed in
    let fresh = Local_search.optimize_ctx (Obs.Ctx.default ()) ~params:ls_params g demands in
    let arena =
      Local_search.optimize_ctx (Obs.Ctx.make ()) ~params:ls_params g demands
    in
    Alcotest.(check (array int)) "weights" arena.Local_search.weights
      fresh.Local_search.weights;
    Alcotest.(check (float 0.)) "mlu" arena.Local_search.mlu fresh.Local_search.mlu;
    Alcotest.(check (float 0.)) "phi" arena.Local_search.phi fresh.Local_search.phi;
    Alcotest.(check int) "evals" arena.Local_search.evals fresh.Local_search.evals
  done

let test_ctx_greedy_wpo () =
  for seed = 1 to 3 do
    let g, demands = solver_instance seed in
    let w = Weights.unit g in
    let fresh = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) g w demands in
    let arena = Greedy_wpo.optimize_ctx (Obs.Ctx.make ()) g w demands in
    Alcotest.(check bool) "waypoints" true
      (arena.Greedy_wpo.waypoints = fresh.Greedy_wpo.waypoints);
    Alcotest.(check (float 0.)) "mlu" arena.Greedy_wpo.mlu fresh.Greedy_wpo.mlu;
    Alcotest.(check (float 0.)) "initial mlu" arena.Greedy_wpo.initial_mlu
      fresh.Greedy_wpo.initial_mlu
  done

let test_ctx_joint () =
  for seed = 1 to 2 do
    let g, demands = solver_instance seed in
    let fresh = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params g demands in
    let arena = Joint.optimize_ctx (Obs.Ctx.make ()) ~ls_params g demands in
    Alcotest.(check (array int)) "int weights" arena.Joint.int_weights
      fresh.Joint.int_weights;
    Alcotest.(check bool) "waypoints" true
      (arena.Joint.waypoints = fresh.Joint.waypoints);
    Alcotest.(check (float 0.)) "mlu" arena.Joint.mlu fresh.Joint.mlu;
    Alcotest.(check bool) "stage mlus" true
      (arena.Joint.stage_mlu = fresh.Joint.stage_mlu)
  done

let test_ctx_reopt () =
  for seed = 1 to 2 do
    let g, demands = solver_instance seed in
    let m = Digraph.edge_count g in
    let deployed_weights = Array.make m 1 in
    let deployed_waypoints = Segments.none demands in
    let fresh =
      Reopt.reoptimize_ctx (Obs.Ctx.default ()) ~ls_params ~deployed_weights
        ~deployed_waypoints g demands
    in
    let arena =
      Reopt.reoptimize_ctx (Obs.Ctx.make ()) ~ls_params ~deployed_weights
        ~deployed_waypoints g demands
    in
    Alcotest.(check (array int)) "weights" arena.Reopt.weights fresh.Reopt.weights;
    Alcotest.(check bool) "waypoints" true
      (arena.Reopt.waypoints = fresh.Reopt.waypoints);
    Alcotest.(check (float 0.)) "mlu" arena.Reopt.mlu fresh.Reopt.mlu;
    Alcotest.(check int) "weight churn" arena.Reopt.churn.Reopt.weight_changes
      fresh.Reopt.churn.Reopt.weight_changes;
    Alcotest.(check int) "waypoint churn"
      arena.Reopt.churn.Reopt.waypoint_changes
      fresh.Reopt.churn.Reopt.waypoint_changes
  done

let () =
  Alcotest.run "property"
    [
      ( "csr",
        [
          Alcotest.test_case "200 seeded random graphs" `Quick
            test_csr_random_graphs;
        ] );
      ( "ctx-equivalence",
        [
          Alcotest.test_case "local search" `Quick test_ctx_local_search;
          Alcotest.test_case "greedy wpo" `Quick test_ctx_greedy_wpo;
          Alcotest.test_case "joint" `Quick test_ctx_joint;
          Alcotest.test_case "reopt" `Quick test_ctx_reopt;
        ] );
    ]
