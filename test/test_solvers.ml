(* Fuzz tests for the two weight-optimization backends behind the
   solver registry: gradient descent against LP necessary capacities
   (Grad_wo) and the two-weight split search (Omw).

   20 seeded synthetic instances each; every check is an invariant the
   backends promise:
   - the engine MLU never beats the LP lower bound;
   - the returned setting is never worse than its starting point
     (inverse-capacity weights for both backends here);
   - OMW with the second system disabled is byte-identical to the
     single-weight SPF evaluation of system 1;
   - both backends return byte-identical results whatever worker pool
     the context carries (the CLI's [--jobs] bit-identity contract);
   - the registry exposes every packaged solver under its CLI name. *)

open Te

let instance seed =
  let nodes = 6 + (seed mod 7) in
  let links = nodes + 2 + (seed mod 5) in
  let g =
    Topology.Gen.synthetic ~seed ~name:(Printf.sprintf "solvfuzz%d" seed)
      ~nodes ~links ()
  in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.1 ~seed ~flows_per_pair:2 g
  in
  (g, demands)

let lp_bound g demands =
  Mcf.opt_mlu_lp g
    (Array.map
       (fun (s, d, sz) -> Mcf.commodity s d sz)
       (Network.to_commodities demands))

let grad_params =
  { Grad_wo.default_params with rounds = 60; checkpoint_every = 5 }

(* ------------------------------------------------------------------ *)
(* Gradient backend                                                    *)
(* ------------------------------------------------------------------ *)

let test_grad_fuzz () =
  for seed = 1 to 20 do
    let ctx msg = Printf.sprintf "seed %d: %s" seed msg in
    let g, demands = instance seed in
    let r =
      Grad_wo.optimize_ctx (Obs.Ctx.default ()) ~params:grad_params g demands
    in
    Alcotest.(check bool) (ctx "lp bound positive") true (r.Grad_wo.lp_bound > 0.);
    Alcotest.(check bool)
      (ctx "mlu never below the LP bound")
      true
      (r.Grad_wo.mlu >= r.Grad_wo.lp_bound -. 1e-9);
    Alcotest.(check bool)
      (ctx "never worse than the rounded invcap start")
      true
      (r.Grad_wo.mlu <= r.Grad_wo.initial_mlu +. 1e-9);
    Array.iter
      (fun w ->
        Alcotest.(check bool)
          (ctx "weight on the integer grid")
          true
          (w >= 1 && w <= grad_params.Grad_wo.wmax))
      r.Grad_wo.weights;
    (match r.Grad_wo.trail with
    | (0, m0) :: _ ->
        Alcotest.(check (float 0.)) (ctx "trail starts at the initial MLU")
          r.Grad_wo.initial_mlu m0
    | _ -> Alcotest.fail (ctx "trail must start at step 0"));
    List.iter
      (fun (_, m) ->
        Alcotest.(check bool)
          (ctx "trail entry never below the LP bound")
          true
          (m >= r.Grad_wo.lp_bound -. 1e-9))
      r.Grad_wo.trail
  done

let test_grad_jobs_identity () =
  for seed = 1 to 5 do
    let g, demands = instance seed in
    let plain =
      Grad_wo.optimize_ctx (Obs.Ctx.default ()) ~params:grad_params g demands
    in
    Par.Pool.with_pool ~jobs:3 (fun pool ->
        let pooled =
          Grad_wo.optimize_ctx
            (Obs.Ctx.make ~pool ())
            ~params:grad_params g demands
        in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: bit-identical across pools" seed)
          true (plain = pooled))
  done

(* ------------------------------------------------------------------ *)
(* OMW backend                                                         *)
(* ------------------------------------------------------------------ *)

let invcap_ints g =
  Weights.round_to_range ~wmax:64 (Weights.inverse_capacity g)

let test_omw_fuzz () =
  for seed = 1 to 20 do
    let ctx msg = Printf.sprintf "seed %d: %s" seed msg in
    let g, demands = instance seed in
    let w1 = invcap_ints g in
    let r = Omw.optimize_ctx (Obs.Ctx.default ()) g w1 demands in
    let lp = lp_bound g demands in
    Alcotest.(check bool)
      (ctx "mlu never below the LP bound")
      true
      (r.Omw.mlu >= lp -. 1e-9);
    Alcotest.(check bool)
      (ctx "never worse than the invcap start")
      true
      (r.Omw.mlu <= r.Omw.initial_mlu +. 1e-9);
    Alcotest.(check (array int)) (ctx "system 1 untouched") w1 r.Omw.weights;
    Alcotest.(check int)
      (ctx "splits parallel to aggregated demands")
      (Array.length r.Omw.demands)
      (Array.length r.Omw.splits);
    Array.iter
      (fun a ->
        Alcotest.(check bool) (ctx "split within [0,1]") true (a >= 0. && a <= 1.))
      r.Omw.splits;
    Array.iter
      (fun w ->
        Alcotest.(check bool)
          (ctx "second weight within [1,wmax]")
          true
          (w >= 1 && w <= Omw.default_params.Omw.wmax))
      r.Omw.weights2
  done

let test_omw_disabled_is_single_weight () =
  for seed = 1 to 20 do
    let ctx msg = Printf.sprintf "seed %d: %s" seed msg in
    let g, demands = instance seed in
    let w1 = invcap_ints g in
    let r =
      Omw.optimize_ctx (Obs.Ctx.default ())
        ~params:{ Omw.default_params with second = false }
        g w1 demands
    in
    let reference =
      Engine.Evaluator.mlu_of g (Weights.of_ints w1)
        (Network.to_commodities r.Omw.demands)
    in
    Alcotest.(check bool)
      (ctx "byte-identical to the single-weight SPF")
      true
      (Int64.equal (Int64.bits_of_float r.Omw.mlu)
         (Int64.bits_of_float reference));
    Array.iter
      (fun a ->
        Alcotest.(check (float 0.)) (ctx "every split pinned to system 1") 1. a)
      r.Omw.splits;
    Alcotest.(check int) (ctx "no moves") 0 r.Omw.moves;
    Alcotest.(check int) (ctx "no bumps") 0 r.Omw.bumps
  done

let test_omw_jobs_identity () =
  for seed = 1 to 5 do
    let g, demands = instance seed in
    let w1 = invcap_ints g in
    let plain = Omw.optimize_ctx (Obs.Ctx.default ()) g w1 demands in
    Par.Pool.with_pool ~jobs:4 (fun pool ->
        let pooled =
          Omw.optimize_ctx (Obs.Ctx.make ~pool ()) g w1 demands
        in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: bit-identical across pools" seed)
          true (plain = pooled))
  done

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_names () =
  let names = List.map fst (Solver.names ()) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "lwo"; "wpo"; "joint"; "grad"; "omw"; "grad+wpo"; "omw+wpo" ];
  Alcotest.(check bool) "at least seven solvers" true (List.length names >= 7);
  Alcotest.(check bool) "unknown name absent" true
    (Solver.find "no-such-solver" = None)

let test_registry_runs_new_backends () =
  let g, demands = instance 3 in
  let config = { Solver.default_config with evals = 200 } in
  List.iter
    (fun name ->
      match Solver.find name with
      | None -> Alcotest.fail (name ^ " not registered")
      | Some builder ->
          let (module S : Solver.S) = builder config in
          let r = S.solve (Obs.Ctx.default ()) g demands in
          Alcotest.(check bool)
            (name ^ ": finite MLU")
            true
            (Float.is_finite r.Solver.mlu);
          Alcotest.(check bool)
            (name ^ ": stages recorded")
            true
            (r.Solver.stages <> []))
    [ "grad"; "omw"; "grad+wpo"; "omw+wpo" ]

let () =
  Alcotest.run "solvers"
    [
      ( "grad",
        [
          Alcotest.test_case "20-seed fuzz" `Quick test_grad_fuzz;
          Alcotest.test_case "jobs bit-identity" `Quick test_grad_jobs_identity;
        ] );
      ( "omw",
        [
          Alcotest.test_case "20-seed fuzz" `Quick test_omw_fuzz;
          Alcotest.test_case "disabled second = single weight" `Quick
            test_omw_disabled_is_single_weight;
          Alcotest.test_case "jobs bit-identity" `Quick test_omw_jobs_identity;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names" `Quick test_registry_names;
          Alcotest.test_case "new backends run" `Quick
            test_registry_runs_new_backends;
        ] );
    ]
