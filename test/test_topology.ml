(* Tests for the XML parser, SNDLib/GraphML readers, the synthetic
   generator and the dataset registry. *)

open Netgraph
open Topology

let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Xmlparse                                                            *)
(* ------------------------------------------------------------------ *)

let test_xml_basic () =
  let doc = Xmlparse.parse "<a x=\"1\"><b>hi</b><b>ho</b></a>" in
  Alcotest.(check string) "root" "a" (Xmlparse.tag doc);
  Alcotest.(check (option string)) "attr" (Some "1") (Xmlparse.attr doc "x");
  Alcotest.(check int) "children" 2 (List.length (Xmlparse.find_all doc "b"));
  match Xmlparse.find_first doc "b" with
  | Some b -> Alcotest.(check string) "text" "hi" (Xmlparse.text_content b)
  | None -> Alcotest.fail "b not found"

let test_xml_self_closing () =
  let doc = Xmlparse.parse "<a><b k=\"v\"/><c/></a>" in
  Alcotest.(check int) "two children" 2 (List.length (Xmlparse.children doc))

let test_xml_prolog_comment_doctype () =
  let doc =
    Xmlparse.parse
      "<?xml version=\"1.0\"?><!DOCTYPE a><!-- hello --><a><!-- inner -->x</a>"
  in
  Alcotest.(check string) "text" "x" (Xmlparse.text_content doc)

let test_xml_entities () =
  let doc = Xmlparse.parse "<a b=\"x&amp;y\">1 &lt; 2 &#65;</a>" in
  Alcotest.(check (option string)) "attr entity" (Some "x&y") (Xmlparse.attr doc "b");
  Alcotest.(check string) "text entities" "1 < 2 A" (Xmlparse.text_content doc)

let test_xml_cdata () =
  let doc = Xmlparse.parse "<a><![CDATA[<raw&stuff>]]></a>" in
  Alcotest.(check string) "cdata" "<raw&stuff>" (Xmlparse.text_content doc)

let test_xml_nested_descendants () =
  let doc = Xmlparse.parse "<a><b><c>1</c></b><c>2</c></a>" in
  Alcotest.(check int) "two c descendants" 2 (List.length (Xmlparse.descendants doc "c"))

let test_xml_errors () =
  List.iter
    (fun src ->
      match Xmlparse.parse src with
      | exception Xmlparse.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected parse error for %s" src))
    [ "<a>"; "<a></b>"; "<a x=1></a>"; "" ]

let test_xml_single_quotes () =
  let doc = Xmlparse.parse "<a x='q'/>" in
  Alcotest.(check (option string)) "single-quoted attr" (Some "q") (Xmlparse.attr doc "x")

(* ------------------------------------------------------------------ *)
(* Sndlib                                                              *)
(* ------------------------------------------------------------------ *)

let sndlib_xml_sample =
  {|<?xml version="1.0" encoding="utf-8"?>
<network xmlns="http://sndlib.zib.de/network" version="1.0">
 <networkStructure>
  <nodes coordinatesType="geographical">
   <node id="A"><coordinates><x>0</x><y>0</y></coordinates></node>
   <node id="B"><coordinates><x>1</x><y>0</y></coordinates></node>
   <node id="C"><coordinates><x>2</x><y>0</y></coordinates></node>
  </nodes>
  <links>
   <link id="LAB"><source>A</source><target>B</target>
     <preInstalledModule><capacity>40.0</capacity><cost>1</cost></preInstalledModule>
   </link>
   <link id="LBC"><source>B</source><target>C</target>
     <additionalModules>
       <addModule><capacity>10.0</capacity><cost>1</cost></addModule>
       <addModule><capacity>40.0</capacity><cost>2</cost></addModule>
     </additionalModules>
   </link>
  </links>
 </networkStructure>
 <demands>
  <demand id="DAC"><source>A</source><target>C</target><demandValue>7.5</demandValue></demand>
 </demands>
</network>|}

let test_sndlib_xml () =
  let t = Sndlib.of_xml sndlib_xml_sample in
  let g = t.Sndlib.graph in
  Alcotest.(check int) "nodes" 3 (Digraph.node_count g);
  Alcotest.(check int) "edges (bidirected)" 4 (Digraph.edge_count g);
  let a = Digraph.node_of_name g "A" and b = Digraph.node_of_name g "B" in
  (match Digraph.find_edge g ~src:a ~dst:b with
  | Some e -> checkf "preinstalled capacity" 40. (Digraph.cap g e)
  | None -> Alcotest.fail "A->B missing");
  let b' = Digraph.node_of_name g "B" and c = Digraph.node_of_name g "C" in
  (match Digraph.find_edge g ~src:b' ~dst:c with
  | Some e -> checkf "largest module capacity" 40. (Digraph.cap g e)
  | None -> Alcotest.fail "B->C missing");
  Alcotest.(check (list (triple string string (float 1e-9))))
    "demands" [ ("A", "C", 7.5) ] t.Sndlib.demands

let sndlib_native_sample =
  "# test\n\
   NODES (\n\
  \  A ( 0.0 0.0 )\n\
  \  B ( 1.0 0.0 )\n\
  \  C ( 2.0 0.0 )\n\
   )\n\
   LINKS (\n\
  \  LAB ( A B ) 40.0 0.0 0.0 0.0 ( )\n\
  \  LBC ( B C ) 0.0 0.0 0.0 0.0 ( 10.0 1.0 40.0 2.0 )\n\
   )\n\
   DEMANDS (\n\
  \  DAC ( A C ) 1 7.5 UNLIMITED\n\
   )\n"

let test_sndlib_native () =
  let t = Sndlib.of_native sndlib_native_sample in
  let g = t.Sndlib.graph in
  Alcotest.(check int) "nodes" 3 (Digraph.node_count g);
  Alcotest.(check int) "edges" 4 (Digraph.edge_count g);
  let b = Digraph.node_of_name g "B" and c = Digraph.node_of_name g "C" in
  (match Digraph.find_edge g ~src:b ~dst:c with
  | Some e -> checkf "module capacity" 40. (Digraph.cap g e)
  | None -> Alcotest.fail "B->C missing");
  Alcotest.(check (list (triple string string (float 1e-9))))
    "demands" [ ("A", "C", 7.5) ] t.Sndlib.demands

let test_sndlib_load_file_dispatch () =
  let dir = Filename.temp_file "sndlib" "" in
  Sys.remove dir;
  let write name contents =
    let path = Filename.temp_file name ".txt" in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    path
  in
  let xml_path = write "x" sndlib_xml_sample in
  let native_path = write "n" sndlib_native_sample in
  let tx = Sndlib.load_file xml_path and tn = Sndlib.load_file native_path in
  Alcotest.(check int) "same nodes" (Digraph.node_count tx.Sndlib.graph)
    (Digraph.node_count tn.Sndlib.graph);
  Sys.remove xml_path;
  Sys.remove native_path

(* ------------------------------------------------------------------ *)
(* Graphml                                                             *)
(* ------------------------------------------------------------------ *)

let graphml_sample =
  {|<?xml version="1.0"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
 <key attr.name="label" attr.type="string" for="node" id="d1"/>
 <key attr.name="LinkSpeedRaw" attr.type="double" for="edge" id="d2"/>
 <graph edgedefault="undirected">
  <node id="n0"><data key="d1">Vienna</data></node>
  <node id="n1"><data key="d1">Graz</data></node>
  <node id="n2"><data key="d1">Linz</data></node>
  <edge source="n0" target="n1"><data key="d2">10000000000</data></edge>
  <edge source="n1" target="n2"/>
 </graph>
</graphml>|}

let test_graphml () =
  let g = Graphml.of_string graphml_sample in
  Alcotest.(check int) "nodes" 3 (Digraph.node_count g);
  Alcotest.(check int) "edges" 4 (Digraph.edge_count g);
  let v = Digraph.node_of_name g "Vienna" and gr = Digraph.node_of_name g "Graz" in
  (match Digraph.find_edge g ~src:v ~dst:gr with
  | Some e -> checkf "10G in Mbit/s" 10_000. (Digraph.cap g e)
  | None -> Alcotest.fail "Vienna->Graz missing");
  let l = Digraph.node_of_name g "Linz" in
  (match Digraph.find_edge g ~src:gr ~dst:l with
  | Some e -> checkf "default capacity" Graphml.default_capacity_mbps (Digraph.cap g e)
  | None -> Alcotest.fail "Graz->Linz missing")

let test_graphml_duplicate_labels () =
  let src =
    {|<graphml><key attr.name="label" for="node" id="d1"/><graph>
      <node id="n0"><data key="d1">X</data></node>
      <node id="n1"><data key="d1">X</data></node>
      <edge source="n0" target="n1"/>
    </graph></graphml>|}
  in
  let g = Graphml.of_string src in
  Alcotest.(check int) "two distinct nodes" 2 (Digraph.node_count g);
  Alcotest.(check int) "edge present" 2 (Digraph.edge_count g)

(* ------------------------------------------------------------------ *)
(* Gen + Datasets                                                      *)
(* ------------------------------------------------------------------ *)

let test_gen_sizes () =
  let g = Gen.synthetic ~name:"T" ~nodes:20 ~links:35 () in
  Alcotest.(check int) "nodes" 20 (Digraph.node_count g);
  Alcotest.(check int) "edges" 70 (Digraph.edge_count g)

let test_gen_deterministic () =
  let g1 = Gen.synthetic ~name:"T" ~nodes:15 ~links:25 () in
  let g2 = Gen.synthetic ~name:"T" ~nodes:15 ~links:25 () in
  Alcotest.(check bool) "same edges" true (Digraph.edges g1 = Digraph.edges g2);
  let g3 = Gen.synthetic ~name:"U" ~nodes:15 ~links:25 () in
  Alcotest.(check bool) "different name differs" true (Digraph.edges g1 <> Digraph.edges g3)

let test_gen_connected () =
  let g = Gen.synthetic ~name:"C" ~nodes:30 ~links:45 () in
  Alcotest.(check bool) "strongly connected" true (Digraph.is_connected_from g 0);
  Alcotest.(check bool) "reverse connected" true
    (Digraph.is_connected_from (Digraph.reverse g) 0)

let test_gen_guards () =
  Alcotest.check_raises "links >= nodes"
    (Invalid_argument "Gen.synthetic: links >= nodes required") (fun () ->
      ignore (Gen.synthetic ~name:"x" ~nodes:10 ~links:5 ()))

let test_abilene () =
  let g = Datasets.abilene () in
  Alcotest.(check int) "12 nodes" 12 (Digraph.node_count g);
  Alcotest.(check int) "30 directed edges" 30 (Digraph.edge_count g);
  Alcotest.(check bool) "connected" true (Digraph.is_connected_from g 0);
  let m5 = Digraph.node_of_name g "ATLAM5" and atl = Digraph.node_of_name g "ATLAng" in
  (match Digraph.find_edge g ~src:m5 ~dst:atl with
  | Some e -> checkf "OC-48 access" 2480. (Digraph.cap g e)
  | None -> Alcotest.fail "ATLAM5 link missing")

let test_registry () =
  Alcotest.(check int) "19 topologies" 19 (List.length Datasets.all);
  Alcotest.(check int) "fig4 has 10" 10 (List.length Datasets.fig4_names);
  Alcotest.(check int) "scale suite has 6" 6 (List.length Datasets.scale_names);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true
        (List.exists (fun i -> i.Datasets.name = name) Datasets.all))
    Datasets.scale_names;
  List.iter
    (fun info ->
      let g = Datasets.load info.Datasets.name in
      Alcotest.(check int)
        (info.Datasets.name ^ " nodes")
        info.Datasets.nodes (Digraph.node_count g);
      Alcotest.(check int)
        (info.Datasets.name ^ " edges")
        (2 * info.Datasets.links)
        (Digraph.edge_count g);
      Alcotest.(check bool) (info.Datasets.name ^ " connected") true
        (Digraph.is_connected_from g 0))
    Datasets.all

let test_registry_unknown () =
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Datasets.load "nope"))

let test_load_case_insensitive () =
  let g = Datasets.load "abilene" in
  Alcotest.(check int) "12 nodes" 12 (Digraph.node_count g)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let same_graph a b =
  Digraph.node_count a = Digraph.node_count b
  && Digraph.edge_count a = Digraph.edge_count b
  && List.for_all
       (fun (u, v, c) ->
         (* Endpoints by name, since edge order may differ. *)
         let u' = Digraph.node_of_name b (Digraph.node_name a u) in
         let v' = Digraph.node_of_name b (Digraph.node_name a v) in
         match Digraph.find_edge b ~src:u' ~dst:v' with
         | Some e -> abs_float (Digraph.cap b e -. c) <= 1e-6 *. c
         | None -> false)
       (Digraph.edges a)

let test_sndlib_roundtrip () =
  let g = Datasets.abilene () in
  let text = Export.to_sndlib_native g in
  let g' = (Sndlib.of_native text).Sndlib.graph in
  Alcotest.(check bool) "roundtrip preserves the graph" true (same_graph g g')

let test_sndlib_roundtrip_demands () =
  let g = Datasets.abilene () in
  let demands = [ ("ATLAng", "STTLng", 12.5); ("NYCMng", "LOSAng", 3.25) ] in
  let text = Export.to_sndlib_native ~demands g in
  let t = Sndlib.of_native text in
  Alcotest.(check (list (triple string string (float 1e-6)))) "demands survive"
    demands t.Sndlib.demands

let test_export_rejects_oneway () =
  let g = Digraph.of_edges ~n:2 [ (0, 1, 1.) ] in
  (match Export.to_sndlib_native g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of one-way edge")

let test_dot_output () =
  let g = Datasets.abilene () in
  let dot = Export.to_dot g in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  let congested = Array.make (Digraph.edge_count g) 1.5 in
  let dot2 = Export.to_dot ~utilizations:congested g in
  let contains s sub =
    let n = String.length s and k = String.length sub in
    let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "congestion is highlighted" true (contains dot2 "color=red")

let test_roundtrip_synthetic =
  QCheck.Test.make ~name:"export/parse roundtrip on synthetic topologies" ~count:20
    (QCheck.make
       QCheck.Gen.(
         int_range 4 20 >>= fun nodes ->
         int_range 0 20 >>= fun extra -> return (nodes, nodes + extra))
       ~print:(fun (n, l) -> Printf.sprintf "n=%d links=%d" n l))
    (fun (nodes, links) ->
      let g = Gen.synthetic ~name:"rt" ~nodes ~links () in
      let g' = (Sndlib.of_native (Export.to_sndlib_native g)).Sndlib.graph in
      same_graph g g')

let () =
  Alcotest.run "topology"
    [
      ( "xmlparse",
        [
          Alcotest.test_case "basic" `Quick test_xml_basic;
          Alcotest.test_case "self closing" `Quick test_xml_self_closing;
          Alcotest.test_case "prolog/comment/doctype" `Quick test_xml_prolog_comment_doctype;
          Alcotest.test_case "entities" `Quick test_xml_entities;
          Alcotest.test_case "cdata" `Quick test_xml_cdata;
          Alcotest.test_case "descendants" `Quick test_xml_nested_descendants;
          Alcotest.test_case "errors" `Quick test_xml_errors;
          Alcotest.test_case "single quotes" `Quick test_xml_single_quotes;
        ] );
      ( "sndlib",
        [
          Alcotest.test_case "xml format" `Quick test_sndlib_xml;
          Alcotest.test_case "native format" `Quick test_sndlib_native;
          Alcotest.test_case "load_file dispatch" `Quick test_sndlib_load_file_dispatch;
        ] );
      ( "graphml",
        [
          Alcotest.test_case "basic" `Quick test_graphml;
          Alcotest.test_case "duplicate labels" `Quick test_graphml_duplicate_labels;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "gen sizes" `Quick test_gen_sizes;
          Alcotest.test_case "gen deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "gen connected" `Quick test_gen_connected;
          Alcotest.test_case "gen guards" `Quick test_gen_guards;
          Alcotest.test_case "abilene" `Quick test_abilene;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "unknown name" `Quick test_registry_unknown;
          Alcotest.test_case "case insensitive" `Quick test_load_case_insensitive;
        ] );
      ( "export",
        [
          Alcotest.test_case "sndlib roundtrip" `Quick test_sndlib_roundtrip;
          Alcotest.test_case "demands roundtrip" `Quick test_sndlib_roundtrip_demands;
          Alcotest.test_case "rejects one-way" `Quick test_export_rejects_oneway;
          Alcotest.test_case "dot output" `Quick test_dot_output;
          QCheck_alcotest.to_alcotest test_roundtrip_synthetic;
        ] );
    ]
