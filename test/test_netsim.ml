(* Tests for the hash-based ECMP forwarding simulator (the Nanonet
   substitute, Figure 7). *)

open Netgraph
open Te
open Netsim

let checkf = Alcotest.(check (float 1e-9))

let diamond () =
  Digraph.of_edges ~n:4 [ (0, 1, 10.); (1, 3, 10.); (0, 2, 10.); (2, 3, 10.) ]

let test_hash_deterministic () =
  let a = Hashing.next_hop_index ~flow:7 ~node:3 ~salt:1 ~choices:4 in
  let b = Hashing.next_hop_index ~flow:7 ~node:3 ~salt:1 ~choices:4 in
  Alcotest.(check int) "stable" a b

let test_hash_in_range () =
  for flow = 0 to 200 do
    let i = Hashing.next_hop_index ~flow ~node:5 ~salt:2 ~choices:3 in
    Alcotest.(check bool) "range" true (i >= 0 && i < 3)
  done

let test_hash_spreads () =
  (* Over many flows, both next hops of a 2-way split get used. *)
  let counts = [| 0; 0 |] in
  for flow = 0 to 499 do
    let i = Hashing.next_hop_index ~flow ~node:0 ~salt:0 ~choices:2 in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool)
    (Printf.sprintf "roughly even (%d/%d)" counts.(0) counts.(1))
    true
    (counts.(0) > 150 && counts.(1) > 150)

let test_hash_salt_changes () =
  let differs = ref false in
  for salt = 1 to 20 do
    if
      Hashing.next_hop_index ~flow:3 ~node:1 ~salt ~choices:2
      <> Hashing.next_hop_index ~flow:3 ~node:1 ~salt:0 ~choices:2
    then differs := true
  done;
  Alcotest.(check bool) "salts matter" true !differs

let test_hash_rejects_no_choice () =
  Alcotest.check_raises "choices = 0"
    (Invalid_argument "Hashing.next_hop_index: no choices") (fun () ->
      ignore (Hashing.next_hop_index ~flow:0 ~node:0 ~salt:0 ~choices:0))

let test_route_single_path () =
  (* With unequal weights there is one path; hashing cannot deviate. *)
  let g = diamond () in
  let w = [| 1.; 1.; 5.; 5. |] in
  let streams = [| { Flowsim.flow = 1; src = 0; dst = 3; rate = 4.; waypoints = [] } |] in
  let loads = Flowsim.route g w streams in
  checkf "upper full" 4. loads.(0);
  checkf "lower empty" 0. loads.(2)

let test_route_conserves_rate () =
  let g = diamond () in
  let w = Weights.unit g in
  let streams =
    Array.init 64 (fun i -> { Flowsim.flow = i; src = 0; dst = 3; rate = 0.25; waypoints = [] })
  in
  let loads = Flowsim.route g w streams in
  checkf "total into target" 16. (loads.(1) +. loads.(3));
  checkf "total out of source" 16. (loads.(0) +. loads.(2))

let test_route_respects_waypoints () =
  let g = diamond () in
  let w = Weights.unit g in
  let streams =
    [| { Flowsim.flow = 0; src = 0; dst = 3; rate = 2.; waypoints = [ 2 ] } |]
  in
  let loads = Flowsim.route g w streams in
  checkf "forced through 2" 2. loads.(2)

let test_route_unroutable () =
  let g = Digraph.of_edges ~n:3 [ (0, 1, 1.) ] in
  let streams = [| { Flowsim.flow = 0; src = 0; dst = 2; rate = 1.; waypoints = [] } |] in
  (match Flowsim.route g [| 1. |] streams with
  | exception Ecmp.Unroutable (0, 2) -> ()
  | _ -> Alcotest.fail "expected Unroutable")

let test_streams_of_demands () =
  let demands = [| Network.demand 0 3 4. |] in
  let streams = Flowsim.streams_of_demands ~streams_per_demand:8 demands [| [ 1 ] |] in
  Alcotest.(check int) "8 streams" 8 (Array.length streams);
  checkf "rate split" 0.5 streams.(0).Flowsim.rate;
  Alcotest.(check (list int)) "waypoints carried" [ 1 ] streams.(0).Flowsim.waypoints;
  let ids = Array.map (fun s -> s.Flowsim.flow) streams in
  Alcotest.(check int) "distinct flow ids" 8
    (List.length (List.sort_uniq compare (Array.to_list ids)))

let test_hashed_vs_ideal_ecmp () =
  (* With many small streams, hash routing approaches the ideal even
     split. *)
  let g = diamond () in
  let w = Weights.unit g in
  let demands = [| Network.demand 0 3 4. |] in
  let streams =
    Flowsim.streams_of_demands ~streams_per_demand:512 demands [| [] |]
  in
  let loads = Flowsim.route ~salt:3 g w streams in
  let ideal = Ecmp.loads (Ecmp.make g w) demands in
  Alcotest.(check (float 0.3)) "close to even" ideal.(0) loads.(0)

(* ------------------------------------------------------------------ *)
(* Nanonet experiment (Figure 7)                                       *)
(* ------------------------------------------------------------------ *)

let test_nanonet_shape () =
  let s = Nanonet.run ~trials:10 () in
  Alcotest.(check int) "10 trials" 10 (List.length s.Nanonet.trials);
  (* Joint stays at ~1 (plus noise), Weights lands around/above 2. *)
  Alcotest.(check bool)
    (Printf.sprintf "joint median %g in [1, 1.1]" s.Nanonet.joint_median)
    true
    (s.Nanonet.joint_median >= 1. && s.Nanonet.joint_median <= 1.1);
  Alcotest.(check bool)
    (Printf.sprintf "weights median %g in [1.9, 2.8]" s.Nanonet.weights_median)
    true
    (s.Nanonet.weights_median >= 1.9 && s.Nanonet.weights_median <= 2.8);
  Alcotest.(check bool) "weights spread" true
    (s.Nanonet.weights_max > s.Nanonet.weights_min);
  Alcotest.(check bool) "joint beats weights" true
    (s.Nanonet.joint_median < s.Nanonet.weights_median)

let test_nanonet_no_noise_joint_exact () =
  let s = Nanonet.run ~trials:3 ~noise:0. () in
  List.iter
    (fun t -> checkf "joint exactly 1 without noise" 1. t.Nanonet.joint)
    s.Nanonet.trials

let test_nanonet_deterministic () =
  let a = Nanonet.run ~trials:4 () and b = Nanonet.run ~trials:4 () in
  Alcotest.(check bool) "same results" true (a.Nanonet.trials = b.Nanonet.trials)

let () =
  Alcotest.run "netsim"
    [
      ( "hashing",
        [
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "in range" `Quick test_hash_in_range;
          Alcotest.test_case "spreads" `Quick test_hash_spreads;
          Alcotest.test_case "salt sensitivity" `Quick test_hash_salt_changes;
          Alcotest.test_case "no choices" `Quick test_hash_rejects_no_choice;
        ] );
      ( "flowsim",
        [
          Alcotest.test_case "single path" `Quick test_route_single_path;
          Alcotest.test_case "rate conservation" `Quick test_route_conserves_rate;
          Alcotest.test_case "waypoints" `Quick test_route_respects_waypoints;
          Alcotest.test_case "unroutable" `Quick test_route_unroutable;
          Alcotest.test_case "streams of demands" `Quick test_streams_of_demands;
          Alcotest.test_case "hashed approaches ideal" `Quick test_hashed_vs_ideal_ecmp;
        ] );
      ( "nanonet",
        [
          Alcotest.test_case "figure 7 shape" `Quick test_nanonet_shape;
          Alcotest.test_case "noise-free joint" `Quick test_nanonet_no_noise_joint_exact;
          Alcotest.test_case "deterministic" `Quick test_nanonet_deterministic;
        ] );
    ]
