(* Tests for lib/scenario: the generator grammar is deterministic and
   validated, demand shifts are pure, and — the load-bearing contract —
   sweep results are bit-identical for every pool size and chunking and
   agree with the rebuild oracle on every static outcome. *)

open Netgraph
open Te

(* A deployed JOINT setting on Abilene, shared across tests. *)
let fixture =
  lazy
    (let g = Topology.Datasets.abilene () in
     let demands =
       Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:3 ~flows_per_pair:2 g
     in
     let ls_params =
       { Local_search.default_params with max_evals = 200; seed = 5 }
     in
     let joint = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params g demands in
     let deployed =
       {
         Scenario.weights = joint.Joint.int_weights;
         Scenario.waypoints = joint.Joint.waypoints;
       }
     in
     (g, demands, deployed))

let rich_config g =
  {
    Scenario.default_config with
    Scenario.seed = 9;
    Scenario.dual_failures = 6;
    Scenario.srlgs = [ [ 0; 2 ] ];
    Scenario.scales = [ 0.7; 1.3 ];
    Scenario.jitters = 3;
    Scenario.hotspots = 2;
    Scenario.diurnal = 3;
    Scenario.cross = Digraph.edge_count g < 0 (* false; silences unused g *);
  }

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_generate_deterministic () =
  let g, _, _ = Lazy.force fixture in
  let cfg = rich_config g in
  let a = Scenario.generate cfg g and b = Scenario.generate cfg g in
  Alcotest.(check bool) "same specs on regeneration" true (a = b);
  Array.iteri
    (fun i s -> Alcotest.(check int) "ids are positional" i s.Scenario.id)
    a;
  (* Baseline first, then the failure cases in edge-id order. *)
  Alcotest.(check bool) "baseline first" true
    (a.(0).Scenario.failed = [] && a.(0).Scenario.shift = Scenario.No_shift);
  let singles = Failures.failure_groups g in
  List.iteri
    (fun i (_, removed) ->
      Alcotest.(check bool)
        (Printf.sprintf "single failure case %d" i)
        true
        (a.(i + 1).Scenario.failed = removed))
    singles

let test_generate_counts () =
  let g, _, _ = Lazy.force fixture in
  let singles = List.length (Failures.failure_groups g) in
  let cfg = rich_config g in
  let n = Array.length (Scenario.generate cfg g) in
  (* baseline + singles + 1 SRLG + 6 duals + 2 scales + 3 jitters
     + 2 hotspots + 3 diurnal *)
  Alcotest.(check int) "axis-sweep count" (1 + singles + 1 + 6 + 2 + 3 + 2 + 3) n;
  let cross = { cfg with Scenario.cross = true } in
  let nc = Array.length (Scenario.generate cross g) in
  (* (1 + failure cases) x (1 + shifts), all combinations kept. *)
  Alcotest.(check int) "cross-product count"
    ((1 + singles + 1 + 6) * (1 + 2 + 3 + 2 + 3))
    nc

let test_generate_validation () =
  let g, _, _ = Lazy.force fixture in
  let check_invalid name cfg =
    Alcotest.(check bool) name true
      (try
         ignore (Scenario.generate cfg g);
         false
       with Invalid_argument _ -> true)
  in
  check_invalid "negative scale"
    { Scenario.default_config with Scenario.scales = [ -1. ] };
  check_invalid "zero hotspot factor"
    { Scenario.default_config with Scenario.hotspots = 1;
      Scenario.hotspot_factor = 0. };
  check_invalid "negative count"
    { Scenario.default_config with Scenario.jitters = -1 };
  check_invalid "srlg out of range"
    { Scenario.default_config with
      Scenario.srlgs = [ [ Digraph.edge_count g ] ] }

(* ------------------------------------------------------------------ *)
(* Demand shifts                                                       *)
(* ------------------------------------------------------------------ *)

let test_apply_shift () =
  let _, demands, _ = Lazy.force fixture in
  Alcotest.(check bool) "No_shift is physically the input" true
    (Scenario.apply_shift Scenario.No_shift demands == demands);
  let shifts =
    [
      Scenario.Uniform 1.3;
      Scenario.Jitter { seed = 4; sigma = 0.25 };
      Scenario.Hotspot { seed = 4; pairs = 3; factor = 3. };
      Scenario.Diurnal { level = 0.3 };
    ]
  in
  List.iter
    (fun sh ->
      let a = Scenario.apply_shift sh demands in
      let b = Scenario.apply_shift sh demands in
      Alcotest.(check bool) "pure (same shift, same result)" true (a = b);
      Alcotest.(check bool) "input untouched" true
        (Array.for_all2
           (fun (d : Network.demand) (d' : Network.demand) ->
             d.Network.src = d'.Network.src && d.Network.dst = d'.Network.dst)
           demands a);
      Array.iter
        (fun (d : Network.demand) ->
          Alcotest.(check bool) "sizes stay positive" true (d.Network.size > 0.))
        a)
    shifts;
  let scaled = Scenario.apply_shift (Scenario.Uniform 2.) demands in
  Array.iteri
    (fun i (d : Network.demand) ->
      Alcotest.(check (float 1e-12)) "uniform doubles sizes"
        (2. *. demands.(i).Network.size)
        d.Network.size)
    scaled

let test_policies_of_string () =
  Alcotest.(check bool) "parses the acceptance list" true
    (Scenario.policies_of_string "static,repair,reweight:3"
    = [ Scenario.Static; Scenario.Repair; Scenario.Reweight 3 ]);
  Alcotest.(check string) "round-trips names" "reweight:3"
    (Scenario.policy_name (Scenario.Reweight 3));
  let invalid s =
    try
      ignore (Scenario.policies_of_string s);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "rejects unknown" true (invalid "static,wat");
  Alcotest.(check bool) "rejects bad budget" true (invalid "reweight:x")

(* ------------------------------------------------------------------ *)
(* Sweep: oracle agreement and scheduling independence                 *)
(* ------------------------------------------------------------------ *)

let small_specs g =
  Scenario.generate
    {
      Scenario.default_config with
      Scenario.seed = 9;
      Scenario.dual_failures = 4;
      Scenario.scales = [ 0.8; 1.2 ];
      Scenario.jitters = 2;
      Scenario.hotspots = 1;
      Scenario.diurnal = 2;
    }
    g

let test_sweep_matches_rebuild_oracle () =
  let g, demands, deployed = Lazy.force fixture in
  let specs = small_specs g in
  let out = Scenario.sweep_ctx (Obs.Ctx.default ()) ~deployed g demands specs in
  let oracle = Scenario.static_sweep_rebuild ~deployed g demands specs in
  Array.iteri
    (fun i (mlu, disc) ->
      let o = out.(i) in
      Alcotest.(check int)
        (Printf.sprintf "scenario %d disconnected" i)
        disc o.Scenario.static_disconnected;
      if Float.is_nan mlu then
        Alcotest.(check bool)
          (Printf.sprintf "scenario %d nan mlu" i)
          true
          (Float.is_nan o.Scenario.static_mlu)
      else
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "scenario %d mlu" i)
          mlu o.Scenario.static_mlu)
    oracle

let test_sweep_scheduling_independent () =
  let g, demands, deployed = Lazy.force fixture in
  let specs = small_specs g in
  let policies = [ Scenario.Static; Scenario.Repair; Scenario.Reweight 3 ] in
  let run ~chunk pool =
    Scenario.sweep_ctx (Obs.Ctx.make ~pool ()) ~chunk ~policies ~reopt_evals:60 ~deployed g demands
      specs
  in
  let reference = run ~chunk:4 Par.Pool.sequential in
  (* compare (not (=)) so nan = nan: outcomes carry nan MLUs. *)
  List.iter
    (fun jobs ->
      let out = Par.Pool.with_pool ~jobs (run ~chunk:4) in
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical at jobs=%d" jobs)
        true
        (compare out reference = 0))
    [ 2; 4 ];
  List.iter
    (fun chunk ->
      let out = run ~chunk Par.Pool.sequential in
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical at chunk=%d" chunk)
        true
        (compare out reference = 0))
    [ 1; 3; 17 ];
  (* And so is the serialized report — the artifact the CLI emits. *)
  let json out =
    Scenario.report_to_json g
      (Scenario.summarize ~topology:"Abilene" ~nominal_mlu:1. out)
  in
  let j4 = Par.Pool.with_pool ~jobs:4 (fun p -> json (run ~chunk:4 p)) in
  Alcotest.(check string) "report bytes identical across jobs" (json reference)
    j4

let test_sweep_policies () =
  let g, demands, deployed = Lazy.force fixture in
  let specs = small_specs g in
  let out =
    Scenario.sweep_ctx (Obs.Ctx.default ())
      ~policies:[ Scenario.Static; Scenario.Repair; Scenario.Reweight 2 ]
      ~reopt_evals:60 ~deployed g demands specs
  in
  Array.iter
    (fun (o : Scenario.outcome) ->
      Alcotest.(check int) "one outcome per policy" 3
        (List.length o.Scenario.policies);
      Alcotest.(check bool) "topo_disconnected <= static_disconnected" true
        (o.Scenario.topo_disconnected <= o.Scenario.static_disconnected);
      List.iter
        (fun (po : Scenario.policy_outcome) ->
          Alcotest.(check bool) "nan iff disconnected" true
            (Float.is_nan po.Scenario.mlu = (po.Scenario.disconnected > 0));
          match po.Scenario.policy with
          | Scenario.Static ->
            Alcotest.(check int) "static reports deployed disconnections"
              o.Scenario.static_disconnected po.Scenario.disconnected;
            Alcotest.(check int) "static never changes weights" 0
              po.Scenario.weight_changes
          | Scenario.Repair ->
            Alcotest.(check int) "repair routes all the topology allows"
              o.Scenario.topo_disconnected po.Scenario.disconnected;
            Alcotest.(check int) "repair never changes weights" 0
              po.Scenario.weight_changes;
            if o.Scenario.static_disconnected = 0 then
              Alcotest.(check bool) "repair never worse than static" true
                (po.Scenario.mlu <= o.Scenario.static_mlu +. 1e-9)
          | Scenario.Reweight k ->
            Alcotest.(check bool) "reweight respects the budget" true
              (po.Scenario.weight_changes <= k);
            if po.Scenario.disconnected = 0
               && o.Scenario.static_disconnected = 0
            then
              Alcotest.(check bool) "reweight never worse than static" true
                (po.Scenario.mlu <= o.Scenario.static_mlu +. 1e-9))
        o.Scenario.policies)
    out

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_summarize () =
  let g, demands, deployed = Lazy.force fixture in
  let specs = small_specs g in
  let out =
    Scenario.sweep_ctx (Obs.Ctx.default ()) ~policies:[ Scenario.Static; Scenario.Repair ] ~deployed g
      demands specs
  in
  let r = Scenario.summarize ~topology:"Abilene" ~nominal_mlu:1.0 out in
  Alcotest.(check int) "scenario count" (Array.length specs)
    r.Scenario.scenario_count;
  Alcotest.(check int) "static + requested non-static summaries" 2
    (List.length r.Scenario.summaries);
  let s = List.hd r.Scenario.summaries in
  Alcotest.(check bool) "static summary first" true
    (s.Scenario.policy = Scenario.Static);
  Alcotest.(check bool) "percentiles ordered" true
    (s.Scenario.p50 <= s.Scenario.p95 && s.Scenario.p95 <= s.Scenario.p99);
  Alcotest.(check bool) "p99 <= worst" true
    (s.Scenario.p99 <= s.Scenario.worst_mlu);
  Alcotest.(check bool) "cvar95 >= p95" true
    (s.Scenario.cvar95 >= s.Scenario.p95 -. 1e-12);
  Alcotest.(check bool) "worst_id is a spec id" true
    (Array.exists (fun o -> o.Scenario.spec.Scenario.id = s.Scenario.worst_id) out);
  (* worst_cases lead with the most severe static outcome. *)
  (match r.Scenario.worst_cases with
  | (sp, mlu, disc) :: _ ->
    Alcotest.(check int) "headline worst case id" s.Scenario.worst_id
      sp.Scenario.id;
    if disc = 0 then
      Alcotest.(check (float 1e-12)) "headline worst mlu" s.Scenario.worst_mlu
        mlu
  | [] -> Alcotest.fail "no worst cases");
  Alcotest.(check bool) "at most five worst cases" true
    (List.length r.Scenario.worst_cases <= 5);
  let json = Scenario.report_to_json g r in
  Alcotest.(check bool) "json carries the schema" true
    (String.length json > 0
    && String.sub json 0 33 = "{\"schema\": \"robustness-report/1\"," )

let () =
  Alcotest.run "scenario"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "counts" `Quick test_generate_counts;
          Alcotest.test_case "validation" `Quick test_generate_validation;
        ] );
      ( "shifts",
        [
          Alcotest.test_case "apply_shift" `Quick test_apply_shift;
          Alcotest.test_case "policies_of_string" `Quick test_policies_of_string;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "matches rebuild oracle" `Quick
            test_sweep_matches_rebuild_oracle;
          Alcotest.test_case "scheduling independent" `Quick
            test_sweep_scheduling_independent;
          Alcotest.test_case "policy semantics" `Quick test_sweep_policies;
        ] );
      ( "report",
        [ Alcotest.test_case "summarize + json" `Quick test_summarize ] );
    ]
