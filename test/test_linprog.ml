(* Tests for the simplex LP solver and the branch-and-bound MILP solver. *)

open Linprog
open Simplex

let get_opt = function
  | Optimal { value; solution } -> (value, solution)
  | Infeasible -> Alcotest.fail "unexpected infeasible"
  | Unbounded -> Alcotest.fail "unexpected unbounded"

let checkf = Alcotest.(check (float 1e-6))

(* max x0 + x1  s.t.  x0 <= 4, x1 <= 3, x0 + x1 <= 5 *)
let test_basic_max () =
  let p =
    { nvars = 2; sense = Maximize; objective = [ (0, 1.); (1, 1.) ];
      constrs =
        [ constr [ (0, 1.) ] Le 4.; constr [ (1, 1.) ] Le 3.;
          constr [ (0, 1.); (1, 1.) ] Le 5. ] }
  in
  let v, x = get_opt (solve p) in
  checkf "objective" 5. v;
  Alcotest.(check bool) "feasible" true (check_feasible p x)

(* min 2x0 + 3x1  s.t.  x0 + x1 >= 4, x0 >= 1 *)
let test_basic_min () =
  let p =
    { nvars = 2; sense = Minimize; objective = [ (0, 2.); (1, 3.) ];
      constrs = [ constr [ (0, 1.); (1, 1.) ] Ge 4.; constr [ (0, 1.) ] Ge 1. ] }
  in
  let v, x = get_opt (solve p) in
  checkf "objective" 8. v;
  checkf "x0" 4. x.(0);
  checkf "x1" 0. x.(1)

let test_equality () =
  (* max x0 s.t. x0 + x1 = 3, x0 - x1 = 1  ->  x0 = 2, x1 = 1 *)
  let p =
    { nvars = 2; sense = Maximize; objective = [ (0, 1.) ];
      constrs =
        [ constr [ (0, 1.); (1, 1.) ] Eq 3.; constr [ (0, 1.); (1, -1.) ] Eq 1. ] }
  in
  let v, x = get_opt (solve p) in
  checkf "objective" 2. v;
  checkf "x1" 1. x.(1)

let test_infeasible () =
  let p =
    { nvars = 1; sense = Maximize; objective = [ (0, 1.) ];
      constrs = [ constr [ (0, 1.) ] Le 1.; constr [ (0, 1.) ] Ge 2. ] }
  in
  (match solve p with
  | Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible")

let test_unbounded () =
  let p =
    { nvars = 2; sense = Maximize; objective = [ (0, 1.) ];
      constrs = [ constr [ (1, 1.) ] Le 1. ] }
  in
  (match solve p with
  | Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded")

let test_negative_rhs () =
  (* x0 - x1 <= -2 normalizes to a Ge row; min x1 s.t. x1 >= x0 + 2 >= 2. *)
  let p =
    { nvars = 2; sense = Minimize; objective = [ (1, 1.) ];
      constrs = [ constr [ (0, 1.); (1, -1.) ] Le (-2.) ] }
  in
  let v, _ = get_opt (solve p) in
  checkf "objective" 2. v

let test_degenerate () =
  (* Classic degenerate LP; must not cycle. *)
  let p =
    { nvars = 3; sense = Maximize;
      objective = [ (0, 10.); (1, -57.); (2, -9.) ];
      constrs =
        [ constr [ (0, 0.5); (1, -5.5); (2, -2.5) ] Le 0.;
          constr [ (0, 0.5); (1, -1.5); (2, -0.5) ] Le 0.;
          constr [ (0, 1.) ] Le 1. ] }
  in
  let v, _ = get_opt (solve p) in
  Alcotest.(check bool) "finite" true (Float.is_finite v)

let test_duplicate_coeffs () =
  (* Repeated (var, coef) pairs must accumulate: max x s.t. x + x <= 4. *)
  let p =
    { nvars = 1; sense = Maximize; objective = [ (0, 1.) ];
      constrs = [ constr [ (0, 1.); (0, 1.) ] Le 4. ] }
  in
  let v, _ = get_opt (solve p) in
  checkf "x = 2" 2. v

let test_bad_index () =
  let p =
    { nvars = 1; sense = Maximize; objective = [ (1, 1.) ]; constrs = [] }
  in
  Alcotest.check_raises "oob"
    (Invalid_argument "Simplex.solve: objective index out of range")
    (fun () -> ignore (solve p))

let test_min_mlu_toy () =
  (* Two parallel links (caps 1 and 3), demand 2; route to minimize MLU.
     vars: f0, f1, U.  min U s.t. f0 + f1 = 2, f0 <= U*1, f1 <= U*3.
     Optimum: U = 1/2, f0 = 1/2, f1 = 3/2. *)
  let p =
    { nvars = 3; sense = Minimize; objective = [ (2, 1.) ];
      constrs =
        [ constr [ (0, 1.); (1, 1.) ] Eq 2.;
          constr [ (0, 1.); (2, -1.) ] Le 0.;
          constr [ (1, 1.); (2, -3.) ] Le 0. ] }
  in
  let v, x = get_opt (solve p) in
  checkf "U" 0.5 v;
  checkf "f0" 0.5 x.(0);
  checkf "f1" 1.5 x.(1)

(* ------------------------------------------------------------------ *)
(* MILP                                                                *)
(* ------------------------------------------------------------------ *)

let get_milp = function
  | Milp.Solution s -> s
  | Milp.Infeasible -> Alcotest.fail "unexpected milp infeasible"
  | Milp.Unbounded -> Alcotest.fail "unexpected milp unbounded"
  | Milp.NoIncumbent -> Alcotest.fail "unexpected no-incumbent"

let test_milp_knapsack () =
  (* max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d <= 14, vars binary.
     Optimum: b + c + d = 21. *)
  let p =
    { nvars = 4; sense = Maximize;
      objective = [ (0, 8.); (1, 11.); (2, 6.); (3, 4.) ];
      constrs =
        [ constr [ (0, 5.); (1, 7.); (2, 4.); (3, 3.) ] Le 14.;
          constr [ (0, 1.) ] Le 1.; constr [ (1, 1.) ] Le 1.;
          constr [ (2, 1.) ] Le 1.; constr [ (3, 1.) ] Le 1. ] }
  in
  let s = get_milp (Milp.solve p ~integer_vars:[ 0; 1; 2; 3 ]) in
  checkf "objective" 21. s.Milp.value;
  checkf "a" 0. s.Milp.point.(0);
  checkf "b" 1. s.Milp.point.(1)

let test_milp_integer_rounding () =
  (* max x s.t. 2x <= 7, x integer -> 3 (LP gives 3.5). *)
  let p =
    { nvars = 1; sense = Maximize; objective = [ (0, 1.) ];
      constrs = [ constr [ (0, 2.) ] Le 7. ] }
  in
  let s = get_milp (Milp.solve p ~integer_vars:[ 0 ]) in
  checkf "x" 3. s.Milp.value

let test_milp_min () =
  (* min 3x + 4y s.t. x + 2y >= 5, ints -> candidates: y=3 cost 12;
     x=1,y=2 cost 11; x=3,y=1 cost 13; x=5 cost 15.  Optimum 11. *)
  let p =
    { nvars = 2; sense = Minimize; objective = [ (0, 3.); (1, 4.) ];
      constrs = [ constr [ (0, 1.); (1, 2.) ] Ge 5. ] }
  in
  let s = get_milp (Milp.solve p ~integer_vars:[ 0; 1 ]) in
  checkf "objective" 11. s.Milp.value

let test_milp_infeasible () =
  let p =
    { nvars = 1; sense = Maximize; objective = [ (0, 1.) ];
      constrs = [ constr [ (0, 2.) ] Ge 1.; constr [ (0, 2.) ] Le 1. ] }
  in
  (* 0.5 <= x <= 0.5 has no integer point... except x=0.5; integrality
     makes it infeasible. *)
  (match Milp.solve p ~integer_vars:[ 0 ] with
  | Milp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible")

let test_milp_mixed () =
  (* max x + y, x integer, y continuous; x <= 2.5, y <= 0.5. *)
  let p =
    { nvars = 2; sense = Maximize; objective = [ (0, 1.); (1, 1.) ];
      constrs = [ constr [ (0, 1.) ] Le 2.5; constr [ (1, 1.) ] Le 0.5 ] }
  in
  let s = get_milp (Milp.solve p ~integer_vars:[ 0 ]) in
  checkf "objective" 2.5 s.Milp.value;
  checkf "x integral" 2. s.Milp.point.(0)

let test_milp_assignment () =
  (* 2x2 assignment problem: costs [[1, 10]; [10, 1]]; min cost 2. *)
  let var i j = (2 * i) + j in
  let p =
    { nvars = 4; sense = Minimize;
      objective = [ (var 0 0, 1.); (var 0 1, 10.); (var 1 0, 10.); (var 1 1, 1.) ];
      constrs =
        [ constr [ (var 0 0, 1.); (var 0 1, 1.) ] Eq 1.;
          constr [ (var 1 0, 1.); (var 1 1, 1.) ] Eq 1.;
          constr [ (var 0 0, 1.); (var 1 0, 1.) ] Eq 1.;
          constr [ (var 0 1, 1.); (var 1 1, 1.) ] Eq 1. ] }
  in
  let s = get_milp (Milp.solve p ~integer_vars:[ 0; 1; 2; 3 ]) in
  checkf "objective" 2. s.Milp.value

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random bounded LPs: max c.x with x_j <= u_j and a coupling row. *)
let arb_lp =
  let gen =
    QCheck.Gen.(
      int_range 1 5 >>= fun n ->
      list_size (return n) (float_range 0.1 5.) >>= fun cs ->
      list_size (return n) (float_range 0.5 4.) >>= fun us ->
      float_range 1. 10. >>= fun budget -> return (n, cs, us, budget))
  in
  QCheck.make gen ~print:(fun (n, _, _, b) -> Printf.sprintf "n=%d budget=%g" n b)

let prop_lp_solution_feasible =
  QCheck.Test.make ~name:"simplex returns feasible optimum" ~count:200 arb_lp
    (fun (n, cs, us, budget) ->
      let p =
        { nvars = n; sense = Maximize;
          objective = List.mapi (fun j c -> (j, c)) cs;
          constrs =
            constr (List.init n (fun j -> (j, 1.))) Le budget
            :: List.mapi (fun j u -> constr [ (j, 1.) ] Le u) us }
      in
      match solve p with
      | Optimal { value; solution } ->
        check_feasible p solution
        && value
           >= List.fold_left2 (fun acc c x -> acc +. (c *. x)) 0. cs
                (Array.to_list solution)
              -. 1e-6
      | _ -> false)

let test_milp_warm_start () =
  (* A valid warm start must survive even a node budget of 1. *)
  let p =
    { nvars = 2; sense = Maximize; objective = [ (0, 3.); (1, 2.) ];
      constrs =
        [ constr [ (0, 1.); (1, 1.) ] Le 4.; constr [ (0, 1.) ] Le 3.;
          constr [ (1, 1.) ] Le 3. ] }
  in
  let initial = [| 1.; 1. |] in
  (match Milp.solve ~max_nodes:1 ~initial p ~integer_vars:[ 0; 1 ] with
  | Milp.Solution s ->
    Alcotest.(check bool) "at least the warm start" true (s.Milp.value >= 5. -. 1e-9)
  | _ -> Alcotest.fail "expected a solution");
  (* An infeasible warm start is ignored, not trusted. *)
  (match Milp.solve ~initial:[| 10.; 10. |] p ~integer_vars:[ 0; 1 ] with
  | Milp.Solution s -> checkf "true optimum" 11. s.Milp.value
  | _ -> Alcotest.fail "expected a solution")

(* Exhaustive grid enumeration as an oracle for 2-variable integer
   programs. *)
let prop_milp_matches_enumeration =
  QCheck.Test.make ~name:"2-var MILP = grid enumeration" ~count:150
    (QCheck.make
       QCheck.Gen.(
         float_range 0.5 4. >>= fun c0 ->
         float_range 0.5 4. >>= fun c1 ->
         float_range 2. 9. >>= fun budget ->
         float_range 1. 6. >>= fun u0 ->
         float_range 1. 6. >>= fun u1 -> return (c0, c1, budget, u0, u1))
       ~print:(fun (a, b, c, d, e) ->
         Printf.sprintf "c=(%g,%g) budget=%g u=(%g,%g)" a b c d e))
    (fun (c0, c1, budget, u0, u1) ->
      let p =
        { nvars = 2; sense = Maximize; objective = [ (0, c0); (1, c1) ];
          constrs =
            [ constr [ (0, 1.); (1, 1.) ] Le budget; constr [ (0, 1.) ] Le u0;
              constr [ (1, 1.) ] Le u1 ] }
      in
      let best = ref neg_infinity in
      for x = 0 to 10 do
        for y = 0 to 10 do
          let xf = float_of_int x and yf = float_of_int y in
          if xf +. yf <= budget +. 1e-12 && xf <= u0 +. 1e-12 && yf <= u1 +. 1e-12
          then best := max !best ((c0 *. xf) +. (c1 *. yf))
        done
      done;
      match Milp.solve p ~integer_vars:[ 0; 1 ] with
      | Milp.Solution s -> abs_float (s.Milp.value -. !best) <= 1e-6
      | _ -> false)

let prop_lp_bound_dominates_milp =
  QCheck.Test.make ~name:"LP relaxation dominates MILP optimum" ~count:100 arb_lp
    (fun (n, cs, us, budget) ->
      let p =
        { nvars = n; sense = Maximize;
          objective = List.mapi (fun j c -> (j, c)) cs;
          constrs =
            constr (List.init n (fun j -> (j, 1.))) Le budget
            :: List.mapi (fun j u -> constr [ (j, 1.) ] Le u) us }
      in
      match (solve p, Milp.solve p ~integer_vars:(List.init n Fun.id)) with
      | Optimal { value = lp; _ }, Milp.Solution s ->
        lp >= s.Milp.value -. 1e-6
        && Array.for_all
             (fun x -> abs_float (x -. Float.round x) <= 1e-5)
             (Array.sub s.Milp.point 0 n)
      | _ -> false)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "linprog"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic max" `Quick test_basic_max;
          Alcotest.test_case "basic min" `Quick test_basic_min;
          Alcotest.test_case "equalities" `Quick test_equality;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "duplicate coefficients" `Quick test_duplicate_coeffs;
          Alcotest.test_case "index check" `Quick test_bad_index;
          Alcotest.test_case "min-MLU toy" `Quick test_min_mlu_toy;
        ] );
      ( "milp",
        [
          Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
          Alcotest.test_case "rounding" `Quick test_milp_integer_rounding;
          Alcotest.test_case "minimize" `Quick test_milp_min;
          Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
          Alcotest.test_case "mixed" `Quick test_milp_mixed;
          Alcotest.test_case "assignment" `Quick test_milp_assignment;
          Alcotest.test_case "warm start" `Quick test_milp_warm_start;
        ] );
      ( "properties",
        qc
          [ prop_lp_solution_feasible; prop_lp_bound_dominates_milp;
            prop_milp_matches_enumeration ] );
    ]
