(* Tests for lib/obs: span bookkeeping (nesting, bounded buffers,
   misnest repair), metrics merge, exporters — and the two load-bearing
   contracts of the run-context API: the deprecated optional-argument
   observability never changes solver results, and merged traces are
   byte-identical for every pool size. *)

open Te

(* A small Abilene instance shared across the solver-level tests. *)
let fixture =
  lazy
    (let g = Topology.Datasets.abilene () in
     let demands =
       Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:3 ~flows_per_pair:2 g
     in
     (g, demands))

let ls_params =
  { Local_search.default_params with max_evals = 150; seed = 5 }

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)
(* ------------------------------------------------------------------ *)

(* Structural well-formedness of an exported span list: ids dense from
   0, parents precede their children, depth chains by 1. *)
let check_well_formed spans =
  let arr = Array.of_list spans in
  Array.iteri
    (fun i (s : Obs.Span.t) ->
      Alcotest.(check int) "dense ids" i s.Obs.Span.id;
      if s.Obs.Span.parent = -1 then
        Alcotest.(check int) "root depth" 0 s.Obs.Span.depth
      else begin
        Alcotest.(check bool) "parent precedes child" true
          (s.Obs.Span.parent >= 0 && s.Obs.Span.parent < i);
        Alcotest.(check int) "depth chains"
          (arr.(s.Obs.Span.parent).Obs.Span.depth + 1)
          s.Obs.Span.depth
      end)
    arr

let test_tracer_nesting () =
  let t = Obs.Tracer.create () in
  Obs.Tracer.with_span t "a" (fun () ->
      Obs.Tracer.with_span t "b" (fun () -> ());
      Obs.Tracer.with_span t ~attrs:[ Obs.Attr.int "k" 7 ] "c" (fun () -> ()));
  Obs.Tracer.instant t "d";
  let spans = Obs.Tracer.spans t in
  Alcotest.(check int) "span count" 4 (List.length spans);
  Alcotest.(check int) "no misnesting" 0 (Obs.Tracer.misnested t);
  check_well_formed spans;
  let names = List.map (fun (s : Obs.Span.t) -> s.Obs.Span.name) spans in
  Alcotest.(check (list string)) "recording order" [ "a"; "b"; "c"; "d" ] names;
  let c = List.nth spans 2 in
  Alcotest.(check int) "b/c nest under a" 0 c.Obs.Span.parent;
  Alcotest.(check bool) "attr kept" true
    (c.Obs.Span.attrs = [ ("k", Obs.Attr.Int 7) ]);
  (* every closed span has a duration *)
  List.iter
    (fun (s : Obs.Span.t) ->
      Alcotest.(check bool) "closed" true (s.Obs.Span.dur >= 0.))
    spans

let test_tracer_exception_closes () =
  let t = Obs.Tracer.create () in
  (try Obs.Tracer.with_span t "boom" (fun () -> failwith "x") with
  | Failure _ -> ());
  match Obs.Tracer.spans t with
  | [ s ] ->
    Alcotest.(check bool) "closed on raise" true (s.Obs.Span.dur >= 0.);
    Alcotest.(check int) "well formed" 0 (Obs.Tracer.misnested t)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_tracer_misnest_repair () =
  let t = Obs.Tracer.create () in
  let a = Obs.Tracer.start t "a" in
  let _b = Obs.Tracer.start t "b" in
  Obs.Tracer.finish t a;
  (* force-pops b *)
  Alcotest.(check int) "repair counted" 1 (Obs.Tracer.misnested t);
  check_well_formed (Obs.Tracer.spans t)

let test_tracer_bounded () =
  let t = Obs.Tracer.create ~cap:4 () in
  for i = 1 to 10 do
    Obs.Tracer.with_span t (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "cap retained" 4 (Obs.Tracer.span_count t);
  Alcotest.(check int) "drops counted" 6 (Obs.Tracer.dropped t);
  check_well_formed (Obs.Tracer.spans t)

let test_tracer_noop () =
  let t = Obs.Tracer.noop in
  Alcotest.(check bool) "disabled" false (Obs.Tracer.enabled t);
  Alcotest.(check int) "start is -1" (-1) (Obs.Tracer.start t "x");
  let ran = ref false in
  Obs.Tracer.with_span t "y" (fun () -> ran := true);
  Alcotest.(check bool) "body runs" true !ran;
  Alcotest.(check int) "records nothing" 0 (Obs.Tracer.span_count t);
  Alcotest.(check bool) "probe is null" false (Obs.Tracer.probe t).Engine.Probe.enabled;
  Alcotest.(check bool) "lp probe is null" false
    (Obs.Tracer.lp_probe t).Linprog.Simplex.enabled

let test_graft_key_order () =
  let run keys =
    let t = Obs.Tracer.create () in
    Obs.Tracer.with_span t "root" (fun () ->
        let kids =
          List.map
            (fun k ->
              let c = Obs.Tracer.child t in
              Obs.Tracer.with_span c (Printf.sprintf "task%d" k) (fun () -> ());
              (k, c))
            keys
        in
        List.iter (fun (k, c) -> Obs.Tracer.graft t ~key:k c) kids);
    List.map (fun (s : Obs.Span.t) -> s.Obs.Span.name) (Obs.Tracer.spans t)
  in
  (* Same keys, two completion orders: identical merged traces. *)
  Alcotest.(check (list string))
    "sorted by key" [ "root"; "task0"; "task1"; "task2" ] (run [ 2; 0; 1 ]);
  Alcotest.(check (list string))
    "order independent" (run [ 0; 1; 2 ]) (run [ 2; 1; 0 ])

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_merge () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.incr a "x";
  Obs.Metrics.incr a ~by:4 "y";
  Obs.Metrics.incr b ~by:2 "x";
  Obs.Metrics.gauge a "g" 1.5;
  Obs.Metrics.gauge b "g" 2.5;
  Obs.Metrics.observe a "h" 0.1;
  Obs.Metrics.observe b "h" 10.;
  Obs.Metrics.merge ~into:a b;
  Alcotest.(check (list (pair string int)))
    "counters add" [ ("x", 3); ("y", 4) ] (Obs.Metrics.counters a);
  Alcotest.(check (list (pair string (float 1e-9))))
    "merged-in gauge wins" [ ("g", 2.5) ] (Obs.Metrics.gauges a);
  (match Obs.Metrics.histograms a with
  | [ ("h", h) ] ->
    Alcotest.(check int) "hist n" 2 h.Obs.Metrics.n;
    Alcotest.(check (float 1e-9)) "hist sum" 10.1 h.Obs.Metrics.sum;
    Alcotest.(check (float 1e-9)) "hist min" 0.1 h.Obs.Metrics.min;
    Alcotest.(check (float 1e-9)) "hist max" 10. h.Obs.Metrics.max
  | _ -> Alcotest.fail "expected one histogram");
  (* to_json is deterministic: rebuild the same metrics, same string. *)
  let rebuild () =
    let m = Obs.Metrics.create () in
    Obs.Metrics.incr m ~by:3 "x";
    Obs.Metrics.incr m ~by:4 "y";
    Obs.Metrics.gauge m "g" 2.5;
    Obs.Metrics.observe m "h" 0.1;
    Obs.Metrics.observe m "h" 10.;
    Obs.Metrics.to_json m
  in
  Alcotest.(check string) "json deterministic" (rebuild ()) (rebuild ());
  Alcotest.(check string) "merge equals rebuild" (rebuild ())
    (Obs.Metrics.to_json a)

let test_metrics_absorb_stats () =
  let s = Engine.Stats.create () in
  Engine.Stats.record_scenario s;
  Engine.Stats.record_scenario s;
  Engine.Stats.add_time s "phase:solve" 0.25;
  let m = Obs.Metrics.create () in
  Obs.Metrics.absorb_stats m s;
  Alcotest.(check int) "counter preserved" 2
    (List.assoc "engine.scenarios" (Obs.Metrics.counters m));
  Alcotest.(check (float 1e-9)) "timer becomes gauge" 0.25
    (List.assoc "engine.time.phase:solve" (Obs.Metrics.gauges m))

(* ------------------------------------------------------------------ *)
(* Ctx                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ctx_phase () =
  let ctx = Obs.Ctx.make ~tracer:(Obs.Tracer.create ()) () in
  let r = Obs.Ctx.phase ctx "load" (fun () -> 42) in
  Alcotest.(check int) "phase returns" 42 r;
  Alcotest.(check (list string)) "root span recorded" [ "load" ]
    (List.map fst (Obs.Tracer.phase_totals ctx.Obs.Ctx.tracer));
  (* the Stats timer survives even with a noop tracer *)
  let plain = Obs.Ctx.make () in
  ignore (Obs.Ctx.phase plain "solve" (fun () -> 1));
  Alcotest.(check bool) "stats timer without tracer" true
    (List.mem_assoc "phase:solve" (Engine.Stats.timers plain.Obs.Ctx.stats))

let test_ctx_deadline () =
  Alcotest.(check bool) "no deadline never expires" false
    (Obs.Ctx.expired (Obs.Ctx.make ()));
  let past = Obs.Ctx.make ~deadline:(Engine.Mono.now () -. 1.) () in
  Alcotest.(check bool) "past deadline expired" true (Obs.Ctx.expired past);
  (* an expired context still returns a valid (early-stopped) result *)
  let g, demands = Lazy.force fixture in
  let r = Local_search.optimize_ctx past ~params:ls_params g demands in
  Alcotest.(check bool) "early stop still solves" true
    (Float.is_finite r.Local_search.mlu && r.Local_search.evals >= 0)

(* ------------------------------------------------------------------ *)
(* Ctx equivalence                                                     *)
(* ------------------------------------------------------------------ *)

(* The default context, a freshly built one and a fully traced one
   must all produce the same result: observability never changes what
   a solver computes. *)

let traced_ctx () =
  Obs.Ctx.make ~tracer:(Obs.Tracer.create ~engine_detail:true ()) ()

let test_ctx_local_search () =
  let g, demands = Lazy.force fixture in
  let plain = Local_search.optimize_ctx (Obs.Ctx.default ()) ~params:ls_params g demands in
  let ctx = Local_search.optimize_ctx (Obs.Ctx.make ()) ~params:ls_params g demands in
  let traced = Local_search.optimize_ctx (traced_ctx ()) ~params:ls_params g demands in
  Alcotest.(check bool) "ctx = default" true (plain = ctx);
  Alcotest.(check bool) "tracing changes nothing" true (plain = traced)

let test_ctx_greedy_wpo () =
  let g, demands = Lazy.force fixture in
  let w = Weights.inverse_capacity g in
  let plain = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) g w demands in
  let ctx = Greedy_wpo.optimize_ctx (Obs.Ctx.make ()) g w demands in
  let traced = Greedy_wpo.optimize_ctx (traced_ctx ()) g w demands in
  Alcotest.(check bool) "ctx = default" true (plain = ctx);
  Alcotest.(check bool) "tracing changes nothing" true (plain = traced)

let test_ctx_joint () =
  let g, demands = Lazy.force fixture in
  let plain = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params g demands in
  let ctx = Joint.optimize_ctx (Obs.Ctx.make ()) ~ls_params g demands in
  let traced = Joint.optimize_ctx (traced_ctx ()) ~ls_params g demands in
  Alcotest.(check bool) "ctx = default" true (plain = ctx);
  Alcotest.(check bool) "tracing changes nothing" true (plain = traced)

let test_ctx_scenario_sweep () =
  let g, demands = Lazy.force fixture in
  let joint = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params g demands in
  let deployed =
    { Scenario.weights = joint.Joint.int_weights;
      Scenario.waypoints = joint.Joint.waypoints }
  in
  let cfg = { Scenario.default_config with Scenario.seed = 7; Scenario.jitters = 2 } in
  let specs = Scenario.generate cfg g in
  let plain =
    Scenario.sweep_ctx (Obs.Ctx.default ()) ~policies:[ Scenario.Static; Scenario.Repair ] ~deployed g
      demands specs
  in
  let ctx =
    Scenario.sweep_ctx (Obs.Ctx.make ())
      ~policies:[ Scenario.Static; Scenario.Repair ] ~deployed g demands specs
  in
  let traced =
    Scenario.sweep_ctx (traced_ctx ())
      ~policies:[ Scenario.Static; Scenario.Repair ] ~deployed g demands specs
  in
  (* compare treats nan = nan, unlike (=). *)
  Alcotest.(check bool) "ctx = default" true (compare plain ctx = 0);
  Alcotest.(check bool) "tracing changes nothing" true (compare plain traced = 0)

(* ------------------------------------------------------------------ *)
(* Trace determinism across pool sizes                                 *)
(* ------------------------------------------------------------------ *)

(* The exported trace (timestamps stripped) and the metrics must be a
   pure function of the task decomposition, not of the schedule. *)

let trace_of ~jobs run =
  let go pool =
    let tracer = Obs.Tracer.create () in
    let ctx = Obs.Ctx.make ~tracer ~pool () in
    let r = run ctx in
    ( r,
      Obs.Export.trace_lines ~times:false tracer,
      Obs.Metrics.to_json ctx.Obs.Ctx.metrics )
  in
  if jobs = 1 then go Par.Pool.sequential else Par.Pool.with_pool ~jobs go

let check_jobs_invariant name run =
  let r1, t1, m1 = trace_of ~jobs:1 run in
  let r2, t2, m2 = trace_of ~jobs:2 run in
  Alcotest.(check bool) (name ^ ": results identical") true (compare r1 r2 = 0);
  Alcotest.(check (list string)) (name ^ ": trace byte-identical") t1 t2;
  Alcotest.(check string) (name ^ ": metrics identical") m1 m2

let test_trace_jobs_local_search () =
  let g, demands = Lazy.force fixture in
  check_jobs_invariant "restart fan-out" (fun ctx ->
      Local_search.optimize_ctx ctx ~restarts:3 ~params:ls_params g demands)

let test_trace_jobs_greedy_wpo () =
  let g, demands = Lazy.force fixture in
  let w = Weights.inverse_capacity g in
  check_jobs_invariant "candidate scan" (fun ctx ->
      Greedy_wpo.optimize_ctx ctx g w demands)

let test_trace_jobs_scenario () =
  let g, demands = Lazy.force fixture in
  let joint = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params g demands in
  let deployed =
    { Scenario.weights = joint.Joint.int_weights;
      Scenario.waypoints = joint.Joint.waypoints }
  in
  let cfg = { Scenario.default_config with Scenario.seed = 7; Scenario.jitters = 2 } in
  let specs = Scenario.generate cfg g in
  check_jobs_invariant "scenario sweep" (fun ctx ->
      Scenario.sweep_ctx ctx ~chunk:3
        ~policies:[ Scenario.Static; Scenario.Repair ] ~deployed g demands
        specs)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_export_trace_lines () =
  let g, demands = Lazy.force fixture in
  let tracer = Obs.Tracer.create () in
  let ctx = Obs.Ctx.make ~tracer () in
  ignore
    (Obs.Ctx.phase ctx "solve" (fun () ->
         Local_search.optimize_ctx ctx ~params:ls_params g demands));
  match Obs.Export.trace_lines tracer with
  | [] -> Alcotest.fail "empty trace"
  | header :: spans ->
    Alcotest.(check bool) "header schema" true
      (contains ~sub:"\"schema\": \"trace/1\"" header);
    Alcotest.(check bool) "header span count" true
      (contains ~sub:(Printf.sprintf "\"spans\": %d" (List.length spans)) header);
    Alcotest.(check int) "nothing dropped" 0 (Obs.Tracer.dropped tracer);
    List.iter
      (fun l ->
        Alcotest.(check bool) "span line shape" true
          (contains ~sub:"\"name\":" l))
      spans

let test_export_run_summary () =
  let g, demands = Lazy.force fixture in
  let tracer = Obs.Tracer.create () in
  let ctx = Obs.Ctx.make ~tracer () in
  ignore
    (Obs.Ctx.phase ctx "solve" (fun () ->
         Local_search.optimize_ctx ctx ~params:ls_params g demands));
  let s = Obs.Export.run_summary ctx in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "summary has %s" sub) true
        (contains ~sub s))
    [ "\"schema\": \"run-summary/1\""; "\"phases\""; "\"solve\"";
      "\"phase_coverage\""; "\"engine.evaluations\"" ]

let () =
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "nesting" `Quick test_tracer_nesting;
          Alcotest.test_case "exception closes span" `Quick
            test_tracer_exception_closes;
          Alcotest.test_case "misnest repair" `Quick test_tracer_misnest_repair;
          Alcotest.test_case "bounded buffer" `Quick test_tracer_bounded;
          Alcotest.test_case "noop" `Quick test_tracer_noop;
          Alcotest.test_case "graft key order" `Quick test_graft_key_order;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "merge" `Quick test_metrics_merge;
          Alcotest.test_case "absorb stats" `Quick test_metrics_absorb_stats;
        ] );
      ( "ctx",
        [
          Alcotest.test_case "phase" `Quick test_ctx_phase;
          Alcotest.test_case "deadline" `Quick test_ctx_deadline;
        ] );
      ( "ctx-equivalence",
        [
          Alcotest.test_case "local search" `Quick test_ctx_local_search;
          Alcotest.test_case "greedy wpo" `Quick test_ctx_greedy_wpo;
          Alcotest.test_case "joint" `Quick test_ctx_joint;
          Alcotest.test_case "scenario sweep" `Quick test_ctx_scenario_sweep;
        ] );
      ( "trace-determinism",
        [
          Alcotest.test_case "local search restarts" `Quick
            test_trace_jobs_local_search;
          Alcotest.test_case "greedy wpo scan" `Quick
            test_trace_jobs_greedy_wpo;
          Alcotest.test_case "scenario sweep" `Quick test_trace_jobs_scenario;
        ] );
      ( "export",
        [
          Alcotest.test_case "trace lines" `Quick test_export_trace_lines;
          Alcotest.test_case "run summary" `Quick test_export_run_summary;
        ] );
    ]
