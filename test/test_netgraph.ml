(* Unit and property tests for the netgraph substrate. *)

open Netgraph

let check_float = Alcotest.(check (float 1e-9))

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3, caps 1/2/3/4 *)
  Digraph.of_edges ~n:4 [ (0, 1, 1.); (1, 3, 2.); (0, 2, 3.); (2, 3, 4.) ]

(* ------------------------------------------------------------------ *)
(* Digraph                                                             *)
(* ------------------------------------------------------------------ *)

let test_counts () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 4 (Digraph.node_count g);
  Alcotest.(check int) "edges" 4 (Digraph.edge_count g)

let test_endpoints () =
  let g = diamond () in
  Alcotest.(check int) "src e1" 1 (Digraph.src g 1);
  Alcotest.(check int) "dst e1" 3 (Digraph.dst g 1);
  check_float "cap e3" 4. (Digraph.cap g 3)

let test_adjacency () =
  let g = diamond () in
  Alcotest.(check int) "out deg 0" 2 (Digraph.out_degree g 0);
  Alcotest.(check int) "in deg 3" 2 (Digraph.in_degree g 3);
  Alcotest.(check int) "out deg 3" 0 (Digraph.out_degree g 3)

let test_find_edge () =
  let g = diamond () in
  Alcotest.(check (option int)) "0->2" (Some 2) (Digraph.find_edge g ~src:0 ~dst:2);
  Alcotest.(check (option int)) "2->0" None (Digraph.find_edge g ~src:2 ~dst:0)

let test_names () =
  let b = Digraph.Builder.create () in
  let a = Digraph.Builder.add_named_node b "ATLA" in
  let c = Digraph.Builder.add_named_node b "CHIN" in
  let a' = Digraph.Builder.add_named_node b "ATLA" in
  Alcotest.(check int) "dedup" a a';
  ignore (Digraph.Builder.add_edge b ~src:a ~dst:c ~cap:1.);
  let g = Digraph.Builder.build b in
  Alcotest.(check string) "name" "ATLA" (Digraph.node_name g 0);
  Alcotest.(check int) "by name" c (Digraph.node_of_name g "CHIN")

let test_bad_edges () =
  let b = Digraph.Builder.create () in
  let u = Digraph.Builder.add_node b () in
  let v = Digraph.Builder.add_node b () in
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.Builder.add_edge: self-loop")
    (fun () -> ignore (Digraph.Builder.add_edge b ~src:u ~dst:u ~cap:1.));
  Alcotest.check_raises "zero cap"
    (Invalid_argument "Digraph.Builder.add_edge: capacity must be positive")
    (fun () -> ignore (Digraph.Builder.add_edge b ~src:u ~dst:v ~cap:0.))

let test_add_biedge_ids () =
  let b = Digraph.Builder.create () in
  let u = Digraph.Builder.add_node b () in
  let v = Digraph.Builder.add_node b () in
  let x = Digraph.Builder.add_node b () in
  let fwd, rev = Digraph.Builder.add_biedge b u v ~cap:5. in
  let fwd2, rev2 = Digraph.Builder.add_biedge b v x ~cap:7. in
  Alcotest.(check (list int)) "sequential ids" [ 0; 1; 2; 3 ]
    [ fwd; rev; fwd2; rev2 ];
  let g = Digraph.Builder.build b in
  Alcotest.(check int) "fwd src" u (Digraph.src g fwd);
  Alcotest.(check int) "fwd dst" v (Digraph.dst g fwd);
  Alcotest.(check int) "rev src" v (Digraph.src g rev);
  Alcotest.(check int) "rev dst" u (Digraph.dst g rev);
  check_float "fwd cap" 5. (Digraph.cap g fwd);
  check_float "rev2 cap" 7. (Digraph.cap g rev2)

let test_reverse () =
  let g = diamond () in
  let r = Digraph.reverse g in
  Alcotest.(check int) "src of reversed e0" 1 (Digraph.src r 0);
  Alcotest.(check int) "dst of reversed e0" 0 (Digraph.dst r 0);
  check_float "cap preserved" (Digraph.cap g 0) (Digraph.cap r 0)

let test_with_capacities () =
  let g = diamond () in
  let g' = Digraph.with_capacities g [| 9.; 9.; 9.; 9. |] in
  check_float "new cap" 9. (Digraph.cap g' 2);
  check_float "old unchanged" 3. (Digraph.cap g 2)

let test_connectivity () =
  let g = diamond () in
  Alcotest.(check bool) "from 0" true (Digraph.is_connected_from g 0);
  Alcotest.(check bool) "from 3" false (Digraph.is_connected_from g 3)

let test_capacity_extrema () =
  let g = diamond () in
  check_float "max" 4. (Digraph.max_capacity g);
  check_float "min" 1. (Digraph.min_capacity g)

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let line_graph k =
  (* 0 -> 1 -> ... -> k, each weight/cap 1, plus shortcut 0 -> k cap 1 *)
  Digraph.of_edges ~n:(k + 1)
    ((0, k, 1.) :: List.init k (fun i -> (i, i + 1, 1.)))

let test_dijkstra_line () =
  let k = 5 in
  let g = line_graph k in
  let w = Array.make (Digraph.edge_count g) 1. in
  let d = Paths.dijkstra g ~weights:w ~source:0 in
  check_float "dist to k is 1 via shortcut" 1. d.(k);
  check_float "dist to 3" 3. d.(3)

let test_dijkstra_to () =
  let k = 5 in
  let g = line_graph k in
  let w = Array.make (Digraph.edge_count g) 1. in
  let d = Paths.dijkstra_to g ~weights:w ~target:k in
  check_float "0 to k" 1. d.(0);
  check_float "1 to k" 4. d.(1);
  check_float "k to k" 0. d.(k)

let test_dijkstra_unreachable () =
  let g = Digraph.of_edges ~n:3 [ (0, 1, 1.) ] in
  let d = Paths.dijkstra g ~weights:[| 1. |] ~source:0 in
  check_float "unreachable" infinity d.(2)

let test_dijkstra_rejects_nonpositive () =
  let g = diamond () in
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Paths: weights must be positive")
    (fun () -> ignore (Paths.dijkstra g ~weights:[| 1.; 0.; 1.; 1. |] ~source:0))

let test_shortest_path () =
  let g = diamond () in
  let w = [| 1.; 1.; 5.; 5. |] in
  match Paths.shortest_path g ~weights:w ~source:0 ~target:3 with
  | None -> Alcotest.fail "expected a path"
  | Some p ->
    Alcotest.(check (list int)) "path edges" [ 0; 1 ] p;
    check_float "cost" 2. (Paths.path_cost ~weights:w p)

let test_dijkstra_stop_at () =
  let k = 6 in
  let g = line_graph k in
  let w = Array.make (Digraph.edge_count g) 1. in
  let dist, parent = Paths.dijkstra_with_parents ~stop_at:3 g ~weights:w ~source:0 in
  check_float "settled distance final" 3. dist.(3);
  (* Walking the parents from the stop node reaches the source. *)
  let rec walk v steps =
    if v = 0 then steps
    else begin
      Alcotest.(check bool) "parent exists" true (parent.(v) >= 0);
      walk (Digraph.src g parent.(v)) (steps + 1)
    end
  in
  Alcotest.(check int) "3 hops" 3 (walk 3 0)

let test_shortest_path_none () =
  let g = Digraph.of_edges ~n:3 [ (0, 1, 1.) ] in
  Alcotest.(check bool) "no path" true
    (Paths.shortest_path g ~weights:[| 1. |] ~source:2 ~target:0 = None)

let test_topo_order () =
  let g = diamond () in
  let order = Paths.topo_order g ~keep:(fun _ -> true) in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Alcotest.(check bool) "0 before 1" true (pos.(0) < pos.(1));
  Alcotest.(check bool) "1 before 3" true (pos.(1) < pos.(3));
  Alcotest.(check bool) "2 before 3" true (pos.(2) < pos.(3))

let test_topo_cycle () =
  let g = Digraph.of_edges ~n:2 [ (0, 1, 1.); (1, 0, 1.) ] in
  Alcotest.(check bool) "cyclic" false (Paths.is_acyclic g ~keep:(fun _ -> true));
  Alcotest.(check bool) "acyclic when restricted" true
    (Paths.is_acyclic g ~keep:(fun e -> e = 0))

let test_reachable () =
  let g = Digraph.of_edges ~n:4 [ (0, 1, 1.); (1, 2, 1.) ] in
  let r = Paths.reachable g ~source:0 in
  Alcotest.(check bool) "reaches 2" true r.(2);
  Alcotest.(check bool) "misses 3" false r.(3)

let test_all_simple_paths () =
  let g = diamond () in
  let ps = Paths.all_simple_paths g ~source:0 ~target:3 in
  Alcotest.(check int) "two paths" 2 (List.length ps)

let test_all_simple_paths_limit () =
  let g = diamond () in
  let ps = Paths.all_simple_paths ~max_paths:1 g ~source:0 ~target:3 in
  Alcotest.(check int) "capped" 1 (List.length ps)

(* ------------------------------------------------------------------ *)
(* Maxflow                                                             *)
(* ------------------------------------------------------------------ *)

let test_maxflow_diamond () =
  let g = diamond () in
  let f = Maxflow.max_flow g ~source:0 ~target:3 in
  check_float "value" 4. f.Maxflow.value

let test_maxflow_single_edge () =
  let g = Digraph.of_edges ~n:2 [ (0, 1, 7.5) ] in
  let f = Maxflow.max_flow g ~source:0 ~target:1 in
  check_float "value" 7.5 f.Maxflow.value;
  check_float "edge flow" 7.5 f.Maxflow.on_edge.(0)

let test_maxflow_disconnected () =
  let g = Digraph.of_edges ~n:3 [ (0, 1, 1.) ] in
  let f = Maxflow.max_flow g ~source:0 ~target:2 in
  check_float "zero" 0. f.Maxflow.value

let test_maxflow_classic () =
  (* The classic CLRS example; max flow 23. *)
  let g =
    Digraph.of_edges ~n:6
      [ (0, 1, 16.); (0, 2, 13.); (1, 2, 10.); (2, 1, 4.); (1, 3, 12.);
        (3, 2, 9.); (2, 4, 14.); (4, 3, 7.); (3, 5, 20.); (4, 5, 4.) ]
  in
  let f = Maxflow.max_flow g ~source:0 ~target:5 in
  check_float "value" 23. f.Maxflow.value

let check_conservation g (f : Maxflow.flow) ~source ~target =
  let n = Digraph.node_count g in
  for v = 0 to n - 1 do
    if v <> source && v <> target then begin
      let inflow =
        Array.fold_left (fun acc e -> acc +. f.Maxflow.on_edge.(e)) 0. (Digraph.in_edges g v)
      and outflow =
        Array.fold_left (fun acc e -> acc +. f.Maxflow.on_edge.(e)) 0. (Digraph.out_edges g v)
      in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "conservation at %d" v) inflow outflow
    end
  done

let test_graph_random seed =
  (* Deterministic random-ish connected digraph on 8 nodes. *)
  let st = Random.State.make [| seed |] in
  let n = 8 in
  let edges = ref [] in
  for i = 0 to n - 2 do
    edges := (i, i + 1, 1. +. Random.State.float st 9.) :: !edges
  done;
  for _ = 1 to 12 do
    let u = Random.State.int st n and v = Random.State.int st n in
    if u <> v then edges := (u, v, 1. +. Random.State.float st 9.) :: !edges
  done;
  Digraph.of_edges ~n !edges

let test_flow_conservation () =
  let g = test_graph_random 17 in
  let f = Maxflow.max_flow g ~source:0 ~target:(Digraph.node_count g - 1) in
  check_conservation g f ~source:0 ~target:(Digraph.node_count g - 1)

let test_mincut_matches_maxflow () =
  let g = test_graph_random 3 in
  let f = Maxflow.max_flow g ~source:0 ~target:7 in
  let cut, side = Maxflow.min_cut g ~source:0 ~target:7 in
  Alcotest.(check (float 1e-6)) "max-flow = min-cut" f.Maxflow.value cut;
  Alcotest.(check bool) "source in side" true side.(0);
  Alcotest.(check bool) "target out" false side.(7)

let test_remove_cycles () =
  (* A flow with a gratuitous cycle 1 -> 2 -> 1 on top of a path flow. *)
  let g =
    Digraph.of_edges ~n:4 [ (0, 1, 5.); (1, 2, 5.); (2, 1, 5.); (2, 3, 5.); (1, 3, 5.) ]
  in
  let fl = { Maxflow.value = 5.; on_edge = [| 5.; 3.; 3.; 0.; 5. |] } in
  (* edge1 (1->2) carries 3 and edge2 (2->1) carries 3: a pure cycle. *)
  let fl' = Maxflow.remove_cycles g fl in
  Alcotest.(check (float 1e-9)) "value kept" 5. fl'.Maxflow.value;
  Alcotest.(check bool) "acyclic" true
    (Paths.is_acyclic g ~keep:(fun e -> fl'.Maxflow.on_edge.(e) > 1e-9));
  check_conservation g fl' ~source:0 ~target:3

let test_acyclic_maxflow_value () =
  let g = test_graph_random 11 in
  let f = Maxflow.max_flow g ~source:0 ~target:7 in
  let fa = Maxflow.acyclic_max_flow g ~source:0 ~target:7 in
  Alcotest.(check (float 1e-6)) "same value" f.Maxflow.value fa.Maxflow.value;
  Alcotest.(check bool) "acyclic" true
    (Paths.is_acyclic g ~keep:(fun e -> fa.Maxflow.on_edge.(e) > 1e-9))

let test_decompose () =
  let g = diamond () in
  let f = Maxflow.acyclic_max_flow g ~source:0 ~target:3 in
  let paths = Maxflow.decompose g ~source:0 ~target:3 f in
  let total = List.fold_left (fun acc (a, _) -> acc +. a) 0. paths in
  Alcotest.(check (float 1e-9)) "decomposition sums to flow" f.Maxflow.value total;
  List.iter
    (fun (_, p) ->
      match p with
      | [] -> Alcotest.fail "empty path"
      | first :: _ ->
        Alcotest.(check int) "starts at source" 0 (Digraph.src g first))
    paths

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let arb_graph =
  (* Random connected digraph: spine 0..n-1 plus chords, caps in [1,10]. *)
  let gen =
    QCheck.Gen.(
      int_range 3 12 >>= fun n ->
      int_range 0 (3 * n) >>= fun extra ->
      let edge = triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (float_range 1. 10.) in
      list_size (return extra) edge >>= fun chords ->
      let spine = List.init (n - 1) (fun i -> (i, i + 1, 5.)) in
      let chords = List.filter (fun (u, v, _) -> u <> v) chords in
      return (n, spine @ chords))
  in
  QCheck.make gen ~print:(fun (n, es) ->
      Printf.sprintf "n=%d m=%d" n (List.length es))

let prop_maxflow_le_cut_degree =
  QCheck.Test.make ~name:"maxflow bounded by source out-capacity" ~count:100 arb_graph
    (fun (n, es) ->
      let g = Digraph.of_edges ~n es in
      let f = Maxflow.max_flow g ~source:0 ~target:(n - 1) in
      let out_cap =
        Array.fold_left (fun acc e -> acc +. Digraph.cap g e) 0. (Digraph.out_edges g 0)
      in
      f.Maxflow.value <= out_cap +. 1e-6)

let prop_maxflow_equals_mincut =
  QCheck.Test.make ~name:"maxflow = mincut" ~count:100 arb_graph (fun (n, es) ->
      let g = Digraph.of_edges ~n es in
      let f = Maxflow.max_flow g ~source:0 ~target:(n - 1) in
      let cut, _ = Maxflow.min_cut g ~source:0 ~target:(n - 1) in
      abs_float (f.Maxflow.value -. cut) <= 1e-6 *. (1. +. cut))

let prop_dijkstra_triangle =
  QCheck.Test.make ~name:"dijkstra satisfies triangle inequality on edges" ~count:100
    arb_graph (fun (n, es) ->
      let g = Digraph.of_edges ~n es in
      let w = Array.init (Digraph.edge_count g) (fun e -> 1. +. float_of_int (e mod 3)) in
      let d = Paths.dijkstra g ~weights:w ~source:0 in
      let ok = ref true in
      for e = 0 to Digraph.edge_count g - 1 do
        let u = Digraph.src g e and v = Digraph.dst g e in
        if d.(u) < infinity && d.(v) > d.(u) +. w.(e) +. 1e-9 then ok := false
      done;
      !ok)

(* Bellman–Ford as an independent oracle for Dijkstra. *)
let bellman_ford g weights source =
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let dist = Array.make n infinity in
  dist.(source) <- 0.;
  for _ = 1 to n - 1 do
    for e = 0 to m - 1 do
      let u = Digraph.src g e and v = Digraph.dst g e in
      if dist.(u) +. weights.(e) < dist.(v) then
        dist.(v) <- dist.(u) +. weights.(e)
    done
  done;
  dist

let prop_dijkstra_matches_bellman_ford =
  QCheck.Test.make ~name:"dijkstra = bellman-ford" ~count:100 arb_graph
    (fun (n, es) ->
      let g = Digraph.of_edges ~n es in
      let st = Random.State.make [| n; List.length es |] in
      let w =
        Array.init (Digraph.edge_count g) (fun _ ->
            0.1 +. Random.State.float st 5.)
      in
      let a = Paths.dijkstra g ~weights:w ~source:0 in
      let b = bellman_ford g w 0 in
      let ok = ref true in
      for v = 0 to n - 1 do
        if
          not
            (a.(v) = b.(v)
            || abs_float (a.(v) -. b.(v)) <= 1e-9 *. (1. +. abs_float b.(v)))
        then ok := false
      done;
      !ok)

let prop_shortest_path_is_shortest =
  QCheck.Test.make ~name:"shortest_path cost equals dijkstra distance" ~count:100
    arb_graph (fun (n, es) ->
      let g = Digraph.of_edges ~n es in
      let st = Random.State.make [| n; 13 |] in
      (* Include extreme magnitudes: the GK regression used ~1e-9. *)
      let w =
        Array.init (Digraph.edge_count g) (fun _ ->
            1e-9 *. (1. +. Random.State.float st 1e6))
      in
      let d = Paths.dijkstra g ~weights:w ~source:0 in
      match Paths.shortest_path g ~weights:w ~source:0 ~target:(n - 1) with
      | None -> d.(n - 1) = infinity
      | Some p ->
        abs_float (Paths.path_cost ~weights:w p -. d.(n - 1))
        <= 1e-9 *. (1. +. d.(n - 1)))

let prop_decompose_conserves =
  QCheck.Test.make ~name:"flow decomposition sums to flow value" ~count:60 arb_graph
    (fun (n, es) ->
      let g = Digraph.of_edges ~n es in
      let f = Maxflow.acyclic_max_flow g ~source:0 ~target:(n - 1) in
      let paths = Maxflow.decompose g ~source:0 ~target:(n - 1) f in
      let total = List.fold_left (fun acc (a, _) -> acc +. a) 0. paths in
      abs_float (total -. f.Maxflow.value) <= 1e-6 *. (1. +. f.Maxflow.value))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "netgraph"
    [
      ( "digraph",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "endpoints" `Quick test_endpoints;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "find_edge" `Quick test_find_edge;
          Alcotest.test_case "named nodes" `Quick test_names;
          Alcotest.test_case "bad edges rejected" `Quick test_bad_edges;
          Alcotest.test_case "add_biedge ids" `Quick test_add_biedge_ids;
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "with_capacities" `Quick test_with_capacities;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "capacity extrema" `Quick test_capacity_extrema;
        ] );
      ( "paths",
        [
          Alcotest.test_case "dijkstra line" `Quick test_dijkstra_line;
          Alcotest.test_case "dijkstra to target" `Quick test_dijkstra_to;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "rejects nonpositive" `Quick test_dijkstra_rejects_nonpositive;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "dijkstra stop_at" `Quick test_dijkstra_stop_at;
          Alcotest.test_case "no path" `Quick test_shortest_path_none;
          Alcotest.test_case "topo order" `Quick test_topo_order;
          Alcotest.test_case "topo cycle" `Quick test_topo_cycle;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "all simple paths" `Quick test_all_simple_paths;
          Alcotest.test_case "path cap" `Quick test_all_simple_paths_limit;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "diamond" `Quick test_maxflow_diamond;
          Alcotest.test_case "single edge" `Quick test_maxflow_single_edge;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "classic CLRS" `Quick test_maxflow_classic;
          Alcotest.test_case "conservation" `Quick test_flow_conservation;
          Alcotest.test_case "mincut = maxflow" `Quick test_mincut_matches_maxflow;
          Alcotest.test_case "remove cycles" `Quick test_remove_cycles;
          Alcotest.test_case "acyclic maxflow" `Quick test_acyclic_maxflow_value;
          Alcotest.test_case "decompose" `Quick test_decompose;
        ] );
      ( "properties",
        qc
          [
            prop_maxflow_le_cut_degree;
            prop_maxflow_equals_mincut;
            prop_dijkstra_triangle;
            prop_dijkstra_matches_bellman_ford;
            prop_shortest_path_is_shortest;
            prop_decompose_conserves;
          ] );
    ]
