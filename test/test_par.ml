(* Tests for lib/par and the domain-parallel search runtime.  The
   contract under test is that scheduling never leaks into results:
   every pool operation and every pool-driven heuristic must return a
   bit-identical answer for every --jobs value, and evaluator clones
   must be perfectly isolated from their original. *)

open Netgraph
open Te

let jobs_grid = [ 1; 2; 3; 8 ]

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  let expected = Array.init 23 (fun i -> i * i) in
  List.iter
    (fun jobs ->
      let got =
        Par.Pool.with_pool ~eager_wake:true ~jobs (fun pool ->
            Par.Pool.map pool ~tasks:23 (fun ~worker:_ i -> i * i))
      in
      Alcotest.(check bool)
        (Printf.sprintf "map order at jobs=%d" jobs)
        true (got = expected);
      let empty =
        Par.Pool.with_pool ~eager_wake:true ~jobs (fun pool ->
            Par.Pool.map pool ~tasks:0 (fun ~worker:_ i -> i))
      in
      Alcotest.(check int)
        (Printf.sprintf "empty map at jobs=%d" jobs)
        0 (Array.length empty))
    jobs_grid

(* The reduction is deliberately non-commutative and non-associative
   (base-100 digit append): any deviation from a strict left fold in
   task index order changes the value. *)
let test_map_reduce_order () =
  let expected = Array.fold_left (fun b a -> (b * 100) + a) 7 (Array.init 9 Fun.id) in
  List.iter
    (fun jobs ->
      let got =
        Par.Pool.with_pool ~eager_wake:true ~jobs (fun pool ->
            Par.Pool.map_reduce pool ~tasks:9
              ~map:(fun ~worker:_ i -> i)
              ~init:7
              ~reduce:(fun b a -> (b * 100) + a))
      in
      Alcotest.(check int)
        (Printf.sprintf "map_reduce order at jobs=%d" jobs)
        expected got)
    jobs_grid

(* Every task runs even when some raise, and the exception surfaced to
   the caller is the lowest-index one — independent of scheduling. *)
let test_exception_propagation () =
  List.iter
    (fun jobs ->
      let ran = Atomic.make 0 in
      let result =
        Par.Pool.with_pool ~eager_wake:true ~jobs (fun pool ->
            match
              Par.Pool.map pool ~tasks:17 (fun ~worker:_ i ->
                  Atomic.incr ran;
                  if i mod 5 = 2 then failwith (string_of_int i);
                  i)
            with
            | _ -> None
            | exception Failure msg -> Some msg)
      in
      Alcotest.(check (option string))
        (Printf.sprintf "lowest-index exception at jobs=%d" jobs)
        (Some "2") result;
      Alcotest.(check int)
        (Printf.sprintf "all tasks ran at jobs=%d" jobs)
        17 (Atomic.get ran))
    jobs_grid

(* A map issued from inside a running task executes inline on the
   issuing domain (worker 0 view), so pool-using code can call
   pool-using code without deadlock — and [parallelism] reports 1 so
   callers skip building clones for it. *)
let test_nested_map_inline () =
  Par.Pool.with_pool ~eager_wake:true ~jobs:3 (fun pool ->
      Alcotest.(check int) "parallelism when idle" 3 (Par.Pool.parallelism pool);
      let outer =
        Par.Pool.map pool ~tasks:4 (fun ~worker:_ i ->
            let inner_par =
              (Par.Pool.map pool ~tasks:1 (fun ~worker:_ _ ->
                   Par.Pool.parallelism pool)).(0)
            in
            let inner =
              Par.Pool.map pool ~tasks:5 (fun ~worker:w j ->
                  Alcotest.(check int) "nested tasks present worker 0" 0 w;
                  (i * 10) + j)
            in
            (inner_par, Array.fold_left ( + ) 0 inner))
      in
      Array.iteri
        (fun i (inner_par, sum) ->
          Alcotest.(check int) "nested parallelism is 1" 1 inner_par;
          Alcotest.(check int) "nested sum" ((i * 50) + 10) sum)
        outer)

(* Deterministic busy-work whose result feeds the task's answer, so the
   optimizer cannot drop it and scheduling must not reorder it. *)
let burn n =
  let s = ref 0 in
  for i = 1 to n do
    s := !s + (i land 7)
  done;
  !s

(* 100x-skewed task costs: one task in each run dwarfs the rest, so at
   jobs > 1 the cheap tasks are stolen while the caller is pinned on the
   expensive one — the stress case for the deque protocol.  Results must
   stay bit-identical to the sequential run. *)
let test_skewed_costs () =
  let tasks = 40 in
  let cost i = if i mod 13 = 0 then 200_000 else 2_000 in
  let expected = Array.init tasks (fun i -> burn (cost i) + (i * i)) in
  List.iter
    (fun jobs ->
      for round = 1 to 3 do
        let got =
          Par.Pool.with_pool ~eager_wake:true ~jobs (fun pool ->
              Par.Pool.map pool ~tasks (fun ~worker:_ i ->
                  burn (cost i) + (i * i)))
        in
        Alcotest.(check bool)
          (Printf.sprintf "skewed map jobs=%d round=%d" jobs round)
          true (got = expected)
      done)
    jobs_grid

(* The caller is pinned on a single huge task 0 while the failing tasks
   live at the tail — at jobs > 1 they are stolen, and the exception
   surfaced must still be the lowest-index one. *)
let test_stolen_exception () =
  List.iter
    (fun jobs ->
      let ran = Atomic.make 0 in
      let r =
        Par.Pool.with_pool ~eager_wake:true ~jobs (fun pool ->
            match
              Par.Pool.map pool ~tasks:24 (fun ~worker:_ i ->
                  Atomic.incr ran;
                  ignore (Sys.opaque_identity (burn (if i = 0 then 400_000 else 400)));
                  if i >= 20 then failwith (string_of_int i);
                  i)
            with
            | _ -> None
            | exception Failure m -> Some m)
      in
      Alcotest.(check (option string))
        (Printf.sprintf "stolen exception lowest index jobs=%d" jobs)
        (Some "20") r;
      Alcotest.(check int)
        (Printf.sprintf "all tasks ran jobs=%d" jobs)
        24 (Atomic.get ran))
    jobs_grid

(* Maps issued from inside workers (which run inline) must not perturb
   the outer result across worker counts. *)
let test_nested_map_determinism () =
  let run jobs =
    Par.Pool.with_pool ~eager_wake:true ~jobs (fun pool ->
        Par.Pool.map pool ~tasks:8 (fun ~worker:_ i ->
            let inner =
              Par.Pool.map pool ~tasks:6 (fun ~worker:_ j ->
                  burn (100 * (j + 1)) + (i * j))
            in
            Array.fold_left (fun b a -> (b * 31) + a) i inner))
  in
  let expect = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "nested determinism jobs=%d" jobs)
        true (run jobs = expect))
    jobs_grid

(* ------------------------------------------------------------------ *)
(* Dependency graphs                                                   *)
(* ------------------------------------------------------------------ *)

(* Per-item diamond a -> (b, c) -> d, laid out stage-major so every
   dependency points at a lower task index.  The join cell is only
   correct if both branches saw the fully-written source cell —
   i.e. if the scheduler's release edges really order the stages. *)
let test_run_graph_diamond () =
  let items = 5 in
  let tasks = items * 4 in
  List.iter
    (fun jobs ->
      Par.Pool.with_pool ~eager_wake:true ~jobs (fun pool ->
          let acc = Array.make tasks 0 in
          let deps =
            Array.init tasks (fun t ->
                let i = t mod items in
                match t / items with
                | 0 -> []
                | 1 | 2 -> [ i ]
                | _ -> [ items + i; (2 * items) + i ])
          in
          Par.Pool.run_graph pool ~tasks ~deps (fun ~worker:_ t ->
              let i = t mod items in
              acc.(t) <-
                (match t / items with
                | 0 -> i + 1
                | 1 -> acc.(i) * 2
                | 2 -> acc.(i) + 10
                | _ -> acc.(items + i) + acc.((2 * items) + i)));
          for i = 0 to items - 1 do
            Alcotest.(check int)
              (Printf.sprintf "diamond join i=%d jobs=%d" i jobs)
              ((3 * (i + 1)) + 10)
              acc.((3 * items) + i)
          done))
    jobs_grid

let test_run_graph_validation () =
  Par.Pool.with_pool ~eager_wake:true ~jobs:2 (fun pool ->
      (match
         Par.Pool.run_graph pool ~tasks:3 ~deps:[| [] |] (fun ~worker:_ _ -> ())
       with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "expected Invalid_argument on deps length");
      (match
         Par.Pool.run_graph pool ~tasks:2 ~deps:[| []; [ 1 ] |]
           (fun ~worker:_ _ -> ())
       with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "expected Invalid_argument on non-earlier dep"))

let test_scheduler_metrics () =
  Par.Pool.with_pool ~eager_wake:true ~jobs:3 (fun pool ->
      let m0 = Par.Pool.metrics pool in
      ignore
        (Par.Pool.map pool ~tasks:12 (fun ~worker:_ i ->
             burn (1000 * (1 + (i mod 4)))));
      let m1 = Par.Pool.metrics pool in
      Alcotest.(check int)
        "one region recorded" (m0.Par.Pool.regions + 1) m1.Par.Pool.regions;
      Alcotest.(check int)
        "12 tasks recorded" (m0.Par.Pool.tasks + 12) m1.Par.Pool.tasks;
      Alcotest.(check bool)
        "max region width" true (m1.Par.Pool.max_region >= 12);
      Alcotest.(check bool)
        "counters non-negative" true
        (m1.Par.Pool.steals >= 0 && m1.Par.Pool.parks >= 0
        && m1.Par.Pool.park_seconds >= 0.))

let test_chunks () =
  Alcotest.(check bool)
    "10 by 4" true
    (Par.Pool.chunks ~chunk:4 10 = [| (0, 4); (4, 4); (8, 2) |]);
  Alcotest.(check bool) "empty" true (Par.Pool.chunks ~chunk:4 0 = [||]);
  List.iter
    (fun n ->
      let cs = Par.Pool.chunks ~chunk:3 n in
      let covered = Array.fold_left (fun acc (_, len) -> acc + len) 0 cs in
      Alcotest.(check int) (Printf.sprintf "coverage n=%d" n) n covered;
      Array.iteri
        (fun i (start, len) ->
          Alcotest.(check int) "contiguous" (i * 3) start;
          Alcotest.(check bool) "len bounds" true (len >= 1 && len <= 3))
        cs)
    [ 1; 2; 3; 7; 12 ]

(* ------------------------------------------------------------------ *)
(* Evaluator clones                                                    *)
(* ------------------------------------------------------------------ *)

let instance seed =
  let nodes = 10 + ((seed mod 3) * 4) in
  let links = nodes + 6 in
  let g =
    Topology.Gen.synthetic ~seed ~name:(Printf.sprintf "par%d" seed) ~nodes
      ~links ()
  in
  let st = Random.State.make [| 0x9a7; seed |] in
  let m = Digraph.edge_count g in
  let w = Array.init m (fun _ -> float_of_int (1 + Random.State.int st 10)) in
  let demands =
    Array.init 8 (fun _ ->
        let s = Random.State.int st nodes in
        let t = (s + 1 + Random.State.int st (nodes - 1)) mod nodes in
        (s, t, float_of_int (1 + Random.State.int st 5)))
  in
  (g, w, demands, st)

(* Drives [ev] through a deterministic committed/probed move sequence;
   the observable (mlu, phi) after every move is returned so two
   evaluators can be compared bit for bit. *)
let drive ev st m steps =
  let trace = ref [] in
  for _ = 1 to steps do
    let e = Random.State.int st m in
    let wv = float_of_int (1 + Random.State.int st 14) in
    Engine.Evaluator.set_weight ev ~edge:e wv;
    let r = Engine.Evaluator.evaluate ev in
    trace := r :: !trace;
    if Random.State.bool st then Engine.Evaluator.undo ev
    else Engine.Evaluator.commit ev
  done;
  !trace

let test_copy_isolation () =
  for seed = 1 to 4 do
    let g, w, demands, _ = instance seed in
    let m = Digraph.edge_count g in
    (* Two identical evaluators: [ev] will be cloned mid-search, the
       control never is. *)
    let make () =
      let e = Engine.Evaluator.create g w in
      Engine.Evaluator.set_commodities e demands;
      ignore (Engine.Evaluator.evaluate e);
      e
    in
    let ev = make () and control = make () in
    (* Warm both with the same prefix. *)
    let st_a = Random.State.make [| 0x11; seed |] in
    let st_b = Random.State.copy st_a in
    ignore (drive ev st_a m 15);
    ignore (drive control st_b m 15);
    (* Clone mid-search — with an uncommitted probe pending, which the
       clone must capture as committed state. *)
    Engine.Evaluator.set_weight ev ~edge:0 13.;
    let clone = Engine.Evaluator.copy ev in
    Alcotest.(check bool)
      "clone sees the probed weight" true
      ((Engine.Evaluator.weights clone).(0) = 13.);
    Engine.Evaluator.undo ev;
    (* Perturb the clone heavily; the original must not notice. *)
    let st_c = Random.State.make [| 0x22; seed |] in
    ignore (drive clone st_c m 40);
    (* ... and the original must stay in lockstep with the never-cloned
       control for the rest of the walk, bit for bit. *)
    let ta = drive ev st_a m 20 and tb = drive control st_b m 20 in
    Alcotest.(check bool)
      (Printf.sprintf "original unaffected by clone (seed %d)" seed)
      true (ta = tb);
    Alcotest.(check bool)
      "final weights identical" true
      (Engine.Evaluator.weights ev = Engine.Evaluator.weights control)
  done

(* ------------------------------------------------------------------ *)
(* Heuristic bit-identity across pool sizes                            *)
(* ------------------------------------------------------------------ *)

let te_instance () =
  let g =
    Topology.Gen.synthetic ~seed:5 ~name:"par-te" ~nodes:14 ~links:24 ()
  in
  let st = Random.State.make [| 0x3c1 |] in
  let n = Digraph.node_count g in
  let demands =
    Array.init 10 (fun _ ->
        let s = Random.State.int st n in
        let t = (s + 1 + Random.State.int st (n - 1)) mod n in
        Network.demand s t (float_of_int (1 + Random.State.int st 5)))
  in
  (g, demands)

let at_jobs f =
  List.map
    (fun jobs -> Par.Pool.with_pool ~eager_wake:true ~jobs (fun pool -> f pool))
    [ 1; 2; 4; 8 ]

let check_all_equal msg = function
  | [] -> ()
  | ref :: rest ->
    List.iteri
      (fun i r ->
        Alcotest.(check bool)
          (Printf.sprintf "%s (run %d = jobs 1)" msg (i + 1))
          true (r = ref))
      rest

let test_lwo_bit_identical () =
  let g, demands = te_instance () in
  let params = { Local_search.default_params with max_evals = 250; seed = 9 } in
  check_all_equal "HeurOSPF"
    (at_jobs (fun pool ->
         let r = Local_search.optimize_ctx (Obs.Ctx.make ~pool ()) ~params g demands in
         (r.Local_search.weights, r.Local_search.mlu, r.Local_search.phi,
          r.Local_search.evals)));
  check_all_equal "HeurOSPF restarts=3"
    (at_jobs (fun pool ->
         let r = Local_search.optimize_ctx (Obs.Ctx.make ~pool ()) ~restarts:3 ~params g demands in
         (r.Local_search.weights, r.Local_search.mlu, r.Local_search.evals)))

let test_wpo_bit_identical () =
  let g, demands = te_instance () in
  let w = Weights.inverse_capacity g in
  check_all_equal "GreedyWPO"
    (at_jobs (fun pool ->
         let r = Greedy_wpo.optimize_ctx (Obs.Ctx.make ~pool ()) g w demands in
         (r.Greedy_wpo.waypoints, r.Greedy_wpo.mlu)));
  check_all_equal "GreedyWPO multi"
    (at_jobs (fun pool ->
         let r = Greedy_wpo.optimize_multi_ctx (Obs.Ctx.make ~pool ()) ~rounds:2 g w demands in
         (r.Greedy_wpo.setting, r.Greedy_wpo.mlu)))

let test_joint_bit_identical () =
  let g, demands = te_instance () in
  let ls_params = { Local_search.default_params with max_evals = 150; seed = 2 } in
  check_all_equal "JOINT-Heur"
    (at_jobs (fun pool ->
         let r = Joint.optimize_ctx (Obs.Ctx.make ~pool ()) ~restarts:2 ~ls_params g demands in
         (r.Joint.int_weights, r.Joint.waypoints, r.Joint.mlu,
          r.Joint.stage_mlu)))

(* Multi-restart must also beat-or-match the single walk (it keeps the
   best of a superset of walks containing the historical one). *)
let test_restarts_no_worse () =
  let g, demands = te_instance () in
  let params = { Local_search.default_params with max_evals = 200; seed = 4 } in
  let one = Local_search.optimize_ctx (Obs.Ctx.default ()) ~params g demands in
  let three = Local_search.optimize_ctx (Obs.Ctx.default ()) ~restarts:3 ~params g demands in
  Alcotest.(check bool)
    "restarts=3 <= restarts=1" true
    (three.Local_search.mlu <= one.Local_search.mlu)

(* ------------------------------------------------------------------ *)
(* Exact enumeration metadata                                          *)
(* ------------------------------------------------------------------ *)

let test_exact_truncation_meta () =
  let inst = Instances.Gap_instances.instance1 ~m:3 in
  let net = inst.Instances.Gap_instances.network in
  let g = net.Network.graph in
  (* Full enumeration: 2^8 = 256 settings. *)
  let (_, full_best), meta =
    Exact.lwo ~weight_domain:[ 1; 3 ] g net.Network.demands
  in
  Alcotest.(check bool) "space 256" true (meta.Exact.space = 256.);
  Alcotest.(check int) "visited 256" 256 meta.Exact.visited;
  Alcotest.(check bool) "not truncated" false meta.Exact.truncated;
  (* Capped enumeration: a prefix only, flagged as such. *)
  let (_, trunc_best), meta' =
    Exact.lwo ~weight_domain:[ 1; 3 ] ~max_settings:10 ~allow_truncate:true g
      net.Network.demands
  in
  Alcotest.(check int) "visited = cap" 10 meta'.Exact.visited;
  Alcotest.(check bool) "truncated" true meta'.Exact.truncated;
  Alcotest.(check bool)
    "truncated optimum is only an upper bound" true
    (trunc_best >= full_best -. 1e-12);
  (* Without the opt-in the cap still raises, as it always did. *)
  (match
     Exact.lwo ~weight_domain:[ 1; 3 ] ~max_settings:10 g net.Network.demands
   with
  | exception Exact.Too_large _ -> ()
  | _ -> Alcotest.fail "expected Too_large")

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves task order" `Quick test_map_order;
          Alcotest.test_case "map_reduce folds in order" `Quick
            test_map_reduce_order;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested maps run inline" `Quick
            test_nested_map_inline;
          Alcotest.test_case "chunks cover the range" `Quick test_chunks;
          Alcotest.test_case "skewed costs stay bit-identical" `Quick
            test_skewed_costs;
          Alcotest.test_case "stolen-task exception propagation" `Quick
            test_stolen_exception;
          Alcotest.test_case "nested maps deterministic" `Quick
            test_nested_map_determinism;
          Alcotest.test_case "scheduler metrics" `Quick
            test_scheduler_metrics;
        ] );
      ( "graph",
        [
          Alcotest.test_case "diamond dependencies" `Quick
            test_run_graph_diamond;
          Alcotest.test_case "dependency validation" `Quick
            test_run_graph_validation;
        ] );
      ( "evaluator clones",
        [ Alcotest.test_case "copy isolation" `Quick test_copy_isolation ] );
      ( "determinism",
        [
          Alcotest.test_case "lwo bit-identical across jobs" `Quick
            test_lwo_bit_identical;
          Alcotest.test_case "wpo bit-identical across jobs" `Quick
            test_wpo_bit_identical;
          Alcotest.test_case "joint bit-identical across jobs" `Quick
            test_joint_bit_identical;
          Alcotest.test_case "restarts never worse" `Quick
            test_restarts_no_worse;
        ] );
      ( "exact",
        [
          Alcotest.test_case "truncation metadata" `Quick
            test_exact_truncation_meta;
        ] );
    ]
