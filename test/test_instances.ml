(* Verifies the paper's §3 lemmas numerically on the constructed
   TE instances. *)

open Te
open Instances

let checkf6 = Alcotest.(check (float 1e-6))

let joint_mlu (inst : Gap_instances.t) =
  Ecmp.mlu_of
    ~waypoints:inst.Gap_instances.joint_waypoints
    inst.Gap_instances.network.Network.graph
    inst.Gap_instances.joint_weights
    inst.Gap_instances.network.Network.demands

(* Lemma 3.5: the constructed joint setting achieves MLU 1 on
   TE-Instance 1, for several sizes. *)
let test_instance1_joint () =
  List.iter
    (fun m ->
      let inst = Gap_instances.instance1 ~m in
      checkf6 (Printf.sprintf "joint = 1 at m=%d" m) 1. (joint_mlu inst))
    [ 2; 3; 5; 8; 12 ]

(* Lemma 3.6: the optimal LWO weight setting yields MLU m/2. *)
let test_instance1_lwo () =
  List.iter
    (fun m ->
      let inst = Gap_instances.instance1 ~m in
      let w =
        match inst.Gap_instances.lwo_weights with
        | Some w -> w
        | None -> Alcotest.fail "instance1 carries LWO weights"
      in
      let mlu =
        Ecmp.mlu_of inst.Gap_instances.network.Network.graph w
          inst.Gap_instances.network.Network.demands
      in
      checkf6 (Printf.sprintf "LWO = m/2 at m=%d" m) (float_of_int m /. 2.) mlu)
    [ 2; 4; 6; 10 ]

(* Lemma 3.6, tightness: no weight setting on a small instance 1 beats
   m/2 (checked by brute force). *)
let test_instance1_lwo_optimal () =
  let inst = Gap_instances.instance1 ~m:3 in
  let net = inst.Gap_instances.network in
  let (_, best), _ =
    Exact.lwo ~weight_domain:[ 1; 2; 3 ] net.Network.graph net.Network.demands
  in
  checkf6 "brute-force LWO = 1.5" 1.5 best

(* Lemma 3.7, uniform weights: WPO with one waypoint cannot get below
   (n-1)/3 on instance 1.  Checked by brute force at m = 4. *)
let test_instance1_wpo_uniform () =
  let m = 4 in
  let inst = Gap_instances.instance1 ~m in
  let net = inst.Gap_instances.network in
  let g = net.Network.graph in
  let _, wpo = Exact.wpo g (Weights.unit g) net.Network.demands in
  Alcotest.(check bool)
    (Printf.sprintf "WPO(unit) = %g >= (n-1)/3 = %g" wpo (float_of_int m /. 3.))
    true
    (wpo >= (float_of_int m /. 3.) -. 1e-9)

(* Lemma 3.7, inverse-capacity weights: on the transformed instance I'_1
   the exits (s,t)/(v3,t)... bottleneck single-waypoint WPO at >= m/2,
   while the joint setting achieves MLU 2. *)
let test_instance1_wpo_invcap () =
  let m = 3 in
  let inst = Gap_instances.instance1_invcap ~m in
  let net = inst.Gap_instances.network in
  let g = net.Network.graph in
  checkf6 "joint setting achieves 2" 2.
    (Ecmp.mlu_of ~waypoints:inst.Gap_instances.joint_waypoints g
       inst.Gap_instances.joint_weights net.Network.demands);
  let _, wpo = Exact.wpo g (Weights.inverse_capacity g) net.Network.demands in
  Alcotest.(check bool)
    (Printf.sprintf "WPO(capacity^-1) = %g >= m/2" wpo)
    true
    (wpo >= (float_of_int m /. 2.) -. 1e-9)

(* Theorem 3.4 end-to-end: on instance 1 the TE gap
   min(R_LWO, R_WPO) >= (n-1)/3 with W = 1. *)
let test_theorem_3_4 () =
  let m = 4 in
  let inst = Gap_instances.instance1 ~m in
  let net = inst.Gap_instances.network in
  let g = net.Network.graph in
  let joint = joint_mlu inst in
  let (_, lwo), _ = Exact.lwo ~weight_domain:[ 1; 2; 3 ] g net.Network.demands in
  let _, wpo = Exact.wpo g (Weights.unit g) net.Network.demands in
  let r_lwo = lwo /. joint and r_wpo = wpo /. joint in
  Alcotest.(check bool)
    (Printf.sprintf "gap %g >= (n-1)/3" (min r_lwo r_wpo))
    true
    (min r_lwo r_wpo >= (float_of_int m /. 3.) -. 1e-9)

(* Lemma 3.10: max even-split flow on instance 2 is 1 under uniform
   weights (and under any prefix-selecting weights). *)
let test_instance2_max_es_flow () =
  List.iter
    (fun m ->
      let inst = Gap_instances.instance2 ~m in
      let g = inst.Gap_instances.network.Network.graph in
      let v =
        Ecmp.max_es_flow_value g (Weights.unit g) ~src:inst.Gap_instances.source
          ~dst:inst.Gap_instances.target
      in
      checkf6 (Printf.sprintf "ES = 1 at m=%d" m) 1. v)
    [ 1; 2; 5; 9 ]

(* Instance 2: the joint setting routes each harmonic demand on its own
   matching-capacity path: MLU = 1. *)
let test_instance2_joint () =
  let inst = Gap_instances.instance2 ~m:6 in
  checkf6 "joint = 1" 1. (joint_mlu inst)

(* Lemma 3.11: instance 3 with two waypoints per demand reaches MLU 1. *)
let test_instance3_joint () =
  List.iter
    (fun m ->
      let inst = Gap_instances.instance3 ~m in
      checkf6 (Printf.sprintf "joint = 1 at m=%d" m) 1. (joint_mlu inst);
      Alcotest.(check int) "two waypoints" 2
        (Segments.max_waypoints inst.Gap_instances.joint_waypoints))
    [ 2; 3; 5 ]

(* Lemma 3.12: on instance 3 the max ES-flow is 2, so any weight setting
   yields MLU >= D/2.  We check the LWO-APX setting achieves about D/2
   and that unit weights cannot beat it. *)
let test_instance3_lwo_gap () =
  let m = 4 in
  let inst = Gap_instances.instance3 ~m in
  let net = inst.Gap_instances.network in
  let g = net.Network.graph in
  let d = Network.total_demand net in
  let predicted = d /. 2. in
  let r = Lwo_apx.solve g ~source:inst.Gap_instances.source ~target:inst.Gap_instances.target in
  Alcotest.(check bool)
    (Printf.sprintf "LWO-APX ES-flow %g <= 2" r.Lwo_apx.es_flow_value)
    true
    (r.Lwo_apx.es_flow_value <= 2. +. 1e-6);
  let mlu_unit = Ecmp.mlu_of g (Weights.unit g) net.Network.demands in
  Alcotest.(check bool)
    (Printf.sprintf "unit weights MLU %g >= D/2 = %g" mlu_unit predicted)
    true
    (mlu_unit >= predicted -. 1e-6)

(* Lemma 3.13: instance 4 joint setting reaches MLU 1. *)
let test_instance4_joint () =
  List.iter
    (fun m ->
      let inst = Gap_instances.instance4 ~m in
      checkf6 (Printf.sprintf "joint = 1 at m=%d" m) 1. (joint_mlu inst))
    [ 2; 3; 5 ]

(* Lemma 3.14 flavour: under standard weight settings, single-waypoint
   WPO on instance 4 stays far from 1. *)
let test_instance4_wpo_gap () =
  let m = 3 in
  let inst = Gap_instances.instance4 ~m in
  let net = inst.Gap_instances.network in
  let g = net.Network.graph in
  (* Exact WPO is too big here (m^2 demands); the greedy upper-bounds it
     from above, and even the exact one cannot reach 1 — we check the
     greedy stays >= 1.5 under unit weights. *)
  let r = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) g (Weights.unit g) net.Network.demands in
  Alcotest.(check bool)
    (Printf.sprintf "WPO(unit) %g stays away from 1" r.Greedy_wpo.mlu)
    true
    (r.Greedy_wpo.mlu >= 1.5)

(* Theorem 3.15 construction: instance 5 joint setting reaches MLU 1
   with two waypoints per half. *)
let test_instance5_joint () =
  List.iter
    (fun m ->
      let inst = Gap_instances.instance5 ~m in
      checkf6 (Printf.sprintf "joint = 1 at m=%d" m) 1. (joint_mlu inst);
      Alcotest.(check int) "four waypoints total" 4
        (Segments.max_waypoints inst.Gap_instances.joint_waypoints))
    [ 2; 3; 4 ]

(* The gaps grow linearly: R_LWO(instance1) = m/2 for every m. *)
let test_gap_growth () =
  let ratios =
    List.map
      (fun m ->
        let inst = Gap_instances.instance1 ~m in
        let w = Option.get inst.Gap_instances.lwo_weights in
        let lwo =
          Ecmp.mlu_of inst.Gap_instances.network.Network.graph w
            inst.Gap_instances.network.Network.demands
        in
        lwo /. joint_mlu inst)
      [ 4; 8; 16 ]
  in
  match ratios with
  | [ a; b; c ] ->
    checkf6 "doubling m doubles the gap (1)" (2. *. a) b;
    checkf6 "doubling m doubles the gap (2)" (2. *. b) c
  | _ -> assert false

(* OPT on the instances: maximum flow matches the claimed optimum. *)
let test_opt_values () =
  let inst = Gap_instances.instance1 ~m:6 in
  let net = inst.Gap_instances.network in
  let comms =
    Array.map
      (fun (d : Network.demand) ->
        { Mcf.src = d.Network.src; dst = d.Network.dst; demand = d.Network.size })
      net.Network.demands
  in
  checkf6 "OPT(instance1) = 1" 1.
    (Mcf.opt_mlu net.Network.graph comms)

(* Harmonic helper sanity. *)
let test_harmonic () =
  checkf6 "H_1" 1. (Gap_instances.harmonic 1);
  checkf6 "H_4" (25. /. 12.) (Gap_instances.harmonic 4)

(* Structural checks. *)
let test_sizes () =
  let i1 = Gap_instances.instance1 ~m:5 in
  Alcotest.(check int) "instance1 nodes" 6
    (Netgraph.Digraph.node_count i1.Gap_instances.network.Network.graph);
  let i3 = Gap_instances.instance3 ~m:4 in
  Alcotest.(check int) "instance3 nodes" 8
    (Netgraph.Digraph.node_count i3.Gap_instances.network.Network.graph);
  Alcotest.(check int) "instance3 demands" 16
    (Array.length i3.Gap_instances.network.Network.demands);
  let i5 = Gap_instances.instance5 ~m:3 in
  Alcotest.(check int) "instance5 nodes" 12
    (Netgraph.Digraph.node_count i5.Gap_instances.network.Network.graph)

let test_guards () =
  Alcotest.check_raises "instance1 m>=2" (Invalid_argument "instance1: m >= 2 required")
    (fun () -> ignore (Gap_instances.instance1 ~m:1));
  Alcotest.check_raises "instance3 m>=2" (Invalid_argument "instance3: m >= 2 required")
    (fun () -> ignore (Gap_instances.instance3 ~m:1))

let () =
  Alcotest.run "instances"
    [
      ( "instance1",
        [
          Alcotest.test_case "joint = 1 (Lemma 3.5)" `Quick test_instance1_joint;
          Alcotest.test_case "LWO = m/2 (Lemma 3.6)" `Quick test_instance1_lwo;
          Alcotest.test_case "LWO optimality" `Quick test_instance1_lwo_optimal;
          Alcotest.test_case "WPO uniform (Lemma 3.7)" `Quick test_instance1_wpo_uniform;
          Alcotest.test_case "WPO inverse-capacity" `Quick test_instance1_wpo_invcap;
          Alcotest.test_case "Theorem 3.4 gap" `Quick test_theorem_3_4;
        ] );
      ( "instance2",
        [
          Alcotest.test_case "max ES-flow = 1 (Lemma 3.10)" `Quick test_instance2_max_es_flow;
          Alcotest.test_case "joint = 1" `Quick test_instance2_joint;
        ] );
      ( "instances3-5",
        [
          Alcotest.test_case "instance3 joint (Lemma 3.11)" `Quick test_instance3_joint;
          Alcotest.test_case "instance3 LWO gap (Lemma 3.12)" `Quick test_instance3_lwo_gap;
          Alcotest.test_case "instance4 joint (Lemma 3.13)" `Quick test_instance4_joint;
          Alcotest.test_case "instance4 WPO gap (Lemma 3.14)" `Quick test_instance4_wpo_gap;
          Alcotest.test_case "instance5 joint (Theorem 3.15)" `Quick test_instance5_joint;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "gap growth linear" `Quick test_gap_growth;
          Alcotest.test_case "OPT values" `Quick test_opt_values;
          Alcotest.test_case "harmonic" `Quick test_harmonic;
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "guards" `Quick test_guards;
        ] );
    ]
