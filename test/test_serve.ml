(* Tests for lib/serve: the JSON substrate is total and deterministic,
   the event grammar rejects everything malformed without killing the
   daemon, and the daemon itself honors its three service-level
   contracts — byte-identical response streams across pool sizes, the
   deadline floor (degrade to the incumbent, never block), and the
   per-update churn budget. *)

open Netgraph
open Te

(* ------------------------------------------------------------------ *)
(* Sjson                                                               *)
(* ------------------------------------------------------------------ *)

let parse_ok s =
  match Serve.Sjson.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_sjson_roundtrip () =
  let cases =
    [
      "null"; "true"; "false"; "0"; "-1"; "3.5"; "1e3"; "\"\"";
      "\"a b\\n\\\"c\\\"\\\\\""; "[]"; "[1, [2, \"x\"], {}]";
      "{\"a\": 1, \"b\": [true, null]}";
    ]
  in
  List.iter
    (fun s ->
      let v = parse_ok s in
      let v' = parse_ok (Serve.Sjson.render v) in
      Alcotest.(check bool) (Printf.sprintf "roundtrip %S" s) true (v = v'))
    cases;
  (* Unicode escape (BMP) decodes to UTF-8. *)
  Alcotest.(check bool) "\\u00e9 decodes" true
    (parse_ok "\"\\u00e9\"" = Serve.Sjson.Str "\xc3\xa9")

let test_sjson_render_deterministic () =
  (* Field order is construction order; floats render canonically. *)
  let v =
    Serve.Sjson.Obj
      [
        ("b", Serve.Sjson.Num 2.); ("a", Serve.Sjson.Num 0.1);
        ("n", Serve.Sjson.Num nan); ("i", Serve.Sjson.Num infinity);
      ]
  in
  Alcotest.(check string) "render"
    "{\"b\":2,\"a\":0.10000000000000001,\"n\":null,\"i\":1e999}"
    (Serve.Sjson.render v)

let test_sjson_errors () =
  List.iter
    (fun s ->
      match Serve.Sjson.parse s with
      | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error for %S mentions offset" s)
          true
          (String.length e > 0))
    [
      ""; "{"; "}"; "[1,]"; "{\"a\":}"; "{\"a\" 1}"; "\"unterminated";
      "{} trailing"; "nan"; "+1"; "01"; "1e999"; "tru"; "\"\\q\"";
      "\"\\u12\""; "{\"a\": 1,}"; "[1 2]";
    ]

(* ------------------------------------------------------------------ *)
(* Event grammar                                                       *)
(* ------------------------------------------------------------------ *)

let abilene = lazy (Topology.Datasets.abilene ())

let ev_ok line =
  let g = Lazy.force abilene in
  match Serve.Event.parse g line with
  | Ok e -> e
  | Error msg -> Alcotest.failf "event %S rejected: %s" line msg

let ev_err line =
  let g = Lazy.force abilene in
  match Serve.Event.parse g line with
  | Ok _ -> Alcotest.failf "event %S unexpectedly accepted" line
  | Error msg -> msg

let test_event_parse () =
  (match ev_ok "{\"ev\":\"delta\",\"changes\":[{\"src\":0,\"dst\":3,\"size\":2.5}]}" with
  | Serve.Event.Delta [ { Serve.Event.src = 0; dst = 3; size } ] ->
    Alcotest.(check (float 0.)) "size" 2.5 size
  | _ -> Alcotest.fail "delta shape");
  (* Node names resolve against the graph. *)
  let g = Lazy.force abilene in
  let n0 = Digraph.node_name g 0 and n3 = Digraph.node_name g 3 in
  (match
     ev_ok
       (Printf.sprintf
          "{\"ev\":\"delta\",\"changes\":[{\"src\":%s,\"dst\":%s,\"size\":1}]}"
          (Serve.Sjson.escape n0) (Serve.Sjson.escape n3))
   with
  | Serve.Event.Delta [ { Serve.Event.src = 0; dst = 3; _ } ] -> ()
  | _ -> Alcotest.fail "named delta shape");
  (match ev_ok "{\"ev\":\"link-down\",\"edges\":[2,0,2]}" with
  | Serve.Event.Link_down [ 0; 2 ] -> ()
  | _ -> Alcotest.fail "edges dedup + sort");
  (* Addressing an edge by endpoints. *)
  let u = Digraph.src g 1 and v = Digraph.dst g 1 in
  (match
     ev_ok
       (Printf.sprintf "{\"ev\":\"link-up\",\"src\":%d,\"dst\":%d}" u v)
   with
  | Serve.Event.Link_up [ e ] -> Alcotest.(check int) "endpoint edge" 1 e
  | _ -> Alcotest.fail "endpoint link-up shape");
  (match (ev_ok "{\"ev\":\"report\"}", ev_ok "{\"ev\":\"resolve\"}",
          ev_ok "{\"ev\":\"quit\"}")
   with
  | Serve.Event.Report, Serve.Event.Resolve, Serve.Event.Quit -> ()
  | _ -> Alcotest.fail "nullary events")

let test_event_rejects () =
  List.iter
    (fun line -> ignore (ev_err line))
    [
      "not json"; "[]"; "{}"; "{\"ev\":\"warp\"}"; "{\"ev\":42}";
      "{\"ev\":\"delta\"}"; "{\"ev\":\"delta\",\"changes\":[]}";
      "{\"ev\":\"delta\",\"changes\":[{\"src\":0,\"dst\":0,\"size\":1}]}";
      "{\"ev\":\"delta\",\"changes\":[{\"src\":0,\"dst\":99,\"size\":1}]}";
      "{\"ev\":\"delta\",\"changes\":[{\"src\":\"Nowhere\",\"dst\":1,\"size\":1}]}";
      "{\"ev\":\"delta\",\"changes\":[{\"src\":0,\"dst\":1,\"size\":-1}]}";
      "{\"ev\":\"delta\",\"changes\":[{\"src\":0,\"dst\":1}]}";
      "{\"ev\":\"set-matrix\"}"; "{\"ev\":\"link-down\"}";
      "{\"ev\":\"link-down\",\"edge\":-1}";
      "{\"ev\":\"link-down\",\"edge\":9999}";
      "{\"ev\":\"link-down\",\"edges\":[]}";
      "{\"ev\":\"link-up\",\"src\":0,\"dst\":0}";
    ]

(* ------------------------------------------------------------------ *)
(* Daemon                                                              *)
(* ------------------------------------------------------------------ *)

(* A cheap deterministic fixture: inverse-capacity integer weights and
   direct routing, so daemon tests do not pay for a Joint deploy. *)
let fixture =
  lazy
    (let g = Lazy.force abilene in
     let demands =
       Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:3 ~flows_per_pair:2 g
     in
     let weights = Weights.round_to_range ~wmax:16 (Weights.inverse_capacity g) in
     (g, demands, weights))

let make_daemon ?(cfg_f = fun c -> c) ?(pool = Par.Pool.sequential) () =
  let g, demands, weights = Lazy.force fixture in
  let ctx = Obs.Ctx.make ~stats:(Engine.Stats.create ()) ~pool () in
  let cfg =
    cfg_f
      {
        Serve.Daemon.default_config with
        deadline_ms = -1.;
        reopt_evals = 60;
        resolve_evals = 200;
        timings = false;
        seed = 11;
      }
  in
  Serve.Daemon.create ctx cfg ~deployed_weights:weights
    ~deployed_waypoints:(Segments.none demands) g demands

let field name resp =
  match Serve.Sjson.member name (parse_ok resp) with
  | Some v -> v
  | None -> Alcotest.failf "response %s lacks %S" resp name

let str_field name resp =
  match Serve.Sjson.to_string (field name resp) with
  | Some s -> s
  | None -> Alcotest.failf "field %S not a string in %s" name resp

let int_field name resp =
  match Serve.Sjson.to_int (field name resp) with
  | Some i -> i
  | None -> Alcotest.failf "field %S not an int in %s" name resp

let float_field name resp =
  match Serve.Sjson.to_float (field name resp) with
  | Some f -> f
  | None -> Alcotest.failf "field %S not a number in %s" name resp

let must_respond d line =
  match Serve.Daemon.handle_line d line with
  | Some r -> r
  | None -> Alcotest.failf "no response for %S" line

let test_daemon_robust_to_garbage () =
  let d = make_daemon () in
  let before = (Serve.Daemon.summary d).Serve.Daemon.updates in
  List.iteri
    (fun i line ->
      let r = must_respond d line in
      Alcotest.(check string)
        (Printf.sprintf "garbage %d -> error status" i)
        "error" (str_field "status" r);
      Alcotest.(check int) "seq echoes" i (int_field "seq" r);
      Alcotest.(check string) "schema" "serve/1" (str_field "schema" r))
    [
      "not json at all"; "{\"ev\":\"warp\"}"; "[1,2,3]";
      "{\"ev\":\"delta\",\"changes\":[{\"src\":0,\"dst\":0,\"size\":1}]}";
      "{\"ev\":\"link-up\",\"edge\":0}" (* edge is not down *);
      "{\"ev\":\"delta\",\"changes\":[{\"src\":0,\"dst\":1,\"size\":1e999}]}";
    ];
  let s = Serve.Daemon.summary d in
  Alcotest.(check int) "all lines counted" 6 s.Serve.Daemon.events;
  Alcotest.(check int) "all errors counted" 6 s.Serve.Daemon.errors;
  Alcotest.(check int) "no state change" before s.Serve.Daemon.updates;
  (* Blank lines produce no response and consume no sequence number. *)
  Alcotest.(check bool) "blank -> None" true
    (Serve.Daemon.handle_line d "   " = None);
  (* The daemon still serves after all that. *)
  let r = must_respond d "{\"ev\":\"report\"}" in
  Alcotest.(check string) "still alive" "ok" (str_field "status" r)

let replay_lines ?(steps = 12) () =
  let _, demands, _ = Lazy.force fixture in
  let replay =
    {
      Scenario.default_replay with
      Scenario.replay_seed = 4;
      steps;
      report_every = 5;
    }
  in
  Scenario.replay_events replay demands

let drive d lines =
  List.filter_map (fun l -> Serve.Daemon.handle_line d l) lines

let test_daemon_deterministic_across_jobs () =
  let lines = replay_lines () in
  let seq = String.concat "\n" (drive (make_daemon ()) lines) in
  let par =
    Par.Pool.with_pool ~jobs:3 (fun pool ->
        String.concat "\n" (drive (make_daemon ~pool ()) lines))
  in
  let seq2 = String.concat "\n" (drive (make_daemon ()) lines) in
  Alcotest.(check string) "jobs=1 = jobs=3" seq par;
  Alcotest.(check string) "rerun identical" seq seq2

let test_daemon_deadline_floor () =
  (* deadline 0: every update is already over budget when it starts, so
     the daemon degrades to the incumbent — zero churn, mlu unchanged
     by the optimizer (only by the demands themselves). *)
  let d = make_daemon ~cfg_f:(fun c -> { c with Serve.Daemon.deadline_ms = 0. }) () in
  let lines = replay_lines () in
  let updates = ref 0 in
  List.iter
    (fun line ->
      match Serve.Daemon.handle_line d line with
      | None -> ()
      | Some r when str_field "event" r = "delta" ->
        incr updates;
        Alcotest.(check bool) "degraded" true
          (field "degraded" r = Serve.Sjson.Bool true);
        Alcotest.(check int) "no weight churn" 0 (int_field "weight_churn" r);
        Alcotest.(check int) "no waypoint churn" 0
          (int_field "waypoint_churn" r);
        Alcotest.(check (float 0.)) "incumbent kept"
          (float_field "mlu_before" r)
          (float_field "mlu_after" r)
      | Some _ -> ())
    lines;
  let s = Serve.Daemon.summary d in
  Alcotest.(check bool) "saw updates" true (!updates > 0);
  Alcotest.(check int) "all degraded" s.Serve.Daemon.updates
    s.Serve.Daemon.degraded

let test_daemon_churn_budget () =
  let budget = 2 in
  let d =
    make_daemon ~cfg_f:(fun c -> { c with Serve.Daemon.churn_budget = budget }) ()
  in
  let lines = replay_lines ~steps:15 () in
  List.iter
    (fun line ->
      match Serve.Daemon.handle_line d line with
      | Some r when str_field "status" r = "ok" && str_field "event" r = "delta"
        ->
        Alcotest.(check bool)
          (Printf.sprintf "weight churn %d <= %d" (int_field "weight_churn" r)
             budget)
          true
          (int_field "weight_churn" r <= budget)
      | _ -> ())
    lines

let test_daemon_link_flap () =
  (* With the optimizer floored (deadline 0) a down/up flap must return
     the daemon to its exact pre-flap state: same MLU, same weights. *)
  let d = make_daemon ~cfg_f:(fun c -> { c with Serve.Daemon.deadline_ms = 0. }) () in
  ignore (must_respond d "{\"ev\":\"report\"}");
  let w0, _, _ = Serve.Daemon.state d in
  let mlu0 = Serve.Daemon.mlu d in
  let down = must_respond d "{\"ev\":\"link-down\",\"edge\":0}" in
  Alcotest.(check string) "down ok" "ok" (str_field "status" down);
  Alcotest.(check bool) "down disconnects or reroutes" true
    (int_field "disconnected" down >= 0);
  (* Down twice is a client error, not a crash, and changes nothing. *)
  let again = must_respond d "{\"ev\":\"link-down\",\"edge\":0}" in
  Alcotest.(check string) "double down rejected" "error"
    (str_field "status" again);
  let up = must_respond d "{\"ev\":\"link-up\",\"edge\":0}" in
  Alcotest.(check string) "up ok" "ok" (str_field "status" up);
  Alcotest.(check int) "nothing disconnected after up" 0
    (int_field "disconnected" up);
  let w1, _, _ = Serve.Daemon.state d in
  Alcotest.(check bool) "weights restored" true (w0 = w1);
  Alcotest.(check (float 0.)) "mlu restored" mlu0 (Serve.Daemon.mlu d)

let test_daemon_set_matrix_and_delta_remove () =
  let d = make_daemon () in
  let r =
    must_respond d
      "{\"ev\":\"set-matrix\",\"demands\":[{\"src\":0,\"dst\":3,\"size\":5},{\"src\":4,\"dst\":1,\"size\":2}]}"
  in
  Alcotest.(check string) "swap ok" "ok" (str_field "status" r);
  Alcotest.(check int) "two pairs" 2 (int_field "demands" r);
  let r =
    must_respond d
      "{\"ev\":\"delta\",\"changes\":[{\"src\":0,\"dst\":3,\"size\":0}]}"
  in
  Alcotest.(check int) "size 0 removes the pair" 1 (int_field "demands" r);
  let _, demands, _ = Serve.Daemon.state d in
  Alcotest.(check int) "state agrees" 1 (Array.length demands)

let test_daemon_quit () =
  let d = make_daemon () in
  let r = must_respond d "{\"ev\":\"quit\"}" in
  Alcotest.(check string) "quit ok" "ok" (str_field "status" r);
  Alcotest.(check bool) "finished" true (Serve.Daemon.finished d);
  Alcotest.(check bool) "lines after quit ignored" true
    (Serve.Daemon.handle_line d "{\"ev\":\"report\"}" = None)

let test_replay_generator () =
  (* Deterministic, delta-only except reports, ends with quit. *)
  let lines = replay_lines () in
  let lines' = replay_lines () in
  Alcotest.(check bool) "regeneration identical" true (lines = lines');
  let g = Lazy.force abilene in
  List.iteri
    (fun i l ->
      match Serve.Event.parse g l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "replay line %d unparseable: %s" i e)
    lines;
  match List.rev lines with
  | last :: _ ->
    Alcotest.(check bool) "ends with quit" true
      (Serve.Event.parse g last = Ok Serve.Event.Quit)
  | [] -> Alcotest.fail "empty replay"

let () =
  Alcotest.run "serve"
    [
      ( "sjson",
        [
          Alcotest.test_case "roundtrip" `Quick test_sjson_roundtrip;
          Alcotest.test_case "deterministic render" `Quick
            test_sjson_render_deterministic;
          Alcotest.test_case "errors" `Quick test_sjson_errors;
        ] );
      ( "events",
        [
          Alcotest.test_case "parse" `Quick test_event_parse;
          Alcotest.test_case "rejects" `Quick test_event_rejects;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "robust to garbage" `Quick
            test_daemon_robust_to_garbage;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_daemon_deterministic_across_jobs;
          Alcotest.test_case "deadline floor" `Quick test_daemon_deadline_floor;
          Alcotest.test_case "churn budget" `Quick test_daemon_churn_budget;
          Alcotest.test_case "link flap" `Quick test_daemon_link_flap;
          Alcotest.test_case "set-matrix and delta-remove" `Quick
            test_daemon_set_matrix_and_delta_remove;
          Alcotest.test_case "quit" `Quick test_daemon_quit;
        ] );
      ( "replay",
        [ Alcotest.test_case "generator" `Quick test_replay_generator ] );
    ]
