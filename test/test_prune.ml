(* Properties of the Prune candidate-preprocessing pass.

   - no-op reproduction: [k = n] in Centrality mode must reproduce the
     unpruned GreedyWPO and JOINT results byte-identically (same
     waypoints, same MLU) — pruning off by default means off-by-one
     pool bugs would silently change published numbers, so the no-op
     path is pinned here.
   - parallel determinism: a pruned run is bit-identical across pool
     sizes, like every other solver result in this repo.
   - seeded fuzz: on random topologies a generous pool (k >= n/2) stays
     within a (1 + eps) factor of the unpruned objective, for every
     pool mode.
   - filter safety on the Figure 4 suite: the per-commodity filters of
     Reach mode (reachability, on-every-shortest-path) never drop the
     waypoint the unpruned greedy actually picked.
   - counters: pruned runs report their effectiveness through
     Stats.candidates_pruned/kept; unpruned runs report zero.
   - MILP: the no-op spec leaves the exact WPO MILP untouched. *)

open Netgraph
open Te

let random_instance seed =
  let nodes = 8 + (seed mod 17) in
  let links = nodes + 2 + (seed mod 9) in
  let g =
    Topology.Gen.synthetic ~seed ~name:(Printf.sprintf "prune%d" seed) ~nodes
      ~links ()
  in
  let st = Random.State.make [| 0x9e4; seed |] in
  let demands =
    Array.init (2 * nodes) (fun _ ->
        let s = Random.State.int st nodes in
        let d = (s + 1 + Random.State.int st (nodes - 1)) mod nodes in
        Network.demand s d (float_of_int (1 + Random.State.int st 7)))
  in
  (g, demands)

let wpo ?prune ?pool g w demands =
  let ctx = Obs.Ctx.make ?pool () in
  Greedy_wpo.optimize_ctx ctx ?prune g w demands

(* ------------------------------------------------------------------ *)
(* k = n is a byte-identical no-op                                     *)
(* ------------------------------------------------------------------ *)

let test_noop_greedy () =
  List.iter
    (fun name ->
      let g = Topology.Datasets.load name in
      let n = Digraph.node_count g in
      let demands = Demand_gen.gravity ~epsilon:0.15 ~seed:1 g in
      let w = Weights.inverse_capacity g in
      let base = wpo g w demands in
      let pruned = wpo ~prune:(Prune.spec n) g w demands in
      Alcotest.(check bool)
        (name ^ ": waypoints") true
        (pruned.Greedy_wpo.waypoints = base.Greedy_wpo.waypoints);
      Alcotest.(check (float 0.)) (name ^ ": mlu") base.Greedy_wpo.mlu
        pruned.Greedy_wpo.mlu;
      Alcotest.(check (float 0.))
        (name ^ ": initial mlu")
        base.Greedy_wpo.initial_mlu pruned.Greedy_wpo.initial_mlu)
    [ "Abilene"; "Germany50" ]

let test_noop_joint () =
  let g = Topology.Datasets.abilene () in
  let n = Digraph.node_count g in
  let demands = Demand_gen.gravity ~epsilon:0.15 ~seed:2 g in
  let ls_params =
    { Local_search.default_params with max_evals = 150; seed = 7 }
  in
  let base = Joint.optimize_ctx (Obs.Ctx.make ()) ~ls_params g demands in
  let pruned =
    Joint.optimize_ctx (Obs.Ctx.make ()) ~ls_params ~prune:(Prune.spec n) g
      demands
  in
  Alcotest.(check (array int)) "int weights" base.Joint.int_weights
    pruned.Joint.int_weights;
  Alcotest.(check bool) "waypoints" true
    (pruned.Joint.waypoints = base.Joint.waypoints);
  Alcotest.(check (float 0.)) "mlu" base.Joint.mlu pruned.Joint.mlu;
  Alcotest.(check bool) "stage mlus" true
    (pruned.Joint.stage_mlu = base.Joint.stage_mlu)

(* ------------------------------------------------------------------ *)
(* Pruned runs are bit-identical across pool sizes                     *)
(* ------------------------------------------------------------------ *)

let test_jobs_determinism () =
  let g = Topology.Datasets.load "Germany50" in
  let demands = Demand_gen.gravity ~epsilon:0.15 ~seed:3 g in
  let w = Weights.inverse_capacity g in
  List.iter
    (fun mode ->
      let prune = Prune.spec ~mode 8 in
      let seq = wpo ~prune g w demands in
      let pool = Par.Pool.create ~eager_wake:true ~jobs:4 () in
      let par =
        Fun.protect
          ~finally:(fun () -> Par.Pool.shutdown pool)
          (fun () -> wpo ~prune ~pool g w demands)
      in
      let ctx = Prune.mode_name mode in
      Alcotest.(check bool) (ctx ^ ": waypoints") true
        (par.Greedy_wpo.waypoints = seq.Greedy_wpo.waypoints);
      Alcotest.(check (float 0.)) (ctx ^ ": mlu") seq.Greedy_wpo.mlu
        par.Greedy_wpo.mlu)
    [ Prune.Centrality; Prune.Coverage; Prune.Reach ]

(* ------------------------------------------------------------------ *)
(* Seeded fuzz: a generous pool stays near the unpruned objective      *)
(* ------------------------------------------------------------------ *)

let test_fuzz_quality () =
  (* Reach keeps every commodity's own filtered list, so its bound is
     tight.  The global pools can miss a detour node that carries no
     shortest-path flow at all — exactly the node a tiny congested
     instance sometimes needs — so their guardrail is looser; on the
     20 seeds the observed worst case is 1.61x (seed 9, 17 nodes). *)
  let eps = function
    | Prune.Reach -> 0.25
    | Prune.Centrality | Prune.Coverage -> 0.75
  in
  for seed = 1 to 20 do
    let g, demands = random_instance seed in
    let n = Digraph.node_count g in
    let w = Weights.inverse_capacity g in
    let base = wpo g w demands in
    List.iter
      (fun mode ->
        let k = max 1 (n / 2) in
        let pruned = wpo ~prune:(Prune.spec ~mode k) g w demands in
        let bound = (1. +. eps mode) *. base.Greedy_wpo.mlu in
        if pruned.Greedy_wpo.mlu > bound then
          Alcotest.failf "seed %d %s: pruned MLU %.4f > (1+%.2f) x %.4f" seed
            (Prune.mode_name mode) pruned.Greedy_wpo.mlu (eps mode)
            base.Greedy_wpo.mlu)
      [ Prune.Centrality; Prune.Coverage; Prune.Reach ]
  done

(* ------------------------------------------------------------------ *)
(* Reach filters never drop the unpruned greedy's pick (fig4 suite)    *)
(* ------------------------------------------------------------------ *)

let test_filters_keep_pick () =
  List.iter
    (fun name ->
      let g = Topology.Datasets.load name in
      let n = Digraph.node_count g in
      let demands = Demand_gen.gravity ~epsilon:0.15 ~seed:1 g in
      let w = Weights.inverse_capacity g in
      let base = wpo g w demands in
      (* A fresh evaluator in the same state the solver pruned from:
         weights fixed, every demand on its direct route. *)
      let ev = Engine.Evaluator.create g w in
      Engine.Evaluator.set_commodities ev (Network.to_commodities demands);
      ignore (Engine.Evaluator.loads ev);
      let p =
        Prune.prepare (Obs.Ctx.make ()) (Prune.spec ~mode:Prune.Reach n) ev
          demands
      in
      Array.iteri
        (fun i -> function
          | None -> ()
          | Some pick ->
            let d = demands.(i) in
            let cands =
              Prune.candidates p ~src:d.Network.src ~dst:d.Network.dst
            in
            if not (Array.exists (( = ) pick) cands) then
              Alcotest.failf "%s: demand %d->%d lost its pick %d" name
                d.Network.src d.Network.dst pick)
        base.Greedy_wpo.waypoints)
    Topology.Datasets.fig4_names

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  let g = Topology.Datasets.load "Germany50" in
  let demands = Demand_gen.gravity ~epsilon:0.15 ~seed:4 g in
  let w = Weights.inverse_capacity g in
  let stats = Engine.Stats.create () in
  ignore
    (Greedy_wpo.optimize_ctx (Obs.Ctx.make ~stats ()) ~prune:(Prune.spec 8) g w
       demands);
  Alcotest.(check bool) "pruned > 0" true
    (stats.Engine.Stats.candidates_pruned > 0);
  Alcotest.(check bool) "kept > 0" true
    (stats.Engine.Stats.candidates_kept > 0);
  let stats0 = Engine.Stats.create () in
  ignore (Greedy_wpo.optimize_ctx (Obs.Ctx.make ~stats:stats0 ()) g w demands);
  Alcotest.(check int) "unpruned: pruned = 0" 0
    stats0.Engine.Stats.candidates_pruned;
  Alcotest.(check int) "unpruned: kept = 0" 0
    stats0.Engine.Stats.candidates_kept

(* ------------------------------------------------------------------ *)
(* MILP no-op                                                          *)
(* ------------------------------------------------------------------ *)

let test_milp_noop () =
  let g, demands = random_instance 5 in
  let n = Digraph.node_count g in
  let demands = Array.sub demands 0 6 in
  let w = Weights.inverse_capacity g in
  let base =
    Wpo_milp.solve_ctx (Obs.Ctx.make ()) ~max_nodes:2_000 g w demands
  in
  let pruned =
    Wpo_milp.solve_ctx (Obs.Ctx.make ()) ~max_nodes:2_000 ~prune:(Prune.spec n)
      g w demands
  in
  Alcotest.(check bool) "waypoints" true
    (pruned.Wpo_milp.waypoints = base.Wpo_milp.waypoints);
  Alcotest.(check (float 0.)) "mlu" base.Wpo_milp.mlu pruned.Wpo_milp.mlu;
  Alcotest.(check bool) "exact" base.Wpo_milp.exact pruned.Wpo_milp.exact

let () =
  Alcotest.run "prune"
    [
      ( "no-op",
        [
          Alcotest.test_case "greedy wpo k=n" `Quick test_noop_greedy;
          Alcotest.test_case "joint k=n" `Quick test_noop_joint;
          Alcotest.test_case "milp k=n" `Quick test_milp_noop;
        ] );
      ( "determinism",
        [ Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs_determinism ] );
      ( "quality",
        [
          Alcotest.test_case "fuzz k>=n/2 within 1+eps" `Quick
            test_fuzz_quality;
          Alcotest.test_case "reach filters keep the pick" `Quick
            test_filters_keep_pick;
        ] );
      ( "stats",
        [ Alcotest.test_case "pruning counters" `Quick test_counters ] );
    ]
