(* Tests for lib/engine: the incremental evaluator must be observably
   equivalent to from-scratch evaluation under arbitrary single-weight
   perturbation sequences, the undo/commit protocol must restore exact
   state, and the instrumentation must prove that local search does
   strictly fewer full SPF rebuilds than candidate evaluations. *)

open Netgraph
open Te

let checkf = Alcotest.(check (float 1e-9))

(* Deterministic random instances: a strongly connected synthetic
   topology, integer weights (so distances are exact floats and the
   incremental and from-scratch DAGs must agree bit for bit), and a few
   integer-size demands. *)
let instance seed =
  let nodes = 8 + ((seed mod 5) * 3) in
  let links = nodes + 4 + (seed mod 7) in
  let g =
    Topology.Gen.synthetic ~seed ~name:(Printf.sprintf "prop%d" seed) ~nodes
      ~links ()
  in
  let st = Random.State.make [| 0xe46; seed |] in
  let m = Digraph.edge_count g in
  let w = Array.init m (fun _ -> float_of_int (1 + Random.State.int st 10)) in
  let ndem = 4 + Random.State.int st 6 in
  let demands =
    Array.init ndem (fun _ ->
        let s = Random.State.int st nodes in
        let t = (s + 1 + Random.State.int st (nodes - 1)) mod nodes in
        (s, t, float_of_int (1 + Random.State.int st 5)))
  in
  (g, w, demands, st)

let fresh_loads g w demands =
  let ev = Engine.Evaluator.create g w in
  Engine.Evaluator.set_commodities ev demands;
  Array.copy (Engine.Evaluator.loads ev)

let check_matches_scratch ~msg g ev expected_w demands =
  Alcotest.(check bool)
    (msg ^ ": weights in sync") true
    (Engine.Evaluator.weights ev = expected_w);
  let incr = Engine.Evaluator.loads ev in
  let scratch = fresh_loads g expected_w demands in
  Array.iteri
    (fun e x -> checkf (Printf.sprintf "%s: load edge %d" msg e) x incr.(e))
    scratch;
  checkf (msg ^ ": mlu")
    (Engine.Evaluator.mlu_of_loads g scratch)
    (fst (Engine.Evaluator.evaluate ev))

(* The tentpole property: after any sequence of committed updates,
   probed-and-undone updates and bulk rewrites, the evaluator reports
   the same loads and MLU as a from-scratch Ecmp build (within 1e-9). *)
let test_equivalence_under_perturbations () =
  for seed = 1 to 6 do
    let g, w0, demands, st = instance seed in
    let m = Digraph.edge_count g in
    let ev = Engine.Evaluator.create g w0 in
    Engine.Evaluator.set_commodities ev demands;
    let current = Array.copy w0 in
    for step = 1 to 25 do
      let msg = Printf.sprintf "seed %d step %d" seed step in
      (match Random.State.int st 4 with
      | 0 ->
        (* accepted single-weight move *)
        let e = Random.State.int st m in
        let wv = float_of_int (1 + Random.State.int st 12) in
        Engine.Evaluator.set_weight ev ~edge:e wv;
        Engine.Evaluator.commit ev;
        current.(e) <- wv
      | 1 ->
        (* probed and rejected single-weight move *)
        let e = Random.State.int st m in
        let wv = float_of_int (1 + Random.State.int st 12) in
        Engine.Evaluator.set_weight ev ~edge:e wv;
        ignore (Engine.Evaluator.evaluate ev);
        Engine.Evaluator.undo ev
      | 2 ->
        (* small bulk diff, kept *)
        let w = Array.copy current in
        for _ = 1 to 1 + Random.State.int st 3 do
          w.(Random.State.int st m) <-
            float_of_int (1 + Random.State.int st 12)
        done;
        Engine.Evaluator.set_weights ev w;
        Engine.Evaluator.commit ev;
        Array.blit w 0 current 0 m
      | _ ->
        (* large bulk rewrite (cache flush), rejected *)
        let w =
          Array.init m (fun _ -> float_of_int (1 + Random.State.int st 12))
        in
        Engine.Evaluator.set_weights ev w;
        ignore (Engine.Evaluator.evaluate ev);
        Engine.Evaluator.undo ev);
      if step mod 5 = 0 then check_matches_scratch ~msg g ev current demands
    done;
    check_matches_scratch
      ~msg:(Printf.sprintf "seed %d final" seed)
      g ev current demands
  done

(* --------------------------------------------------------------- *)
(* sync_from ≡ copy                                                  *)
(* --------------------------------------------------------------- *)

let eval_obs ev =
  match Engine.Evaluator.evaluate ev with
  | v -> Ok v
  | exception Engine.Evaluator.Unroutable (s, t) -> Error (s, t)

(* The delta-sync contract: after [sync_from ~src dst], [dst] is
   observably bit-identical to [copy src] — same weights, same
   evaluation results, same routability verdicts — no matter how far
   the two evaluators diverged first (committed moves, bulk rewrites,
   commodity swaps, failed links, pending probes on the source). *)
let test_sync_from_equiv_copy () =
  for seed = 1 to 200 do
    let g, w0, demands, st = instance (1 + (seed mod 17)) in
    let m = Digraph.edge_count g in
    let mk () =
      let e = Engine.Evaluator.create g w0 in
      Engine.Evaluator.set_commodities e demands;
      ignore (eval_obs e);
      e
    in
    let src = mk () and dst = mk () in
    let mutate ev steps =
      for _ = 1 to steps do
        match Random.State.int st 5 with
        | 0 ->
          Engine.Evaluator.set_weight ev ~edge:(Random.State.int st m)
            (float_of_int (1 + Random.State.int st 12));
          Engine.Evaluator.commit ev
        | 1 ->
          (* bulk rewrite past the incremental threshold *)
          let w =
            Array.init m (fun _ -> float_of_int (1 + Random.State.int st 12))
          in
          Engine.Evaluator.set_weights ev w;
          Engine.Evaluator.commit ev
        | 2 ->
          (* demand subset: exercises the commodity diff on sync *)
          let k = 1 + Random.State.int st (Array.length demands) in
          Engine.Evaluator.set_commodities ev (Array.sub demands 0 k)
        | 3 ->
          let e = Random.State.int st m in
          if not (Engine.Evaluator.edge_disabled ev ~edge:e) then begin
            Engine.Evaluator.disable_edge ev ~edge:e;
            Engine.Evaluator.commit ev
          end
        | _ -> ignore (eval_obs ev)
      done
    in
    mutate src (2 + Random.State.int st 6);
    mutate dst (2 + Random.State.int st 6);
    (* Sometimes leave a pending probe on the source; the sync must see
       the probed weight as committed state, exactly as [copy] does. *)
    if Random.State.bool st then
      Engine.Evaluator.set_weight src ~edge:(Random.State.int st m) 9.;
    let reference = Engine.Evaluator.copy src in
    let check_equal tag =
      Alcotest.(check bool)
        (Printf.sprintf "seed %d %s: weights" seed tag)
        true
        (Engine.Evaluator.weights dst = Engine.Evaluator.weights reference);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d %s: evaluation" seed tag)
        true
        (eval_obs dst = eval_obs reference)
    in
    Engine.Evaluator.sync_from ~src dst;
    check_equal "first sync";
    (* Unchanged source: the stamp pair skips the commodity pass, and
       the result must stay identical. *)
    Engine.Evaluator.sync_from ~src dst;
    check_equal "stamped re-sync"
  done

let test_sync_from_rejects () =
  let g, w0, demands, _ = instance 1 in
  let ev = Engine.Evaluator.create g w0 in
  Engine.Evaluator.set_commodities ev demands;
  (match Engine.Evaluator.sync_from ~src:ev ev with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument on self-sync");
  let g2, w2, _, _ = instance 2 in
  let other = Engine.Evaluator.create g2 w2 in
  match Engine.Evaluator.sync_from ~src:ev other with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument on graph mismatch"

(* The clone cache: slot reuse must delta-sync (counted as such) and
   still produce an evaluator bit-identical to a fresh copy; a source
   on a different graph must fall back to a full copy. *)
let test_clone_cache () =
  let g, w0, demands, _ = instance 5 in
  let mk () =
    let e = Engine.Evaluator.create g w0 in
    Engine.Evaluator.set_commodities e demands;
    ignore (eval_obs e);
    e
  in
  let src = mk () in
  let cache = Engine.Evaluator.Clones.create () in
  (match Engine.Evaluator.Clones.get cache ~worker:0 ~src with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on worker 0");
  let c1 = Engine.Evaluator.Clones.get cache ~worker:1 ~src in
  Alcotest.(check int)
    "first use is a copy" 1
    (Engine.Evaluator.stats c1).Engine.Stats.clone_copies;
  (* Small committed diff on the source: reuse must sync, not recopy. *)
  Engine.Evaluator.set_weight src ~edge:0 7.;
  Engine.Evaluator.commit src;
  let c1' = Engine.Evaluator.Clones.get cache ~worker:1 ~src in
  Alcotest.(check bool) "slot reused" true (c1' == c1);
  Alcotest.(check bool)
    "reuse is a sync" true
    ((Engine.Evaluator.stats c1').Engine.Stats.clone_syncs >= 1);
  Alcotest.(check bool)
    "synced clone matches a fresh copy" true
    (eval_obs c1' = eval_obs (Engine.Evaluator.copy src));
  (* A different topology cannot be synced: fresh copy, same slot. *)
  let g2, w2, demands2, _ = instance 6 in
  let src2 = Engine.Evaluator.create g2 w2 in
  Engine.Evaluator.set_commodities src2 demands2;
  let c2 = Engine.Evaluator.Clones.get cache ~worker:1 ~src:src2 in
  Alcotest.(check bool) "topology change forces a new clone" true (c2 != c1);
  Engine.Evaluator.Clones.clear cache;
  let c3 = Engine.Evaluator.Clones.get cache ~worker:1 ~src in
  Alcotest.(check bool) "clear drops the slots" true (c3 != c1 && c3 != c2)

(* Undo must restore the previous state exactly (bit-equal loads), also
   when one edge changes twice on the same trail and when the very
   first update precedes any evaluation (no DAGs built yet). *)
let test_undo_restores_exact_state () =
  let g, w0, demands, _ = instance 3 in
  let ev = Engine.Evaluator.create g w0 in
  Engine.Evaluator.set_commodities ev demands;
  let before = Array.copy (Engine.Evaluator.loads ev) in
  Engine.Evaluator.set_weight ev ~edge:0 97.;
  Engine.Evaluator.set_weight ev ~edge:0 3.;
  Engine.Evaluator.set_weight ev ~edge:5 11.;
  ignore (Engine.Evaluator.evaluate ev);
  Alcotest.(check int) "trail length" 3 (Engine.Evaluator.trail_length ev);
  Engine.Evaluator.undo ev;
  Alcotest.(check int) "trail cleared" 0 (Engine.Evaluator.trail_length ev);
  Alcotest.(check bool) "weights restored" true
    (Engine.Evaluator.weights ev = w0);
  Alcotest.(check bool) "loads bit-equal" true
    (Engine.Evaluator.loads ev = before);
  (* update before any evaluation: every destination is unknown *)
  let ev2 = Engine.Evaluator.create g w0 in
  Engine.Evaluator.set_commodities ev2 demands;
  Engine.Evaluator.set_weight ev2 ~edge:2 42.;
  ignore (Engine.Evaluator.evaluate ev2);
  Engine.Evaluator.undo ev2;
  Alcotest.(check bool) "unknown dests rebuilt" true
    (Engine.Evaluator.loads ev2 = before)

(* Swapping the commodity set mid-trail invalidates load snapshots; the
   undo must still land on the right state (via the flush fallback). *)
let test_undo_after_commodity_swap () =
  let g, w0, demands, _ = instance 4 in
  let half = Array.sub demands 0 (max 1 (Array.length demands / 2)) in
  let ev = Engine.Evaluator.create g w0 in
  Engine.Evaluator.set_commodities ev demands;
  ignore (Engine.Evaluator.evaluate ev);
  Engine.Evaluator.set_weight ev ~edge:1 55.;
  Engine.Evaluator.set_commodities ev half;
  Engine.Evaluator.undo ev;
  let scratch = fresh_loads g w0 half in
  Array.iteri (fun e x -> checkf "post-swap load" x (Engine.Evaluator.loads ev).(e)) scratch

(* The restricted Dijkstra repair must agree exactly with a fresh
   reversed Dijkstra after both weight increases and decreases. *)
let test_dijkstra_update_to () =
  for seed = 1 to 5 do
    let g, w, _, st = instance seed in
    let n = Digraph.node_count g and m = Digraph.edge_count g in
    let target = Random.State.int st n in
    let dist = Paths.dijkstra_to g ~weights:w ~target in
    for _ = 1 to 30 do
      let e = Random.State.int st m in
      let old_weight = w.(e) in
      w.(e) <- float_of_int (1 + Random.State.int st 14);
      ignore (Paths.dijkstra_update_to g ~weights:w ~target ~dist ~edge:e ~old_weight);
      let fresh = Paths.dijkstra_to g ~weights:w ~target in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d repaired dist exact" seed)
        true (dist = fresh)
    done
  done

(* Fixed seed in, identical result out: the engine rewiring must not
   have introduced any iteration-order or caching nondeterminism. *)
let test_local_search_deterministic () =
  let g, _, _, _ = instance 2 in
  let demands =
    Array.map (fun (s, t, v) -> Network.demand s t v)
      [| (0, 5, 3.); (3, 1, 2.); (6, 2, 4.); (4, 7, 1.) |]
  in
  let params = { Local_search.default_params with max_evals = 300; seed = 11 } in
  let r1 = Local_search.optimize_ctx (Obs.Ctx.default ()) ~params g demands in
  let r2 = Local_search.optimize_ctx (Obs.Ctx.default ()) ~params g demands in
  Alcotest.(check bool) "same weights" true
    (r1.Local_search.weights = r2.Local_search.weights);
  Alcotest.(check (float 0.)) "same mlu" r1.Local_search.mlu r2.Local_search.mlu;
  Alcotest.(check int) "same evals" r1.Local_search.evals r2.Local_search.evals

(* Acceptance criterion: over a full HeurOSPF run the engine performs
   strictly fewer full SPF rebuilds than candidate evaluations — the
   incremental path is actually doing the work. *)
let test_local_search_incremental_stats () =
  let g = Topology.Datasets.abilene () in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.1 ~seed:1 ~flows_per_pair:2 g
  in
  let stats = Engine.Stats.create () in
  let params = { Local_search.default_params with max_evals = 500; seed = 7 } in
  let r = Local_search.optimize_ctx (Obs.Ctx.make ~stats ()) ~params g demands in
  Alcotest.(check bool) "some evaluations" true
    (stats.Engine.Stats.evaluations > 0);
  Alcotest.(check bool) "full SPF < evaluations" true
    (stats.Engine.Stats.full_spf < stats.Engine.Stats.evaluations);
  Alcotest.(check bool) "incremental SPF used" true
    (stats.Engine.Stats.incr_spf > 0);
  Alcotest.(check bool) "search improved" true (r.Local_search.mlu < 2.);
  let frac = Engine.Stats.full_rebuild_fraction stats in
  Alcotest.(check bool) "full-rebuild fraction < 1/2" true (frac < 0.5)

(* The Ecmp shim must keep its documented surface: same loads as the
   engine and the translated Unroutable exception. *)
let test_ecmp_shim () =
  let g = Digraph.of_edges ~n:4 [ (0, 1, 10.); (1, 3, 10.); (0, 2, 10.); (2, 3, 10.) ] in
  let w = Weights.unit g in
  let demands = [| Network.demand 0 3 2. |] in
  let ctx = Ecmp.make g w in
  let loads = Ecmp.loads ctx demands in
  checkf "even split" 1. loads.(0);
  let ev = Ecmp.evaluator ctx in
  let el = Engine.Evaluator.unit_load ev ~src:0 ~dst:3 in
  checkf "engine agrees" 0.5 el.Engine.Evaluator.flows.(0);
  let g2 = Digraph.of_edges ~n:3 [ (0, 1, 1.) ] in
  Alcotest.check_raises "unroutable translated" (Ecmp.Unroutable (0, 2))
    (fun () -> ignore (Ecmp.mlu_of g2 (Weights.unit g2) [| Network.demand 0 2 1. |]))

let test_stats_merge_and_json () =
  let a = Engine.Stats.create () and b = Engine.Stats.create () in
  a.Engine.Stats.full_spf <- 2;
  b.Engine.Stats.full_spf <- 3;
  b.Engine.Stats.incr_spf <- 7;
  Engine.Stats.add_time b "spf_incr" 0.5;
  Engine.Stats.merge ~into:a b;
  Alcotest.(check int) "merged full" 5 a.Engine.Stats.full_spf;
  Alcotest.(check int) "merged incr" 7 a.Engine.Stats.incr_spf;
  checkf "merged timer" 0.5 (List.assoc "spf_incr" (Engine.Stats.timers a));
  let j = Engine.Stats.to_json a in
  Alcotest.(check bool) "json has counters" true
    (String.length j > 0 && j.[0] = '{');
  checkf "fraction" (5. /. 12.) (Engine.Stats.full_rebuild_fraction a)

(* ------------------------------------------------------------------ *)
(* Allocation discipline                                               *)
(* ------------------------------------------------------------------ *)

(* Brackets [f] between two [Gc.minor_words] readings stored straight
   into a float array: the external is [@unboxed] [@@noalloc] and a
   float-array store never boxes, so the measurement itself contributes
   no minor words. *)
let gc_buf = Array.make 2 0.

let minor_delta f =
  gc_buf.(0) <- Gc.minor_words ();
  f ();
  gc_buf.(1) <- Gc.minor_words ();
  gc_buf.(1) -. gc_buf.(0)

(* [true] iff every demand stays routable; written recursively so the
   check allocates nothing (a [ref]-based loop would). *)
let rec routable_from ev demands i =
  i >= Array.length demands
  ||
  let s, d, _ = demands.(i) in
  Engine.Evaluator.reachable ev ~src:s ~dst:d
  && routable_from ev demands (i + 1)

(* The documented zero-allocation probe loop: after warmup (pools and
   scratch at steady state) one set_weight / evaluate_into / undo
   iteration must allocate no minor words at all.  The probe weights
   are precomputed as [(edge, weight)] pairs so the float box already
   exists — reading a flat float array at the call site would box one
   float per probe. *)
let test_probe_loop_zero_alloc () =
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ -> () (* floats box per op outside native code *)
  | Sys.Native ->
      let g, w, demands, _ = instance 3 in
      let ev = Engine.Evaluator.create g w in
      Engine.Evaluator.set_commodities ev demands;
      let m = Digraph.edge_count g in
      let moves = Array.init m (fun e -> (e, w.(e) +. 1.)) in
      let mx = { Engine.Evaluator.mlu = 0.; phi = 0. } in
      (* materialize the base-weight state first: destinations first
         built under probed weights are unknown to the trail and dropped
         on undo, so without this the warm state never forms *)
      Engine.Evaluator.evaluate_into ev mx;
      let pass () =
        for i = 0 to m - 1 do
          let e, pw = moves.(i) in
          Engine.Evaluator.set_weight ev ~edge:e pw;
          Engine.Evaluator.evaluate_into ev mx;
          Engine.Evaluator.undo ev
        done
      in
      for _ = 1 to 3 do
        pass ()
      done;
      checkf "warm probe pass minor words" 0. (minor_delta pass);
      Alcotest.(check bool) "probe saw finite mlu" true
        (mx.Engine.Evaluator.mlu > 0. && mx.Engine.Evaluator.mlu < infinity)

(* Link-flap round trip: a committed disable_edge must be durably
   revertible — enable_edge + commit restores bit-identical state
   (loads, metrics, reachability) with no rebuild.  This guards the
   dirty-destination predicate in apply_weight: a destination whose
   forward distance to some node went infinite while the link was down
   must still be repaired when the link comes back, even though the
   old distance is not finite. *)
let test_link_flap_round_trip () =
  let g = Topology.Datasets.abilene () in
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let w = Weights.inverse_capacity g in
  let ev = Engine.Evaluator.create g w in
  let st = Random.State.make [| 0xf1a9 |] in
  let demands =
    Array.init 20 (fun _ ->
        let s = Random.State.int st n in
        let d = (s + 1 + Random.State.int st (n - 1)) mod n in
        (s, d, float_of_int (1 + Random.State.int st 4)))
  in
  Engine.Evaluator.set_commodities ev demands;
  let mlu0, phi0 = Engine.Evaluator.evaluate ev in
  let loads0 = Array.copy (Engine.Evaluator.loads ev) in
  let reach () =
    Array.init n (fun s ->
        Array.init n (fun d -> Engine.Evaluator.reachable ev ~src:s ~dst:d))
  in
  let reach0 = reach () in
  (* Edge 0 is node 0's only out-edge on Abilene: while it is down a
     whole row of the reachability matrix goes false, which is exactly
     the regime the repair predicate must handle on re-enable. *)
  List.iter
    (fun e ->
      let orig = w.(e) in
      Engine.Evaluator.disable_edge ev ~edge:e;
      Engine.Evaluator.commit ev;
      Alcotest.(check bool) "disabled after commit" true
        (Engine.Evaluator.edge_disabled ev ~edge:e);
      ignore (reach ());
      Engine.Evaluator.enable_edge ev ~edge:e orig;
      Engine.Evaluator.commit ev;
      Alcotest.(check bool) "enabled after commit" false
        (Engine.Evaluator.edge_disabled ev ~edge:e);
      let mlu1, phi1 = Engine.Evaluator.evaluate ev in
      Alcotest.(check bool)
        (Printf.sprintf "edge %d: metrics bit-identical" e)
        true
        (mlu1 = mlu0 && phi1 = phi0);
      Alcotest.(check bool)
        (Printf.sprintf "edge %d: loads bit-identical" e)
        true
        (Engine.Evaluator.loads ev = loads0);
      Alcotest.(check bool)
        (Printf.sprintf "edge %d: reachability restored" e)
        true
        (reach () = reach0))
    [ 0; m / 2; m - 1 ];
  Alcotest.check_raises "enable on live edge rejected"
    (Invalid_argument "Evaluator.enable_edge: edge is not disabled")
    (fun () -> Engine.Evaluator.enable_edge ev ~edge:0 1.);
  Engine.Evaluator.disable_edge ev ~edge:0;
  Alcotest.check_raises "enable with infinite weight rejected"
    (Invalid_argument
       "Evaluator.enable_edge: weight must be positive and finite")
    (fun () -> Engine.Evaluator.enable_edge ev ~edge:0 infinity);
  Engine.Evaluator.undo ev

(* Failure sweep on Germany50: disable every link in turn, check
   reachability, evaluate the survivors and restore.  After one warm
   sweep the whole pass must stay allocation-free — the regression this
   guards against is any per-failure O(n^2) or per-evaluation heap
   traffic creeping back into disable_edge / reachable / undo. *)
let test_failure_sweep_alloc_free () =
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ -> ()
  | Sys.Native ->
      let g = Topology.Datasets.load "Germany50" in
      let n = Digraph.node_count g and m = Digraph.edge_count g in
      let w = Weights.inverse_capacity g in
      let ev = Engine.Evaluator.create g w in
      let st = Random.State.make [| 0x9a7 |] in
      let demands =
        Array.init 40 (fun _ ->
            let s = Random.State.int st n in
            let d = (s + 1 + Random.State.int st (n - 1)) mod n in
            (s, d, float_of_int (1 + Random.State.int st 4)))
      in
      Engine.Evaluator.set_commodities ev demands;
      let mx = { Engine.Evaluator.mlu = 0.; phi = 0. } in
      (* materialize the base-weight state before any failure is probed
         (see the probe-loop test above for why) *)
      Engine.Evaluator.evaluate_into ev mx;
      (* the first sweep warms every cache and records which failures
         keep all demands routable — evaluating a disconnected
         commodity raises (and so allocates) by contract *)
      let safe = Array.make m false in
      for e = 0 to m - 1 do
        Engine.Evaluator.disable_edge ev ~edge:e;
        safe.(e) <- routable_from ev demands 0;
        if safe.(e) then Engine.Evaluator.evaluate_into ev mx;
        Engine.Evaluator.undo ev
      done;
      let sweep () =
        for e = 0 to m - 1 do
          Engine.Evaluator.disable_edge ev ~edge:e;
          if routable_from ev demands 0 then
            Engine.Evaluator.evaluate_into ev mx;
          Engine.Evaluator.undo ev
        done
      in
      for _ = 1 to 2 do
        sweep ()
      done;
      checkf "warm failure sweep minor words" 0. (minor_delta sweep);
      Alcotest.(check bool) "some failure disconnects nothing" true
        (Array.exists (fun b -> b) safe)

let () =
  Alcotest.run "engine"
    [
      ( "evaluator",
        [
          Alcotest.test_case "equivalence under perturbations" `Quick
            test_equivalence_under_perturbations;
          Alcotest.test_case "undo restores exact state" `Quick
            test_undo_restores_exact_state;
          Alcotest.test_case "undo after commodity swap" `Quick
            test_undo_after_commodity_swap;
          Alcotest.test_case "ecmp shim" `Quick test_ecmp_shim;
          Alcotest.test_case "sync_from = copy (200-seed fuzz)" `Quick
            test_sync_from_equiv_copy;
          Alcotest.test_case "sync_from rejects" `Quick test_sync_from_rejects;
          Alcotest.test_case "clone cache" `Quick test_clone_cache;
          Alcotest.test_case "link-flap round trip" `Quick
            test_link_flap_round_trip;
        ] );
      ( "incremental spf",
        [
          Alcotest.test_case "dijkstra_update_to exact" `Quick
            test_dijkstra_update_to;
        ] );
      ( "search",
        [
          Alcotest.test_case "local search deterministic" `Quick
            test_local_search_deterministic;
          Alcotest.test_case "fewer full rebuilds than evals" `Quick
            test_local_search_incremental_stats;
        ] );
      ( "stats",
        [ Alcotest.test_case "merge and json" `Quick test_stats_merge_and_json ] );
      ( "allocation",
        [
          Alcotest.test_case "probe loop allocation-free" `Quick
            test_probe_loop_zero_alloc;
          Alcotest.test_case "failure sweep allocation-free" `Quick
            test_failure_sweep_alloc_free;
        ] );
    ]
