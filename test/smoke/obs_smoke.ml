(* Observability smoke: the run-context API end to end on Abilene —
   traced HeurOSPF + scenario sweep, trace well-formedness, jobs
   invariance of the exported trace, ctx equivalence, and a
   run-summary sanity check.  Run with `dune build @obs-smoke'. *)

open Te

let mismatches = ref 0

let check name ok =
  if ok then Printf.printf "  ok   %s\n%!" name
  else begin
    incr mismatches;
    Printf.printf "  FAIL %s\n%!" name
  end

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let () =
  let g = Topology.Datasets.abilene () in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:1 ~flows_per_pair:2 g
  in
  let params = { Local_search.default_params with max_evals = 300; seed = 7 } in
  Printf.printf "obs smoke: Abilene, %d demands\n%!" (Array.length demands);
  (* Traced run: phases + solver spans, well-formed, full phase coverage. *)
  let tracer = Obs.Tracer.create () in
  let ctx = Obs.Ctx.make ~tracer () in
  let r =
    Obs.Ctx.phase ctx "solve" (fun () ->
        Local_search.optimize_ctx ctx ~restarts:2 ~params g demands)
  in
  check "traced solve returns a finite MLU" (Float.is_finite r.Local_search.mlu);
  check "spans recorded" (Obs.Tracer.span_count tracer > 0);
  check "no spans dropped" (Obs.Tracer.dropped tracer = 0);
  check "no misnesting" (Obs.Tracer.misnested tracer = 0);
  check "phase totals name the phase"
    (List.map fst (Obs.Tracer.phase_totals tracer) = [ "solve" ]);
  (* Default and freshly built contexts agree. *)
  let dflt = Local_search.optimize_ctx (Obs.Ctx.default ()) ~restarts:2 ~params g demands in
  let plain = Local_search.optimize_ctx (Obs.Ctx.make ()) ~restarts:2 ~params g demands in
  check "default ctx = fresh ctx" (dflt = plain);
  check "tracing changes nothing" (dflt = r);
  (* Exported trace is byte-identical across pool sizes. *)
  let trace jobs =
    let go pool =
      let t = Obs.Tracer.create () in
      ignore
        (Local_search.optimize_ctx
           (Obs.Ctx.make ~tracer:t ~pool ())
           ~restarts:2 ~params g demands);
      Obs.Export.trace_lines ~times:false t
    in
    if jobs = 1 then go Par.Pool.sequential else Par.Pool.with_pool ~jobs go
  in
  check "trace byte-identical jobs 1 vs 4" (trace 1 = trace 4);
  (* Run summary of the traced run. *)
  let summary = Obs.Export.run_summary ctx in
  check "summary schema" (contains ~sub:"\"schema\": \"run-summary/1\"" summary);
  check "summary phases" (contains ~sub:"\"solve\"" summary);
  check "summary engine counters"
    (contains ~sub:"\"engine.evaluations\"" summary);
  (* Scenario sweep under a forked-children trace. *)
  let joint = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params:params g demands in
  let deployed =
    { Scenario.weights = joint.Joint.int_weights;
      Scenario.waypoints = joint.Joint.waypoints }
  in
  let specs =
    Scenario.generate { Scenario.default_config with Scenario.seed = 3 } g
  in
  let sweep jobs =
    let go pool =
      let t = Obs.Tracer.create () in
      let sctx = Obs.Ctx.make ~tracer:t ~pool () in
      let out = Scenario.sweep_ctx sctx ~deployed g demands specs in
      (out, Obs.Export.trace_lines ~times:false t,
       Obs.Metrics.counters sctx.Obs.Ctx.metrics)
    in
    if jobs = 1 then go Par.Pool.sequential else Par.Pool.with_pool ~jobs go
  in
  let out1, tr1, m1 = sweep 1 in
  let out4, tr4, m4 = sweep 4 in
  check "sweep results bit-identical jobs 1 vs 4" (compare out1 out4 = 0);
  check "sweep trace byte-identical jobs 1 vs 4" (tr1 = tr4);
  check "sweep metrics identical jobs 1 vs 4" (m1 = m4);
  check "sweep counts every case"
    (List.assoc_opt "scn.cases" m1 = Some (Array.length specs));
  if !mismatches > 0 then begin
    Printf.printf "obs smoke: %d mismatch(es)\n" !mismatches;
    exit 1
  end;
  print_endline "obs smoke: tracing is deterministic and changes no result"
