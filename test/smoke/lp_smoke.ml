(* LP-layer smoke: the sparse revised simplex against the dense tableau
   oracle on random LPs and on a real min-MLU instance, plus warm-start
   sanity.  Run with `dune build @lp-smoke'. *)

open Linprog
open Simplex

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL: %s\n" s)
    fmt

let gen_problem st =
  let nvars = 1 + Random.State.int st 6 in
  let nrows = Random.State.int st 8 in
  let coef () = float_of_int (Random.State.int st 21 - 10) /. 2. in
  let rows =
    List.filter
      (fun c -> c.coeffs <> [])
      (List.init nrows (fun _ ->
           let coeffs =
             List.filter (fun (_, c) -> c <> 0.)
               (List.init (1 + Random.State.int st nvars) (fun _ ->
                    (Random.State.int st nvars, coef ())))
           in
           let rel, rhs =
             match Random.State.int st 8 with
             | 0 -> (Ge, float_of_int (Random.State.int st 9 - 2) /. 2.)
             | 1 -> (Eq, float_of_int (Random.State.int st 9 - 2) /. 2.)
             | _ -> (Le, float_of_int (Random.State.int st 15 - 2) /. 2.)
           in
           constr coeffs rel rhs))
  in
  let boxes =
    List.filter_map
      (fun j ->
        if Random.State.int st 4 > 0 then
          Some (constr [ (j, 1.) ] Le (0.5 +. float_of_int (Random.State.int st 4)))
        else None)
      (List.init nvars Fun.id)
  in
  { nvars;
    sense = (if Random.State.bool st then Maximize else Minimize);
    objective =
      List.filter (fun (_, c) -> c <> 0.)
        (List.init nvars (fun j -> (j, coef ())));
    constrs = rows @ boxes }

let () =
  (* 1. Random LPs vs the dense oracle. *)
  let agreed = ref 0 in
  for seed = 1 to 60 do
    let st = Random.State.make [| 0x5e; seed |] in
    let p = gen_problem st in
    match (Dense.solve ~max_iters:200_000 p, solve p) with
    | Optimal { value = dv; _ }, Optimal { value = sv; _ } ->
      if abs_float (dv -. sv) <= 1e-6 *. (1. +. abs_float dv) then incr agreed
      else fail "seed %d: dense %.9g <> sparse %.9g" seed dv sv
    | Infeasible, Infeasible | Unbounded, Unbounded -> incr agreed
    | _ -> fail "seed %d: solvers classify differently" seed
  done;
  Printf.printf "random LPs: %d/60 agree with the dense oracle\n" !agreed;
  (* 2. A real min-MLU LP (Abilene), and warm-basis reuse on a scaled
     demand matrix. *)
  let g = Topology.Datasets.abilene () in
  let demands = Te.Demand_gen.mcf_synthetic ~epsilon:0.1 ~seed:1 ~flows_per_pair:2 g in
  let comms =
    Array.map
      (fun (d : Te.Network.demand) ->
        { Mcf.src = d.Te.Network.src; dst = d.Te.Network.dst;
          demand = d.Te.Network.size })
      demands
  in
  let v1, basis = Mcf.opt_mlu_lp_warm g comms in
  let scaled = Array.map (fun c -> { c with Mcf.demand = c.Mcf.demand *. 1.25 }) comms in
  let v2, _ = Mcf.opt_mlu_lp_warm ~basis g scaled in
  let v2_cold = Mcf.opt_mlu_lp g scaled in
  if abs_float (v2 -. v2_cold) > 1e-9 *. (1. +. abs_float v2_cold) then
    fail "warm MCF re-solve %.12g <> cold %.12g" v2 v2_cold;
  if abs_float (v2 -. (1.25 *. v1)) > 1e-6 *. (1. +. abs_float v2) then
    fail "scaled MLU %.9g is not 1.25x the base %.9g" v2 v1;
  Printf.printf "Abilene min-MLU: base %.4f, 1.25x demands warm = cold = %.4f\n"
    v1 v2;
  if !failures = 0 then print_endline "lp-smoke OK"
  else begin
    Printf.printf "lp-smoke FAILED (%d)\n" !failures;
    exit 1
  end
