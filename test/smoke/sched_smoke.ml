(* Scheduler smoke: a skewed-cost byte-identity race for the
   work-stealing runtime.  Every region mixes one task two orders of
   magnitude more expensive than the rest, so at jobs > 1 the cheap
   tasks are stolen off the submitting worker's deque while it grinds
   the big one — the configuration most likely to expose a deque or
   release-edge bug as a wrong (schedule-dependent) result.  Repeats
   the race many times and fails loudly on the first byte mismatch.
   Run with `dune build @sched-smoke'. *)

let failures = ref 0

let check name ok =
  if ok then Printf.printf "  ok   %s\n%!" name
  else begin
    incr failures;
    Printf.printf "  FAIL %s\n%!" name
  end

let burn n =
  let s = ref 0 in
  for i = 1 to n do
    s := !s + (i land 7)
  done;
  !s

let cost i = if i mod 11 = 0 then 150_000 else 1_500

let () =
  let tasks = 33 in
  let rounds = 20 in
  let expected = Array.init tasks (fun i -> burn (cost i) + (i * 17)) in
  Printf.printf "sched smoke: %d rounds of %d skewed tasks, jobs 1 vs 4\n%!"
    rounds tasks;
  (* map: flat skewed region. *)
  Par.Pool.with_pool ~eager_wake:true ~jobs:4 (fun pool ->
      let ok = ref true in
      for _ = 1 to rounds do
        let got =
          Par.Pool.map pool ~tasks (fun ~worker:_ i -> burn (cost i) + (i * 17))
        in
        if got <> expected then ok := false
      done;
      check "skewed map byte-identical" !ok);
  (* run_graph: two-stage pipeline with skewed stage-A costs; the join
     value is only right if every release edge ordered its stages. *)
  let items = 12 in
  let seq = Array.make items 0 in
  for i = 0 to items - 1 do
    seq.(i) <- burn (cost i) + i + 1
  done;
  Par.Pool.with_pool ~eager_wake:true ~jobs:4 (fun pool ->
      let ok = ref true in
      for _ = 1 to rounds do
        let acc = Array.make (2 * items) 0 in
        let deps =
          Array.init (2 * items) (fun t -> if t < items then [] else [ t - items ])
        in
        Par.Pool.run_graph pool ~tasks:(2 * items) ~deps (fun ~worker:_ t ->
            if t < items then acc.(t) <- burn (cost t) + t + 1
            else acc.(t) <- (acc.(t - items) * 3) + 1);
        for i = 0 to items - 1 do
          if acc.(items + i) <> (seq.(i) * 3) + 1 then ok := false
        done
      done;
      check "skewed pipeline byte-identical" !ok);
  if !failures > 0 then begin
    Printf.printf "sched smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "sched smoke: scheduler races never leak into results"
