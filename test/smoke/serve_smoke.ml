(* Serving smoke: a 50-event diurnal + flash-crowd replay on Abilene
   through the daemon must (1) answer every event with a schema-valid
   serve/1 line carrying the right sequence number, (2) improve on the
   incumbent at least once (the stream is not a no-op), (3) never
   deploy a setting worse than the incumbent, and (4) emit the same
   bytes across pool sizes.  Run with `dune build @serve-smoke'. *)

open Te

let mismatches = ref 0

let check name ok =
  if ok then Printf.printf "  ok   %s\n%!" name
  else begin
    incr mismatches;
    Printf.printf "  FAIL %s\n%!" name
  end

(* Exactly 50 events: 49 drift/report lines plus a trailing quit. *)
let event_lines demands =
  let replay =
    {
      Scenario.default_replay with
      Scenario.replay_seed = 2;
      steps = 60;
      report_every = 10;
      quit = false;
    }
  in
  let lines = Scenario.replay_events replay demands in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take 49 lines @ [ "{\"ev\":\"quit\"}" ]

let drive pool g demands weights lines =
  let ctx = Obs.Ctx.make ~stats:(Engine.Stats.create ()) ~pool () in
  let cfg =
    {
      Serve.Daemon.default_config with
      deadline_ms = -1.;
      timings = false;
      seed = 2;
    }
  in
  let d =
    Serve.Daemon.create ctx cfg ~deployed_weights:weights
      ~deployed_waypoints:(Segments.none demands) g demands
  in
  let rs = List.filter_map (fun l -> Serve.Daemon.handle_line d l) lines in
  (d, rs)

let () =
  let g = Topology.Datasets.abilene () in
  let flows = max 2 (Netgraph.Digraph.edge_count g / 16) in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:1 ~flows_per_pair:flows g
  in
  let weights =
    Weights.round_to_range ~wmax:16 (Weights.inverse_capacity g)
  in
  let lines = event_lines demands in
  Printf.printf "serve smoke: Abilene, %d demands, %d events\n%!"
    (Array.length demands) (List.length lines);
  check "replay is 50 events" (List.length lines = 50);
  let d, responses = drive Par.Pool.sequential g demands weights lines in
  check "one response per event" (List.length responses = List.length lines);
  let schema_ok = ref true and seq_ok = ref true and status_ok = ref true in
  let never_worse = ref true in
  List.iteri
    (fun i r ->
      match Serve.Sjson.parse r with
      | Error _ -> schema_ok := false
      | Ok v ->
        let str name =
          Option.bind (Serve.Sjson.member name v) Serve.Sjson.to_string
        in
        let num name =
          Option.bind (Serve.Sjson.member name v) Serve.Sjson.to_float
        in
        if str "schema" <> Some "serve/1" then schema_ok := false;
        if num "seq" <> Some (float_of_int i) then seq_ok := false;
        if str "status" <> Some "ok" then status_ok := false;
        (match (num "mlu_before", num "mlu_after") with
        | Some b, Some a -> if a > b +. 1e-12 then never_worse := false
        | _ -> ()))
    responses;
  check "every response parses with schema serve/1" !schema_ok;
  check "sequence numbers echo line order" !seq_ok;
  check "no errors on a clean replay" !status_ok;
  check "never deploys worse than the incumbent" !never_worse;
  let s = Serve.Daemon.summary d in
  check "nonzero improvement" (s.Serve.Daemon.improved > 0);
  check "daemon reached quit" (Serve.Daemon.finished d);
  let par =
    Par.Pool.with_pool ~jobs:3 (fun pool ->
        snd (drive pool g demands weights lines))
  in
  check "byte-identical across pool sizes" (responses = par);
  if !mismatches > 0 then begin
    Printf.printf "serve smoke: %d failure(s)\n" !mismatches;
    exit 1
  end;
  Printf.printf "serve smoke: all checks passed\n"
