(* Robustness-sweep smoke: generates a mixed failure x demand-shift
   scenario grid on Abilene, sweeps it under all three policies at
   jobs = 1 and jobs = 4 (and two chunkings), and fails loudly unless
   the outcomes — and the serialized report bytes — are identical, and
   the static outcomes agree with the rebuild oracle.  Run with
   `dune build @robust-smoke'. *)

open Te

let mismatches = ref 0

let check name ok =
  if ok then Printf.printf "  ok   %s\n%!" name
  else begin
    incr mismatches;
    Printf.printf "  FAIL %s\n%!" name
  end

let () =
  let g = Topology.Datasets.abilene () in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:1 ~flows_per_pair:2 g
  in
  let ls_params = { Local_search.default_params with max_evals = 200; seed = 1 } in
  let joint = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params g demands in
  let deployed =
    {
      Scenario.weights = joint.Joint.int_weights;
      Scenario.waypoints = joint.Joint.waypoints;
    }
  in
  let specs =
    Scenario.generate
      {
        Scenario.default_config with
        Scenario.seed = 1;
        Scenario.dual_failures = 5;
        Scenario.scales = [ 0.8; 1.2 ];
        Scenario.jitters = 2;
        Scenario.hotspots = 1;
        Scenario.diurnal = 2;
      }
      g
  in
  Printf.printf "robust smoke: Abilene, %d scenarios, jobs 1 vs 4\n%!"
    (Array.length specs);
  let policies = Scenario.policies_of_string "static,repair,reweight:3" in
  let run ~chunk pool =
    Scenario.sweep_ctx (Obs.Ctx.make ~pool ()) ~chunk ~policies ~reopt_evals:60 ~deployed g demands
      specs
  in
  let seq = run ~chunk:4 Par.Pool.sequential in
  let par = Par.Pool.with_pool ~jobs:4 (run ~chunk:4) in
  (* compare, not (=): disconnected outcomes carry nan MLUs. *)
  check "sweep bit-identical jobs 1 vs 4" (compare seq par = 0);
  let chunk1 = run ~chunk:1 Par.Pool.sequential in
  let chunk9 = run ~chunk:9 Par.Pool.sequential in
  check "sweep independent of chunking" (compare seq chunk1 = 0 && compare seq chunk9 = 0);
  let json out =
    Scenario.report_to_json g
      (Scenario.summarize ~topology:"Abilene" ~nominal_mlu:joint.Joint.mlu out)
  in
  check "report bytes identical" (json seq = json par);
  let oracle = Scenario.static_sweep_rebuild ~deployed g demands specs in
  check "static outcomes match rebuild oracle"
    (Array.for_all2
       (fun (mlu, disc) (o : Scenario.outcome) ->
         disc = o.Scenario.static_disconnected
         && ((Float.is_nan mlu && Float.is_nan o.Scenario.static_mlu)
            || abs_float (mlu -. o.Scenario.static_mlu)
               <= 1e-9 *. (1. +. abs_float mlu)))
       oracle seq);
  if !mismatches > 0 then begin
    Printf.printf "robust smoke: %d mismatch(es)\n" !mismatches;
    exit 1
  end;
  print_endline "robust smoke: sweep deterministic and oracle-consistent"
