(* Candidate-pruning smoke: the Prune pass on Germany50 must (1) leave
   the k = n no-op byte-identical to the unpruned greedy, (2) cut the
   scanned-candidate count by at least 5x at the default k while staying
   within 1% of the unpruned objective, and (3) stay bit-identical
   across pool sizes.  Run with `dune build @prune-smoke'. *)

open Te

let mismatches = ref 0

let check name ok =
  if ok then Printf.printf "  ok   %s\n%!" name
  else begin
    incr mismatches;
    Printf.printf "  FAIL %s\n%!" name
  end

let scanned (st : Engine.Stats.t) =
  Array.fold_left ( + ) 0 st.Engine.Stats.worker_evals

let run ?prune ?pool g w demands =
  let stats = Engine.Stats.create () in
  let ctx = Obs.Ctx.make ~stats ?pool () in
  (Greedy_wpo.optimize_ctx ctx ?prune g w demands, stats)

let () =
  let g = Topology.Datasets.load "Germany50" in
  let n = Netgraph.Digraph.node_count g in
  (* The Figure 4 demand model (quick-scale parameters): the delta
     acceptance bar is defined against this suite. *)
  let flows = max 2 (Netgraph.Digraph.edge_count g / 16) in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:1 ~flows_per_pair:flows g
  in
  let w = Weights.inverse_capacity g in
  Printf.printf "prune smoke: Germany50, %d demands\n%!" (Array.length demands);
  let base, base_st = run g w demands in
  let noop, _ = run ~prune:(Prune.spec n) g w demands in
  check "k=n no-op byte-identical"
    (noop.Greedy_wpo.waypoints = base.Greedy_wpo.waypoints
    && noop.Greedy_wpo.mlu = base.Greedy_wpo.mlu);
  let pruned, pruned_st = run ~prune:(Prune.spec Prune.default_k) g w demands in
  let reduction =
    float_of_int (scanned base_st) /. float_of_int (max 1 (scanned pruned_st))
  in
  let delta =
    (pruned.Greedy_wpo.mlu -. base.Greedy_wpo.mlu) /. base.Greedy_wpo.mlu
  in
  Printf.printf "  scan reduction %.1fx, objective delta %+.2f%%\n%!" reduction
    (100. *. delta);
  check "scan reduction >= 5x" (reduction >= 5.);
  check "objective delta <= 1%" (delta <= 0.01);
  check "pruning counters populated"
    (pruned_st.Engine.Stats.candidates_pruned > 0
    && pruned_st.Engine.Stats.candidates_kept > 0);
  let par, _ =
    Par.Pool.with_pool ~jobs:4 (fun pool ->
        run ~prune:(Prune.spec Prune.default_k) ~pool g w demands)
  in
  check "pruned jobs 1 = jobs 4"
    (par.Greedy_wpo.waypoints = pruned.Greedy_wpo.waypoints
    && par.Greedy_wpo.mlu = pruned.Greedy_wpo.mlu);
  if !mismatches > 0 then begin
    Printf.printf "prune smoke: %d mismatch(es)\n" !mismatches;
    exit 1
  end;
  print_endline "prune smoke: pruning fast, faithful and deterministic"
