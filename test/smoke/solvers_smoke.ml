(* Solver-registry smoke: every registered backend end to end on
   Abilene through the one table front ends use — finite MLUs, the
   invariants each backend promises (gradient tracks its LP bound, OMW
   never loses to its HeurOSPF stage), and registry dispatch itself.
   Run with `dune build @solvers-smoke'. *)

open Te

let mismatches = ref 0

let check name ok =
  if ok then Printf.printf "  ok   %s\n%!" name
  else begin
    incr mismatches;
    Printf.printf "  FAIL %s\n%!" name
  end

let () =
  let g = Topology.Datasets.abilene () in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:1 ~flows_per_pair:2 g
  in
  let names = Solver.names () in
  Printf.printf "solvers smoke: Abilene, %d demands, %d registered solvers\n%!"
    (Array.length demands) (List.length names);
  check "at least seven registered solvers" (List.length names >= 7);
  let config = { Solver.default_config with Solver.evals = 400 } in
  (* Every registered solver runs and reports a finite MLU. *)
  let results =
    List.map
      (fun (name, _doc) ->
        match Solver.find name with
        | None ->
            check (name ^ " resolvable") false;
            (name, None)
        | Some builder ->
            let r = Solver.solve (builder config) (Obs.Ctx.default ()) g demands in
            Printf.printf "  %-10s MLU %.4f  (%d evals)\n%!" name r.Solver.mlu
              r.Solver.evals;
            check (name ^ ": finite MLU") (Float.is_finite r.Solver.mlu);
            check
              (name ^ ": stages end at the returned MLU")
              (match List.rev r.Solver.stages with
              | (_, last) :: _ -> last = r.Solver.mlu
              | [] -> false);
            (name, Some r))
      names
  in
  let get n = Option.join (List.assoc_opt n results) in
  (* Backend-specific promises. *)
  (match get "grad" with
  | Some r ->
      let lp = List.assoc "LP-bound" r.Solver.stages in
      check "grad: MLU at or above its LP bound" (r.Solver.mlu >= lp -. 1e-9);
      check "grad: never worse than its rounded start"
        (r.Solver.mlu <= r.Solver.initial_mlu +. 1e-9)
  | None -> check "grad ran" false);
  (match get "omw" with
  | Some r ->
      let heur = List.assoc "HeurOSPF" r.Solver.stages in
      check "omw: never worse than its HeurOSPF stage"
        (r.Solver.mlu <= heur +. 1e-9);
      check "omw: returns both weight systems"
        (r.Solver.weights <> None && r.Solver.weights2 <> None
        && r.Solver.splits <> None)
  | None -> check "omw ran" false);
  (match (get "omw", get "omw+wpo") with
  | Some _, Some r ->
      check "omw+wpo: waypoints recorded" (r.Solver.waypoints <> None)
  | _ -> check "omw+wpo ran" false);
  (* Registry dispatch is bit-deterministic across worker pools. *)
  let run_omw pool =
    match Solver.find "omw" with
    | None -> None
    | Some builder ->
        Some (Solver.solve (builder config) (Obs.Ctx.make ~pool ()) g demands)
  in
  let r1 = run_omw Par.Pool.sequential in
  let r4 = Par.Pool.with_pool ~jobs:4 run_omw in
  check "omw bit-identical jobs 1 vs 4" (r1 = r4 && r1 <> None);
  if !mismatches > 0 then begin
    Printf.printf "solvers smoke: %d mismatch(es)\n" !mismatches;
    exit 1
  end;
  print_endline "solvers smoke: every registered backend holds its contract"
