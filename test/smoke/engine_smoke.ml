(* Engine-equivalence smoke: drives a persistent evaluator through a
   long committed/probed perturbation sequence on synthetic topologies
   and cross-checks loads and MLU against from-scratch evaluation after
   every move.  Run with `dune build @engine-smoke'. *)

open Netgraph

let tol = 1e-9

let fresh_loads g w demands =
  let ev = Engine.Evaluator.create g w in
  Engine.Evaluator.set_commodities ev demands;
  Array.copy (Engine.Evaluator.loads ev)

let run_seed seed =
  let nodes = 10 + ((seed mod 4) * 5) in
  let links = nodes + 6 in
  let g =
    Topology.Gen.synthetic ~seed ~name:(Printf.sprintf "smoke%d" seed) ~nodes
      ~links ()
  in
  let st = Random.State.make [| 0x50e; seed |] in
  let m = Digraph.edge_count g in
  let w = Array.init m (fun _ -> float_of_int (1 + Random.State.int st 10)) in
  let demands =
    Array.init 8 (fun _ ->
        let s = Random.State.int st nodes in
        let t = (s + 1 + Random.State.int st (nodes - 1)) mod nodes in
        (s, t, float_of_int (1 + Random.State.int st 5)))
  in
  let stats = Engine.Stats.create () in
  let ev = Engine.Evaluator.create ~stats g w in
  Engine.Evaluator.set_commodities ev demands;
  let current = Array.copy w in
  let mismatches = ref 0 in
  let moves = 60 in
  for _ = 1 to moves do
    let e = Random.State.int st m in
    let wv = float_of_int (1 + Random.State.int st 14) in
    Engine.Evaluator.set_weight ev ~edge:e wv;
    ignore (Engine.Evaluator.evaluate ev);
    if Random.State.bool st then begin
      Engine.Evaluator.commit ev;
      current.(e) <- wv
    end
    else Engine.Evaluator.undo ev;
    let live = Engine.Evaluator.loads ev in
    let scratch = fresh_loads g current demands in
    Array.iteri
      (fun i x -> if abs_float (x -. live.(i)) > tol then incr mismatches)
      scratch
  done;
  Printf.printf
    "seed %d: %d nodes, %d edges, %d moves -> %d mismatches \
     (full SPF %d, incremental SPF %d)\n"
    seed nodes m moves !mismatches stats.Engine.Stats.full_spf
    stats.Engine.Stats.incr_spf;
  !mismatches = 0 && stats.Engine.Stats.incr_spf > 0

let () =
  let ok = List.for_all run_seed [ 1; 2; 3 ] in
  if ok then print_endline "engine-smoke OK"
  else begin
    print_endline "engine-smoke FAILED";
    exit 1
  end
