(* Parallel-determinism smoke: runs the three pool-driven heuristics on
   Abilene at jobs = 1 and jobs = 4 and fails loudly unless every
   observable of the results is bit-identical.  Run with
   `dune build @par-smoke'. *)

open Te

let mismatches = ref 0

let check name ok =
  if ok then Printf.printf "  ok   %s\n%!" name
  else begin
    incr mismatches;
    Printf.printf "  FAIL %s\n%!" name
  end

let () =
  let g = Topology.Datasets.abilene () in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:1 ~flows_per_pair:2 g
  in
  let at_jobs f =
    let seq = f Par.Pool.sequential in
    let par = Par.Pool.with_pool ~eager_wake:true ~jobs:4 f in
    (seq, par)
  in
  Printf.printf "par smoke: Abilene, %d demands, jobs 1 vs 4\n%!"
    (Array.length demands);
  let params = { Local_search.default_params with max_evals = 400; seed = 7 } in
  let ls1, ls4 =
    at_jobs (fun pool ->
        let r = Local_search.optimize_ctx (Obs.Ctx.make ~pool ()) ~params g demands in
        (r.Local_search.weights, r.Local_search.mlu, r.Local_search.phi,
         r.Local_search.evals))
  in
  check "HeurOSPF bit-identical" (ls1 = ls4);
  let lsr1, lsr4 =
    at_jobs (fun pool ->
        let r = Local_search.optimize_ctx (Obs.Ctx.make ~pool ()) ~restarts:3 ~params g demands in
        (r.Local_search.weights, r.Local_search.mlu, r.Local_search.evals))
  in
  check "HeurOSPF restarts=3 bit-identical" (lsr1 = lsr4);
  let w = Weights.inverse_capacity g in
  let wpo1, wpo4 =
    at_jobs (fun pool ->
        let r = Greedy_wpo.optimize_ctx (Obs.Ctx.make ~pool ()) g w demands in
        (r.Greedy_wpo.waypoints, r.Greedy_wpo.mlu))
  in
  check "GreedyWPO bit-identical" (wpo1 = wpo4);
  let j1, j4 =
    at_jobs (fun pool ->
        let r = Joint.optimize_ctx (Obs.Ctx.make ~pool ()) ~ls_params:params g demands in
        (r.Joint.int_weights, r.Joint.waypoints, r.Joint.mlu, r.Joint.stage_mlu))
  in
  check "JOINT-Heur bit-identical" (j1 = j4);
  if !mismatches > 0 then begin
    Printf.printf "par smoke: %d mismatch(es)\n" !mismatches;
    exit 1
  end;
  print_endline "par smoke: all heuristics bit-identical across pool sizes"
