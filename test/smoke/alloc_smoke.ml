(* Allocation-discipline smoke: proves the engine's documented
   zero-allocation contracts with [Gc.minor_words] bracketing on real
   topologies, larger and longer than the tier-1 unit variants.  Two
   invariants:

   - the probe loop (set_weight / evaluate_into / undo) allocates no
     minor words per iteration once warm;
   - a whole-topology failure sweep (disable_edge / reachable /
     evaluate_into / undo) allocates no minor words per sweep once warm.

   Run with `dune build @alloc-smoke' (part of the `@smoke' umbrella).
   Exits 0 in bytecode without measuring: outside native code every
   float operation boxes, so the invariant only holds natively. *)

open Netgraph
open Te

let gc_buf = Array.make 2 0.

let minor_delta f =
  gc_buf.(0) <- Gc.minor_words ();
  f ();
  gc_buf.(1) <- Gc.minor_words ();
  gc_buf.(1) -. gc_buf.(0)

let rec routable_from ev demands i =
  i >= Array.length demands
  ||
  let s, d, _ = demands.(i) in
  Engine.Evaluator.reachable ev ~src:s ~dst:d
  && routable_from ev demands (i + 1)

let demands_of g ~count ~seed =
  let n = Digraph.node_count g in
  let st = Random.State.make [| seed |] in
  Array.init count (fun _ ->
      let s = Random.State.int st n in
      let d = (s + 1 + Random.State.int st (n - 1)) mod n in
      (s, d, float_of_int (1 + Random.State.int st 6)))

let check_probe_loop name g =
  let w = Weights.inverse_capacity g in
  let m = Digraph.edge_count g in
  let demands = demands_of g ~count:60 ~seed:0x41c in
  let ev = Engine.Evaluator.create g w in
  Engine.Evaluator.set_commodities ev demands;
  let mx = { Engine.Evaluator.mlu = 0.; phi = 0. } in
  (* materialize the base-weight state first: destinations first built
     under probed weights are unknown to the undo trail and dropped on
     undo, so without this the warm state never forms *)
  Engine.Evaluator.evaluate_into ev mx;
  let moves = Array.init m (fun e -> (e, (w.(e) *. 1.5) +. 1.)) in
  let pass () =
    for i = 0 to m - 1 do
      let e, pw = moves.(i) in
      Engine.Evaluator.set_weight ev ~edge:e pw;
      Engine.Evaluator.evaluate_into ev mx;
      Engine.Evaluator.undo ev
    done
  in
  for _ = 1 to 3 do
    pass ()
  done;
  let words = minor_delta pass in
  Printf.printf "%-12s probe loop   %4d edges  %8.0f minor words/pass\n" name m
    words;
  if words <> 0. then (
    Printf.eprintf "FAIL: %s warm probe pass allocated %.0f minor words\n" name
      words;
    exit 1)

let check_failure_sweep name g =
  let w = Weights.inverse_capacity g in
  let m = Digraph.edge_count g in
  let demands = demands_of g ~count:40 ~seed:0x9a7 in
  let ev = Engine.Evaluator.create g w in
  Engine.Evaluator.set_commodities ev demands;
  let mx = { Engine.Evaluator.mlu = 0.; phi = 0. } in
  Engine.Evaluator.evaluate_into ev mx;
  let sweep () =
    for e = 0 to m - 1 do
      Engine.Evaluator.disable_edge ev ~edge:e;
      if routable_from ev demands 0 then Engine.Evaluator.evaluate_into ev mx;
      Engine.Evaluator.undo ev
    done
  in
  for _ = 1 to 3 do
    sweep ()
  done;
  let words = minor_delta sweep in
  Printf.printf "%-12s fail sweep   %4d edges  %8.0f minor words/sweep\n" name
    m words;
  if words <> 0. then (
    Printf.eprintf "FAIL: %s warm failure sweep allocated %.0f minor words\n"
      name words;
    exit 1)

let () =
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ ->
      print_endline "alloc smoke: skipped (requires native code)"
  | Sys.Native ->
      List.iter
        (fun name ->
          let g = Topology.Datasets.load name in
          check_probe_loop name g;
          check_failure_sweep name g)
        [ "Abilene"; "Germany50" ];
      print_endline "alloc smoke OK"
