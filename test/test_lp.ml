(* Randomized cross-validation of the sparse revised simplex against
   the dense tableau oracle (Simplex.Dense), plus warm-start and MILP
   warm/cold equivalence.  Every instance is generated from a fixed
   seed, so failures reproduce exactly. *)

open Linprog
open Simplex

let show_result = function
  | Optimal { value; _ } -> Printf.sprintf "optimal %.9g" value
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"

(* Random general LPs: mixed senses and relations, negative rhs,
   duplicate coefficients, empty-ish rows, half-integer data (so ties
   and degenerate vertices are common rather than rare). *)
let gen_problem st =
  let nvars = 1 + Random.State.int st 8 in
  let nrows = Random.State.int st 11 in
  let coef () = float_of_int (Random.State.int st 21 - 10) /. 2. in
  let objective =
    List.filter (fun (_, c) -> c <> 0.)
      (List.init nvars (fun j -> (j, coef ())))
  in
  let sense = if Random.State.bool st then Maximize else Minimize in
  let rows =
    List.filter
      (fun c -> c.coeffs <> [])
      (List.init nrows (fun _ ->
           let nnz = 1 + Random.State.int st nvars in
           let coeffs =
             List.filter (fun (_, c) -> c <> 0.)
               (List.init nnz (fun _ -> (Random.State.int st nvars, coef ())))
           in
           (* Mostly Le with non-negative rhs (feasible at the origin);
              Ge and Eq rows supply the infeasible and phase-1-heavy
              cases. *)
           let rel, rhs =
             match Random.State.int st 10 with
             | 0 | 1 -> (Ge, float_of_int (Random.State.int st 13 - 3) /. 2.)
             | 2 -> (Eq, float_of_int (Random.State.int st 13 - 3) /. 2.)
             | _ -> (Le, float_of_int (Random.State.int st 19 - 2) /. 2.)
           in
           constr coeffs rel rhs))
  in
  (* Box most variables so maximization is usually bounded, while the
     uncovered ones keep producing genuine unbounded rays. *)
  let boxes =
    List.filter_map
      (fun j ->
        if Random.State.int st 10 < 7 then
          Some (constr [ (j, 1.) ] Le (0.5 +. float_of_int (Random.State.int st 4)))
        else None)
      (List.init nvars Fun.id)
  in
  { nvars; sense; objective; constrs = rows @ boxes }

(* Solve [p] with both solvers and require identical classification and
   (when optimal) matching objective values and feasible points. *)
let agree name p =
  let dense = Dense.solve ~max_iters:200_000 p in
  let sparse = solve p in
  match (dense, sparse) with
  | Optimal { value = dv; solution = dx }, Optimal { value = sv; solution = sx }
    ->
    if abs_float (dv -. sv) > 1e-6 *. (1. +. abs_float dv) then
      Alcotest.failf "%s: dense %.9g <> sparse %.9g" name dv sv;
    if not (check_feasible p dx) then
      Alcotest.failf "%s: dense point infeasible" name;
    if not (check_feasible p sx) then
      Alcotest.failf "%s: sparse point infeasible" name;
    `Optimal
  | Infeasible, Infeasible -> `Infeasible
  | Unbounded, Unbounded -> `Unbounded
  | _ ->
    Alcotest.failf "%s: dense %s <> sparse %s" name (show_result dense)
      (show_result sparse)

let fuzz_seeds = List.init 200 (fun i -> i + 1)

let test_fuzz_vs_dense () =
  let opt = ref 0 and inf = ref 0 and unb = ref 0 in
  List.iter
    (fun seed ->
      let st = Random.State.make [| 0x1b; seed |] in
      let p = gen_problem st in
      match agree (Printf.sprintf "seed %d" seed) p with
      | `Optimal -> incr opt
      | `Infeasible -> incr inf
      | `Unbounded -> incr unb)
    fuzz_seeds;
  (* The generator must actually exercise all three outcomes. *)
  Alcotest.(check bool) "saw optimal" true (!opt > 20);
  Alcotest.(check bool) "saw infeasible" true (!inf > 10);
  Alcotest.(check bool) "saw unbounded" true (!unb > 10)

(* Re-solving from the returned optimal basis must reproduce the value
   in no more iterations than the cold solve (normally zero). *)
let test_warm_start_equals_cold () =
  let tested = ref 0 in
  List.iter
    (fun seed ->
      let st = Random.State.make [| 0x1b; seed |] in
      let p = gen_problem st in
      let sp = Sparse.of_problem p in
      match Sparse.solve sp with
      | Sparse.Optimal { value; basis; iters; _ } ->
        incr tested;
        (match Sparse.solve ~basis sp with
        | Sparse.Optimal { value = wv; iters = wi; _ } ->
          if abs_float (wv -. value) > 1e-9 *. (1. +. abs_float value) then
            Alcotest.failf "seed %d: warm %.12g <> cold %.12g" seed wv value;
          if wi > iters then
            Alcotest.failf "seed %d: warm took %d iters, cold %d" seed wi iters
        | o ->
          Alcotest.failf "seed %d: warm re-solve not optimal (%s)" seed
            (match o with
            | Sparse.Infeasible -> "infeasible"
            | Sparse.Unbounded -> "unbounded"
            | Sparse.CycleLimit _ -> "cycle limit"
            | Sparse.Optimal _ -> assert false))
      | _ -> ())
    fuzz_seeds;
  Alcotest.(check bool) "warm-start cases exercised" true (!tested > 20)

(* The branch-and-bound mechanism: [?bounds] overrides on the sparse
   problem must agree with the dense oracle on the problem extended by
   the equivalent explicit rows — cold and warm-started alike. *)
let test_bounds_overrides_vs_dense () =
  let tested = ref 0 in
  List.iter
    (fun seed ->
      let st = Random.State.make [| 0xb0; seed |] in
      let p = gen_problem st in
      let sp = Sparse.of_problem p in
      match Sparse.solve sp with
      | Sparse.Optimal { basis; _ } ->
        incr tested;
        let j = Random.State.int st p.nvars in
        let lo = float_of_int (Random.State.int st 2) in
        let hi = lo +. float_of_int (Random.State.int st 4) in
        let p' =
          { p with
            constrs =
              constr [ (j, 1.) ] Ge lo
              :: constr [ (j, 1.) ] Le hi
              :: p.constrs }
        in
        let dense = Dense.solve ~max_iters:200_000 p' in
        let check label = function
          | Sparse.Optimal { value = sv; _ } -> (
            match dense with
            | Optimal { value = dv; _ } ->
              if abs_float (dv -. sv) > 1e-6 *. (1. +. abs_float dv) then
                Alcotest.failf "seed %d %s: dense %.9g <> sparse %.9g" seed
                  label dv sv
            | o ->
              Alcotest.failf "seed %d %s: dense %s but sparse optimal" seed
                label (show_result o))
          | Sparse.Infeasible ->
            if dense <> Infeasible then
              Alcotest.failf "seed %d %s: sparse infeasible, dense %s" seed
                label (show_result dense)
          | Sparse.Unbounded ->
            if dense <> Unbounded then
              Alcotest.failf "seed %d %s: sparse unbounded, dense %s" seed
                label (show_result dense)
          | Sparse.CycleLimit _ ->
            Alcotest.failf "seed %d %s: cycle limit" seed label
        in
        check "cold" (Sparse.solve ~bounds:[ (j, lo, hi) ] sp);
        check "warm" (Sparse.solve ~bounds:[ (j, lo, hi) ] ~basis sp)
      | _ -> ())
    (List.init 100 (fun i -> i + 1));
  Alcotest.(check bool) "bound-override cases exercised" true (!tested > 20)

(* ------------------------------------------------------------------ *)
(* Directed corner cases                                               *)
(* ------------------------------------------------------------------ *)

let test_degenerate_beale () =
  (* Beale's cycling example; the sparse solver must terminate and match
     the oracle. *)
  let p =
    { nvars = 4; sense = Minimize;
      objective = [ (0, -0.75); (1, 150.); (2, -0.02); (3, 6.) ];
      constrs =
        [ constr [ (0, 0.25); (1, -60.); (2, -0.04); (3, 9.) ] Le 0.;
          constr [ (0, 0.5); (1, -90.); (2, -0.02); (3, 3.) ] Le 0.;
          constr [ (2, 1.) ] Le 1. ] }
  in
  ignore (agree "beale" p)

let test_fixed_variable_folding () =
  (* A singleton Eq row becomes a fixed bound inside of_problem; the
     solution must carry the fixed value. *)
  let p =
    { nvars = 2; sense = Maximize; objective = [ (0, 1.); (1, 1.) ];
      constrs =
        [ constr [ (0, 1.) ] Eq 2.; constr [ (0, 1.); (1, 1.) ] Le 5. ] }
  in
  (match solve p with
  | Optimal { value; solution } ->
    Alcotest.(check (float 1e-9)) "value" 5. value;
    Alcotest.(check (float 1e-9)) "fixed var" 2. solution.(0)
  | o -> Alcotest.failf "expected optimal, got %s" (show_result o));
  ignore (agree "fixed-var" p)

let test_conflicting_singletons_infeasible () =
  let p =
    { nvars = 1; sense = Maximize; objective = [ (0, 1.) ];
      constrs = [ constr [ (0, 1.) ] Le 1.; constr [ (0, 1.) ] Ge 2. ] }
  in
  ignore (agree "crossed-bounds" p)

let test_unbounded_with_equalities () =
  (* Phase 1 must finish before unboundedness is declared. *)
  let p =
    { nvars = 3; sense = Maximize; objective = [ (2, 1.) ];
      constrs = [ constr [ (0, 1.); (1, 1.) ] Eq 4. ] }
  in
  ignore (agree "eq-then-unbounded" p)

let test_cycle_limit_typed () =
  (* max_iters 0 must surface as the typed CycleLimit, not an
     exception, through Sparse.solve. *)
  let p =
    { nvars = 2; sense = Maximize; objective = [ (0, 1.); (1, 1.) ];
      constrs = [ constr [ (0, 1.); (1, 2.) ] Le 4. ] }
  in
  let sp = Sparse.of_problem p in
  (match Sparse.solve ~max_iters:0 sp with
  | Sparse.CycleLimit { iters } -> Alcotest.(check int) "iters" 0 iters
  | _ -> Alcotest.fail "expected CycleLimit");
  (* The legacy wrapper keeps the historical Failure contract. *)
  Alcotest.check_raises "legacy failure"
    (Failure "Simplex: iteration limit exceeded") (fun () ->
      ignore (solve ~max_iters:0 p))

let test_default_iter_limit_scales () =
  let small = Sparse.of_problem { nvars = 1; sense = Maximize;
                                  objective = [ (0, 1.) ];
                                  constrs = [ constr [ (0, 1.); (0, 0.) ] Le 1. ] }
  in
  let big_rows =
    List.init 100 (fun i ->
        constr [ (i mod 5, 1.); ((i + 1) mod 5, 1.) ] Le (float_of_int (i + 1)))
  in
  let big = Sparse.of_problem { nvars = 5; sense = Maximize;
                                objective = [ (0, 1.) ]; constrs = big_rows }
  in
  Alcotest.(check bool) "limit grows with size" true
    (Sparse.default_iter_limit big > Sparse.default_iter_limit small)

(* ------------------------------------------------------------------ *)
(* MILP: warm and cold branch-and-bound agree                          *)
(* ------------------------------------------------------------------ *)

let test_milp_warm_equals_cold () =
  for seed = 1 to 60 do
    let st = Random.State.make [| 0x3a; seed |] in
    let n = 2 + Random.State.int st 4 in
    let p =
      { nvars = n; sense = Maximize;
        objective =
          List.init n (fun j -> (j, 0.5 +. float_of_int (Random.State.int st 8)));
        constrs =
          constr
            (List.init n (fun j -> (j, 1. +. float_of_int (Random.State.int st 4))))
            Le
            (3. +. float_of_int (Random.State.int st 12))
          :: List.init n (fun j -> constr [ (j, 1.) ] Le 3.) }
    in
    let integer_vars = List.init n Fun.id in
    let r_warm, e_warm = Milp.solve_ext ~warm:true p ~integer_vars in
    let r_cold, e_cold = Milp.solve_ext ~warm:false p ~integer_vars in
    match (r_warm, r_cold) with
    | Milp.Solution w, Milp.Solution c ->
      if abs_float (w.Milp.value -. c.Milp.value) > 1e-6 then
        Alcotest.failf "seed %d: warm %.9g <> cold %.9g" seed w.Milp.value
          c.Milp.value;
      if w.Milp.nodes_explored <> c.Milp.nodes_explored then
        Alcotest.failf "seed %d: warm explored %d nodes, cold %d" seed
          w.Milp.nodes_explored c.Milp.nodes_explored;
      Alcotest.(check int) "cold run has no warm solves" 0
        e_cold.Milp.warm_solves;
      if w.Milp.nodes_explored > 1 && e_warm.Milp.warm_solves = 0 then
        Alcotest.failf "seed %d: warm run never reused a basis" seed
    | _ -> Alcotest.failf "seed %d: expected solutions from both runs" seed
  done

let () =
  Alcotest.run "lp"
    [
      ( "fuzz",
        [
          Alcotest.test_case "sparse = dense oracle (200 instances)" `Quick
            test_fuzz_vs_dense;
          Alcotest.test_case "warm start = cold" `Quick
            test_warm_start_equals_cold;
          Alcotest.test_case "bound overrides = explicit rows" `Quick
            test_bounds_overrides_vs_dense;
        ] );
      ( "corners",
        [
          Alcotest.test_case "Beale degenerate" `Quick test_degenerate_beale;
          Alcotest.test_case "fixed-variable folding" `Quick
            test_fixed_variable_folding;
          Alcotest.test_case "crossed singleton bounds" `Quick
            test_conflicting_singletons_infeasible;
          Alcotest.test_case "equalities before unbounded" `Quick
            test_unbounded_with_equalities;
          Alcotest.test_case "typed cycle limit" `Quick test_cycle_limit_typed;
          Alcotest.test_case "adaptive iteration limit" `Quick
            test_default_iter_limit_scales;
        ] );
      ( "milp",
        [
          Alcotest.test_case "warm = cold branch and bound" `Quick
            test_milp_warm_equals_cold;
        ] );
    ]
