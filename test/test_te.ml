(* Tests for the core TE library: ECMP evaluation, weight settings,
   segments, LWO-APX, local search, GreedyWPO, JOINT-Heur, exact
   solvers and the WPO MILP. *)

open Netgraph
open Te

let checkf = Alcotest.(check (float 1e-9))
let checkf6 = Alcotest.(check (float 1e-6))

let diamond () =
  (* 0 -> {1,2} -> 3; symmetric square. *)
  Digraph.of_edges ~n:4 [ (0, 1, 10.); (1, 3, 10.); (0, 2, 10.); (2, 3, 10.) ]

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let test_demand_validation () =
  Alcotest.check_raises "self demand" (Invalid_argument "Network.demand: src = dst")
    (fun () -> ignore (Network.demand 1 1 1.));
  Alcotest.check_raises "zero size"
    (Invalid_argument "Network.demand: size must be positive") (fun () ->
      ignore (Network.demand 0 1 0.))

let test_aggregate () =
  let d = [| Network.demand 0 1 1.; Network.demand 0 1 2.; Network.demand 1 2 1. |] in
  let a = Network.aggregate d in
  Alcotest.(check int) "two pairs" 2 (Array.length a);
  checkf "merged size" 3. a.(0).Network.size

let test_split () =
  let d = [| Network.demand 0 1 4. |] in
  let s = Network.split_demands ~parts:4 d in
  Alcotest.(check int) "four parts" 4 (Array.length s);
  checkf "each size 1" 1. s.(2).Network.size

let test_total_and_targets () =
  let g = diamond () in
  let net =
    Network.make g [| Network.demand 0 3 2.; Network.demand 1 3 1.; Network.demand 0 2 1. |]
  in
  checkf "total" 4. (Network.total_demand net);
  Alcotest.(check (list int)) "targets" [ 2; 3 ] (Network.targets net);
  Alcotest.(check (list int)) "sources for 3" [ 0; 1 ] (Network.sources_for net 3)

(* ------------------------------------------------------------------ *)
(* Weights                                                             *)
(* ------------------------------------------------------------------ *)

let test_unit_weights () =
  let g = diamond () in
  let w = Weights.unit g in
  checkf "all one" 1. w.(3)

let test_inverse_capacity () =
  let g = Digraph.of_edges ~n:3 [ (0, 1, 10.); (1, 2, 2.) ] in
  let w = Weights.inverse_capacity g in
  checkf "big cap small weight" 1. w.(0);
  checkf "small cap big weight" 5. w.(1)

let test_round_to_range () =
  let w = Weights.round_to_range ~wmax:10 [| 1.; 2.; 1000. |] in
  Alcotest.(check int) "min clamps to 1" 1 w.(0);
  Alcotest.(check int) "max is wmax" 10 w.(2)

(* ------------------------------------------------------------------ *)
(* ECMP                                                                *)
(* ------------------------------------------------------------------ *)

let test_even_split () =
  let g = diamond () in
  let ctx = Ecmp.make g (Weights.unit g) in
  let loads = Ecmp.loads ctx [| Network.demand 0 3 4. |] in
  checkf "upper path" 2. loads.(0);
  checkf "lower path" 2. loads.(2)

let test_single_path () =
  let g = diamond () in
  let ctx = Ecmp.make g [| 1.; 1.; 5.; 5. |] in
  let loads = Ecmp.loads ctx [| Network.demand 0 3 4. |] in
  checkf "upper path carries all" 4. loads.(0);
  checkf "lower path empty" 0. loads.(2)

let test_recursive_split () =
  (* 0 -> {1,2}; 1 -> {3}; 2 -> {3}; plus 1 -> 4 -> 3 making two equal
     paths from 1: flow 1/2 at 1 splits into 1/4 and 1/4. *)
  let g =
    Digraph.of_edges ~n:5
      [ (0, 1, 1.); (0, 2, 1.); (1, 3, 1.); (2, 3, 1.); (1, 4, 1.); (4, 3, 1.) ]
  in
  let w = [| 1.; 1.; 2.; 2.; 1.; 1. |] in
  let ctx = Ecmp.make g w in
  let u = Ecmp.unit_load ctx ~src:0 ~dst:3 in
  let load e =
    let rec find i =
      if i >= Array.length u.Ecmp.edges then 0.
      else if u.Ecmp.edges.(i) = e then u.Ecmp.flows.(i)
      else find (i + 1)
    in
    find 0
  in
  checkf "0->1 half" 0.5 (load 0);
  checkf "1->3 quarter" 0.25 (load 2);
  checkf "1->4 quarter" 0.25 (load 4)

let test_unit_load_conservation () =
  let g = diamond () in
  let ctx = Ecmp.make g (Weights.unit g) in
  let u = Ecmp.unit_load ctx ~src:0 ~dst:3 in
  let into_target =
    Array.to_list u.Ecmp.edges
    |> List.mapi (fun i e -> (e, u.Ecmp.flows.(i)))
    |> List.filter (fun (e, _) -> Digraph.dst g e = 3)
    |> List.fold_left (fun acc (_, f) -> acc +. f) 0.
  in
  checkf "unit arrives" 1. into_target

let test_unroutable () =
  let g = Digraph.of_edges ~n:3 [ (0, 1, 1.) ] in
  let ctx = Ecmp.make g (Weights.unit g) in
  (match Ecmp.unit_load ctx ~src:0 ~dst:2 with
  | exception Ecmp.Unroutable (0, 2) -> ()
  | _ -> Alcotest.fail "expected Unroutable")

let test_waypoint_routing () =
  let g = diamond () in
  let ctx = Ecmp.make g (Weights.unit g) in
  (* Waypoint 1 forces the upper path even though ECMP would split. *)
  let loads =
    Ecmp.loads ~waypoints:[| [ 1 ] |] ctx [| Network.demand 0 3 4. |]
  in
  checkf "upper full" 4. loads.(0);
  checkf "lower empty" 0. loads.(2)

let test_degenerate_waypoints () =
  let g = diamond () in
  let ctx = Ecmp.make g (Weights.unit g) in
  let direct = Ecmp.loads ctx [| Network.demand 0 3 4. |] in
  let wps = [| [ 0; 0; 3 ] |] in
  let same = Ecmp.loads ~waypoints:wps ctx [| Network.demand 0 3 4. |] in
  Array.iteri (fun e l -> checkf (Printf.sprintf "edge %d" e) l same.(e)) direct

let test_mlu () =
  let g = Digraph.of_edges ~n:2 [ (0, 1, 4.) ] in
  checkf "mlu" 0.5 (Ecmp.mlu g [| 2. |]);
  checkf "utilization" 0.5 (Ecmp.utilizations g [| 2. |]).(0)

let test_max_es_flow () =
  let g = diamond () in
  let v = Ecmp.max_es_flow_value g (Weights.unit g) ~src:0 ~dst:3 in
  checkf "both paths, 10 each" 20. v

let test_random_weights () =
  let g = diamond () in
  let w = Weights.random ~seed:4 ~wmax:7 g in
  Array.iter
    (fun x -> Alcotest.(check bool) "in range" true (x >= 1. && x <= 7.))
    w;
  let w2 = Weights.random ~seed:4 ~wmax:7 g in
  Alcotest.(check bool) "deterministic" true (w = w2)

let test_is_routable () =
  let g = Digraph.of_edges ~n:3 [ (0, 1, 1.) ] in
  Alcotest.(check bool) "routable" true
    (Network.is_routable (Network.make g [| Network.demand 0 1 1. |]));
  Alcotest.(check bool) "unroutable" false
    (Network.is_routable (Network.make g [| Network.demand 0 2 1. |]))

let test_dag_accessor () =
  let g = diamond () in
  let ctx = Ecmp.make g (Weights.unit g) in
  let d = Ecmp.dag ctx ~target:3 in
  checkf "dist from source" 2. d.Ecmp.dist.(0);
  Alcotest.(check int) "two SP out-edges at source" 2
    (Array.length d.Ecmp.out_sp.(0));
  Alcotest.(check int) "target is last in decreasing-distance order" 3
    d.Ecmp.order.(Array.length d.Ecmp.order - 1)

(* ------------------------------------------------------------------ *)
(* Segments                                                            *)
(* ------------------------------------------------------------------ *)

let test_segment_endpoints () =
  let d = Network.demand 0 5 1. in
  Alcotest.(check (list (pair int int)))
    "two waypoints" [ (0, 2); (2, 4); (4, 5) ]
    (Segments.segment_endpoints d [ 2; 4 ]);
  Alcotest.(check (list (pair int int)))
    "degenerate skipped" [ (0, 5) ]
    (Segments.segment_endpoints d [ 0; 5 ])

let test_expand () =
  let demands = [| Network.demand 0 5 2.; Network.demand 1 5 1. |] in
  let setting = [| [ 3 ]; [] |] in
  let ex = Segments.expand demands setting in
  Alcotest.(check int) "three segments" 3 (Array.length ex);
  checkf "segment size kept" 2. ex.(0).Network.size;
  Alcotest.(check int) "waypoint count" 1 (Segments.count_waypoints setting);
  Alcotest.(check int) "max waypoints" 1 (Segments.max_waypoints setting)

(* ------------------------------------------------------------------ *)
(* LWO-APX (Algorithm 1)                                               *)
(* ------------------------------------------------------------------ *)

let test_fig3a_effective_capacities () =
  let g, s, t = Instances.Gap_instances.fig3a () in
  let usable = Array.init (Digraph.edge_count g) (Digraph.cap g) in
  let ec = Lwo_apx.effective_capacities g ~usable ~source:s ~target:t in
  let v1 = Digraph.node_of_name g "v1"
  and v2 = Digraph.node_of_name g "v2"
  and v3 = Digraph.node_of_name g "v3" in
  checkf "ec v1" 0.5 ec.Lwo_apx.node.(v1);
  checkf "ec v2" 0.5 ec.Lwo_apx.node.(v2);
  checkf "ec v3" 0.75 ec.Lwo_apx.node.(v3);
  checkf "ec s = 3/2" 1.5 ec.Lwo_apx.node.(s)

let test_fig3b_effective_capacities () =
  let g, s, t = Instances.Gap_instances.fig3b () in
  let usable = Array.init (Digraph.edge_count g) (Digraph.cap g) in
  let ec = Lwo_apx.effective_capacities g ~usable ~source:s ~target:t in
  let name = Digraph.node_of_name g in
  checkf "ec v3" 0.5 ec.Lwo_apx.node.(name "v3");
  checkf "ec v4" 1. ec.Lwo_apx.node.(name "v4");
  checkf6 "ec v1 = 1/3" (1. /. 3.) ec.Lwo_apx.node.(name "v1");
  checkf6 "ec v2 = 2/3" (2. /. 3.) ec.Lwo_apx.node.(name "v2");
  checkf6 "ec s = 2/3" (2. /. 3.) ec.Lwo_apx.node.(s)

let test_lwo_apx_realizes_es_flow () =
  (* The weight setting must realize an ECMP flow of exactly the
     computed ec(s): MLU of a demand of that size is 1. *)
  let g, s, t = Instances.Gap_instances.fig3b () in
  let r = Lwo_apx.solve g ~source:s ~target:t in
  checkf6 "es flow value" (2. /. 3.) r.Lwo_apx.es_flow_value;
  let mlu =
    Ecmp.mlu_of g r.Lwo_apx.weights
      [| Network.demand s t r.Lwo_apx.es_flow_value |]
  in
  checkf6 "weight setting achieves ec(s)" 1. mlu

let test_lwo_apx_instance2 () =
  (* Lemma 3.10: the best ES-flow on instance 2 has size 1, and
     LWO-APX finds a setting realizing it. *)
  let inst = Instances.Gap_instances.instance2 ~m:6 in
  let g = inst.Instances.Gap_instances.network.Network.graph in
  let r =
    Lwo_apx.solve g ~source:inst.Instances.Gap_instances.source
      ~target:inst.Instances.Gap_instances.target
  in
  checkf6 "ES-flow = 1" 1. r.Lwo_apx.es_flow_value;
  Alcotest.(check bool)
    "approximation ratio = H_m" true
    (abs_float (Lwo_apx.approximation_ratio r -. Instances.Gap_instances.harmonic 6)
     < 1e-6)

let test_weights_for_dag_property () =
  (* Keep only the upper path 0 -> 1 -> 3 of the diamond: the induced
     ECMP flow from 0 must use exactly those edges (Lemma 4.1). *)
  let g = diamond () in
  let keep e = e = 0 || e = 1 in
  let w = Lwo_apx.weights_for_dag g ~keep ~target:3 in
  let ctx = Ecmp.make g w in
  let u = Ecmp.unit_load ctx ~src:0 ~dst:3 in
  Alcotest.(check (array int)) "uses kept edges" [| 0; 1 |] u.Ecmp.edges;
  Array.iter (fun f -> checkf "full unit" 1. f) u.Ecmp.flows

let test_uniform_optimal_weights () =
  (* Theorem 4.2: uniform capacities + single pair -> LWO = OPT. *)
  let g =
    Digraph.of_edges ~n:6
      [ (0, 1, 5.); (1, 3, 5.); (0, 2, 5.); (2, 3, 5.); (1, 2, 5.); (3, 4, 5.);
        (3, 5, 5.); (4, 5, 5.); (0, 4, 5.) ]
  in
  let demands = [| Network.demand 0 5 9. |] in
  let w = Lwo_apx.uniform_optimal_weights g ~source:0 ~target:5 in
  let mlu = Ecmp.mlu_of g w demands in
  let opt = Mcf.opt_mlu g [| { Mcf.src = 0; dst = 5; demand = 9. } |] in
  checkf6 "LWO = OPT" opt mlu

let test_widest_path_weights () =
  let g = diamond () in
  let w = Lwo_apx.widest_path_weights g ~source:0 ~target:3 in
  let mlu = Ecmp.mlu_of g w [| Network.demand 0 3 5. |] in
  (* Single path of capacity 10 carrying 5. *)
  checkf6 "single path mlu" 0.5 mlu

(* ------------------------------------------------------------------ *)
(* Local search (HeurOSPF)                                             *)
(* ------------------------------------------------------------------ *)

let test_phi_monotone () =
  let g = Digraph.of_edges ~n:2 [ (0, 1, 1.) ] in
  let low = Local_search.phi_cost g [| 0.2 |] in
  let mid = Local_search.phi_cost g [| 0.8 |] in
  let high = Local_search.phi_cost g [| 1.2 |] in
  Alcotest.(check bool) "increasing" true (low < mid && mid < high)

let test_phi_slope_values () =
  let g = Digraph.of_edges ~n:2 [ (0, 1, 1.) ] in
  checkf6 "linear below 1/3" 0.25 (Local_search.phi_cost g [| 0.25 |]);
  (* phi(2/3) = 1/3 + 3*(1/3) = 4/3 *)
  checkf6 "at 2/3" (4. /. 3.) (Local_search.phi_cost g [| 2. /. 3. |])

let test_local_search_improves () =
  let inst = Instances.Gap_instances.instance1 ~m:5 in
  let net = inst.Instances.Gap_instances.network in
  let g = net.Network.graph in
  let params = { Local_search.default_params with max_evals = 400; seed = 7 } in
  let r = Local_search.optimize_ctx (Obs.Ctx.default ()) ~params g net.Network.demands in
  let init_mlu, _ =
    Local_search.evaluate g net.Network.demands
      (Weights.round_to_range ~wmax:params.Local_search.wmax (Weights.inverse_capacity g))
  in
  Alcotest.(check bool) "no worse than init" true (r.Local_search.mlu <= init_mlu +. 1e-9);
  (* Optimal LWO on instance 1 is m/2 = 2.5 (Lemma 3.6). *)
  Alcotest.(check bool) "reaches the LWO optimum" true (r.Local_search.mlu <= 2.5 +. 1e-6);
  Alcotest.(check bool) "cannot beat the LWO optimum" true
    (r.Local_search.mlu >= 2.5 -. 1e-6);
  Array.iter
    (fun w -> Alcotest.(check bool) "weight in range" true (w >= 1 && w <= params.Local_search.wmax))
    r.Local_search.weights

let test_local_search_deterministic () =
  let inst = Instances.Gap_instances.instance1 ~m:4 in
  let net = inst.Instances.Gap_instances.network in
  let params = { Local_search.default_params with max_evals = 150; seed = 3 } in
  let r1 = Local_search.optimize_ctx (Obs.Ctx.default ()) ~params net.Network.graph net.Network.demands in
  let r2 = Local_search.optimize_ctx (Obs.Ctx.default ()) ~params net.Network.graph net.Network.demands in
  checkf "same mlu for same seed" r1.Local_search.mlu r2.Local_search.mlu

(* ------------------------------------------------------------------ *)
(* GreedyWPO (Algorithm 3)                                             *)
(* ------------------------------------------------------------------ *)

let test_greedy_wpo_never_worse () =
  let inst = Instances.Gap_instances.instance1 ~m:5 in
  let net = inst.Instances.Gap_instances.network in
  let w = Weights.unit net.Network.graph in
  let r = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) net.Network.graph w net.Network.demands in
  Alcotest.(check bool) "mlu <= initial" true
    (r.Greedy_wpo.mlu <= r.Greedy_wpo.initial_mlu +. 1e-9)

let test_greedy_wpo_improves_under_joint_weights () =
  (* Under the Lemma 3.5 weights on instance 1, the no-waypoint MLU is
     m (all demands on (s,t)); the greedy is order-fragile (it may stack
     two demands on one exit) but must at least halve the MLU. *)
  let inst = Instances.Gap_instances.instance1 ~m:5 in
  let net = inst.Instances.Gap_instances.network in
  let r =
    Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) net.Network.graph inst.Instances.Gap_instances.joint_weights
      net.Network.demands
  in
  checkf6 "no waypoints: everything on (s,t)" 5. r.Greedy_wpo.initial_mlu;
  Alcotest.(check bool)
    (Printf.sprintf "greedy (%g) at most 2" r.Greedy_wpo.mlu)
    true (r.Greedy_wpo.mlu <= 2. +. 1e-9)

let test_exact_wpo_finds_joint_waypoints () =
  (* Exact WPO under the Lemma 3.5 weights reaches the optimum MLU 1:
     under the right weights, waypoints alone recover OPT. *)
  let inst = Instances.Gap_instances.instance1 ~m:3 in
  let net = inst.Instances.Gap_instances.network in
  let _, v =
    Exact.wpo net.Network.graph inst.Instances.Gap_instances.joint_weights
      net.Network.demands
  in
  checkf6 "exact WPO = 1 under lemma weights" 1. v

let test_greedy_wpo_orders () =
  let inst = Instances.Gap_instances.instance1 ~m:4 in
  let net = inst.Instances.Gap_instances.network in
  let w = inst.Instances.Gap_instances.joint_weights in
  List.iter
    (fun order ->
      let r = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) ~order net.Network.graph w net.Network.demands in
      Alcotest.(check bool) "improves" true
        (r.Greedy_wpo.mlu <= r.Greedy_wpo.initial_mlu +. 1e-9))
    [ Greedy_wpo.Desc; Greedy_wpo.Asc; Greedy_wpo.Random 5 ]

(* ------------------------------------------------------------------ *)
(* JOINT-Heur (Algorithm 2)                                            *)
(* ------------------------------------------------------------------ *)

let test_joint_heur_stages () =
  let inst = Instances.Gap_instances.instance1 ~m:4 in
  let net = inst.Instances.Gap_instances.network in
  let ls_params = { Local_search.default_params with max_evals = 300; seed = 11 } in
  let r = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params net.Network.graph net.Network.demands in
  Alcotest.(check int) "two stages" 2 (List.length r.Joint.stage_mlu);
  let heur = List.assoc "HeurOSPF" r.Joint.stage_mlu in
  Alcotest.(check bool) "joint <= heurospf" true (r.Joint.mlu <= heur +. 1e-9);
  (* Verify the reported MLU matches re-evaluating the returned setting. *)
  let mlu =
    Ecmp.mlu_of ~waypoints:r.Joint.waypoints net.Network.graph r.Joint.weights
      net.Network.demands
  in
  checkf6 "reported mlu consistent" r.Joint.mlu mlu

let test_joint_heur_full_pipeline () =
  let inst = Instances.Gap_instances.instance1 ~m:4 in
  let net = inst.Instances.Gap_instances.network in
  let ls_params = { Local_search.default_params with max_evals = 200; seed = 2 } in
  let r = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params ~full_pipeline:true net.Network.graph net.Network.demands in
  Alcotest.(check int) "three stages" 3 (List.length r.Joint.stage_mlu);
  let stage2 = List.assoc "GreedyWPO" r.Joint.stage_mlu in
  Alcotest.(check bool) "never worse than stage 2" true (r.Joint.mlu <= stage2 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Exact solvers and the WPO MILP                                      *)
(* ------------------------------------------------------------------ *)

let tiny_instance () =
  (* Instance 1 with m = 3: 4 nodes, 8 edges — small enough for brute
     force with a restricted domain. *)
  Instances.Gap_instances.instance1 ~m:3

let test_exact_ordering () =
  let inst = tiny_instance () in
  let net = inst.Instances.Gap_instances.network in
  let g = net.Network.graph in
  let domain = [ 1; 3 ] in
  let (_, lwo), _ = Exact.lwo ~weight_domain:domain g net.Network.demands in
  let (_, _, joint), _ = Exact.joint ~weight_domain:domain g net.Network.demands in
  let _, wpo_unit = Exact.wpo g (Weights.unit g) net.Network.demands in
  Alcotest.(check bool) "joint <= lwo" true (joint <= lwo +. 1e-9);
  Alcotest.(check bool) "joint <= wpo(unit)" true (joint <= wpo_unit +. 1e-9)

let test_exact_joint_achieves_opt () =
  (* With domain {1,3} the lemma's construction (weights m=3 vs 1) is
     representable, so exact Joint must reach MLU 1. *)
  let inst = tiny_instance () in
  let net = inst.Instances.Gap_instances.network in
  let (_, _, joint), _ = Exact.joint ~weight_domain:[ 1; 3 ] net.Network.graph net.Network.demands in
  checkf6 "joint = 1" 1. joint

let test_exact_too_large () =
  let inst = Instances.Gap_instances.instance1 ~m:5 in
  let net = inst.Instances.Gap_instances.network in
  (match
     Exact.lwo ~weight_domain:[ 1; 2; 3; 4 ] ~max_settings:10 net.Network.graph
       net.Network.demands
   with
  | exception Exact.Too_large _ -> ()
  | _ -> Alcotest.fail "expected Too_large")

let test_wpo_milp_matches_exact () =
  let inst = tiny_instance () in
  let net = inst.Instances.Gap_instances.network in
  let g = net.Network.graph in
  List.iter
    (fun w ->
      let _, exact = Exact.wpo g w net.Network.demands in
      let milp = Wpo_milp.solve g w net.Network.demands in
      Alcotest.(check bool) "milp exact" true milp.Wpo_milp.exact;
      checkf6 "milp = brute force" exact milp.Wpo_milp.mlu)
    [ Weights.unit g; inst.Instances.Gap_instances.joint_weights ]

let test_wpo_milp_two_waypoints () =
  (* Lemma 3.11: under the lemma weights on instance 3, two waypoints
     per demand reach MLU 1 — the W=2 MILP must find that (one waypoint
     provably cannot). *)
  let inst = Instances.Gap_instances.instance3 ~m:2 in
  let net = inst.Instances.Gap_instances.network in
  let g = net.Network.graph in
  let w = inst.Instances.Gap_instances.joint_weights in
  let one = Wpo_milp.solve ~max_waypoints:1 g w net.Network.demands in
  let two = Wpo_milp.solve ~max_waypoints:2 g w net.Network.demands in
  Alcotest.(check bool) "W=2 exact" true two.Wpo_milp.exact;
  checkf6 "W=2 reaches 1" 1. two.Wpo_milp.mlu;
  Alcotest.(check bool)
    (Printf.sprintf "W=1 (%g) cannot reach 1" one.Wpo_milp.mlu)
    true
    (one.Wpo_milp.mlu > 1. +. 1e-9);
  Alcotest.(check int) "two waypoints used" 2
    (Segments.max_waypoints two.Wpo_milp.waypoints)

let test_wpo_milp_respects_candidates () =
  let inst = tiny_instance () in
  let net = inst.Instances.Gap_instances.network in
  let g = net.Network.graph in
  (* With no usable candidates the MILP must return direct routing. *)
  let r = Wpo_milp.solve ~candidates:[] g (Weights.unit g) net.Network.demands in
  Alcotest.(check bool) "all none" true
    (Array.for_all (fun w -> w = []) r.Wpo_milp.waypoints);
  let direct = Ecmp.mlu_of g (Weights.unit g) net.Network.demands in
  checkf6 "direct mlu" direct r.Wpo_milp.mlu

(* ------------------------------------------------------------------ *)
(* Failures                                                            *)
(* ------------------------------------------------------------------ *)

let square () =
  (* bidirected square 0-1-3-2-0, all caps 10 *)
  Digraph.of_edges ~n:4
    [ (0, 1, 10.); (1, 0, 10.); (1, 3, 10.); (3, 1, 10.); (0, 2, 10.);
      (2, 0, 10.); (2, 3, 10.); (3, 2, 10.) ]

let test_without_edges () =
  let g = square () in
  let g', mapping = Failures.without_edges g [ 0; 1 ] in
  Alcotest.(check int) "two fewer edges" 6 (Digraph.edge_count g');
  Alcotest.(check int) "mapping skips removed" 2 mapping.(0)

let test_twin () =
  let g = square () in
  Alcotest.(check (option int)) "twin of 0" (Some 1) (Failures.twin g 0);
  let g2 = Digraph.of_edges ~n:2 [ (0, 1, 1.) ] in
  Alcotest.(check (option int)) "no twin" None (Failures.twin g2 0)

let test_single_failures () =
  let g = square () in
  let demands = [| Network.demand 0 3 8. |] in
  let outs = Failures.single_failures g (Weights.unit g) demands in
  (* Four undirected links. *)
  Alcotest.(check int) "four failure scenarios" 4 (List.length outs);
  List.iter
    (fun o ->
      Alcotest.(check int) "still connected" 0 o.Failures.disconnected;
      (* After any single link-pair failure one 2-hop path remains:
         all 8 units on capacity-10 links. *)
      Alcotest.(check (float 1e-9)) "mlu" 0.8 o.Failures.mlu)
    outs

let test_failure_disconnects () =
  let g = Digraph.of_edges ~n:2 [ (0, 1, 10.) ] in
  let demands = [| Network.demand 0 1 1. |] in
  let o = Failures.worst_case ~fail_pairs:false g (Weights.unit g) demands in
  Alcotest.(check int) "disconnected" 1 o.Failures.disconnected

let test_worst_case_failure () =
  (* Asymmetric: failing the fat path must be the worst case. *)
  let g =
    Digraph.of_edges ~n:3 [ (0, 1, 10.); (1, 2, 10.); (0, 2, 1.) ]
  in
  let demands = [| Network.demand 0 2 5. |] in
  let o = Failures.worst_case ~fail_pairs:false g [| 1.; 1.; 1. |] demands in
  (* Failing (0,2) leaves MLU 0.5; failing (0,1) or (1,2) pushes all 5
     onto the capacity-1 link: MLU 5. *)
  Alcotest.(check (float 1e-9)) "worst mlu" 5. o.Failures.mlu

let test_failures_with_waypoints () =
  let g = square () in
  let demands = [| Network.demand 0 3 4. |] in
  let wps = [| [ 1 ] |] in
  let outs = Failures.single_failures ~waypoints:wps g (Weights.unit g) demands in
  List.iter
    (fun o -> Alcotest.(check int) "routable" 0 o.Failures.disconnected)
    outs

let test_single_failures_matches_rebuild () =
  (* The engine sweep (persistent evaluator, disable_edge + undo) must
     reproduce the historical rebuild-the-subgraph path case by case —
     same edges, same disconnection counts, same MLUs — on a real
     topology, with and without waypoints. *)
  let g = Topology.Datasets.abilene () in
  let demands =
    Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:7 ~flows_per_pair:2 g
  in
  let w = Weights.random ~seed:11 ~wmax:8 g in
  let wpo = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) g w demands in
  List.iter
    (fun waypoints ->
      let engine = Failures.single_failures ?waypoints g w demands in
      let rebuild = Failures.single_failures_rebuild ?waypoints g w demands in
      Alcotest.(check int) "same case count" (List.length rebuild)
        (List.length engine);
      List.iter2
        (fun (a : Failures.outcome) (b : Failures.outcome) ->
          Alcotest.(check int) "same edge" b.Failures.edge a.Failures.edge;
          Alcotest.(check int) "same disconnected" b.Failures.disconnected
            a.Failures.disconnected;
          if Float.is_nan b.Failures.mlu then
            Alcotest.(check bool) "nan mlu" true (Float.is_nan a.Failures.mlu)
          else
            Alcotest.(check (float 1e-9)) "same mlu" b.Failures.mlu
              a.Failures.mlu)
        engine rebuild)
    [ None; Some (Segments.of_single wpo.Greedy_wpo.waypoints) ]

let test_severity_total_order () =
  (* compare_severity must be a total order even on nan MLUs: any
     disconnection beats any MLU, and a (defensive) nan MLU on a
     connected outcome sorts above every number. *)
  let o ~edge ~mlu ~disconnected = { Failures.edge; mlu; disconnected } in
  let disc = o ~edge:0 ~mlu:nan ~disconnected:2 in
  let high = o ~edge:1 ~mlu:1e9 ~disconnected:0 in
  let low = o ~edge:2 ~mlu:0.5 ~disconnected:0 in
  let nan_conn = o ~edge:3 ~mlu:nan ~disconnected:0 in
  Alcotest.(check bool) "disconnection beats any mlu" true
    (Failures.compare_severity disc high > 0);
  Alcotest.(check bool) "nan above every number" true
    (Failures.compare_severity nan_conn high > 0);
  Alcotest.(check bool) "plain mlu order" true
    (Failures.compare_severity high low > 0);
  Alcotest.(check int) "reflexive" 0 (Failures.compare_severity disc disc);
  Alcotest.(check bool) "worse picks severe" true
    (Failures.worse low disc == disc);
  Alcotest.(check bool) "worse keeps first on tie" true
    (Failures.worse low low == low)

(* ------------------------------------------------------------------ *)
(* Reoptimization                                                      *)
(* ------------------------------------------------------------------ *)

let test_churn () =
  let c =
    Reopt.churn_between ~deployed_weights:[| 1; 2; 3 |]
      ~deployed_waypoints:[| []; [ 1 ] |] [| 1; 5; 3 |] [| []; [ 2 ] |]
  in
  Alcotest.(check int) "weight changes" 1 c.Reopt.weight_changes;
  Alcotest.(check int) "waypoint changes" 1 c.Reopt.waypoint_changes

let test_reopt_never_worse () =
  let inst = Instances.Gap_instances.instance1 ~m:5 in
  let net = inst.Instances.Gap_instances.network in
  let g = net.Network.graph in
  let deployed = Array.make (Digraph.edge_count g) 1 in
  let deployed_wps = Segments.none net.Network.demands in
  let deployed_mlu =
    Ecmp.mlu_of ~waypoints:deployed_wps g (Weights.of_ints deployed)
      net.Network.demands
  in
  let r =
    Reopt.reoptimize
      ~ls_params:{ Local_search.default_params with max_evals = 150; seed = 3 }
      ~max_weight_changes:3 ~deployed_weights:deployed
      ~deployed_waypoints:deployed_wps g net.Network.demands
  in
  Alcotest.(check bool) "never worse" true (r.Reopt.mlu <= deployed_mlu +. 1e-9);
  Alcotest.(check bool) "respects weight budget" true
    (r.Reopt.churn.Reopt.weight_changes <= 3);
  (* The budget is on the returned vector itself, not just the reported
     churn: count the links that actually differ from the deployment. *)
  let differing = ref 0 in
  Array.iteri
    (fun e w -> if w <> deployed.(e) then incr differing)
    r.Reopt.weights;
  Alcotest.(check bool) "at most budget links differ" true (!differing <= 3);
  Alcotest.(check int) "reported churn counts the differing links" !differing
    r.Reopt.churn.Reopt.weight_changes;
  (* The reported MLU must re-evaluate. *)
  checkf6 "consistent"
    (Ecmp.mlu_of ~waypoints:r.Reopt.waypoints g (Weights.of_ints r.Reopt.weights)
       net.Network.demands)
    r.Reopt.mlu

let test_reopt_zero_budget_keeps_weights () =
  let g = diamond () in
  let demands = [| Network.demand 0 3 4. |] in
  let deployed = [| 1; 1; 2; 2 |] in
  let r =
    Reopt.reoptimize
      ~ls_params:{ Local_search.default_params with max_evals = 80; seed = 1 }
      ~max_weight_changes:0 ~deployed_weights:deployed
      ~deployed_waypoints:(Segments.none demands) g demands
  in
  Alcotest.(check int) "no weight changes" 0 r.Reopt.churn.Reopt.weight_changes;
  Alcotest.(check bool) "weights untouched" true (r.Reopt.weights = deployed)

let test_reopt_frozen_edges () =
  (* Frozen (failed) links: never re-weighted, absent from the routing,
     and the reported MLU matches a from-scratch evaluation on the
     surviving subgraph. *)
  let g = square () in
  let demands = [| Network.demand 0 3 8. |] in
  let deployed = [| 1; 1; 1; 1; 1; 1; 1; 1 |] in
  let frozen = [ 0; 1 ] in
  let r =
    Reopt.reoptimize
      ~ls_params:{ Local_search.default_params with max_evals = 120; seed = 2 }
      ~max_weight_changes:2 ~frozen_edges:frozen ~deployed_weights:deployed
      ~deployed_waypoints:(Segments.none demands) g demands
  in
  List.iter
    (fun e ->
      Alcotest.(check int) "frozen edge keeps deployed weight" deployed.(e)
        r.Reopt.weights.(e))
    frozen;
  Alcotest.(check bool) "respects weight budget" true
    (r.Reopt.churn.Reopt.weight_changes <= 2);
  let oracle_mlu, disc =
    Failures.rebuild_outcome ~waypoints:r.Reopt.waypoints g
      (Weights.of_ints r.Reopt.weights) demands ~removed:frozen
  in
  Alcotest.(check int) "still routable" 0 disc;
  Alcotest.(check (float 1e-9)) "mlu matches surviving subgraph" oracle_mlu
    r.Reopt.mlu;
  (* And never worse than the deployed setting on that subgraph. *)
  let deployed_mlu, _ =
    Failures.rebuild_outcome ~waypoints:(Segments.none demands) g
      (Weights.of_ints deployed) demands ~removed:frozen
  in
  Alcotest.(check bool) "never worse than deployed" true
    (r.Reopt.mlu <= deployed_mlu +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Demand generation                                                   *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* USPR MILP (the paper's MILP formulation, single-path regime)        *)
(* ------------------------------------------------------------------ *)

let test_uspr_lwo_diamond () =
  (* One demand of 2 over two capacity-10 two-hop paths; a single path
     gives MLU 0.2 and the MILP must prove it. *)
  let g = diamond () in
  let r = Uspr_milp.lwo g [| Network.demand 0 3 2. |] in
  Alcotest.(check bool) "exact" true r.Uspr_milp.exact;
  checkf6 "mlu" 0.2 r.Uspr_milp.mlu;
  (* The returned weights must induce exactly that routing under ECMP
     (the epsilon margin forbids ties). *)
  checkf6 "ecmp re-evaluation" 0.2
    (Ecmp.mlu_of g r.Uspr_milp.weights [| Network.demand 0 3 2. |])

let test_uspr_lwo_cannot_split () =
  (* All m demands of instance 1 share (s, t): without waypoints USPR
     forces them onto one path, so the optimum is m (vs ECMP's m/2). *)
  let inst = Instances.Gap_instances.instance1 ~m:3 in
  let net = inst.Instances.Gap_instances.network in
  let r = Uspr_milp.lwo net.Network.graph net.Network.demands in
  Alcotest.(check bool) "exact" true r.Uspr_milp.exact;
  checkf6 "single-path optimum is m" 3. r.Uspr_milp.mlu

let test_uspr_joint_recovers_opt () =
  (* With one waypoint per demand the MILP reaches the Lemma 3.5
     optimum of 1 — the strongest form of the paper's point: under
     unique-path routing waypoints are the ONLY way to separate demands
     of the same pair. *)
  let inst = Instances.Gap_instances.instance1 ~m:3 in
  let net = inst.Instances.Gap_instances.network in
  let j = Uspr_milp.joint ~max_combos:200 net.Network.graph net.Network.demands in
  Alcotest.(check bool) "exact" true j.Uspr_milp.setting.Uspr_milp.exact;
  checkf6 "joint = 1" 1. j.Uspr_milp.setting.Uspr_milp.mlu;
  checkf6 "setting re-evaluates to 1" 1.
    (Ecmp.mlu_of ~waypoints:j.Uspr_milp.waypoints net.Network.graph
       j.Uspr_milp.setting.Uspr_milp.weights net.Network.demands)

let test_uspr_weights_in_range () =
  let g = diamond () in
  let r = Uspr_milp.lwo ~wmax:5. g [| Network.demand 0 3 1. |] in
  Array.iter
    (fun w ->
      Alcotest.(check bool) "w in [1, wmax]" true (w >= 1. -. 1e-6 && w <= 5. +. 1e-6))
    r.Uspr_milp.weights

let test_uspr_joint_combo_guard () =
  let inst = Instances.Gap_instances.instance1 ~m:5 in
  let net = inst.Instances.Gap_instances.network in
  (match Uspr_milp.joint ~max_combos:10 net.Network.graph net.Network.demands with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected combo guard")

let test_uspr_unroutable () =
  let g = Digraph.of_edges ~n:3 [ (0, 1, 1.) ] in
  (match Uspr_milp.lwo g [| Network.demand 0 2 1. |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure")

(* ------------------------------------------------------------------ *)
(* Multi-waypoint greedy and iterated joint (paper §8 extensions)      *)
(* ------------------------------------------------------------------ *)

let test_multi_round_one_matches_single () =
  let inst = Instances.Gap_instances.instance1 ~m:5 in
  let net = inst.Instances.Gap_instances.network in
  let w = inst.Instances.Gap_instances.joint_weights in
  let single = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) net.Network.graph w net.Network.demands in
  let multi =
    Greedy_wpo.optimize_multi_ctx (Obs.Ctx.default ()) ~rounds:1 net.Network.graph w net.Network.demands
  in
  checkf6 "same mlu" single.Greedy_wpo.mlu multi.Greedy_wpo.mlu

let test_multi_rounds_monotone () =
  let inst = Instances.Gap_instances.instance3 ~m:4 in
  let net = inst.Instances.Gap_instances.network in
  let w = inst.Instances.Gap_instances.joint_weights in
  let r =
    Greedy_wpo.optimize_multi_ctx (Obs.Ctx.default ()) ~rounds:3 net.Network.graph w net.Network.demands
  in
  let rec check_desc = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "rounds never hurt" true (b <= a +. 1e-9);
      check_desc rest
    | _ -> ()
  in
  check_desc r.Greedy_wpo.round_mlu;
  Alcotest.(check int) "three rounds recorded" 3 (List.length r.Greedy_wpo.round_mlu);
  Alcotest.(check bool) "at most 3 waypoints" true
    (Segments.max_waypoints r.Greedy_wpo.setting <= 3)

let test_multi_two_waypoints_help_instance3 () =
  (* On instance 3 a single waypoint per demand cannot reach MLU 1, but
     two can (Lemma 3.11); the greedy should close most of the gap. *)
  let inst = Instances.Gap_instances.instance3 ~m:3 in
  let net = inst.Instances.Gap_instances.network in
  let w = inst.Instances.Gap_instances.joint_weights in
  let one = Greedy_wpo.optimize_multi_ctx (Obs.Ctx.default ()) ~rounds:1 net.Network.graph w net.Network.demands in
  let two = Greedy_wpo.optimize_multi_ctx (Obs.Ctx.default ()) ~rounds:2 net.Network.graph w net.Network.demands in
  Alcotest.(check bool)
    (Printf.sprintf "2 rounds (%g) <= 1 round (%g)" two.Greedy_wpo.mlu one.Greedy_wpo.mlu)
    true
    (two.Greedy_wpo.mlu <= one.Greedy_wpo.mlu +. 1e-9)

let test_greedy_passes_never_worse () =
  let g = Topology.Datasets.abilene () in
  let demands = Demand_gen.mcf_synthetic ~epsilon:0.05 ~seed:3 ~flows_per_pair:2 g in
  let w = Weights.inverse_capacity g in
  let p1 = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) ~passes:1 g w demands in
  let p2 = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) ~passes:2 g w demands in
  Alcotest.(check bool)
    (Printf.sprintf "pass 2 (%g) <= pass 1 (%g)" p2.Greedy_wpo.mlu p1.Greedy_wpo.mlu)
    true
    (p2.Greedy_wpo.mlu <= p1.Greedy_wpo.mlu +. 1e-9)

let test_iterated_joint () =
  let inst = Instances.Gap_instances.instance1 ~m:4 in
  let net = inst.Instances.Gap_instances.network in
  let ls_params = { Local_search.default_params with max_evals = 200; seed = 9 } in
  let r = Joint.optimize_iterated_ctx (Obs.Ctx.default ()) ~ls_params ~iterations:2 net.Network.graph net.Network.demands in
  Alcotest.(check int) "four stages" 4 (List.length r.Joint.stage_mlu);
  let check =
    Ecmp.mlu_of ~waypoints:r.Joint.waypoints net.Network.graph r.Joint.weights
      net.Network.demands
  in
  checkf6 "reported mlu is consistent" r.Joint.mlu check;
  (* The best over stages is what is returned. *)
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "best of stages" true (r.Joint.mlu <= v +. 1e-9))
    r.Joint.stage_mlu

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let arb_te_instance =
  (* Random strongly-connected graph + demands + random waypoints. *)
  let gen =
    QCheck.Gen.(
      int_range 4 9 >>= fun n ->
      int_range 0 (2 * n) >>= fun extra ->
      int_range 1 5 >>= fun k ->
      int_range 0 1000 >>= fun seed -> return (n, extra, k, seed))
  in
  QCheck.make gen ~print:(fun (n, e, k, s) ->
      Printf.sprintf "n=%d extra=%d k=%d seed=%d" n e k s)

let build_te (n, extra, k, seed) =
  let st = Random.State.make [| seed; 77 |] in
  let edges = ref [] in
  for i = 0 to n - 1 do
    edges := (i, (i + 1) mod n, 1. +. Random.State.float st 9.) :: !edges
  done;
  for _ = 1 to extra do
    let u = Random.State.int st n in
    let v = Random.State.int st n in
    if u <> v then edges := (u, v, 1. +. Random.State.float st 9.) :: !edges
  done;
  let g = Digraph.of_edges ~n !edges in
  let demands =
    Array.init k (fun _ ->
        let s = Random.State.int st n in
        let t = (s + 1 + Random.State.int st (n - 1)) mod n in
        Network.demand s t (0.5 +. Random.State.float st 2.))
  in
  let wps =
    Array.map
      (fun _ ->
        if Random.State.bool st then [ Random.State.int st n ] else [])
      demands
  in
  (g, demands, wps)

let prop_waypoints_equal_expansion =
  QCheck.Test.make ~name:"waypointed loads = loads of expanded demands" ~count:150
    arb_te_instance (fun spec ->
      let g, demands, wps = build_te spec in
      let w = Weights.unit g in
      let ctx1 = Ecmp.make g w and ctx2 = Ecmp.make g w in
      let a = Ecmp.loads ~waypoints:wps ctx1 demands in
      let b = Ecmp.loads ctx2 (Segments.expand demands wps) in
      Array.for_all2 (fun x y -> abs_float (x -. y) <= 1e-9 *. (1. +. x)) a b)

let prop_unit_load_conserves =
  QCheck.Test.make ~name:"unit load delivers one unit" ~count:150 arb_te_instance
    (fun spec ->
      let g, demands, _ = build_te spec in
      let ctx = Ecmp.make g (Weights.unit g) in
      Array.for_all
        (fun (d : Network.demand) ->
          let u = Ecmp.unit_load ctx ~src:d.Network.src ~dst:d.Network.dst in
          let into =
            ref 0.
          in
          Array.iteri
            (fun i e ->
              if Digraph.dst g e = d.Network.dst then into := !into +. u.Ecmp.flows.(i))
            u.Ecmp.edges;
          abs_float (!into -. 1.) <= 1e-9)
        demands)

let prop_aggregate_invariant =
  QCheck.Test.make ~name:"MLU invariant under demand aggregation" ~count:100
    arb_te_instance (fun spec ->
      let g, demands, _ = build_te spec in
      let w = Weights.inverse_capacity g in
      let a = Ecmp.mlu_of g w demands in
      let b = Ecmp.mlu_of g w (Network.aggregate demands) in
      abs_float (a -. b) <= 1e-9 *. (1. +. a))

let prop_lwo_apx_guarantee =
  (* Theorem 5.4: the ECMP flow realized by the Algorithm-1 weights is
     within n * ceil(ln n) of the max flow.  (On merging DAGs the
     realized even-split flow may differ slightly from ec(s) in either
     direction — Definition 5.1 reasons per node — so we check the
     theorem's guarantee on the *realized* value, plus that ec(s) tracks
     it within the same factor.) *)
  QCheck.Test.make ~name:"LWO-APX satisfies the Theorem 5.4 guarantee" ~count:80
    arb_te_instance (fun spec ->
      let g, demands, _ = build_te spec in
      let d = demands.(0) in
      let r = Lwo_apx.solve g ~source:d.Network.src ~target:d.Network.dst in
      let realized =
        Ecmp.max_es_flow_value g r.Lwo_apx.weights ~src:d.Network.src
          ~dst:d.Network.dst
      in
      let n = float_of_int (Digraph.node_count g) in
      let bound = (n *. ceil (log n)) +. 1. in
      realized > 0.
      && r.Lwo_apx.max_flow_value <= (bound *. realized) +. 1e-6
      && Lwo_apx.approximation_ratio r <= bound
      && Lwo_apx.approximation_ratio r >= 1. -. 1e-9
      && realized <= r.Lwo_apx.max_flow_value +. 1e-6)

let prop_greedy_never_worse =
  QCheck.Test.make ~name:"GreedyWPO never increases MLU" ~count:80 arb_te_instance
    (fun spec ->
      let g, demands, _ = build_te spec in
      let r = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) g (Weights.unit g) demands in
      r.Greedy_wpo.mlu <= r.Greedy_wpo.initial_mlu +. 1e-9)

let prop_opt_lower_bounds_everything =
  QCheck.Test.make ~name:"OPT lower-bounds heuristic MLUs" ~count:40 arb_te_instance
    (fun spec ->
      let g, demands, _ = build_te spec in
      let comms =
        Array.map
          (fun (d : Network.demand) ->
            { Mcf.src = d.Network.src; dst = d.Network.dst; demand = d.Network.size })
          demands
      in
      let opt = Mcf.opt_mlu_lp g (Mcf.aggregate comms) in
      let heur = Ecmp.mlu_of g (Weights.inverse_capacity g) demands in
      opt <= heur +. 1e-6)

let test_select_pairs () =
  let g = diamond () in
  let pairs = Demand_gen.select_pairs ~seed:1 ~frac:0.5 g in
  Alcotest.(check bool) "non-empty" true (Array.length pairs > 0);
  Array.iter
    (fun (s, t) ->
      Alcotest.(check bool) "distinct" true (s <> t);
      Alcotest.(check bool) "reachable" true (Paths.reachable g ~source:s).(t))
    pairs

let test_mcf_synthetic_normalized () =
  let g = diamond () in
  let demands = Demand_gen.mcf_synthetic ~seed:3 ~flows_per_pair:2 g in
  Alcotest.(check bool) "non-empty" true (Array.length demands > 0);
  let comms =
    Array.map
      (fun (d : Network.demand) ->
        { Mcf.src = d.Network.src; dst = d.Network.dst; demand = d.Network.size })
      demands
  in
  let opt = Mcf.opt_mlu g comms in
  Alcotest.(check (float 0.02)) "OPT = 1 after scaling" 1. opt

let test_gravity_all_pairs () =
  let g = diamond () in
  let demands = Demand_gen.gravity ~seed:5 g in
  (* diamond has 4 nodes; pairs reachable: from 0: 3, from 1: 1 (3), from 2: 1.
     gravity must hit all of them. *)
  let pairs =
    Array.to_list demands
    |> List.map (fun (d : Network.demand) -> (d.Network.src, d.Network.dst))
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "all reachable pairs" 5 (List.length pairs)

let () =
  Alcotest.run "te"
    [
      ( "network",
        [
          Alcotest.test_case "demand validation" `Quick test_demand_validation;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "totals and targets" `Quick test_total_and_targets;
          Alcotest.test_case "is routable" `Quick test_is_routable;
        ] );
      ( "weights",
        [
          Alcotest.test_case "unit" `Quick test_unit_weights;
          Alcotest.test_case "inverse capacity" `Quick test_inverse_capacity;
          Alcotest.test_case "round to range" `Quick test_round_to_range;
          Alcotest.test_case "random weights" `Quick test_random_weights;
        ] );
      ( "ecmp",
        [
          Alcotest.test_case "even split" `Quick test_even_split;
          Alcotest.test_case "single path" `Quick test_single_path;
          Alcotest.test_case "recursive split" `Quick test_recursive_split;
          Alcotest.test_case "conservation" `Quick test_unit_load_conservation;
          Alcotest.test_case "unroutable" `Quick test_unroutable;
          Alcotest.test_case "waypoint routing" `Quick test_waypoint_routing;
          Alcotest.test_case "degenerate waypoints" `Quick test_degenerate_waypoints;
          Alcotest.test_case "mlu" `Quick test_mlu;
          Alcotest.test_case "max ES flow" `Quick test_max_es_flow;
          Alcotest.test_case "dag accessor" `Quick test_dag_accessor;
        ] );
      ( "segments",
        [
          Alcotest.test_case "endpoints" `Quick test_segment_endpoints;
          Alcotest.test_case "expand" `Quick test_expand;
        ] );
      ( "lwo-apx",
        [
          Alcotest.test_case "fig3a effective capacities" `Quick test_fig3a_effective_capacities;
          Alcotest.test_case "fig3b effective capacities" `Quick test_fig3b_effective_capacities;
          Alcotest.test_case "weights realize ec(s)" `Quick test_lwo_apx_realizes_es_flow;
          Alcotest.test_case "instance 2 ES-flow = 1" `Quick test_lwo_apx_instance2;
          Alcotest.test_case "weights-for-dag" `Quick test_weights_for_dag_property;
          Alcotest.test_case "Theorem 4.2 uniform caps" `Quick test_uniform_optimal_weights;
          Alcotest.test_case "Theorem 4.3 widest path" `Quick test_widest_path_weights;
        ] );
      ( "local-search",
        [
          Alcotest.test_case "phi monotone" `Quick test_phi_monotone;
          Alcotest.test_case "phi values" `Quick test_phi_slope_values;
          Alcotest.test_case "improves and bounded" `Quick test_local_search_improves;
          Alcotest.test_case "deterministic per seed" `Quick test_local_search_deterministic;
        ] );
      ( "greedy-wpo",
        [
          Alcotest.test_case "never worse" `Quick test_greedy_wpo_never_worse;
          Alcotest.test_case "halves MLU under lemma weights" `Quick
            test_greedy_wpo_improves_under_joint_weights;
          Alcotest.test_case "exact WPO rediscovers lemma 3.5" `Quick
            test_exact_wpo_finds_joint_waypoints;
          Alcotest.test_case "orders" `Quick test_greedy_wpo_orders;
        ] );
      ( "joint-heur",
        [
          Alcotest.test_case "stages" `Quick test_joint_heur_stages;
          Alcotest.test_case "full pipeline" `Quick test_joint_heur_full_pipeline;
        ] );
      ( "exact",
        [
          Alcotest.test_case "ordering" `Quick test_exact_ordering;
          Alcotest.test_case "joint reaches opt" `Quick test_exact_joint_achieves_opt;
          Alcotest.test_case "too large guard" `Quick test_exact_too_large;
          Alcotest.test_case "wpo milp = brute force" `Quick test_wpo_milp_matches_exact;
          Alcotest.test_case "wpo milp candidates" `Quick test_wpo_milp_respects_candidates;
          Alcotest.test_case "wpo milp W=2 (Lemma 3.11)" `Quick test_wpo_milp_two_waypoints;
        ] );
      ( "demand-gen",
        [
          Alcotest.test_case "select pairs" `Quick test_select_pairs;
          Alcotest.test_case "mcf synthetic normalized" `Quick test_mcf_synthetic_normalized;
          Alcotest.test_case "gravity all pairs" `Quick test_gravity_all_pairs;
        ] );
      ( "failures",
        [
          Alcotest.test_case "without edges" `Quick test_without_edges;
          Alcotest.test_case "twin" `Quick test_twin;
          Alcotest.test_case "single failures" `Quick test_single_failures;
          Alcotest.test_case "disconnection" `Quick test_failure_disconnects;
          Alcotest.test_case "worst case" `Quick test_worst_case_failure;
          Alcotest.test_case "with waypoints" `Quick test_failures_with_waypoints;
          Alcotest.test_case "engine = rebuild oracle" `Quick
            test_single_failures_matches_rebuild;
          Alcotest.test_case "severity total order" `Quick
            test_severity_total_order;
        ] );
      ( "reopt",
        [
          Alcotest.test_case "churn" `Quick test_churn;
          Alcotest.test_case "never worse" `Quick test_reopt_never_worse;
          Alcotest.test_case "zero budget" `Quick test_reopt_zero_budget_keeps_weights;
          Alcotest.test_case "frozen edges" `Quick test_reopt_frozen_edges;
        ] );
      ( "uspr-milp",
        [
          Alcotest.test_case "diamond single path" `Quick test_uspr_lwo_diamond;
          Alcotest.test_case "cannot split same pair" `Quick test_uspr_lwo_cannot_split;
          Alcotest.test_case "joint recovers opt" `Quick test_uspr_joint_recovers_opt;
          Alcotest.test_case "weights in range" `Quick test_uspr_weights_in_range;
          Alcotest.test_case "combo guard" `Quick test_uspr_joint_combo_guard;
          Alcotest.test_case "unroutable" `Quick test_uspr_unroutable;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "multi round 1 = single" `Quick test_multi_round_one_matches_single;
          Alcotest.test_case "multi rounds monotone" `Quick test_multi_rounds_monotone;
          Alcotest.test_case "two waypoints help (I3)" `Quick test_multi_two_waypoints_help_instance3;
          Alcotest.test_case "improvement passes" `Quick test_greedy_passes_never_worse;
          Alcotest.test_case "iterated joint" `Quick test_iterated_joint;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_waypoints_equal_expansion;
            prop_unit_load_conserves;
            prop_aggregate_invariant;
            prop_lwo_apx_guarantee;
            prop_greedy_never_worse;
            prop_opt_lower_bounds_everything;
          ] );
    ]
