(* Tests for the multi-commodity flow substrate (OPT). *)

open Netgraph

let checkf6 = Alcotest.(check (float 1e-6))

let parallel_links () =
  Digraph.of_edges ~n:2 [ (0, 1, 1.); (0, 1, 3.) ]

let test_commodity_validation () =
  Alcotest.check_raises "self" (Invalid_argument "Mcf.commodity: src = dst")
    (fun () -> ignore (Mcf.commodity 0 0 1.));
  Alcotest.check_raises "size" (Invalid_argument "Mcf.commodity: demand must be positive")
    (fun () -> ignore (Mcf.commodity 0 1 0.))

let test_aggregate () =
  let a = Mcf.aggregate [| Mcf.commodity 0 1 1.; Mcf.commodity 0 1 2. |] in
  Alcotest.(check int) "merged" 1 (Array.length a);
  checkf6 "sum" 3. a.(0).Mcf.demand

let test_aggregate_order_independent () =
  (* The aggregated pair set (and hence the LP column order built from
     it) must not depend on the input permutation. *)
  let base =
    [| Mcf.commodity 3 1 0.5; Mcf.commodity 0 2 1.; Mcf.commodity 3 1 0.25;
       Mcf.commodity 0 1 2.; Mcf.commodity 2 0 1.5; Mcf.commodity 0 2 0.5 |]
  in
  let expect = Mcf.aggregate base in
  let st = Random.State.make [| 0xa6 |] in
  for _ = 1 to 20 do
    let shuffled = Array.copy base in
    for i = Array.length shuffled - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = shuffled.(i) in
      shuffled.(i) <- shuffled.(j);
      shuffled.(j) <- t
    done;
    let a = Mcf.aggregate shuffled in
    Alcotest.(check int) "same pair count" (Array.length expect) (Array.length a);
    Array.iteri
      (fun i c ->
        Alcotest.(check int) "src" expect.(i).Mcf.src c.Mcf.src;
        Alcotest.(check int) "dst" expect.(i).Mcf.dst c.Mcf.dst;
        checkf6 "demand" expect.(i).Mcf.demand c.Mcf.demand)
      a
  done;
  (* Sorted by (src, dst) under integer comparison. *)
  Array.iteri
    (fun i c ->
      if i > 0 then
        Alcotest.(check bool) "strictly ascending pairs" true
          (expect.(i - 1).Mcf.src < c.Mcf.src
          || (expect.(i - 1).Mcf.src = c.Mcf.src && expect.(i - 1).Mcf.dst < c.Mcf.dst)))
    expect

let test_lp_parallel () =
  (* Demand 2 over caps {1,3}: optimum spreads proportionally, U = 1/2. *)
  let g = parallel_links () in
  let u = Mcf.opt_mlu_lp g [| Mcf.commodity 0 1 2. |] in
  checkf6 "U" 0.5 u

let test_lp_two_commodities () =
  (* Shared bottleneck: 0->1 cap 2, 1->2 cap 2, demands 0->2 of 1 and
     1->2 of 1 -> U on (1,2) is 1. *)
  let g = Digraph.of_edges ~n:3 [ (0, 1, 2.); (1, 2, 2.) ] in
  let u = Mcf.opt_mlu_lp g [| Mcf.commodity 0 2 1.; Mcf.commodity 1 2 1. |] in
  checkf6 "U" 1. u

let test_lp_uses_both_paths () =
  let g = Digraph.of_edges ~n:4 [ (0, 1, 1.); (1, 3, 1.); (0, 2, 1.); (2, 3, 1.) ] in
  let u = Mcf.opt_mlu_lp g [| Mcf.commodity 0 3 2. |] in
  checkf6 "split perfectly" 1. u

let test_single_pair_uses_maxflow () =
  let g = parallel_links () in
  let u = Mcf.opt_mlu g [| Mcf.commodity 0 1 2. |] in
  checkf6 "D/maxflow" 0.5 u

let test_unroutable_reported () =
  let g = Digraph.of_edges ~n:3 [ (0, 1, 1.) ] in
  (match Mcf.opt_mlu g [| Mcf.commodity 0 2 1. |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure")

let test_gk_close_to_lp () =
  (* GK must land within ~15% of the LP optimum on a multi-commodity
     instance with distinct sources. *)
  let g =
    Digraph.of_edges ~n:5
      [ (0, 1, 4.); (1, 2, 3.); (0, 3, 2.); (3, 2, 2.); (1, 3, 1.); (3, 4, 3.);
        (2, 4, 2.) ]
  in
  let comms = [| Mcf.commodity 0 2 2.; Mcf.commodity 1 4 1.; Mcf.commodity 0 4 1. |] in
  let exact = Mcf.opt_mlu_lp g comms in
  let lambda = Mcf.max_concurrent_flow ~epsilon:0.05 g comms in
  let approx = 1. /. lambda in
  Alcotest.(check bool) "lambda lower-bounds 1/OPT" true (approx >= exact -. 1e-6);
  Alcotest.(check bool)
    (Printf.sprintf "within 15%% (exact %g approx %g)" exact approx)
    true
    (approx <= exact *. 1.15)

let test_gk_single_commodity () =
  let g = parallel_links () in
  let lambda = Mcf.max_concurrent_flow ~epsilon:0.05 g [| Mcf.commodity 0 1 2. |] in
  Alcotest.(check bool)
    (Printf.sprintf "lambda ~ 2 (got %g)" lambda)
    true
    (lambda >= 1.7 && lambda <= 2.0 +. 1e-9)

let test_dispatch_consistency () =
  (* opt_mlu via LP and via GK agree on a medium instance. *)
  let g =
    Digraph.of_edges ~n:6
      [ (0, 1, 2.); (1, 2, 2.); (2, 5, 2.); (0, 3, 2.); (3, 4, 2.); (4, 5, 2.);
        (1, 4, 1.); (3, 2, 1.) ]
  in
  let comms = [| Mcf.commodity 0 5 2.; Mcf.commodity 1 5 1. |] in
  let lp = Mcf.opt_mlu_lp g comms in
  let gk = 1. /. Mcf.max_concurrent_flow ~epsilon:0.05 g comms in
  Alcotest.(check bool)
    (Printf.sprintf "agree within 15%% (lp %g gk %g)" lp gk)
    true
    (gk >= lp -. 1e-9 && gk <= lp *. 1.15)

let test_opt_on_instance2 () =
  (* OPT(instance 2) = 1: the harmonic demands exactly fill the
     harmonic parallel paths. *)
  let inst = Instances.Gap_instances.instance2 ~m:7 in
  let net = inst.Instances.Gap_instances.network in
  let comms =
    Array.map
      (fun (d : Te.Network.demand) ->
        Mcf.commodity d.Te.Network.src d.Te.Network.dst d.Te.Network.size)
      net.Te.Network.demands
  in
  checkf6 "OPT = 1" 1. (Mcf.opt_mlu net.Te.Network.graph comms)

let test_gk_multi_source () =
  (* Commodities from several sources exercise the per-source grouping. *)
  let g =
    Digraph.of_edges ~n:4
      [ (0, 1, 2.); (1, 3, 2.); (0, 2, 2.); (2, 3, 2.); (1, 2, 1.); (2, 1, 1.) ]
  in
  let comms =
    [| Mcf.commodity 0 3 2.; Mcf.commodity 1 3 1.; Mcf.commodity 2 3 1. |]
  in
  let exact = Mcf.opt_mlu_lp g comms in
  let gk = 1. /. Mcf.max_concurrent_flow ~epsilon:0.05 g comms in
  Alcotest.(check bool)
    (Printf.sprintf "within 15%% (lp %g gk %g)" exact gk)
    true
    (gk >= exact -. 1e-9 && gk <= exact *. 1.15)

let test_transportation_lp () =
  (* A classic 2x2 transportation problem solved through the min-MLU
     LP on a bipartite graph with a super source and sink of generous
     capacity; the bottleneck is the 1-capacity middle links. *)
  let g =
    Digraph.of_edges ~n:6
      [ (0, 1, 100.); (0, 2, 100.); (1, 3, 1.); (1, 4, 1.); (2, 3, 1.);
        (2, 4, 1.); (3, 5, 100.); (4, 5, 100.) ]
  in
  let u = Mcf.opt_mlu_lp g [| Mcf.commodity 0 5 4. |] in
  checkf6 "four units over four unit links" 1. u

(* Property: LP OPT is never larger than the MLU of any concrete routing
   (here: ECMP under unit weights computed through the Te library). *)
let prop_opt_lower_bounds_ecmp =
  QCheck.Test.make ~name:"OPT <= ECMP MLU" ~count:60
    (QCheck.make
       QCheck.Gen.(
         int_range 4 8 >>= fun n ->
         int_range 2 6 >>= fun k ->
         return (n, k))
       ~print:(fun (n, k) -> Printf.sprintf "n=%d k=%d" n k))
    (fun (n, k) ->
      let edges = ref [] in
      for i = 0 to n - 2 do
        edges := (i, i + 1, 2.) :: (i + 1, i, 2.) :: !edges
      done;
      edges := (0, n - 1, 1.) :: !edges;
      let g = Digraph.of_edges ~n !edges in
      let st = Random.State.make [| n; k |] in
      let comms =
        Array.init k (fun _ ->
            let s = Random.State.int st n in
            let t = (s + 1 + Random.State.int st (n - 1)) mod n in
            Mcf.commodity s t (0.5 +. Random.State.float st 1.))
      in
      let opt = Mcf.opt_mlu_lp g comms in
      let demands =
        Array.map
          (fun c -> { Te.Network.src = c.Mcf.src; dst = c.Mcf.dst; size = c.Mcf.demand })
          comms
      in
      let ecmp = Te.Ecmp.mlu_of g (Te.Weights.unit g) demands in
      opt <= ecmp +. 1e-6)

(* Warm-basis re-solve over a drifting demand sequence: the serving
   loop's contract.  Each step perturbs only the demand sizes (same
   pair set, so the previous basis is structurally valid); the warm
   solve must reach the same objective as a cold solve to 1e-6, and —
   the point of carrying the basis at all — spend strictly fewer
   simplex pivots in total. *)
let test_warm_basis_drift () =
  let g = Topology.Datasets.abilene () in
  let demands =
    Te.Demand_gen.mcf_synthetic ~epsilon:0.15 ~seed:7 ~flows_per_pair:2 g
  in
  let base =
    Mcf.aggregate
      (Array.map
         (fun d ->
           Mcf.commodity d.Te.Network.src d.Te.Network.dst d.Te.Network.size)
         demands)
  in
  let drift step =
    (* smooth per-pair factors in [0.55, 1.45], different every step *)
    Array.mapi
      (fun i c ->
        let f =
          1. +. (0.45 *. sin (float_of_int ((step * 37) + (i * 13)) /. 7.))
        in
        Mcf.commodity c.Mcf.src c.Mcf.dst (c.Mcf.demand *. f))
      base
  in
  let warm_pivots = ref 0 and cold_pivots = ref 0 in
  let basis = ref None in
  for step = 1 to 20 do
    let comms = drift step in
    let cold = Mcf.opt_mlu_lp_warm_ext g comms in
    let warm = Mcf.opt_mlu_lp_warm_ext ?basis:!basis g comms in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "step %d: warm objective = cold" step)
      cold.Mcf.value warm.Mcf.value;
    Alcotest.(check bool) "cold solve reports cold" false cold.Mcf.warm;
    Alcotest.(check bool)
      (Printf.sprintf "step %d: warm solve reports warm" step)
      (step > 1) warm.Mcf.warm;
    warm_pivots := !warm_pivots + warm.Mcf.pivots;
    cold_pivots := !cold_pivots + cold.Mcf.pivots;
    basis := Some warm.Mcf.basis
  done;
  Alcotest.(check bool)
    (Printf.sprintf "warm pivots (%d) strictly below cold (%d)" !warm_pivots
       !cold_pivots)
    true
    (!warm_pivots < !cold_pivots)

(* The warm path must also feed the engine counters the serving bench
   reads: pivots recorded per solve, warm solves tallied. *)
let test_warm_solve_stats () =
  let g = parallel_links () in
  let comms = [| Mcf.commodity 0 1 2. |] in
  let stats = Engine.Stats.create () in
  let r = Mcf.opt_mlu_lp_warm_ext g comms in
  Engine.Stats.record_lp_solve stats ~pivots:r.Mcf.pivots;
  let r2 = Mcf.opt_mlu_lp_warm_ext ~basis:r.Mcf.basis g comms in
  Engine.Stats.record_lp_solve stats ~pivots:r2.Mcf.pivots;
  if r2.Mcf.warm then
    stats.Engine.Stats.lp_warm_solves <- stats.Engine.Stats.lp_warm_solves + 1;
  checkf6 "same objective" r.Mcf.value r2.Mcf.value;
  Alcotest.(check int) "two solves" 2 stats.Engine.Stats.lp_solves;
  Alcotest.(check int) "one warm" 1 stats.Engine.Stats.lp_warm_solves;
  Alcotest.(check bool) "warm re-solve needs no pivots beyond refactor" true
    (r2.Mcf.pivots <= r.Mcf.pivots)

let () =
  Alcotest.run "mcf"
    [
      ( "lp",
        [
          Alcotest.test_case "commodity validation" `Quick test_commodity_validation;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "aggregate order-independent" `Quick
            test_aggregate_order_independent;
          Alcotest.test_case "parallel links" `Quick test_lp_parallel;
          Alcotest.test_case "two commodities" `Quick test_lp_two_commodities;
          Alcotest.test_case "uses both paths" `Quick test_lp_uses_both_paths;
          Alcotest.test_case "single pair via maxflow" `Quick test_single_pair_uses_maxflow;
          Alcotest.test_case "unroutable" `Quick test_unroutable_reported;
          Alcotest.test_case "warm basis over drift" `Quick
            test_warm_basis_drift;
          Alcotest.test_case "warm solve stats" `Quick test_warm_solve_stats;
        ] );
      ( "garg-koenemann",
        [
          Alcotest.test_case "close to LP" `Quick test_gk_close_to_lp;
          Alcotest.test_case "single commodity" `Quick test_gk_single_commodity;
          Alcotest.test_case "dispatch consistency" `Quick test_dispatch_consistency;
          Alcotest.test_case "OPT on instance 2" `Quick test_opt_on_instance2;
          Alcotest.test_case "multi-source GK" `Quick test_gk_multi_source;
          Alcotest.test_case "transportation LP" `Quick test_transportation_lp;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_opt_lower_bounds_ecmp ]);
    ]
