(* Reproduce the paper's Nanonet validation (Figure 7) in the bundled
   hash-based ECMP simulator, and explore how the stream count changes
   the quality of hash-based splitting.

     dune exec examples/nanonet_sim.exe *)

let () =
  print_endline "Figure 7 defaults (4 demands, 32 streams each, 10 trials):";
  let s = Netsim.Nanonet.run () in
  List.iteri
    (fun i t ->
      Printf.printf "  trial %-2d  Joint %.4f   Weights %.4f\n" (i + 1)
        t.Netsim.Nanonet.joint t.Netsim.Nanonet.weights)
    s.Netsim.Nanonet.trials;
  Printf.printf
    "  medians: Joint %.4f, Weights %.4f (paper: ~1.014 and ~2.27)\n\n"
    s.Netsim.Nanonet.joint_median s.Netsim.Nanonet.weights_median;

  (* With more streams, per-flow hashing converges to the ideal even
     split and the Weights runs approach their fluid value of 2. *)
  print_endline "Hash-splitting quality vs stream count (Weights median):";
  List.iter
    (fun streams ->
      let s = Netsim.Nanonet.run ~streams_per_demand:streams ~noise:0. () in
      Printf.printf "  %5d streams/demand -> median %.4f (fluid limit: 2.0)\n"
        streams s.Netsim.Nanonet.weights_median)
    [ 4; 16; 64; 256; 1024 ]
