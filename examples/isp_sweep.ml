(* An ISP-style what-if sweep: how does the benefit of joint
   optimization change as the traffic grows?

     dune exec examples/isp_sweep.exe [topology]

   Scales an MCF-normalized demand matrix from 50% to 150% of capacity
   and tracks the MLU of the standard setting, optimized weights, and
   the joint optimization - the kind of headroom study an operator runs
   before a capacity upgrade. *)

open Te

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "Germany50" in
  let g =
    try Topology.Datasets.load name
    with Not_found ->
      Printf.eprintf "unknown topology %s\n" name;
      exit 2
  in
  Printf.printf "What-if sweep on %s (%d nodes, %d links)\n\n" name
    (Netgraph.Digraph.node_count g)
    (Netgraph.Digraph.edge_count g / 2);
  let base = Demand_gen.mcf_synthetic ~epsilon:0.1 ~seed:7 ~flows_per_pair:4 g in
  Printf.printf "%8s %16s %12s %12s %14s\n" "traffic" "InverseCapacity"
    "HeurOSPF" "JointHeur" "joint headroom";
  List.iter
    (fun scale ->
      let demands =
        Array.map
          (fun d -> { d with Network.size = d.Network.size *. scale })
          base
      in
      let inv = Ecmp.mlu_of g (Weights.inverse_capacity g) demands in
      let ls_params =
        { Local_search.default_params with max_evals = 600; seed = 7 }
      in
      let ls = Local_search.optimize_ctx (Obs.Ctx.default ()) ~params:ls_params g demands in
      let joint = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params g demands in
      (* Headroom: how much more traffic fits before the joint setting
         congests (MLU 1). *)
      let headroom = (1. /. joint.Joint.mlu -. 1.) *. 100. in
      Printf.printf "%7.0f%% %16.3f %12.3f %12.3f %13.1f%%\n" (scale *. 100.)
        inv ls.Local_search.mlu joint.Joint.mlu headroom)
    [ 0.5; 0.75; 1.0; 1.25; 1.5 ]
