(* Beyond the paper (§8 future work): how do optimized settings behave
   under link failures and demand shifts, and what does re-optimization
   cost in reconfiguration churn?

     dune exec examples/resilience.exe *)

open Te

let () =
  let g = Topology.Datasets.abilene () in
  let demands = Demand_gen.mcf_synthetic ~epsilon:0.05 ~seed:11 ~flows_per_pair:2 g in
  let ls_params = { Local_search.default_params with max_evals = 800; seed = 11 } in
  let joint = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params g demands in
  Printf.printf "Abilene, optimized joint setting: MLU %.3f\n\n" joint.Joint.mlu;

  (* 1. Single-link failure sweep with the setting frozen. *)
  let outcomes =
    Failures.single_failures ~waypoints:joint.Joint.waypoints g
      joint.Joint.weights demands
  in
  let ok = List.filter (fun o -> o.Failures.disconnected = 0) outcomes in
  let disconnecting = List.length outcomes - List.length ok in
  let worst =
    Failures.worst_case ~waypoints:joint.Joint.waypoints g joint.Joint.weights
      demands
  in
  Printf.printf
    "Failure sweep: %d link-pair failures, %d leave demands disconnected.\n"
    (List.length outcomes) disconnecting;
  (match worst.Failures.disconnected with
  | 0 ->
    Printf.printf "Worst surviving failure: %s -> %s, post-failure MLU %.3f\n\n"
      (Netgraph.Digraph.node_name g (Netgraph.Digraph.src g worst.Failures.edge))
      (Netgraph.Digraph.node_name g (Netgraph.Digraph.dst g worst.Failures.edge))
      worst.Failures.mlu
  | k ->
    Printf.printf "Worst failure (%s -> %s) strands %d demands.\n\n"
      (Netgraph.Digraph.node_name g (Netgraph.Digraph.src g worst.Failures.edge))
      (Netgraph.Digraph.node_name g (Netgraph.Digraph.dst g worst.Failures.edge))
      k);

  (* 2. The traffic shifts: one hot pair triples.  Compare a full
        re-optimization against a churn-budgeted one. *)
  let shifted =
    Array.mapi
      (fun i d ->
        if i < 4 then { d with Network.size = d.Network.size *. 3. } else d)
      demands
  in
  let stale =
    Ecmp.mlu_of ~waypoints:joint.Joint.waypoints g joint.Joint.weights shifted
  in
  Printf.printf "After the shift, the deployed setting degrades to MLU %.3f.\n" stale;
  let fresh = Joint.optimize_ctx (Obs.Ctx.default ()) ~ls_params g shifted in
  let fresh_churn =
    Reopt.churn_between ~deployed_weights:joint.Joint.int_weights
      ~deployed_waypoints:joint.Joint.waypoints fresh.Joint.int_weights
      fresh.Joint.waypoints
  in
  Printf.printf
    "Re-optimizing from scratch:   MLU %.3f, but %d weight changes and %d \
     waypoint changes\n"
    fresh.Joint.mlu fresh_churn.Reopt.weight_changes
    fresh_churn.Reopt.waypoint_changes;
  let budgeted =
    Reopt.reoptimize ~ls_params ~max_weight_changes:3
      ~deployed_weights:joint.Joint.int_weights
      ~deployed_waypoints:joint.Joint.waypoints g shifted
  in
  Printf.printf
    "Budgeted re-optimization:     MLU %.3f with only %d weight changes and \
     %d waypoint changes\n"
    budgeted.Reopt.mlu budgeted.Reopt.churn.Reopt.weight_changes
    budgeted.Reopt.churn.Reopt.waypoint_changes
