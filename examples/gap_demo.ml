(* The paper's core analytical story on a concrete instance: why joint
   optimization beats link weights or waypoints alone (§3).

     dune exec examples/gap_demo.exe [m]

   Builds TE-Instance 1 (Figure 1), evaluates the three strategies, and
   prints the per-link utilizations so the congestion is visible. *)

open Te

let show_utilizations g loads =
  Array.iteri
    (fun e u ->
      if u > 1e-9 then
        Printf.printf "    %-6s -> %-6s  util %5.2f%s\n"
          (Netgraph.Digraph.node_name g (Netgraph.Digraph.src g e))
          (Netgraph.Digraph.node_name g (Netgraph.Digraph.dst g e))
          u
          (if u > 1. +. 1e-9 then "  <-- congested" else ""))
    (Ecmp.utilizations g loads)

let () =
  let m = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 6 in
  let inst = Instances.Gap_instances.instance1 ~m in
  let net = inst.Instances.Gap_instances.network in
  let g = net.Network.graph in
  Printf.printf
    "TE-Instance 1 (m = %d): %d unit demands s->t; thin exits have capacity \
     1, the spine has capacity %d.\n\n"
    m m m;

  (* Strategy 1: the optimal link weights alone (Lemma 3.6). *)
  let lwo_w = Option.get inst.Instances.Gap_instances.lwo_weights in
  let loads = Ecmp.loads (Ecmp.make g lwo_w) net.Network.demands in
  Printf.printf "1. Optimal LWO alone: MLU = %.2f (paper: m/2 = %.1f)\n"
    (Ecmp.mlu g loads)
    (float_of_int m /. 2.);
  show_utilizations g loads;

  (* Strategy 2: optimal waypoints under unit weights (Lemma 3.7). *)
  let wpo =
    Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) g (Weights.unit g)
      net.Network.demands
  in
  Printf.printf
    "\n2. Waypoints alone (greedy, unit weights): MLU = %.2f (paper: >= \
     (n-1)/3 = %.1f)\n"
    wpo.Greedy_wpo.mlu
    (float_of_int m /. 3.);

  (* Strategy 3: the joint setting of Lemma 3.5 - one waypoint per
     demand plus matching weights. *)
  let loads =
    Ecmp.loads
      ~waypoints:inst.Instances.Gap_instances.joint_waypoints
      (Ecmp.make g inst.Instances.Gap_instances.joint_weights)
      net.Network.demands
  in
  Printf.printf "\n3. Joint weights + waypoints (Lemma 3.5): MLU = %.2f\n"
    (Ecmp.mlu g loads);
  show_utilizations g loads;
  Printf.printf
    "\nGap of separate optimizations over Joint: %.1fx - it grows linearly \
     with the network size (Theorem 3.4).\n"
    (min
       (Ecmp.mlu_of g lwo_w net.Network.demands)
       wpo.Greedy_wpo.mlu)
