(* Quickstart: load a topology, generate demands, and run the paper's
   three optimizers through the public API.

     dune exec examples/quickstart.exe *)

open Te

let () =
  (* 1. A real topology: the embedded Abilene backbone. *)
  let g = Topology.Datasets.abilene () in
  Printf.printf "Abilene: %d routers, %d directed links\n"
    (Netgraph.Digraph.node_count g)
    (Netgraph.Digraph.edge_count g);

  (* 2. MCF-scaled synthetic demands: the optimal multi-commodity flow
        routes them at MLU exactly 1, so every MLU below is already
        normalized against OPT. *)
  let demands = Demand_gen.mcf_synthetic ~seed:42 ~flows_per_pair:4 g in
  Printf.printf "%d demands, total %.1f Mbit/s\n\n" (Array.length demands)
    (Array.fold_left (fun acc d -> acc +. d.Network.size) 0. demands);

  (* 3. Baseline: Cisco-style inverse-capacity weights under OSPF/ECMP. *)
  let invcap = Weights.inverse_capacity g in
  Printf.printf "InverseCapacity weights:  MLU %.3f\n"
    (Ecmp.mlu_of g invcap demands);

  (* 4. Link-weight optimization (HeurOSPF local search, [11]). *)
  let ls =
    Local_search.optimize_ctx (Obs.Ctx.default ())
      ~params:{ Local_search.default_params with max_evals = 1000; seed = 42 }
      g demands
  in
  Printf.printf "HeurOSPF weights:         MLU %.3f\n" ls.Local_search.mlu;

  (* 5. Waypoint optimization on top of fixed weights (Algorithm 3). *)
  let wpo = Greedy_wpo.optimize_ctx (Obs.Ctx.default ()) g invcap demands in
  Printf.printf "GreedyWPO (invcap):       MLU %.3f\n" wpo.Greedy_wpo.mlu;

  (* 6. The joint optimization (Algorithm 2). *)
  let joint =
    Joint.optimize_ctx (Obs.Ctx.default ())
      ~ls_params:{ Local_search.default_params with max_evals = 1000; seed = 42 }
      g demands
  in
  Printf.printf "JOINT-Heur:               MLU %.3f (%d waypoints)\n"
    joint.Joint.mlu
    (Segments.count_waypoints joint.Joint.waypoints);

  (* 7. Inspect one routed demand: loads of its ECMP flow. *)
  let ctx = Ecmp.make g joint.Joint.weights in
  let d = demands.(0) in
  let u = Ecmp.unit_load ctx ~src:d.Network.src ~dst:d.Network.dst in
  Printf.printf "\ndemand %s->%s routes over %d links under the joint weights\n"
    (Netgraph.Digraph.node_name g d.Network.src)
    (Netgraph.Digraph.node_name g d.Network.dst)
    (Array.length u.Ecmp.edges)
