#!/bin/sh
# Fetch the TopologyZoo GraphML files used by the size-scaling bench
# (`bench engine --scale`) into examples/data/.  Without the files the
# bench falls back to the deterministic synthetic stand-ins with the
# published node/link counts, so running this script is optional — it
# only swaps in the real link structures.
#
# Usage: sh examples/fetch_topologyzoo.sh [dest-dir]
set -eu

dest=${1:-"$(dirname "$0")/data"}
base="http://www.topology-zoo.org/files"
mkdir -p "$dest"

for name in Interoute Deltacom GtsCe Colt UsCarrier Cogentco Kdl; do
  out="$dest/$name.graphml"
  if [ -s "$out" ]; then
    echo "have  $out"
    continue
  fi
  echo "fetch $base/$name.graphml"
  if command -v curl >/dev/null 2>&1; then
    curl -fsSL -o "$out" "$base/$name.graphml"
  elif command -v wget >/dev/null 2>&1; then
    wget -q -O "$out" "$base/$name.graphml"
  else
    echo "error: need curl or wget" >&2
    exit 1
  fi
done

echo "done: $(ls "$dest" | wc -l) files in $dest"
