type trial = { joint : float; weights : float }

type summary = {
  trials : trial list;
  joint_median : float;
  weights_median : float;
  weights_min : float;
  weights_max : float;
}

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then nan
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let run ?(m = 4) ?(trials = 10) ?(streams_per_demand = 32) ?(noise = 0.014) () =
  let inst = Instances.Gap_instances.instance1 ~m in
  let net = inst.Instances.Gap_instances.network in
  let g = net.Te.Network.graph in
  let demands = net.Te.Network.demands in
  let lwo_weights =
    match inst.Instances.Gap_instances.lwo_weights with
    | Some w -> w
    | None -> assert false (* instance1 always carries them *)
  in
  let no_waypoints = Te.Segments.none demands in
  let results = ref [] in
  for salt = 1 to trials do
    let st = Random.State.make [| salt; 0xa40e7 |] in
    let noisy loads =
      (* Background chatter: a small random extra load on every link
         that carries traffic. *)
      Array.map
        (fun l -> if l > 0. then l *. (1. +. Random.State.float st (2. *. noise)) else l)
        loads
    in
    let weights_streams =
      Flowsim.streams_of_demands ~streams_per_demand demands no_waypoints
    in
    let weights_mlu =
      Te.Ecmp.mlu g (noisy (Flowsim.route ~salt g lwo_weights weights_streams))
    in
    let joint_streams =
      Flowsim.streams_of_demands ~streams_per_demand demands
        inst.Instances.Gap_instances.joint_waypoints
    in
    let joint_mlu =
      Te.Ecmp.mlu g
        (noisy
           (Flowsim.route ~salt g inst.Instances.Gap_instances.joint_weights
              joint_streams))
    in
    results := { joint = joint_mlu; weights = weights_mlu } :: !results
  done;
  let trials_list = List.rev !results in
  let js = List.map (fun t -> t.joint) trials_list in
  let ws = List.map (fun t -> t.weights) trials_list in
  {
    trials = trials_list;
    joint_median = median js;
    weights_median = median ws;
    weights_min = List.fold_left min infinity ws;
    weights_max = List.fold_left max neg_infinity ws;
  }
