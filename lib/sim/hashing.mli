(** Deterministic per-flow hashing, modelling the Layer-4 hash that real
    ECMP routers use to pin a flow to one next hop
    (net.ipv6.fib_multipath_hash_policy=1 in the paper's Nanonet
    setup). *)

val mix64 : int64 -> int64
(** SplitMix64 finalizer: a strong 64-bit mixing function. *)

val next_hop_index : flow:int -> node:int -> salt:int -> choices:int -> int
(** Deterministic choice in [0, choices): which of a node's equal-cost
    next hops this flow takes.  Different salts model different hash
    seeds across experiment runs. *)
