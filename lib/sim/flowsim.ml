open Netgraph

type stream = {
  flow : int;
  src : int;
  dst : int;
  rate : float;
  waypoints : int list;
}

let route ?(salt = 0) g weights streams =
  let ctx = Te.Ecmp.make g weights in
  let loads = Array.make (Digraph.edge_count g) 0. in
  Array.iter
    (fun s ->
      let d = { Te.Network.src = s.src; dst = s.dst; size = s.rate } in
      List.iter
        (fun (a, b) ->
          let dag = Te.Ecmp.dag ctx ~target:b in
          if dag.Te.Ecmp.dist.(a) = infinity then raise (Te.Ecmp.Unroutable (a, b));
          (* Walk from [a] to [b]; the hash picks one equal-cost next
             hop at every node.  Distances strictly decrease, so the
             walk terminates. *)
          let rec walk v =
            if v <> b then begin
              let hops = dag.Te.Ecmp.out_sp.(v) in
              let i =
                Hashing.next_hop_index ~flow:s.flow ~node:v ~salt
                  ~choices:(Array.length hops)
              in
              let e = hops.(i) in
              loads.(e) <- loads.(e) +. s.rate;
              walk (Digraph.dst g e)
            end
          in
          walk a)
        (Te.Segments.segment_endpoints d s.waypoints))
    streams;
  loads

let mlu ?salt g weights streams = Te.Ecmp.mlu g (route ?salt g weights streams)

let streams_of_demands ~streams_per_demand demands setting =
  if streams_per_demand < 1 then
    invalid_arg "Flowsim.streams_of_demands: streams_per_demand >= 1";
  if Array.length setting <> Array.length demands then
    invalid_arg "Flowsim.streams_of_demands: setting length mismatch";
  let out = ref [] in
  Array.iteri
    (fun i (d : Te.Network.demand) ->
      for k = streams_per_demand - 1 downto 0 do
        out :=
          {
            flow = (i * streams_per_demand) + k;
            src = d.Te.Network.src;
            dst = d.Te.Network.dst;
            rate = d.Te.Network.size /. float_of_int streams_per_demand;
            waypoints = setting.(i);
          }
          :: !out
      done)
    demands;
  Array.of_list !out
