(** Flow-level forwarding simulator with hash-based ECMP.

    Unlike {!Te.Ecmp}, which models the idealized fine-grained
    (packet-level) even split, this simulator pins each stream to a
    single next hop per node via a deterministic Layer-4-style hash —
    the behaviour of real routers, and the effect the paper measures in
    its Nanonet experiment (Figure 7).  Waypoints are honoured by
    routing each segment independently. *)

type stream = {
  flow : int;  (** hash identity (5-tuple surrogate) *)
  src : int;
  dst : int;
  rate : float;
  waypoints : int list;
}

val route :
  ?salt:int -> Netgraph.Digraph.t -> Te.Weights.t -> stream array -> float array
(** Per-edge load after hash-routing every stream.
    @raise Te.Ecmp.Unroutable when a segment has no path. *)

val mlu :
  ?salt:int -> Netgraph.Digraph.t -> Te.Weights.t -> stream array -> float

val streams_of_demands :
  streams_per_demand:int -> Te.Network.demand array -> Te.Segments.setting ->
  stream array
(** Splits each demand into [streams_per_demand] equal-rate streams with
    distinct flow identities (the paper uses 32 nuttcp streams per
    source). *)
