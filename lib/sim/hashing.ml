let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let next_hop_index ~flow ~node ~salt ~choices =
  if choices <= 0 then invalid_arg "Hashing.next_hop_index: no choices";
  let open Int64 in
  let key =
    add
      (mul (of_int flow) 0x9e3779b97f4a7c15L)
      (add (mul (of_int node) 0xd1b54a32d192ed03L) (of_int salt))
  in
  let h = mix64 key in
  to_int (rem (logand h 0x7fffffffffffffffL) (of_int choices))
