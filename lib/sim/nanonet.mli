(** The Figure 7 experiment: TE-Instance 1 in a virtual network with
    hash-based ECMP, comparing the optimal LWO weight setting ("Weights",
    expected MLU 2 under perfect splitting) against the joint
    weight-and-waypoint setting ("Joint", expected MLU 1).

    Imperfect per-flow hashing makes the Weights runs land above 2 with
    a wide spread, while Joint — whose paths never split — stays at 1
    plus a small control-plane noise term (the paper attributes its
    ~1.4% offset to Neighbor Discovery Protocol chatter). *)

type trial = { joint : float; weights : float }

type summary = {
  trials : trial list;
  joint_median : float;
  weights_median : float;
  weights_min : float;
  weights_max : float;
}

val run :
  ?m:int ->
  ?trials:int ->
  ?streams_per_demand:int ->
  ?noise:float ->
  unit ->
  summary
(** Defaults follow the paper: [m = 4] demands, [trials = 10],
    [streams_per_demand = 32], [noise = 0.014] (relative load added to
    every used link to model protocol chatter). *)
