(** A work-stealing task scheduler for deterministic search fan-out.

    The pool owns [jobs - 1] worker domains (stdlib {!Domain}; the
    caller of {!map} participates as worker 0, so [jobs = 1] spawns
    nothing and runs everything inline).  Each worker slot owns a
    Chase–Lev deque of task indices: the submitting caller seeds its
    own deque, idle workers steal from the top, and owners pop from the
    bottom — the claim fast path is lock-free, the pool mutex is used
    only to park idle workers and to wake the caller at region
    completion.

    Determinism: task indices are claimed dynamically, so which worker
    runs which task — and in what order — is scheduling-dependent.
    Results come back keyed by task index and reductions happen in a
    fixed order, which is the foundation of the [--jobs N] ≡ [--jobs 1]
    bit-identity the search code guarantees: a task's {e result} must
    depend only on its task index, never on the worker slot or on steal
    order.

    Memory model: tasks must not share mutable state across worker
    slots.  The intended pattern is one cloned evaluator (and scratch
    buffer) per worker slot, immutable shared inputs, and results
    published only through the returned array.  All scheduler handoffs
    (publication of the task region, claiming an index, dependency
    release, the caller reading results after completion) go through
    OCaml [Atomic] operations, which establish the happens-before edges
    between a worker's last write and any later reader.

    Nesting: a [map] issued from inside a running task executes inline
    on the calling worker and presents worker index 0 to its tasks.
    Worker-indexed scratch must therefore be local to each [map] call
    site, never global. *)

type t

val create : ?eager_wake:bool -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains.  [jobs = 1] is a
    valid degenerate pool that runs every task inline and touches no
    synchronization on {!map}.

    [eager_wake] controls whether submissions and dependency releases
    unpark sleeping workers.  It defaults to [true] exactly when the
    host has more than one core: on a single-core host a woken worker
    only timeslices against the caller, so the pool keeps workers
    parked and the caller drives every region alone — same results
    (the task decomposition never depends on who runs a task), none of
    the unpark/steal/park overhead.  Pass [~eager_wake:true] to force
    real cross-domain scheduling anyway — the race tests do, so the
    deque protocol is exercised even on one core.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The size the pool was created with (including the caller). *)

val parallelism : t -> int
(** How many workers a {!map} issued right now would actually use: the
    pool size, or 1 when the pool is busy (the call would nest and run
    inline) or shut down.  Lets callers skip building per-worker clones
    that could never be used.  A single relaxed atomic read — safe to
    call from solver inner loops. *)

val shutdown : t -> unit
(** Terminates and joins the worker domains.  Idempotent.  Subsequent
    {!map} calls run inline.  Must not race an in-flight {!map}. *)

val with_pool : ?eager_wake:bool -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards, also on exception.  [eager_wake] as in {!create}. *)

val sequential : t
(** A shared [jobs = 1] pool for callers that were given none.  Safe to
    use concurrently from any domain (it has no shared mutable state on
    the {!map} path). *)

val map : t -> tasks:int -> (worker:int -> int -> 'a) -> 'a array
(** [map t ~tasks f] computes [[| f ~worker:_ 0; ...; f ~worker:_ (tasks-1) |]].
    Task indices are claimed dynamically, so which worker runs which
    task is scheduling-dependent — [f] must make its {e result} depend
    only on the task index, and use [worker] only to pick scratch
    resources.  If any task raises, every task still runs to completion
    and the exception of the lowest-index failing task is re-raised in
    the caller.  Results land in a single pre-sized array; the only
    per-region allocations are that array and the region descriptor. *)

val run_graph :
  t -> tasks:int -> deps:int list array -> (worker:int -> int -> unit) -> unit
(** [run_graph t ~tasks ~deps f] runs [f ~worker i] for every
    [i < tasks], where task [i] starts only after every task in
    [deps.(i)] has finished.  Dependencies must name {e earlier} tasks
    ([deps.(i)] ⊆ [0 .. i-1]), which makes the graph acyclic by
    construction and lets the inline ([jobs = 1] / nested) path run
    tasks in ascending index order.  Completed tasks release their
    dependents onto the finishing worker's own deque, so multi-stage
    work pipelines without a barrier between stages: a stage-2 task
    whose stage-1 input is ready runs even while other stage-1 tasks
    are still in flight.  Dependency release is an atomic counter
    decrement, so a dependent observes all memory effects of its
    dependencies.  Exceptions behave as in {!map}: every task whose
    dependencies completed still runs, and the lowest-index failure is
    re-raised.
    @raise Invalid_argument if [Array.length deps <> tasks] or some
    dependency is not an earlier task index. *)

val map_reduce :
  t -> tasks:int -> map:(worker:int -> int -> 'a) ->
  init:'b -> reduce:('b -> 'a -> 'b) -> 'b
(** [map] followed by an in-order (task index 0, 1, ...) left fold on
    the caller.  The fixed fold order makes the reduction deterministic
    even for non-commutative [reduce]. *)

val chunks : chunk:int -> int -> (int * int) array
(** [chunks ~chunk n] splits [0 .. n-1] into [(start, len)] blocks of
    [chunk] items (the last one possibly shorter).  The decomposition
    depends only on [chunk] and [n] — never on the pool size — so
    per-chunk work (and any float accumulation inside a chunk) is
    identical for every [--jobs] value.
    @raise Invalid_argument if [chunk < 1] or [n < 0]. *)

val map_chunked :
  t -> chunk:int -> tasks:int -> (worker:int -> int -> 'a) -> 'a array
(** {!chunks} composed with {!map}: fans [0 .. tasks-1] out in
    [chunk]-sized blocks and returns the per-task results in task-index
    order.  One worker processes a whole block consecutively (so
    worker-indexed scratch stays warm along a block), but the block
    decomposition — and therefore any within-block state reuse — depends
    only on [chunk] and [tasks], never on the pool size.  Same
    determinism contract as {!map}: results must depend only on the task
    index. *)

(** Scheduler counters, cumulative since pool creation.  Cheap to read
    (atomic loads); meant for observability, not control flow. *)
type metrics = {
  steals : int;          (** tasks claimed from another slot's deque *)
  steal_races : int;     (** CAS retries lost while stealing *)
  parks : int;           (** times a worker went to sleep on the condvar *)
  park_seconds : float;  (** total wall time workers spent parked *)
  regions : int;         (** fan-outs submitted to the scheduler *)
  tasks : int;           (** tasks submitted across all regions *)
  max_region : int;      (** largest single region (task count) *)
}

val metrics : t -> metrics
(** Snapshot of the scheduler counters.  The [jobs = 1] pool (and the
    inline nested path) never touches the scheduler, so its metrics
    stay zero. *)
