(** A small fixed-size domain pool for deterministic search fan-out.

    The pool owns [jobs - 1] worker domains (stdlib {!Domain}; the
    caller of {!map} participates as worker 0, so [jobs = 1] spawns
    nothing and runs everything inline).  It exists to parallelize the
    heuristics' candidate scans: the caller fans a fixed task list out,
    workers claim task indices from a shared counter, and results come
    back keyed by task index so reductions happen in a fixed order —
    the foundation of the [--jobs N] ≡ [--jobs 1] bit-identity the
    search code guarantees.

    Memory model: tasks must not share mutable state across worker
    indices.  The intended pattern is one cloned evaluator (and scratch
    buffer) per worker slot, immutable shared inputs, and results
    published only through the returned array (the pool's internal
    mutex establishes the happens-before edge between a worker's last
    write and the caller reading the results).

    Nesting: a [map] issued from inside a running task executes inline
    on the calling worker and presents worker index 0 to its tasks.
    Worker-indexed scratch must therefore be local to each [map] call
    site, never global. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains.  [jobs = 1] is a
    valid degenerate pool that runs every task inline and touches no
    synchronization on {!map}.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The size the pool was created with (including the caller). *)

val parallelism : t -> int
(** How many workers a {!map} issued right now would actually use: the
    pool size, or 1 when the pool is busy (the call would nest and run
    inline) or shut down.  Lets callers skip building per-worker clones
    that could never be used. *)

val shutdown : t -> unit
(** Terminates and joins the worker domains.  Idempotent.  Subsequent
    {!map} calls run inline. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards, also on exception. *)

val sequential : t
(** A shared [jobs = 1] pool for callers that were given none.  Safe to
    use concurrently from any domain (it has no shared mutable state on
    the {!map} path). *)

val map : t -> tasks:int -> (worker:int -> int -> 'a) -> 'a array
(** [map t ~tasks f] computes [[| f ~worker:_ 0; ...; f ~worker:_ (tasks-1) |]].
    Task indices are claimed dynamically, so which worker runs which
    task is scheduling-dependent — [f] must make its {e result} depend
    only on the task index, and use [worker] only to pick scratch
    resources.  If any task raises, every task still runs to completion
    and the exception of the lowest-index failing task is re-raised in
    the caller. *)

val map_reduce :
  t -> tasks:int -> map:(worker:int -> int -> 'a) ->
  init:'b -> reduce:('b -> 'a -> 'b) -> 'b
(** [map] followed by an in-order (task index 0, 1, ...) left fold on
    the caller.  The fixed fold order makes the reduction deterministic
    even for non-commutative [reduce]. *)

val chunks : chunk:int -> int -> (int * int) array
(** [chunks ~chunk n] splits [0 .. n-1] into [(start, len)] blocks of
    [chunk] items (the last one possibly shorter).  The decomposition
    depends only on [chunk] and [n] — never on the pool size — so
    per-chunk work (and any float accumulation inside a chunk) is
    identical for every [--jobs] value.
    @raise Invalid_argument if [chunk < 1] or [n < 0]. *)

val map_chunked :
  t -> chunk:int -> tasks:int -> (worker:int -> int -> 'a) -> 'a array
(** {!chunks} composed with {!map}: fans [0 .. tasks-1] out in
    [chunk]-sized blocks and returns the per-task results in task-index
    order.  One worker processes a whole block consecutively (so
    worker-indexed scratch stays warm along a block), but the block
    decomposition — and therefore any within-block state reuse — depends
    only on [chunk] and [tasks], never on the pool size.  Same
    determinism contract as {!map}: results must depend only on the task
    index. *)
