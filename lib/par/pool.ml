(* Work-stealing task scheduler.

   One Chase–Lev deque of task indices per worker slot (slot 0 is the
   submitting caller).  A fan-out publishes a region descriptor, seeds
   the caller's deque with the ready task indices, and bumps the
   submission epoch; workers claim indices by popping their own deque
   or stealing from another slot's top, both lock-free.  The pool
   mutex/condvars exist only to park idle workers between regions and
   to wake the caller at region completion.

   Claim-first protocol: a worker first claims a task index from a
   deque and only then reads [t.region].  This is safe because the
   region is published (an Atomic store) before any of its indices are
   pushed, and a region cannot complete — so the next one cannot be
   published — while a claimed index has not executed.  The atomic
   claim therefore happens-after the publication of the region it
   belongs to, and the subsequent region read cannot observe an older
   region.

   Determinism: steal order decides *which slot* runs a task and when,
   never what the task computes (results are keyed by task index and
   merged in index order by the callers).  Nothing in the scheduler
   feeds scheduling order back into results. *)

(* Chase–Lev deque specialized to task indices (nonnegative ints), so
   claims never allocate.  The buffer is circular with power-of-two
   length and is itself held in an Atomic: the owner replaces it when
   growing, and a thief re-reads it after reading [top]/[bottom] so a
   stale (smaller) buffer read loses the CAS on [top] instead of
   stealing a relocated element. *)
module Deque = struct
  type t = {
    top : int Atomic.t;      (* next index thieves steal *)
    bottom : int Atomic.t;   (* next slot the owner pushes *)
    buf : int array Atomic.t;
  }

  let empty = -1   (* claim sentinels; task indices are >= 0 *)
  let retry = -2

  let create () =
    { top = Atomic.make 0;
      bottom = Atomic.make 0;
      buf = Atomic.make (Array.make 64 empty) }

  let grow q top bottom =
    let a = Atomic.get q.buf in
    let n = Array.length a in
    let b = Array.make (2 * n) empty in
    for i = top to bottom - 1 do
      b.(i land (2 * n - 1)) <- a.(i land (n - 1))
    done;
    Atomic.set q.buf b;
    b

  (* Owner only. *)
  let push q v =
    let b = Atomic.get q.bottom in
    let t = Atomic.get q.top in
    let a = Atomic.get q.buf in
    let a = if b - t >= Array.length a then grow q t b else a in
    a.(b land (Array.length a - 1)) <- v;
    Atomic.set q.bottom (b + 1)

  (* Owner only. *)
  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      (* already empty: restore the canonical empty state *)
      Atomic.set q.bottom t;
      empty
    end
    else begin
      let a = Atomic.get q.buf in
      let v = a.(b land (Array.length a - 1)) in
      if b > t then v
      else begin
        (* last element: race the thieves for it *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then v else empty
      end
    end

  (* Any domain. *)
  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if b - t <= 0 then empty
    else begin
      let a = Atomic.get q.buf in
      let v = a.(t land (Array.length a - 1)) in
      if Atomic.compare_and_set q.top t (t + 1) then v else retry
    end
end

(* One fan-out.  [r_run] never raises (exceptions are recorded
   out-of-band by the wrappers in [map]/[run_graph]).  [r_deps] /
   [r_children] are [||] for dependency-free regions. *)
type region = {
  r_total : int;
  r_run : int -> int -> unit;          (* worker slot -> task index *)
  r_deps : int Atomic.t array;         (* remaining-dependency counts *)
  r_children : int array array;        (* task -> dependent tasks *)
  r_done : int Atomic.t;
}

type t = {
  n_jobs : int;
  wake : bool;                         (* unpark workers for new work? *)
  mutex : Mutex.t;                     (* park/unpark only *)
  work : Condition.t;                  (* workers wait here between regions *)
  finished : Condition.t;              (* the caller waits here for completion *)
  deques : Deque.t array;              (* one per slot; slot 0 = caller *)
  region : region option Atomic.t;
  epoch : int Atomic.t;                (* bumped per submission; parking guard *)
  busy : int Atomic.t;                 (* 0 = idle, 1 = a region is in flight *)
  stopping : bool Atomic.t;
  parked : int Atomic.t;               (* exact when read under [mutex] *)
  waiting : int Atomic.t;              (* 1 while the caller may be parked *)
  (* metrics *)
  m_steals : int Atomic.t;
  m_steal_races : int Atomic.t;
  m_parks : int Atomic.t;
  m_regions : int Atomic.t;
  m_tasks : int Atomic.t;
  m_max_region : int Atomic.t;
  park_time : float array;             (* per-slot; only slot w writes w *)
  mutable domains : unit Domain.t list;
}

let jobs t = t.n_jobs

(* A relaxed atomic read — no mutex.  [busy] is claimed by CAS in
   [execute], so observing 1 means a map issued now would nest and run
   inline with a single worker slot. *)
let parallelism t =
  if t.n_jobs = 1 then 1
  else if Atomic.get t.busy = 1 || Atomic.get t.stopping then 1
  else t.n_jobs

(* Claim a task index for [worker]: own deque first, then a rotating
   steal sweep over the other slots.  Returns [Deque.empty] when
   nothing was runnable at the time of the sweep. *)
let try_get t worker =
  let i = Deque.pop t.deques.(worker) in
  if i >= 0 then i
  else begin
    let n = Array.length t.deques in
    let found = ref Deque.empty in
    let k = ref 1 in
    while !found < 0 && !k < n do
      let q = t.deques.((worker + !k) mod n) in
      let rec attempt () =
        match Deque.steal q with
        | v when v = Deque.retry ->
          Atomic.incr t.m_steal_races;
          attempt ()
        | v -> v
      in
      (match attempt () with
       | v when v >= 0 ->
         Atomic.incr t.m_steals;
         found := v
       | _ -> ());
      incr k
    done;
    !found
  end

(* Run a claimed task: execute, release dependents onto this worker's
   own deque, then retire it.  The dependency release is an atomic
   decrement, so a dependent's executor observes all memory effects of
   its dependencies; the completion counter's RMW chain gives the
   caller a happens-before edge to every task's writes. *)
let exec t r worker task =
  r.r_run worker task;
  if Array.length r.r_children > 0 then begin
    let ch = r.r_children.(task) in
    let released = ref 0 in
    for k = 0 to Array.length ch - 1 do
      let c = ch.(k) in
      if Atomic.fetch_and_add r.r_deps.(c) (-1) = 1 then begin
        Deque.push t.deques.(worker) c;
        incr released
      end
    done;
    (* Parked workers missed these pushes (no epoch bump): hand them
       out.  Racing a worker that is just deciding to park is benign —
       this worker keeps the tasks in its own deque and runs them. *)
    if t.wake && !released > 0 && Atomic.get t.parked > 0 then begin
      Mutex.lock t.mutex;
      let k = min (Atomic.get t.parked) !released in
      for _ = 1 to k do Condition.signal t.work done;
      Mutex.unlock t.mutex
    end
  end;
  if Atomic.fetch_and_add r.r_done 1 = r.r_total - 1 then begin
    (* Last task of the region: wake the caller if it may be parked.
       [waiting] is written (SC) by the caller before it re-checks
       [r_done], so if we read 0 here the caller's later read of
       [r_done] sees the total and it never sleeps.  In the common
       case — the caller retired the last task itself — this skips the
       lock entirely. *)
    if Atomic.get t.waiting > 0 then begin
      Mutex.lock t.mutex;
      Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end
  end

let spin_budget = 64

let worker_loop t worker =
  while not (Atomic.get t.stopping) do
    let e = Atomic.get t.epoch in
    let i = try_get t worker in
    if i >= 0 then
      (match Atomic.get t.region with
       | Some r -> exec t r worker i
       | None ->
         (* impossible per the claim-first protocol (see header) *)
         assert false)
    else begin
      (* Nothing runnable: spin briefly (tasks retire in microseconds),
         then park until the next submission bumps the epoch. *)
      let spins = ref 0 in
      let got = ref Deque.empty in
      while !got < 0 && !spins < spin_budget
            && Atomic.get t.epoch = e && not (Atomic.get t.stopping) do
        Domain.cpu_relax ();
        incr spins;
        got := try_get t worker
      done;
      if !got >= 0 then
        (match Atomic.get t.region with
         | Some r -> exec t r worker !got
         | None -> assert false)
      else if Atomic.get t.epoch = e && not (Atomic.get t.stopping) then begin
        Mutex.lock t.mutex;
        (* Submissions bump the epoch before taking the mutex, so this
           re-check under the lock cannot miss one. *)
        if Atomic.get t.epoch = e && not (Atomic.get t.stopping) then begin
          Atomic.incr t.m_parks;
          Atomic.incr t.parked;
          let t0 = Engine.Mono.now () in
          Condition.wait t.work t.mutex;
          t.park_time.(worker) <-
            t.park_time.(worker) +. (Engine.Mono.now () -. t0);
          Atomic.decr t.parked
        end;
        Mutex.unlock t.mutex
      end
    end
  done

(* On a single-core host, waking a worker can never speed a region up:
   the woken domain only timeslices against the caller, and every
   unpark/steal/park cycle is pure overhead — so by default such hosts
   keep workers parked and let the caller drive every region alone
   (results are identical either way; the decomposition never depends
   on who runs a task).  [eager_wake] forces real cross-domain
   scheduling regardless, which the race tests use to keep exercising
   the deque protocol even on one core. *)
let create ?eager_wake ~jobs () =
  if jobs < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
  let wake =
    match eager_wake with
    | Some w -> w
    | None -> Domain.recommended_domain_count () > 1
  in
  let t = {
    n_jobs = jobs;
    wake;
    mutex = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    deques = Array.init jobs (fun _ -> Deque.create ());
    region = Atomic.make None;
    epoch = Atomic.make 0;
    busy = Atomic.make 0;
    stopping = Atomic.make false;
    parked = Atomic.make 0;
    waiting = Atomic.make 0;
    m_steals = Atomic.make 0;
    m_steal_races = Atomic.make 0;
    m_parks = Atomic.make 0;
    m_regions = Atomic.make 0;
    m_tasks = Atomic.make 0;
    m_max_region = Atomic.make 0;
    park_time = Array.make jobs 0.;
    domains = [];
  } in
  if jobs > 1 then
    t.domains <-
      List.init (jobs - 1)
        (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let shutdown t =
  if t.n_jobs > 1 then begin
    Mutex.lock t.mutex;
    let ds = t.domains in
    t.domains <- [];
    if not (Atomic.get t.stopping) then begin
      Atomic.set t.stopping true;
      Condition.broadcast t.work
    end;
    Mutex.unlock t.mutex;
    List.iter Domain.join ds
  end
  else Atomic.set t.stopping true

let with_pool ?eager_wake ~jobs f =
  let t = create ?eager_wake ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let sequential = create ~jobs:1 ()

(* The caller drives its own region as slot 0: claim-and-run until the
   completion counter says every task retired, parking on [finished]
   only when nothing is runnable here and the region is not done. *)
let caller_drive t r =
  let total = r.r_total in
  let running = ref true in
  while !running do
    let i = try_get t 0 in
    if i >= 0 then exec t r 0 i
    else if Atomic.get r.r_done >= total then running := false
    else begin
      let spins = ref 0 in
      let got = ref Deque.empty in
      while !got < 0 && !spins < spin_budget && Atomic.get r.r_done < total do
        Domain.cpu_relax ();
        incr spins;
        got := try_get t 0
      done;
      if !got >= 0 then exec t r 0 !got
      else if Atomic.get r.r_done < total then begin
        (* SC handshake with the completion path in [exec]: publish
           [waiting] before re-checking [r_done] under the mutex; the
           finisher stores [r_done] before reading [waiting], so one of
           the two always sees the other. *)
        Atomic.set t.waiting 1;
        Mutex.lock t.mutex;
        while Atomic.get r.r_done < total do
          Condition.wait t.finished t.mutex
        done;
        Mutex.unlock t.mutex;
        Atomic.set t.waiting 0
      end
    end
  done

(* Shared submission path.  [run] must not raise.  [deps] is [||] for
   plain fan-outs; otherwise [deps.(i)] lists tasks that must retire
   before [i] runs, each < i. *)
let execute t ~tasks ?(deps = [||]) run =
  if tasks > 0 then begin
    if t.n_jobs = 1
       || Atomic.get t.stopping
       || not (Atomic.compare_and_set t.busy 0 1) then
      (* Sequential pool, post-shutdown, or nested inside a running
         task: run inline as slot 0.  Dependencies only point backwards,
         so ascending order satisfies them.  This path touches no
         scheduler state (the [jobs = 1] probe loops stay
         allocation-free and lock-free). *)
      for i = 0 to tasks - 1 do run 0 i done
    else begin
      let r_deps, r_children =
        if Array.length deps = 0 then ([||], [||])
        else begin
          let nchildren = Array.make tasks 0 in
          Array.iter
            (List.iter (fun d -> nchildren.(d) <- nchildren.(d) + 1))
            deps;
          let children =
            Array.init tasks (fun d -> Array.make nchildren.(d) 0) in
          let fill = Array.make tasks 0 in
          Array.iteri
            (fun i ds ->
               List.iter
                 (fun d ->
                    children.(d).(fill.(d)) <- i;
                    fill.(d) <- fill.(d) + 1)
                 ds)
            deps;
          (Array.map (fun ds -> Atomic.make (List.length ds)) deps, children)
        end
      in
      let r = { r_total = tasks; r_run = run; r_deps; r_children;
                r_done = Atomic.make 0 } in
      (* Publish the region before any of its indices become claimable
         (the claim-first protocol depends on this order), then seed the
         caller's deque highest-index-first so slot 0 pops ascending. *)
      Atomic.set t.region (Some r);
      let ready = ref 0 in
      if Array.length r_deps = 0 then begin
        for i = tasks - 1 downto 0 do Deque.push t.deques.(0) i done;
        ready := tasks
      end
      else
        for i = tasks - 1 downto 0 do
          if Atomic.get r_deps.(i) = 0 then begin
            Deque.push t.deques.(0) i;
            incr ready
          end
        done;
      Atomic.incr t.m_regions;
      ignore (Atomic.fetch_and_add t.m_tasks tasks);
      if tasks > Atomic.get t.m_max_region then
        Atomic.set t.m_max_region tasks;
      Atomic.incr t.epoch;
      (* Unpark just enough workers for the initially-ready tasks (the
         caller takes one itself); dependency releases wake more later.
         [parked] is exact under the mutex: a worker still deciding
         whether to park re-checks the epoch we just bumped.  A
         single-core pool skips the wakeups entirely (see [create]). *)
      if t.wake then begin
        Mutex.lock t.mutex;
        let k = min (Atomic.get t.parked) (min (tasks - 1) !ready) in
        for _ = 1 to k do Condition.signal t.work done;
        Mutex.unlock t.mutex
      end;
      caller_drive t r;
      Atomic.set t.region None;
      Atomic.set t.busy 0
    end
  end

(* Record the lowest-index failure; every task still runs. *)
let record_exn slot i e =
  let rec loop () =
    match Atomic.get slot with
    | Some (j, _) when j <= i -> ()
    | cur ->
      if not (Atomic.compare_and_set slot cur (Some (i, e))) then loop ()
  in
  loop ()

let map (type a) t ~tasks (f : worker:int -> int -> a) : a array =
  if tasks < 0 then invalid_arg "Par.Pool.map: negative task count";
  if tasks = 0 then [||]
  else begin
    (* One uniform result array (elements boxed via Obj), filled in
       place — no per-task option boxing.  The Obj round-trip is safe
       because slot [i] is written exactly once, before the caller
       reads it (completion happens-before), and read back at type [a]. *)
    let results = Array.make tasks (Obj.repr ()) in
    let err : (int * exn) option Atomic.t = Atomic.make None in
    let run worker i =
      match f ~worker i with
      | v -> Array.unsafe_set results i (Obj.repr v)
      | exception e -> record_exn err i e
    in
    execute t ~tasks run;
    match Atomic.get err with
    | Some (_, e) -> raise e
    | None ->
      Array.init tasks (fun i -> (Obj.obj (Array.unsafe_get results i) : a))
  end

let run_graph t ~tasks ~deps f =
  if tasks < 0 then invalid_arg "Par.Pool.run_graph: negative task count";
  if Array.length deps <> tasks then
    invalid_arg "Par.Pool.run_graph: deps length must equal tasks";
  Array.iteri
    (fun i ds ->
       List.iter
         (fun d ->
            if d < 0 || d >= i then
              invalid_arg
                "Par.Pool.run_graph: dependencies must name earlier tasks")
         ds)
    deps;
  if tasks > 0 then begin
    let err : (int * exn) option Atomic.t = Atomic.make None in
    let run worker i =
      match f ~worker i with
      | () -> ()
      | exception e -> record_exn err i e
    in
    execute t ~tasks ~deps run;
    match Atomic.get err with
    | Some (_, e) -> raise e
    | None -> ()
  end

let map_reduce t ~tasks ~map:f ~init ~reduce =
  let rs = map t ~tasks f in
  Array.fold_left reduce init rs

let chunks ~chunk n =
  if chunk < 1 then invalid_arg "Par.Pool.chunks: chunk must be >= 1";
  if n < 0 then invalid_arg "Par.Pool.chunks: negative size";
  let k = (n + chunk - 1) / chunk in
  Array.init k (fun i ->
      let start = i * chunk in
      (start, min chunk (n - start)))

let map_chunked t ~chunk ~tasks f =
  let blocks = chunks ~chunk tasks in
  let per_block =
    map t ~tasks:(Array.length blocks) (fun ~worker b ->
        let start, len = blocks.(b) in
        Array.init len (fun j -> f ~worker (start + j)))
  in
  if tasks = 0 then [||]
  else begin
    (* blocks are never empty, so the first element seeds the array *)
    let out = Array.make tasks per_block.(0).(0) in
    Array.iteri
      (fun b block ->
         let start, _ = blocks.(b) in
         Array.blit block 0 out start (Array.length block))
      per_block;
    out
  end

type metrics = {
  steals : int;
  steal_races : int;
  parks : int;
  park_seconds : float;
  regions : int;
  tasks : int;
  max_region : int;
}

let metrics t = {
  steals = Atomic.get t.m_steals;
  steal_races = Atomic.get t.m_steal_races;
  parks = Atomic.get t.m_parks;
  park_seconds = Array.fold_left ( +. ) 0. t.park_time;
  regions = Atomic.get t.m_regions;
  tasks = Atomic.get t.m_tasks;
  max_region = Atomic.get t.m_max_region;
}
