(* A region is one fan-out: a fixed task count and a run function that
   never raises (exceptions are captured into the caller's result
   arrays).  Workers claim indices from r_next under the pool mutex and
   execute with the mutex released. *)
type region = {
  r_total : int;
  r_run : int -> int -> unit; (* worker -> task index *)
  mutable r_next : int;
  mutable r_done : int;
}

type t = {
  n_jobs : int;
  mutex : Mutex.t;
  work : Condition.t; (* signalled when a new region (or shutdown) is posted *)
  finished : Condition.t; (* signalled when a region's last task completes *)
  mutable region : region option;
  mutable gen : int; (* bumped per region; workers track the last seen *)
  mutable stopping : bool;
  mutable busy : bool; (* a region is in flight: nested maps run inline *)
  mutable domains : unit Domain.t list;
}

(* Claim-and-run loop shared by workers and the posting caller.  Called
   and returns with the mutex held. *)
let drain t r worker =
  while r.r_next < r.r_total do
    let i = r.r_next in
    r.r_next <- i + 1;
    Mutex.unlock t.mutex;
    r.r_run worker i;
    Mutex.lock t.mutex;
    r.r_done <- r.r_done + 1;
    if r.r_done = r.r_total then Condition.broadcast t.finished
  done

let worker_loop t worker =
  let seen = ref 0 in
  Mutex.lock t.mutex;
  while not t.stopping do
    if t.gen <> !seen then begin
      seen := t.gen;
      match t.region with Some r -> drain t r worker | None -> ()
    end
    else Condition.wait t.work t.mutex
  done;
  Mutex.unlock t.mutex

let create ~jobs =
  if jobs < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
  let t =
    { n_jobs = jobs; mutex = Mutex.create (); work = Condition.create ();
      finished = Condition.create (); region = None; gen = 0; stopping = false;
      busy = false; domains = [] }
  in
  if jobs > 1 then
    t.domains <-
      List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let jobs t = t.n_jobs

let shutdown t =
  if t.n_jobs > 1 then begin
    Mutex.lock t.mutex;
    let ds = t.domains in
    t.domains <- [];
    if not t.stopping then begin
      t.stopping <- true;
      Condition.broadcast t.work
    end;
    Mutex.unlock t.mutex;
    List.iter Domain.join ds
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let sequential = create ~jobs:1

let parallelism t =
  if t.n_jobs = 1 then 1
  else begin
    Mutex.lock t.mutex;
    let p = if t.busy || t.stopping then 1 else t.n_jobs in
    Mutex.unlock t.mutex;
    p
  end

(* Runs [tasks] invocations of [run] (which must not raise), either
   inline or fanned out over the pool. *)
let run_tasks t ~tasks run =
  if tasks > 0 then
    if t.n_jobs = 1 then
      (* Lock-free: the shared [sequential] pool may be used from
         several domains at once. *)
      for i = 0 to tasks - 1 do
        run 0 i
      done
    else begin
      Mutex.lock t.mutex;
      if t.busy || t.stopping then begin
        (* Nested (or post-shutdown) map: run inline on this worker,
           presenting worker slot 0 of the nested call site. *)
        Mutex.unlock t.mutex;
        for i = 0 to tasks - 1 do
          run 0 i
        done
      end
      else begin
        t.busy <- true;
        let r = { r_total = tasks; r_run = run; r_next = 0; r_done = 0 } in
        t.region <- Some r;
        t.gen <- t.gen + 1;
        Condition.broadcast t.work;
        drain t r 0;
        while r.r_done < r.r_total do
          Condition.wait t.finished t.mutex
        done;
        t.region <- None;
        t.busy <- false;
        Mutex.unlock t.mutex
      end
    end

let map t ~tasks f =
  if tasks < 0 then invalid_arg "Par.Pool.map: negative task count";
  let results = Array.make tasks None in
  let errors = Array.make tasks None in
  let run worker i =
    match f ~worker i with
    | v -> results.(i) <- Some v
    | exception e -> errors.(i) <- Some e
  in
  run_tasks t ~tasks run;
  Array.iter (function Some e -> raise e | None -> ()) errors;
  Array.map (function Some v -> v | None -> assert false) results

let map_reduce t ~tasks ~map:f ~init ~reduce =
  Array.fold_left reduce init (map t ~tasks f)

let chunks ~chunk n =
  if chunk < 1 then invalid_arg "Par.Pool.chunks: chunk must be >= 1";
  if n < 0 then invalid_arg "Par.Pool.chunks: negative item count";
  let k = (n + chunk - 1) / chunk in
  Array.init k (fun i ->
      let start = i * chunk in
      (start, min chunk (n - start)))

let map_chunked t ~chunk ~tasks f =
  let ch = chunks ~chunk tasks in
  let per_chunk =
    map t ~tasks:(Array.length ch) (fun ~worker ci ->
        let start, len = ch.(ci) in
        Array.init len (fun j -> f ~worker (start + j)))
  in
  let out = Array.make tasks None in
  Array.iteri
    (fun ci block ->
      let start, _ = ch.(ci) in
      Array.iteri (fun j v -> out.(start + j) <- Some v) block)
    per_chunk;
  Array.map (function Some v -> v | None -> assert false) out
