(** Shortest paths and DAG utilities over {!Digraph}. *)

val dijkstra : Digraph.t -> weights:float array -> source:int -> float array
(** Distance from [source] to every node along directed edges; unreachable
    nodes get [infinity].
    @raise Invalid_argument on a non-positive weight. *)

val dijkstra_to : Digraph.t -> weights:float array -> target:int -> float array
(** Distance from every node {e to} [target] (runs on the reversed graph). *)

val dijkstra_update_to :
  Digraph.t -> weights:float array -> target:int -> dist:float array ->
  edge:int -> old_weight:float -> int
(** Restricted (partial) Dijkstra: repairs [dist] in place after the
    weight of [edge] changed from [old_weight] to [weights.(edge)],
    assuming [dist] was a correct distance-to-[target] array under the
    old value.  Only the region whose distance can change is visited: a
    weight decrease relaxes outward from the edge's source; a weight
    increase recomputes the (over-approximated) set of nodes whose
    shortest paths ran through the edge.  Returns the number of nodes
    whose stored distance was recomputed — [0] means the update provably
    left every distance unchanged. *)

val dijkstra_with_parents :
  ?stop_at:int ->
  Digraph.t -> weights:float array -> source:int -> float array * int array
(** Distances from [source] plus, per node, the edge through which it
    was reached ([-1] for the source and unreachable nodes).
    [stop_at] terminates the search once that node is settled (its
    distance and parents along its path are then final; other entries
    may be partial). *)

val shortest_path :
  Digraph.t -> weights:float array -> source:int -> target:int -> int list option
(** One shortest path as an edge-id list, or [None] if unreachable.
    Exact for arbitrarily small positive weights (parent tracking, no
    tolerance). *)

val path_cost : weights:float array -> int list -> float

val topo_order : Digraph.t -> keep:(int -> bool) -> int array
(** Topological order of the subgraph containing only edges [e] with
    [keep e = true].  @raise Failure if that subgraph has a cycle. *)

val is_acyclic : Digraph.t -> keep:(int -> bool) -> bool

val reachable : Digraph.t -> source:int -> bool array
(** Forward reachability along all edges. *)

val all_simple_paths :
  ?max_paths:int -> Digraph.t -> source:int -> target:int -> int list list
(** Every simple path (edge-id lists) from [source] to [target], for the
    brute-force exact solvers.  Stops after [max_paths] (default 10_000). *)
