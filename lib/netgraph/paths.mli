(** Shortest paths and DAG utilities over {!Digraph}.

    All searches run over a reusable {!Scratch} arena (heap, stamped
    mark array, work stack) so the hot entry points are allocation-free
    once the arena is warm.  The legacy signatures ({!dijkstra},
    {!dijkstra_to}, {!dijkstra_update_to}) remain and transparently use
    a per-domain arena. *)

(** Caller-owned reusable search state.  One arena serves graphs of any
    size (it grows monotonically and never shrinks) but must not be
    shared across domains — each worker owns its own, or uses the
    legacy entry points which keep a domain-local one. *)
module Scratch : sig
  type t

  val create : unit -> t

  val farg : t -> float array
  (** One-slot float argument channel for {!dijkstra_update_prepared}:
      storing into a float array never boxes, unlike passing a float to
      a non-inlined function.  Borrowed; length 1. *)
end

val domain_scratch : unit -> Scratch.t
(** The calling domain's arena (the one the legacy entry points use). *)

val dijkstra : Digraph.t -> weights:float array -> source:int -> float array
(** Distance from [source] to every node along directed edges; unreachable
    nodes get [infinity].
    @raise Invalid_argument on a non-positive weight. *)

val dijkstra_to : Digraph.t -> weights:float array -> target:int -> float array
(** Distance from every node {e to} [target] (runs on the reversed graph). *)

val dijkstra_into :
  Scratch.t -> Digraph.t -> weights:float array -> source:int ->
  dist:float array -> unit
(** [dijkstra] into a caller-owned [dist] array (length [n], fully
    overwritten).  Allocation-free once [scratch] is warm.  Does not
    validate [weights]; callers owning the weight vector are expected to
    maintain positivity themselves. *)

val dijkstra_to_into :
  Scratch.t -> Digraph.t -> weights:float array -> target:int ->
  dist:float array -> unit
(** {!dijkstra_into} on the reversed graph (distance-to-[target]). *)

val dijkstra_update_to :
  Digraph.t -> weights:float array -> target:int -> dist:float array ->
  edge:int -> old_weight:float -> int
(** Restricted (partial) Dijkstra: repairs [dist] in place after the
    weight of [edge] changed from [old_weight] to [weights.(edge)],
    assuming [dist] was a correct distance-to-[target] array under the
    old value.  Only the region whose distance can change is visited: a
    weight decrease relaxes outward from the edge's source; a weight
    increase recomputes the (over-approximated) set of nodes whose
    shortest paths ran through the edge.  Returns the number of nodes
    whose stored distance was recomputed — [0] means the update provably
    left every distance unchanged. *)

val dijkstra_update_to_into :
  Scratch.t -> Digraph.t -> weights:float array -> target:int ->
  dist:float array -> edge:int -> old_weight:float -> int
(** {!dijkstra_update_to} with a caller-owned arena. *)

val dijkstra_update_prepared :
  Scratch.t -> Digraph.t -> weights:float array -> dist:float array ->
  edge:int -> int
(** Boxing-free form of {!dijkstra_update_to_into}: reads the old weight
    from [Scratch.farg scratch] (slot 0), which the caller must have
    stored beforehand.  This is the entry the engine's zero-allocation
    probe loop uses — a labelled [old_weight:float] argument would box
    the float at the call boundary. *)

val dijkstra_with_parents :
  ?stop_at:int ->
  Digraph.t -> weights:float array -> source:int -> float array * int array
(** Distances from [source] plus, per node, the edge through which it
    was reached ([-1] for the source and unreachable nodes).
    [stop_at] terminates the search once that node is settled (its
    distance and parents along its path are then final; other entries
    may be partial). *)

val shortest_path :
  Digraph.t -> weights:float array -> source:int -> target:int -> int list option
(** One shortest path as an edge-id list, or [None] if unreachable.
    Exact for arbitrarily small positive weights (parent tracking, no
    tolerance). *)

val path_cost : weights:float array -> int list -> float

val topo_order : Digraph.t -> keep:(int -> bool) -> int array
(** Topological order of the subgraph containing only edges [e] with
    [keep e = true].  @raise Failure if that subgraph has a cycle. *)

val is_acyclic : Digraph.t -> keep:(int -> bool) -> bool

val reachable : Digraph.t -> source:int -> bool array
(** Forward reachability along all edges. *)

val all_simple_paths :
  ?max_paths:int -> Digraph.t -> source:int -> target:int -> int list list
(** Every simple path (edge-id lists) from [source] to [target], for the
    brute-force exact solvers.  Stops after [max_paths] (default 10_000). *)
