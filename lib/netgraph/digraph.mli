(** Directed capacitated multigraphs.

    The graph representation used throughout the reproduction: nodes are
    dense integers [0 .. n-1], edges are dense integers [0 .. m-1] with a
    source, a destination and a strictly positive capacity.  The structure
    is immutable once built; incremental construction goes through
    {!Builder}. *)

type t

(** {1 Construction} *)

module Builder : sig
  type graph = t

  type t

  val create : unit -> t

  val add_node : t -> ?name:string -> unit -> int
  (** Allocates a fresh node id.  [name] defaults to ["n<id>"]. *)

  val add_named_node : t -> string -> int
  (** Returns the id already associated with this name, allocating a new
      node on first use. *)

  val add_edge : t -> src:int -> dst:int -> cap:float -> int
  (** Adds a directed edge and returns its id.
      @raise Invalid_argument if [cap <= 0], on a self-loop, or on an
      unknown endpoint. *)

  val add_biedge : t -> int -> int -> cap:float -> int * int
  (** Adds the two directed edges [(u,v)] and [(v,u)], each of
      capacity [cap], and returns their ids [(forward, reverse)]. *)

  val node_count : t -> int

  val build : t -> graph
end

val of_edges : ?names:string array -> n:int -> (int * int * float) list -> t
(** [of_edges ~n edges] builds a graph with nodes [0..n-1] and the given
    [(src, dst, cap)] edges, in order (edge ids follow list order). *)

(** {1 Accessors} *)

val node_count : t -> int

val edge_count : t -> int

val src : t -> int -> int

val dst : t -> int -> int

val cap : t -> int -> float

val node_name : t -> int -> string

val node_of_name : t -> string -> int
(** @raise Not_found if no node carries this name. *)

val out_edges : t -> int -> int array
(** Edge ids leaving a node.  Do not mutate the returned array. *)

val in_edges : t -> int -> int array
(** Edge ids entering a node.  Do not mutate the returned array. *)

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val find_edge : t -> src:int -> dst:int -> int option
(** First edge from [src] to [dst], if any. *)

val edges : t -> (int * int * float) list
(** All edges as [(src, dst, cap)], in edge-id order. *)

val with_capacities : t -> float array -> t
(** Same topology with the given per-edge capacities.
    @raise Invalid_argument on length mismatch or non-positive entry. *)

val reverse : t -> t
(** Graph with every edge flipped; edge ids are preserved. *)

val max_capacity : t -> float

val min_capacity : t -> float

val is_connected_from : t -> int -> bool
(** Are all nodes reachable from the given node along directed edges? *)

val pp : Format.formatter -> t -> unit
