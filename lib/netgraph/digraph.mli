(** Directed capacitated multigraphs.

    The graph representation used throughout the reproduction: nodes are
    dense integers [0 .. n-1], edges are dense integers [0 .. m-1] with a
    source, a destination and a strictly positive capacity.  The structure
    is immutable once built; incremental construction goes through
    {!Builder}.

    Adjacency is stored in CSR (compressed sparse row) form: a
    row-pointer array of length [n+1] plus a column-index array of
    length [m] per direction.  Within a row the edge ids appear in
    ascending order — the iteration order every shortest-path DAG and
    unit-flow computation in the repo is keyed to.  Hot paths borrow the
    flat arrays directly ({!out_offsets} / {!out_index} and friends) and
    run allocation-free; {!out_edges} / {!in_edges} remain as
    (allocating) view-layer conveniences for cold callers. *)

type t

(** {1 Construction} *)

module Builder : sig
  type graph = t

  type t

  val create : unit -> t

  val add_node : t -> ?name:string -> unit -> int
  (** Allocates a fresh node id.  [name] defaults to ["n<id>"]. *)

  val add_named_node : t -> string -> int
  (** Returns the id already associated with this name, allocating a new
      node on first use. *)

  val add_edge : t -> src:int -> dst:int -> cap:float -> int
  (** Adds a directed edge and returns its id.
      @raise Invalid_argument if [cap <= 0], on a self-loop, or on an
      unknown endpoint. *)

  val add_biedge : t -> int -> int -> cap:float -> int * int
  (** Adds the two directed edges [(u,v)] and [(v,u)], each of
      capacity [cap], and returns their ids [(forward, reverse)]. *)

  val node_count : t -> int

  val build : t -> graph
end

val of_edges : ?names:string array -> n:int -> (int * int * float) list -> t
(** [of_edges ~n edges] builds a graph with nodes [0..n-1] and the given
    [(src, dst, cap)] edges, in order (edge ids follow list order). *)

(** {1 Accessors} *)

val node_count : t -> int

val edge_count : t -> int

val src : t -> int -> int

val dst : t -> int -> int

val cap : t -> int -> float

val node_name : t -> int -> string

val node_of_name : t -> string -> int
(** @raise Not_found if no node carries this name. *)

val out_edges : t -> int -> int array
(** Edge ids leaving a node, ascending.  Allocates a fresh view of the
    CSR row on every call — fine for cold paths; hot loops should use
    {!iter_out} or borrow {!out_offsets} / {!out_index}. *)

val in_edges : t -> int -> int array
(** Edge ids entering a node, ascending.  Allocates; see {!out_edges}. *)

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val iter_out : t -> int -> (int -> unit) -> unit
(** [iter_out g v f] applies [f] to each edge id leaving [v], in
    ascending edge-id order, without allocating. *)

val iter_in : t -> int -> (int -> unit) -> unit
(** [iter_in g v f]: {!iter_out} on the incoming edges. *)

(** {2 Borrowed flat arrays}

    Zero-copy access to the underlying CSR storage for allocation-free
    hot loops (the evaluation engine, Dijkstra arenas).  The returned
    arrays are the graph's own: NEVER mutate them.  Out-edges of node
    [v] are [out_index.(i)] for [out_offsets.(v) <= i < out_offsets.(v+1)];
    the arrays have lengths [n+1] (offsets) and [m] (index). *)

val srcs : t -> int array
(** Per edge id: source node.  Borrowed; do not mutate. *)

val dsts : t -> int array
(** Per edge id: destination node.  Borrowed; do not mutate. *)

val caps : t -> float array
(** Per edge id: capacity.  Borrowed; do not mutate. *)

val out_offsets : t -> int array

val out_index : t -> int array

val in_offsets : t -> int array

val in_index : t -> int array

val find_edge : t -> src:int -> dst:int -> int option
(** First edge from [src] to [dst], if any. *)

val edges : t -> (int * int * float) list
(** All edges as [(src, dst, cap)], in edge-id order. *)

val with_capacities : t -> float array -> t
(** Same topology with the given per-edge capacities.
    @raise Invalid_argument on length mismatch or non-positive entry. *)

val reverse : t -> t
(** Graph with every edge flipped; edge ids are preserved. *)

val max_capacity : t -> float

val min_capacity : t -> float

val is_connected_from : t -> int -> bool
(** Are all nodes reachable from the given node along directed edges? *)

val pp : Format.formatter -> t -> unit
