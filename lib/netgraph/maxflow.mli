(** Maximum flow (Dinic), acyclic flows, flow decomposition and min cuts. *)

type flow = {
  value : float;  (** total flow from source to target *)
  on_edge : float array;  (** per-edge flow, indexed by edge id *)
}

val max_flow : Digraph.t -> source:int -> target:int -> flow
(** Dinic's algorithm on the graph's capacities. *)

val remove_cycles : Digraph.t -> flow -> flow
(** Cancels flow cycles (§2 "Acyclic Maximum Flow" of the paper): the
    result has the same value and its positive-flow subgraph is a DAG. *)

val acyclic_max_flow : Digraph.t -> source:int -> target:int -> flow
(** [remove_cycles] applied to [max_flow]. *)

val decompose : Digraph.t -> source:int -> target:int -> flow -> (float * int list) list
(** Path decomposition of an acyclic flow: [(amount, edge-id path)] list
    whose amounts sum to the flow value.  At most [m] paths. *)

val min_cut : Digraph.t -> source:int -> target:int -> float * bool array
(** Min-cut value and the source-side node set (from the max-flow residual
    graph). *)
