type flow = { value : float; on_edge : float array }

let eps = 1e-9

(* Residual network: arcs 2e (forward for edge e) and 2e+1 (backward).
   [radj.(v)] lists residual arc ids leaving v. *)
type residual = {
  rcap : float array;
  rto : int array;
  radj : int array array;
}

let build_residual g =
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let rcap = Array.make (2 * m) 0. and rto = Array.make (2 * m) 0 in
  let deg = Array.make n 0 in
  for e = 0 to m - 1 do
    rcap.(2 * e) <- Digraph.cap g e;
    rto.(2 * e) <- Digraph.dst g e;
    rcap.((2 * e) + 1) <- 0.;
    rto.((2 * e) + 1) <- Digraph.src g e;
    deg.(Digraph.src g e) <- deg.(Digraph.src g e) + 1;
    deg.(Digraph.dst g e) <- deg.(Digraph.dst g e) + 1
  done;
  let radj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  for e = 0 to m - 1 do
    let u = Digraph.src g e and v = Digraph.dst g e in
    radj.(u).(fill.(u)) <- 2 * e;
    fill.(u) <- fill.(u) + 1;
    radj.(v).(fill.(v)) <- (2 * e) + 1;
    fill.(v) <- fill.(v) + 1
  done;
  { rcap; rto; radj }

(* BFS level graph from [s]; returns levels or None if [t] unreachable. *)
let levels r n s t =
  let level = Array.make n (-1) in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  level.(s) <- 0;
  queue.(!tail) <- s;
  incr tail;
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    Array.iter
      (fun a ->
        if r.rcap.(a) > eps && level.(r.rto.(a)) < 0 then begin
          level.(r.rto.(a)) <- level.(v) + 1;
          queue.(!tail) <- r.rto.(a);
          incr tail
        end)
      r.radj.(v)
  done;
  if level.(t) < 0 then None else Some level

(* Dinic main loop; returns (value, residual). *)
let dinic g source target =
  if source = target then invalid_arg "Maxflow: source = target";
  let n = Digraph.node_count g in
  let r = build_residual g in
  let iter = Array.make n 0 in
  let total = ref 0. in
  let rec dfs level v f =
    if v = target then f
    else begin
      let pushed = ref 0. in
      while !pushed = 0. && iter.(v) < Array.length r.radj.(v) do
        let a = r.radj.(v).(iter.(v)) in
        let w = r.rto.(a) in
        if r.rcap.(a) > eps && level.(w) = level.(v) + 1 then begin
          let d = dfs level w (min f r.rcap.(a)) in
          if d > eps then begin
            r.rcap.(a) <- r.rcap.(a) -. d;
            r.rcap.(a lxor 1) <- r.rcap.(a lxor 1) +. d;
            pushed := d
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !pushed
    end
  in
  let continue = ref true in
  while !continue do
    match levels r n source target with
    | None -> continue := false
    | Some level ->
      Array.fill iter 0 n 0;
      let blocking = ref true in
      while !blocking do
        let d = dfs level source infinity in
        if d > eps then total := !total +. d else blocking := false
      done
  done;
  (!total, r)

let max_flow g ~source ~target =
  let value, r = dinic g source target in
  let m = Digraph.edge_count g in
  let on_edge =
    Array.init m (fun e ->
        let f = Digraph.cap g e -. r.rcap.(2 * e) in
        if f < eps then 0. else f)
  in
  { value; on_edge }

let remove_cycles g fl =
  let n = Digraph.node_count g in
  let f = Array.copy fl.on_edge in
  (* DFS on positive-flow edges; when a back edge closes a cycle, cancel
     the minimum flow along it and rescan.  Each cancellation zeroes at
     least one edge, so at most m rounds. *)
  let find_cycle () =
    let color = Array.make n 0 in
    (* 0 = unseen, 1 = on stack, 2 = done *)
    let parent_edge = Array.make n (-1) in
    let cycle = ref None in
    let rec dfs v =
      color.(v) <- 1;
      Digraph.iter_out g v (fun e ->
          if !cycle = None && f.(e) > eps then begin
            let w = Digraph.dst g e in
            if color.(w) = 0 then begin
              parent_edge.(w) <- e;
              dfs w
            end
            else if color.(w) = 1 then begin
              (* Cycle w -> ... -> v -> w; collect its edges. *)
              let rec collect u acc =
                if u = w then acc
                else
                  let pe = parent_edge.(u) in
                  collect (Digraph.src g pe) (pe :: acc)
              in
              cycle := Some (e :: collect v [])
            end
          end);
      if color.(v) = 1 then color.(v) <- 2
    in
    let v = ref 0 in
    while !cycle = None && !v < n do
      if color.(!v) = 0 then dfs !v;
      incr v
    done;
    !cycle
  in
  let rec cancel () =
    match find_cycle () with
    | None -> ()
    | Some edges ->
      let m = List.fold_left (fun acc e -> min acc f.(e)) infinity edges in
      List.iter
        (fun e ->
          f.(e) <- f.(e) -. m;
          if f.(e) < eps then f.(e) <- 0.)
        edges;
      cancel ()
  in
  cancel ();
  { fl with on_edge = f }

let acyclic_max_flow g ~source ~target =
  remove_cycles g (max_flow g ~source ~target)

let decompose g ~source ~target fl =
  let f = Array.copy fl.on_edge in
  let result = ref [] in
  let rec peel () =
    (* Follow positive flow from the source; the flow is acyclic so this
       terminates at the target (flow conservation). *)
    let rec walk v acc =
      if v = target then Some (List.rev acc)
      else begin
        let next = ref None in
        Digraph.iter_out g v (fun e ->
            if !next = None && f.(e) > eps then next := Some e);
        match !next with
        | None -> None
        | Some e -> walk (Digraph.dst g e) (e :: acc)
      end
    in
    match walk source [] with
    | None -> ()
    | Some path ->
      let amount = List.fold_left (fun acc e -> min acc f.(e)) infinity path in
      List.iter
        (fun e ->
          f.(e) <- f.(e) -. amount;
          if f.(e) < eps then f.(e) <- 0.)
        path;
      result := (amount, path) :: !result;
      peel ()
  in
  peel ();
  List.rev !result

let min_cut g ~source ~target =
  let value, r = dinic g source target in
  let n = Digraph.node_count g in
  (* Source side = nodes still reachable in the residual graph. *)
  let side = Array.make n false in
  let rec go stack =
    match stack with
    | [] -> ()
    | v :: rest ->
      let stack = ref rest in
      Array.iter
        (fun a ->
          if r.rcap.(a) > eps && not side.(r.rto.(a)) then begin
            side.(r.rto.(a)) <- true;
            stack := r.rto.(a) :: !stack
          end)
        r.radj.(v);
      go !stack
  in
  side.(source) <- true;
  go [ source ];
  (value, side)
