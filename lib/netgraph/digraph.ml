(* The adjacency is stored in CSR (compressed sparse row) form: one
   row-pointer array of length n+1 and one column-index array of length
   m per direction.  Edge ids in a row appear in ascending order (the
   counting pass scans edges in id order), which fixes the iteration
   order every DAG / unit-flow computation depends on. *)
type t = {
  n : int;
  m : int;
  esrc : int array;
  edst : int array;
  ecap : float array;
  out_row : int array; (* length n+1: out-edges of v are out_col.(out_row.(v)) .. *)
  out_col : int array; (* length m: edge ids, ascending within each row *)
  in_row : int array; (* length n+1 *)
  in_col : int array; (* length m *)
  names : string array;
  by_name : (string, int) Hashtbl.t;
}

(* Counting sort of [key.(e)] for e = 0..m-1 into (row, col).  Scanning
   edge ids in ascending order makes every row ascending too. *)
let csr_of_keys n m key =
  let row = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    row.(key.(e) + 1) <- row.(key.(e) + 1) + 1
  done;
  for v = 1 to n do
    row.(v) <- row.(v) + row.(v - 1)
  done;
  let col = Array.make m 0 in
  let cursor = Array.copy row in
  for e = 0 to m - 1 do
    let v = key.(e) in
    col.(cursor.(v)) <- e;
    cursor.(v) <- cursor.(v) + 1
  done;
  (row, col)

module Builder = struct
  type graph = t

  type t = {
    mutable nodes : int;
    mutable node_names : string list; (* reversed *)
    mutable edges : (int * int * float) list; (* reversed *)
    mutable nedges : int;
    name_tbl : (string, int) Hashtbl.t;
  }

  let create () =
    { nodes = 0; node_names = []; edges = []; nedges = 0;
      name_tbl = Hashtbl.create 16 }

  let add_node b ?name () =
    let id = b.nodes in
    let name = match name with Some s -> s | None -> "n" ^ string_of_int id in
    if Hashtbl.mem b.name_tbl name then
      invalid_arg (Printf.sprintf "Digraph.Builder.add_node: duplicate name %S" name);
    b.nodes <- id + 1;
    b.node_names <- name :: b.node_names;
    Hashtbl.replace b.name_tbl name id;
    id

  let add_named_node b name =
    match Hashtbl.find_opt b.name_tbl name with
    | Some id -> id
    | None -> add_node b ~name ()

  let add_edge b ~src ~dst ~cap =
    if src < 0 || src >= b.nodes then invalid_arg "Digraph.Builder.add_edge: bad src";
    if dst < 0 || dst >= b.nodes then invalid_arg "Digraph.Builder.add_edge: bad dst";
    if src = dst then invalid_arg "Digraph.Builder.add_edge: self-loop";
    if not (cap > 0.) then invalid_arg "Digraph.Builder.add_edge: capacity must be positive";
    let id = b.nedges in
    b.edges <- (src, dst, cap) :: b.edges;
    b.nedges <- id + 1;
    id

  let add_biedge b u v ~cap =
    let fwd = add_edge b ~src:u ~dst:v ~cap in
    let rev = add_edge b ~src:v ~dst:u ~cap in
    (fwd, rev)

  let node_count b = b.nodes

  let build b =
    let n = b.nodes and m = b.nedges in
    let esrc = Array.make m 0 and edst = Array.make m 0 and ecap = Array.make m 0. in
    List.iteri
      (fun i (u, v, c) ->
        let e = m - 1 - i in
        esrc.(e) <- u; edst.(e) <- v; ecap.(e) <- c)
      b.edges;
    let out_row, out_col = csr_of_keys n m esrc in
    let in_row, in_col = csr_of_keys n m edst in
    let names = Array.make n "" in
    List.iteri (fun i nm -> names.(n - 1 - i) <- nm) b.node_names;
    { n; m; esrc; edst; ecap; out_row; out_col; in_row; in_col; names;
      by_name = Hashtbl.copy b.name_tbl }
end

let of_edges ?names ~n edge_list =
  let b = Builder.create () in
  for i = 0 to n - 1 do
    let name = match names with Some a -> Some a.(i) | None -> None in
    ignore (Builder.add_node b ?name ())
  done;
  List.iter (fun (u, v, c) -> ignore (Builder.add_edge b ~src:u ~dst:v ~cap:c)) edge_list;
  Builder.build b

let node_count g = g.n
let edge_count g = g.m
let src g e = g.esrc.(e)
let dst g e = g.edst.(e)
let cap g e = g.ecap.(e)
let node_name g v = g.names.(v)

let node_of_name g name =
  match Hashtbl.find_opt g.by_name name with
  | Some v -> v
  | None -> raise Not_found

(* Borrowed views of the flat arrays, for allocation-free hot loops. *)
let srcs g = g.esrc
let dsts g = g.edst
let caps g = g.ecap
let out_offsets g = g.out_row
let out_index g = g.out_col
let in_offsets g = g.in_row
let in_index g = g.in_col

let out_edges g v = Array.sub g.out_col g.out_row.(v) (g.out_row.(v + 1) - g.out_row.(v))
let in_edges g v = Array.sub g.in_col g.in_row.(v) (g.in_row.(v + 1) - g.in_row.(v))
let out_degree g v = g.out_row.(v + 1) - g.out_row.(v)
let in_degree g v = g.in_row.(v + 1) - g.in_row.(v)

let iter_out g v f =
  for i = g.out_row.(v) to g.out_row.(v + 1) - 1 do
    f g.out_col.(i)
  done

let iter_in g v f =
  for i = g.in_row.(v) to g.in_row.(v + 1) - 1 do
    f g.in_col.(i)
  done

let find_edge g ~src ~dst =
  let rec scan i =
    if i >= g.out_row.(src + 1) then None
    else if g.edst.(g.out_col.(i)) = dst then Some g.out_col.(i)
    else scan (i + 1)
  in
  scan g.out_row.(src)

let edges g =
  List.init g.m (fun e -> (g.esrc.(e), g.edst.(e), g.ecap.(e)))

let with_capacities g caps =
  if Array.length caps <> g.m then
    invalid_arg "Digraph.with_capacities: length mismatch";
  Array.iter (fun c -> if not (c > 0.) then
    invalid_arg "Digraph.with_capacities: capacity must be positive") caps;
  { g with ecap = Array.copy caps }

let reverse g =
  { g with esrc = g.edst; edst = g.esrc;
    out_row = g.in_row; out_col = g.in_col;
    in_row = g.out_row; in_col = g.out_col }

let max_capacity g = Array.fold_left max neg_infinity g.ecap
let min_capacity g = Array.fold_left min infinity g.ecap

let is_connected_from g s =
  let seen = Array.make g.n false in
  let stack = ref [ s ] in
  seen.(s) <- true;
  let count = ref 1 in
  let rec go () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      iter_out g v (fun e ->
          let w = g.edst.(e) in
          if not seen.(w) then begin
            seen.(w) <- true;
            incr count;
            stack := w :: !stack
          end);
      go ()
  in
  go ();
  !count = g.n

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph: %d nodes, %d edges@," g.n g.m;
  for e = 0 to g.m - 1 do
    Format.fprintf ppf "  %s -> %s (cap %g)@,"
      g.names.(g.esrc.(e)) g.names.(g.edst.(e)) g.ecap.(e)
  done;
  Format.fprintf ppf "@]"
