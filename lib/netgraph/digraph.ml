type t = {
  n : int;
  m : int;
  esrc : int array;
  edst : int array;
  ecap : float array;
  outs : int array array;
  ins : int array array;
  names : string array;
  by_name : (string, int) Hashtbl.t;
}

module Builder = struct
  type graph = t

  type t = {
    mutable nodes : int;
    mutable node_names : string list; (* reversed *)
    mutable edges : (int * int * float) list; (* reversed *)
    mutable nedges : int;
    name_tbl : (string, int) Hashtbl.t;
  }

  let create () =
    { nodes = 0; node_names = []; edges = []; nedges = 0;
      name_tbl = Hashtbl.create 16 }

  let add_node b ?name () =
    let id = b.nodes in
    let name = match name with Some s -> s | None -> "n" ^ string_of_int id in
    if Hashtbl.mem b.name_tbl name then
      invalid_arg (Printf.sprintf "Digraph.Builder.add_node: duplicate name %S" name);
    b.nodes <- id + 1;
    b.node_names <- name :: b.node_names;
    Hashtbl.replace b.name_tbl name id;
    id

  let add_named_node b name =
    match Hashtbl.find_opt b.name_tbl name with
    | Some id -> id
    | None -> add_node b ~name ()

  let add_edge b ~src ~dst ~cap =
    if src < 0 || src >= b.nodes then invalid_arg "Digraph.Builder.add_edge: bad src";
    if dst < 0 || dst >= b.nodes then invalid_arg "Digraph.Builder.add_edge: bad dst";
    if src = dst then invalid_arg "Digraph.Builder.add_edge: self-loop";
    if not (cap > 0.) then invalid_arg "Digraph.Builder.add_edge: capacity must be positive";
    let id = b.nedges in
    b.edges <- (src, dst, cap) :: b.edges;
    b.nedges <- id + 1;
    id

  let add_biedge b u v ~cap =
    let fwd = add_edge b ~src:u ~dst:v ~cap in
    let rev = add_edge b ~src:v ~dst:u ~cap in
    (fwd, rev)

  let node_count b = b.nodes

  let build b =
    let n = b.nodes and m = b.nedges in
    let esrc = Array.make m 0 and edst = Array.make m 0 and ecap = Array.make m 0. in
    List.iteri
      (fun i (u, v, c) ->
        let e = m - 1 - i in
        esrc.(e) <- u; edst.(e) <- v; ecap.(e) <- c)
      b.edges;
    let outd = Array.make n 0 and ind = Array.make n 0 in
    for e = 0 to m - 1 do
      outd.(esrc.(e)) <- outd.(esrc.(e)) + 1;
      ind.(edst.(e)) <- ind.(edst.(e)) + 1
    done;
    let outs = Array.init n (fun v -> Array.make outd.(v) 0) in
    let ins = Array.init n (fun v -> Array.make ind.(v) 0) in
    let oi = Array.make n 0 and ii = Array.make n 0 in
    for e = 0 to m - 1 do
      let u = esrc.(e) and v = edst.(e) in
      outs.(u).(oi.(u)) <- e; oi.(u) <- oi.(u) + 1;
      ins.(v).(ii.(v)) <- e; ii.(v) <- ii.(v) + 1
    done;
    let names = Array.make n "" in
    List.iteri (fun i nm -> names.(n - 1 - i) <- nm) b.node_names;
    { n; m; esrc; edst; ecap; outs; ins; names; by_name = Hashtbl.copy b.name_tbl }
end

let of_edges ?names ~n edge_list =
  let b = Builder.create () in
  for i = 0 to n - 1 do
    let name = match names with Some a -> Some a.(i) | None -> None in
    ignore (Builder.add_node b ?name ())
  done;
  List.iter (fun (u, v, c) -> ignore (Builder.add_edge b ~src:u ~dst:v ~cap:c)) edge_list;
  Builder.build b

let node_count g = g.n
let edge_count g = g.m
let src g e = g.esrc.(e)
let dst g e = g.edst.(e)
let cap g e = g.ecap.(e)
let node_name g v = g.names.(v)

let node_of_name g name =
  match Hashtbl.find_opt g.by_name name with
  | Some v -> v
  | None -> raise Not_found

let out_edges g v = g.outs.(v)
let in_edges g v = g.ins.(v)
let out_degree g v = Array.length g.outs.(v)
let in_degree g v = Array.length g.ins.(v)

let find_edge g ~src ~dst =
  let rec scan i es =
    if i >= Array.length es then None
    else if g.edst.(es.(i)) = dst then Some es.(i)
    else scan (i + 1) es
  in
  scan 0 g.outs.(src)

let edges g =
  List.init g.m (fun e -> (g.esrc.(e), g.edst.(e), g.ecap.(e)))

let with_capacities g caps =
  if Array.length caps <> g.m then
    invalid_arg "Digraph.with_capacities: length mismatch";
  Array.iter (fun c -> if not (c > 0.) then
    invalid_arg "Digraph.with_capacities: capacity must be positive") caps;
  { g with ecap = Array.copy caps }

let reverse g =
  { g with esrc = g.edst; edst = g.esrc; outs = g.ins; ins = g.outs }

let max_capacity g = Array.fold_left max neg_infinity g.ecap
let min_capacity g = Array.fold_left min infinity g.ecap

let is_connected_from g s =
  let seen = Array.make g.n false in
  let stack = ref [ s ] in
  seen.(s) <- true;
  let count = ref 1 in
  let rec go () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      Array.iter
        (fun e ->
          let w = g.edst.(e) in
          if not seen.(w) then begin
            seen.(w) <- true;
            incr count;
            stack := w :: !stack
          end)
        g.outs.(v);
      go ()
  in
  go ();
  !count = g.n

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph: %d nodes, %d edges@," g.n g.m;
  for e = 0 to g.m - 1 do
    Format.fprintf ppf "  %s -> %s (cap %g)@,"
      g.names.(g.esrc.(e)) g.names.(g.edst.(e)) g.ecap.(e)
  done;
  Format.fprintf ppf "@]"
