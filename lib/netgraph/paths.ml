(* Binary min-heap keyed by float priority, holding node ids.  We allow
   duplicate entries and skip stale pops, which keeps the code simple and
   is the usual trade-off for Dijkstra.

   The heap is part of the reusable {!Scratch} arena, so its operations
   must not allocate.  Without flambda the native compiler boxes floats
   crossing a non-inlined function boundary, so the hot entry points
   never take or return a float: the key travels through the one-slot
   [karg] float array (stores into a float array stay unboxed), and pops
   read [keys.(0)] / [vals.(0)] directly before calling {!Heap.drop}. *)
module Heap = struct
  type t = {
    mutable keys : float array;
    mutable vals : int array;
    mutable size : int;
    karg : float array; (* 1-slot argument channel: push key, unboxed *)
  }

  let create cap =
    { keys = Array.make (max 1 cap) 0.; vals = Array.make (max 1 cap) 0;
      size = 0; karg = Array.make 1 0. }

  let clear h = h.size <- 0

  let is_empty h = h.size = 0

  let grow h =
    let c = Array.length h.keys in
    let keys = Array.make (2 * c) 0. and vals = Array.make (2 * c) 0 in
    Array.blit h.keys 0 keys 0 h.size;
    Array.blit h.vals 0 vals 0 h.size;
    h.keys <- keys;
    h.vals <- vals

  (* Pushes [(karg.(0), v)]; grow-only, so allocation-free once warm. *)
  let push_karg h v =
    if h.size = Array.length h.keys then grow h;
    let k = h.karg.(0) in
    let i = ref h.size in
    h.size <- h.size + 1;
    h.keys.(!i) <- k;
    h.vals.(!i) <- v;
    while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
      let p = (!i - 1) / 2 in
      let tk = h.keys.(p) and tv = h.vals.(p) in
      h.keys.(p) <- h.keys.(!i); h.vals.(p) <- h.vals.(!i);
      h.keys.(!i) <- tk; h.vals.(!i) <- tv;
      i := p
    done

  (* Removes the minimum; the caller reads [keys.(0)] / [vals.(0)]
     before dropping. *)
  let drop h =
    h.size <- h.size - 1;
    h.keys.(0) <- h.keys.(h.size);
    h.vals.(0) <- h.vals.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
      if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let s = !smallest in
        let tk = h.keys.(s) and tv = h.vals.(s) in
        h.keys.(s) <- h.keys.(!i); h.vals.(s) <- h.vals.(!i);
        h.keys.(!i) <- tk; h.vals.(!i) <- tv;
        i := s
      end
    done
end

(* ------------------------------------------------------------------ *)
(* Reusable scratch arena                                              *)
(* ------------------------------------------------------------------ *)

module Scratch = struct
  type t = {
    heap : Heap.t;
    mutable mark : int array; (* stamped membership: mark.(v) = stamp *)
    mutable stamp : int;
    mutable stack : int array; (* DFS work stack *)
    farg : float array; (* 1-slot float argument channel (see Heap.karg) *)
  }

  let create () =
    { heap = Heap.create 64; mark = [||]; stamp = 0; stack = [||];
      farg = Array.make 1 0. }

  (* Grow-only: after the first call at a given size every later call is
     allocation-free. *)
  let ensure s n =
    if Array.length s.mark < n then begin
      s.mark <- Array.make n 0;
      s.stamp <- 0;
      s.stack <- Array.make n 0
    end

  let farg s = s.farg
end

(* Per-domain scratch for the legacy (arena-less) entry points: they
   keep their historical signatures but stop thrashing the minor heap
   with per-call heap/bucket allocations.  Domain-local, so parallel
   sweeps on worker domains never share one. *)
let dls_scratch = Domain.DLS.new_key (fun () -> Scratch.create ())

let domain_scratch () = Domain.DLS.get dls_scratch

let check_weights g weights =
  if Array.length weights <> Digraph.edge_count g then
    invalid_arg "Paths: weight vector length mismatch";
  Array.iter
    (fun w -> if not (w > 0.) then invalid_arg "Paths: weights must be positive")
    weights

(* Core settle loop over one CSR direction: [row]/[col] index the edges
   incident to a settled node, [ep.(e)] is the node an edge leads to in
   the traversal direction (edst for forward, esrc for reversed). *)
let settle_loop h row col ep weights dist =
  while not (Heap.is_empty h) do
    let d = h.Heap.keys.(0) and v = h.Heap.vals.(0) in
    Heap.drop h;
    if d <= dist.(v) then
      for i = row.(v) to row.(v + 1) - 1 do
        let e = col.(i) in
        let u = ep.(e) in
        let nd = d +. weights.(e) in
        if nd < dist.(u) then begin
          dist.(u) <- nd;
          h.Heap.karg.(0) <- nd;
          Heap.push_karg h u
        end
      done
  done

let dijkstra_into scratch g ~weights ~source ~dist =
  let n = Digraph.node_count g in
  if Array.length dist <> n then
    invalid_arg "Paths.dijkstra_into: dist length mismatch";
  Scratch.ensure scratch n;
  let h = scratch.Scratch.heap in
  Heap.clear h;
  Array.fill dist 0 n infinity;
  dist.(source) <- 0.;
  h.Heap.karg.(0) <- 0.;
  Heap.push_karg h source;
  settle_loop h (Digraph.out_offsets g) (Digraph.out_index g) (Digraph.dsts g)
    weights dist

let dijkstra_to_into scratch g ~weights ~target ~dist =
  let n = Digraph.node_count g in
  if Array.length dist <> n then
    invalid_arg "Paths.dijkstra_to_into: dist length mismatch";
  Scratch.ensure scratch n;
  let h = scratch.Scratch.heap in
  Heap.clear h;
  Array.fill dist 0 n infinity;
  dist.(target) <- 0.;
  h.Heap.karg.(0) <- 0.;
  Heap.push_karg h target;
  settle_loop h (Digraph.in_offsets g) (Digraph.in_index g) (Digraph.srcs g)
    weights dist

let dijkstra g ~weights ~source =
  check_weights g weights;
  let dist = Array.make (Digraph.node_count g) infinity in
  dijkstra_into (domain_scratch ()) g ~weights ~source ~dist;
  dist

let dijkstra_to g ~weights ~target =
  check_weights g weights;
  let dist = Array.make (Digraph.node_count g) infinity in
  dijkstra_to_into (domain_scratch ()) g ~weights ~target ~dist;
  dist

(* Incremental single-edge repair of a distance-to-target array.

   [dist] is assumed correct for the weight vector that equals [weights]
   everywhere except on [edge], whose previous value was [old_weight].
   Distances propagate towards the target, so all work happens on the
   reversed graph, exactly as in [dijkstra_to].

   Tolerance: callers detect ties with a relative epsilon; tightness
   tests here use a slightly generous one.  Over-approximating the
   affected set only costs work, never correctness, because every node
   in it gets its distance recomputed from scratch. *)
let tight_eps = 1e-9

let update_decrease scratch g weights dist edge =
  let u = Digraph.src g edge and v = Digraph.dst g edge in
  let nd = weights.(edge) +. dist.(v) in
  if dist.(v) = infinity || nd >= dist.(u) then 0
  else begin
    let h = scratch.Scratch.heap in
    Heap.clear h;
    let in_row = Digraph.in_offsets g and in_col = Digraph.in_index g in
    let esrc = Digraph.srcs g in
    dist.(u) <- nd;
    h.Heap.karg.(0) <- nd;
    Heap.push_karg h u;
    let changed = ref 1 in
    while not (Heap.is_empty h) do
      let d = h.Heap.keys.(0) and x = h.Heap.vals.(0) in
      Heap.drop h;
      if d <= dist.(x) then
        for i = in_row.(x) to in_row.(x + 1) - 1 do
          let e = in_col.(i) in
          let p = esrc.(e) in
          let cand = d +. weights.(e) in
          if cand < dist.(p) then begin
            incr changed;
            dist.(p) <- cand;
            h.Heap.karg.(0) <- cand;
            Heap.push_karg h p
          end
        done
    done;
    !changed
  end

(* Reads the old weight from [scratch.farg.(0)]: a float parameter would
   be boxed at this (non-inlinable) function's call boundary, defeating
   the allocation-free repair path. *)
let update_increase scratch g weights dist edge =
  let old_weight = scratch.Scratch.farg.(0) in
  let u = Digraph.src g edge and v = Digraph.dst g edge in
  (* [is_tight] inlined by hand: the call may not be inlined by the
     compiler, and a non-inlined call boxes its float arguments. *)
  let du = dist.(u) and dv = dist.(v) in
  if
    not
      (du < infinity && dv < infinity
      && abs_float ((old_weight +. dv) -. du)
         <= tight_eps *. (1. +. abs_float du))
  then 0
  else begin
    let n = Digraph.node_count g in
    Scratch.ensure scratch n;
    let in_row = Digraph.in_offsets g and in_col = Digraph.in_index g in
    let out_row = Digraph.out_offsets g and out_col = Digraph.out_index g in
    let esrc = Digraph.srcs g and edst = Digraph.dsts g in
    (* Affected over-approximation: nodes with a tight path (under the
       old weight) through [edge].  Membership is a stamp in the arena's
       mark array, so clearing it between probes is one counter bump. *)
    scratch.Scratch.stamp <- scratch.Scratch.stamp + 1;
    let stamp = scratch.Scratch.stamp in
    let mark = scratch.Scratch.mark and stack = scratch.Scratch.stack in
    mark.(u) <- stamp;
    stack.(0) <- u;
    let sp = ref 1 in
    while !sp > 0 do
      decr sp;
      let x = stack.(!sp) in
      for i = in_row.(x) to in_row.(x + 1) - 1 do
        let e = in_col.(i) in
        let p = esrc.(e) in
        if
          mark.(p) <> stamp && e <> edge
          && dist.(p) < infinity && dist.(x) < infinity
          && abs_float ((weights.(e) +. dist.(x)) -. dist.(p))
             <= tight_eps *. (1. +. abs_float dist.(p))
        then begin
          mark.(p) <- stamp;
          stack.(!sp) <- p;
          incr sp
        end
      done
    done;
    (* Re-seed every affected node from its unaffected out-neighbours
       (current weights, including the new value on [edge]). *)
    let h = scratch.Scratch.heap in
    Heap.clear h;
    let count = ref 0 in
    for x = 0 to n - 1 do
      if mark.(x) = stamp then begin
        incr count;
        let best = ref infinity in
        for i = out_row.(x) to out_row.(x + 1) - 1 do
          let e = out_col.(i) in
          let y = edst.(e) in
          if mark.(y) <> stamp then begin
            let cand = weights.(e) +. dist.(y) in
            if cand < !best then best := cand
          end
        done;
        dist.(x) <- !best;
        if !best < infinity then begin
          h.Heap.karg.(0) <- !best;
          Heap.push_karg h x
        end
      end
    done;
    (* Dijkstra restricted to the affected region. *)
    while not (Heap.is_empty h) do
      let d = h.Heap.keys.(0) and x = h.Heap.vals.(0) in
      Heap.drop h;
      if d <= dist.(x) then
        for i = in_row.(x) to in_row.(x + 1) - 1 do
          let e = in_col.(i) in
          let p = esrc.(e) in
          if mark.(p) = stamp then begin
            let cand = d +. weights.(e) in
            if cand < dist.(p) then begin
              dist.(p) <- cand;
              h.Heap.karg.(0) <- cand;
              Heap.push_karg h p
            end
          end
        done
    done;
    !count
  end

(* Allocation-free repair core: the old weight travels through the
   arena's [farg] slot instead of a (boxed) float argument — the form
   the engine's zero-allocation probe loop calls. *)
let dijkstra_update_prepared scratch g ~weights ~dist ~edge =
  if Array.length weights <> Digraph.edge_count g then
    invalid_arg "Paths: weight vector length mismatch";
  if Array.length dist <> Digraph.node_count g then
    invalid_arg "Paths.dijkstra_update: dist length mismatch";
  let old_weight = scratch.Scratch.farg.(0) in
  let w = weights.(edge) in
  if not (w > 0.) then invalid_arg "Paths: weights must be positive";
  if w = old_weight then 0
  else if w < old_weight then update_decrease scratch g weights dist edge
  else update_increase scratch g weights dist edge

let dijkstra_update_to_into scratch g ~weights ~target:_ ~dist ~edge
    ~old_weight =
  scratch.Scratch.farg.(0) <- old_weight;
  dijkstra_update_prepared scratch g ~weights ~dist ~edge

let dijkstra_update_to g ~weights ~target ~dist ~edge ~old_weight =
  (* Hot path: called once per dirty destination per weight change, so
     only the changed entry is validated (a full [check_weights] scan
     here measurably slows incremental evaluation on small graphs). *)
  dijkstra_update_to_into (domain_scratch ()) g ~weights ~target ~dist ~edge
    ~old_weight

let dijkstra_with_parents ?stop_at g ~weights ~source =
  check_weights g weights;
  let n = Digraph.node_count g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let scratch = domain_scratch () in
  let h = scratch.Scratch.heap in
  Heap.clear h;
  let out_row = Digraph.out_offsets g and out_col = Digraph.out_index g in
  let edst = Digraph.dsts g in
  dist.(source) <- 0.;
  h.Heap.karg.(0) <- 0.;
  Heap.push_karg h source;
  let stopped = ref false in
  while not (!stopped || Heap.is_empty h) do
    let d = h.Heap.keys.(0) and v = h.Heap.vals.(0) in
    Heap.drop h;
    if d <= dist.(v) then begin
      if stop_at = Some v then stopped := true
      else
        for i = out_row.(v) to out_row.(v + 1) - 1 do
          let e = out_col.(i) in
          let w = edst.(e) in
          let nd = d +. weights.(e) in
          if nd < dist.(w) then begin
            dist.(w) <- nd;
            parent.(w) <- e;
            h.Heap.karg.(0) <- nd;
            Heap.push_karg h w
          end
        done
    end
  done;
  (dist, parent)

let shortest_path g ~weights ~source ~target =
  (* Parent-tracking Dijkstra: exact, robust to arbitrarily small
     weights (a tolerance-based walk is not). *)
  let dist, parent = dijkstra_with_parents ~stop_at:target g ~weights ~source in
  if dist.(target) = infinity then None
  else begin
    let rec collect v acc =
      if v = source then acc
      else
        let e = parent.(v) in
        collect (Digraph.src g e) (e :: acc)
    in
    Some (collect target [])
  end

let path_cost ~weights path =
  List.fold_left (fun acc e -> acc +. weights.(e)) 0. path

let topo_order g ~keep =
  let n = Digraph.node_count g in
  let indeg = Array.make n 0 in
  let m = Digraph.edge_count g in
  for e = 0 to m - 1 do
    if keep e then indeg.(Digraph.dst g e) <- indeg.(Digraph.dst g e) + 1
  done;
  let order = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then begin
      order.(!tail) <- v;
      incr tail
    end
  done;
  while !head < !tail do
    let v = order.(!head) in
    incr head;
    Digraph.iter_out g v (fun e ->
        if keep e then begin
          let w = Digraph.dst g e in
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then begin
            order.(!tail) <- w;
            incr tail
          end
        end)
  done;
  if !tail <> n then failwith "Paths.topo_order: subgraph has a cycle";
  order

let is_acyclic g ~keep =
  match topo_order g ~keep with
  | _ -> true
  | exception Failure _ -> false

let reachable g ~source =
  let n = Digraph.node_count g in
  let seen = Array.make n false in
  let rec go stack =
    match stack with
    | [] -> ()
    | v :: rest ->
      let stack = ref rest in
      Digraph.iter_out g v (fun e ->
          let w = Digraph.dst g e in
          if not seen.(w) then begin
            seen.(w) <- true;
            stack := w :: !stack
          end);
      go !stack
  in
  seen.(source) <- true;
  go [ source ];
  seen

let all_simple_paths ?(max_paths = 10_000) g ~source ~target =
  let n = Digraph.node_count g in
  let on_path = Array.make n false in
  let found = ref [] in
  let count = ref 0 in
  let rec dfs v acc =
    if !count < max_paths then begin
      if v = target then begin
        found := List.rev acc :: !found;
        incr count
      end
      else begin
        on_path.(v) <- true;
        Digraph.iter_out g v (fun e ->
            let w = Digraph.dst g e in
            if not on_path.(w) then dfs w (e :: acc));
        on_path.(v) <- false
      end
    end
  in
  dfs source [];
  List.rev !found
