(* Binary min-heap keyed by float priority, holding node ids.  We allow
   duplicate entries and skip stale pops, which keeps the code simple and
   is the usual trade-off for Dijkstra. *)
module Heap = struct
  type t = {
    mutable keys : float array;
    mutable vals : int array;
    mutable size : int;
  }

  let create cap = { keys = Array.make (max 1 cap) 0.; vals = Array.make (max 1 cap) 0; size = 0 }

  let is_empty h = h.size = 0

  let grow h =
    let c = Array.length h.keys in
    let keys = Array.make (2 * c) 0. and vals = Array.make (2 * c) 0 in
    Array.blit h.keys 0 keys 0 h.size;
    Array.blit h.vals 0 vals 0 h.size;
    h.keys <- keys;
    h.vals <- vals

  let push h k v =
    if h.size = Array.length h.keys then grow h;
    let i = ref h.size in
    h.size <- h.size + 1;
    h.keys.(!i) <- k;
    h.vals.(!i) <- v;
    while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
      let p = (!i - 1) / 2 in
      let tk = h.keys.(p) and tv = h.vals.(p) in
      h.keys.(p) <- h.keys.(!i); h.vals.(p) <- h.vals.(!i);
      h.keys.(!i) <- tk; h.vals.(!i) <- tv;
      i := p
    done

  let pop h =
    let k = h.keys.(0) and v = h.vals.(0) in
    h.size <- h.size - 1;
    h.keys.(0) <- h.keys.(h.size);
    h.vals.(0) <- h.vals.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
      if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let s = !smallest in
        let tk = h.keys.(s) and tv = h.vals.(s) in
        h.keys.(s) <- h.keys.(!i); h.vals.(s) <- h.vals.(!i);
        h.keys.(!i) <- tk; h.vals.(!i) <- tv;
        i := s
      end
    done;
    (k, v)
end

let check_weights g weights =
  if Array.length weights <> Digraph.edge_count g then
    invalid_arg "Paths: weight vector length mismatch";
  Array.iter
    (fun w -> if not (w > 0.) then invalid_arg "Paths: weights must be positive")
    weights

let dijkstra_generic out_of g weights source =
  check_weights g weights;
  let n = Digraph.node_count g in
  let dist = Array.make n infinity in
  let heap = Heap.create (n + 1) in
  dist.(source) <- 0.;
  Heap.push heap 0. source;
  while not (Heap.is_empty heap) do
    let d, v = Heap.pop heap in
    if d <= dist.(v) then
      Array.iter
        (fun e ->
          let w = Digraph.dst g e in
          (* [out_of] decides traversal direction; on reversed traversal
             the "dst" is the edge's source. *)
          let w = if out_of then w else Digraph.src g e in
          let nd = d +. weights.(e) in
          if nd < dist.(w) then begin
            dist.(w) <- nd;
            Heap.push heap nd w
          end)
        (if out_of then Digraph.out_edges g v else Digraph.in_edges g v)
  done;
  dist

let dijkstra g ~weights ~source = dijkstra_generic true g weights source

let dijkstra_to g ~weights ~target = dijkstra_generic false g weights target

(* Incremental single-edge repair of a distance-to-target array.

   [dist] is assumed correct for the weight vector that equals [weights]
   everywhere except on [edge], whose previous value was [old_weight].
   Distances propagate towards the target, so all work happens on the
   reversed graph, exactly as in [dijkstra_to].

   Tolerance: callers detect ties with a relative epsilon; tightness
   tests here use a slightly generous one.  Over-approximating the
   affected set only costs work, never correctness, because every node
   in it gets its distance recomputed from scratch. *)
let tight_eps = 1e-9

let is_tight w du dv =
  du < infinity && dv < infinity
  && abs_float ((w +. dv) -. du) <= tight_eps *. (1. +. abs_float du)

let update_decrease g weights dist edge =
  let u = Digraph.src g edge and v = Digraph.dst g edge in
  let nd = weights.(edge) +. dist.(v) in
  if dist.(v) = infinity || nd >= dist.(u) then 0
  else begin
    let heap = Heap.create 16 in
    dist.(u) <- nd;
    Heap.push heap nd u;
    let changed = ref 1 in
    while not (Heap.is_empty heap) do
      let d, x = Heap.pop heap in
      if d <= dist.(x) then
        Array.iter
          (fun e ->
            let p = Digraph.src g e in
            let cand = d +. weights.(e) in
            if cand < dist.(p) then begin
              incr changed;
              dist.(p) <- cand;
              Heap.push heap cand p
            end)
          (Digraph.in_edges g x)
    done;
    !changed
  end

let update_increase g weights dist edge ~old_weight =
  let u = Digraph.src g edge and v = Digraph.dst g edge in
  if not (is_tight old_weight dist.(u) dist.(v)) then 0
  else begin
    let n = Digraph.node_count g in
    (* Affected over-approximation: nodes with a tight path (under the
       old weight) through [edge]. *)
    let affected = Array.make n false in
    affected.(u) <- true;
    let stack = ref [ u ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | x :: rest ->
        stack := rest;
        Array.iter
          (fun e ->
            let p = Digraph.src g e in
            if (not affected.(p)) && e <> edge
               && is_tight weights.(e) dist.(p) dist.(x)
            then begin
              affected.(p) <- true;
              stack := p :: !stack
            end)
          (Digraph.in_edges g x)
    done;
    (* Re-seed every affected node from its unaffected out-neighbours
       (current weights, including the new value on [edge]). *)
    let heap = Heap.create 16 in
    let count = ref 0 in
    for x = 0 to n - 1 do
      if affected.(x) then begin
        incr count;
        let best = ref infinity in
        Array.iter
          (fun e ->
            let y = Digraph.dst g e in
            if not affected.(y) then begin
              let cand = weights.(e) +. dist.(y) in
              if cand < !best then best := cand
            end)
          (Digraph.out_edges g x);
        dist.(x) <- !best;
        if !best < infinity then Heap.push heap !best x
      end
    done;
    (* Dijkstra restricted to the affected region. *)
    while not (Heap.is_empty heap) do
      let d, x = Heap.pop heap in
      if d <= dist.(x) then
        Array.iter
          (fun e ->
            let p = Digraph.src g e in
            if affected.(p) then begin
              let cand = d +. weights.(e) in
              if cand < dist.(p) then begin
                dist.(p) <- cand;
                Heap.push heap cand p
              end
            end)
          (Digraph.in_edges g x)
    done;
    !count
  end

let dijkstra_update_to g ~weights ~target:_ ~dist ~edge ~old_weight =
  (* Hot path: called once per dirty destination per weight change, so
     only the changed entry is validated (a full [check_weights] scan
     here measurably slows incremental evaluation on small graphs). *)
  if Array.length weights <> Digraph.edge_count g then
    invalid_arg "Paths: weight vector length mismatch";
  if Array.length dist <> Digraph.node_count g then
    invalid_arg "Paths.dijkstra_update_to: dist length mismatch";
  let w = weights.(edge) in
  if not (w > 0.) then invalid_arg "Paths: weights must be positive";
  if w = old_weight then 0
  else if w < old_weight then update_decrease g weights dist edge
  else update_increase g weights dist edge ~old_weight

let dijkstra_with_parents ?stop_at g ~weights ~source =
  check_weights g weights;
  let n = Digraph.node_count g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Heap.create (n + 1) in
  dist.(source) <- 0.;
  Heap.push heap 0. source;
  let stopped = ref false in
  while not (!stopped || Heap.is_empty heap) do
    let d, v = Heap.pop heap in
    if d <= dist.(v) then begin
      if stop_at = Some v then stopped := true
      else
        Array.iter
          (fun e ->
            let w = Digraph.dst g e in
            let nd = d +. weights.(e) in
            if nd < dist.(w) then begin
              dist.(w) <- nd;
              parent.(w) <- e;
              Heap.push heap nd w
            end)
          (Digraph.out_edges g v)
    end
  done;
  (dist, parent)

let shortest_path g ~weights ~source ~target =
  (* Parent-tracking Dijkstra: exact, robust to arbitrarily small
     weights (a tolerance-based walk is not). *)
  let dist, parent = dijkstra_with_parents ~stop_at:target g ~weights ~source in
  if dist.(target) = infinity then None
  else begin
    let rec collect v acc =
      if v = source then acc
      else
        let e = parent.(v) in
        collect (Digraph.src g e) (e :: acc)
    in
    Some (collect target [])
  end

let path_cost ~weights path =
  List.fold_left (fun acc e -> acc +. weights.(e)) 0. path

let topo_order g ~keep =
  let n = Digraph.node_count g in
  let indeg = Array.make n 0 in
  let m = Digraph.edge_count g in
  for e = 0 to m - 1 do
    if keep e then indeg.(Digraph.dst g e) <- indeg.(Digraph.dst g e) + 1
  done;
  let order = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then begin
      order.(!tail) <- v;
      incr tail
    end
  done;
  while !head < !tail do
    let v = order.(!head) in
    incr head;
    Array.iter
      (fun e ->
        if keep e then begin
          let w = Digraph.dst g e in
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then begin
            order.(!tail) <- w;
            incr tail
          end
        end)
      (Digraph.out_edges g v)
  done;
  if !tail <> n then failwith "Paths.topo_order: subgraph has a cycle";
  order

let is_acyclic g ~keep =
  match topo_order g ~keep with
  | _ -> true
  | exception Failure _ -> false

let reachable g ~source =
  let n = Digraph.node_count g in
  let seen = Array.make n false in
  let rec go stack =
    match stack with
    | [] -> ()
    | v :: rest ->
      let stack = ref rest in
      Array.iter
        (fun e ->
          let w = Digraph.dst g e in
          if not seen.(w) then begin
            seen.(w) <- true;
            stack := w :: !stack
          end)
        (Digraph.out_edges g v);
      go !stack
  in
  seen.(source) <- true;
  go [ source ];
  seen

let all_simple_paths ?(max_paths = 10_000) g ~source ~target =
  let n = Digraph.node_count g in
  let on_path = Array.make n false in
  let found = ref [] in
  let count = ref 0 in
  let rec dfs v acc =
    if !count < max_paths then begin
      if v = target then begin
        found := List.rev acc :: !found;
        incr count
      end
      else begin
        on_path.(v) <- true;
        Array.iter
          (fun e ->
            let w = Digraph.dst g e in
            if not on_path.(w) then dfs w (e :: acc))
          (Digraph.out_edges g v);
        on_path.(v) <- false
      end
    end
  in
  dfs source [];
  List.rev !found
