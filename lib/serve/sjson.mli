(** Minimal JSON for the serving protocol.

    The repo deliberately carries no JSON dependency; the event grammar
    is tiny and the response writer needs deterministic float rendering
    anyway (the byte-identical-across-[--jobs] guarantee), so this is a
    self-contained recursive-descent parser and printer.  It accepts
    strict JSON (RFC 8259) minus surrogate-pair escapes: [\uXXXX] is
    decoded for the BMP only, which covers every event field the
    protocol defines (node names are ASCII in practice).  Parse errors
    are returned, never raised — a malformed line must produce an error
    response, not kill the daemon. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parses exactly one JSON value; trailing non-whitespace is an
    error.  The error string says what was expected and at which byte
    offset. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val to_float : t -> float option
(** [Num] payload. *)

val to_int : t -> int option
(** [Num] payloads that are exact integers (rejects 1.5 and NaN). *)

val to_string : t -> string option
(** [Str] payload. *)

val to_list : t -> t list option
(** [Arr] payload. *)

val escape : string -> string
(** The quoted JSON string literal for [s], with control characters,
    quotes and backslashes escaped. *)

val render : t -> string
(** Deterministic one-line rendering: object fields in construction
    order, integer-valued floats as [%.0f] and everything else as the
    round-trippable [%.17g] (determinism beats prettiness),
    [nan]/infinities as [null]/[1e999]/[-1e999] to match the repo's
    other writers. *)
