(** The TE-as-a-service event loop.

    A daemon holds one persistent optimization state — the incumbent
    weight vector and waypoint setting, a warm {!Engine.Evaluator}
    synced to them, the current demand matrix, the set of failed links
    and the last min-MLU LP basis — and processes a stream of
    {!Event.t} lines.  Every state-changing event (demand delta,
    matrix swap, link down/up, [resolve]) is answered with a
    churn-budgeted incremental re-optimization
    ({!Te.Reopt.reoptimize_ctx} fed the warm evaluator) under a
    per-update deadline, plus a warm-basis LP lower bound for the
    optimality-gap readout; one [serve/1] JSON response line is emitted
    per event.

    Degradation policy: if the deadline budget is zero, or already
    spent by the time the event is applied and the incumbent
    re-evaluated, re-optimization is skipped entirely and the incumbent
    is kept ([degraded] is true in the response and the churn is 0).
    If the deadline fires inside the re-optimization, the budgeted
    search stops early and returns the best candidate found — never
    worse than the incumbent ([deadline_hit] is true).  Because
    deadline expiry depends on the wall clock, byte-identical response
    streams across [--jobs] (or across runs) are guaranteed only when
    the deadline never fires — run determinism checks with a generous
    (or negative = infinite) deadline and [timings = false].

    The reader is channel-agnostic: {!handle_line} maps one request
    line to at most one response line with no I/O of its own, so the
    stdin loop in {!run} can be swapped for a unix-socket accept loop
    without touching the state machine. *)

type config = {
  deadline_ms : float;
      (** per-update latency budget; [0.] degrades every update to the
          incumbent (useful as a floor test), negative disables the
          deadline entirely *)
  churn_budget : int;
      (** max links whose weight may differ from the incumbent per
          update; [<= 0] uses the {!Te.Reopt} default of [|E| / 10] *)
  reopt_evals : int;  (** local-search evaluation budget per update *)
  resolve_evals : int;  (** evaluation budget for [resolve] events *)
  lp_bound : bool;
      (** compute the warm-basis LP lower bound per update (skipped
          while any link is down: the basis is only valid for the full
          topology) *)
  lp_every : int;
      (** LP cadence: solve on the first and every k-th state-changing
          update ([<= 1] = every update); [resolve] always solves;
          updates in between report a null bound.  [report] never
          solves — it shows the last computed bound. *)
  prune : bool;  (** candidate pruning for the waypoint re-pick *)
  timings : bool;
      (** include [latency_ms] (and report-percentiles) in responses;
          disable for byte-identical streams *)
  seed : int;  (** base seed; update [k] reseeds with [seed + 7919 k] *)
}

val default_config : config
(** 1 s deadline, Reopt-default churn budget, 400/4000 evals,
    LP bound on every update, pruning on, timings on, seed 0. *)

type t

val create :
  Obs.Ctx.t ->
  config ->
  deployed_weights:int array ->
  deployed_waypoints:Te.Segments.setting ->
  Netgraph.Digraph.t ->
  Te.Network.demand array ->
  t
(** Boots the daemon on an already-deployed setting: the initial matrix
    is [demands] (waypoints parallel to it), the evaluator is built
    warm on the deployed weights.  No LP solve happens here — the first
    update pays the one cold solve whose basis every later update
    re-uses. *)

val handle_line : t -> string -> string option
(** Processes one request line; returns the response line (no trailing
    newline), or [None] for blank lines and lines after [quit].
    Never raises on malformed input — bad lines consume a sequence
    number and yield a [status:"error"] response. *)

val finished : t -> bool
(** True once a [quit] event was processed. *)

val run : t -> in_channel -> out_channel -> unit
(** The stdin/stdout loop: reads lines until EOF or [quit], writes one
    response line per event, flushing after each so a driving process
    can pipeline. *)

type summary = {
  events : int;  (** lines consumed (incl. errors) *)
  updates : int;  (** state-changing events processed *)
  errors : int;
  improved : int;  (** updates that beat the incumbent *)
  degraded : int;  (** updates skipped by the deadline floor *)
  deadline_hits : int;  (** re-optimizations cut short mid-search *)
  weight_churn_total : int;
  waypoint_churn_total : int;
  disconnected : int;  (** demands currently unroutable *)
  mlu : float;  (** incumbent MLU on the current matrix *)
  lp_bound : float;  (** last LP lower bound; [nan] if never computed *)
  latencies : float array;  (** per-update seconds, event order *)
}

val summary : t -> summary

val quantile : float array -> float -> float
(** Exact empirical quantile (nearest-rank on a sorted copy); [nan] on
    an empty array.  The helper bench and the report responses share. *)

val mlu : t -> float
(** Incumbent MLU on the current matrix (0 when the matrix is empty). *)

val state : t -> int array * Te.Network.demand array * Te.Segments.setting
(** The incumbent: weight vector (copy), the current demand matrix
    sorted by (src, dst), and the waypoint setting parallel to it. *)
