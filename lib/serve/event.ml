open Netgraph

type change = { src : int; dst : int; size : float }

type t =
  | Delta of change list
  | Set_matrix of change list
  | Link_down of int list
  | Link_up of int list
  | Report
  | Resolve
  | Quit

let name = function
  | Delta _ -> "delta"
  | Set_matrix _ -> "set-matrix"
  | Link_down _ -> "link-down"
  | Link_up _ -> "link-up"
  | Report -> "report"
  | Resolve -> "resolve"
  | Quit -> "quit"

(* Total parsing: every validation failure raises [Bad] internally and
   surfaces as [Error reason]. *)
exception Bad of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let node g field v =
  match v with
  | Sjson.Num _ ->
    let i =
      match Sjson.to_int v with
      | Some i -> i
      | None -> bad "field %S: node id must be an integer" field
    in
    if i < 0 || i >= Digraph.node_count g then
      bad "field %S: node %d outside the graph (n = %d)" field i
        (Digraph.node_count g);
    i
  | Sjson.Str s -> (
    match Digraph.node_of_name g s with
    | i -> i
    | exception Not_found -> bad "field %S: unknown node name %S" field s)
  | _ -> bad "field %S: expected a node id or name" field

let change g v =
  let src = node g "src" (Option.value (Sjson.member "src" v) ~default:Sjson.Null) in
  let dst = node g "dst" (Option.value (Sjson.member "dst" v) ~default:Sjson.Null) in
  if src = dst then bad "demand entry: src = dst (%d)" src;
  let size =
    match Sjson.member "size" v with
    | Some s -> (
      match Sjson.to_float s with
      | Some f when Float.is_finite f && f >= 0. -> f
      | _ -> bad "demand entry %d->%d: size must be a finite non-negative number" src dst)
    | None -> bad "demand entry %d->%d: missing \"size\"" src dst
  in
  { src; dst; size }

let changes g key v =
  match Sjson.member key v with
  | Some entries -> (
    match Sjson.to_list entries with
    | Some l -> List.map (change g) l
    | None -> bad "field %S: expected an array of demand entries" key)
  | None -> bad "missing field %S" key

let edge_id g v =
  let m = Digraph.edge_count g in
  match Sjson.member "edge" v with
  | Some e -> (
    match Sjson.to_int e with
    | Some i when i >= 0 && i < m -> [ i ]
    | Some i -> bad "edge %d outside the graph (m = %d)" i m
    | None -> bad "field \"edge\": expected an integer edge id")
  | None -> (
    match Sjson.member "edges" v with
    | Some es -> (
      match Sjson.to_list es with
      | Some l ->
        List.map
          (fun e ->
            match Sjson.to_int e with
            | Some i when i >= 0 && i < m -> i
            | Some i -> bad "edge %d outside the graph (m = %d)" i m
            | None -> bad "field \"edges\": expected integer edge ids")
          l
      | None -> bad "field \"edges\": expected an array")
    | None ->
      (* Addressed by endpoints: the directed edge src -> dst. *)
      let src = node g "src" (Option.value (Sjson.member "src" v) ~default:Sjson.Null) in
      let dst = node g "dst" (Option.value (Sjson.member "dst" v) ~default:Sjson.Null) in
      (match Digraph.find_edge g ~src ~dst with
      | Some e -> [ e ]
      | None -> bad "no edge %d -> %d in the graph" src dst))

let dedup_edges l =
  match List.sort_uniq Int.compare l with
  | [] -> bad "field \"edges\": empty edge list"
  | l -> l

let parse g line =
  match Sjson.parse line with
  | Result.Error msg -> Result.Error ("invalid JSON: " ^ msg)
  | Ok v -> (
    match v with
    | Sjson.Obj _ -> (
      try
        match Sjson.member "ev" v with
        | None -> Result.Error "missing field \"ev\""
        | Some ev -> (
          match Sjson.to_string ev with
          | None -> Result.Error "field \"ev\": expected a string"
          | Some evname ->
            Ok
              (match evname with
              | "delta" ->
                let cs = changes g "changes" v in
                if cs = [] then bad "field \"changes\": empty delta";
                Delta cs
              | "set-matrix" ->
                let cs = changes g "demands" v in
                if cs = [] then bad "field \"demands\": empty matrix";
                Set_matrix cs
              | "link-down" -> Link_down (dedup_edges (edge_id g v))
              | "link-up" -> Link_up (dedup_edges (edge_id g v))
              | "report" -> Report
              | "resolve" -> Resolve
              | "quit" -> Quit
              | other -> bad "unknown event %S" other))
      with Bad msg -> Result.Error msg)
    | _ -> Result.Error "expected a JSON object")
