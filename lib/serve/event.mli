(** The serving event grammar ([serve/1] request lines).

    One JSON object per line, discriminated by the ["ev"] field:

    - [{"ev":"delta","changes":[{"src":S,"dst":D,"size":X},...]}] —
      set the named demand entries to the given absolute sizes
      (a size of [0] removes the pair);
    - [{"ev":"set-matrix","demands":[...]}] — replace the whole matrix
      (same entry shape as [delta]);
    - [{"ev":"link-down","edge":E}] / [{"ev":"link-up","edge":E}] —
      fail / restore a directed edge; [{"edges":[..]}] takes several at
      once, and [{"src":S,"dst":D}] addresses the edge by endpoints;
    - [{"ev":"report"}] — emit a state digest without re-optimizing;
    - [{"ev":"resolve"}] — drop the churn budget for one update and
      re-optimize as hard as the configured resolve budget allows;
    - [{"ev":"quit"}] — acknowledge and stop the loop.

    Nodes are either integer ids or node-name strings resolved against
    the daemon's graph.  Parsing is total: every malformed line comes
    back as [Error reason] and becomes an error response. *)

type change = { src : int; dst : int; size : float }
(** One demand-matrix entry: absolute size (not an increment), [0.]
    removes the pair. *)

type t =
  | Delta of change list
  | Set_matrix of change list
  | Link_down of int list
  | Link_up of int list
  | Report
  | Resolve
  | Quit

val name : t -> string
(** The wire name ("delta", "set-matrix", ...), echoed in responses. *)

val parse : Netgraph.Digraph.t -> string -> (t, string) result
(** Parses one event line against the graph (node names and edge
    endpoints are resolved and range-checked here, so the daemon state
    machine only ever sees valid ids). *)
