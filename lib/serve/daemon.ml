open Netgraph
open Te

type config = {
  deadline_ms : float;
  churn_budget : int;
  reopt_evals : int;
  resolve_evals : int;
  lp_bound : bool;
  lp_every : int;
  prune : bool;
  timings : bool;
  seed : int;
}

let default_config =
  {
    deadline_ms = 1000.;
    churn_budget = 0;
    reopt_evals = 400;
    resolve_evals = 4000;
    lp_bound = true;
    lp_every = 1;
    prune = true;
    timings = true;
    seed = 0;
  }

type t = {
  ctx : Obs.Ctx.t;
  cfg : config;
  g : Digraph.t;
  m : int;
  tbl : (int * int, float) Hashtbl.t;  (* current matrix, pair-unique *)
  wps : (int * int, int list) Hashtbl.t;  (* incumbent waypoints; absent = [] *)
  down : (int, unit) Hashtbl.t;
  ev : Engine.Evaluator.t;
  cell : Engine.Evaluator.metrics;
  mutable weights : int array;  (* incumbent *)
  mutable cur_demands : Network.demand array;  (* routable, sorted *)
  mutable cur_setting : Segments.setting;  (* parallel to cur_demands *)
  mutable disconnected : int;
  mutable basis : Linprog.Simplex.Sparse.basis option;
  mutable basis_key : (int * int) list;
  mutable lp_last : float;  (* nan until first solve *)
  mutable mlu : float;
  mutable seq : int;
  mutable updates : int;
  mutable errors : int;
  mutable improved : int;
  mutable degraded : int;
  mutable deadline_hits : int;
  mutable weight_churn_total : int;
  mutable waypoint_churn_total : int;
  mutable lat : float array;
  mutable lat_n : int;
  mutable finished : bool;
}

(* ------------------------------------------------------------------ *)
(* State sync                                                           *)
(* ------------------------------------------------------------------ *)

(* The evaluator invariant between events: weights = incumbent with
   down links at infinity, commodities = the expanded routable matrix
   under the incumbent waypoints, everything committed. *)

let sync_weights t =
  let wf = Weights.of_ints t.weights in
  Hashtbl.iter (fun e () -> wf.(e) <- infinity) t.down;
  Engine.Evaluator.set_weights t.ev wf;
  Engine.Evaluator.commit t.ev

let compare_pair (a, b) (c, d) =
  let c0 = Int.compare a c in
  if c0 <> 0 then c0 else Int.compare b d

(* Rebuild the routable demand view from the matrix table: demands
   sorted by (src, dst); pairs with no route at all are counted out;
   incumbent waypoints whose segments a failure broke are reset to
   direct routing (a forced waypoint change, returned as [resets]). *)
let rebuild t =
  let pairs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [] in
  let pairs = List.sort (fun (a, _) (b, _) -> compare_pair a b) pairs in
  let demands = ref [] and setting = ref [] in
  let disconnected = ref 0 and resets = ref 0 in
  List.iter
    (fun ((src, dst), size) ->
      if not (Engine.Evaluator.reachable t.ev ~src ~dst) then incr disconnected
      else begin
        let d = { Network.src; dst; size } in
        let w = Option.value (Hashtbl.find_opt t.wps (src, dst)) ~default:[] in
        let w =
          if
            w <> []
            && not
                 (List.for_all
                    (fun (a, b) -> Engine.Evaluator.reachable t.ev ~src:a ~dst:b)
                    (Segments.segment_endpoints d w))
          then begin
            Hashtbl.remove t.wps (src, dst);
            incr resets;
            []
          end
          else w
        in
        demands := d :: !demands;
        setting := w :: !setting
      end)
    pairs;
  t.cur_demands <- Array.of_list (List.rev !demands);
  t.cur_setting <- Array.of_list (List.rev !setting);
  t.disconnected <- !disconnected;
  !resets

let sync_commodities t =
  Engine.Evaluator.set_commodities t.ev
    (Network.to_commodities (Segments.expand t.cur_demands t.cur_setting));
  if Array.length t.cur_demands = 0 then t.mlu <- 0.
  else begin
    Engine.Evaluator.evaluate_into t.ev t.cell;
    t.mlu <- t.cell.Engine.Evaluator.mlu
  end

(* ------------------------------------------------------------------ *)
(* LP lower bound                                                       *)
(* ------------------------------------------------------------------ *)

(* Warm-basis min-MLU LP on the current matrix.  The basis is keyed by
   the aggregated pair list: a delta that only changes sizes re-solves
   warm (a handful of pivots); a pair appearing or vanishing re-solves
   cold once.  Skipped while links are down — the LP is built on the
   full graph, so its bound would not be a bound for the degraded
   topology. *)
let lp_bound t =
  if
    (not t.cfg.lp_bound)
    || Hashtbl.length t.down > 0
    || Array.length t.cur_demands = 0
  then None
  else begin
    let key =
      Array.to_list
        (Array.map (fun d -> (d.Network.src, d.Network.dst)) t.cur_demands)
    in
    let comms =
      Array.map
        (fun d -> Mcf.commodity d.Network.src d.Network.dst d.Network.size)
        t.cur_demands
    in
    let basis = if key = t.basis_key then t.basis else None in
    match Mcf.opt_mlu_lp_warm_ext ?basis t.g comms with
    | r ->
      let stats = t.ctx.Obs.Ctx.stats in
      Engine.Stats.record_lp_solve stats ~pivots:r.Mcf.pivots;
      if r.Mcf.warm then
        stats.Engine.Stats.lp_warm_solves <-
          stats.Engine.Stats.lp_warm_solves + 1;
      t.basis <- Some r.Mcf.basis;
      t.basis_key <- key;
      t.lp_last <- r.Mcf.value;
      Some r.Mcf.value
    | exception Failure _ -> None
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let create ctx cfg ~deployed_weights ~deployed_waypoints g demands =
  let m = Digraph.edge_count g in
  if Array.length deployed_weights <> m then
    invalid_arg "Daemon.create: weight vector length mismatch";
  if Array.length deployed_waypoints <> Array.length demands then
    invalid_arg "Daemon.create: waypoint setting length mismatch";
  let tbl = Hashtbl.create 64 and wps = Hashtbl.create 64 in
  Array.iteri
    (fun i d ->
      let pair = (d.Network.src, d.Network.dst) in
      let prev = Option.value (Hashtbl.find_opt tbl pair) ~default:0. in
      Hashtbl.replace tbl pair (prev +. d.Network.size);
      if deployed_waypoints.(i) <> [] then
        Hashtbl.replace wps pair deployed_waypoints.(i))
    demands;
  let ev =
    Engine.Evaluator.create ~stats:ctx.Obs.Ctx.stats ~probe:(Obs.Ctx.probe ctx)
      g
      (Weights.of_ints deployed_weights)
  in
  let t =
    {
      ctx;
      cfg;
      g;
      m;
      tbl;
      wps;
      down = Hashtbl.create 4;
      ev;
      cell = { Engine.Evaluator.mlu = 0.; phi = 0. };
      weights = Array.copy deployed_weights;
      cur_demands = [||];
      cur_setting = [||];
      disconnected = 0;
      basis = None;
      basis_key = [];
      lp_last = nan;
      mlu = 0.;
      seq = 0;
      updates = 0;
      errors = 0;
      improved = 0;
      degraded = 0;
      deadline_hits = 0;
      weight_churn_total = 0;
      waypoint_churn_total = 0;
      lat = Array.make 256 0.;
      lat_n = 0;
      finished = false;
    }
  in
  ignore (rebuild t : int);
  sync_commodities t;
  t

(* ------------------------------------------------------------------ *)
(* Responses                                                            *)
(* ------------------------------------------------------------------ *)

let num i = Sjson.Num (float_of_int i)

let fnum f = Sjson.Num f

let opt_num = function Some f -> Sjson.Num f | None -> Sjson.Null

let respond seq fields =
  Sjson.render
    (Sjson.Obj (("schema", Sjson.Str "serve/1") :: ("seq", num seq) :: fields))

let record_latency t dt =
  if t.lat_n = Array.length t.lat then begin
    let bigger = Array.make (2 * t.lat_n) 0. in
    Array.blit t.lat 0 bigger 0 t.lat_n;
    t.lat <- bigger
  end;
  t.lat.(t.lat_n) <- dt;
  t.lat_n <- t.lat_n + 1;
  Obs.Metrics.observe t.ctx.Obs.Ctx.metrics "serve.update_seconds" dt

let quantile lat q =
  let n = Array.length lat in
  if n = 0 then nan
  else begin
    let s = Array.copy lat in
    Array.sort Float.compare s;
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    s.(max 0 (min (n - 1) (rank - 1)))
  end

let latencies t = Array.sub t.lat 0 t.lat_n

(* ------------------------------------------------------------------ *)
(* Event application                                                    *)
(* ------------------------------------------------------------------ *)

exception Reject of string

(* Mutate the matrix / link state.  Validation that can fail runs
   before any mutation, so a rejected event leaves the state intact. *)
let apply t = function
  | Event.Delta changes ->
    List.iter
      (fun c ->
        let pair = (c.Event.src, c.Event.dst) in
        if c.Event.size > 0. then Hashtbl.replace t.tbl pair c.Event.size
        else begin
          Hashtbl.remove t.tbl pair;
          Hashtbl.remove t.wps pair
        end)
      changes
  | Event.Set_matrix changes ->
    let fresh = Hashtbl.create (List.length changes) in
    List.iter
      (fun c ->
        if c.Event.size > 0. then
          Hashtbl.replace fresh (c.Event.src, c.Event.dst) c.Event.size)
      changes;
    Hashtbl.reset t.tbl;
    Hashtbl.iter (fun pair size -> Hashtbl.replace t.tbl pair size) fresh;
    (* Waypoints survive for pairs present in the new matrix; the rest
       are dropped with their demands. *)
    let stale =
      Hashtbl.fold
        (fun pair _ acc ->
          if Hashtbl.mem t.tbl pair then acc else pair :: acc)
        t.wps []
    in
    List.iter (Hashtbl.remove t.wps) stale
  | Event.Link_down edges ->
    List.iter
      (fun e ->
        if Hashtbl.mem t.down e then
          raise (Reject (Printf.sprintf "edge %d is already down" e)))
      edges;
    List.iter (fun e -> Hashtbl.replace t.down e ()) edges
  | Event.Link_up edges ->
    List.iter
      (fun e ->
        if not (Hashtbl.mem t.down e) then
          raise (Reject (Printf.sprintf "edge %d is not down" e)))
      edges;
    List.iter (Hashtbl.remove t.down) edges
  | Event.Resolve | Event.Report | Event.Quit -> ()

(* ------------------------------------------------------------------ *)
(* The update path                                                      *)
(* ------------------------------------------------------------------ *)

let update t seq ev =
  let t0 = Engine.Mono.now () in
  let deadline =
    if t.cfg.deadline_ms > 0. then Some (t0 +. (t.cfg.deadline_ms /. 1000.))
    else if t.cfg.deadline_ms = 0. then Some t0
    else None
  in
  let ctx = { t.ctx with Obs.Ctx.deadline } in
  Obs.Ctx.span ctx "serve:update" (fun () ->
      apply t ev;
      sync_weights t;
      let resets = rebuild t in
      sync_commodities t;
      let mlu_before = t.mlu in
      let no_work = Array.length t.cur_demands = 0 in
      let degraded = (not no_work) && Obs.Ctx.expired ctx in
      let weight_churn = ref 0 and waypoint_churn = ref resets in
      let deadline_hit = ref false in
      if (not no_work) && not degraded then begin
        let evals =
          match ev with
          | Event.Resolve -> t.cfg.resolve_evals
          | _ -> t.cfg.reopt_evals
        in
        let budget =
          match ev with
          | Event.Resolve -> t.m
          | _ when t.cfg.churn_budget > 0 -> t.cfg.churn_budget
          | _ -> max 1 (t.m / 10)
        in
        let ls_params =
          {
            Local_search.default_params with
            Local_search.seed = t.cfg.seed + (7919 * seq);
            max_evals = evals;
          }
        in
        let frozen_edges =
          List.sort Int.compare
            (Hashtbl.fold (fun e () acc -> e :: acc) t.down [])
        in
        let prune =
          if t.cfg.prune then Some (Prune.spec Prune.default_k) else None
        in
        let r =
          Reopt.reoptimize_ctx ctx ~ls_params ~max_weight_changes:budget
            ~frozen_edges ~ev:t.ev ?prune ~deployed_weights:t.weights
            ~deployed_waypoints:t.cur_setting t.g t.cur_demands
        in
        if Obs.Ctx.expired ctx then begin
          deadline_hit := true;
          t.deadline_hits <- t.deadline_hits + 1
        end;
        weight_churn := r.Reopt.churn.Reopt.weight_changes;
        waypoint_churn := !waypoint_churn + r.Reopt.churn.Reopt.waypoint_changes;
        t.weights <- r.Reopt.weights;
        Array.iteri
          (fun i d ->
            let pair = (d.Network.src, d.Network.dst) in
            match r.Reopt.waypoints.(i) with
            | [] -> Hashtbl.remove t.wps pair
            | w -> Hashtbl.replace t.wps pair w)
          t.cur_demands;
        t.cur_setting <- r.Reopt.waypoints;
        (* Re-sync the evaluator to what we just deployed: the search
           left it at its last probe state. *)
        sync_weights t;
        sync_commodities t
      end
      else if degraded then t.degraded <- t.degraded + 1;
      let mlu_after = t.mlu in
      if mlu_after < mlu_before -. 1e-12 then t.improved <- t.improved + 1;
      t.updates <- t.updates + 1;
      t.weight_churn_total <- t.weight_churn_total + !weight_churn;
      t.waypoint_churn_total <- t.waypoint_churn_total + !waypoint_churn;
      Obs.Metrics.incr t.ctx.Obs.Ctx.metrics "serve.updates";
      let dt = Engine.Mono.now () -. t0 in
      record_latency t dt;
      (* The LP gap readout runs off the update clock: the deadline
         governs time-to-deployable-setting, the bound is advisory.
         [lp_every] thins the cadence on topologies where even a warm
         solve dwarfs the re-optimization itself; [resolve] always
         pays for a fresh bound. *)
      let lp_due =
        match ev with
        | Event.Resolve -> true
        | _ -> (t.updates - 1) mod max 1 t.cfg.lp_every = 0
      in
      let lp = if lp_due then lp_bound t else None in
      let gap =
        match lp with
        | Some b when b > 0. -> Some (mlu_after /. b)
        | _ -> None
      in
      let base =
        [
          ("event", Sjson.Str (Event.name ev));
          ("status", Sjson.Str "ok");
          ("demands", num (Array.length t.cur_demands));
          ("disconnected", num t.disconnected);
          ("mlu_before", fnum mlu_before);
          ("mlu_after", fnum mlu_after);
          ("lp_bound", opt_num lp);
          ("gap", opt_num gap);
          ("weight_churn", num !weight_churn);
          ("waypoint_churn", num !waypoint_churn);
          ("degraded", Sjson.Bool degraded);
          ("deadline_hit", Sjson.Bool !deadline_hit);
        ]
      in
      let base =
        if t.cfg.timings then base @ [ ("latency_ms", fnum (1000. *. dt)) ]
        else base
      in
      respond seq base)

(* [report] is a read-only query: it shows the last computed bound
   (possibly from an earlier matrix) rather than paying for a fresh
   solve; [resolve] is the event that buys a fresh one. *)
let report t seq =
  let lp = if Float.is_nan t.lp_last then None else Some t.lp_last in
  let down =
    List.sort Int.compare (Hashtbl.fold (fun e () acc -> e :: acc) t.down [])
  in
  let base =
    [
      ("event", Sjson.Str "report");
      ("status", Sjson.Str "ok");
      ("demands", num (Array.length t.cur_demands));
      ("disconnected", num t.disconnected);
      ("down", Sjson.Arr (List.map num down));
      ("mlu", fnum t.mlu);
      ("lp_bound", opt_num lp);
      ("updates", num t.updates);
      ("errors", num t.errors);
      ("weight_churn_total", num t.weight_churn_total);
      ("waypoint_churn_total", num t.waypoint_churn_total);
    ]
  in
  let base =
    if t.cfg.timings && t.lat_n > 0 then
      let lat = latencies t in
      base
      @ [
          ("p50_ms", fnum (1000. *. quantile lat 0.5));
          ("p99_ms", fnum (1000. *. quantile lat 0.99));
        ]
    else base
  in
  respond seq base

let handle_line t line =
  if t.finished then None
  else begin
    let line = String.trim line in
    if line = "" then None
    else begin
      let seq = t.seq in
      t.seq <- seq + 1;
      Obs.Metrics.incr t.ctx.Obs.Ctx.metrics "serve.events";
      match Event.parse t.g line with
      | Result.Error msg ->
        t.errors <- t.errors + 1;
        Obs.Metrics.incr t.ctx.Obs.Ctx.metrics "serve.errors";
        Some
          (respond seq
             [ ("status", Sjson.Str "error"); ("error", Sjson.Str msg) ])
      | Ok Event.Quit ->
        t.finished <- true;
        Some
          (respond seq
             [
               ("event", Sjson.Str "quit");
               ("status", Sjson.Str "ok");
               ("updates", num t.updates);
               ("errors", num t.errors);
             ])
      | Ok Event.Report -> Some (report t seq)
      | Ok ev -> (
        match update t seq ev with
        | resp -> Some resp
        | exception Reject msg ->
          t.errors <- t.errors + 1;
          Obs.Metrics.incr t.ctx.Obs.Ctx.metrics "serve.errors";
          Some
            (respond seq
               [ ("status", Sjson.Str "error"); ("error", Sjson.Str msg) ]))
    end
  end

let finished t = t.finished

let run t ic oc =
  (try
     while not t.finished do
       let line = input_line ic in
       match handle_line t line with
       | Some resp ->
         output_string oc resp;
         output_char oc '\n';
         flush oc
       | None -> ()
     done
   with End_of_file -> ());
  flush oc

type summary = {
  events : int;
  updates : int;
  errors : int;
  improved : int;
  degraded : int;
  deadline_hits : int;
  weight_churn_total : int;
  waypoint_churn_total : int;
  disconnected : int;
  mlu : float;
  lp_bound : float;
  latencies : float array;
}

let summary t =
  {
    events = t.seq;
    updates = t.updates;
    errors = t.errors;
    improved = t.improved;
    degraded = t.degraded;
    deadline_hits = t.deadline_hits;
    weight_churn_total = t.weight_churn_total;
    waypoint_churn_total = t.waypoint_churn_total;
    disconnected = t.disconnected;
    mlu = t.mlu;
    lp_bound = t.lp_last;
    latencies = latencies t;
  }

let mlu (t : t) = t.mlu

let state (t : t) = (Array.copy t.weights, t.cur_demands, t.cur_setting)
