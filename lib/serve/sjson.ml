type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

(* One mutable cursor over the line; errors carry the byte offset so a
   malformed event can be reported precisely in the error response. *)
type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Error (Printf.sprintf "%s at byte %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let expect_lit c lit value =
  let len = String.length lit in
  if c.pos + len <= String.length c.s && String.sub c.s c.pos len = lit then begin
    c.pos <- c.pos + len;
    value
  end
  else fail c (Printf.sprintf "expected '%s'" lit)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c "expected hex digit"

(* UTF-8 encode a BMP code point (surrogate pairs unsupported). *)
let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | None -> fail c "unterminated escape"
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.s then fail c "truncated \\u escape";
          let cp = ref 0 in
          for _ = 1 to 4 do
            cp := (!cp * 16) + hex_digit c c.s.[c.pos];
            advance c
          done;
          if !cp >= 0xD800 && !cp <= 0xDFFF then
            fail c "surrogate escapes unsupported";
          utf8_add buf !cp
        | _ -> fail c "invalid escape"));
      go ()
    | Some ch when Char.code ch < 0x20 -> fail c "raw control character"
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

(* RFC 8259 grammar: minus? int frac? exp? with int = 0 | [1-9][0-9]*.
   [float_of_string] alone is too permissive (it takes "+1", "01",
   "0x10", "1_000"), so the literal is validated before conversion. *)
let valid_number_lit lit =
  let n = String.length lit in
  let i = ref 0 in
  let digit ch = ch >= '0' && ch <= '9' in
  let digits () =
    if !i < n && digit lit.[!i] then begin
      while !i < n && digit lit.[!i] do
        incr i
      done;
      true
    end
    else false
  in
  if !i < n && lit.[!i] = '-' then incr i;
  (if !i < n && lit.[!i] = '0' then begin
     incr i;
     true
   end
   else digits ())
  && (if !i < n && lit.[!i] = '.' then begin
        incr i;
        digits ()
      end
      else true)
  && (if !i < n && (lit.[!i] = 'e' || lit.[!i] = 'E') then begin
        incr i;
        if !i < n && (lit.[!i] = '+' || lit.[!i] = '-') then incr i;
        digits ()
      end
      else true)
  && !i = n

let parse_number c =
  let start = c.pos in
  let num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let continue = ref true in
  while !continue do
    match peek c with
    | Some ch when num_char ch -> advance c
    | _ -> continue := false
  done;
  if c.pos = start then fail c "expected number";
  let lit = String.sub c.s start (c.pos - start) in
  match float_of_string_opt lit with
  | Some f when Float.is_finite f && valid_number_lit lit -> f
  | _ ->
    c.pos <- start;
    fail c (Printf.sprintf "invalid number '%s'" lit)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ()
        | Some '}' -> advance c
        | _ -> fail c "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements ()
        | Some ']' -> advance c
        | _ -> fail c "expected ',' or ']'"
      in
      elements ();
      Arr (List.rev !items)
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some 'n' -> expect_lit c "null" Null
  | Some _ -> Num (parse_number c)

let parse s =
  let c = { s; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then fail c "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Error msg -> Result.Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e15 ->
    Some (int_of_float f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_list = function Arr l -> Some l | _ -> None

(* ------------------------------------------------------------------ *)
(* Printer                                                              *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Matches Obs.Metrics.json_float: determinism over prettiness. *)
let render_float f =
  if Float.is_nan f then "null"
  else if f = infinity then "1e999"
  else if f = neg_infinity then "-1e999"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec render = function
  | Null -> "null"
  | Bool true -> "true"
  | Bool false -> "false"
  | Num f -> render_float f
  | Str s -> escape s
  | Arr items -> "[" ^ String.concat "," (List.map render items) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> escape k ^ ":" ^ render v) fields)
    ^ "}"
