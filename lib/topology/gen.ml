open Netgraph

let capacity_classes =
  (* SNDLib-like module sizes (Mbit/s) with heterogeneity: a 40G core,
     10G aggregation, 2.5G edge mix. *)
  [| (40_000., 0.25); (10_000., 0.5); (2_500., 0.25) |]

let pick_capacity st =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. capacity_classes in
  let r = Random.State.float st total in
  let rec go i acc =
    let c, w = capacity_classes.(i) in
    if r < acc +. w || i = Array.length capacity_classes - 1 then c
    else go (i + 1) (acc +. w)
  in
  go 0 0.

let synthetic ?seed ~name ~nodes ~links () =
  if nodes < 3 then invalid_arg "Gen.synthetic: nodes >= 3 required";
  if links < nodes then invalid_arg "Gen.synthetic: links >= nodes required";
  let seed = match seed with Some s -> s | None -> Hashtbl.hash name in
  let st = Random.State.make [| seed; 0x70b0 |] in
  let b = Digraph.Builder.create () in
  let node =
    Array.init nodes (fun i ->
        Digraph.Builder.add_named_node b (Printf.sprintf "%s.%d" name i))
  in
  let present = Hashtbl.create (2 * links) in
  let add u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem present key) then begin
      Hashtbl.replace present key ();
      ignore (Digraph.Builder.add_biedge b node.(u) node.(v) ~cap:(pick_capacity st));
      true
    end
    else false
  in
  (* Ring backbone guarantees strong connectivity. *)
  for i = 0 to nodes - 1 do
    ignore (add i ((i + 1) mod nodes))
  done;
  (* Chords: biased towards short hops, as in real ISP graphs. *)
  let remaining = ref (links - nodes) in
  let attempts = ref 0 in
  while !remaining > 0 && !attempts < 100 * links do
    incr attempts;
    let u = Random.State.int st nodes in
    let span =
      if Random.State.float st 1. < 0.6 then 2 + Random.State.int st (max 1 (nodes / 8))
      else 2 + Random.State.int st (nodes - 2)
    in
    let v = (u + span) mod nodes in
    if add u v then decr remaining
  done;
  Digraph.Builder.build b
