type node =
  | El of string * (string * string) list * node list
  | Text of string

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (match peek st with Some c when is_space c -> true | _ -> false) do
    advance st
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name st =
  let start = st.pos in
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let decode_entities s =
  if not (String.contains s '&') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      if s.[!i] = '&' then begin
        match String.index_from_opt s !i ';' with
        | Some j when j - !i <= 8 ->
          let ent = String.sub s (!i + 1) (j - !i - 1) in
          let repl =
            match ent with
            | "amp" -> "&"
            | "lt" -> "<"
            | "gt" -> ">"
            | "quot" -> "\""
            | "apos" -> "'"
            | _ ->
              if String.length ent > 1 && ent.[0] = '#' then begin
                let code =
                  if ent.[1] = 'x' || ent.[1] = 'X' then
                    int_of_string ("0x" ^ String.sub ent 2 (String.length ent - 2))
                  else int_of_string (String.sub ent 1 (String.length ent - 1))
                in
                if code < 128 then String.make 1 (Char.chr code) else "?"
              end
              else "&" ^ ent ^ ";"
          in
          Buffer.add_string buf repl;
          i := j + 1
        | _ ->
          Buffer.add_char buf '&';
          incr i
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let skip_misc st =
  (* Prolog, comments, doctype, processing instructions, whitespace. *)
  let continue = ref true in
  while !continue do
    skip_spaces st;
    if looking_at st "<!--" then begin
      match
        let rec find i =
          if i + 3 > String.length st.src then None
          else if String.sub st.src i 3 = "-->" then Some i
          else find (i + 1)
        in
        find (st.pos + 4)
      with
      | Some i -> st.pos <- i + 3
      | None -> fail st "unterminated comment"
    end
    else if looking_at st "<?" then begin
      match String.index_from_opt st.src st.pos '>' with
      | Some i -> st.pos <- i + 1
      | None -> fail st "unterminated processing instruction"
    end
    else if looking_at st "<!DOCTYPE" || looking_at st "<!doctype" then begin
      (* Skip to the matching '>' (no internal subset support needed). *)
      let depth = ref 0 in
      let stop = ref false in
      while not !stop do
        (match peek st with
        | None -> fail st "unterminated DOCTYPE"
        | Some '[' -> incr depth
        | Some ']' -> decr depth
        | Some '>' when !depth = 0 -> stop := true
        | Some _ -> ());
        if not !stop then advance st else advance st
      done
    end
    else continue := false
  done

let read_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) -> q
    | _ -> fail st "expected a quoted attribute value"
  in
  advance st;
  let start = st.pos in
  while (match peek st with Some c when c <> quote -> true | _ -> false) do
    advance st
  done;
  if peek st = None then fail st "unterminated attribute value";
  let v = String.sub st.src start (st.pos - start) in
  advance st;
  decode_entities v

let rec parse_element st =
  skip st "<";
  let name = read_name st in
  let attrs = ref [] in
  let rec attrs_loop () =
    skip_spaces st;
    match peek st with
    | Some '/' | Some '>' | None -> ()
    | Some _ ->
      let an = read_name st in
      skip_spaces st;
      skip st "=";
      skip_spaces st;
      let av = read_attr_value st in
      attrs := (an, av) :: !attrs;
      attrs_loop ()
  in
  attrs_loop ();
  let attrs = List.rev !attrs in
  if looking_at st "/>" then begin
    skip st "/>";
    El (name, attrs, [])
  end
  else begin
    skip st ">";
    let children = parse_children st name in
    El (name, attrs, children)
  end

and parse_children st parent =
  let out = ref [] in
  let closed = ref false in
  while not !closed do
    if looking_at st "</" then begin
      skip st "</";
      let name = read_name st in
      skip_spaces st;
      skip st ">";
      if name <> parent then
        fail st (Printf.sprintf "mismatched close tag %s for %s" name parent);
      closed := true
    end
    else if looking_at st "<!--" then skip_misc st
    else if looking_at st "<![CDATA[" then begin
      let start = st.pos + 9 in
      let rec find i =
        if i + 3 > String.length st.src then fail st "unterminated CDATA"
        else if String.sub st.src i 3 = "]]>" then i
        else find (i + 1)
      in
      let stop = find start in
      out := Text (String.sub st.src start (stop - start)) :: !out;
      st.pos <- stop + 3
    end
    else if looking_at st "<?" then skip_misc st
    else if looking_at st "<" then out := parse_element st :: !out
    else begin
      match peek st with
      | None -> fail st (Printf.sprintf "unterminated element %s" parent)
      | Some _ ->
        let start = st.pos in
        while (match peek st with Some c when c <> '<' -> true | None -> false | _ -> false) do
          advance st
        done;
        let text = String.sub st.src start (st.pos - start) in
        if String.trim text <> "" then out := Text (decode_entities text) :: !out
    end
  done;
  List.rev !out

let parse src =
  let st = { src; pos = 0 } in
  skip_misc st;
  if not (looking_at st "<") then fail st "expected a root element";
  let root = parse_element st in
  skip_misc st;
  root

let tag = function El (t, _, _) -> t | Text _ -> ""

let attr n key =
  match n with
  | Text _ -> None
  | El (_, attrs, _) -> List.assoc_opt key attrs

let children = function El (_, _, c) -> c | Text _ -> []

let find_all n t = List.filter (fun c -> tag c = t) (children n)

let find_first n t = List.find_opt (fun c -> tag c = t) (children n)

let rec descendants n t =
  List.concat_map
    (fun c ->
      let below = match c with El _ -> descendants c t | Text _ -> [] in
      if tag c = t then c :: below else below)
    (children n)

let text_content n =
  let buf = Buffer.create 32 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | El (_, _, cs) -> List.iter go cs
  in
  go n;
  String.trim (Buffer.contents buf)
