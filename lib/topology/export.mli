(** Topology writers: SNDLib native (round-trips through
    {!Sndlib.of_native}) and Graphviz DOT for visual inspection. *)

val to_sndlib_native :
  ?demands:(string * string * float) list -> Netgraph.Digraph.t -> string
(** Serializes to the SNDLib native format.  Edge pairs (u, v)/(v, u)
    with equal capacity are emitted as one undirected SNDLib link; a
    remaining one-way edge raises [Invalid_argument] (SNDLib links are
    undirected). *)

val to_dot :
  ?utilizations:float array -> Netgraph.Digraph.t -> string
(** Graphviz digraph; with [utilizations], edges above 100% are drawn
    red and bold, above 80% orange. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
