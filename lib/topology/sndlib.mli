(** SNDLib network readers (XML and native format).

    SNDLib links are undirected; each becomes two directed edges of the
    same capacity.  A link's capacity is its pre-installed module
    capacity when positive, otherwise the largest module capacity
    offered, otherwise [default_capacity]. *)

type t = {
  graph : Netgraph.Digraph.t;
  demands : (string * string * float) list;
      (** (source name, target name, value) when the file carries a
          demand matrix *)
}

val default_capacity : float

val of_xml : string -> t
(** Parses the SNDLib XML format.
    @raise Xmlparse.Parse_error or [Failure] on malformed content. *)

val of_native : string -> t
(** Parses the SNDLib native (plain text, parenthesized) format. *)

val load_file : string -> t
(** Reads a file and dispatches on its first non-blank character
    ('<' -> XML, otherwise native). *)
