(** The evaluation's topology registry (§7 "Data Sources").

    Abilene is embedded with its real node set and backbone link
    structure (SNDLib native format, exercising {!Sndlib.of_native});
    the remaining SNDLib/TopologyZoo topologies cannot be bundled
    offline and are deterministic synthetic stand-ins matching the
    published node and (undirected) link counts — see DESIGN.md for the
    substitution rationale.  Real files can be substituted at runtime
    through {!Sndlib.load_file} / {!Graphml.load_file}. *)

type kind = Embedded | Synthetic

type info = {
  name : string;
  nodes : int;
  links : int;  (** undirected links; the digraph has twice as many edges *)
  kind : kind;
}

val all : info list

val fig4_names : string list
(** The 10 largest capacitated non-tree topologies of Figure 4. *)

val fig6_names : string list
(** Abilene, Germany50, Géant (Figure 6). *)

val scale_names : string list
(** The size-scaling bench suite: Abilene and Germany50 plus
    TopologyZoo-size instances up to Kdl (754 nodes) — the evaluation
    engine's evals/sec-vs-n curve is measured over these. *)

val load : ?data_dir:string -> string -> Netgraph.Digraph.t
(** Case-insensitive lookup.  When [data_dir] is given and
    [<data_dir>/<Name>.graphml] exists, the real TopologyZoo file is
    loaded through {!Graphml.load_file} instead of the synthetic
    stand-in (see examples/fetch_topologyzoo.sh).
    @raise Not_found for unknown names. *)

val abilene : unit -> Netgraph.Digraph.t
(** The embedded Abilene backbone (12 nodes, 15 links). *)

val abilene_native : string
(** The embedded SNDLib-native source text for Abilene. *)
