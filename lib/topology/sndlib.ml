open Netgraph

type t = {
  graph : Digraph.t;
  demands : (string * string * float) list;
}

let default_capacity = 1000.

(* ------------------------------------------------------------------ *)
(* XML format                                                          *)
(* ------------------------------------------------------------------ *)

let link_capacity_xml link =
  let module_caps parent =
    List.filter_map
      (fun m ->
        match Xmlparse.find_first m "capacity" with
        | Some c -> float_of_string_opt (Xmlparse.text_content c)
        | None -> None)
      (Xmlparse.descendants parent "addModule")
  in
  let pre =
    match Xmlparse.find_first link "preInstalledModule" with
    | Some m -> (
      match Xmlparse.find_first m "capacity" with
      | Some c -> float_of_string_opt (Xmlparse.text_content c)
      | None -> None)
    | None -> None
  in
  match pre with
  | Some c when c > 0. -> c
  | _ -> (
    match module_caps link with
    | [] -> default_capacity
    | caps -> List.fold_left max 0. caps)

let of_xml src =
  let root = Xmlparse.parse src in
  let structure =
    match Xmlparse.find_first root "networkStructure" with
    | Some s -> s
    | None -> failwith "Sndlib.of_xml: missing networkStructure"
  in
  let b = Digraph.Builder.create () in
  (match Xmlparse.find_first structure "nodes" with
  | None -> failwith "Sndlib.of_xml: missing nodes"
  | Some nodes ->
    List.iter
      (fun n ->
        match Xmlparse.attr n "id" with
        | Some id -> ignore (Digraph.Builder.add_named_node b id)
        | None -> failwith "Sndlib.of_xml: node without id")
      (Xmlparse.find_all nodes "node"));
  (match Xmlparse.find_first structure "links" with
  | None -> failwith "Sndlib.of_xml: missing links"
  | Some links ->
    List.iter
      (fun l ->
        let text_of tagname =
          match Xmlparse.find_first l tagname with
          | Some n -> Xmlparse.text_content n
          | None -> failwith ("Sndlib.of_xml: link missing " ^ tagname)
        in
        let s = Digraph.Builder.add_named_node b (text_of "source") in
        let t = Digraph.Builder.add_named_node b (text_of "target") in
        ignore (Digraph.Builder.add_biedge b s t ~cap:(link_capacity_xml l)))
      (Xmlparse.find_all links "link"));
  let demands =
    match Xmlparse.find_first root "demands" with
    | None -> []
    | Some ds ->
      List.filter_map
        (fun d ->
          let get tagname =
            Option.map Xmlparse.text_content (Xmlparse.find_first d tagname)
          in
          match (get "source", get "target", get "demandValue") with
          | Some s, Some t, Some v -> (
            match float_of_string_opt v with
            | Some v -> Some (s, t, v)
            | None -> None)
          | _ -> None)
        (Xmlparse.find_all ds "demand")
  in
  { graph = Digraph.Builder.build b; demands }

(* ------------------------------------------------------------------ *)
(* Native format                                                       *)
(* ------------------------------------------------------------------ *)

(* The native format is a sequence of sections
     SECTION ( entry entry ... )
   where entries may contain nested parentheses.  We tokenize into
   atoms and parens, then interpret the NODES / LINKS / DEMANDS
   sections. *)

type token = Atom of string | LParen | RParen

let tokenize src =
  let tokens = ref [] in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '#' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then begin
      tokens := LParen :: !tokens;
      incr i
    end
    else if c = ')' then begin
      tokens := RParen :: !tokens;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else begin
      let start = !i in
      while
        !i < n
        && (match src.[!i] with
           | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '#' -> false
           | _ -> true)
      do
        incr i
      done;
      tokens := Atom (String.sub src start (!i - start)) :: !tokens
    end
  done;
  List.rev !tokens

(* Group a token list into a forest of s-expressions. *)
type sexp = A of string | L of sexp list

let rec parse_sexprs tokens =
  match tokens with
  | [] -> ([], [])
  | RParen :: rest -> ([], rest)
  | LParen :: rest ->
    let inner, rest = parse_sexprs rest in
    let siblings, rest = parse_sexprs rest in
    (L inner :: siblings, rest)
  | Atom a :: rest ->
    let siblings, rest = parse_sexprs rest in
    (A a :: siblings, rest)

let sections src =
  let forest, _ = parse_sexprs (tokenize src) in
  (* Pair section names with their following list. *)
  let rec pair = function
    | A name :: L body :: rest -> (String.uppercase_ascii name, body) :: pair rest
    | _ :: rest -> pair rest
    | [] -> []
  in
  pair forest

let of_native src =
  let secs = sections src in
  let b = Digraph.Builder.create () in
  (match List.assoc_opt "NODES" secs with
  | None -> failwith "Sndlib.of_native: missing NODES"
  | Some body ->
    (* entries: name ( x y ) *)
    let rec go = function
      | A name :: L _ :: rest ->
        ignore (Digraph.Builder.add_named_node b name);
        go rest
      | A name :: rest ->
        ignore (Digraph.Builder.add_named_node b name);
        go rest
      | _ :: rest -> go rest
      | [] -> ()
    in
    go body);
  (match List.assoc_opt "LINKS" secs with
  | None -> failwith "Sndlib.of_native: missing LINKS"
  | Some body ->
    (* entries: id ( src dst ) pre_cap pre_cost routing setup ( modules ) *)
    let rec go = function
      | A _id :: L [ A src; A dst ] :: rest ->
        let s = Digraph.Builder.add_named_node b src in
        let t = Digraph.Builder.add_named_node b dst in
        (* Exactly four scalar fields (pre-capacity, pre-cost, routing
           cost, setup cost) precede the module list. *)
        let rec scalars k acc = function
          | A x :: more when k > 0 -> scalars (k - 1) (x :: acc) more
          | tail -> (List.rev acc, tail)
        in
        let fields, tail = scalars 4 [] rest in
        let modules =
          match tail with
          | L mods :: _ ->
            let rec caps = function
              | A c :: _ :: more -> (
                match float_of_string_opt c with
                | Some v -> v :: caps more
                | None -> caps more)
              | _ -> []
            in
            caps mods
          | _ -> []
        in
        let pre_cap =
          match fields with
          | c :: _ -> Option.value ~default:0. (float_of_string_opt c)
          | [] -> 0.
        in
        let cap =
          if pre_cap > 0. then pre_cap
          else
            match modules with
            | [] -> default_capacity
            | caps -> List.fold_left max 0. caps
        in
        ignore (Digraph.Builder.add_biedge b s t ~cap);
        let rest = match tail with L _ :: r -> r | r -> r in
        go rest
      | _ :: rest -> go rest
      | [] -> ()
    in
    go body);
  let demands =
    match List.assoc_opt "DEMANDS" secs with
    | None -> []
    | Some body ->
      (* entries: id ( src dst ) routing_unit value max_path_length *)
      let rec go acc = function
        | A _id :: L [ A src; A dst ] :: A _unit :: A value :: rest ->
          let acc =
            match float_of_string_opt value with
            | Some v -> (src, dst, v) :: acc
            | None -> acc
          in
          go acc rest
        | _ :: rest -> go acc rest
        | [] -> List.rev acc
      in
      go [] body
  in
  { graph = Digraph.Builder.build b; demands }

let load_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let rec first_nonblank i =
    if i >= String.length src then ' '
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> first_nonblank (i + 1)
      | c -> c
  in
  if first_nonblank 0 = '<' then of_xml src else of_native src
