(** TopologyZoo GraphML reader.

    Nodes are named by their [label] data when present (falling back to
    the GraphML id); every undirected edge becomes two directed edges.
    Edge capacity comes from [LinkSpeedRaw] (bits/s, converted to
    Mbit/s), falling back to [LinkSpeed] x [LinkSpeedUnits], falling
    back to {!default_capacity_mbps}. *)

val default_capacity_mbps : float

val of_string : string -> Netgraph.Digraph.t
(** @raise Xmlparse.Parse_error or [Failure] on malformed content. *)

val load_file : string -> Netgraph.Digraph.t
