(** A minimal, dependency-free XML parser — enough for SNDLib network
    files and TopologyZoo GraphML (elements, attributes, text, comments,
    prolog, CDATA and the five predefined entities). *)

type node =
  | El of string * (string * string) list * node list
      (** tag, attributes, children *)
  | Text of string

exception Parse_error of string
(** Carries a human-readable message with the offending position. *)

val parse : string -> node
(** Parses a document and returns its root element.
    @raise Parse_error on malformed input. *)

(** {1 Tree helpers} *)

val tag : node -> string
(** The element's tag; [""] for text nodes. *)

val attr : node -> string -> string option

val children : node -> node list

val find_all : node -> string -> node list
(** Direct children with the given tag. *)

val find_first : node -> string -> node option

val descendants : node -> string -> node list
(** All descendants (any depth) with the given tag, document order. *)

val text_content : node -> string
(** Concatenated text of the node and its descendants, trimmed. *)
