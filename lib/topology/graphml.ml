open Netgraph

let default_capacity_mbps = 1000.

let of_string src =
  let root = Xmlparse.parse src in
  if Xmlparse.tag root <> "graphml" then failwith "Graphml: not a graphml document";
  (* Resolve key ids to attribute names, e.g. d33 -> label. *)
  let keys = Hashtbl.create 16 in
  List.iter
    (fun k ->
      match (Xmlparse.attr k "id", Xmlparse.attr k "attr.name") with
      | Some id, Some name -> Hashtbl.replace keys id name
      | _ -> ())
    (Xmlparse.find_all root "key");
  let data_value el name =
    List.find_map
      (fun d ->
        match Xmlparse.attr d "key" with
        | Some k when Hashtbl.find_opt keys k = Some name ->
          Some (Xmlparse.text_content d)
        | _ -> None)
      (Xmlparse.find_all el "data")
  in
  let graph =
    match Xmlparse.find_first root "graph" with
    | Some g -> g
    | None -> failwith "Graphml: missing graph element"
  in
  let b = Digraph.Builder.create () in
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun n ->
      match Xmlparse.attr n "id" with
      | None -> failwith "Graphml: node without id"
      | Some id ->
        let label =
          match data_value n "label" with
          | Some l when String.trim l <> "" -> l
          | _ -> id
        in
        (* Labels may repeat in TopologyZoo; disambiguate with the id. *)
        let before = Digraph.Builder.node_count b in
        let node = Digraph.Builder.add_named_node b label in
        let node =
          if Digraph.Builder.node_count b = before then
            (* the label was taken: mint a unique name *)
            Digraph.Builder.add_named_node b (label ^ "#" ^ id)
          else node
        in
        Hashtbl.replace by_id id node)
    (Xmlparse.find_all graph "node");
  let capacity el =
    match data_value el "LinkSpeedRaw" with
    | Some raw -> (
      match float_of_string_opt raw with
      | Some bps when bps > 0. -> bps /. 1e6
      | _ -> default_capacity_mbps)
    | None -> (
      match (data_value el "LinkSpeed", data_value el "LinkSpeedUnits") with
      | Some v, Some unit -> (
        match float_of_string_opt v with
        | Some x when x > 0. ->
          let mult =
            match String.uppercase_ascii unit with
            | "K" -> 1e-3
            | "M" -> 1.
            | "G" -> 1e3
            | "T" -> 1e6
            | _ -> 1.
          in
          x *. mult
        | _ -> default_capacity_mbps)
      | _ -> default_capacity_mbps)
  in
  List.iter
    (fun e ->
      match (Xmlparse.attr e "source", Xmlparse.attr e "target") with
      | Some s, Some t -> (
        match (Hashtbl.find_opt by_id s, Hashtbl.find_opt by_id t) with
        | Some sn, Some tn when sn <> tn ->
          ignore (Digraph.Builder.add_biedge b sn tn ~cap:(capacity e))
        | _ -> () (* dangling endpoints or self loops are dropped *))
      | _ -> failwith "Graphml: edge without endpoints")
    (Xmlparse.find_all graph "edge");
  Digraph.Builder.build b

let load_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  of_string src
