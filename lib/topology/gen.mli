(** Deterministic synthetic ISP-like topologies.

    Stand-ins for SNDLib/TopologyZoo files that cannot be bundled: given
    a name (which seeds the generator), a node count and an undirected
    link count, produces a strongly connected bidirected graph — a ring
    backbone plus random chords — with capacities drawn from SNDLib-like
    module classes.  The same name always yields the same graph. *)

val capacity_classes : (float * float) array
(** (capacity in Mbit/s, selection weight) pairs. *)

val synthetic :
  ?seed:int -> name:string -> nodes:int -> links:int -> unit ->
  Netgraph.Digraph.t
(** [links] counts undirected links (the graph gets [2 * links] directed
    edges).  [links >= nodes] is required so the ring fits.
    [seed] defaults to a hash of [name]. *)
