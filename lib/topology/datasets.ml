open Netgraph

type kind = Embedded | Synthetic

type info = { name : string; nodes : int; links : int; kind : kind }

(* The Abilene backbone in SNDLib native format: real node set and link
   structure; OC-192 trunks (9920 Mbit/s) with the Atlanta M5 access
   link at OC-48 (2480 Mbit/s). *)
let abilene_native =
  "# Abilene (Internet2) backbone, SNDLib native format\n\
   NODES (\n\
  \  ATLAM5 ( -84.3833 33.75 )\n\
  \  ATLAng ( -85.50 34.50 )\n\
  \  CHINng ( -87.6167 41.8333 )\n\
  \  DNVRng ( -105.00 40.75 )\n\
  \  HSTNng ( -95.517364 29.770031 )\n\
  \  IPLSng ( -86.159535 39.780622 )\n\
  \  KSCYng ( -96.596704 38.961694 )\n\
  \  LOSAng ( -118.25 34.05 )\n\
  \  NYCMng ( -73.9667 40.7833 )\n\
  \  SNVAng ( -122.02553 37.38575 )\n\
  \  STTLng ( -122.30 47.60 )\n\
  \  WASHng ( -77.026842 38.897303 )\n\
   )\n\
   LINKS (\n\
  \  L1  ( ATLAM5 ATLAng ) 2480.0 0.0 0.0 0.0 ( )\n\
  \  L2  ( ATLAng HSTNng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L3  ( ATLAng IPLSng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L4  ( ATLAng WASHng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L5  ( CHINng IPLSng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L6  ( CHINng NYCMng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L7  ( DNVRng KSCYng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L8  ( DNVRng SNVAng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L9  ( DNVRng STTLng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L10 ( HSTNng KSCYng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L11 ( HSTNng LOSAng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L12 ( IPLSng KSCYng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L13 ( LOSAng SNVAng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L14 ( NYCMng WASHng ) 9920.0 0.0 0.0 0.0 ( )\n\
  \  L15 ( SNVAng STTLng ) 9920.0 0.0 0.0 0.0 ( )\n\
   )\n"

let abilene () = (Sndlib.of_native abilene_native).Sndlib.graph

(* Published sizes of the evaluation topologies (SNDLib / TopologyZoo). *)
let synthetic_catalog =
  [
    ("Cost266", 37, 57);
    ("Germany50", 50, 88);
    ("Giul39", 39, 86);
    ("Janos-US-CA", 39, 61);
    ("Myren", 37, 41);
    ("Pioro40", 40, 89);
    ("Renater2010", 43, 56);
    ("SwitchL3", 42, 63);
    ("Ta2", 65, 108);
    ("Zib54", 54, 80);
    ("Geant", 22, 36);
  ]

(* TopologyZoo instances at data-plane stress scale (published node and
   undirected-link counts).  Like the fig4 set they default to
   deterministic synthetic stand-ins; the real GraphML files drop in via
   [load ~data_dir] (see examples/fetch_topologyzoo.sh). *)
let zoo_scale_catalog =
  [
    ("Interoute", 110, 148);
    ("Deltacom", 113, 161);
    ("GtsCe", 149, 193);
    ("Colt", 153, 191);
    ("UsCarrier", 158, 189);
    ("Cogentco", 197, 245);
    ("Kdl", 754, 899);
  ]

let all =
  { name = "Abilene"; nodes = 12; links = 15; kind = Embedded }
  :: List.map
       (fun (name, nodes, links) -> { name; nodes; links; kind = Synthetic })
       (synthetic_catalog @ zoo_scale_catalog)

let fig4_names =
  [ "Cost266"; "Germany50"; "Giul39"; "Janos-US-CA"; "Myren"; "Pioro40";
    "Renater2010"; "SwitchL3"; "Ta2"; "Zib54" ]

let fig6_names = [ "Abilene"; "Germany50"; "Geant" ]

(* The evals/sec-vs-n size-scaling suite: one familiar small and medium
   instance, then the zoo-scale ladder up to Kdl's 754 nodes. *)
let scale_names =
  [ "Abilene"; "Germany50"; "Interoute"; "GtsCe"; "Cogentco"; "Kdl" ]

let load ?data_dir name =
  let lname = String.lowercase_ascii name in
  let from_file =
    match data_dir with
    | None -> None
    | Some dir ->
      let path = Filename.concat dir (name ^ ".graphml") in
      if Sys.file_exists path then Some (Graphml.load_file path) else None
  in
  match from_file with
  | Some g -> g
  | None ->
    if lname = "abilene" then abilene ()
    else (
      match
        List.find_opt
          (fun (n, _, _) -> String.lowercase_ascii n = lname)
          (synthetic_catalog @ zoo_scale_catalog)
      with
      | Some (n, nodes, links) -> Gen.synthetic ~name:n ~nodes ~links ()
      | None -> raise Not_found)

let _ = Digraph.node_count (* silence unused-open warnings in some setups *)
