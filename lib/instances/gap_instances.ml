open Netgraph
open Te

type t = {
  name : string;
  network : Network.t;
  source : int;
  target : int;
  joint_weights : Weights.t;
  joint_waypoints : Segments.setting;
  lwo_weights : Weights.t option;
  predicted_joint_mlu : float;
  predicted_lwo_mlu : float option;
}

let harmonic m =
  let acc = ref 0. in
  for k = 1 to m do
    acc := !acc +. (1. /. float_of_int k)
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* TE-Instance 1 (Figure 1)                                            *)
(* ------------------------------------------------------------------ *)

let instance1 ~m =
  if m < 2 then invalid_arg "instance1: m >= 2 required";
  let fm = float_of_int m in
  let b = Digraph.Builder.create () in
  (* Node 0 = s = v_1; nodes 1..m-1 = v_2..v_m; node m = t. *)
  let v = Array.init m (fun i -> Digraph.Builder.add_named_node b (Printf.sprintf "v%d" (i + 1))) in
  let t = Digraph.Builder.add_named_node b "t" in
  let horiz = Array.make (m - 1) 0 in
  for i = 0 to m - 2 do
    horiz.(i) <- Digraph.Builder.add_edge b ~src:v.(i) ~dst:v.(i + 1) ~cap:fm
  done;
  let vert_down = Array.make m 0 and vert_up = Array.make m 0 in
  for i = 0 to m - 1 do
    vert_down.(i) <- Digraph.Builder.add_edge b ~src:v.(i) ~dst:t ~cap:1.;
    vert_up.(i) <- Digraph.Builder.add_edge b ~src:t ~dst:v.(i) ~cap:1.
  done;
  let g = Digraph.Builder.build b in
  let demands = Array.init m (fun _ -> Network.demand v.(0) t 1.) in
  (* Lemma 3.5: weight m on every vertical link, 1 on horizontals;
     waypoint v_i for the i-th demand. *)
  let jw = Array.make (Digraph.edge_count g) 1. in
  Array.iter (fun e -> jw.(e) <- fm) vert_down;
  Array.iter (fun e -> jw.(e) <- fm) vert_up;
  let jwp = Array.init m (fun i -> if i = 0 then [] else [ v.(i) ]) in
  (* Lemma 3.6: weight 2 on (s, t), 1 elsewhere is LWO-optimal. *)
  let lwo_w = Array.make (Digraph.edge_count g) 1. in
  lwo_w.(vert_down.(0)) <- 2.;
  {
    name = Printf.sprintf "TE-Instance-1(m=%d)" m;
    network = Network.make g demands;
    source = v.(0);
    target = t;
    joint_weights = jw;
    joint_waypoints = jwp;
    lwo_weights = Some lwo_w;
    predicted_joint_mlu = 1.;
    predicted_lwo_mlu = Some (fm /. 2.);
  }

(* ------------------------------------------------------------------ *)
(* TE-Instance I'_1 (Lemma 3.7, inverse-of-capacity case)              *)
(* ------------------------------------------------------------------ *)

let instance1_invcap ~m =
  if m < 3 then invalid_arg "instance1_invcap: m >= 3 required";
  let fm = float_of_int m in
  let b = Digraph.Builder.create () in
  let s = Digraph.Builder.add_named_node b "s" in
  let t = Digraph.Builder.add_named_node b "t" in
  (* v_3 .. v_m. *)
  let v =
    Array.init (m - 2) (fun i ->
        Digraph.Builder.add_named_node b (Printf.sprintf "v%d" (i + 3)))
  in
  ignore (Digraph.Builder.add_biedge b s t ~cap:1.);
  Array.iter (fun vi -> ignore (Digraph.Builder.add_biedge b vi t ~cap:1.)) v;
  for i = 0 to m - 4 do
    ignore (Digraph.Builder.add_edge b ~src:v.(i) ~dst:v.(i + 1) ~cap:fm)
  done;
  let u = Array.init m (fun j -> Digraph.Builder.add_named_node b (Printf.sprintf "u%d" (j + 1))) in
  let z = Array.init m (fun j -> Digraph.Builder.add_named_node b (Printf.sprintf "z%d" (j + 1))) in
  for j = 0 to m - 1 do
    ignore (Digraph.Builder.add_edge b ~src:s ~dst:u.(j) ~cap:1.);
    ignore (Digraph.Builder.add_edge b ~src:u.(j) ~dst:z.(j) ~cap:1.);
    ignore (Digraph.Builder.add_edge b ~src:z.(j) ~dst:v.(0) ~cap:1.)
  done;
  let g = Digraph.Builder.build b in
  let demands = Array.init m (fun _ -> Network.demand s t 1.) in
  (* Joint setting: make every vertical exit expensive so the exits are
     chosen by waypoints [u_j; v_i]; m demands over m-1 unit exits give
     MLU 2. *)
  let big = 10. *. fm in
  let jw =
    Array.init (Digraph.edge_count g) (fun e ->
        let a = Digraph.src g e and b' = Digraph.dst g e in
        if a = t || b' = t then big else 1.)
  in
  let jwp =
    Array.init m (fun i ->
        if i = 0 then []
        else
          let exit = v.(min (i - 1) (m - 3)) in
          [ u.(i - 1); exit ])
  in
  {
    name = Printf.sprintf "TE-Instance-1'(m=%d)" m;
    network = Network.make g demands;
    source = s;
    target = t;
    joint_weights = jw;
    joint_waypoints = jwp;
    lwo_weights = None;
    predicted_joint_mlu = 2.;
    predicted_lwo_mlu = None;
  }

(* ------------------------------------------------------------------ *)
(* TE-Instance 2 (Figure 2a)                                           *)
(* ------------------------------------------------------------------ *)

let instance2 ~m =
  if m < 1 then invalid_arg "instance2: m >= 1 required";
  let b = Digraph.Builder.create () in
  let s = Digraph.Builder.add_named_node b "s" in
  let w =
    Array.init m (fun j -> Digraph.Builder.add_named_node b (Printf.sprintf "w%d" (j + 1)))
  in
  let t = Digraph.Builder.add_named_node b "t" in
  for j = 0 to m - 1 do
    let c = 1. /. float_of_int (j + 1) in
    ignore (Digraph.Builder.add_edge b ~src:s ~dst:w.(j) ~cap:c);
    ignore (Digraph.Builder.add_edge b ~src:w.(j) ~dst:t ~cap:c)
  done;
  let g = Digraph.Builder.build b in
  let demands =
    Array.init m (fun k -> Network.demand s t (1. /. float_of_int (k + 1)))
  in
  (* With one waypoint w_k for the k-th demand and weights that make
     each (s, w_k, t) path the unique shortest to its waypoint, Joint
     routes the size-1/k demand on the capacity-1/k path. *)
  let jw = Array.make (Digraph.edge_count g) 1. in
  let jwp = Array.init m (fun k -> [ w.(k) ]) in
  {
    name = Printf.sprintf "TE-Instance-2(m=%d)" m;
    network = Network.make g demands;
    source = s;
    target = t;
    joint_weights = jw;
    joint_waypoints = jwp;
    lwo_weights = None;
    predicted_joint_mlu = 1.;
    predicted_lwo_mlu = Some (harmonic m);
    (* max ES-flow is 1 (Lemma 3.10); demand H_m gives MLU = H_m. *)
  }

(* ------------------------------------------------------------------ *)
(* TE-Instances 3 and 4 (Figures 2b and 2c)                            *)
(* ------------------------------------------------------------------ *)

(* Shared bilayer builder: top nodes v_1..v_m (v_1 = s), bottom nodes
   w_1..w_m (w_m = t), directed horizontals of capacity [d] on both
   layers, and bi-directed cross links (v_i, w_j) with capacity
   [cross_cap i j]. *)
let bilayer ~m ~d ~cross_cap =
  let b = Digraph.Builder.create () in
  let v =
    Array.init m (fun i -> Digraph.Builder.add_named_node b (Printf.sprintf "v%d" (i + 1)))
  in
  let w =
    Array.init m (fun j -> Digraph.Builder.add_named_node b (Printf.sprintf "w%d" (j + 1)))
  in
  let top = Array.make (max 0 (m - 1)) 0 and bottom = Array.make (max 0 (m - 1)) 0 in
  for i = 0 to m - 2 do
    top.(i) <- Digraph.Builder.add_edge b ~src:v.(i) ~dst:v.(i + 1) ~cap:d;
    bottom.(i) <- Digraph.Builder.add_edge b ~src:w.(i) ~dst:w.(i + 1) ~cap:d
  done;
  let cross = Array.make_matrix m m 0 and cross_rev = Array.make_matrix m m 0 in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      let c = cross_cap i j in
      cross.(i).(j) <- Digraph.Builder.add_edge b ~src:v.(i) ~dst:w.(j) ~cap:c;
      cross_rev.(i).(j) <- Digraph.Builder.add_edge b ~src:w.(j) ~dst:v.(i) ~cap:c
    done
  done;
  let g = Digraph.Builder.build b in
  (g, v, w, cross, cross_rev)

(* The m^2 demands of instances 3/4: m identical harmonic sets.  The
   demand indexed (i, j) gets size [size i j] and waypoints
   [v_i; w_j] (Lemmas 3.11 / 3.13). *)
let bilayer_demands ~m ~v ~w ~t ~size =
  let demands = Array.make (m * m) (Network.demand v.(1) t 1.) in
  let wps = Array.make (m * m) [] in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      let k = (i * m) + j in
      demands.(k) <- Network.demand v.(0) t (size i j);
      wps.(k) <- [ v.(i); w.(j) ]
    done
  done;
  (demands, wps)

let cross_weights g ~m ~cross ~cross_rev =
  let jw = Array.make (Digraph.edge_count g) 1. in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      jw.(cross.(i).(j)) <- float_of_int m;
      jw.(cross_rev.(i).(j)) <- float_of_int m
    done
  done;
  jw

let instance3 ~m =
  if m < 2 then invalid_arg "instance3: m >= 2 required";
  let d = float_of_int m *. harmonic m in
  (* Every link into w_j has capacity 1/j. *)
  let cross_cap _i j = 1. /. float_of_int (j + 1) in
  let g, v, w, cross, cross_rev = bilayer ~m ~d ~cross_cap in
  let t = w.(m - 1) in
  let size _i j = 1. /. float_of_int (j + 1) in
  let demands, wps = bilayer_demands ~m ~v ~w ~t ~size in
  {
    name = Printf.sprintf "TE-Instance-3(m=%d)" m;
    network = Network.make g demands;
    source = v.(0);
    target = t;
    joint_weights = cross_weights g ~m ~cross ~cross_rev;
    joint_waypoints = wps;
    lwo_weights = None;
    predicted_joint_mlu = 1.;
    predicted_lwo_mlu = Some (d /. 2.);
    (* Lemma 3.12: the max ES-flow is 2. *)
  }

let instance4 ~m =
  if m < 2 then invalid_arg "instance4: m >= 2 required";
  let d = float_of_int m *. harmonic m in
  (* Every link out of v_i has capacity 1/(m - i + 1); with 0-based i:
     1/(m - i). *)
  let cross_cap i _j = 1. /. float_of_int (m - i) in
  let g, v, w, cross, cross_rev = bilayer ~m ~d ~cross_cap in
  let t = w.(m - 1) in
  let size i _j = 1. /. float_of_int (m - i) in
  let demands, wps = bilayer_demands ~m ~v ~w ~t ~size in
  {
    name = Printf.sprintf "TE-Instance-4(m=%d)" m;
    network = Network.make g demands;
    source = v.(0);
    target = t;
    joint_weights = cross_weights g ~m ~cross ~cross_rev;
    joint_waypoints = wps;
    lwo_weights = None;
    predicted_joint_mlu = 1.;
    predicted_lwo_mlu = None;
  }

let instance5 ~m =
  if m < 2 then invalid_arg "instance5: m >= 2 required";
  let i3 = instance3 ~m and i4 = instance4 ~m in
  let g3 = i3.network.Network.graph and g4 = i4.network.Network.graph in
  let d = float_of_int m *. harmonic m in
  let n3 = Digraph.node_count g3 in
  let b = Digraph.Builder.create () in
  for v = 0 to n3 - 1 do
    ignore (Digraph.Builder.add_named_node b ("a." ^ Digraph.node_name g3 v))
  done;
  for v = 0 to Digraph.node_count g4 - 1 do
    ignore (Digraph.Builder.add_named_node b ("b." ^ Digraph.node_name g4 v))
  done;
  List.iter
    (fun (u, v, c) -> ignore (Digraph.Builder.add_edge b ~src:u ~dst:v ~cap:c))
    (Digraph.edges g3);
  List.iter
    (fun (u, v, c) ->
      ignore (Digraph.Builder.add_edge b ~src:(n3 + u) ~dst:(n3 + v) ~cap:c))
    (Digraph.edges g4);
  ignore (Digraph.Builder.add_edge b ~src:i3.target ~dst:(n3 + i4.source) ~cap:d);
  let g = Digraph.Builder.build b in
  let source = i3.source and target = n3 + i4.target in
  let k = Array.length i3.network.Network.demands in
  let demands =
    Array.init k (fun i ->
        { (i3.network.Network.demands.(i)) with Network.src = source; dst = target })
  in
  (* Joint setting: both halves' lemma weights, and the concatenated
     waypoint lists (two per half). *)
  let m3 = Digraph.edge_count g3 in
  let jw =
    Array.init (Digraph.edge_count g)
      (fun e ->
        if e < m3 then i3.joint_weights.(e)
        else if e < m3 + Digraph.edge_count g4 then i4.joint_weights.(e - m3)
        else 1.)
  in
  (* Demand (i, j) has size 1/(j+1); in the instance-4 half its cross
     link must have that capacity, i.e. the v-layer index m-1-j, and the
     m same-size copies (one per i) spread over distinct w-layer nodes. *)
  let jwp =
    Array.init k (fun idx ->
        let i = idx / m and j = idx mod m in
        let vb = n3 + (m - 1 - j) and wb = n3 + m + i in
        i3.joint_waypoints.(idx) @ [ vb; wb ])
  in
  {
    name = Printf.sprintf "TE-Instance-5(m=%d)" m;
    network = Network.make g demands;
    source;
    target;
    joint_weights = jw;
    joint_waypoints = jwp;
    lwo_weights = None;
    predicted_joint_mlu = 1.;
    predicted_lwo_mlu = None;
  }

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)
(* ------------------------------------------------------------------ *)

let fig3a () =
  let b = Digraph.Builder.create () in
  let s = Digraph.Builder.add_named_node b "s" in
  let v1 = Digraph.Builder.add_named_node b "v1" in
  let v2 = Digraph.Builder.add_named_node b "v2" in
  let v3 = Digraph.Builder.add_named_node b "v3" in
  let t = Digraph.Builder.add_named_node b "t" in
  ignore (Digraph.Builder.add_edge b ~src:s ~dst:v1 ~cap:0.5);
  ignore (Digraph.Builder.add_edge b ~src:s ~dst:v2 ~cap:0.5);
  ignore (Digraph.Builder.add_edge b ~src:s ~dst:v3 ~cap:0.75);
  ignore (Digraph.Builder.add_edge b ~src:v1 ~dst:t ~cap:0.5);
  (* v2 has two parallel links of capacity 1/4. *)
  ignore (Digraph.Builder.add_edge b ~src:v2 ~dst:t ~cap:0.25);
  ignore (Digraph.Builder.add_edge b ~src:v2 ~dst:t ~cap:0.25);
  ignore (Digraph.Builder.add_edge b ~src:v3 ~dst:t ~cap:0.75);
  (Digraph.Builder.build b, s, t)

let fig3b () =
  let b = Digraph.Builder.create () in
  let s = Digraph.Builder.add_named_node b "s" in
  let v1 = Digraph.Builder.add_named_node b "v1" in
  let v2 = Digraph.Builder.add_named_node b "v2" in
  let v3 = Digraph.Builder.add_named_node b "v3" in
  let v4 = Digraph.Builder.add_named_node b "v4" in
  let t = Digraph.Builder.add_named_node b "t" in
  ignore (Digraph.Builder.add_edge b ~src:s ~dst:v1 ~cap:1.);
  ignore (Digraph.Builder.add_edge b ~src:s ~dst:v2 ~cap:0.5);
  ignore (Digraph.Builder.add_edge b ~src:v1 ~dst:v3 ~cap:(1. /. 6.));
  ignore (Digraph.Builder.add_edge b ~src:v1 ~dst:v4 ~cap:(1. /. 3.));
  ignore (Digraph.Builder.add_edge b ~src:v2 ~dst:v3 ~cap:(1. /. 3.));
  ignore (Digraph.Builder.add_edge b ~src:v2 ~dst:v4 ~cap:(2. /. 3.));
  ignore (Digraph.Builder.add_edge b ~src:v3 ~dst:t ~cap:0.5);
  ignore (Digraph.Builder.add_edge b ~src:v4 ~dst:t ~cap:1.);
  (Digraph.Builder.build b, s, t)
