(** The paper's hand-constructed TE instances (§3, Figures 1–3).

    Each builder returns the network, the single source-target demand
    list, and the joint weight/waypoint setting constructed in the
    corresponding lemma (which achieves MLU = 1 = OPT on instances
    1–4).  The [m] parameter follows the paper: instance 1 has
    n = m + 1 nodes, instance 2 has n = m + 2, instances 3 and 4 have
    n = 2m, instance 5 has n = 4m + 2. *)

type t = {
  name : string;
  network : Te.Network.t;
  source : int;
  target : int;
  joint_weights : Te.Weights.t;  (** the lemma's weight setting *)
  joint_waypoints : Te.Segments.setting;  (** the lemma's waypoints *)
  lwo_weights : Te.Weights.t option;
      (** a weight setting optimal for LWO, where the paper gives one *)
  predicted_joint_mlu : float;  (** what the lemma proves (1 on 1–4) *)
  predicted_lwo_mlu : float option;  (** the lemma's LWO value *)
}

val instance1 : m:int -> t
(** Figure 1: the Ω(n) gap instance (Lemmas 3.5–3.7).  [m >= 2]. *)

val instance1_invcap : m:int -> t
(** The transformed instance I'_1 used by Lemma 3.7 for the
    inverse-of-capacity weight setting: the first two horizontal hops of
    instance 1 are replaced by [m] parallel two-hop unit-capacity paths
    (s, u_j, z_j, v3), so that under inverse-capacity weights every
    shortest path from s leaves through (s,t) or funnels into (v3,t),
    forcing WPO >= m/2 while the joint optimum stays constant.
    [m >= 3]. *)

val instance2 : m:int -> t
(** Figure 2a: harmonic parallel paths; max ES-flow 1 (Lemma 3.10).
    [m >= 1]. *)

val instance3 : m:int -> t
(** Figure 2b: the Ω(n log n) LWO-gap instance (Lemmas 3.11–3.12).
    [m >= 2]. *)

val instance4 : m:int -> t
(** Figure 2c: the Ω(n log n) WPO-gap instance (Lemmas 3.13–3.14).
    [m >= 2]. *)

val instance5 : m:int -> t
(** The concatenation of instances 3 and 4 (Theorem 3.15).  The joint
    setting uses two waypoints in each half. *)

val harmonic : int -> float
(** H_m = 1 + 1/2 + ... + 1/m. *)

val fig3a : unit -> Netgraph.Digraph.t * int * int
(** Figure 3 left example: (graph, s, t); capacities equal usable
    capacities. *)

val fig3b : unit -> Netgraph.Digraph.t * int * int
(** Figure 3 right example. *)
