(** Dense two-phase primal simplex.

    Solves linear programs over non-negative variables:
    optimize [c.x] subject to rows [a.x (<= | = | >=) b], [x >= 0].
    This is the reproduction's stand-in for the LP part of Gurobi; it is
    exact (up to floating point) and intended for small and medium
    instances (a few thousand nonzeros). *)

type relation = Le | Ge | Eq

type sense = Maximize | Minimize

type constr = {
  coeffs : (int * float) list;  (** sparse row: (variable, coefficient) *)
  rel : relation;
  rhs : float;
}

type problem = {
  nvars : int;
  sense : sense;
  objective : (int * float) list;  (** sparse objective *)
  constrs : constr list;
}

type result =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

val constr : (int * float) list -> relation -> float -> constr

val solve : ?max_iters:int -> problem -> result
(** @raise Invalid_argument on out-of-range variable indices.
    [max_iters] defaults to [50_000] pivots; exceeding it raises
    [Failure] (never observed on the reproduction's workloads). *)

val check_feasible : ?tol:float -> problem -> float array -> bool
(** Does the point satisfy every constraint and non-negativity? *)

val pp_result : Format.formatter -> result -> unit
