(** Linear programming.

    Two solvers share this module:

    - {!Sparse} — the production solver: a bounded-variable sparse
      revised simplex (CSC storage, LU-factored basis with eta updates,
      partial Devex-style pricing, warm starts).
    - {!Dense} — the original dense two-phase tableau, kept as a
      slow-but-simple test oracle.

    The top-level {!solve} keeps the historical row-form API
    (non-negative variables, [a.x (<= | = | >=) b]) but is routed
    through the sparse solver. *)

type probe = {
  enabled : bool;
  start : string -> int;  (** open a span by name, returning a token *)
  finish : int -> unit;  (** close the span for a token from [start] *)
}
(** Injected span hooks, mirroring [Engine.Probe.t] (this library does
    not depend on the engine).  The solvers fire ["lp:solve"] around
    each {!Sparse.solve}, ["lp:factor"] around basis refactorizations,
    and {!Milp} fires ["milp:node"] per branch-and-bound node.  With
    [enabled = false] every instrumented site is a load and a branch. *)

val null_probe : probe
(** The disabled probe ([enabled = false]; [start] returns [-1]). *)

type relation = Le | Ge | Eq

type sense = Maximize | Minimize

type constr = {
  coeffs : (int * float) list;  (** sparse row: (variable, coefficient) *)
  rel : relation;
  rhs : float;
}

type problem = {
  nvars : int;
  sense : sense;
  objective : (int * float) list;  (** sparse objective *)
  constrs : constr list;
}

type result =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

val constr : (int * float) list -> relation -> float -> constr

val solve : ?max_iters:int -> problem -> result
(** @raise Invalid_argument on out-of-range variable indices.
    [max_iters] defaults to a limit proportional to the problem size;
    exceeding it raises [Failure] (use {!Sparse.solve} for the typed
    [CycleLimit] outcome instead). *)

val check_feasible : ?tol:float -> problem -> float array -> bool
(** Does the point satisfy every constraint and non-negativity? *)

val pp_result : Format.formatter -> result -> unit

(** The original dense two-phase tableau simplex, kept as a test oracle
    for the fuzz suite and for debugging.  Same semantics as the
    top-level entry points had before the sparse rewrite. *)
module Dense : sig
  val solve : ?max_iters:int -> problem -> result
  (** @raise Invalid_argument on out-of-range variable indices.
      @raise Failure after [max_iters] (default [50_000]) pivots. *)
end

(** Bounded-variable sparse revised simplex.

    Problems are held in computational form: minimize (or maximize)
    [c.x] subject to [A x + s = b] with bounds [l <= (x, s) <= u], where
    each row's logical variable [s_i] encodes its relation.  Build
    problems directly with {!builder}/{!add_row}/{!finish}, or convert a
    legacy row-form {!problem} with {!of_problem} (which folds singleton
    rows into variable bounds).

    {!solve} returns the optimal {!basis} so that a follow-up solve of
    the same (or a nearby) problem can warm-start from it: branch-and-
    bound children pass their parent's basis together with tightened
    [?bounds]; MCF re-solves under a scaled demand matrix pass the
    previous optimum's basis.  A stale or singular warm basis is
    repaired by the composite phase 1 (or, at worst, dropped for the
    slack basis) — warm starting never changes the result, only the
    iteration count. *)
module Sparse : sig
  type t = {
    ncols : int;
    nrows : int;
    colp : int array;  (** CSC column pointers, length [ncols + 1] *)
    rowi : int array;
    vals : float array;
    obj : float array;  (** dense objective, in the original sense *)
    minimize : bool;
    rhs : float array;
    lower : float array;  (** length [ncols + nrows]: structurals, logicals *)
    upper : float array;
  }

  type basis = {
    head : int array;  (** basic column of each row position *)
    stat : int array;  (** per-column status; opaque, only round-tripped *)
  }

  type outcome =
    | Optimal of {
        value : float;
        solution : float array;
        basis : basis;
        iters : int;
      }
    | Infeasible
    | Unbounded
    | CycleLimit of { iters : int }
        (** Iteration limit hit before optimality was proven. *)

  type builder

  val builder : minimize:bool -> int -> builder
  (** [builder ~minimize ncols]: all variables start with bounds
      [[0, infinity)] and zero objective. *)

  val set_obj : builder -> int -> float -> unit

  val set_bounds : builder -> int -> lower:float -> upper:float -> unit

  val add_row : builder -> (int * float) list -> relation -> float -> unit
  (** Duplicate variable entries are accumulated; zero coefficients are
      dropped.  @raise Invalid_argument on out-of-range indices. *)

  val finish : builder -> t

  val of_problem : problem -> t
  (** Convert a legacy row-form problem (variables implicitly
      [>= 0]).  Singleton rows become variable bounds.
      @raise Invalid_argument on out-of-range indices, with the same
      messages as the top-level {!solve}. *)

  val default_iter_limit : t -> int
  (** The size-proportional default for [?max_iters]. *)

  val solve :
    ?max_iters:int ->
    ?bounds:(int * float * float) list ->
    ?basis:basis ->
    ?probe:probe ->
    t ->
    outcome
  (** [bounds] lists per-variable overrides [(j, lo, hi)] that {e
      tighten} the stored bounds (lower is raised to [lo], upper cut to
      [hi]); the problem itself is not mutated, so one [t] serves a
      whole branch-and-bound tree.  [basis] warm-starts from a previous
      {!Optimal} basis of the same-shaped problem.  [probe] (default
      {!null_probe}) receives an ["lp:solve"] span per call and an
      ["lp:factor"] span per basis (re)factorization. *)
end
