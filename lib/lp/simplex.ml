type relation = Le | Ge | Eq

type sense = Maximize | Minimize

type constr = { coeffs : (int * float) list; rel : relation; rhs : float }

type problem = {
  nvars : int;
  sense : sense;
  objective : (int * float) list;
  constrs : constr list;
}

type result =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

let constr coeffs rel rhs = { coeffs; rel; rhs }

let tol = 1e-8

(* Tableau layout: [rows] constraint rows, one objective row at index
   [rows].  Columns: structural variables, then slack/surplus, then
   artificial variables, then the RHS column.  We always MAXIMIZE
   internally; a Minimize problem negates the objective. *)
type tableau = {
  a : float array array; (* (rows+1) x (cols+1) *)
  rows : int;
  cols : int; (* number of variable columns; rhs is column [cols] *)
  basis : int array; (* basic variable of each row *)
}

let pivot t ~row ~col =
  let a = t.a in
  let p = a.(row).(col) in
  let arow = a.(row) in
  for j = 0 to t.cols do
    arow.(j) <- arow.(j) /. p
  done;
  for i = 0 to t.rows do
    if i <> row then begin
      let f = a.(i).(col) in
      if f <> 0. then begin
        let ai = a.(i) in
        for j = 0 to t.cols do
          ai.(j) <- ai.(j) -. (f *. arow.(j))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* One simplex phase: maximize the objective stored in the last row
   (as  z - c.x = 0, i.e. row holds -c).  [allowed j] restricts entering
   columns.  Returns [`Optimal] or [`Unbounded].  Uses Dantzig's rule
   with a switch to Bland's rule after [bland_after] iterations to break
   cycles. *)
let run_phase ?(max_iters = 50_000) t allowed =
  let obj = t.a.(t.rows) in
  let bland_after = max_iters / 2 in
  let iters = ref 0 in
  let result = ref None in
  while !result = None do
    incr iters;
    if !iters > max_iters then failwith "Simplex: iteration limit exceeded";
    let bland = !iters > bland_after in
    (* Entering column: most negative reduced cost (Dantzig), or the
       first negative one (Bland). *)
    let col = ref (-1) in
    let best = ref (-.tol) in
    (try
       for j = 0 to t.cols - 1 do
         if allowed j && obj.(j) < !best then begin
           col := j;
           if bland then raise Exit else best := obj.(j)
         end
       done
     with Exit -> ());
    if !col < 0 then result := Some `Optimal
    else begin
      (* Ratio test; Bland tie-break on the leaving basic variable. *)
      let row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to t.rows - 1 do
        let aij = t.a.(i).(!col) in
        if aij > tol then begin
          let ratio = t.a.(i).(t.cols) /. aij in
          if
            ratio < !best_ratio -. tol
            || (ratio < !best_ratio +. tol
                && (!row < 0 || t.basis.(i) < t.basis.(!row)))
          then begin
            best_ratio := ratio;
            row := i
          end
        end
      done;
      if !row < 0 then result := Some `Unbounded
      else pivot t ~row:!row ~col:!col
    end
  done;
  match !result with Some r -> r | None -> assert false

let solve ?(max_iters = 50_000) p =
  let nrows = List.length p.constrs in
  List.iter
    (fun c ->
      List.iter
        (fun (j, _) ->
          if j < 0 || j >= p.nvars then
            invalid_arg "Simplex.solve: variable index out of range")
        c.coeffs)
    p.constrs;
  List.iter
    (fun (j, _) ->
      if j < 0 || j >= p.nvars then
        invalid_arg "Simplex.solve: objective index out of range")
    p.objective;
  (* Normalize rows to non-negative RHS, count extra columns. *)
  let rows =
    List.map
      (fun c ->
        if c.rhs < 0. then
          { coeffs = List.map (fun (j, v) -> (j, -.v)) c.coeffs;
            rel = (match c.rel with Le -> Ge | Ge -> Le | Eq -> Eq);
            rhs = -.c.rhs }
        else c)
      p.constrs
  in
  let n_slack = List.length (List.filter (fun c -> c.rel <> Eq) rows) in
  let n_art =
    List.length (List.filter (fun c -> c.rel <> Le) rows)
  in
  let cols = p.nvars + n_slack + n_art in
  let a = Array.make_matrix (nrows + 1) (cols + 1) 0. in
  let basis = Array.make nrows (-1) in
  let t = { a; rows = nrows; cols; basis } in
  let slack_base = p.nvars in
  let art_base = p.nvars + n_slack in
  let next_slack = ref 0 and next_art = ref 0 in
  List.iteri
    (fun i c ->
      List.iter (fun (j, v) -> a.(i).(j) <- a.(i).(j) +. v) c.coeffs;
      a.(i).(cols) <- c.rhs;
      (match c.rel with
      | Le ->
        let s = slack_base + !next_slack in
        incr next_slack;
        a.(i).(s) <- 1.;
        basis.(i) <- s
      | Ge ->
        let s = slack_base + !next_slack in
        incr next_slack;
        a.(i).(s) <- -1.;
        let r = art_base + !next_art in
        incr next_art;
        a.(i).(r) <- 1.;
        basis.(i) <- r
      | Eq ->
        let r = art_base + !next_art in
        incr next_art;
        a.(i).(r) <- 1.;
        basis.(i) <- r))
    rows;
  (* Phase 1: maximize -(sum of artificials).  The objective row holds
     the negated cost; artificial j has cost -1, so the row entry is 1
     before making it consistent with the basis. *)
  if n_art > 0 then begin
    let obj = a.(nrows) in
    for j = art_base to art_base + n_art - 1 do
      obj.(j) <- 1.
    done;
    (* Make reduced costs of the basic artificials zero. *)
    for i = 0 to nrows - 1 do
      if basis.(i) >= art_base then
        for j = 0 to cols do
          obj.(j) <- obj.(j) -. a.(i).(j)
        done
    done;
    (match run_phase ~max_iters t (fun _ -> true) with
    | `Unbounded -> assert false (* phase-1 objective is bounded by 0 *)
    | `Optimal -> ());
    ()
  end;
  (* With the maximize convention, the objective row's RHS holds the
     current value of the phase-1 objective -(sum of artificials). *)
  let phase1_value = a.(nrows).(cols) in
  if n_art > 0 && phase1_value < -.1e-6 then Infeasible
  else begin
    (* Drive any artificial still in the basis out (degenerate at 0),
       or mark its row as redundant if no pivot exists. *)
    for i = 0 to nrows - 1 do
      if basis.(i) >= art_base then begin
        let col = ref (-1) in
        for j = 0 to art_base - 1 do
          if !col < 0 && abs_float a.(i).(j) > tol then col := j
        done;
        if !col >= 0 then pivot t ~row:i ~col:!col
      end
    done;
    (* Phase 2: install the real objective. *)
    let obj = a.(nrows) in
    Array.fill obj 0 (cols + 1) 0.;
    let sign = match p.sense with Maximize -> 1. | Minimize -> -1. in
    List.iter (fun (j, v) -> obj.(j) <- obj.(j) -. (sign *. v)) p.objective;
    for i = 0 to nrows - 1 do
      let b = basis.(i) in
      if b < art_base && obj.(b) <> 0. then begin
        let f = obj.(b) in
        for j = 0 to cols do
          obj.(j) <- obj.(j) -. (f *. a.(i).(j))
        done
      end
    done;
    let allowed j = j < art_base in
    match run_phase ~max_iters t allowed with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let solution = Array.make p.nvars 0. in
      for i = 0 to nrows - 1 do
        if basis.(i) < p.nvars then solution.(basis.(i)) <- a.(i).(cols)
      done;
      Array.iteri (fun j v -> if v < 0. && v > -.1e-7 then solution.(j) <- 0.) solution;
      let value = sign *. a.(nrows).(cols) in
      Optimal { value; solution }
  end

let check_feasible ?(tol = 1e-6) p x =
  Array.for_all (fun v -> v >= -.tol) x
  && List.for_all
       (fun c ->
         let lhs = List.fold_left (fun acc (j, v) -> acc +. (v *. x.(j))) 0. c.coeffs in
         match c.rel with
         | Le -> lhs <= c.rhs +. tol
         | Ge -> lhs >= c.rhs -. tol
         | Eq -> abs_float (lhs -. c.rhs) <= tol)
       p.constrs

let pp_result ppf = function
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Unbounded -> Format.fprintf ppf "unbounded"
  | Optimal { value; solution } ->
    Format.fprintf ppf "optimal %g @[<h>[%a]@]" value
      (Format.pp_print_array
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
         (fun ppf v -> Format.fprintf ppf "%g" v))
      solution
