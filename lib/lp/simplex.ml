type probe = {
  enabled : bool;
  start : string -> int;
  finish : int -> unit;
}

let null_probe = { enabled = false; start = (fun _ -> -1); finish = ignore }

type relation = Le | Ge | Eq

type sense = Maximize | Minimize

type constr = { coeffs : (int * float) list; rel : relation; rhs : float }

type problem = {
  nvars : int;
  sense : sense;
  objective : (int * float) list;
  constrs : constr list;
}

type result =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

let constr coeffs rel rhs = { coeffs; rel; rhs }

let tol = 1e-8

let validate p =
  List.iter
    (fun c ->
      List.iter
        (fun (j, _) ->
          if j < 0 || j >= p.nvars then
            invalid_arg "Simplex.solve: variable index out of range")
        c.coeffs)
    p.constrs;
  List.iter
    (fun (j, _) ->
      if j < 0 || j >= p.nvars then
        invalid_arg "Simplex.solve: objective index out of range")
    p.objective

(* ------------------------------------------------------------------ *)
(* Dense two-phase tableau simplex.  This is the original solver, kept
   verbatim as a slow-but-simple oracle: the fuzz suite checks the
   sparse revised simplex against it, and it remains available for
   debugging.  Production paths go through [Sparse]. *)

module Dense = struct
  (* Tableau layout: [rows] constraint rows, one objective row at index
     [rows].  Columns: structural variables, then slack/surplus, then
     artificial variables, then the RHS column.  We always MAXIMIZE
     internally; a Minimize problem negates the objective. *)
  type tableau = {
    a : float array array; (* (rows+1) x (cols+1) *)
    rows : int;
    cols : int; (* number of variable columns; rhs is column [cols] *)
    basis : int array; (* basic variable of each row *)
  }

  let pivot t ~row ~col =
    let a = t.a in
    let p = a.(row).(col) in
    let arow = a.(row) in
    for j = 0 to t.cols do
      arow.(j) <- arow.(j) /. p
    done;
    for i = 0 to t.rows do
      if i <> row then begin
        let f = a.(i).(col) in
        if f <> 0. then begin
          let ai = a.(i) in
          for j = 0 to t.cols do
            ai.(j) <- ai.(j) -. (f *. arow.(j))
          done
        end
      end
    done;
    t.basis.(row) <- col

  (* One simplex phase: maximize the objective stored in the last row
     (as  z - c.x = 0, i.e. row holds -c).  [allowed j] restricts entering
     columns.  Returns [`Optimal] or [`Unbounded].  Uses Dantzig's rule
     with a switch to Bland's rule after [bland_after] iterations to break
     cycles. *)
  let run_phase ?(max_iters = 50_000) t allowed =
    let obj = t.a.(t.rows) in
    let bland_after = max_iters / 2 in
    let iters = ref 0 in
    let result = ref None in
    while !result = None do
      incr iters;
      if !iters > max_iters then failwith "Simplex: iteration limit exceeded";
      let bland = !iters > bland_after in
      (* Entering column: most negative reduced cost (Dantzig), or the
         first negative one (Bland). *)
      let col = ref (-1) in
      let best = ref (-.tol) in
      (try
         for j = 0 to t.cols - 1 do
           if allowed j && obj.(j) < !best then begin
             col := j;
             if bland then raise Exit else best := obj.(j)
           end
         done
       with Exit -> ());
      if !col < 0 then result := Some `Optimal
      else begin
        (* Ratio test; Bland tie-break on the leaving basic variable. *)
        let row = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to t.rows - 1 do
          let aij = t.a.(i).(!col) in
          if aij > tol then begin
            let ratio = t.a.(i).(t.cols) /. aij in
            if
              ratio < !best_ratio -. tol
              || (ratio < !best_ratio +. tol
                  && (!row < 0 || t.basis.(i) < t.basis.(!row)))
            then begin
              best_ratio := ratio;
              row := i
            end
          end
        done;
        if !row < 0 then result := Some `Unbounded
        else pivot t ~row:!row ~col:!col
      end
    done;
    match !result with Some r -> r | None -> assert false

  let solve ?(max_iters = 50_000) p =
    let nrows = List.length p.constrs in
    validate p;
    (* Normalize rows to non-negative RHS, count extra columns. *)
    let rows =
      List.map
        (fun c ->
          if c.rhs < 0. then
            { coeffs = List.map (fun (j, v) -> (j, -.v)) c.coeffs;
              rel = (match c.rel with Le -> Ge | Ge -> Le | Eq -> Eq);
              rhs = -.c.rhs }
          else c)
        p.constrs
    in
    let n_slack = List.length (List.filter (fun c -> c.rel <> Eq) rows) in
    let n_art = List.length (List.filter (fun c -> c.rel <> Le) rows) in
    let cols = p.nvars + n_slack + n_art in
    let a = Array.make_matrix (nrows + 1) (cols + 1) 0. in
    let basis = Array.make nrows (-1) in
    let t = { a; rows = nrows; cols; basis } in
    let slack_base = p.nvars in
    let art_base = p.nvars + n_slack in
    let next_slack = ref 0 and next_art = ref 0 in
    List.iteri
      (fun i c ->
        List.iter (fun (j, v) -> a.(i).(j) <- a.(i).(j) +. v) c.coeffs;
        a.(i).(cols) <- c.rhs;
        (match c.rel with
        | Le ->
          let s = slack_base + !next_slack in
          incr next_slack;
          a.(i).(s) <- 1.;
          basis.(i) <- s
        | Ge ->
          let s = slack_base + !next_slack in
          incr next_slack;
          a.(i).(s) <- -1.;
          let r = art_base + !next_art in
          incr next_art;
          a.(i).(r) <- 1.;
          basis.(i) <- r
        | Eq ->
          let r = art_base + !next_art in
          incr next_art;
          a.(i).(r) <- 1.;
          basis.(i) <- r))
      rows;
    (* Phase 1: maximize -(sum of artificials).  The objective row holds
       the negated cost; artificial j has cost -1, so the row entry is 1
       before making it consistent with the basis. *)
    if n_art > 0 then begin
      let obj = a.(nrows) in
      for j = art_base to art_base + n_art - 1 do
        obj.(j) <- 1.
      done;
      (* Make reduced costs of the basic artificials zero. *)
      for i = 0 to nrows - 1 do
        if basis.(i) >= art_base then
          for j = 0 to cols do
            obj.(j) <- obj.(j) -. a.(i).(j)
          done
      done;
      (match run_phase ~max_iters t (fun _ -> true) with
      | `Unbounded -> assert false (* phase-1 objective is bounded by 0 *)
      | `Optimal -> ());
      ()
    end;
    (* With the maximize convention, the objective row's RHS holds the
       current value of the phase-1 objective -(sum of artificials). *)
    let phase1_value = a.(nrows).(cols) in
    if n_art > 0 && phase1_value < -.1e-6 then Infeasible
    else begin
      (* Drive any artificial still in the basis out (degenerate at 0),
         or mark its row as redundant if no pivot exists. *)
      for i = 0 to nrows - 1 do
        if basis.(i) >= art_base then begin
          let col = ref (-1) in
          for j = 0 to art_base - 1 do
            if !col < 0 && abs_float a.(i).(j) > tol then col := j
          done;
          if !col >= 0 then pivot t ~row:i ~col:!col
        end
      done;
      (* Phase 2: install the real objective. *)
      let obj = a.(nrows) in
      Array.fill obj 0 (cols + 1) 0.;
      let sign = match p.sense with Maximize -> 1. | Minimize -> -1. in
      List.iter (fun (j, v) -> obj.(j) <- obj.(j) -. (sign *. v)) p.objective;
      for i = 0 to nrows - 1 do
        let b = basis.(i) in
        if b < art_base && obj.(b) <> 0. then begin
          let f = obj.(b) in
          for j = 0 to cols do
            obj.(j) <- obj.(j) -. (f *. a.(i).(j))
          done
        end
      done;
      let allowed j = j < art_base in
      match run_phase ~max_iters t allowed with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let solution = Array.make p.nvars 0. in
        for i = 0 to nrows - 1 do
          if basis.(i) < p.nvars then solution.(basis.(i)) <- a.(i).(cols)
        done;
        Array.iteri
          (fun j v -> if v < 0. && v > -.1e-7 then solution.(j) <- 0.)
          solution;
        let value = sign *. a.(nrows).(cols) in
        Optimal { value; solution }
    end
end

(* ------------------------------------------------------------------ *)
(* Sparse revised simplex with bounded variables.

   The problem is held in standard computational form: minimize c.x
   subject to  A x + s = b,  l <= (x, s) <= u,  where each row gets one
   implicit logical (slack) column s_i whose bounds encode the relation
   (Le: [0, inf), Ge: (-inf, 0], Eq: [0, 0]).  A is stored CSC; logical
   columns are unit vectors and never stored.

   The basis is factored with [Sparse_lu] and updated with product-form
   etas; it is refactorized every [refactor_every] pivots.  Pricing is
   partial (cyclic sections) with a cheap Devex-style weight on each
   column; after a run of degenerate pivots it falls back to Bland's
   rule.  Primal infeasibility — from a cold start or from a warm basis
   whose bounds were tightened — is removed by a composite
   (artificial-free) phase 1 that minimizes total bound violation with
   the extended ratio test, so a stale warm basis degrades gracefully
   instead of failing. *)

module Sparse = struct
  type t = {
    ncols : int;
    nrows : int;
    colp : int array; (* ncols + 1 *)
    rowi : int array;
    vals : float array;
    obj : float array; (* length ncols, in the original sense *)
    minimize : bool;
    rhs : float array; (* length nrows *)
    lower : float array; (* length ncols + nrows: structurals then logicals *)
    upper : float array;
  }

  type basis = { head : int array; stat : int array }

  let st_lower = 0
  let st_upper = 1
  let st_basic = 2
  let st_free = 3

  type outcome =
    | Optimal of {
        value : float;
        solution : float array;
        basis : basis;
        iters : int;
      }
    | Infeasible
    | Unbounded
    | CycleLimit of { iters : int }

  (* ---- construction ---- *)

  type row_buf = {
    r_cols : int array;
    r_vals : float array;
    r_rel : relation;
    r_rhs : float;
  }

  type builder = {
    b_ncols : int;
    b_minimize : bool;
    b_obj : float array;
    b_lower : float array;
    b_upper : float array;
    mutable b_rows : row_buf list; (* reversed *)
    mutable b_nrows : int;
    mutable b_nnz : int;
  }

  let builder ~minimize ncols =
    if ncols < 0 then invalid_arg "Simplex.Sparse.builder: negative ncols";
    {
      b_ncols = ncols;
      b_minimize = minimize;
      b_obj = Array.make ncols 0.;
      b_lower = Array.make ncols 0.;
      b_upper = Array.make ncols infinity;
      b_rows = [];
      b_nrows = 0;
      b_nnz = 0;
    }

  let set_obj b j c =
    if j < 0 || j >= b.b_ncols then
      invalid_arg "Simplex.Sparse.set_obj: variable index out of range";
    b.b_obj.(j) <- c

  let set_bounds b j ~lower ~upper =
    if j < 0 || j >= b.b_ncols then
      invalid_arg "Simplex.Sparse.set_bounds: variable index out of range";
    b.b_lower.(j) <- lower;
    b.b_upper.(j) <- upper

  (* Sort by column and accumulate duplicates so CSC columns come out
     ordered and deterministic. *)
  let normalize_entries ncols coeffs =
    List.iter
      (fun (j, _) ->
        if j < 0 || j >= ncols then
          invalid_arg "Simplex.Sparse.add_row: variable index out of range")
      coeffs;
    let sorted =
      List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) coeffs
    in
    let rec merge = function
      | (j1, v1) :: (j2, v2) :: tl when j1 = j2 -> merge ((j1, v1 +. v2) :: tl)
      | hd :: tl -> hd :: merge tl
      | [] -> []
    in
    List.filter (fun (_, v) -> v <> 0.) (merge sorted)

  let add_row b coeffs rel rhs =
    let entries = normalize_entries b.b_ncols coeffs in
    let r_cols = Array.of_list (List.map fst entries) in
    let r_vals = Array.of_list (List.map snd entries) in
    b.b_rows <- { r_cols; r_vals; r_rel = rel; r_rhs = rhs } :: b.b_rows;
    b.b_nrows <- b.b_nrows + 1;
    b.b_nnz <- b.b_nnz + Array.length r_cols

  let finish b =
    let ncols = b.b_ncols and nrows = b.b_nrows and nnz = b.b_nnz in
    let rows = Array.of_list (List.rev b.b_rows) in
    let colp = Array.make (ncols + 1) 0 in
    Array.iter
      (fun r -> Array.iter (fun j -> colp.(j + 1) <- colp.(j + 1) + 1) r.r_cols)
      rows;
    for j = 0 to ncols - 1 do
      colp.(j + 1) <- colp.(j + 1) + colp.(j)
    done;
    let cursor = Array.sub colp 0 ncols in
    let rowi = Array.make nnz 0 and vals = Array.make nnz 0. in
    let rhs = Array.make nrows 0. in
    let lower = Array.make (ncols + nrows) 0. in
    let upper = Array.make (ncols + nrows) 0. in
    Array.blit b.b_lower 0 lower 0 ncols;
    Array.blit b.b_upper 0 upper 0 ncols;
    Array.iteri
      (fun i r ->
        rhs.(i) <- r.r_rhs;
        (match r.r_rel with
        | Le ->
          lower.(ncols + i) <- 0.;
          upper.(ncols + i) <- infinity
        | Ge ->
          lower.(ncols + i) <- neg_infinity;
          upper.(ncols + i) <- 0.
        | Eq ->
          lower.(ncols + i) <- 0.;
          upper.(ncols + i) <- 0.);
        Array.iteri
          (fun k j ->
            let c = cursor.(j) in
            rowi.(c) <- i;
            vals.(c) <- r.r_vals.(k);
            cursor.(j) <- c + 1)
          r.r_cols)
      rows;
    {
      ncols;
      nrows;
      colp;
      rowi;
      vals;
      obj = Array.copy b.b_obj;
      minimize = b.b_minimize;
      rhs;
      lower;
      upper;
    }

  (* Convert a legacy row-form problem.  Singleton rows (one variable
     after accumulating duplicates) become variable bounds instead of
     rows, so e.g. the weight-range rows of the MILP formulations stop
     consuming basis slots. *)
  let of_problem p =
    validate p;
    let b = builder ~minimize:(p.sense = Minimize) p.nvars in
    List.iter (fun (j, c) -> b.b_obj.(j) <- b.b_obj.(j) +. c) p.objective;
    List.iter
      (fun c ->
        match normalize_entries p.nvars c.coeffs with
        | [ (j, a) ] when abs_float a > 1e-12 ->
          let v = c.rhs /. a in
          let tighten_lo lo = if lo > b.b_lower.(j) then b.b_lower.(j) <- lo in
          let tighten_hi hi = if hi < b.b_upper.(j) then b.b_upper.(j) <- hi in
          (match (c.rel, a > 0.) with
          | Le, true | Ge, false -> tighten_hi v
          | Ge, true | Le, false -> tighten_lo v
          | Eq, _ ->
            tighten_lo v;
            tighten_hi v)
        | _ -> add_row b c.coeffs c.rel c.rhs)
      p.constrs;
    finish b

  (* ---- solver ---- *)

  let ftol = 1e-7 (* primal feasibility tolerance *)
  let dtol = 1e-7 (* dual (reduced-cost) tolerance *)
  let ztol = 1e-10 (* entries below this never pivot *)
  let refactor_every = 64
  let degen_switch = 200 (* degenerate pivots before Bland's rule *)

  let default_iter_limit p = 20_000 + (50 * (p.ncols + p.nrows))

  let solve_raw ?max_iters ?(bounds = []) ?basis ?(probe = null_probe) p =
    let ncols = p.ncols and nrows = p.nrows in
    let n = ncols + nrows in
    let lower = Array.copy p.lower and upper = Array.copy p.upper in
    List.iter
      (fun (j, lo, hi) ->
        if j < 0 || j >= ncols then
          invalid_arg "Simplex.Sparse.solve: bound override out of range";
        if lo > lower.(j) then lower.(j) <- lo;
        if hi < upper.(j) then upper.(j) <- hi)
      bounds;
    let max_iters =
      match max_iters with Some m -> m | None -> default_iter_limit p
    in
    let crossed = ref false in
    for j = 0 to n - 1 do
      if lower.(j) > upper.(j) +. 1e-9 then crossed := true
    done;
    if !crossed then Infeasible
    else begin
      let cost j =
        if j >= ncols then 0.
        else if p.minimize then p.obj.(j)
        else -.p.obj.(j)
      in
      let head = Array.make (max nrows 1) 0 in
      let stat = Array.make (max n 1) st_lower in
      let pos = Array.make (max n 1) (-1) in
      let default_stat j =
        if lower.(j) > neg_infinity then st_lower
        else if upper.(j) < infinity then st_upper
        else st_free
      in
      let install_slack () =
        for j = 0 to n - 1 do
          stat.(j) <- default_stat j;
          pos.(j) <- -1
        done;
        for k = 0 to nrows - 1 do
          head.(k) <- ncols + k;
          stat.(ncols + k) <- st_basic;
          pos.(ncols + k) <- k
        done
      in
      let warm_ok =
        match basis with
        | Some b when Array.length b.head = nrows && Array.length b.stat = n ->
          let ok = ref true in
          let seen = Array.make (max n 1) false in
          Array.iter
            (fun j ->
              if j < 0 || j >= n || b.stat.(j) <> st_basic || seen.(j) then
                ok := false
              else seen.(j) <- true)
            b.head;
          if !ok then begin
            let nbasic = ref 0 in
            Array.iter (fun s -> if s = st_basic then incr nbasic) b.stat;
            if !nbasic <> nrows then ok := false
          end;
          if !ok then begin
            Array.blit b.head 0 head 0 nrows;
            Array.blit b.stat 0 stat 0 n
          end;
          !ok
        | _ -> false
      in
      if not warm_ok then install_slack ()
      else begin
        (* Re-anchor nonbasic statuses against the (possibly overridden)
           bounds: a status pointing at a bound that no longer exists is
           replaced with the default resting status. *)
        for j = 0 to n - 1 do
          if stat.(j) <> st_basic then begin
            if
              (stat.(j) = st_lower && lower.(j) = neg_infinity)
              || (stat.(j) = st_upper && upper.(j) = infinity)
              || (stat.(j) = st_free
                 && (lower.(j) > neg_infinity || upper.(j) < infinity))
            then stat.(j) <- default_stat j;
            pos.(j) <- -1
          end
        done;
        for k = 0 to nrows - 1 do
          pos.(head.(k)) <- k
        done
      end;
      let build_cols () =
        Array.init nrows (fun k ->
            let j = head.(k) in
            if j >= ncols then ([| j - ncols |], [| 1. |])
            else
              let s = p.colp.(j) and e = p.colp.(j + 1) in
              (Array.sub p.rowi s (e - s), Array.sub p.vals s (e - s)))
      in
      let lu = ref None in
      let factorize () =
        let ftok = if probe.enabled then probe.start "lp:factor" else -1 in
        (match Sparse_lu.factor ~n:nrows (build_cols ()) with
        | Some f -> lu := Some f
        | None ->
          (* A singular (stale) warm basis: fall back to the always
             factorable slack basis; phase 1 restarts from there. *)
          install_slack ();
          lu := Sparse_lu.factor ~n:nrows (build_cols ()));
        if ftok >= 0 then probe.finish ftok;
        match !lu with Some f -> f | None -> assert false
      in
      let xb = Array.make (max nrows 1) 0. in
      let vwork = Array.make (max nrows 1) 0. in
      let nb_val j =
        match stat.(j) with
        | 0 -> lower.(j)
        | 1 -> upper.(j)
        | _ -> 0.
      in
      let compute_xb f =
        Array.blit p.rhs 0 vwork 0 nrows;
        for j = 0 to ncols - 1 do
          if stat.(j) <> st_basic then begin
            let v = nb_val j in
            if v <> 0. then
              for i = p.colp.(j) to p.colp.(j + 1) - 1 do
                vwork.(p.rowi.(i)) <- vwork.(p.rowi.(i)) -. (p.vals.(i) *. v)
              done
          end
        done;
        for k = 0 to nrows - 1 do
          let j = ncols + k in
          if stat.(j) <> st_basic then begin
            let v = nb_val j in
            if v <> 0. then vwork.(k) <- vwork.(k) -. v
          end
        done;
        Sparse_lu.ftran f vwork xb
      in
      let mark = Array.make (max nrows 1) 0. in
      let gwork = Array.make (max nrows 1) 0. in
      let y = Array.make (max nrows 1) 0. in
      let aq = Array.make (max nrows 1) 0. in
      let w = Array.make (max nrows 1) 0. in
      let devex = Array.make (max n 1) 1. in
      let skip = Array.make (max n 1) false in
      let col_dot j =
        if j >= ncols then y.(j - ncols)
        else begin
          let s = ref 0. in
          for i = p.colp.(j) to p.colp.(j + 1) - 1 do
            s := !s +. (p.vals.(i) *. y.(p.rowi.(i)))
          done;
          !s
        end
      in
      let f0 = factorize () in
      compute_xb f0;
      let iters = ref 0 in
      let degen = ref 0 in
      let was_phase1 = ref true in
      let sect = ref 0 in
      let sect_size = max 64 (n / 8) in
      let result = ref None in
      while !result = None do
        incr iters;
        if !iters > max_iters then
          result := Some (CycleLimit { iters = max_iters })
        else begin
          let f =
            match !lu with
            | Some f when Sparse_lu.eta_count f < refactor_every -> f
            | _ ->
              let f = factorize () in
              compute_xb f;
              f
          in
          (* Classify basic feasibility; [mark] drives both the phase-1
             gradient and the extended ratio test. *)
          let infeas = ref 0. in
          for k = 0 to nrows - 1 do
            let j = head.(k) in
            if xb.(k) < lower.(j) -. ftol then begin
              mark.(k) <- -1.;
              infeas := !infeas +. (lower.(j) -. xb.(k))
            end
            else if xb.(k) > upper.(j) +. ftol then begin
              mark.(k) <- 1.;
              infeas := !infeas +. (xb.(k) -. upper.(j))
            end
            else mark.(k) <- 0.
          done;
          let phase1 = !infeas > ftol in
          if phase1 <> !was_phase1 then begin
            Array.fill skip 0 n false;
            was_phase1 := phase1
          end;
          if phase1 then Array.blit mark 0 gwork 0 nrows
          else
            for k = 0 to nrows - 1 do
              gwork.(k) <- cost head.(k)
            done;
          Sparse_lu.btran f gwork y;
          (* Pricing: partial (cyclic sections) with Devex-style weights,
             full-scan Bland after a degenerate streak. *)
          let bland = !degen > degen_switch in
          let q = ref (-1) and dq = ref 0. and best_score = ref 0. in
          let consider j =
            if
              stat.(j) <> st_basic
              && (not skip.(j))
              && lower.(j) < upper.(j) -. 1e-12
            then begin
              let cj = if phase1 then 0. else cost j in
              let dj = cj -. col_dot j in
              let elig =
                match stat.(j) with
                | 0 -> dj < -.dtol
                | 1 -> dj > dtol
                | 3 -> abs_float dj > dtol
                | _ -> false
              in
              if elig then
                if bland then begin
                  if !q < 0 then begin
                    q := j;
                    dq := dj
                  end
                end
                else begin
                  let score = dj *. dj /. devex.(j) in
                  if score > !best_score then begin
                    best_score := score;
                    q := j;
                    dq := dj
                  end
                end
            end
          in
          if bland then begin
            let j = ref 0 in
            while !q < 0 && !j < n do
              consider !j;
              incr j
            done
          end
          else begin
            let scanned = ref 0 in
            let scanning = ref true in
            while !scanning && !scanned < n do
              consider ((!sect + !scanned) mod n);
              incr scanned;
              if !scanned mod sect_size = 0 && !q >= 0 then scanning := false
            done;
            sect := (!sect + !scanned) mod n
          end;
          if !q < 0 then begin
            if phase1 then result := Some Infeasible
            else begin
              let solution = Array.make ncols 0. in
              for j = 0 to ncols - 1 do
                let v = if stat.(j) = st_basic then xb.(pos.(j)) else nb_val j in
                let v =
                  if v < lower.(j) && v > lower.(j) -. 1e-6 then lower.(j)
                  else if v > upper.(j) && v < upper.(j) +. 1e-6 then upper.(j)
                  else v
                in
                solution.(j) <- v
              done;
              let value = ref 0. in
              for j = 0 to ncols - 1 do
                value := !value +. (p.obj.(j) *. solution.(j))
              done;
              result :=
                Some
                  (Optimal
                     {
                       value = !value;
                       solution;
                       basis =
                         {
                           head = Array.sub head 0 nrows;
                           stat = Array.sub stat 0 n;
                         };
                       iters = !iters;
                     })
            end
          end
          else begin
            let q = !q in
            let dir =
              match stat.(q) with
              | 1 -> -1.
              | 3 -> if !dq > 0. then -1. else 1.
              | _ -> 1.
            in
            Array.fill aq 0 nrows 0.;
            if q >= ncols then aq.(q - ncols) <- 1.
            else
              for i = p.colp.(q) to p.colp.(q + 1) - 1 do
                aq.(p.rowi.(i)) <- aq.(p.rowi.(i)) +. p.vals.(i)
              done;
            Sparse_lu.ftran f aq w;
            (* Extended ratio test.  Feasible basics block at either
               bound; in phase 1, an infeasible basic blocks only where
               it reaches the violated bound (the gradient flips there),
               and blocks nowhere when the step pushes it further out. *)
            let span = upper.(q) -. lower.(q) in
            let tbest = ref span and block = ref (-1) and block_up = ref false in
            for k = 0 to nrows - 1 do
              let a = w.(k) in
              if abs_float a > ztol then begin
                let delta = -.dir *. a in
                let j = head.(k) in
                let cand bnd up =
                  let t = (bnd -. xb.(k)) /. delta in
                  let t = if t < 0. then 0. else t in
                  if t < !tbest -. 1e-9 then begin
                    tbest := t;
                    block := k;
                    block_up := up
                  end
                  else if t <= !tbest +. 1e-9 && !block >= 0 then begin
                    let prefer =
                      if bland then j < head.(!block)
                      else abs_float a > abs_float w.(!block)
                    in
                    if prefer then begin
                      if t < !tbest then tbest := t;
                      block := k;
                      block_up := up
                    end
                  end
                in
                if phase1 && mark.(k) <> 0. then begin
                  if mark.(k) < 0. then begin
                    if delta > ztol then cand lower.(j) false
                  end
                  else if delta < -.ztol then cand upper.(j) true
                end
                else if delta < -.ztol && lower.(j) > neg_infinity then
                  cand lower.(j) false
                else if delta > ztol && upper.(j) < infinity then
                  cand upper.(j) true
              end
            done;
            if !tbest = infinity then begin
              if phase1 then
                (* Mathematically impossible (infeasibility is bounded
                   below); numerically conceivable — drop the column. *)
                skip.(q) <- true
              else result := Some Unbounded
            end
            else if !block < 0 then begin
              (* Entering variable reaches its opposite bound first:
                 a bound flip, no basis change. *)
              let t = !tbest in
              if t > 0. then
                for k = 0 to nrows - 1 do
                  if abs_float w.(k) > ztol then
                    xb.(k) <- xb.(k) -. (dir *. w.(k) *. t)
                done;
              stat.(q) <- (if stat.(q) = st_lower then st_upper else st_lower);
              if t <= 1e-10 then incr degen
              else begin
                degen := 0;
                Array.fill skip 0 n false
              end
            end
            else begin
              let r = !block in
              let piv = w.(r) in
              if abs_float piv < 1e-7 then begin
                (* Unstable pivot: refresh the factorization and retry,
                   or drop the column when the factors are fresh. *)
                if Sparse_lu.eta_count f > 0 then begin
                  let f' = factorize () in
                  compute_xb f'
                end
                else skip.(q) <- true
              end
              else begin
                let t = !tbest in
                let xq = nb_val q +. (dir *. t) in
                if t > 0. then
                  for k = 0 to nrows - 1 do
                    if abs_float w.(k) > ztol then
                      xb.(k) <- xb.(k) -. (dir *. w.(k) *. t)
                  done;
                let jl = head.(r) in
                stat.(jl) <- (if !block_up then st_upper else st_lower);
                pos.(jl) <- -1;
                head.(r) <- q;
                stat.(q) <- st_basic;
                pos.(q) <- r;
                xb.(r) <- xq;
                devex.(jl) <- Float.max 1. (devex.(q) /. (piv *. piv));
                Sparse_lu.push_eta f ~pos:r w;
                if t <= 1e-10 then incr degen
                else begin
                  degen := 0;
                  Array.fill skip 0 n false
                end
              end
            end
          end
        end
      done;
      match !result with Some r -> r | None -> assert false
    end

  let solve ?max_iters ?bounds ?basis ?probe p =
    match probe with
    | Some pr when pr.enabled ->
      let tok = pr.start "lp:solve" in
      let r = solve_raw ?max_iters ?bounds ?basis ~probe:pr p in
      pr.finish tok;
      r
    | _ -> solve_raw ?max_iters ?bounds ?basis p
end

(* ------------------------------------------------------------------ *)
(* Legacy entry point, now routed through the sparse solver.  The
   signature and error behaviour are unchanged: an iteration-limit hit
   still raises [Failure] here (callers that want the typed outcome use
   [Sparse.solve] directly). *)

let solve ?max_iters p =
  let sp = Sparse.of_problem p in
  match Sparse.solve ?max_iters sp with
  | Sparse.Optimal { value; solution; _ } -> Optimal { value; solution }
  | Sparse.Infeasible -> Infeasible
  | Sparse.Unbounded -> Unbounded
  | Sparse.CycleLimit _ -> failwith "Simplex: iteration limit exceeded"

let check_feasible ?(tol = 1e-6) p x =
  Array.for_all (fun v -> v >= -.tol) x
  && List.for_all
       (fun c ->
         let lhs =
           List.fold_left (fun acc (j, v) -> acc +. (v *. x.(j))) 0. c.coeffs
         in
         match c.rel with
         | Le -> lhs <= c.rhs +. tol
         | Ge -> lhs >= c.rhs -. tol
         | Eq -> abs_float (lhs -. c.rhs) <= tol)
       p.constrs

let pp_result ppf = function
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Unbounded -> Format.fprintf ppf "unbounded"
  | Optimal { value; solution } ->
    Format.fprintf ppf "optimal %g @[<h>[%a]@]" value
      (Format.pp_print_array
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
         (fun ppf v -> Format.fprintf ppf "%g" v))
      solution
