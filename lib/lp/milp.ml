type status = Optimal | Feasible

type solution = {
  status : status;
  value : float;
  point : float array;
  nodes_explored : int;
}

type result = Solution of solution | Infeasible | Unbounded | NoIncumbent

type effort = {
  lp_solves : int;
  lp_pivots : int;
  warm_solves : int;
  warm_pivots : int;
  cold_pivots : int;
  cycle_limits : int;
}

let no_effort =
  {
    lp_solves = 0;
    lp_pivots = 0;
    warm_solves = 0;
    warm_pivots = 0;
    cold_pivots = 0;
    cycle_limits = 0;
  }

(* A node is a set of branching bound overrides on the shared sparse
   problem, plus the parent's optimal basis for warm starting and the
   parent relaxation value as the best-bound key.  Branching on bounds
   (rather than appended rows) keeps every node the same shape, which is
   what makes parent-basis reuse well defined. *)
type node = {
  nbounds : (int * float * float) list;
  nbasis : Simplex.Sparse.basis option;
  bound : float;
}

let frac x = x -. Float.round x

let solve_ext ?(max_nodes = 200_000) ?(int_tol = 1e-6) ?initial ?(warm = true)
    ?(probe = Simplex.null_probe) (lp : Simplex.problem) ~integer_vars =
  let sp = Simplex.Sparse.of_problem lp in
  let maximizing = lp.Simplex.sense = Simplex.Maximize in
  let better a b = if maximizing then a > b +. 1e-9 else a < b -. 1e-9 in
  let objective_of x =
    List.fold_left (fun acc (j, c) -> acc +. (c *. x.(j))) 0. lp.Simplex.objective
  in
  let find_fractional x =
    (* Most-fractional branching. *)
    let best = ref None in
    List.iter
      (fun j ->
        let f = abs_float (frac x.(j)) in
        if f > int_tol then
          match !best with
          | Some (_, bf) when bf >= f -> ()
          | _ -> best := Some (j, f))
      integer_vars;
    !best
  in
  let incumbent = ref None in
  (* Warm start: accept a caller-provided integer-feasible point as the
     initial incumbent (ignored when infeasible or fractional). *)
  (match initial with
  | Some x
    when Simplex.check_feasible lp x
         && List.for_all (fun j -> abs_float (frac x.(j)) <= int_tol) integer_vars
    -> incumbent := Some (objective_of x, Array.copy x)
  | _ -> ());
  let nodes_explored = ref 0 in
  let lp_solves = ref 0 and lp_pivots = ref 0 in
  let warm_solves = ref 0 and warm_pivots = ref 0 and cold_pivots = ref 0 in
  let cycle_limits = ref 0 in
  let solve_node node =
    let basis = if warm then node.nbasis else None in
    incr lp_solves;
    let ntok = if probe.Simplex.enabled then probe.Simplex.start "milp:node" else -1 in
    let r = Simplex.Sparse.solve ~bounds:node.nbounds ?basis ~probe sp in
    if ntok >= 0 then probe.Simplex.finish ntok;
    let record iters =
      lp_pivots := !lp_pivots + iters;
      match basis with
      | Some _ ->
        incr warm_solves;
        warm_pivots := !warm_pivots + iters
      | None -> cold_pivots := !cold_pivots + iters
    in
    (match r with
    | Simplex.Sparse.Optimal { iters; _ } -> record iters
    | Simplex.Sparse.CycleLimit { iters } ->
      record iters;
      incr cycle_limits
    | Simplex.Sparse.Infeasible | Simplex.Sparse.Unbounded -> ());
    r
  in
  let root_unbounded = ref false in
  let root_infeasible = ref false in
  (* Worklist kept sorted so the best relaxation bound is explored first;
     pruning then closes the gap quickly. *)
  let insert queue (n : node) =
    let rec go = function
      | [] -> [ n ]
      | hd :: tl -> if better n.bound hd.bound then n :: hd :: tl else hd :: go tl
    in
    go queue
  in
  let queue =
    ref
      [
        {
          nbounds = [];
          nbasis = None;
          bound = (if maximizing then infinity else neg_infinity);
        };
      ]
  in
  let limit_hit = ref false in
  while !queue <> [] do
    match !queue with
    | [] -> ()
    | node :: rest ->
      queue := rest;
      if !nodes_explored >= max_nodes then begin
        limit_hit := true;
        queue := []
      end
      else begin
        incr nodes_explored;
        let prune_by_incumbent bound =
          match !incumbent with
          | Some (v, _) -> not (better bound v)
          | None -> false
        in
        if prune_by_incumbent node.bound then ()
        else begin
          match solve_node node with
          | Simplex.Sparse.CycleLimit _ ->
            (* Pivot limit on a degenerate subproblem: drop the node and
               degrade the status to Feasible (the subtree is not
               certified). *)
            limit_hit := true
          | Simplex.Sparse.Infeasible ->
            if node.nbounds = [] then root_infeasible := true
          | Simplex.Sparse.Unbounded ->
            (* An unbounded relaxation at the root makes the MILP
               unbounded or infeasible; we report unbounded (the TE
               formulations are always bounded, so this is a user
               error path). *)
            if node.nbounds = [] then begin
              root_unbounded := true;
              queue := []
            end
          | Simplex.Sparse.Optimal { value; solution; basis; iters = _ } ->
            if prune_by_incumbent value then ()
            else begin
              match find_fractional solution with
              | None ->
                (* Integer feasible. *)
                let accept =
                  match !incumbent with
                  | None -> true
                  | Some (v, _) -> better value v
                in
                if accept then incumbent := Some (value, Array.copy solution)
              | Some (j, _) ->
                let x = solution.(j) in
                let lo = floor x and hi = ceil x in
                let left =
                  {
                    nbounds = (j, neg_infinity, lo) :: node.nbounds;
                    nbasis = Some basis;
                    bound = value;
                  }
                and right =
                  {
                    nbounds = (j, hi, infinity) :: node.nbounds;
                    nbasis = Some basis;
                    bound = value;
                  }
                in
                queue := insert (insert !queue left) right
            end
        end
      end
  done;
  let effort =
    {
      lp_solves = !lp_solves;
      lp_pivots = !lp_pivots;
      warm_solves = !warm_solves;
      warm_pivots = !warm_pivots;
      cold_pivots = !cold_pivots;
      cycle_limits = !cycle_limits;
    }
  in
  let result =
    if !root_unbounded then Unbounded
    else if !root_infeasible && !incumbent = None then Infeasible
    else
      match !incumbent with
      | None -> if !limit_hit then NoIncumbent else Infeasible
      | Some (value, point) ->
        (* Snap near-integral entries for downstream consumers. *)
        List.iter
          (fun j ->
            if abs_float (frac point.(j)) <= 1e-5 then
              point.(j) <- Float.round point.(j))
          integer_vars;
        Solution
          {
            status = (if !limit_hit then Feasible else Optimal);
            value;
            point;
            nodes_explored = !nodes_explored;
          }
  in
  (result, effort)

let solve ?max_nodes ?int_tol ?initial ?warm ?probe lp ~integer_vars =
  fst (solve_ext ?max_nodes ?int_tol ?initial ?warm ?probe lp ~integer_vars)
