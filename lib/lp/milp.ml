type status = Optimal | Feasible

type solution = {
  status : status;
  value : float;
  point : float array;
  nodes_explored : int;
}

type result = Solution of solution | Infeasible | Unbounded | NoIncumbent

(* A node is the root problem plus a list of added bound constraints.
   Nodes are explored best-bound-first from a sorted list keyed by the
   parent relaxation value. *)
type node = { extra : Simplex.constr list; bound : float }

let frac x = x -. Float.round x

let solve ?(max_nodes = 200_000) ?(int_tol = 1e-6) ?initial (lp : Simplex.problem)
    ~integer_vars =
  let maximizing = lp.Simplex.sense = Simplex.Maximize in
  let better a b = if maximizing then a > b +. 1e-9 else a < b -. 1e-9 in
  let objective_of x =
    List.fold_left (fun acc (j, c) -> acc +. (c *. x.(j))) 0. lp.Simplex.objective
  in
  let find_fractional x =
    (* Most-fractional branching. *)
    let best = ref None in
    List.iter
      (fun j ->
        let f = abs_float (frac x.(j)) in
        if f > int_tol then
          match !best with
          | Some (_, bf) when bf >= f -> ()
          | _ -> best := Some (j, f))
      integer_vars;
    !best
  in
  let incumbent = ref None in
  (* Warm start: accept a caller-provided integer-feasible point as the
     initial incumbent (ignored when infeasible or fractional). *)
  (match initial with
  | Some x
    when Simplex.check_feasible lp x
         && List.for_all (fun j -> abs_float (frac x.(j)) <= int_tol) integer_vars
    -> incumbent := Some (objective_of x, Array.copy x)
  | _ -> ());
  let nodes_explored = ref 0 in
  let root_unbounded = ref false in
  let root_infeasible = ref false in
  (* Worklist kept sorted so the best relaxation bound is explored first;
     pruning then closes the gap quickly. *)
  let insert queue (n : node) =
    let rec go = function
      | [] -> [ n ]
      | hd :: tl ->
        if better n.bound hd.bound then n :: hd :: tl else hd :: go tl
    in
    go queue
  in
  let queue =
    ref [ { extra = []; bound = (if maximizing then infinity else neg_infinity) } ]
  in
  let limit_hit = ref false in
  while !queue <> [] do
    match !queue with
    | [] -> ()
    | node :: rest ->
      queue := rest;
      if !nodes_explored >= max_nodes then begin
        limit_hit := true;
        queue := []
      end
      else begin
        incr nodes_explored;
        let prune_by_incumbent bound =
          match !incumbent with
          | Some (v, _) -> not (better bound v)
          | None -> false
        in
        if prune_by_incumbent node.bound then ()
        else begin
          let sub = { lp with Simplex.constrs = node.extra @ lp.Simplex.constrs } in
          match
            try Simplex.solve sub
            with Failure _ ->
              (* Pivot limit on a degenerate subproblem: drop the node
                 and degrade the status to Feasible (the subtree is not
                 certified). *)
              limit_hit := true;
              Simplex.Infeasible
          with
          | Simplex.Infeasible ->
            if node.extra = [] then root_infeasible := true
          | Simplex.Unbounded ->
            (* An unbounded relaxation at the root makes the MILP
               unbounded or infeasible; we report unbounded (the TE
               formulations are always bounded, so this is a user
               error path). *)
            if node.extra = [] then begin
              root_unbounded := true;
              queue := []
            end
          | Simplex.Optimal { value; solution } ->
            if prune_by_incumbent value then ()
            else begin
              match find_fractional solution with
              | None ->
                (* Integer feasible. *)
                let accept =
                  match !incumbent with
                  | None -> true
                  | Some (v, _) -> better value v
                in
                if accept then incumbent := Some (value, Array.copy solution)
              | Some (j, _) ->
                let x = solution.(j) in
                let lo = floor x and hi = ceil x in
                let left =
                  { extra = Simplex.constr [ (j, 1.) ] Simplex.Le lo :: node.extra;
                    bound = value }
                and right =
                  { extra = Simplex.constr [ (j, 1.) ] Simplex.Ge hi :: node.extra;
                    bound = value }
                in
                queue := insert (insert !queue left) right
            end
        end
      end
  done;
  if !root_unbounded then Unbounded
  else if !root_infeasible && !incumbent = None then Infeasible
  else
    match !incumbent with
    | None -> if !limit_hit then NoIncumbent else Infeasible
    | Some (value, point) ->
      (* Snap near-integral entries for downstream consumers. *)
      List.iter
        (fun j ->
          if abs_float (frac point.(j)) <= 1e-5 then
            point.(j) <- Float.round point.(j))
        integer_vars;
      Solution
        { status = (if !limit_hit then Feasible else Optimal);
          value;
          point;
          nodes_explored = !nodes_explored }
