(* Sparse LU factorization of a simplex basis with a product-form eta
   file on top.

   The basis matrix B is given column-by-column (one column per basis
   position).  Factorization is left-looking Gaussian elimination with
   partial pivoting: column k is solved against the already-computed L
   columns in a dense workspace (the touched set is tracked so reset is
   O(nnz), but the position loop itself is O(k) — cheap at simplex basis
   sizes, and it sidesteps the symbolic DFS of Gilbert–Peierls).

   Pivots induce a row permutation:  position k owns row [prow.(k)].
   In position space, P B = L U with L unit lower triangular (entries
   stored by original row index; their eventual positions are > k) and
   U upper triangular (entries stored by position index).

   Basis changes between refactorizations are represented as eta
   matrices:  replacing position [p] with a column whose FTRAN image is
   [w] multiplies B on the right by  E = I + (w - e_p) e_p^T,  so
   B_k = B_0 E_1 ... E_k and

     FTRAN:  B_k^-1 v = E_k^-1 ... E_1^-1 (B_0^-1 v)      (etas forward)
     BTRAN:  B_k^-T g = B_0^-T (E_1^-T ... E_k^-T g)      (etas backward)

   The driver refactorizes after a bounded number of etas, so the eta
   file stays short and numerically tame. *)

type t = {
  n : int;
  prow : int array; (* position -> pivot row *)
  pinv : int array; (* row -> position *)
  lrows : int array array; (* L column entries: original row indices *)
  lvals : float array array;
  urows : int array array; (* U column entries: position indices < k *)
  uvals : float array array;
  udiag : float array;
  (* eta file, chronological order *)
  mutable eta_pos : int array;
  mutable eta_idx : int array array; (* position indices, pivot excluded *)
  mutable eta_val : float array array;
  mutable eta_piv : float array;
  mutable neta : int;
}

let eta_count t = t.neta

let pivot_tol = 1e-11

let factor ~n cols =
  let prow = Array.make n (-1) and pinv = Array.make n (-1) in
  let lrows = Array.make n [||] and lvals = Array.make n [||] in
  let urows = Array.make n [||] and uvals = Array.make n [||] in
  let udiag = Array.make n 0. in
  let x = Array.make n 0. in
  let mark = Array.make n false in
  let touched = Array.make n 0 in
  let ok = ref true in
  let k = ref 0 in
  while !ok && !k < n do
    let ntouch = ref 0 in
    let touch r =
      if not mark.(r) then begin
        mark.(r) <- true;
        touched.(!ntouch) <- r;
        incr ntouch
      end
    in
    let ri, vs = cols.(!k) in
    Array.iteri
      (fun i r ->
        x.(r) <- x.(r) +. vs.(i);
        touch r)
      ri;
    (* Forward solve against the computed L columns, in position order. *)
    for j = 0 to !k - 1 do
      let xj = x.(prow.(j)) in
      if xj <> 0. then begin
        let lr = lrows.(j) and lv = lvals.(j) in
        for i = 0 to Array.length lr - 1 do
          let r = lr.(i) in
          x.(r) <- x.(r) -. (lv.(i) *. xj);
          touch r
        done
      end
    done;
    (* Partial pivoting over the not-yet-pivoted rows. *)
    let best = ref (-1) and bestv = ref pivot_tol in
    for i = 0 to !ntouch - 1 do
      let r = touched.(i) in
      if pinv.(r) < 0 then begin
        let a = abs_float x.(r) in
        if a > !bestv then begin
          best := r;
          bestv := a
        end
      end
    done;
    if !best < 0 then ok := false
    else begin
      let piv_row = !best in
      let piv = x.(piv_row) in
      prow.(!k) <- piv_row;
      pinv.(piv_row) <- !k;
      udiag.(!k) <- piv;
      let ur = ref [] and lr = ref [] in
      for i = 0 to !ntouch - 1 do
        let r = touched.(i) in
        let v = x.(r) in
        if v <> 0. && r <> piv_row then
          if pinv.(r) >= 0 && pinv.(r) < !k then ur := (pinv.(r), v) :: !ur
          else if pinv.(r) < 0 then lr := (r, v /. piv) :: !lr
      done;
      (* Sort U entries by position so the transpose solve is ordered. *)
      let ur = List.sort (fun (a, _) (b, _) -> Int.compare a b) !ur in
      urows.(!k) <- Array.of_list (List.map fst ur);
      uvals.(!k) <- Array.of_list (List.map snd ur);
      let lr = List.sort (fun (a, _) (b, _) -> Int.compare a b) !lr in
      lrows.(!k) <- Array.of_list (List.map fst lr);
      lvals.(!k) <- Array.of_list (List.map snd lr)
    end;
    (* Reset the workspace. *)
    for i = 0 to !ntouch - 1 do
      let r = touched.(i) in
      x.(r) <- 0.;
      mark.(r) <- false
    done;
    incr k
  done;
  if not !ok then None
  else
    Some
      {
        n;
        prow;
        pinv;
        lrows;
        lvals;
        urows;
        uvals;
        udiag;
        eta_pos = Array.make 16 0;
        eta_idx = Array.make 16 [||];
        eta_val = Array.make 16 [||];
        eta_piv = Array.make 16 0.;
        neta = 0;
      }

let push_eta t ~pos w =
  if t.neta = Array.length t.eta_pos then begin
    let cap = 2 * t.neta in
    let grow mk a =
      let b = mk cap in
      Array.blit a 0 b 0 t.neta;
      b
    in
    t.eta_pos <- grow (fun c -> Array.make c 0) t.eta_pos;
    t.eta_idx <- grow (fun c -> Array.make c [||]) t.eta_idx;
    t.eta_val <- grow (fun c -> Array.make c [||]) t.eta_val;
    t.eta_piv <- grow (fun c -> Array.make c 0.) t.eta_piv
  end;
  let idx = ref [] in
  for i = t.n - 1 downto 0 do
    if i <> pos && abs_float w.(i) > 1e-12 then idx := i :: !idx
  done;
  let idx = Array.of_list !idx in
  t.eta_pos.(t.neta) <- pos;
  t.eta_idx.(t.neta) <- idx;
  t.eta_val.(t.neta) <- Array.map (fun i -> w.(i)) idx;
  t.eta_piv.(t.neta) <- w.(pos);
  t.neta <- t.neta + 1

let ftran t v out =
  let n = t.n in
  (* L solve, in place over the row-indexed input. *)
  for j = 0 to n - 1 do
    let xj = v.(t.prow.(j)) in
    if xj <> 0. then begin
      let lr = t.lrows.(j) and lv = t.lvals.(j) in
      for i = 0 to Array.length lr - 1 do
        v.(lr.(i)) <- v.(lr.(i)) -. (lv.(i) *. xj)
      done
    end
  done;
  (* U back substitution into position space. *)
  for j = n - 1 downto 0 do
    let xj = v.(t.prow.(j)) /. t.udiag.(j) in
    out.(j) <- xj;
    if xj <> 0. then begin
      let ur = t.urows.(j) and uv = t.uvals.(j) in
      for i = 0 to Array.length ur - 1 do
        let r = t.prow.(ur.(i)) in
        v.(r) <- v.(r) -. (uv.(i) *. xj)
      done
    end
  done;
  (* Eta file, forward. *)
  for e = 0 to t.neta - 1 do
    let p = t.eta_pos.(e) in
    let vp = out.(p) /. t.eta_piv.(e) in
    out.(p) <- vp;
    if vp <> 0. then begin
      let idx = t.eta_idx.(e) and ev = t.eta_val.(e) in
      for i = 0 to Array.length idx - 1 do
        out.(idx.(i)) <- out.(idx.(i)) -. (ev.(i) *. vp)
      done
    end
  done

let btran t g out =
  let n = t.n in
  (* Eta file, backward:  g_p <- (g_p - sum_{i<>p} w_i g_i) / w_p. *)
  for e = t.neta - 1 downto 0 do
    let p = t.eta_pos.(e) in
    let idx = t.eta_idx.(e) and ev = t.eta_val.(e) in
    let s = ref 0. in
    for i = 0 to Array.length idx - 1 do
      s := !s +. (ev.(i) *. g.(idx.(i)))
    done;
    g.(p) <- (g.(p) -. !s) /. t.eta_piv.(e)
  done;
  (* U^T forward solve (U^T is lower triangular in positions). *)
  for k = 0 to n - 1 do
    let ur = t.urows.(k) and uv = t.uvals.(k) in
    let s = ref 0. in
    for i = 0 to Array.length ur - 1 do
      s := !s +. (uv.(i) *. g.(ur.(i)))
    done;
    g.(k) <- (g.(k) -. !s) /. t.udiag.(k)
  done;
  (* L^T back solve; L entries at row r live at position pinv.(r) > k. *)
  for k = n - 1 downto 0 do
    let lr = t.lrows.(k) and lv = t.lvals.(k) in
    let s = ref 0. in
    for i = 0 to Array.length lr - 1 do
      s := !s +. (lv.(i) *. g.(t.pinv.(lr.(i))))
    done;
    g.(k) <- g.(k) -. !s
  done;
  (* Back to row indexing. *)
  for k = 0 to n - 1 do
    out.(t.prow.(k)) <- g.(k)
  done
