(** Mixed-integer linear programming by LP-based branch and bound.

    The integer-feasible search replaces the Gurobi MIP solver of the
    paper's artifact at small scale (exact WPO MILP, toy joint instances,
    validation tests).

    Nodes branch on variable {e bounds} over one shared sparse problem
    (built once with {!Simplex.Sparse.of_problem}); every child re-solves
    warm from its parent's optimal basis unless [~warm:false]. *)

type status = Optimal | Feasible  (** node-limit hit with an incumbent *)

type solution = {
  status : status;
  value : float;
  point : float array;
  nodes_explored : int;
}

type result = Solution of solution | Infeasible | Unbounded | NoIncumbent
(** [NoIncumbent]: the node limit was reached before any integer-feasible
    point was found. *)

type effort = {
  lp_solves : int;  (** LP relaxations solved across the tree *)
  lp_pivots : int;  (** total simplex iterations *)
  warm_solves : int;  (** relaxations started from a parent basis *)
  warm_pivots : int;
  cold_pivots : int;
  cycle_limits : int;  (** nodes dropped on {!Simplex.Sparse.CycleLimit} *)
}

val no_effort : effort

val solve :
  ?max_nodes:int ->
  ?int_tol:float ->
  ?initial:float array ->
  ?warm:bool ->
  ?probe:Simplex.probe ->
  Simplex.problem ->
  integer_vars:int list ->
  result
(** Best-first branch and bound on the listed variables.  [max_nodes]
    defaults to [200_000]; [int_tol] (default [1e-6]) is the integrality
    tolerance.  [initial] warm-starts the incumbent with a feasible
    integer point (silently ignored if it is not one), so the result is
    never worse than it even under the node limit.  [warm] (default
    [true]) controls parent-basis warm starting of child relaxations;
    disabling it never changes the result, only the pivot counts.
    [probe] (default {!Simplex.null_probe}) receives a ["milp:node"]
    span per explored node, with the node's ["lp:solve"] /
    ["lp:factor"] spans nested inside. *)

val solve_ext :
  ?max_nodes:int ->
  ?int_tol:float ->
  ?initial:float array ->
  ?warm:bool ->
  ?probe:Simplex.probe ->
  Simplex.problem ->
  integer_vars:int list ->
  result * effort
(** Like {!solve}, additionally reporting LP effort counters. *)
