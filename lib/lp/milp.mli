(** Mixed-integer linear programming by LP-based branch and bound.

    The integer-feasible search replaces the Gurobi MIP solver of the
    paper's artifact at small scale (exact WPO MILP, toy joint instances,
    validation tests). *)

type status = Optimal | Feasible  (** node-limit hit with an incumbent *)

type solution = {
  status : status;
  value : float;
  point : float array;
  nodes_explored : int;
}

type result = Solution of solution | Infeasible | Unbounded | NoIncumbent
(** [NoIncumbent]: the node limit was reached before any integer-feasible
    point was found. *)

val solve :
  ?max_nodes:int ->
  ?int_tol:float ->
  ?initial:float array ->
  Simplex.problem ->
  integer_vars:int list ->
  result
(** Best-first branch and bound on the listed variables.  [max_nodes]
    defaults to [200_000]; [int_tol] (default [1e-6]) is the integrality
    tolerance.  [initial] warm-starts the incumbent with a feasible
    integer point (silently ignored if it is not one), so the result is
    never worse than it even under the node limit. *)
