(** Sparse LU factorization of a simplex basis, plus a product-form eta
    file for cheap basis updates between refactorizations.

    Vectors live in two index spaces: {e row} space (constraint row
    indices, as stored in matrix columns) and {e position} space (basis
    slots [0..n-1]).  [ftran] maps a row-indexed right-hand side to the
    position-indexed basic solution [B^-1 v]; [btran] maps
    position-indexed basic costs to the row-indexed dual vector
    [B^-T g]. *)

type t

val factor : n:int -> (int array * float array) array -> t option
(** [factor ~n cols] factors the [n x n] basis whose column at position
    [k] is the sparse (row index, value) pairs [cols.(k)].  Duplicate
    row entries within a column are accumulated.  Returns [None] when
    the basis is numerically singular. *)

val ftran : t -> float array -> float array -> unit
(** [ftran t v out] solves [B w = v].  [v] is row-indexed and is
    destroyed; the solution [w] is written position-indexed into [out]
    (every entry of [out] is overwritten). *)

val btran : t -> float array -> float array -> unit
(** [btran t g out] solves [B^T y = g].  [g] is position-indexed and is
    destroyed; the solution [y] is written row-indexed into [out]
    (every entry of [out] is overwritten). *)

val push_eta : t -> pos:int -> float array -> unit
(** [push_eta t ~pos w] records the basis change that replaces position
    [pos] with a column whose FTRAN image (under the current [t]) is the
    position-indexed dense vector [w]. *)

val eta_count : t -> int
(** Number of etas accumulated since the last [factor]; the caller
    should refactorize once this grows past a few dozen. *)
