open Netgraph

type mode = Centrality | Coverage | Reach

type spec = { mode : mode; k : int; threshold : float }

let default_k = 16

let spec ?(mode = Centrality) ?(threshold = 0.) k =
  if k < 1 then invalid_arg "Prune.spec: k >= 1";
  if threshold < 0. then invalid_arg "Prune.spec: threshold >= 0";
  { mode; k; threshold }

let mode_name = function
  | Centrality -> "centrality"
  | Coverage -> "coverage"
  | Reach -> "reach"

let mode_of_string = function
  | "centrality" -> Ok Centrality
  | "coverage" -> Ok Coverage
  | "reach" -> Ok Reach
  | other ->
    Error
      (Printf.sprintf "unknown prune mode %S (centrality|coverage|reach)"
         other)

type t = {
  spec : spec;
  g : Digraph.t;
  ev : Engine.Evaluator.t;
  n : int;
  no_op : bool;
  mlu0 : float; (* MLU of the prepare-time loads *)
  util : float array; (* prepare-time per-edge utilization *)
  pool : int array; (* middlepoint pool, best score first *)
  nf : float array; (* scratch node-flow row *)
  u_dir : (int * int, float) Hashtbl.t; (* pair -> direct-route max util *)
  memo : (int * int, int array) Hashtbl.t; (* pair -> pruned candidates *)
}

(* A node on EVERY shortest src-dst path splits the direct ECMP flow
   exactly as the two-segment detour through it would (every shortest
   src-w path extends to a shortest src-dst path and vice versa), so
   the greedy can never strictly improve by picking it — dropping such
   nodes is result-preserving.  The tolerance only tolerates float
   accumulation noise of the throughflow sum. *)
let on_every_path nf w = nf.(w) >= 1. -. 1e-9

(* Direct-route hotness of a pair: the max prepare-time utilization over
   the edges its ECMP unit flow touches.  [neg_infinity] when the pair
   is unroutable or a self-loop. *)
let direct_hotness t ~src ~dst =
  match Hashtbl.find_opt t.u_dir (src, dst) with
  | Some u -> u
  | None ->
    let u =
      if src = dst then neg_infinity
      else
        match Engine.Evaluator.unit_load t.ev ~src ~dst with
        | exception Engine.Evaluator.Unroutable _ -> neg_infinity
        | sp ->
          Array.fold_left
            (fun acc e -> if t.util.(e) > acc then t.util.(e) else acc)
            neg_infinity sp.Engine.Evaluator.edges
    in
    Hashtbl.add t.u_dir (src, dst) u;
    u

(* Deterministic score order: strictly larger score first, node id
   breaking ties. *)
let sort_by_score scores idx =
  Array.sort
    (fun a b ->
      if scores.(a) > scores.(b) then -1
      else if scores.(a) < scores.(b) then 1
      else compare a b)
    idx

let prepare (octx : Obs.Ctx.t) spec ev demands =
  let tracer = octx.Obs.Ctx.tracer in
  let tok = Obs.Tracer.start tracer "prune:prepare" in
  let g = Engine.Evaluator.graph ev in
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let caps = Digraph.caps g in
  let loads = Engine.Evaluator.loads ev in
  let util = Array.init m (fun e -> loads.(e) /. caps.(e)) in
  let mlu0 = Engine.Evaluator.mlu_of_loads g loads in
  let no_op = spec.k >= n && spec.mode <> Reach in
  let t =
    { spec; g; ev; n; no_op; mlu0; util; pool = [||];
      nf = Array.make n 0.; u_dir = Hashtbl.create 64;
      memo = Hashtbl.create 64 }
  in
  let pool =
    if no_op then Array.init n Fun.id
    else begin
      (* Aggregate demands into distinct (src, dst) pairs, first-seen
         order, so duplicate pairs are scored once with summed size. *)
      let sizes = Hashtbl.create 64 in
      let keys = ref [] in
      Array.iter
        (fun (d : Network.demand) ->
          let key = (d.Network.src, d.Network.dst) in
          match Hashtbl.find_opt sizes key with
          | Some s -> Hashtbl.replace sizes key (s +. d.Network.size)
          | None ->
            Hashtbl.add sizes key d.Network.size;
            keys := key :: !keys)
        demands;
      let pairs =
        Array.of_list
          (List.rev_map (fun (s, d) -> (s, d, Hashtbl.find sizes (s, d)))
             !keys)
      in
      let npairs = Array.length pairs in
      (* ECMP-betweenness scores off the cached destination DAGs.  The
         coverage variant needs every pair's throughflow row; centrality
         and reach only need the running sum. *)
      let keep_rows = spec.mode = Coverage in
      let rows = if keep_rows then Array.make npairs [||] else [||] in
      let weight = Array.make npairs 0. in
      let score = Array.make n 0. in
      Array.iteri
        (fun p (src, dst, size) ->
          match Engine.Evaluator.node_flows ev ~src ~dst ~into:t.nf with
          | exception Engine.Evaluator.Unroutable _ -> ()
          | () ->
            let w_p =
              match spec.mode with
              | Coverage ->
                (* Focus the pool on bottleneck-crossing flow: weight
                   each pair by how hot its direct route runs. *)
                size *. Float.max 0. (direct_hotness t ~src ~dst)
              | Centrality | Reach -> size
            in
            weight.(p) <- w_p;
            for w = 0 to n - 1 do
              if w <> src && w <> dst then
                score.(w) <- score.(w) +. (w_p *. t.nf.(w))
            done;
            if keep_rows then rows.(p) <- Array.copy t.nf)
        pairs;
      let by_score = Array.init n Fun.id in
      sort_by_score score by_score;
      match spec.mode with
      | Reach -> by_score (* no pool restriction; order feeds the cap *)
      | Centrality -> Array.sub by_score 0 (min spec.k n)
      | Coverage ->
        (* Greedy marginal coverage: each pick is the node adding the
           most not-yet-covered demand-weighted throughflow, so nodes
           sitting on the same bottleneck paths as earlier picks are
           penalized by exactly the flow those picks already cover. *)
        let k = min spec.k n in
        let chosen = Array.make n false in
        let covered = Array.make npairs 0. in
        let picks = ref [] and npicks = ref 0 in
        (try
           while !npicks < k do
             let best = ref (-1) and best_gain = ref 0. in
             for w = 0 to n - 1 do
               if not chosen.(w) then begin
                 let gain = ref 0. in
                 for p = 0 to npairs - 1 do
                   if weight.(p) > 0. && Array.length rows.(p) = n then begin
                     let src, dst, _ = pairs.(p) in
                     if w <> src && w <> dst then
                       gain :=
                         !gain
                         +. weight.(p)
                            *. Float.min rows.(p).(w) (1. -. covered.(p))
                   end
                 done;
                 if !gain > !best_gain then begin
                   best_gain := !gain;
                   best := w
                 end
               end
             done;
             if !best < 0 then raise Exit;
             chosen.(!best) <- true;
             picks := !best :: !picks;
             incr npicks;
             for p = 0 to npairs - 1 do
               if weight.(p) > 0. && Array.length rows.(p) = n then begin
                 let src, dst, _ = pairs.(p) in
                 if !best <> src && !best <> dst then
                   covered.(p) <-
                     Float.min 1. (covered.(p) +. rows.(p).(!best))
               end
             done
           done
         with Exit -> ());
        (* Marginal gains exhausted before k picks: pad from the plain
           centrality order so the pool size is still min k n. *)
        let picks = Array.of_list (List.rev !picks) in
        let pad = ref [] in
        Array.iter
          (fun w ->
            if (not chosen.(w)) && Array.length picks + List.length !pad < k
            then pad := w :: !pad)
          by_score;
        Array.append picks (Array.of_list (List.rev !pad))
    end
  in
  let t = { t with pool } in
  Obs.Tracer.attr tracer tok (Obs.Attr.str "mode" (mode_name spec.mode));
  Obs.Tracer.attr tracer tok (Obs.Attr.int "k" spec.k);
  Obs.Tracer.attr tracer tok (Obs.Attr.int "pool" (Array.length pool));
  Obs.Tracer.finish tracer tok;
  t

let pool t = Array.copy t.pool

let no_op t = t.no_op

let candidates t ~src ~dst =
  match Hashtbl.find_opt t.memo (src, dst) with
  | Some c -> c
  | None ->
    let c =
      if t.no_op then begin
        (* The documented no-op: the full candidate list in the exact
           ascending order the unpruned scan builds. *)
        let ws = ref [] in
        for w = t.n - 1 downto 0 do
          if w <> src && w <> dst then ws := w :: !ws
        done;
        Array.of_list !ws
      end
      else if
        t.spec.mode = Reach && t.spec.threshold > 0.
        && direct_hotness t ~src ~dst < t.spec.threshold *. t.mlu0
      then [||] (* cold direct route: rerouting cannot lower the max *)
      else begin
        match Engine.Evaluator.node_flows t.ev ~src ~dst ~into:t.nf with
        | exception Engine.Evaluator.Unroutable _ -> [||]
        | () ->
          let kept = ref [] and nkept = ref 0 in
          let i = ref 0 and npool = Array.length t.pool in
          while !nkept < t.spec.k && !i < npool do
            let w = t.pool.(!i) in
            incr i;
            if
              w <> src && w <> dst
              && not (on_every_path t.nf w)
              && (t.nf.(w) > 0.
                 || Engine.Evaluator.reachable t.ev ~src:w ~dst)
            then begin
              kept := w :: !kept;
              incr nkept
            end
          done;
          Array.of_list (List.rev !kept)
      end
    in
    Hashtbl.add t.memo (src, dst) c;
    c

let scan_skippable t ~loads ~u_min =
  Engine.Evaluator.mlu_of_loads t.g loads >= u_min -. 1e-12
