(** The paper's MILP formulation of weight and joint optimization
    ([18], demonstrated on small examples in §7.1), implemented in the
    unique-shortest-path (USPR) regime.

    Variables: link weights [w_e] in [1, wmax] (continuous), per-target
    distance potentials [d_v^t], binary forwarding choices [y_{e,t}]
    (one outgoing edge per node and target), and per-demand path
    indicators [x] (continuous — the integral [y] trees force them to
    0/1).  Big-M constraints make each selected edge tight
    ([w_e + d_u = d_v]) and every other edge longer by a margin
    [epsilon], so the induced OSPF routing follows exactly the chosen
    unique shortest paths.  The objective minimizes the MLU [U] with
    [sum_d size_d x_{d,e} <= U c_e].

    USPR restricts ECMP's even splits to single paths; on instances
    whose optima do not need splitting (all the paper's gap instances)
    it coincides with the ECMP optimum, and in general it shows the
    pure effect of waypoints: demands sharing (src, dst) are forced onto
    one path unless waypoints separate them. *)

type t = {
  weights : Weights.t;
  mlu : float;
  exact : bool;  (** optimality proven (no node-limit abort) *)
  nodes_explored : int;
}

val lwo_ctx :
  Obs.Ctx.t ->
  ?wmax:float ->
  ?epsilon:float ->
  ?max_nodes:int ->
  ?warm:bool ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  t
(** Optimal USPR link weights ("ILP Weights"), context-taking entry
    point.  Demands are aggregated per pair first.  [wmax] defaults to
    [4 n]; [epsilon] (the unique-path margin) to [0.1]; [max_nodes] to
    [20_000].  [warm] (default true) toggles parent-basis warm starts
    inside the branch and bound.  The context's stats receive MILP
    node / LP effort counters; the tracer records one ["milp:lwo"] root
    span with ["milp:branch-and-bound"] plus the LP layer's
    ["milp:node"]/["lp:solve"]/["lp:factor"] spans nested inside; the
    metrics count [milp.nodes] and [milp.lp_solves].
    @raise Failure if some demand is unroutable. *)

val lwo :
  ?wmax:float ->
  ?epsilon:float ->
  ?max_nodes:int ->
  ?warm:bool ->
  ?stats:Engine.Stats.t ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  t
(** Deprecated optional-argument shim over {!lwo_ctx}. *)

type joint_result = {
  setting : t;
  waypoints : Segments.setting;
}

val joint_ctx :
  Obs.Ctx.t ->
  ?wmax:float ->
  ?epsilon:float ->
  ?max_nodes:int ->
  ?candidates:int list ->
  ?max_combos:int ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  joint_result
(** Joint optimization with up to one waypoint per demand ("ILP Joint"),
    context-taking entry point: enumerates waypoint assignments (at most
    [max_combos], default 512) and solves the USPR weight MILP on each
    induced segment list.  The enumeration is recorded as one
    ["milp:joint"] span (with an ["assignments"] attribute) containing
    one ["milp:lwo"] span per assignment; the metrics count
    [milp.joint_assignments].
    @raise Invalid_argument when the assignment space exceeds
    [max_combos] — this is an exact reference for tiny instances only. *)

val joint :
  ?wmax:float ->
  ?epsilon:float ->
  ?max_nodes:int ->
  ?candidates:int list ->
  ?max_combos:int ->
  ?stats:Engine.Stats.t ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  joint_result
(** Deprecated optional-argument shim over {!joint_ctx}. *)
