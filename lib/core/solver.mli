(** A common face for the TE solvers, for table-driven dispatch.

    Every optimizer in this library ultimately maps (graph, demands) to
    a weight setting and/or a waypoint setting with an MLU.  [S] fixes
    that shape behind the {!Obs.Ctx.t} run-context API so front ends
    (te-tool, benches, sweeps) can hold solvers in one table of
    first-class modules and drive them uniformly — one place to build
    the context, time the phases, export the trace.

    Solver-specific knobs (budgets, restarts, orders) are captured when
    the module is packed, not at solve time: a packed solver is a fully
    configured algorithm.

    The {{!registry}registry} maps solver names to builders over one
    shared {!config}, so front ends resolve ["--alg NAME"] through a
    single table ({!register} / {!find} / {!names}) instead of
    per-algorithm match arms. *)

type result = {
  solver : string;  (** the packed solver's [name] *)
  mlu : float;  (** MLU of the returned setting *)
  initial_mlu : float;
      (** MLU of the solver's starting point (inverse-capacity weights
          for the weight searches, the direct routing for waypoint
          optimization); [nan] when the notion does not apply *)
  evals : int;  (** engine evaluations reported by the solver; 0 if n/a *)
  weights : int array option;  (** integer weight setting, when produced *)
  weights2 : int array option;
      (** the second weight system, when the solver produces one (OMW) *)
  splits : float array option;
      (** per-demand fraction routed on the first weight system,
          parallel to the solver's aggregated (and, for waypointed
          variants, segment-expanded) demand list; produced by the OMW
          family *)
  waypoints : Segments.setting option;  (** waypoint setting, when produced *)
  stages : (string * float) list;
      (** per-stage MLU trail, ending at the returned setting *)
}

module type S = sig
  val name : string

  val solve :
    Obs.Ctx.t -> Netgraph.Digraph.t -> Network.demand array -> result
end

type t = (module S)

val name : t -> string
val solve : t -> Obs.Ctx.t -> Netgraph.Digraph.t -> Network.demand array -> result

val heur_ospf : ?restarts:int -> ?params:Local_search.params -> unit -> t
(** {!Local_search.optimize_ctx} packed as ["lwo"].  [initial_mlu] is
    the inverse-capacity MLU (the front ends' historical baseline). *)

val greedy_wpo :
  ?order:Greedy_wpo.order ->
  ?passes:int ->
  ?prune:Prune.spec ->
  ?weights:(Netgraph.Digraph.t -> Weights.t) ->
  unit ->
  t
(** {!Greedy_wpo.optimize_ctx} packed as ["wpo"]; [weights] (default
    {!Weights.inverse_capacity}) fixes the weight setting the waypoints
    are chosen under, and [prune] (default off) enables the {!Prune}
    candidate preprocessing. *)

val joint_heur :
  ?restarts:int ->
  ?ls_params:Local_search.params ->
  ?full_pipeline:bool ->
  ?prune:Prune.spec ->
  unit ->
  t
(** {!Joint.optimize_ctx} packed as ["joint"]; [stages] is the
    pipeline's stage trail and [prune] forwards to the greedy waypoint
    stage. *)

val gradient : ?params:Grad_wo.params -> unit -> t
(** {!Grad_wo.optimize_ctx} packed as ["grad"]: gradient descent on
    real-valued weights against the LP necessary capacities, rounded
    back to the integer grid.  [stages] leads with the LP lower bound
    the descent tracks (["LP-bound"]), then the returned setting. *)

val omw :
  ?restarts:int ->
  ?ls_params:Local_search.params ->
  ?params:Omw.params ->
  unit ->
  t
(** {!Omw.optimize_ctx} packed as ["omw"]: HeurOSPF provides the first
    weight system, then the one-more-weight descent splits traffic
    between it and an optimized second system.  Never worse than the
    HeurOSPF stage by construction. *)

val gradient_wpo :
  ?params:Grad_wo.params ->
  ?order:Greedy_wpo.order ->
  ?passes:int ->
  ?prune:Prune.spec ->
  unit ->
  t
(** ["grad+wpo"]: greedy waypoints chosen under the gradient-optimized
    weight setting. *)

val omw_wpo :
  ?restarts:int ->
  ?ls_params:Local_search.params ->
  ?params:Omw.params ->
  ?order:Greedy_wpo.order ->
  ?passes:int ->
  ?prune:Prune.spec ->
  unit ->
  t
(** ["omw+wpo"]: HeurOSPF weights, greedy waypoints under them, then
    the one-more-weight descent on the segment-expanded demand list, so
    each segment's traffic may split across the two weight systems. *)

(** {1:registry Registry} *)

type config = {
  seed : int;  (** forwarded to the stochastic stages (default 1) *)
  evals : int;  (** local-search evaluation budget (default 1500) *)
  restarts : int;
      (** parallel reseeded walks for the local-search stages
          (default 1) *)
  passes : int;  (** greedy waypoint passes (default 1) *)
  full_pipeline : bool;  (** joint: run Algorithm 2 steps 3–4 (default false) *)
  prune : Prune.spec option;  (** waypoint candidate pruning (default off) *)
  weights : Netgraph.Digraph.t -> Weights.t;
      (** base weight setting for pure waypoint optimization
          (default {!Weights.inverse_capacity}) *)
}
(** The knobs every front end already exposes, in one record: a
    {!builder} turns it into a fully configured solver, applying only
    the fields that algorithm uses. *)

val default_config : config

type builder = config -> t

val register : ?doc:string -> string -> builder -> unit
(** Adds (or replaces) a named builder.  The built-in solvers are
    registered when this module is linked. *)

val find : string -> builder option

val names : unit -> (string * string) list
(** [(name, doc)] pairs in registration order. *)
