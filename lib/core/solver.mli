(** A common face for the TE solvers, for table-driven dispatch.

    Every optimizer in this library ultimately maps (graph, demands) to
    a weight setting and/or a waypoint setting with an MLU.  [S] fixes
    that shape behind the {!Obs.Ctx.t} run-context API so front ends
    (te-tool, benches, sweeps) can hold solvers in one table of
    first-class modules and drive them uniformly — one place to build
    the context, time the phases, export the trace.

    Solver-specific knobs (budgets, restarts, orders) are captured when
    the module is packed, not at solve time: a packed solver is a fully
    configured algorithm. *)

type result = {
  solver : string;  (** the packed solver's [name] *)
  mlu : float;  (** MLU of the returned setting *)
  initial_mlu : float;
      (** MLU of the solver's starting point (inverse-capacity weights
          for the weight searches, the direct routing for waypoint
          optimization); [nan] when the notion does not apply *)
  evals : int;  (** engine evaluations reported by the solver; 0 if n/a *)
  weights : int array option;  (** integer weight setting, when produced *)
  waypoints : Segments.setting option;  (** waypoint setting, when produced *)
  stages : (string * float) list;
      (** per-stage MLU trail, ending at the returned setting *)
}

module type S = sig
  val name : string

  val solve :
    Obs.Ctx.t -> Netgraph.Digraph.t -> Network.demand array -> result
end

type t = (module S)

val name : t -> string
val solve : t -> Obs.Ctx.t -> Netgraph.Digraph.t -> Network.demand array -> result

val heur_ospf : ?restarts:int -> ?params:Local_search.params -> unit -> t
(** {!Local_search.optimize_ctx} packed as ["lwo"].  [initial_mlu] is
    the inverse-capacity MLU (the front ends' historical baseline). *)

val greedy_wpo :
  ?order:Greedy_wpo.order ->
  ?passes:int ->
  ?prune:Prune.spec ->
  ?weights:(Netgraph.Digraph.t -> Weights.t) ->
  unit ->
  t
(** {!Greedy_wpo.optimize_ctx} packed as ["wpo"]; [weights] (default
    {!Weights.inverse_capacity}) fixes the weight setting the waypoints
    are chosen under, and [prune] (default off) enables the {!Prune}
    candidate preprocessing. *)

val joint_heur :
  ?restarts:int ->
  ?ls_params:Local_search.params ->
  ?full_pipeline:bool ->
  ?prune:Prune.spec ->
  unit ->
  t
(** {!Joint.optimize_ctx} packed as ["joint"]; [stages] is the
    pipeline's stage trail and [prune] forwards to the greedy waypoint
    stage. *)
