(** Algorithm 3 (GreedyWPO): greedy single-waypoint selection under a
    fixed weight setting.

    Demands are visited in descending size order (the paper's order; the
    alternatives are exposed for the ablation bench).  For each demand
    every node is tried as its single waypoint, and the assignment is
    kept when it strictly improves the running MLU. *)

type order = Desc | Asc | Random of int

type result = {
  waypoints : int option array;  (** parallel to the demand array *)
  mlu : float;  (** MLU of the final assignment *)
  initial_mlu : float;  (** MLU with no waypoints, for the gap *)
}

val optimize_ctx :
  Obs.Ctx.t ->
  ?order:order ->
  ?passes:int ->
  ?prune:Prune.spec ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  result
(** The context-taking entry point.  The context's tracer records one
    ["wpo:pass"] span per pass with a ["wpo:scan"] span per candidate
    scan nested inside (all recorded by the orchestrating domain, so
    the trace is identical for every pool size).
    [passes = 1] (default) is Algorithm 3 verbatim; additional passes
    revisit every demand and may reassign or drop its waypoint, which
    repairs most of the sequential greedy's order-dependence.  All unit
    flows come from one shared {!Engine.Evaluator}, whose cache counters
    land in [stats].

    [pool] parallelizes the per-demand candidate scan: the waypoint grid
    is partitioned into fixed-size chunks, each worker scores its chunk
    on a private {!Engine.Evaluator.copy} clone and load buffer, and the
    per-chunk argmins reduce in chunk-index order — the result is
    bit-identical for every pool size (asserted by the test suite).

    [prune] (default off: all results byte-identical to previous
    releases) runs the {!Prune} preprocessing pass once up front and
    scans only each demand's pruned candidate list; scans that the
    exact residual-MLU bound proves fruitless are skipped entirely.
    The effectiveness lands in the [candidates_pruned] /
    [candidates_kept] stats counters, and candidate lists are built on
    the orchestrating domain, so pruned runs stay bit-identical across
    pool sizes too.
    @raise Ecmp.Unroutable if a demand itself is unroutable (candidate
    waypoints that would make a segment unroutable are skipped). *)

type multi_result = {
  setting : Segments.setting;
  mlu : float;
  round_mlu : float list;  (** MLU after each greedy round *)
}

val optimize_multi_ctx :
  Obs.Ctx.t ->
  ?order:order ->
  ?prune:Prune.spec ->
  rounds:int ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  multi_result
(** The paper's open question "how many waypoints suffice?" (§8): runs
    the greedy [rounds] times; round [k] may append one more waypoint to
    each demand's list (so W <= rounds), greedily re-splitting the last
    segment.  [rounds = 1] coincides with {!optimize_ctx}.  The tracer
    records one ["wpo:round"] span per round.  The context's pool and
    [prune] behave as in {!optimize_ctx}; later rounds look up pruned
    candidates for the current segment anchor. *)
