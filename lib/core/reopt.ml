open Netgraph

type churn = { weight_changes : int; waypoint_changes : int }

let churn_between ~deployed_weights ~deployed_waypoints weights waypoints =
  if Array.length deployed_weights <> Array.length weights then
    invalid_arg "Reopt.churn_between: weight vectors differ in length";
  if Array.length deployed_waypoints <> Array.length waypoints then
    invalid_arg "Reopt.churn_between: waypoint settings differ in length";
  let weight_changes = ref 0 in
  Array.iteri
    (fun e w -> if w <> deployed_weights.(e) then incr weight_changes)
    weights;
  let waypoint_changes = ref 0 in
  Array.iteri
    (fun i wps -> if wps <> deployed_waypoints.(i) then incr waypoint_changes)
    waypoints;
  { weight_changes = !weight_changes; waypoint_changes = !waypoint_changes }

type result = {
  weights : int array;
  waypoints : Segments.setting;
  mlu : float;
  churn : churn;
}

let reoptimize_ctx (ctx : Obs.Ctx.t) ?(ls_params = Local_search.default_params)
    ?max_weight_changes ?(frozen_edges = []) ?ev ?prune
    ?(repick_waypoints = true) ~deployed_weights ~deployed_waypoints g demands =
  let stats = ctx.Obs.Ctx.stats in
  let m = Digraph.edge_count g in
  if Array.length deployed_weights <> m then
    invalid_arg "Reopt.reoptimize: deployed weight length mismatch";
  let frozen = Hashtbl.create 4 in
  List.iter
    (fun e ->
      if e < 0 || e >= m then
        invalid_arg "Reopt.reoptimize: frozen edge outside the graph";
      Hashtbl.replace frozen e ())
    frozen_edges;
  let budget =
    match max_weight_changes with Some b -> b | None -> max 1 (m / 10)
  in
  let st = Random.State.make [| ls_params.Local_search.seed; 0x4e09 |] in
  let wmax = ls_params.Local_search.wmax in
  (* One evaluator carries the whole budgeted search: the deployed
     waypoints are fixed, so the commodity list (one per segment) never
     changes, and every candidate weight is probed as an incremental
     single-weight move against it.  A caller-supplied warm evaluator
     (the serving loop keeps one alive across updates) is re-synced
     incrementally instead of rebuilt. *)
  let ev =
    match ev with
    | Some ev ->
      if Engine.Evaluator.graph ev != g then
        invalid_arg "Reopt.reoptimize: warm evaluator built on another graph";
      Engine.Evaluator.set_weights ev (Weights.of_ints deployed_weights);
      Engine.Evaluator.commit ev;
      ev
    | None ->
      Engine.Evaluator.create ~stats ~probe:(Obs.Ctx.probe ctx) g
        (Weights.of_ints deployed_weights)
  in
  (* Failed links are frozen at infinite weight: absent from every DAG,
     never a move candidate, committed so no undo restores them. *)
  Hashtbl.iter (fun e () -> Engine.Evaluator.disable_edge ev ~edge:e) frozen;
  Engine.Evaluator.commit ev;
  Engine.Evaluator.set_commodities ev
    (Network.to_commodities (Segments.expand demands deployed_waypoints));
  let current = Array.copy deployed_weights in
  (* Probe results land in one reused metrics cell — the budgeted probe
     loop below allocates nothing per candidate. *)
  let cell = { Engine.Evaluator.mlu = 0.; phi = 0. } in
  let eval_mlu () =
    Engine.Evaluator.evaluate_into ev cell;
    cell.Engine.Evaluator.mlu
  in
  let caps = Digraph.caps g in
  let cur_mlu = ref (eval_mlu ()) in
  let deployed_mlu = !cur_mlu in
  let changed = Hashtbl.create 8 in
  let changes () = Hashtbl.length changed in
  let best_w = ref (Array.copy current) and best_mlu = ref !cur_mlu in
  let evals = ref 0 in
  (* Budgeted local search: a move on edge e is admissible if it keeps
     |{e : w_e <> deployed}| within the budget (reverting frees it). *)
  Obs.Ctx.span ctx "reopt:weights" (fun () ->
  while !evals < ls_params.Local_search.max_evals && not (Obs.Ctx.expired ctx)
  do
    let e =
      if Random.State.float st 1. < 0.6 then begin
        (* Most utilized edge under the current weights — the engine's
           load vector is already up to date for them. *)
        let loads = Engine.Evaluator.loads ev in
        let arg = ref 0 and best = ref neg_infinity in
        for e = 0 to m - 1 do
          let u = loads.(e) /. caps.(e) in
          if u > !best && not (Hashtbl.mem frozen e) then begin
            best := u;
            arg := e
          end
        done;
        !arg
      end
      else Random.State.int st m
    in
    let admissible =
      (not (Hashtbl.mem frozen e))
      && (Hashtbl.mem changed e || changes () < budget)
    in
    if admissible then begin
      let old = current.(e) in
      let candidates =
        List.sort_uniq compare
          (List.filter
             (fun w -> w >= 1 && w <= wmax && w <> old)
             [ old + 1; old + 2; wmax; old - 1; 1; deployed_weights.(e);
               1 + Random.State.int st wmax ])
      in
      let best_cand = ref None in
      List.iter
        (fun wv ->
          if !evals < ls_params.Local_search.max_evals then begin
            incr evals;
            Engine.Evaluator.set_weight ev ~edge:e (float_of_int wv);
            let mlu = eval_mlu () in
            Engine.Evaluator.undo ev;
            match !best_cand with
            | Some (bm, _) when bm <= mlu -> ()
            | _ -> best_cand := Some (mlu, wv)
          end)
        candidates;
      match !best_cand with
      | Some (mlu, wv) when mlu < !cur_mlu -. 1e-12 ->
        current.(e) <- wv;
        Engine.Evaluator.set_weight ev ~edge:e (float_of_int wv);
        Engine.Evaluator.commit ev;
        cur_mlu := mlu;
        if wv = deployed_weights.(e) then Hashtbl.remove changed e
        else Hashtbl.replace changed e ();
        if mlu < !best_mlu -. 1e-12 then begin
          best_mlu := mlu;
          best_w := Array.copy current
        end
      | _ -> ()
    end
    else incr evals
  done);
  (* Waypoint step: re-pick greedily under the new weights (not
     budgeted; segment-stack changes are local to ingresses).  Skipped
     when the caller pins the deployed waypoints ([repick_waypoints] is
     false — e.g. a latency-bound serving loop on a pure weight tick). *)
  let greedy_candidate =
    if not repick_waypoints then []
    else begin
      let best_w_float = Weights.of_ints !best_w in
      Hashtbl.iter (fun e () -> best_w_float.(e) <- infinity) frozen;
      let wpo =
        Obs.Ctx.span ctx "reopt:waypoints" (fun () ->
            Greedy_wpo.optimize_ctx ctx ?prune g best_w_float demands)
      in
      [ (!best_w, Segments.of_single wpo.Greedy_wpo.waypoints,
         wpo.Greedy_wpo.mlu) ]
    end
  in
  (* Candidates, cheapest-churn first so ties keep the network stable. *)
  let candidates =
    (Array.copy deployed_weights, deployed_waypoints, deployed_mlu)
    :: (!best_w, deployed_waypoints, !best_mlu)
    :: greedy_candidate
  in
  let weights, waypoints, mlu =
    List.fold_left
      (fun (bw, bs, bm) (w, s, v) -> if v < bm -. 1e-12 then (w, s, v) else (bw, bs, bm))
      (List.hd candidates) (List.tl candidates)
  in
  { weights; waypoints; mlu;
    churn = churn_between ~deployed_weights ~deployed_waypoints weights waypoints }

let reoptimize ?stats ?ls_params ?max_weight_changes ?frozen_edges
    ~deployed_weights ~deployed_waypoints g demands =
  reoptimize_ctx (Obs.Ctx.make ?stats ()) ?ls_params ?max_weight_changes
    ?frozen_edges ~deployed_weights ~deployed_waypoints g demands
