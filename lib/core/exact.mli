(** Brute-force exact solvers for tiny instances.

    These enumerate the discrete search spaces directly and exist to
    (a) validate the heuristics and the MILP in tests and (b) provide
    the "optimal" reference on the paper's small worked examples.  All
    of them guard their search-space size. *)

exception Too_large of string

val lwo :
  ?weight_domain:int list ->
  ?max_settings:int ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  int array * float
(** Optimal integer weight setting over [weight_domain]^E (default
    domain [[1; 2; 3]]; default cap 2_000_000 settings).
    @raise Too_large when the space exceeds the cap. *)

val wpo :
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  int option array * float
(** Optimal single-waypoint-per-demand setting under fixed weights, by
    branch and bound over demands (loads are additive, so the MLU of a
    partial assignment lower-bounds every completion). *)

val joint :
  ?weight_domain:int list ->
  ?max_settings:int ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  int array * int option array * float
(** Optimal (weights, single waypoints) over the Cartesian product of
    the weight grid and waypoint assignments — the paper's Joint
    (§2.1) restricted to W = 1 and integer weights.
    @raise Too_large when the weight space exceeds the cap. *)
