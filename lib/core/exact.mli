(** Brute-force exact solvers for tiny instances.

    These enumerate the discrete search spaces directly and exist to
    (a) validate the heuristics and the MILP in tests and (b) provide
    the "optimal" reference on the paper's small worked examples.  All
    of them guard their search-space size. *)

exception Too_large of string

type enum_meta = {
  space : float;
      (** the full space size [|domain|^m], computed in floating point
          so huge exponents cannot overflow past the cap check *)
  visited : int;  (** settings actually enumerated *)
  truncated : bool;
      (** true when [visited < space]: the reported optimum covers only
          a prefix of the space and must not be read as exact *)
}
(** Enumeration coverage report.  Callers comparing against a MILP must
    check [truncated] — a capped enumeration is a bound, not an
    optimum. *)

val lwo :
  ?weight_domain:int list ->
  ?max_settings:int ->
  ?allow_truncate:bool ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  (int array * float) * enum_meta
(** Optimal integer weight setting over [weight_domain]^E (default
    domain [[1; 2; 3]]; default cap 2_000_000 settings).  With
    [allow_truncate] (default [false]) an over-cap space is enumerated
    up to the cap and flagged in the metadata instead of raising.
    @raise Too_large when the space exceeds the cap and [allow_truncate]
    is off. *)

val wpo :
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  int option array * float
(** Optimal single-waypoint-per-demand setting under fixed weights, by
    branch and bound over demands (loads are additive, so the MLU of a
    partial assignment lower-bounds every completion). *)

val joint :
  ?weight_domain:int list ->
  ?max_settings:int ->
  ?allow_truncate:bool ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  (int array * int option array * float) * enum_meta
(** Optimal (weights, single waypoints) over the Cartesian product of
    the weight grid and waypoint assignments — the paper's Joint
    (§2.1) restricted to W = 1 and integer weights.  [allow_truncate]
    as in {!lwo}.
    @raise Too_large when the weight space exceeds the cap and
    [allow_truncate] is off. *)

(** {2 Context-taking entry points}

    Same computations under an {!Obs.Ctx.t}: each records one root span
    (["exact:lwo"], ["exact:wpo"], ["exact:joint"]) and the enumerators
    count visited settings in the [exact.settings] metric. *)

val lwo_ctx :
  Obs.Ctx.t ->
  ?weight_domain:int list ->
  ?max_settings:int ->
  ?allow_truncate:bool ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  (int array * float) * enum_meta

val wpo_ctx :
  Obs.Ctx.t ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  int option array * float

val joint_ctx :
  Obs.Ctx.t ->
  ?weight_domain:int list ->
  ?max_settings:int ->
  ?allow_truncate:bool ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  (int array * int option array * float) * enum_meta
