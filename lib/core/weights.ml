open Netgraph

type t = float array

let unit g = Array.make (Digraph.edge_count g) 1.

let inverse_capacity g =
  let max_cap = Digraph.max_capacity g in
  Array.init (Digraph.edge_count g) (fun e -> max_cap /. Digraph.cap g e)

let random ~seed ~wmax g =
  if wmax < 1 then invalid_arg "Weights.random: wmax < 1";
  let st = Random.State.make [| seed; 0x7e |] in
  Array.init (Digraph.edge_count g) (fun _ ->
      float_of_int (1 + Random.State.int st wmax))

let of_ints ints = Array.map float_of_int ints

let round_to_range ~wmax w =
  if wmax < 1 then invalid_arg "Weights.round_to_range: wmax < 1";
  let max_w = Array.fold_left max 0. w in
  Array.map
    (fun x ->
      let scaled = x /. max_w *. float_of_int wmax in
      let r = int_of_float (Float.round scaled) in
      max 1 (min wmax r))
    w
