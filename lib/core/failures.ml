open Netgraph

type outcome = { edge : int; mlu : float; disconnected : int }

let without_edges g removed =
  let removed_set = Hashtbl.create 4 in
  List.iter (fun e -> Hashtbl.replace removed_set e ()) removed;
  let b = Digraph.Builder.create () in
  for v = 0 to Digraph.node_count g - 1 do
    ignore (Digraph.Builder.add_named_node b (Digraph.node_name g v))
  done;
  let mapping = ref [] in
  for e = 0 to Digraph.edge_count g - 1 do
    if not (Hashtbl.mem removed_set e) then begin
      ignore
        (Digraph.Builder.add_edge b ~src:(Digraph.src g e) ~dst:(Digraph.dst g e)
           ~cap:(Digraph.cap g e));
      mapping := e :: !mapping
    end
  done;
  (Digraph.Builder.build b, Array.of_list (List.rev !mapping))

let twin g e =
  let u = Digraph.src g e and v = Digraph.dst g e in
  let found = ref None in
  Array.iter
    (fun e' ->
      if !found = None && e' <> e && Digraph.dst g e' = u
         && Digraph.cap g e' = Digraph.cap g e
      then found := Some e')
    (Digraph.out_edges g v);
  !found

let evaluate_failure g weights demands waypoints removed edge_id =
  let g', mapping = without_edges g removed in
  let w' = Array.map (fun old -> weights.(old)) mapping in
  let ctx = Ecmp.make g' w' in
  let loads = Array.make (Digraph.edge_count g') 0. in
  let disconnected = ref 0 in
  Array.iteri
    (fun i (d : Network.demand) ->
      let wps = match waypoints with Some s -> s.(i) | None -> [] in
      let segs = Segments.segment_endpoints d wps in
      match
        List.map (fun (a, b) -> Ecmp.unit_load ctx ~src:a ~dst:b) segs
      with
      | exception Ecmp.Unroutable _ -> incr disconnected
      | units ->
        List.iter (fun u -> Ecmp.add_sparse loads u ~scale:d.Network.size) units)
    demands;
  let mlu = if !disconnected > 0 then nan else Ecmp.mlu g' loads in
  { edge = edge_id; mlu; disconnected = !disconnected }

let single_failures ?(fail_pairs = true) ?waypoints g weights demands =
  let m = Digraph.edge_count g in
  let seen = Array.make m false in
  let out = ref [] in
  for e = 0 to m - 1 do
    if not seen.(e) then begin
      seen.(e) <- true;
      let removed =
        if fail_pairs then
          match twin g e with
          | Some e' when not seen.(e') ->
            seen.(e') <- true;
            [ e; e' ]
          | _ -> [ e ]
        else [ e ]
      in
      out := evaluate_failure g weights demands waypoints removed e :: !out
    end
  done;
  List.rev !out

let worse a b =
  (* Disconnections dominate; then larger MLU. *)
  match (a.disconnected > 0, b.disconnected > 0) with
  | true, false -> a
  | false, true -> b
  | true, true -> if a.disconnected >= b.disconnected then a else b
  | false, false -> if a.mlu >= b.mlu then a else b

let worst_case ?fail_pairs ?waypoints g weights demands =
  match single_failures ?fail_pairs ?waypoints g weights demands with
  | [] -> invalid_arg "Failures.worst_case: graph has no edges"
  | first :: rest -> List.fold_left worse first rest
