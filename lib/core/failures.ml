open Netgraph

type outcome = { edge : int; mlu : float; disconnected : int }

let without_edges g removed =
  let removed_set = Hashtbl.create 4 in
  List.iter (fun e -> Hashtbl.replace removed_set e ()) removed;
  let b = Digraph.Builder.create () in
  for v = 0 to Digraph.node_count g - 1 do
    ignore (Digraph.Builder.add_named_node b (Digraph.node_name g v))
  done;
  let mapping = ref [] in
  for e = 0 to Digraph.edge_count g - 1 do
    if not (Hashtbl.mem removed_set e) then begin
      ignore
        (Digraph.Builder.add_edge b ~src:(Digraph.src g e) ~dst:(Digraph.dst g e)
           ~cap:(Digraph.cap g e));
      mapping := e :: !mapping
    end
  done;
  (Digraph.Builder.build b, Array.of_list (List.rev !mapping))

let twin g e =
  let u = Digraph.src g e and v = Digraph.dst g e in
  let found = ref None in
  Array.iter
    (fun e' ->
      if !found = None && e' <> e && Digraph.dst g e' = u
         && Digraph.cap g e' = Digraph.cap g e
      then found := Some e')
    (Digraph.out_edges g v);
  !found

(* One sweep case per link (per unordered twin pair with [fail_pairs]),
   keyed by the lowest member edge id.  Shared by both evaluation paths
   so they enumerate identical scenarios in identical order. *)
let failure_groups ?(fail_pairs = true) g =
  let m = Digraph.edge_count g in
  let seen = Array.make m false in
  let out = ref [] in
  for e = 0 to m - 1 do
    if not seen.(e) then begin
      seen.(e) <- true;
      let removed =
        if fail_pairs then
          match twin g e with
          | Some e' when not seen.(e') ->
            seen.(e') <- true;
            [ e; e' ]
          | _ -> [ e ]
        else [ e ]
      in
      out := (e, removed) :: !out
    end
  done;
  List.rev !out

(* The historical graph-rebuild path, kept as the test oracle for the
   engine path below: build the surviving subgraph, re-derive the full
   ECMP state from scratch, route every demand's segments. *)
let evaluate_failure g weights demands waypoints removed edge_id =
  let g', mapping = without_edges g removed in
  let w' = Array.map (fun old -> weights.(old)) mapping in
  let ctx = Ecmp.make g' w' in
  let loads = Array.make (Digraph.edge_count g') 0. in
  let disconnected = ref 0 in
  Array.iteri
    (fun i (d : Network.demand) ->
      let wps = match waypoints with Some s -> s.(i) | None -> [] in
      let segs = Segments.segment_endpoints d wps in
      match
        List.map (fun (a, b) -> Ecmp.unit_load ctx ~src:a ~dst:b) segs
      with
      | exception Ecmp.Unroutable _ -> incr disconnected
      | units ->
        List.iter (fun u -> Ecmp.add_sparse loads u ~scale:d.Network.size) units)
    demands;
  let mlu = if !disconnected > 0 then nan else Ecmp.mlu g' loads in
  { edge = edge_id; mlu; disconnected = !disconnected }

let rebuild_outcome ?waypoints g weights demands ~removed =
  let o = evaluate_failure g weights demands waypoints removed (-1) in
  (o.mlu, o.disconnected)

let single_failures_rebuild ?fail_pairs ?waypoints g weights demands =
  List.map
    (fun (e, removed) -> evaluate_failure g weights demands waypoints removed e)
    (failure_groups ?fail_pairs g)

(* Engine path: ONE evaluator carries the whole sweep.  A failed link is
   a [disable_edge] (infinite weight) probed against the persistent
   state — only the destinations whose DAGs the failed link touched are
   repaired, every other destination keeps its DAG, unit flows and
   cached load contribution — and [undo] restores the link for the next
   case.  Disconnection is detected through [reachable] before any load
   is computed, so the MLU query never raises. *)
let sweep_with (ctx : Obs.Ctx.t) ?waypoints g weights demands groups =
  let ev =
    Engine.Evaluator.create ~stats:ctx.Obs.Ctx.stats
      ~probe:(Obs.Ctx.probe ctx) g weights
  in
  let segs =
    Array.mapi
      (fun i (d : Network.demand) ->
        let wps = match waypoints with Some s -> s.(i) | None -> [] in
        Segments.segment_endpoints d wps)
      demands
  in
  Engine.Evaluator.set_commodities ev
    (Array.of_list
       (List.concat
          (Array.to_list
             (Array.map2
                (fun (d : Network.demand) ss ->
                  List.map (fun (a, b) -> (a, b, d.Network.size)) ss)
                demands segs))));
  let cell = { Engine.Evaluator.mlu = 0.; phi = 0. } in
  Obs.Ctx.span ctx
    ~attrs:[ Obs.Attr.int "cases" (List.length groups) ]
    "fail:sweep"
    (fun () ->
      List.map
        (fun (edge_id, removed) ->
          Engine.Stats.record_scenario (Engine.Evaluator.stats ev);
          Obs.Metrics.incr ctx.Obs.Ctx.metrics "fail.cases";
          List.iter (fun e -> Engine.Evaluator.disable_edge ev ~edge:e) removed;
          let disconnected = ref 0 in
          Array.iter
            (fun ss ->
              if
                not
                  (List.for_all
                     (fun (a, b) -> Engine.Evaluator.reachable ev ~src:a ~dst:b)
                     ss)
              then incr disconnected)
            segs;
          if !disconnected > 0 then
            Obs.Metrics.incr ctx.Obs.Ctx.metrics "fail.disconnecting";
          let mlu =
            if !disconnected > 0 then nan
            else begin
              Engine.Evaluator.evaluate_into ev cell;
              cell.Engine.Evaluator.mlu
            end
          in
          Engine.Evaluator.undo ev;
          { edge = edge_id; mlu; disconnected = !disconnected })
        groups)

let single_failures_ctx ctx ?fail_pairs ?waypoints g weights demands =
  sweep_with ctx ?waypoints g weights demands (failure_groups ?fail_pairs g)

let single_failures ?stats ?fail_pairs ?waypoints g weights demands =
  single_failures_ctx
    (Obs.Ctx.make ?stats ())
    ?fail_pairs ?waypoints g weights demands

(* Total severity order on outcomes: any disconnection is worse than any
   MLU, more disconnected demands are worse, and among connected
   outcomes a [nan] MLU (defensively) sorts above every number.  Total
   by construction — never a raw [Float] compare against [nan]. *)
let mlu_key o = if Float.is_nan o.mlu then infinity else o.mlu

let compare_severity a b =
  let sev o = if o.disconnected > 0 then 1 else 0 in
  match compare (sev a) (sev b) with
  | 0 ->
    if a.disconnected > 0 then compare a.disconnected b.disconnected
    else compare (mlu_key a) (mlu_key b)
  | c -> c

let worse a b = if compare_severity b a > 0 then b else a

let worst_case_ctx ctx ?fail_pairs ?waypoints g weights demands =
  match single_failures_ctx ctx ?fail_pairs ?waypoints g weights demands with
  | [] -> invalid_arg "Failures.worst_case: graph has no edges"
  | first :: rest -> List.fold_left worse first rest

let worst_case ?fail_pairs ?waypoints g weights demands =
  worst_case_ctx (Obs.Ctx.make ()) ?fail_pairs ?waypoints g weights demands
