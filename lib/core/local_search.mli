(** HeurOSPF: link-weight local search in the style of Fortz and
    Thorup [11], used as the LWO subroutine of Algorithm 2.

    The search walks integer weight vectors in [1, wmax]^E, repeatedly
    re-weighting one link (biased towards the most utilized one) and
    keeping improving moves; random perturbations escape plateaus.  The
    guiding objective is either the Fortz–Thorup piecewise-linear cost
    [Phi] (default; smoother than MLU and the choice of [11]) or the MLU
    itself — the returned solution is always the best-MLU one seen. *)

type params = {
  wmax : int;  (** weight grid [1, wmax] (default 16) *)
  max_evals : int;  (** evaluation budget (default 1500) *)
  seed : int;
  use_phi : bool;  (** guide by Phi instead of MLU (default true) *)
  stall_limit : int;  (** non-improving moves before a perturbation *)
}

val default_params : params

type result = {
  weights : int array;
  mlu : float;
  phi : float;
  evals : int;  (** evaluations actually performed *)
}

val phi_cost : Netgraph.Digraph.t -> float array -> float
(** The Fortz–Thorup cost: [sum_e c_e * phi_hat(load_e / c_e)] with
    slopes 1, 3, 10, 70, 500, 5000 at breakpoints 1/3, 2/3, 9/10, 1,
    11/10 (re-export of {!Engine.Evaluator.phi_cost}, the single shared
    definition). *)

val evaluate :
  Netgraph.Digraph.t -> Network.demand array -> int array -> float * float
(** [(mlu, phi)] of a weight vector. *)

val optimize_ctx :
  Obs.Ctx.t ->
  ?restarts:int ->
  ?params:params ->
  ?init:int array ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  result
(** The context-taking entry point.  [init] defaults to the
    inverse-capacity setting rounded onto the weight grid; [params]
    defaults to {!default_params} reseeded with the context's seed
    (when non-zero).  The search evaluates candidates through one
    shared {!Engine.Evaluator}: each single-weight move is probed as an
    incremental update and undone (or committed) through the engine's
    move protocol.  The context's stats collect the engine's evaluation
    and SPF-rebuild counters; its tracer records one ["ls:walk"] span
    per walk with ["ls:round"] probe fan-outs and ["ls:perturb"]
    events nested inside (restart walks graft back in restart order,
    so traces are schedule-independent).  A context deadline is honored
    at round granularity: the walk stops early but still returns its
    best solution.

    The context's pool parallelizes the work on two levels, both
    deterministically (the result is bit-identical for every pool
    size): the neighborhood probes of one walk run concurrently on
    per-worker {!Engine.Evaluator.copy} clones, and with [restarts > 1]
    whole independent walks (restart [r] reseeded to [seed + 7919 r],
    so [restarts = 1] is the historical single walk) run as pool tasks,
    probing inline.  The returned result is the best-MLU restart (ties:
    lowest restart index), with its own walk's [evals] count. *)
