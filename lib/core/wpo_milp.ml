open Netgraph
module Simplex = Linprog.Simplex
module Milp = Linprog.Milp

type t = {
  waypoints : Segments.setting;
  mlu : float;
  exact : bool;
  nodes_explored : int;
}

let solve_ctx (octx : Obs.Ctx.t) ?(max_nodes = 50_000) ?candidates
    ?(max_waypoints = 1) ?warm ?prune g weights demands =
  if max_waypoints < 1 then invalid_arg "Wpo_milp.solve: max_waypoints >= 1";
  Obs.Ctx.span octx "milp:wpo" @@ fun () ->
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let k = Array.length demands in
  let ctx = Ecmp.make g weights in
  let candidates =
    match candidates with Some c -> c | None -> List.init n Fun.id
  in
  (* The preprocessing pass restricts each demand's waypoint universe
     before any z variable is created, shrinking the MILP itself. *)
  let pruner =
    Option.map
      (fun spec ->
        let ev =
          Engine.Evaluator.create ~stats:octx.Obs.Ctx.stats
            ~probe:(Obs.Ctx.probe octx) g weights
        in
        Engine.Evaluator.set_commodities ev (Network.to_commodities demands);
        Prune.prepare octx spec ev demands)
      prune
  in
  (* Per demand: the list of options (ordered waypoint sequences of
     length 0..max_waypoints) with their sparse load vectors.  Options
     with an unroutable segment are dropped. *)
  let options =
    Array.map
      (fun (d : Network.demand) ->
        let usable =
          List.filter
            (fun w -> w <> d.Network.src && w <> d.Network.dst)
            candidates
        in
        let usable =
          match pruner with
          | None -> usable
          | Some p ->
            let keep =
              Prune.candidates p ~src:d.Network.src ~dst:d.Network.dst
            in
            let kept = List.filter (fun w -> Array.exists (( = ) w) keep) usable in
            Engine.Stats.record_pruning octx.Obs.Ctx.stats
              ~pruned:(List.length usable - List.length kept)
              ~kept:(List.length kept);
            kept
        in
        (* All ordered sequences up to the length cap, without immediate
           repeats (a repeat is a degenerate hop). *)
        let rec sequences len =
          if len = 0 then [ [] ]
          else
            List.concat_map
              (fun seq ->
                List.filter_map
                  (fun w ->
                    match seq with
                    | last :: _ when last = w -> None
                    | _ -> Some (w :: seq))
                  usable)
              (sequences (len - 1))
        in
        let all_seqs =
          List.concat_map
            (fun len -> List.map List.rev (sequences len))
            (List.init (max_waypoints + 1) Fun.id)
        in
        let with_loads =
          List.filter_map
            (fun seq ->
              let hops = Segments.segment_endpoints d seq in
              match
                List.map (fun (a, b) -> Ecmp.unit_load ctx ~src:a ~dst:b) hops
              with
              | exception Ecmp.Unroutable _ -> None
              | segs -> Some (seq, segs))
            all_seqs
        in
        Array.of_list with_loads)
      demands
  in
  (* Variable layout: z variables first, then U last. *)
  let offsets = Array.make (k + 1) 0 in
  for i = 0 to k - 1 do
    offsets.(i + 1) <- offsets.(i) + Array.length options.(i)
  done;
  let nz = offsets.(k) in
  let uvar = nz in
  let nvars = nz + 1 in
  (* Edge rows: accumulate coefficient of each z on each edge. *)
  let edge_rows = Array.make m [] in
  Array.iteri
    (fun i opts ->
      Array.iteri
        (fun oi (_, segs) ->
          let zvar = offsets.(i) + oi in
          let coeff = Array.make m 0. in
          List.iter
            (fun (s : Ecmp.sparse) ->
              Array.iteri
                (fun j e ->
                  coeff.(e) <- coeff.(e) +. (demands.(i).Network.size *. s.Ecmp.flows.(j)))
                s.Ecmp.edges)
            segs;
          for e = 0 to m - 1 do
            if coeff.(e) <> 0. then edge_rows.(e) <- (zvar, coeff.(e)) :: edge_rows.(e)
          done)
        opts)
    options;
  let constrs = ref [] in
  for e = 0 to m - 1 do
    if edge_rows.(e) <> [] then
      constrs :=
        Simplex.constr ((uvar, -.Digraph.cap g e) :: edge_rows.(e)) Simplex.Le 0.
        :: !constrs
  done;
  for i = 0 to k - 1 do
    let row = List.init (Array.length options.(i)) (fun oi -> (offsets.(i) + oi, 1.)) in
    constrs := Simplex.constr row Simplex.Eq 1. :: !constrs
  done;
  (* z <= 1 comes from the convexity rows; no explicit bound needed. *)
  let p =
    { Simplex.nvars; sense = Simplex.Minimize; objective = [ (uvar, 1.) ];
      constrs = !constrs }
  in
  let integer_vars = List.init nz Fun.id in
  let direct_mlu = Ecmp.mlu g (Ecmp.loads ctx demands) in
  (* Warm start from GreedyWPO (Algorithm 3): the branch and bound then
     acts as an exact verifier/improver and can never return a worse
     setting even when the node limit stops it early. *)
  let initial =
    let greedy =
      Obs.Ctx.span octx "milp:warm-start" (fun () ->
          Greedy_wpo.optimize_ctx octx ?prune g weights demands)
    in
    let x = Array.make nvars 0. in
    let loads = Array.make m 0. in
    Array.iteri
      (fun i opts ->
        let want =
          match greedy.Greedy_wpo.waypoints.(i) with
          | Some w -> [ w ]
          | None -> []
        in
        let oi =
          (* Fall back to the direct option (index 0) when the greedy
             pick is not among this demand's usable options. *)
          let found = ref 0 in
          Array.iteri (fun j (opt, _) -> if opt = want then found := j) opts;
          !found
        in
        x.(offsets.(i) + oi) <- 1.;
        let _, segs = opts.(oi) in
        List.iter
          (fun (s : Ecmp.sparse) ->
            Array.iteri
              (fun j e ->
                loads.(e) <- loads.(e) +. (demands.(i).Network.size *. s.Ecmp.flows.(j)))
              s.Ecmp.edges)
          segs)
      options;
    x.(uvar) <- Ecmp.mlu g loads;
    x
  in
  let result, effort =
    Obs.Ctx.span octx "milp:branch-and-bound" (fun () ->
        Milp.solve_ext ~max_nodes ~initial ?warm
          ~probe:(Obs.Tracer.lp_probe octx.Obs.Ctx.tracer) p ~integer_vars)
  in
  (let nodes =
     match result with
     | Milp.Solution sol -> sol.Milp.nodes_explored
     | Milp.Infeasible | Milp.Unbounded | Milp.NoIncumbent -> max_nodes
   in
   Engine.Stats.record_milp octx.Obs.Ctx.stats ~nodes
     ~lp_solves:effort.Milp.lp_solves ~lp_pivots:effort.Milp.lp_pivots
     ~warm_solves:effort.Milp.warm_solves
     ~cycle_limits:effort.Milp.cycle_limits;
   Obs.Metrics.incr octx.Obs.Ctx.metrics ~by:nodes "milp.nodes";
   Obs.Metrics.incr octx.Obs.Ctx.metrics ~by:effort.Milp.lp_solves
     "milp.lp_solves");
  match result with
  | Milp.Solution s when s.Milp.value > direct_mlu +. 1e-9 ->
    (* The node limit stopped the search on a poor incumbent; direct
       routing (all z_{i,none} = 1) is feasible and better. *)
    { waypoints = Array.make k []; mlu = direct_mlu; exact = false;
      nodes_explored = s.Milp.nodes_explored }
  | Milp.Solution s ->
    let waypoints =
      Array.init k (fun i ->
          let choice = ref [] in
          Array.iteri
            (fun oi (opt, _) ->
              if s.Milp.point.(offsets.(i) + oi) > 0.5 then choice := opt)
            options.(i);
          !choice)
    in
    { waypoints; mlu = s.Milp.value; exact = s.Milp.status = Milp.Optimal;
      nodes_explored = s.Milp.nodes_explored }
  | Milp.Infeasible | Milp.Unbounded | Milp.NoIncumbent ->
    (* The direct routing is always feasible, so only a node-limit
       without incumbent can land here; fall back to it. *)
    let mlu = Ecmp.mlu g (Ecmp.loads ctx demands) in
    { waypoints = Array.make k []; mlu; exact = false; nodes_explored = max_nodes }


let solve ?max_nodes ?candidates ?max_waypoints ?warm ?prune ?stats g weights
    demands =
  solve_ctx (Obs.Ctx.make ?stats ()) ?max_nodes ?candidates ?max_waypoints
    ?warm ?prune g weights demands
