open Netgraph

type params = {
  wmax : int;
  rounds : int;
  checkpoint_every : int;
  step : float;
  decay : float;
  min_weight : float;
  tol : float;
}

let default_params =
  { wmax = 64; rounds = 300; checkpoint_every = 5; step = 1.; decay = 0.03;
    min_weight = 1e-3; tol = 5e-3 }

type result = {
  weights : int array;
  mlu : float;
  initial_mlu : float;
  lp_bound : float;
  evals : int;
  rounds_run : int;
  trail : (int * float) list;
}

let optimize_ctx (ctx : Obs.Ctx.t) ?(params = default_params) ?init ?basis g
    demands =
  if params.wmax < 2 then invalid_arg "Grad_wo.optimize: wmax < 2";
  if params.rounds < 0 then invalid_arg "Grad_wo.optimize: rounds < 0";
  if params.checkpoint_every < 1 then
    invalid_arg "Grad_wo.optimize: checkpoint_every < 1";
  let tracer = ctx.Obs.Ctx.tracer in
  let m = Digraph.edge_count g in
  let demands = Network.aggregate demands in
  let comms =
    Array.map
      (fun d -> Mcf.commodity d.Network.src d.Network.dst d.Network.size)
      demands
  in
  (* The descent target: the per-edge flows of the min-MLU optimum. *)
  let lp =
    Obs.Ctx.span ctx "grad:lp" (fun () -> Mcf.opt_mlu_lp_warm_ext ?basis g comms)
  in
  Engine.Stats.record_lp_solve ctx.Obs.Ctx.stats ~pivots:lp.Mcf.pivots;
  let necessary = lp.Mcf.edge_flows in
  let nc_max = Array.fold_left max 0. necessary in
  let nc_sum = Array.fold_left ( +. ) 0. necessary in
  (* PEFT scales the step by the largest necessary capacity, so one step
     moves weights by at most [params.step]. *)
  let step = if nc_max > 0. then params.step /. nc_max else 0. in
  let w =
    match init with
    | Some w0 ->
      if Array.length w0 <> m then
        invalid_arg "Grad_wo.optimize: init length mismatch";
      Array.copy w0
    | None -> Weights.inverse_capacity g
  in
  (* [ev_real] tracks the ECMP flows of the live real-valued vector;
     [ev_int] evaluates the rounded checkpoints.  Both share the
     context's stats, so SPF and evaluation effort is accounted once. *)
  let ev_real =
    Engine.Evaluator.create ~stats:ctx.Obs.Ctx.stats ~probe:(Obs.Ctx.probe ctx)
      g w
  in
  Engine.Evaluator.set_commodities ev_real (Network.to_commodities demands);
  let rounded = Weights.round_to_range ~wmax:params.wmax w in
  let ev_int =
    Engine.Evaluator.create ~stats:ctx.Obs.Ctx.stats
      (Engine.Evaluator.graph ev_real)
      (Weights.of_ints rounded)
  in
  Engine.Evaluator.set_commodities ev_int (Network.to_commodities demands);
  let evals = ref 0 in
  let eval_rounded ints =
    incr evals;
    Engine.Evaluator.set_weights ev_int (Weights.of_ints ints);
    Engine.Evaluator.commit ev_int;
    Engine.Evaluator.mlu ev_int
  in
  let initial_mlu = eval_rounded rounded in
  let best_w = ref rounded and best_mlu = ref initial_mlu in
  let trail = ref [ (0, initial_mlu) ] in
  let tok = Obs.Tracer.start tracer "grad:descent" in
  Obs.Tracer.attr tracer tok (Obs.Attr.float "lp_bound" lp.Mcf.value);
  let round = ref 0 and converged = ref false in
  let checkpoint () =
    let ints = Weights.round_to_range ~wmax:params.wmax w in
    let mlu = eval_rounded ints in
    Obs.Tracer.instant tracer
      ~attrs:[ Obs.Attr.int "round" !round; Obs.Attr.float "mlu" mlu ]
      "grad:checkpoint";
    trail := (!round, mlu) :: !trail;
    if mlu < !best_mlu -. 1e-12 then begin
      best_mlu := mlu;
      best_w := ints
    end
  in
  while
    !round < params.rounds && not !converged && not (Obs.Ctx.expired ctx)
  do
    (* Current ECMP flows under the live real weights. *)
    incr evals;
    let flows = Engine.Evaluator.loads ev_real in
    let delta = ref 0. in
    for e = 0 to m - 1 do
      delta := !delta +. Float.abs (necessary.(e) -. flows.(e))
    done;
    if !delta <= params.tol *. nc_sum then converged := true
    else begin
      (* w_e <- w_e - step_k (necessary_e - flow_e): links the optimum
         needs more of get cheaper, overloaded ones dearer.  ECMP flows
         respond discontinuously to weights, so a fixed step oscillates
         around the optimum forever; the harmonic decay damps the orbit
         onto it. *)
      let step_k = step /. (1. +. (params.decay *. float_of_int !round)) in
      for e = 0 to m - 1 do
        let nw = w.(e) -. (step_k *. (necessary.(e) -. flows.(e))) in
        w.(e) <- (if nw > params.min_weight then nw else params.min_weight)
      done;
      Engine.Evaluator.set_weights ev_real w;
      Engine.Evaluator.commit ev_real;
      incr round;
      if !round mod params.checkpoint_every = 0 then checkpoint ()
    end
  done;
  if !round mod params.checkpoint_every <> 0 || (!converged && !round > 0)
  then checkpoint ();
  Obs.Tracer.attr tracer tok (Obs.Attr.int "rounds" !round);
  Obs.Tracer.attr tracer tok (Obs.Attr.float "mlu" !best_mlu);
  Obs.Tracer.finish tracer tok;
  Obs.Metrics.incr ctx.Obs.Ctx.metrics ~by:!round "grad.rounds";
  { weights = !best_w; mlu = !best_mlu; initial_mlu; lp_bound = lp.Mcf.value;
    evals = !evals; rounds_run = !round; trail = List.rev !trail }
