open Netgraph

type order = Desc | Asc | Random of int

type result = {
  waypoints : int option array;
  mlu : float;
  initial_mlu : float;
}

type multi_result = {
  setting : Segments.setting;
  mlu : float;
  round_mlu : float list;
}

let order_indices order demands =
  let indices = Array.init (Array.length demands) Fun.id in
  (match order with
  | Desc ->
    Array.sort
      (fun a b -> compare demands.(b).Network.size demands.(a).Network.size)
      indices
  | Asc ->
    Array.sort
      (fun a b -> compare demands.(a).Network.size demands.(b).Network.size)
      indices
  | Random seed ->
    let st = Random.State.make [| seed; 0x3e0 |] in
    for i = Array.length indices - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = indices.(i) in
      indices.(i) <- indices.(j);
      indices.(j) <- t
    done);
  indices

(* The greedy never changes weights, so the engine's DAG and unit-flow
   caches persist for the whole run; only the load vector is private
   (the search trials waypoint insertions by patching it in place). *)
let apply loads sign (s : Engine.Evaluator.sparse) scale =
  for i = 0 to Array.length s.Engine.Evaluator.edges - 1 do
    let e = s.Engine.Evaluator.edges.(i) in
    loads.(e) <- loads.(e) +. (sign *. scale *. s.Engine.Evaluator.flows.(i))
  done

let optimize_multi ?stats ?(order = Desc) ~rounds g weights demands =
  if rounds < 1 then invalid_arg "Greedy_wpo.optimize_multi: rounds >= 1";
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let ev = Engine.Evaluator.create ?stats g weights in
  Engine.Evaluator.set_commodities ev (Network.to_commodities demands);
  let unit_load src dst = Engine.Evaluator.unit_load ev ~src ~dst in
  let loads =
    try Array.copy (Engine.Evaluator.loads ev)
    with Engine.Evaluator.Unroutable (s, t) -> raise (Ecmp.Unroutable (s, t))
  in
  let setting = Array.make (Array.length demands) [] in
  let indices = order_indices order demands in
  let u_min = ref (Engine.Evaluator.mlu_of_loads g loads) in
  let round_mlu = ref [] in
  for _round = 1 to rounds do
    Array.iter
      (fun i ->
        let d = demands.(i) in
        let size = d.Network.size in
        (* The greedy re-splits the LAST segment (anchor -> t), where
           the anchor is the most recent waypoint (or the source). *)
        let anchor =
          match List.rev setting.(i) with w :: _ -> w | [] -> d.Network.src
        in
        if anchor <> d.Network.dst then begin
          let last_seg = unit_load anchor d.Network.dst in
          apply loads (-1.) last_seg size;
          let best_w = ref None and best_u = ref !u_min in
          for w = 0 to n - 1 do
            if w <> anchor && w <> d.Network.dst then begin
              match (unit_load anchor w, unit_load w d.Network.dst) with
              | exception Engine.Evaluator.Unroutable _ -> ()
              | seg1, seg2 ->
                apply loads 1. seg1 size;
                apply loads 1. seg2 size;
                let u = ref 0. in
                for e = 0 to m - 1 do
                  let r = loads.(e) /. Digraph.cap g e in
                  if r > !u then u := r
                done;
                if !u < !best_u -. 1e-12 then begin
                  best_u := !u;
                  best_w := Some w
                end;
                apply loads (-1.) seg1 size;
                apply loads (-1.) seg2 size
            end
          done;
          match !best_w with
          | Some w ->
            setting.(i) <- setting.(i) @ [ w ];
            u_min := !best_u;
            apply loads 1. (unit_load anchor w) size;
            apply loads 1. (unit_load w d.Network.dst) size
          | None -> apply loads 1. last_seg size
        end)
      indices;
    round_mlu := Engine.Evaluator.mlu_of_loads g loads :: !round_mlu
  done;
  { setting; mlu = Engine.Evaluator.mlu_of_loads g loads;
    round_mlu = List.rev !round_mlu }

let optimize ?stats ?(order = Desc) ?(passes = 1) g weights demands =
  if passes < 1 then invalid_arg "Greedy_wpo.optimize: passes >= 1";
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let ev = Engine.Evaluator.create ?stats g weights in
  Engine.Evaluator.set_commodities ev (Network.to_commodities demands);
  let unit_load src dst = Engine.Evaluator.unit_load ev ~src ~dst in
  let loads =
    try Array.copy (Engine.Evaluator.loads ev)
    with Engine.Evaluator.Unroutable (s, t) -> raise (Ecmp.Unroutable (s, t))
  in
  let initial_mlu = Engine.Evaluator.mlu_of_loads g loads in
  let waypoints = Array.make (Array.length demands) None in
  let indices = order_indices order demands in
  let u_min = ref initial_mlu in
  (* The segments a demand currently loads onto the network. *)
  let segments_of i =
    let d = demands.(i) in
    match waypoints.(i) with
    | None -> [ unit_load d.Network.src d.Network.dst ]
    | Some w -> [ unit_load d.Network.src w; unit_load w d.Network.dst ]
  in
  (* Pass 1 is Algorithm 3 verbatim; later passes revisit each demand,
     allowing reassignment or removal of its waypoint (the sequential
    greedy is order-fragile and an improvement pass recovers most of
    the loss). *)
  for pass = 1 to passes do
    Array.iter
      (fun i ->
        let d = demands.(i) in
        let size = d.Network.size in
        let current = segments_of i in
        List.iter (fun s -> apply loads (-1.) s size) current;
        let scan () =
          let u = ref 0. in
          for e = 0 to m - 1 do
            let r = loads.(e) /. Digraph.cap g e in
            if r > !u then u := r
          done;
          !u
        in
        let best_w = ref waypoints.(i) and best_u = ref !u_min in
        (* On improvement passes, also consider dropping the waypoint. *)
        if pass > 1 && waypoints.(i) <> None then begin
          let direct = unit_load d.Network.src d.Network.dst in
          apply loads 1. direct size;
          let u = scan () in
          if u < !best_u -. 1e-12 then begin
            best_u := u;
            best_w := None
          end;
          apply loads (-1.) direct size
        end;
        for w = 0 to n - 1 do
          if w <> d.Network.src && w <> d.Network.dst && Some w <> waypoints.(i)
          then begin
            match (unit_load d.Network.src w, unit_load w d.Network.dst) with
            | exception Engine.Evaluator.Unroutable _ -> ()
            | seg1, seg2 ->
              apply loads 1. seg1 size;
              apply loads 1. seg2 size;
              let u = scan () in
              if u < !best_u -. 1e-12 then begin
                best_u := u;
                best_w := Some w
              end;
              apply loads (-1.) seg1 size;
              apply loads (-1.) seg2 size
          end
        done;
        if !best_w <> waypoints.(i) then begin
          waypoints.(i) <- !best_w;
          u_min := !best_u
        end;
        List.iter (fun s -> apply loads 1. s size) (segments_of i);
        (* Keep u_min honest when nothing changed (restoring the demand
           restores the previous MLU). *)
        if !best_w = waypoints.(i) then
          u_min := Engine.Evaluator.mlu_of_loads g loads)
      indices
  done;
  let final_mlu = Engine.Evaluator.mlu_of_loads g loads in
  { waypoints; mlu = final_mlu; initial_mlu }
