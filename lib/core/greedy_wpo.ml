open Netgraph

type order = Desc | Asc | Random of int

type result = {
  waypoints : int option array;
  mlu : float;
  initial_mlu : float;
}

type multi_result = {
  setting : Segments.setting;
  mlu : float;
  round_mlu : float list;
}

let order_indices order demands =
  let indices = Array.init (Array.length demands) Fun.id in
  (match order with
  | Desc ->
    Array.sort
      (fun a b -> compare demands.(b).Network.size demands.(a).Network.size)
      indices
  | Asc ->
    Array.sort
      (fun a b -> compare demands.(a).Network.size demands.(b).Network.size)
      indices
  | Random seed ->
    let st = Random.State.make [| seed; 0x3e0 |] in
    for i = Array.length indices - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = indices.(i) in
      indices.(i) <- indices.(j);
      indices.(j) <- t
    done);
  indices

(* The greedy never changes weights, so the engine's DAG and unit-flow
   caches persist for the whole run; only the load vector is private
   (the search trials waypoint insertions by patching a copy).  All
   segment arithmetic goes through [Evaluator.add_unit], which
   accumulates straight from the engine's flat cached entries — no
   sparse views are ever materialized on the scan path. *)

(* ------------------------------------------------------------------ *)
(* Parallel candidate scan                                             *)
(* ------------------------------------------------------------------ *)

type candidate = Drop | Way of int

(* Candidates are scanned in fixed-size chunks so the work decomposition
   (and any float accumulation inside a task) is independent of the
   worker count — one leg of the [--jobs N] ≡ [--jobs 1] bit-identity
   guarantee.  The other leg: every candidate is scored on a pristine
   copy of the round's base loads, so its utilization depends only on
   the candidate itself, never on which candidates were tried before it
   on the same buffer. *)
let scan_chunk = 4

type scan_ctx = {
  g : Digraph.t;
  m : int;
  caps : float array; (* borrowed from the graph's CSR storage *)
  pool : Par.Pool.t;
  evs : Engine.Evaluator.t array; (* slot 0 is the main evaluator *)
  bufs : float array array; (* per-worker private load buffer *)
  main_stats : Engine.Stats.t;
  tracer : Obs.Tracer.t;
}

(* Clones come from the context's persistent cache, on the calling
   domain, after the caches are warm — neither [Evaluator.copy] nor
   [Evaluator.sync_from] may race with another domain using the source
   evaluator.  Slots already populated by an earlier fan-out (a previous
   greedy run, or the local search sharing the same context) are
   delta-synced instead of recopied. *)
let make_ctx ?(tracer = Obs.Tracer.noop) ?clones pool ev =
  let g = Engine.Evaluator.graph ev in
  let m = Digraph.edge_count g in
  let par = Par.Pool.parallelism pool in
  let evs = Array.make par ev in
  for w = 1 to par - 1 do
    evs.(w) <-
      (match clones with
      | Some cache -> Engine.Evaluator.Clones.get cache ~worker:w ~src:ev
      | None -> Engine.Evaluator.copy ev)
  done;
  { g; m; caps = Digraph.caps g; pool; evs;
    bufs = Array.init par (fun _ -> Array.make m 0.);
    main_stats = Engine.Evaluator.stats ev; tracer }

(* Clones persist in the cache across fan-outs, so their counters are
   folded into the run total and reset — leaving them live would
   double-count on the next merge. *)
let merge_clone_stats ctx =
  for w = 1 to Array.length ctx.evs - 1 do
    let cs = Engine.Evaluator.stats ctx.evs.(w) in
    Engine.Stats.merge ~into:ctx.main_stats cs;
    Engine.Stats.reset cs
  done

(* Returns the strict (utilization, candidate index) argmin — the first
   candidate among those of minimal utilization — or [None] if no
   candidate is routable.  [add_cand ev buf c] accumulates the segment
   loads candidate [c] would place onto [buf] (via
   [Evaluator.add_unit] on the worker's own evaluator); candidates
   raising [Unroutable] are skipped. *)
let scan_candidates ctx ~loads ~add_cand cands =
  let ncand = Array.length cands in
  if ncand = 0 then None
  else begin
    (* The scan span is recorded by the orchestrating domain (workers
       never touch the buffer), so the trace is jobs-independent. *)
    let scan_tok = Obs.Tracer.start ctx.tracer "wpo:scan" in
    Obs.Tracer.attr ctx.tracer scan_tok (Obs.Attr.int "candidates" ncand);
    let ch = Par.Pool.chunks ~chunk:scan_chunk ncand in
    let wall0 = Engine.Mono.now () in
    let per_chunk =
      Par.Pool.map ctx.pool ~tasks:(Array.length ch) (fun ~worker ci ->
          let t0 = Engine.Mono.now () in
          let start, len = ch.(ci) in
          let ev = ctx.evs.(worker) and buf = ctx.bufs.(worker) in
          let best = ref None and nev = ref 0 in
          for j = start to start + len - 1 do
            Array.blit loads 0 buf 0 ctx.m;
            match add_cand ev buf cands.(j) with
            | exception Engine.Evaluator.Unroutable _ -> ()
            | () ->
              incr nev;
              let u = ref 0. in
              for e = 0 to ctx.m - 1 do
                let r = buf.(e) /. ctx.caps.(e) in
                if r > !u then u := r
              done;
              (match !best with
              | Some (bu, _) when bu <= !u -> ()
              | _ -> best := Some (!u, j))
          done;
          (!best, !nev, worker, Engine.Mono.now () -. t0))
    in
    let wall = Engine.Mono.now () -. wall0 in
    let busy = ref 0. and best = ref None in
    (* Chunks reduce in index order and ties keep the earlier chunk, so
       the winner is the global first-of-the-minima regardless of which
       worker scored which chunk. *)
    Array.iter
      (fun (b, nev, worker, dt) ->
        busy := !busy +. dt;
        if nev > 0 then
          Engine.Stats.record_worker_evals ctx.main_stats ~worker nev;
        match (b, !best) with
        | None, _ -> ()
        | Some _, None -> best := b
        | Some (u, _), Some (bu, _) -> if u < bu then best := b)
      per_chunk;
    Engine.Stats.record_parallel ctx.main_stats ~jobs:(Array.length ctx.evs)
      ~tasks:(Array.length ch) ~wall ~busy:!busy;
    Obs.Tracer.finish ctx.tracer scan_tok;
    !best
  end

(* ------------------------------------------------------------------ *)
(* Multi-round greedy (one more waypoint per round)                    *)
(* ------------------------------------------------------------------ *)

(* Pruned candidate-list construction, shared by both greedies: the
   exact residual-MLU bound first (an empty scan is provably identical
   to scanning and rejecting every candidate), then the preprocessing
   pass's per-pair list.  [full] is the size the unpruned list would
   have had; the difference feeds the effectiveness counters.  All of
   this runs on the orchestrating domain, so pruned runs keep the
   bit-identical-across-jobs guarantee. *)
let pruned_cands ctx p ~loads ~u_min ~src ~dst ~full ~wrap =
  let cands =
    if Prune.scan_skippable p ~loads ~u_min then [||]
    else wrap (Prune.candidates p ~src ~dst)
  in
  Engine.Stats.record_pruning ctx.main_stats
    ~pruned:(max 0 (full - Array.length cands))
    ~kept:(Array.length cands);
  cands

let optimize_multi_ctx (octx : Obs.Ctx.t) ?(order = Desc) ?prune ~rounds g
    weights demands =
  if rounds < 1 then invalid_arg "Greedy_wpo.optimize_multi: rounds >= 1";
  let n = Digraph.node_count g in
  let pool = octx.Obs.Ctx.pool and tracer = octx.Obs.Ctx.tracer in
  let ev =
    Engine.Evaluator.create ~stats:octx.Obs.Ctx.stats
      ~probe:(Obs.Ctx.probe octx) g weights
  in
  Engine.Evaluator.set_commodities ev (Network.to_commodities demands);
  let add src dst scale into =
    Engine.Evaluator.add_unit ev ~src ~dst ~scale ~into
  in
  let loads =
    try Array.copy (Engine.Evaluator.loads ev)
    with Engine.Evaluator.Unroutable (s, t) -> raise (Ecmp.Unroutable (s, t))
  in
  let ctx = make_ctx ~tracer ~clones:octx.Obs.Ctx.clones pool ev in
  let pruner = Option.map (fun s -> Prune.prepare octx s ev demands) prune in
  let setting = Array.make (Array.length demands) [] in
  let indices = order_indices order demands in
  let u_min = ref (Engine.Evaluator.mlu_of_loads g loads) in
  let round_mlu = ref [] in
  for round = 1 to rounds do
    let round_tok = Obs.Tracer.start tracer "wpo:round" in
    Obs.Tracer.attr tracer round_tok (Obs.Attr.int "round" round);
    Array.iter
      (fun i ->
        let d = demands.(i) in
        let size = d.Network.size in
        (* The greedy re-splits the LAST segment (anchor -> t), where
           the anchor is the most recent waypoint (or the source). *)
        let anchor =
          match List.rev setting.(i) with w :: _ -> w | [] -> d.Network.src
        in
        if anchor <> d.Network.dst then begin
          add anchor d.Network.dst (-.size) loads;
          let cands =
            match pruner with
            | None ->
              let ways = ref [] in
              for w = n - 1 downto 0 do
                if w <> anchor && w <> d.Network.dst then ways := Way w :: !ways
              done;
              Array.of_list !ways
            | Some p ->
              pruned_cands ctx p ~loads ~u_min:!u_min ~src:anchor
                ~dst:d.Network.dst ~full:(n - 2)
                ~wrap:(Array.map (fun w -> Way w))
          in
          let add_cand ev buf = function
            | Way w ->
              Engine.Evaluator.add_unit ev ~src:anchor ~dst:w ~scale:size
                ~into:buf;
              Engine.Evaluator.add_unit ev ~src:w ~dst:d.Network.dst
                ~scale:size ~into:buf
            | Drop -> assert false
          in
          match scan_candidates ctx ~loads ~add_cand cands with
          | Some (u, j) when u < !u_min -. 1e-12 ->
            let w = match cands.(j) with Way w -> w | Drop -> assert false in
            setting.(i) <- setting.(i) @ [ w ];
            u_min := u;
            add anchor w size loads;
            add w d.Network.dst size loads
          | _ -> add anchor d.Network.dst size loads
        end)
      indices;
    let u = Engine.Evaluator.mlu_of_loads g loads in
    round_mlu := u :: !round_mlu;
    Obs.Tracer.attr tracer round_tok (Obs.Attr.float "mlu" u);
    Obs.Tracer.finish tracer round_tok
  done;
  merge_clone_stats ctx;
  { setting; mlu = Engine.Evaluator.mlu_of_loads g loads;
    round_mlu = List.rev !round_mlu }

(* ------------------------------------------------------------------ *)
(* Single-waypoint greedy (Algorithm 3 + improvement passes)           *)
(* ------------------------------------------------------------------ *)

let optimize_ctx (octx : Obs.Ctx.t) ?(order = Desc) ?(passes = 1) ?prune g
    weights demands =
  if passes < 1 then invalid_arg "Greedy_wpo.optimize: passes >= 1";
  let n = Digraph.node_count g in
  let pool = octx.Obs.Ctx.pool and tracer = octx.Obs.Ctx.tracer in
  let ev =
    Engine.Evaluator.create ~stats:octx.Obs.Ctx.stats
      ~probe:(Obs.Ctx.probe octx) g weights
  in
  Engine.Evaluator.set_commodities ev (Network.to_commodities demands);
  let add src dst scale into =
    Engine.Evaluator.add_unit ev ~src ~dst ~scale ~into
  in
  let loads =
    try Array.copy (Engine.Evaluator.loads ev)
    with Engine.Evaluator.Unroutable (s, t) -> raise (Ecmp.Unroutable (s, t))
  in
  let ctx = make_ctx ~tracer ~clones:octx.Obs.Ctx.clones pool ev in
  let pruner = Option.map (fun s -> Prune.prepare octx s ev demands) prune in
  let initial_mlu = Engine.Evaluator.mlu_of_loads g loads in
  let waypoints = Array.make (Array.length demands) None in
  let indices = order_indices order demands in
  let u_min = ref initial_mlu in
  (* Accumulates [scale] times the segments demand [i] currently loads
     onto the network. *)
  let add_segments i scale =
    let d = demands.(i) in
    match waypoints.(i) with
    | None -> add d.Network.src d.Network.dst scale loads
    | Some w ->
      add d.Network.src w scale loads;
      add w d.Network.dst scale loads
  in
  (* Pass 1 is Algorithm 3 verbatim; later passes revisit each demand,
     allowing reassignment or removal of its waypoint (the sequential
     greedy is order-fragile and an improvement pass recovers most of
     the loss). *)
  for pass = 1 to passes do
    let pass_tok = Obs.Tracer.start tracer "wpo:pass" in
    Obs.Tracer.attr tracer pass_tok (Obs.Attr.int "pass" pass);
    Array.iter
      (fun i ->
        let d = demands.(i) in
        let size = d.Network.size in
        add_segments i (-.size);
        (* On improvement passes, also consider dropping the waypoint. *)
        let drop = pass > 1 && waypoints.(i) <> None in
        let cands =
          match pruner with
          | None ->
            let ways = ref [] in
            for w = n - 1 downto 0 do
              if w <> d.Network.src && w <> d.Network.dst && Some w <> waypoints.(i)
              then ways := Way w :: !ways
            done;
            if drop then Array.of_list (Drop :: !ways)
            else Array.of_list !ways
          | Some p ->
            let full =
              n - 2
              - (if waypoints.(i) <> None then 1 else 0)
              + (if drop then 1 else 0)
            in
            pruned_cands ctx p ~loads ~u_min:!u_min ~src:d.Network.src
              ~dst:d.Network.dst ~full ~wrap:(fun ws ->
                let ways = ref [] in
                for j = Array.length ws - 1 downto 0 do
                  if Some ws.(j) <> waypoints.(i) then
                    ways := Way ws.(j) :: !ways
                done;
                if drop then Array.of_list (Drop :: !ways)
                else Array.of_list !ways)
        in
        let add_cand ev buf = function
          | Drop ->
            Engine.Evaluator.add_unit ev ~src:d.Network.src ~dst:d.Network.dst
              ~scale:size ~into:buf
          | Way w ->
            Engine.Evaluator.add_unit ev ~src:d.Network.src ~dst:w ~scale:size
              ~into:buf;
            Engine.Evaluator.add_unit ev ~src:w ~dst:d.Network.dst ~scale:size
              ~into:buf
        in
        (match scan_candidates ctx ~loads ~add_cand cands with
        | Some (u, j) when u < !u_min -. 1e-12 ->
          waypoints.(i) <-
            (match cands.(j) with Drop -> None | Way w -> Some w)
        | _ -> ());
        add_segments i size;
        u_min := Engine.Evaluator.mlu_of_loads g loads)
      indices;
    Obs.Tracer.attr tracer pass_tok (Obs.Attr.float "mlu" !u_min);
    Obs.Tracer.finish tracer pass_tok
  done;
  merge_clone_stats ctx;
  let final_mlu = Engine.Evaluator.mlu_of_loads g loads in
  { waypoints; mlu = final_mlu; initial_mlu }
