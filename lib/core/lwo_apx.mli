(** Algorithm 1 ([LWO-APX]): the paper's O(n log n)-approximate link
    weight optimization for single source-target demand lists (§5).

    The algorithm (i) fixes an acyclic maximum (s,t)-flow and its DAG G*
    with usable capacities c* = f*, (ii) computes effective capacities
    (Definition 5.1) in reverse topological order while pruning, at each
    node, the outgoing links not selected by the argmax over j * ec(l_j)
    (line 7), and (iii) realizes the surviving DAG as the exact
    shortest-path DAG through the Lemma 4.1 weight construction. *)

type ec = {
  node : float array;  (** effective capacity of each node (infinity at t) *)
  edge : float array;  (** effective capacity of each DAG edge (0 off-DAG) *)
  kept : bool array;  (** edges of the pruned DAG *)
}

val effective_capacities :
  ?prune:bool ->
  Netgraph.Digraph.t ->
  usable:float array ->
  source:int ->
  target:int ->
  ec
(** [usable.(e) > 0] defines the DAG G*; values are the usable
    capacities c*.  With [prune = true] (default; Algorithm 1 line 7)
    each node keeps the prefix of outgoing links maximizing [j * ec];
    with [prune = false] every node splits over all DAG out-links
    (ec(v) = degree * min ec — the naive Definition 5.1 reading used as
    an ablation baseline).
    @raise Failure if the usable subgraph has a cycle. *)

val weights_for_dag :
  Netgraph.Digraph.t -> keep:(int -> bool) -> target:int -> Weights.t
(** Lemma 4.1: a weight setting under which the shortest-path DAG
    towards [target] is exactly the kept subgraph (potentials
    d(t) = 0, d(v) = 1 + max child potential; kept edge weight
    d(u) - d(v); all other edges get a weight larger than any path). *)

type result = {
  weights : Weights.t;
  es_flow_value : float;
      (** ec(s) of Definition 5.1.  On DAGs where branches re-merge the
          even-split flow actually realized by [weights] can differ
          slightly in either direction (the definition reasons per
          node); measure it with {!Ecmp.max_es_flow_value}.  The
          Theorem 5.4 guarantee |f*| <= n ceil(ln n) ec(s) holds
          regardless. *)
  max_flow_value : float;  (** |f*|, for the approximation ratio *)
}

val solve : ?prune:bool -> Netgraph.Digraph.t -> source:int -> target:int -> result
(** Full Algorithm 1. *)

val solve_ctx :
  Obs.Ctx.t -> ?prune:bool -> Netgraph.Digraph.t -> source:int -> target:int -> result
(** {!solve} under a run context: records one ["lwo:apx"] span and a
    [lwo.apx_ratio] gauge (the achieved {!approximation_ratio}). *)

val approximation_ratio : result -> float
(** |f*| / ec(s) >= 1; Theorem 5.4 bounds it by n * ceil(ln n). *)

val uniform_optimal_weights :
  Netgraph.Digraph.t -> source:int -> target:int -> Weights.t
(** The Theorem 4.2 construction: on uniform capacities this weight
    setting realizes LWO = OPT.  A maximum set of link-disjoint
    (s,t)-paths (max flow with unit capacities) is turned into the
    shortest-path DAG via Lemma 4.1; the even split then loads every
    DAG link with exactly D / |P|. *)

val widest_path_weights :
  Netgraph.Digraph.t -> source:int -> target:int -> Weights.t
(** The Theorem 4.3 construction: weight 1 along the largest-capacity
    path of a maximum-flow decomposition and n elsewhere, giving
    LWO <= |P| * OPT. *)
