(** "One More Weight" (OMW): a second weight per link, with traffic
    split per demand across the two induced shortest-path systems
    (arXiv 1011.5015).

    A single OSPF weight setting forces every demand onto one ECMP
    pattern; OMW keeps that setting as system 1 and adds an independent
    second weight vector whose shortest paths form system 2, then
    routes a per-demand fraction [alpha] on system 1 and [1 - alpha] on
    system 2.  Both systems are evaluated through the shared
    {!Engine.Evaluator} (one evaluator per weight vector), so the SPF
    and unit-flow machinery — caches, incremental repair, stats — is
    exactly the single-weight engine, used twice.

    The search is a deterministic coordinate descent: sweeps visit
    demands in index order and move each demand's split on a fixed
    [alpha] grid whenever that strictly lowers the MLU; when a sweep
    finds nothing, the second weight of the most utilized link is
    doubled (sending system 2 around the bottleneck) and the sweeps
    resume.  Everything runs on the orchestrating domain and consumes
    no randomness, so results are byte-identical for every [--jobs]
    value. *)

type params = {
  wmax : int;  (** ceiling for second-weight escalations (default 64) *)
  sweeps : int;  (** maximum alpha coordinate-descent sweeps (default 12) *)
  levels : int;
      (** alpha grid resolution: splits are [k / levels] for
          [k = 0..levels] (default 4) *)
  max_bumps : int;
      (** congestion-driven second-weight escalations allowed when a
          sweep stalls (default 12) *)
  second : bool;
      (** [false] disables the second system entirely: every split is
          pinned to [1.] and the result is byte-identical to evaluating
          the first weight setting alone (the {!Engine.Evaluator.mlu_of}
          one-shot) — the degenerate-mode equivalence the test suite
          asserts (default [true]) *)
}

val default_params : params

type result = {
  weights : int array;  (** system 1, exactly the input setting *)
  weights2 : int array;  (** system 2 after any congestion bumps *)
  splits : float array;
      (** per-demand fraction routed on system 1, parallel to
          [demands] *)
  demands : Network.demand array;
      (** the aggregated demand list the splits index *)
  mlu : float;  (** canonical engine MLU of the returned configuration *)
  initial_mlu : float;  (** MLU with every split at [1.] (system 1 only) *)
  evals : int;  (** candidate split evaluations performed *)
  sweeps_run : int;
  moves : int;  (** accepted split moves *)
  bumps : int;  (** second-weight escalations taken *)
}

val optimize_ctx :
  Obs.Ctx.t ->
  ?params:params ->
  ?init2:int array ->
  Netgraph.Digraph.t ->
  int array ->
  Network.demand array ->
  result
(** [optimize_ctx ctx g w1 demands] optimizes splits and the second
    weight system on top of the fixed first setting [w1] (typically a
    {!Local_search} solution; OMW never moves it, so the result is
    never worse than [w1] alone — if the descent cannot beat the
    all-on-system-1 start it returns that start).  [init2] seeds the
    second system (default: unit weights, the hop-count SPF).  The
    context's tracer records one ["omw:descent"] span with
    ["omw:sweep"] and ["omw:bump"] events inside; the deadline is
    honored at sweep granularity.  Demands are aggregated first; the
    returned [splits] is parallel to the returned [demands].
    @raise Engine.Evaluator.Unroutable if some demand is unroutable. *)
