open Netgraph

type demand = { src : int; dst : int; size : float }

type t = { graph : Digraph.t; demands : demand array }

let demand src dst size =
  if src = dst then invalid_arg "Network.demand: src = dst";
  if not (size > 0.) then invalid_arg "Network.demand: size must be positive";
  { src; dst; size }

let make graph demands =
  let n = Digraph.node_count graph in
  Array.iter
    (fun d ->
      if d.src < 0 || d.src >= n || d.dst < 0 || d.dst >= n then
        invalid_arg "Network.make: demand endpoint outside graph")
    demands;
  { graph; demands }

let total_demand t = Array.fold_left (fun acc d -> acc +. d.size) 0. t.demands

let aggregate demands =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun d ->
      let key = (d.src, d.dst) in
      let cur = try Hashtbl.find tbl key with Not_found -> 0. in
      Hashtbl.replace tbl key (cur +. d.size))
    demands;
  let out =
    Hashtbl.fold (fun (src, dst) size acc -> { src; dst; size } :: acc) tbl []
  in
  (* Deterministic order for reproducibility. *)
  let out = List.sort (fun a b -> compare (a.src, a.dst) (b.src, b.dst)) out in
  Array.of_list out

let targets t =
  List.sort_uniq compare (Array.to_list (Array.map (fun d -> d.dst) t.demands))

let sources_for t target =
  Array.to_list t.demands
  |> List.filter_map (fun d -> if d.dst = target then Some d.src else None)
  |> List.sort_uniq compare

let to_commodities demands =
  Array.map (fun d -> (d.src, d.dst, d.size)) demands

let split_demands ~parts demands =
  if parts < 1 then invalid_arg "Network.split_demands: parts < 1";
  Array.concat
    (Array.to_list
       (Array.map
          (fun d ->
            Array.make parts { d with size = d.size /. float_of_int parts })
          demands))

let is_routable t =
  Array.for_all
    (fun d -> (Paths.reachable t.graph ~source:d.src).(d.dst))
    t.demands

let pp_demand ppf d =
  Format.fprintf ppf "%d->%d:%g" d.src d.dst d.size
