(** Single-link-failure analysis.

    The paper closes by asking for TE that reacts to network changes
    (§8); this module provides the measurement side: how does a weight
    (+ waypoint) setting behave when one link fails and OSPF/ECMP
    reconverges on the surviving topology?

    A failed link is modelled by removal (both the link and, with
    [fail_pairs], its reverse twin, matching fiber cuts on bidirected
    ISP links).  Demands whose (segment) paths become disconnected are
    reported separately rather than folded into the MLU. *)

type outcome = {
  edge : int;  (** the failed edge id (in the original graph) *)
  mlu : float;  (** MLU after ECMP reconvergence, [nan] if disconnected *)
  disconnected : int;  (** demands with no surviving route *)
}

val without_edges : Netgraph.Digraph.t -> int list -> Netgraph.Digraph.t * int array
(** The graph minus the given edges, plus a mapping from new edge ids to
    original ids. *)

val twin : Netgraph.Digraph.t -> int -> int option
(** The reverse edge of equal capacity, if one exists. *)

val single_failures :
  ?fail_pairs:bool ->
  ?waypoints:Segments.setting ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  outcome list
(** One outcome per link (per unordered link pair with [fail_pairs],
    default true).  Weights and waypoints are kept fixed — this is the
    "static setting under failure" regime. *)

val worst_case :
  ?fail_pairs:bool ->
  ?waypoints:Segments.setting ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  outcome
(** The failure with the largest post-failure MLU (disconnections count
    as worse than any MLU). *)
