(** Single-link-failure analysis.

    The paper closes by asking for TE that reacts to network changes
    (§8); this module provides the measurement side: how does a weight
    (+ waypoint) setting behave when one link fails and OSPF/ECMP
    reconverges on the surviving topology?

    A failed link is modelled by removal (both the link and, with
    [fail_pairs], its reverse twin, matching fiber cuts on bidirected
    ISP links).  Demands whose (segment) paths become disconnected are
    reported separately rather than folded into the MLU.

    Two evaluation paths exist.  The default sweep drives one persistent
    {!Engine.Evaluator} and models each failure as
    {!Engine.Evaluator.disable_edge} (infinite weight) probed and undone
    through the engine's move protocol, so only the destinations the
    failed link actually touched are repaired per case.
    {!single_failures_rebuild} keeps the historical
    rebuild-the-subgraph path as a cross-checking oracle. *)

type outcome = {
  edge : int;  (** the failed edge id (in the original graph) *)
  mlu : float;  (** MLU after ECMP reconvergence, [nan] if disconnected *)
  disconnected : int;  (** demands with no surviving route *)
}

val without_edges : Netgraph.Digraph.t -> int list -> Netgraph.Digraph.t * int array
(** The graph minus the given edges, plus a mapping from new edge ids to
    original ids. *)

val twin : Netgraph.Digraph.t -> int -> int option
(** The reverse edge of equal capacity, if one exists. *)

val failure_groups :
  ?fail_pairs:bool -> Netgraph.Digraph.t -> (int * int list) list
(** The sweep cases, in deterministic edge-id order: [(label, removed)]
    with [label] the lowest removed edge id.  With [fail_pairs] (default
    true) a link and its reverse twin form one case. *)

val single_failures_ctx :
  Obs.Ctx.t ->
  ?fail_pairs:bool ->
  ?waypoints:Segments.setting ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  outcome list
(** One outcome per link (per unordered link pair with [fail_pairs],
    default true).  Weights and waypoints are kept fixed — this is the
    "static setting under failure" regime.  Evaluates through one
    persistent engine evaluator (edge-removal invalidation, no graph
    rebuilds); the context's stats collect its counters, including one
    {!Engine.Stats.record_scenario} tick per case.  The sweep is
    recorded as one ["fail:sweep"] span with a ["cases"] attribute, and
    the metrics count [fail.cases] / [fail.disconnecting]. *)

val single_failures :
  ?stats:Engine.Stats.t ->
  ?fail_pairs:bool ->
  ?waypoints:Segments.setting ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  outcome list
(** Deprecated optional-argument shim over {!single_failures_ctx}. *)

val rebuild_outcome :
  ?waypoints:Segments.setting ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  removed:int list ->
  float * int
(** [(mlu, disconnected)] of the static setting on the graph minus the
    [removed] edges, computed on a freshly rebuilt subgraph with fresh
    ECMP state.  The per-arbitrary-failure-set oracle the scenario
    sweep's engine path is validated (and benchmarked) against. *)

val single_failures_rebuild :
  ?fail_pairs:bool ->
  ?waypoints:Segments.setting ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  outcome list
(** The historical per-case graph-rebuild evaluation (build the
    surviving subgraph, fresh ECMP state).  Same cases, same order, same
    outcomes as {!single_failures} — kept as its test oracle and as the
    baseline the robustness bench measures the engine path against. *)

val compare_severity : outcome -> outcome -> int
(** Total "how bad" order: any disconnection outranks any MLU, more
    disconnected demands outrank fewer, and between connected outcomes
    MLUs compare numerically with [nan] (defensively) above every
    number.  Never relies on a raw float compare against [nan]. *)

val worse : outcome -> outcome -> outcome
(** The more severe of the two under {!compare_severity}; ties keep the
    first argument. *)

val worst_case_ctx :
  Obs.Ctx.t ->
  ?fail_pairs:bool ->
  ?waypoints:Segments.setting ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  outcome
(** The most severe single-failure outcome under {!compare_severity}
    (disconnections count as worse than any MLU; ties keep the earliest
    case).  Runs {!single_failures_ctx} under the hood, so the same
    spans and metrics are recorded. *)

val worst_case :
  ?fail_pairs:bool ->
  ?waypoints:Segments.setting ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  outcome
(** Deprecated optional-argument shim over {!worst_case_ctx}. *)
