open Netgraph

type ec = { node : float array; edge : float array; kept : bool array }

let effective_capacities ?(prune = true) g ~usable ~source ~target =
  ignore source;
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  if Array.length usable <> m then
    invalid_arg "Lwo_apx.effective_capacities: usable length mismatch";
  let in_dag e = usable.(e) > 1e-12 in
  let order = Paths.topo_order g ~keep:in_dag in
  let node = Array.make n 0. in
  let edge = Array.make m 0. in
  let kept = Array.make m false in
  node.(target) <- infinity;
  (* Reverse topological order: children before parents. *)
  for i = n - 1 downto 0 do
    let v = order.(i) in
    if v <> target then begin
      let outs =
        let acc = ref [] in
        Digraph.iter_out g v (fun e -> if in_dag e then acc := e :: !acc);
        Array.of_list (List.rev !acc)
      in
      let deg = Array.length outs in
      if deg > 0 then begin
        (* Effective capacity of each outgoing DAG link is already known
           (its head is later in the topological order). *)
        let ecs = Array.map (fun e -> (e, edge.(e))) outs in
        Array.sort (fun (_, a) (_, b) -> compare b a) ecs;
        if prune then begin
          (* Line 7: j* = argmax_j j * ec(l_j) over the sorted prefix;
             ties go to the larger j (splitting), matching the paper's
             tie-break in Figure 3. *)
          let jstar = ref 1 and best = ref (snd ecs.(0)) in
          for j = 2 to deg do
            let v = float_of_int j *. snd ecs.(j - 1) in
            if v >= !best -. 1e-12 then begin
              jstar := j;
              best := max !best v
            end
          done;
          node.(v) <- float_of_int !jstar *. snd ecs.(!jstar - 1);
          for j = 0 to !jstar - 1 do
            kept.(fst ecs.(j)) <- true
          done
        end
        else begin
          (* Ablation: split over every DAG out-link. *)
          node.(v) <- float_of_int deg *. snd ecs.(deg - 1);
          Array.iter (fun (e, _) -> kept.(e) <- true) ecs
        end
      end
    end;
    (* Effective capacity of incoming DAG links of v (Definition 5.1). *)
    Digraph.iter_in g v (fun e ->
        if in_dag e then edge.(e) <- min usable.(e) node.(v))
  done;
  { node; edge; kept }

let weights_for_dag g ~keep ~target =
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let order = Paths.topo_order g ~keep in
  let pot = Array.make n 0. in
  (* Reverse topological pass: d(v) = 1 + max over kept children. *)
  for i = n - 1 downto 0 do
    let v = order.(i) in
    if v <> target then begin
      let best = ref neg_infinity in
      Digraph.iter_out g v (fun e ->
          if keep e then best := max !best pot.(Digraph.dst g e));
      if !best > neg_infinity then pot.(v) <- 1. +. !best
    end
  done;
  let max_pot = Array.fold_left max 0. pot in
  let big = (2. *. max_pot) +. float_of_int n +. 1. in
  Array.init m (fun e ->
      if keep e then pot.(Digraph.src g e) -. pot.(Digraph.dst g e) else big)

type result = {
  weights : Weights.t;
  es_flow_value : float;
  max_flow_value : float;
}

let solve ?(prune = true) g ~source ~target =
  let f = Maxflow.acyclic_max_flow g ~source ~target in
  if f.Maxflow.value <= 0. then
    failwith "Lwo_apx.solve: target unreachable from source";
  let ec = effective_capacities ~prune g ~usable:f.Maxflow.on_edge ~source ~target in
  let keep e = ec.kept.(e) in
  let weights = weights_for_dag g ~keep ~target in
  { weights; es_flow_value = ec.node.(source); max_flow_value = f.Maxflow.value }

let approximation_ratio r = r.max_flow_value /. r.es_flow_value

let solve_ctx (ctx : Obs.Ctx.t) ?prune g ~source ~target =
  Obs.Ctx.span ctx "lwo:apx" (fun () ->
      let r = solve ?prune g ~source ~target in
      Obs.Metrics.gauge ctx.Obs.Ctx.metrics "lwo.apx_ratio"
        (approximation_ratio r);
      r)

let uniform_optimal_weights g ~source ~target =
  (* Unit-capacity max flow is integral (augmenting paths carry 1), so
     its positive edges form |P| link-disjoint paths (Menger). *)
  let unit_g = Digraph.with_capacities g (Array.make (Digraph.edge_count g) 1.) in
  let f = Maxflow.acyclic_max_flow unit_g ~source ~target in
  if f.Maxflow.value <= 0. then
    failwith "Lwo_apx.uniform_optimal_weights: target unreachable";
  let keep e = f.Maxflow.on_edge.(e) > 0.5 in
  weights_for_dag g ~keep ~target

let widest_path_weights g ~source ~target =
  let f = Maxflow.acyclic_max_flow g ~source ~target in
  if f.Maxflow.value <= 0. then
    failwith "Lwo_apx.widest_path_weights: target unreachable";
  let paths = Maxflow.decompose g ~source ~target f in
  let bottleneck p =
    List.fold_left (fun acc e -> min acc (Digraph.cap g e)) infinity p
  in
  let widest =
    List.fold_left
      (fun acc (_, p) ->
        match acc with
        | None -> Some p
        | Some best -> if bottleneck p > bottleneck best then Some p else acc)
      None paths
  in
  let path = match widest with Some p -> p | None -> assert false in
  let on_path = Array.make (Digraph.edge_count g) false in
  List.iter (fun e -> on_path.(e) <- true) path;
  let n = float_of_int (Digraph.node_count g) in
  Array.init (Digraph.edge_count g) (fun e -> if on_path.(e) then 1. else n)
