open Netgraph

let reachable_pairs ?(exclude_stubs = false) g =
  let n = Digraph.node_count g in
  (* Demands touching a degree-1 stub node are carried on its pendant
     link by every routing scheme, so after MCF rescaling they pin the
     MLU of all algorithms to 1 and hide the comparison; excluding them
     matches the backbone-to-backbone traffic of the paper's matrices. *)
  let ok v = (not exclude_stubs) || Digraph.out_degree g v > 1 in
  let pairs = ref [] in
  for s = n - 1 downto 0 do
    if ok s then begin
      let r = Paths.reachable g ~source:s in
      for t = n - 1 downto 0 do
        if s <> t && ok t && r.(t) then pairs := (s, t) :: !pairs
      done
    end
  done;
  Array.of_list !pairs

let select_pairs ?(exclude_stubs = true) ~seed ~frac g =
  if not (frac > 0. && frac <= 1.) then
    invalid_arg "Demand_gen.select_pairs: frac must be in (0, 1]";
  let st = Random.State.make [| seed; 0xd6 |] in
  let pairs = reachable_pairs ~exclude_stubs g in
  let pairs = if Array.length pairs = 0 then reachable_pairs g else pairs in
  (* Fisher–Yates, then take a prefix. *)
  for i = Array.length pairs - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = pairs.(i) in
    pairs.(i) <- pairs.(j);
    pairs.(j) <- t
  done;
  let k = max 1 (int_of_float (frac *. float_of_int (Array.length pairs))) in
  Array.sub pairs 0 k

let scale_to_opt ?epsilon g demands =
  let comms =
    Array.map
      (fun (d : Network.demand) ->
        { Mcf.src = d.Network.src; dst = d.Network.dst; demand = d.Network.size })
      demands
  in
  let opt = Mcf.opt_mlu ?epsilon g comms in
  let scaled =
    Array.map (fun d -> { d with Network.size = d.Network.size /. opt }) demands
  in
  (scaled, opt)

let mcf_synthetic ?epsilon ?(frac = 0.2) ?flows_per_pair ?exclude_stubs ~seed g =
  let st = Random.State.make [| seed; 0xac |] in
  let pairs = select_pairs ?exclude_stubs ~seed ~frac g in
  let base =
    Array.map
      (fun (s, t) ->
        { Network.src = s; dst = t; size = 0.5 +. Random.State.float st 1. })
      pairs
  in
  let scaled, _ = scale_to_opt ?epsilon g base in
  let parts =
    match flows_per_pair with
    | Some p -> p
    | None -> max 1 (Digraph.edge_count g / 4)
  in
  Network.split_demands ~parts scaled

let gravity ?epsilon ?(alpha = 1.2) ?(flows_per_pair = 1) ~seed g =
  let st = Random.State.make [| seed; 0x9a |] in
  let n = Digraph.node_count g in
  (* Pareto(alpha) node masses give the heavy skew of real matrices. *)
  let mass =
    Array.init n (fun _ ->
        (1. -. Random.State.float st 0.999) ** (-1. /. alpha))
  in
  let pairs = reachable_pairs g in
  let base =
    Array.map
      (fun (s, t) -> { Network.src = s; dst = t; size = mass.(s) *. mass.(t) })
      pairs
  in
  let scaled, _ = scale_to_opt ?epsilon g base in
  Network.split_demands ~parts:flows_per_pair scaled
