(** Exact waypoint optimization as a MILP ("ILP Waypoints" of Figure 5).

    With a fixed weight setting the ECMP unit-load vector of every
    (source, destination) pair is a constant, so choosing at most one
    waypoint per demand is a linear assignment problem:

    minimize U subject to, per demand i, sum_w z_iw = 1 (w ranges over
    "none" and every candidate waypoint), and per link e,
    sum_iw load_iw(e) z_iw <= U c_e, with z binary.

    This matches the paper's WPO-with-fixed-weights MILP and is solved
    exactly by {!Linprog.Milp} (branch and bound). *)

type t = {
  waypoints : Segments.setting;  (** ordered waypoint list per demand *)
  mlu : float;
  exact : bool;  (** false when the node limit stopped the search early *)
  nodes_explored : int;
}

val solve_ctx :
  Obs.Ctx.t ->
  ?max_nodes:int ->
  ?candidates:int list ->
  ?max_waypoints:int ->
  ?warm:bool ->
  ?prune:Prune.spec ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  t
(** The context-taking entry point.  [candidates] restricts the waypoint
    universe (default: every node); [prune] (default off) intersects it
    further with the {!Prune} pass's per-demand candidate lists before
    any z variable is created — the MILP shrinks, the warm-start greedy
    scans the same pruned lists, and the [candidates_pruned] /
    [candidates_kept] stats counters report the reduction.
    [max_waypoints] is the per-demand
    sequence-length cap W (default 1; options grow as candidates^W, so
    W >= 2 is for small instances).  [max_nodes] bounds the
    branch-and-bound tree (default 50_000).  [warm] (default true)
    toggles parent-basis warm starts in the branch and bound.  The
    context's stats receive MILP node and LP effort counters
    ({!Engine.Stats.record_milp}); the tracer records one ["milp:wpo"]
    root span with ["milp:warm-start"] (the GreedyWPO incumbent) and
    ["milp:branch-and-bound"] nested inside, plus per-node ["milp:node"]
    and per-solve ["lp:solve"]/["lp:factor"] spans from the LP layer;
    the metrics count [milp.nodes] and [milp.lp_solves].
    @raise Ecmp.Unroutable on an unroutable demand. *)

val solve :
  ?max_nodes:int ->
  ?candidates:int list ->
  ?max_waypoints:int ->
  ?warm:bool ->
  ?prune:Prune.spec ->
  ?stats:Engine.Stats.t ->
  Netgraph.Digraph.t ->
  Weights.t ->
  Network.demand array ->
  t
(** Deprecated optional-argument shim over {!solve_ctx}. *)
