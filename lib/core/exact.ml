open Netgraph

exception Too_large of string

type enum_meta = { space : float; visited : int; truncated : bool }

(* The settings count k^m is computed in floating point on purpose: for
   the instance sizes where enumeration is hopeless anyway, an int power
   would silently wrap (e.g. 3^41 > 2^63) and could slip past the cap.
   A float comparison degrades to [infinity > cap] instead, which is
   always caught. *)
let iter_weight_settings ?(allow_truncate = false) ~domain ~m ~cap f =
  let k = List.length domain in
  if k = 0 then invalid_arg "Exact: weight domain is empty";
  if cap < 1 then invalid_arg "Exact: max_settings must be >= 1";
  let space = float_of_int k ** float_of_int m in
  if space > float_of_int cap && not allow_truncate then
    raise
      (Too_large
         (Printf.sprintf "Exact: %d^%d weight settings exceeds cap %d" k m cap));
  let dom = Array.of_list domain in
  let w = Array.make m dom.(0) in
  let idx = Array.make m 0 in
  let rec next pos =
    if pos >= m then false
    else if idx.(pos) + 1 < k then begin
      idx.(pos) <- idx.(pos) + 1;
      w.(pos) <- dom.(idx.(pos));
      true
    end
    else begin
      idx.(pos) <- 0;
      w.(pos) <- dom.(0);
      next (pos + 1)
    end
  in
  let visited = ref 0 in
  let continue = ref true in
  while !continue do
    f w;
    incr visited;
    continue := !visited < cap && next 0
  done;
  { space; visited = !visited; truncated = float_of_int !visited < space }

let lwo ?(weight_domain = [ 1; 2; 3 ]) ?(max_settings = 2_000_000)
    ?allow_truncate g demands =
  let m = Digraph.edge_count g in
  let demands = Network.aggregate demands in
  let best_w = ref None and best = ref infinity in
  let meta =
    iter_weight_settings ?allow_truncate ~domain:weight_domain ~m
      ~cap:max_settings (fun w ->
        let mlu = Ecmp.mlu_of g (Weights.of_ints w) demands in
        if mlu < !best -. 1e-12 then begin
          best := mlu;
          best_w := Some (Array.copy w)
        end)
  in
  match !best_w with
  | Some w -> ((w, !best), meta)
  | None -> assert false

(* Branch and bound over per-demand waypoint choices.  [ub] prunes
   against an externally known bound (used by [joint]). *)
let wpo_bb g weights demands ~ub =
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let ctx = Ecmp.make g weights in
  let k = Array.length demands in
  let loads = Array.make m 0. in
  let best = ref ub and best_assign = ref None in
  let assign = Array.make k None in
  let apply sign (s : Ecmp.sparse) scale =
    for i = 0 to Array.length s.Ecmp.edges - 1 do
      let e = s.Ecmp.edges.(i) in
      loads.(e) <- loads.(e) +. (sign *. scale *. s.Ecmp.flows.(i))
    done
  in
  let partial_mlu () = Ecmp.mlu g loads in
  let segments d w =
    let s = d.Network.src and t = d.Network.dst in
    match w with
    | None -> [ Ecmp.unit_load ctx ~src:s ~dst:t ]
    | Some wp ->
      [ Ecmp.unit_load ctx ~src:s ~dst:wp; Ecmp.unit_load ctx ~src:wp ~dst:t ]
  in
  let rec branch i =
    if partial_mlu () < !best -. 1e-12 then begin
      if i = k then begin
        best := partial_mlu ();
        best_assign := Some (Array.copy assign)
      end
      else begin
        let d = demands.(i) in
        let options =
          None
          :: List.filter_map
               (fun w ->
                 if w = d.Network.src || w = d.Network.dst then None
                 else Some (Some w))
               (List.init n Fun.id)
        in
        List.iter
          (fun opt ->
            match segments d opt with
            | exception Ecmp.Unroutable _ -> ()
            | segs ->
              List.iter (fun s -> apply 1. s d.Network.size) segs;
              assign.(i) <- opt;
              branch (i + 1);
              List.iter (fun s -> apply (-1.) s d.Network.size) segs)
          options
      end
    end
  in
  branch 0;
  match !best_assign with
  | Some a -> Some (a, !best)
  | None -> None

let wpo g weights demands =
  match wpo_bb g weights demands ~ub:infinity with
  | Some (a, v) -> (a, v)
  | None -> assert false (* ub = infinity always yields an assignment *)

let lwo_ctx (ctx : Obs.Ctx.t) ?weight_domain ?max_settings ?allow_truncate g
    demands =
  Obs.Ctx.span ctx "exact:lwo" (fun () ->
      let r, meta = lwo ?weight_domain ?max_settings ?allow_truncate g demands in
      Obs.Metrics.incr ctx.Obs.Ctx.metrics ~by:meta.visited "exact.settings";
      (r, meta))

let wpo_ctx (ctx : Obs.Ctx.t) g weights demands =
  Obs.Ctx.span ctx "exact:wpo" (fun () -> wpo g weights demands)

let joint ?(weight_domain = [ 1; 2; 3 ]) ?(max_settings = 2_000_000)
    ?allow_truncate g demands =
  let m = Digraph.edge_count g in
  let best = ref infinity in
  let best_w = ref None and best_a = ref None in
  let meta =
    iter_weight_settings ?allow_truncate ~domain:weight_domain ~m
      ~cap:max_settings (fun w ->
        match wpo_bb g (Weights.of_ints w) demands ~ub:!best with
        | None -> ()
        | Some (a, v) ->
          best := v;
          best_w := Some (Array.copy w);
          best_a := Some a)
  in
  match (!best_w, !best_a) with
  | Some w, Some a -> ((w, a, !best), meta)
  | _ ->
    (* No weight setting beat infinity: impossible for routable demands. *)
    failwith "Exact.joint: no feasible assignment (unroutable demands?)"

let joint_ctx (ctx : Obs.Ctx.t) ?weight_domain ?max_settings ?allow_truncate g
    demands =
  Obs.Ctx.span ctx "exact:joint" (fun () ->
      let r, meta =
        joint ?weight_domain ?max_settings ?allow_truncate g demands
      in
      Obs.Metrics.incr ctx.Obs.Ctx.metrics ~by:meta.visited "exact.settings";
      (r, meta))
