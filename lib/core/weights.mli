(** Link-weight settings (Definition 3.2: the "standard" settings). *)

type t = float array
(** One positive weight per edge, indexed by edge id. *)

val unit : Netgraph.Digraph.t -> t
(** Weight 1 on every link. *)

val inverse_capacity : Netgraph.Digraph.t -> t
(** Cisco-style weights proportional to the reciprocal of capacity,
    scaled so the largest-capacity link gets weight 1
    (w_e = max_cap / cap_e). *)

val random : seed:int -> wmax:int -> Netgraph.Digraph.t -> t
(** Uniform integer weights in [1, wmax] (an "arbitrary" setting). *)

val of_ints : int array -> t

val round_to_range : wmax:int -> t -> int array
(** Scales and rounds a real weight setting onto the integer grid
    [1, wmax] used by the local search (relative order preserved up to
    rounding). *)
