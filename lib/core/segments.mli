(** Waypoint (segment) handling: turning demands-with-waypoints into
    per-segment demands (Algorithm 2, step 3). *)

type setting = int list array
(** One ordered waypoint list per demand (parallel to the demand array);
    [[]] means "route directly". *)

val none : Network.demand array -> setting

val of_single : int option array -> setting
(** Lift a one-waypoint-per-demand assignment (Algorithm 3's output). *)

val segment_endpoints : Network.demand -> int list -> (int * int) list
(** Consecutive (from, to) hops [s -> w1 -> ... -> wk -> t], with
    degenerate hops (repeated node, waypoint equal to segment head or
    final hop of zero length) removed. *)

val expand : Network.demand array -> setting -> Network.demand array
(** The demand list where each demand is replaced by one demand per
    segment (same size on every segment). *)

val count_waypoints : setting -> int
(** Total number of (non-degenerate) waypoints in use. *)

val max_waypoints : setting -> int
(** Largest per-demand waypoint count [W] in use. *)
