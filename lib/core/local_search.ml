open Netgraph

type params = {
  wmax : int;
  max_evals : int;
  seed : int;
  use_phi : bool;
  stall_limit : int;
}

let default_params =
  { wmax = 16; max_evals = 1500; seed = 1; use_phi = true; stall_limit = 60 }

type result = { weights : int array; mlu : float; phi : float; evals : int }

(* The Fortz–Thorup piecewise-linear congestion cost is owned by the
   evaluation engine; this re-export keeps the historical API. *)
let phi_cost = Engine.Evaluator.phi_cost

let evaluate g demands int_weights =
  let ev = Engine.Evaluator.create g (Weights.of_ints int_weights) in
  Engine.Evaluator.set_commodities ev (Network.to_commodities demands);
  Engine.Evaluator.evaluate ev

let optimize ?stats ?(params = default_params) ?init g demands =
  if params.wmax < 2 then invalid_arg "Local_search.optimize: wmax < 2";
  let m = Digraph.edge_count g in
  let demands = Network.aggregate demands in
  let st = Random.State.make [| params.seed; 0x05f |] in
  let init =
    match init with
    | Some w ->
      if Array.length w <> m then
        invalid_arg "Local_search.optimize: init length mismatch";
      Array.copy w
    | None -> Weights.round_to_range ~wmax:params.wmax (Weights.inverse_capacity g)
  in
  (* One evaluator serves the whole search; candidate moves are probed
     as incremental single-weight updates and rolled back via the undo
     trail rather than rebuilding the ECMP state per candidate. *)
  let ev = Engine.Evaluator.create ?stats g (Weights.of_ints init) in
  Engine.Evaluator.set_commodities ev (Network.to_commodities demands);
  let evals = ref 0 in
  (* Fortz–Thorup keep a hash table of already-evaluated settings; memo
     hits do not consume the evaluation budget. *)
  let memo : (int array, float * float * float array) Hashtbl.t =
    Hashtbl.create 1024
  in
  let memoize w r =
    if Hashtbl.length memo < 200_000 then Hashtbl.replace memo (Array.copy w) r
  in
  (* Evaluates the engine's current weight vector, which the caller has
     already synced to [w] (the memo key). *)
  let eval_engine w =
    incr evals;
    let mlu, phi = Engine.Evaluator.evaluate ev in
    let loads = Array.copy (Engine.Evaluator.loads ev) in
    let r = (mlu, phi, loads) in
    memoize w r;
    r
  in
  (* Probe one single-edge candidate: push the move, evaluate, undo. *)
  let probe current e wv =
    match Hashtbl.find_opt memo current with
    | Some r -> r
    | None ->
      Engine.Evaluator.set_weight ev ~edge:e (float_of_int wv);
      let r = eval_engine current in
      Engine.Evaluator.undo ev;
      r
  in
  let objective (mlu, phi) = if params.use_phi then phi else mlu in
  let current = init in
  let cur_mlu, cur_phi, cur_loads =
    match Hashtbl.find_opt memo current with
    | Some r -> r
    | None -> eval_engine current
  in
  let cur_obj = ref (objective (cur_mlu, cur_phi)) in
  let cur_loads = ref cur_loads in
  let best_w = ref (Array.copy current) in
  let best_mlu = ref cur_mlu and best_phi = ref cur_phi in
  let stall = ref 0 in
  let pick_edge () =
    (* Bias towards congested links: the argmax-utilization link with
       probability ~0.55, one of five random samples' most utilized with
       0.25, uniform otherwise. *)
    let r = Random.State.float st 1. in
    if r < 0.55 then begin
      let arg = ref 0 and best = ref neg_infinity in
      for e = 0 to m - 1 do
        let u = !cur_loads.(e) /. Digraph.cap g e in
        if u > !best then begin
          best := u;
          arg := e
        end
      done;
      !arg
    end
    else if r < 0.8 then begin
      let arg = ref (Random.State.int st m) and best = ref neg_infinity in
      for _ = 1 to 5 do
        let e = Random.State.int st m in
        let u = !cur_loads.(e) /. Digraph.cap g e in
        if u > !best then begin
          best := u;
          arg := e
        end
      done;
      !arg
    end
    else Random.State.int st m
  in
  let candidates cur =
    let cs =
      [ cur + 1; cur + 2; cur + 4; params.wmax; cur - 1; cur - 2; 1;
        1 + Random.State.int st params.wmax ]
    in
    List.sort_uniq compare
      (List.filter (fun w -> w >= 1 && w <= params.wmax && w <> cur) cs)
  in
  (* The memo means an iteration may consume no budget; the iteration
     cap prevents spinning once a tiny search space is fully explored. *)
  let iterations = ref 0 in
  let max_iterations = 20 * params.max_evals in
  while !evals < params.max_evals && !iterations < max_iterations do
    incr iterations;
    let e = pick_edge () in
    let old = current.(e) in
    let best_cand = ref None in
    List.iter
      (fun wv ->
        if !evals < params.max_evals then begin
          current.(e) <- wv;
          let mlu, phi, loads = probe current e wv in
          let obj = objective (mlu, phi) in
          if mlu < !best_mlu -. 1e-12 then begin
            best_mlu := mlu;
            best_phi := phi;
            best_w := Array.copy current
          end;
          (match !best_cand with
          | Some (o, _, _, _) when o <= obj -> ()
          | _ -> best_cand := Some (obj, wv, mlu, loads))
        end)
      (candidates old);
    current.(e) <- old;
    let accept wv obj loads =
      current.(e) <- wv;
      Engine.Evaluator.set_weight ev ~edge:e (float_of_int wv);
      Engine.Evaluator.commit ev;
      cur_obj := obj;
      cur_loads := loads
    in
    (match !best_cand with
    | Some (obj, wv, _mlu, loads) when obj < !cur_obj -. 1e-12 ->
      accept wv obj loads;
      stall := 0
    | Some (obj, wv, _mlu, loads)
      when obj <= !cur_obj +. 1e-12 && Random.State.float st 1. < 0.3 ->
      (* Sideways move to escape plateaus. *)
      accept wv obj loads
    | _ -> incr stall);
    if !stall >= params.stall_limit && !evals < params.max_evals then begin
      (* Perturbation: restart the walk from the best solution with a
         random kick on ~10% of the links. *)
      Array.blit !best_w 0 current 0 m;
      let kicks = max 1 (m / 10) in
      for _ = 1 to kicks do
        current.(Random.State.int st m) <- 1 + Random.State.int st params.wmax
      done;
      Engine.Evaluator.set_weights ev (Weights.of_ints current);
      Engine.Evaluator.commit ev;
      let mlu, phi, loads =
        match Hashtbl.find_opt memo current with
        | Some r -> r
        | None -> eval_engine current
      in
      if mlu < !best_mlu -. 1e-12 then begin
        best_mlu := mlu;
        best_phi := phi;
        best_w := Array.copy current
      end;
      cur_obj := objective (mlu, phi);
      cur_loads := loads;
      stall := 0
    end
  done;
  { weights = !best_w; mlu = !best_mlu; phi = !best_phi; evals = !evals }
