open Netgraph

type params = {
  wmax : int;
  max_evals : int;
  seed : int;
  use_phi : bool;
  stall_limit : int;
}

let default_params =
  { wmax = 16; max_evals = 1500; seed = 1; use_phi = true; stall_limit = 60 }

type result = { weights : int array; mlu : float; phi : float; evals : int }

(* Fortz–Thorup piecewise-linear congestion cost.  phi_hat is the
   integral of the slope function 1/3/10/70/500/5000 over utilization. *)
let breakpoints = [| 0.; 1. /. 3.; 2. /. 3.; 0.9; 1.; 1.1 |]

let slopes = [| 1.; 3.; 10.; 70.; 500.; 5000. |]

let phi_hat u =
  let acc = ref 0. in
  let i = ref 0 in
  let continue = ref true in
  while !continue && !i < 6 do
    let lo = breakpoints.(!i) in
    let hi = if !i = 5 then infinity else breakpoints.(!i + 1) in
    if u > hi then acc := !acc +. (slopes.(!i) *. (hi -. lo))
    else begin
      acc := !acc +. (slopes.(!i) *. (u -. lo));
      continue := false
    end;
    incr i
  done;
  !acc

let phi_cost g loads =
  let total = ref 0. in
  for e = 0 to Digraph.edge_count g - 1 do
    let c = Digraph.cap g e in
    total := !total +. (c *. phi_hat (loads.(e) /. c))
  done;
  !total

let evaluate g demands int_weights =
  let w = Weights.of_ints int_weights in
  let ctx = Ecmp.make g w in
  let loads = Ecmp.loads ctx demands in
  (Ecmp.mlu g loads, phi_cost g loads)

let optimize ?(params = default_params) ?init g demands =
  if params.wmax < 2 then invalid_arg "Local_search.optimize: wmax < 2";
  let m = Digraph.edge_count g in
  let demands = Network.aggregate demands in
  let st = Random.State.make [| params.seed; 0x05f |] in
  let init =
    match init with
    | Some w ->
      if Array.length w <> m then
        invalid_arg "Local_search.optimize: init length mismatch";
      Array.copy w
    | None -> Weights.round_to_range ~wmax:params.wmax (Weights.inverse_capacity g)
  in
  let evals = ref 0 in
  (* Fortz–Thorup keep a hash table of already-evaluated settings; memo
     hits do not consume the evaluation budget. *)
  let memo : (int array, float * float * float array) Hashtbl.t =
    Hashtbl.create 1024
  in
  let eval w =
    match Hashtbl.find_opt memo w with
    | Some r -> r
    | None ->
      incr evals;
      let wts = Weights.of_ints w in
      let ctx = Ecmp.make g wts in
      let loads = Ecmp.loads ctx demands in
      let mlu = Ecmp.mlu g loads in
      let phi = phi_cost g loads in
      let r = (mlu, phi, loads) in
      if Hashtbl.length memo < 200_000 then Hashtbl.replace memo (Array.copy w) r;
      r
  in
  let objective (mlu, phi) = if params.use_phi then phi else mlu in
  let current = init in
  let cur_mlu, cur_phi, cur_loads = eval current in
  let cur_obj = ref (objective (cur_mlu, cur_phi)) in
  let cur_loads = ref cur_loads in
  let best_w = ref (Array.copy current) in
  let best_mlu = ref cur_mlu and best_phi = ref cur_phi in
  let stall = ref 0 in
  let pick_edge () =
    (* Bias towards congested links: the argmax-utilization link with
       probability ~0.55, one of five random samples' most utilized with
       0.25, uniform otherwise. *)
    let r = Random.State.float st 1. in
    if r < 0.55 then begin
      let arg = ref 0 and best = ref neg_infinity in
      for e = 0 to m - 1 do
        let u = !cur_loads.(e) /. Digraph.cap g e in
        if u > !best then begin
          best := u;
          arg := e
        end
      done;
      !arg
    end
    else if r < 0.8 then begin
      let arg = ref (Random.State.int st m) and best = ref neg_infinity in
      for _ = 1 to 5 do
        let e = Random.State.int st m in
        let u = !cur_loads.(e) /. Digraph.cap g e in
        if u > !best then begin
          best := u;
          arg := e
        end
      done;
      !arg
    end
    else Random.State.int st m
  in
  let candidates cur =
    let cs =
      [ cur + 1; cur + 2; cur + 4; params.wmax; cur - 1; cur - 2; 1;
        1 + Random.State.int st params.wmax ]
    in
    List.sort_uniq compare
      (List.filter (fun w -> w >= 1 && w <= params.wmax && w <> cur) cs)
  in
  (* The memo means an iteration may consume no budget; the iteration
     cap prevents spinning once a tiny search space is fully explored. *)
  let iterations = ref 0 in
  let max_iterations = 20 * params.max_evals in
  while !evals < params.max_evals && !iterations < max_iterations do
    incr iterations;
    let e = pick_edge () in
    let old = current.(e) in
    let best_cand = ref None in
    List.iter
      (fun wv ->
        if !evals < params.max_evals then begin
          current.(e) <- wv;
          let mlu, phi, loads = eval current in
          let obj = objective (mlu, phi) in
          if mlu < !best_mlu -. 1e-12 then begin
            best_mlu := mlu;
            best_phi := phi;
            best_w := Array.copy current
          end;
          (match !best_cand with
          | Some (o, _, _, _) when o <= obj -> ()
          | _ -> best_cand := Some (obj, wv, mlu, loads))
        end)
      (candidates old);
    current.(e) <- old;
    (match !best_cand with
    | Some (obj, wv, _mlu, loads) when obj < !cur_obj -. 1e-12 ->
      current.(e) <- wv;
      cur_obj := obj;
      cur_loads := loads;
      stall := 0
    | Some (obj, wv, _mlu, loads)
      when obj <= !cur_obj +. 1e-12 && Random.State.float st 1. < 0.3 ->
      (* Sideways move to escape plateaus. *)
      current.(e) <- wv;
      cur_obj := obj;
      cur_loads := loads
    | _ -> incr stall);
    if !stall >= params.stall_limit && !evals < params.max_evals then begin
      (* Perturbation: restart the walk from the best solution with a
         random kick on ~10% of the links. *)
      Array.blit !best_w 0 current 0 m;
      let kicks = max 1 (m / 10) in
      for _ = 1 to kicks do
        current.(Random.State.int st m) <- 1 + Random.State.int st params.wmax
      done;
      let mlu, phi, loads = eval current in
      if mlu < !best_mlu -. 1e-12 then begin
        best_mlu := mlu;
        best_phi := phi;
        best_w := Array.copy current
      end;
      cur_obj := objective (mlu, phi);
      cur_loads := loads;
      stall := 0
    end
  done;
  { weights = !best_w; mlu = !best_mlu; phi = !best_phi; evals = !evals }
