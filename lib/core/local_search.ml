open Netgraph

type params = {
  wmax : int;
  max_evals : int;
  seed : int;
  use_phi : bool;
  stall_limit : int;
}

let default_params =
  { wmax = 16; max_evals = 1500; seed = 1; use_phi = true; stall_limit = 60 }

type result = { weights : int array; mlu : float; phi : float; evals : int }

(* The Fortz–Thorup piecewise-linear congestion cost is owned by the
   evaluation engine; this re-export keeps the historical API. *)
let phi_cost = Engine.Evaluator.phi_cost

let evaluate g demands int_weights =
  let ev = Engine.Evaluator.create g (Weights.of_ints int_weights) in
  Engine.Evaluator.set_commodities ev (Network.to_commodities demands);
  Engine.Evaluator.evaluate ev

(* One seeded walk.  [demands] is already aggregated.

   The neighborhood probes fan out over the context's pool: candidate
   weight values for the picked edge are gated by the budget/memo rules
   sequentially (consuming no randomness), the cache misses are then
   scored concurrently — each worker on its persistent cached clone
   (see {!Engine.Evaluator.Clones}) — and the tracker updates replay in
   candidate order.  Accepted moves are not eagerly mirrored into the
   clones (that would put [par - 1] incremental repairs on the caller's
   critical path per accepted move); instead the committed weights are
   published to a shadow vector and each clone delta-syncs at the start
   of its next probe task, on its own domain, and only if it actually
   runs one.  A synced clone holds bitwise the same committed state as
   the main evaluator, so a probe returns the same floats no matter
   which worker runs it — the walk is bit-identical for every pool
   size, including the inline [parallelism = 1] case. *)
let run_single (ctx : Obs.Ctx.t) ~params ?init g demands =
  if params.wmax < 2 then invalid_arg "Local_search.optimize: wmax < 2";
  let pool = ctx.Obs.Ctx.pool in
  let tracer = ctx.Obs.Ctx.tracer in
  let m = Digraph.edge_count g in
  let st = Random.State.make [| params.seed; 0x05f |] in
  let init =
    match init with
    | Some w ->
      if Array.length w <> m then
        invalid_arg "Local_search.optimize: init length mismatch";
      Array.copy w
    | None -> Weights.round_to_range ~wmax:params.wmax (Weights.inverse_capacity g)
  in
  (* One evaluator serves the whole walk; candidate moves are probed
     as incremental single-weight updates and rolled back via the undo
     trail rather than rebuilding the ECMP state per candidate. *)
  let ev =
    Engine.Evaluator.create ~stats:ctx.Obs.Ctx.stats
      ~probe:(Obs.Ctx.probe ctx) g (Weights.of_ints init)
  in
  Engine.Evaluator.set_commodities ev (Network.to_commodities demands);
  let evals = ref 0 in
  (* Fortz–Thorup keep a hash table of already-evaluated settings; memo
     hits do not consume the evaluation budget. *)
  let memo : (int array, float * float * float array) Hashtbl.t =
    Hashtbl.create 1024
  in
  let memoize w r =
    if Hashtbl.length memo < 200_000 then Hashtbl.replace memo (Array.copy w) r
  in
  (* Evaluates the engine's current weight vector, which the caller has
     already synced to [w] (the memo key).  Results land in a reused
     metrics cell; only the memoized tuple and loads copy allocate. *)
  let mcell = { Engine.Evaluator.mlu = 0.; phi = 0. } in
  let eval_engine w =
    incr evals;
    Engine.Evaluator.evaluate_into ev mcell;
    let loads = Array.copy (Engine.Evaluator.loads ev) in
    let r = (mcell.Engine.Evaluator.mlu, mcell.Engine.Evaluator.phi, loads) in
    memoize w r;
    r
  in
  let objective (mlu, phi) = if params.use_phi then phi else mlu in
  let current = init in
  let cur_mlu, cur_phi, cur_loads =
    match Hashtbl.find_opt memo current with
    | Some r -> r
    | None -> eval_engine current
  in
  (* Worker clones from the context's persistent cache, synced on this
     domain once the caches are warm: the first walk pays a full copy
     per slot, later walks an incremental sync.  [parallelism] is 1
     when the walk itself runs inside a pool task (multi-restart): the
     probe map then nests inline on worker 0 (the main evaluator) and
     no clones exist at all. *)
  let par = Par.Pool.parallelism pool in
  let clones = Array.make par ev in
  for w = 1 to par - 1 do
    clones.(w) <- Engine.Evaluator.Clones.get ctx.Obs.Ctx.clones ~worker:w ~src:ev
  done;
  (* One metrics cell per worker: probe tasks write their (mlu, phi)
     into their own cell, so a probe never allocates a result tuple. *)
  let cells =
    Array.init par (fun _ -> { Engine.Evaluator.mlu = 0.; phi = 0. })
  in
  (* Lazy clone sync.  Accepted moves and perturbations publish the new
     committed weights into [shadow] and bump [version]; a worker whose
     clone is behind delta-syncs at the start of its next probe task.
     The sync cost lands on the worker's own domain — and only if that
     worker actually runs a task — instead of being paid [par - 1]
     times on the caller's critical path per accepted move.  [shadow]
     and [version] are plain (non-atomic) state: they are written by
     the orchestrating domain between fan-outs and read by workers
     inside one, and the scheduler's region submission/claim atomics
     order those accesses. *)
  let shadow =
    if par > 1 then Array.copy (Engine.Evaluator.weights ev) else [||]
  in
  let version = ref 0 in
  let synced = Array.make par 0 in
  let publish_weights () =
    if par > 1 then begin
      Array.blit (Engine.Evaluator.weights ev) 0 shadow 0 m;
      incr version
    end
  in
  let cur_obj = ref (objective (cur_mlu, cur_phi)) in
  let cur_loads = ref cur_loads in
  let best_w = ref (Array.copy current) in
  let best_mlu = ref cur_mlu and best_phi = ref cur_phi in
  let stall = ref 0 in
  let caps = Digraph.caps g in
  let pick_edge () =
    (* Bias towards congested links: the argmax-utilization link with
       probability ~0.55, one of five random samples' most utilized with
       0.25, uniform otherwise. *)
    let r = Random.State.float st 1. in
    if r < 0.55 then begin
      let arg = ref 0 and best = ref neg_infinity in
      for e = 0 to m - 1 do
        let u = !cur_loads.(e) /. caps.(e) in
        if u > !best then begin
          best := u;
          arg := e
        end
      done;
      !arg
    end
    else if r < 0.8 then begin
      let arg = ref (Random.State.int st m) and best = ref neg_infinity in
      for _ = 1 to 5 do
        let e = Random.State.int st m in
        let u = !cur_loads.(e) /. caps.(e) in
        if u > !best then begin
          best := u;
          arg := e
        end
      done;
      !arg
    end
    else Random.State.int st m
  in
  let candidates cur =
    let cs =
      [ cur + 1; cur + 2; cur + 4; params.wmax; cur - 1; cur - 2; 1;
        1 + Random.State.int st params.wmax ]
    in
    List.sort_uniq compare
      (List.filter (fun w -> w >= 1 && w <= params.wmax && w <> cur) cs)
  in
  (* The memo means an iteration may consume no budget; the iteration
     cap prevents spinning once a tiny search space is fully explored.
     The deadline is advisory and checked only here, at round
     granularity: runs without one stay deterministic. *)
  let walk_tok = Obs.Tracer.start tracer "ls:walk" in
  Obs.Tracer.attr tracer walk_tok (Obs.Attr.int "seed" params.seed);
  let iterations = ref 0 in
  let max_iterations = 20 * params.max_evals in
  while
    !evals < params.max_evals
    && !iterations < max_iterations
    && not (Obs.Ctx.expired ctx)
  do
    incr iterations;
    let e = pick_edge () in
    let old = current.(e) in
    (* Phase A: replay the sequential budget/memo gating.  A candidate
       is admitted while simulated evals remain; memo hits are free,
       misses consume one budget unit and join the probe list. *)
    let sim = ref !evals in
    let plan =
      List.filter_map
        (fun wv ->
          if !sim >= params.max_evals then None
          else begin
            current.(e) <- wv;
            match Hashtbl.find_opt memo current with
            | Some r -> Some (wv, `Memo r)
            | None ->
              incr sim;
              Some (wv, `Probe (Array.copy current))
          end)
        (candidates old)
    in
    current.(e) <- old;
    (* Phase B: score the cache misses, one pool task each, every
       worker probing on its own clone through the engine's
       set / evaluate / undo move protocol. *)
    let probes =
      Array.of_list
        (List.filter_map
           (function wv, `Probe _ -> Some wv | _, `Memo _ -> None)
           plan)
    in
    let round_tok =
      if Array.length probes > 0 then Obs.Tracer.start tracer "ls:round"
      else -1
    in
    Obs.Tracer.attr tracer round_tok
      (Obs.Attr.int "probes" (Array.length probes));
    let wall0 = Engine.Mono.now () in
    let probe_results =
      Par.Pool.map pool ~tasks:(Array.length probes) (fun ~worker i ->
          let t0 = Engine.Mono.now () in
          let evw = clones.(worker) and c = cells.(worker) in
          if worker > 0 && synced.(worker) <> !version then begin
            Engine.Evaluator.sync_weights evw shadow;
            let cs = Engine.Evaluator.stats evw in
            cs.Engine.Stats.clone_syncs <- cs.Engine.Stats.clone_syncs + 1;
            synced.(worker) <- !version
          end;
          Engine.Evaluator.set_weight evw ~edge:e (float_of_int probes.(i));
          Engine.Evaluator.evaluate_into evw c;
          let loads = Array.copy (Engine.Evaluator.loads evw) in
          Engine.Evaluator.undo evw;
          ( (c.Engine.Evaluator.mlu, c.Engine.Evaluator.phi, loads),
            worker,
            Engine.Mono.now () -. t0 ))
    in
    Obs.Tracer.finish tracer round_tok;
    if Array.length probes > 0 then begin
      Obs.Metrics.incr ctx.Obs.Ctx.metrics "ls.rounds";
      let busy = ref 0. in
      Array.iter
        (fun (_, worker, dt) ->
          busy := !busy +. dt;
          Engine.Stats.record_worker_evals (Engine.Evaluator.stats ev) ~worker 1)
        probe_results;
      Engine.Stats.record_parallel (Engine.Evaluator.stats ev) ~jobs:par
        ~tasks:(Array.length probes) ~wall:(Engine.Mono.now () -. wall0)
        ~busy:!busy
    end;
    evals := !sim;
    (* Phase C: replay the tracker updates in candidate order, exactly
       as the sequential loop would have. *)
    let best_cand = ref None in
    let next_probe = ref 0 in
    List.iter
      (fun (wv, src) ->
        let ((mlu, phi, loads) as r) =
          match src with
          | `Memo r -> r
          | `Probe key ->
            let r, _, _ = probe_results.(!next_probe) in
            incr next_probe;
            if Hashtbl.length memo < 200_000 then Hashtbl.replace memo key r;
            r
        in
        ignore (r : float * float * float array);
        current.(e) <- wv;
        let obj = objective (mlu, phi) in
        if mlu < !best_mlu -. 1e-12 then begin
          best_mlu := mlu;
          best_phi := phi;
          best_w := Array.copy current
        end;
        match !best_cand with
        | Some (o, _, _, _) when o <= obj -> ()
        | _ -> best_cand := Some (obj, wv, mlu, loads))
      plan;
    current.(e) <- old;
    let accept wv obj loads =
      current.(e) <- wv;
      Engine.Evaluator.set_weight ev ~edge:e (float_of_int wv);
      Engine.Evaluator.commit ev;
      publish_weights ();
      cur_obj := obj;
      cur_loads := loads
    in
    (match !best_cand with
    | Some (obj, wv, _mlu, loads) when obj < !cur_obj -. 1e-12 ->
      accept wv obj loads;
      Obs.Metrics.incr ctx.Obs.Ctx.metrics "ls.accepted";
      stall := 0
    | Some (obj, wv, _mlu, loads)
      when obj <= !cur_obj +. 1e-12 && Random.State.float st 1. < 0.3 ->
      (* Sideways move to escape plateaus. *)
      accept wv obj loads;
      Obs.Metrics.incr ctx.Obs.Ctx.metrics "ls.sideways"
    | _ -> incr stall);
    if !stall >= params.stall_limit && !evals < params.max_evals then begin
      (* Perturbation: restart the walk from the best solution with a
         random kick on ~10% of the links. *)
      Obs.Tracer.instant tracer "ls:perturb";
      Obs.Metrics.incr ctx.Obs.Ctx.metrics "ls.perturbations";
      Array.blit !best_w 0 current 0 m;
      let kicks = max 1 (m / 10) in
      for _ = 1 to kicks do
        current.(Random.State.int st m) <- 1 + Random.State.int st params.wmax
      done;
      let wf = Weights.of_ints current in
      Engine.Evaluator.set_weights ev wf;
      Engine.Evaluator.commit ev;
      publish_weights ();
      let mlu, phi, loads =
        match Hashtbl.find_opt memo current with
        | Some r -> r
        | None -> eval_engine current
      in
      if mlu < !best_mlu -. 1e-12 then begin
        best_mlu := mlu;
        best_phi := phi;
        best_w := Array.copy current
      end;
      cur_obj := objective (mlu, phi);
      cur_loads := loads;
      stall := 0
    end
  done;
  (* Fold the clones' cache/SPF counters into the walk's stats (fixed
     worker order) and reset them: the clones persist in the context's
     cache, so unreset counters would double-count on their next use. *)
  for w = 1 to par - 1 do
    let cs = Engine.Evaluator.stats clones.(w) in
    Engine.Stats.merge ~into:(Engine.Evaluator.stats ev) cs;
    Engine.Stats.reset cs
  done;
  Obs.Tracer.attr tracer walk_tok (Obs.Attr.int "evals" !evals);
  Obs.Tracer.attr tracer walk_tok (Obs.Attr.float "mlu" !best_mlu);
  Obs.Tracer.finish tracer walk_tok;
  { weights = !best_w; mlu = !best_mlu; phi = !best_phi; evals = !evals }

(* Restart [r] perturbs the seed by a fixed prime stride, so restart 0
   reproduces the single-walk result exactly. *)
let restart_seed params r = { params with seed = params.seed + (7919 * r) }

let params_of_ctx (ctx : Obs.Ctx.t) = function
  | Some p -> p
  | None ->
    (* Seed 0 means "unset" in a context: keep the historical default. *)
    if ctx.Obs.Ctx.seed <> 0 then
      { default_params with seed = ctx.Obs.Ctx.seed }
    else default_params

let optimize_ctx (ctx : Obs.Ctx.t) ?(restarts = 1) ?params ?init g demands =
  if restarts < 1 then invalid_arg "Local_search.optimize: restarts >= 1";
  let params = params_of_ctx ctx params in
  let demands = Network.aggregate demands in
  if restarts = 1 then run_single ctx ~params ?init g demands
  else begin
    let pool = ctx.Obs.Ctx.pool in
    let wall0 = Engine.Mono.now () in
    let jobs = Par.Pool.parallelism pool in
    (* Each restart gets a forked context: a private Stats.t (a shared
       one would race across domains) and a detached span buffer; both
       merge back in restart order, so stats totals and the exported
       trace are schedule-independent. *)
    let kids = Array.init restarts (fun _ -> Obs.Ctx.fork ctx) in
    let runs =
      Par.Pool.map pool ~tasks:restarts (fun ~worker:_ r ->
          let t0 = Engine.Mono.now () in
          let res =
            run_single kids.(r) ~params:(restart_seed params r) ?init g demands
          in
          (res, Engine.Mono.now () -. t0))
    in
    let wall = Engine.Mono.now () -. wall0 in
    let busy = Array.fold_left (fun acc (_, dt) -> acc +. dt) 0. runs in
    for r = 0 to restarts - 1 do
      Obs.Ctx.join ~key:r ~into:ctx kids.(r)
    done;
    Engine.Stats.record_parallel ctx.Obs.Ctx.stats ~jobs ~tasks:restarts ~wall
      ~busy;
    (* Best MLU wins; ties keep the lowest restart index. *)
    let best = ref None in
    Array.iter
      (fun (res, _) ->
        match !best with
        | Some b when b.mlu <= res.mlu -> ()
        | _ -> best := Some res)
      runs;
    match !best with Some r -> r | None -> assert false (* restarts >= 1 *)
  end
