(** Reconfiguration-aware re-optimization.

    The paper's closing future-work item: "TE algorithms that react to
    shifts in the traffic demand and account for reconfiguration costs"
    (§8).  Re-running the optimizers from scratch after a demand shift
    may rewrite many link weights; every OSPF weight change triggers a
    network-wide reconvergence, so operators prefer settings that are
    close to the deployed ones.

    [reoptimize] runs a budgeted variant of the HeurOSPF local search
    whose moves are restricted to at most [max_weight_changes] links
    away from the deployed setting, then re-picks waypoints greedily
    (waypoint changes are cheap — they only touch ingress segment
    stacks and are therefore not budgeted). *)

type churn = {
  weight_changes : int;  (** links whose weight differs from deployed *)
  waypoint_changes : int;  (** demands whose waypoint list changed *)
}

val churn_between :
  deployed_weights:int array ->
  deployed_waypoints:Segments.setting ->
  int array ->
  Segments.setting ->
  churn

type result = {
  weights : int array;
  waypoints : Segments.setting;
  mlu : float;
  churn : churn;
}

val reoptimize_ctx :
  Obs.Ctx.t ->
  ?ls_params:Local_search.params ->
  ?max_weight_changes:int ->
  ?frozen_edges:int list ->
  ?ev:Engine.Evaluator.t ->
  ?prune:Prune.spec ->
  ?repick_waypoints:bool ->
  deployed_weights:int array ->
  deployed_waypoints:Segments.setting ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  result
(** The context-taking entry point: re-optimize for (shifted) [demands]
    starting from the deployed setting.  [max_weight_changes] defaults
    to [max 1 (|E| / 10)].  The result's MLU is never worse than keeping
    the deployed setting as-is.  The budgeted weight search is recorded
    as a ["reopt:weights"] span and the greedy waypoint re-pick as
    ["reopt:waypoints"]; a context deadline stops the weight search
    early (the waypoint step always runs).  The context's pool
    parallelizes the waypoint scan as in {!Greedy_wpo.optimize_ctx}.

    [ev] supplies a warm evaluator built on the same graph (physical
    equality is checked): it is re-synced to the deployed weights with
    an incremental [set_weights] + [commit] instead of a full rebuild —
    the serving loop keeps one evaluator alive across a whole update
    stream this way.  On return its weights/commodities reflect the
    search's last probe state, not necessarily the returned candidate;
    callers must re-sync it to whatever they deploy.  [prune] forwards
    a candidate-pruning spec to the greedy waypoint re-pick (see
    {!Prune}); [repick_waypoints] (default [true]) set to [false] skips
    the waypoint step entirely and keeps the deployed waypoints — the
    cheap mode for latency-bound weight-only ticks.

    [frozen_edges] (default none) marks failed links: they are pinned at
    infinite weight for every evaluation — equivalent to removal, see
    {!Engine.Evaluator.disable_edge} — and are never move candidates, so
    the search re-optimizes the surviving topology.  The returned weight
    vector keeps the deployed values on frozen edges (a failed link's
    weight is unobservable), so they never count as churn.  Every demand
    (segment) must remain routable without the frozen edges; otherwise
    {!Engine.Evaluator.Unroutable} is raised — callers sweeping failure
    scenarios should test reachability first (the scenario layer skips
    re-optimization for disconnecting failures). *)

val reoptimize :
  ?stats:Engine.Stats.t ->
  ?ls_params:Local_search.params ->
  ?max_weight_changes:int ->
  ?frozen_edges:int list ->
  deployed_weights:int array ->
  deployed_waypoints:Segments.setting ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  result
(** Deprecated optional-argument shim over {!reoptimize_ctx}.

    [frozen_edges] (default none) marks failed links: they are pinned at
    infinite weight for every evaluation — equivalent to removal, see
    {!Engine.Evaluator.disable_edge} — and are never move candidates, so
    the search re-optimizes the surviving topology.  The returned weight
    vector keeps the deployed values on frozen edges (a failed link's
    weight is unobservable), so they never count as churn.  Every demand
    (segment) must remain routable without the frozen edges; otherwise
    {!Engine.Evaluator.Unroutable} is raised — callers sweeping failure
    scenarios should test reachability first (the scenario layer skips
    re-optimization for disconnecting failures). *)
