(** Algorithm 2 (JOINT-Heur): the paper's heuristic for joint link
    weight and waypoint optimization.

    Pipeline: (1) HeurOSPF gives weights; (2) GreedyWPO picks one
    waypoint per demand under those weights; (3) each demand is split at
    its waypoint into two demands; (4) HeurOSPF runs again on the split
    list.  The paper reports the gains of steps 3–4 as negligible and
    plots the first two stages; both variants are available and the
    returned setting is the better of the two evaluations. *)

type result = {
  weights : Weights.t;
  int_weights : int array;
  waypoints : Segments.setting;
  mlu : float;
  stage_mlu : (string * float) list;
      (** MLU after each pipeline stage, for reporting *)
}

val optimize_ctx :
  Obs.Ctx.t ->
  ?restarts:int ->
  ?ls_params:Local_search.params ->
  ?full_pipeline:bool ->
  ?prune:Prune.spec ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  result
(** The context-taking entry point.  [full_pipeline] (default [false],
    as plotted in the paper) enables steps 3–4.  The context is threaded
    through every stage (weight search, greedy waypoints, cross-stage
    evaluations), so one stats/tracer instance accounts for the whole
    pipeline; each stage is wrapped in its own span (["joint:weights"],
    ["joint:waypoints"], and ["joint:split-reopt"] for stages 3–4).
    The context's pool and [restarts] are forwarded to the stages
    ({!Local_search.optimize_ctx} probe fan-out and multi-restart,
    {!Greedy_wpo.optimize_ctx} candidate scan); results stay
    bit-identical across pool sizes.  [prune] (default off) forwards to
    the greedy waypoint stage as in {!Greedy_wpo.optimize_ctx}; the
    weight search is unaffected. *)

val optimize_iterated_ctx :
  Obs.Ctx.t ->
  ?restarts:int ->
  ?ls_params:Local_search.params ->
  ?iterations:int ->
  ?waypoint_rounds:int ->
  ?prune:Prune.spec ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  result
(** The paper's open question (§8): alternate weight optimization and
    (multi-round) greedy waypoint optimization for [iterations] rounds
    (default 3), each weight search warm-started on the split demand
    list induced by the current waypoints, keeping the best setting
    seen.  [waypoint_rounds] (default 1) allows up to that many
    waypoints per demand per iteration.  Each iteration records one
    ["joint:weights"] and one ["joint:waypoints"] span tagged with an
    ["iteration"] attribute. *)
