(** Demand generation (§7 "Demand generation").

    MCF-synthetic demands: 20% of connection pairs are selected at
    random, given base sizes, and scaled so that the optimal
    multi-commodity flow routes them with MLU exactly 1 — every MLU
    reported by the benches is therefore already normalized by OPT.
    Each pair's demand is then split into |E|/4 equal sub-flows.

    Gravity demands substitute for the proprietary real matrices of
    Figure 6: all pairs active with a heavy skew (Pareto node masses),
    also MCF-rescaled. *)

val select_pairs :
  ?exclude_stubs:bool ->
  seed:int -> frac:float -> Netgraph.Digraph.t -> (int * int) array
(** Random [frac] of the mutually-reachable ordered node pairs (at least
    one pair).  [exclude_stubs] (default true) drops pairs touching
    degree-1 nodes, whose pendant links would otherwise pin every
    algorithm's normalized MLU to 1 (falls back to all pairs if nothing
    remains). *)

val scale_to_opt :
  ?epsilon:float -> Netgraph.Digraph.t -> Network.demand array ->
  Network.demand array * float
(** Rescales all sizes by the same factor so OPT-MLU = 1; also returns
    the pre-scaling OPT-MLU. *)

val mcf_synthetic :
  ?epsilon:float ->
  ?frac:float ->
  ?flows_per_pair:int ->
  ?exclude_stubs:bool ->
  seed:int ->
  Netgraph.Digraph.t ->
  Network.demand array
(** The Figure 4 workload.  [frac] defaults to 0.2; [flows_per_pair]
    defaults to [max 1 (|E| / 4)]. *)

val gravity :
  ?epsilon:float ->
  ?alpha:float ->
  ?flows_per_pair:int ->
  seed:int ->
  Netgraph.Digraph.t ->
  Network.demand array
(** The Figure 6 stand-in: all mutually-reachable pairs active, sizes
    proportional to the product of Pareto([alpha], default 1.2) node
    masses, MCF-rescaled, split into [flows_per_pair] (default 1)
    sub-flows. *)
