(** Gradient link-weight optimization against LP necessary capacities,
    in the style of PEFT's gradient-descent weight fitting.

    The min-MLU LP ({!Mcf.opt_mlu_lp_warm_ext}) yields, besides the
    optimal MLU, the per-edge flow the optimum places on every link —
    the link's {e necessary capacity}.  The search then descends on
    real-valued weights: links carrying less ECMP flow than their
    necessary capacity get cheaper (attracting traffic), links carrying
    more get dearer, with the step size scaled by the largest necessary
    capacity.  Every [checkpoint_every] steps the real vector is
    deterministically rounded onto the integer grid [[1, wmax]] and
    evaluated through the shared engine; the best rounded setting seen
    (the rounded starting point included) is returned, so the result is
    never worse than its inverse-capacity start.

    The whole loop is sequential and consumes no randomness, so results
    are trivially byte-identical for every [--jobs] value. *)

type params = {
  wmax : int;  (** integer grid for the rounded settings (default 64) *)
  rounds : int;  (** gradient steps (default 300) *)
  checkpoint_every : int;  (** rounding/evaluation cadence (default 10) *)
  step : float;  (** step-size multiplier on 1 / max necessary cap (default 1) *)
  decay : float;
      (** harmonic step decay: step at round [k] is
          [step / (1 + decay k)] (default 0.03) — ECMP flows respond
          discontinuously to weights, so an undamped step orbits the
          optimum instead of settling on it *)
  min_weight : float;  (** positivity floor for the real weights (default 1e-3) *)
  tol : float;
      (** stop once [sum_e |necessary_e - flow_e|] falls below
          [tol * sum_e necessary_e] (default 5e-3) *)
}

val default_params : params

type result = {
  weights : int array;  (** best rounded setting seen *)
  mlu : float;  (** engine MLU of [weights] *)
  initial_mlu : float;  (** engine MLU of the rounded starting point *)
  lp_bound : float;  (** the LP optimum the gradient descends towards *)
  evals : int;  (** engine evaluations (flow recomputations + checkpoints) *)
  rounds_run : int;  (** gradient steps actually taken *)
  trail : (int * float) list;
      (** engine-evaluated MLU after each checkpoint, as
          [(gradient step, mlu)]; position 0 is the rounded start *)
}

val optimize_ctx :
  Obs.Ctx.t ->
  ?params:params ->
  ?init:Weights.t ->
  ?basis:Linprog.Simplex.Sparse.basis ->
  Netgraph.Digraph.t ->
  Network.demand array ->
  result
(** [init] (default {!Weights.inverse_capacity}) seeds the real weight
    vector.  [basis] warm-starts the necessary-capacity LP from a
    previous solve of the same topology (e.g. an earlier backend run or
    a serving loop's incumbent basis); the solve lands in the context's
    stats via [Engine.Stats.record_lp_solve].  The context's tracer
    records one ["grad:descent"] span with per-checkpoint
    ["grad:checkpoint"] events; the deadline is honored at checkpoint
    granularity.  @raise Failure if some demand is not routable (the LP
    is infeasible). *)
