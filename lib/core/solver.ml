type result = {
  solver : string;
  mlu : float;
  initial_mlu : float;
  evals : int;
  weights : int array option;
  weights2 : int array option;
  splits : float array option;
  waypoints : Segments.setting option;
  stages : (string * float) list;
}

module type S = sig
  val name : string

  val solve :
    Obs.Ctx.t -> Netgraph.Digraph.t -> Network.demand array -> result
end

type t = (module S)

let name (module M : S) = M.name
let solve (module M : S) ctx g demands = M.solve ctx g demands

let no_extras =
  fun solver ~mlu ~initial_mlu ~evals ~weights ~waypoints ~stages ->
  {
    solver;
    mlu;
    initial_mlu;
    evals;
    weights;
    weights2 = None;
    splits = None;
    waypoints;
    stages;
  }

let heur_ospf ?(restarts = 1) ?(params = Local_search.default_params) () : t =
  (module struct
    let name = "lwo"

    let solve ctx g demands =
      let initial_mlu = Ecmp.mlu_of g (Weights.inverse_capacity g) demands in
      let r = Local_search.optimize_ctx ctx ~restarts ~params g demands in
      no_extras name ~mlu:r.Local_search.mlu ~initial_mlu
        ~evals:r.Local_search.evals
        ~weights:(Some r.Local_search.weights)
        ~waypoints:None
        ~stages:[ ("HeurOSPF", r.Local_search.mlu) ]
  end)

let greedy_wpo ?order ?passes ?prune ?(weights = Weights.inverse_capacity) () :
    t =
  (module struct
    let name = "wpo"

    let solve ctx g demands =
      let w = weights g in
      let r = Greedy_wpo.optimize_ctx ctx ?order ?passes ?prune g w demands in
      no_extras name ~mlu:r.Greedy_wpo.mlu
        ~initial_mlu:r.Greedy_wpo.initial_mlu ~evals:0 ~weights:None
        ~waypoints:(Some (Segments.of_single r.Greedy_wpo.waypoints))
        ~stages:[ ("GreedyWPO", r.Greedy_wpo.mlu) ]
  end)

let joint_heur ?restarts ?ls_params ?full_pipeline ?prune () : t =
  (module struct
    let name = "joint"

    let solve ctx g demands =
      let r =
        Joint.optimize_ctx ctx ?restarts ?ls_params ?full_pipeline ?prune g
          demands
      in
      no_extras name ~mlu:r.Joint.mlu ~initial_mlu:nan ~evals:0
        ~weights:(Some r.Joint.int_weights)
        ~waypoints:(Some r.Joint.waypoints)
        ~stages:r.Joint.stage_mlu
  end)

let gradient ?params () : t =
  (module struct
    let name = "grad"

    let solve ctx g demands =
      let r = Grad_wo.optimize_ctx ctx ?params g demands in
      no_extras name ~mlu:r.Grad_wo.mlu ~initial_mlu:r.Grad_wo.initial_mlu
        ~evals:r.Grad_wo.evals
        ~weights:(Some r.Grad_wo.weights)
        ~waypoints:None
        ~stages:
          [ ("LP-bound", r.Grad_wo.lp_bound); ("GradWO", r.Grad_wo.mlu) ]
  end)

let omw ?(restarts = 1) ?(ls_params = Local_search.default_params) ?params () :
    t =
  (module struct
    let name = "omw"

    let solve ctx g demands =
      let initial_mlu = Ecmp.mlu_of g (Weights.inverse_capacity g) demands in
      let ls =
        Local_search.optimize_ctx ctx ~restarts ~params:ls_params g demands
      in
      let r = Omw.optimize_ctx ctx ?params g ls.Local_search.weights demands in
      {
        solver = name;
        mlu = r.Omw.mlu;
        initial_mlu;
        evals = ls.Local_search.evals + r.Omw.evals;
        weights = Some r.Omw.weights;
        weights2 = Some r.Omw.weights2;
        splits = Some r.Omw.splits;
        waypoints = None;
        stages = [ ("HeurOSPF", ls.Local_search.mlu); ("OMW", r.Omw.mlu) ];
      }
  end)

let gradient_wpo ?params ?order ?passes ?prune () : t =
  (module struct
    let name = "grad+wpo"

    let solve ctx g demands =
      let rg = Grad_wo.optimize_ctx ctx ?params g demands in
      let rw =
        Greedy_wpo.optimize_ctx ctx ?order ?passes ?prune g
          (Weights.of_ints rg.Grad_wo.weights)
          demands
      in
      no_extras name ~mlu:rw.Greedy_wpo.mlu ~initial_mlu:rg.Grad_wo.initial_mlu
        ~evals:rg.Grad_wo.evals
        ~weights:(Some rg.Grad_wo.weights)
        ~waypoints:(Some (Segments.of_single rw.Greedy_wpo.waypoints))
        ~stages:
          [ ("LP-bound", rg.Grad_wo.lp_bound); ("GradWO", rg.Grad_wo.mlu);
            ("GreedyWPO", rw.Greedy_wpo.mlu) ]
  end)

let omw_wpo ?(restarts = 1) ?(ls_params = Local_search.default_params) ?params
    ?order ?passes ?prune () : t =
  (module struct
    let name = "omw+wpo"

    let solve ctx g demands =
      let initial_mlu = Ecmp.mlu_of g (Weights.inverse_capacity g) demands in
      let ls =
        Local_search.optimize_ctx ctx ~restarts ~params:ls_params g demands
      in
      let w1 = Weights.of_ints ls.Local_search.weights in
      let rw = Greedy_wpo.optimize_ctx ctx ?order ?passes ?prune g w1 demands in
      let setting = Segments.of_single rw.Greedy_wpo.waypoints in
      (* The one-more-weight descent runs on the segment-expanded list,
         so each segment's traffic may split across the two systems. *)
      let expanded = Segments.expand demands setting in
      let r =
        Omw.optimize_ctx ctx ?params g ls.Local_search.weights expanded
      in
      {
        solver = name;
        mlu = r.Omw.mlu;
        initial_mlu;
        evals = ls.Local_search.evals + r.Omw.evals;
        weights = Some r.Omw.weights;
        weights2 = Some r.Omw.weights2;
        splits = Some r.Omw.splits;
        waypoints = Some setting;
        stages =
          [ ("HeurOSPF", ls.Local_search.mlu);
            ("GreedyWPO", rw.Greedy_wpo.mlu); ("OMW", r.Omw.mlu) ];
      }
  end)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type config = {
  seed : int;
  evals : int;
  restarts : int;
  passes : int;
  full_pipeline : bool;
  prune : Prune.spec option;
  weights : Netgraph.Digraph.t -> Weights.t;
}

let default_config =
  {
    seed = 1;
    evals = 1500;
    restarts = 1;
    passes = 1;
    full_pipeline = false;
    prune = None;
    weights = Weights.inverse_capacity;
  }

type builder = config -> t

(* Registration order is presentation order, so the table reads
   base solvers first, then the composed variants. *)
let table : (string * (string * builder)) list ref = ref []

let register ?(doc = "") name builder =
  table := List.filter (fun (n, _) -> not (String.equal n name)) !table;
  table := !table @ [ (name, (doc, builder)) ]

let find name =
  match List.assoc_opt name !table with
  | Some (_, builder) -> Some builder
  | None -> None

let names () = List.map (fun (n, (doc, _)) -> (n, doc)) !table

let ls_params_of c =
  { Local_search.default_params with Local_search.max_evals = c.evals;
    seed = c.seed }

let () =
  register "lwo" ~doc:"link-weight optimization (HeurOSPF local search)"
    (fun c -> heur_ospf ~restarts:c.restarts ~params:(ls_params_of c) ());
  register "wpo" ~doc:"waypoint optimization (Algorithm 3, GreedyWPO)"
    (fun c ->
      greedy_wpo ~passes:c.passes ?prune:c.prune ~weights:c.weights ());
  register "joint" ~doc:"joint weight + waypoint pipeline (Algorithm 2)"
    (fun c ->
      joint_heur ~restarts:c.restarts ~ls_params:(ls_params_of c)
        ~full_pipeline:c.full_pipeline ?prune:c.prune ());
  register "grad"
    ~doc:"gradient weight descent against LP necessary capacities"
    (fun _ -> gradient ());
  register "omw" ~doc:"one-more-weight: HeurOSPF + a second weight system"
    (fun c -> omw ~restarts:c.restarts ~ls_params:(ls_params_of c) ());
  register "grad+wpo" ~doc:"greedy waypoints under gradient-descended weights"
    (fun c ->
      gradient_wpo ~passes:c.passes ?prune:c.prune ());
  register "omw+wpo"
    ~doc:"greedy waypoints, then one-more-weight on the segments"
    (fun c ->
      omw_wpo ~restarts:c.restarts ~ls_params:(ls_params_of c)
        ~passes:c.passes ?prune:c.prune ())
