type result = {
  solver : string;
  mlu : float;
  initial_mlu : float;
  evals : int;
  weights : int array option;
  waypoints : Segments.setting option;
  stages : (string * float) list;
}

module type S = sig
  val name : string

  val solve :
    Obs.Ctx.t -> Netgraph.Digraph.t -> Network.demand array -> result
end

type t = (module S)

let name (module M : S) = M.name
let solve (module M : S) ctx g demands = M.solve ctx g demands

let heur_ospf ?(restarts = 1) ?(params = Local_search.default_params) () : t =
  (module struct
    let name = "lwo"

    let solve ctx g demands =
      let initial_mlu = Ecmp.mlu_of g (Weights.inverse_capacity g) demands in
      let r = Local_search.optimize_ctx ctx ~restarts ~params g demands in
      {
        solver = name;
        mlu = r.Local_search.mlu;
        initial_mlu;
        evals = r.Local_search.evals;
        weights = Some r.Local_search.weights;
        waypoints = None;
        stages = [ ("HeurOSPF", r.Local_search.mlu) ];
      }
  end)

let greedy_wpo ?order ?passes ?prune ?(weights = Weights.inverse_capacity) () :
    t =
  (module struct
    let name = "wpo"

    let solve ctx g demands =
      let w = weights g in
      let r = Greedy_wpo.optimize_ctx ctx ?order ?passes ?prune g w demands in
      {
        solver = name;
        mlu = r.Greedy_wpo.mlu;
        initial_mlu = r.Greedy_wpo.initial_mlu;
        evals = 0;
        weights = None;
        waypoints = Some (Segments.of_single r.Greedy_wpo.waypoints);
        stages = [ ("GreedyWPO", r.Greedy_wpo.mlu) ];
      }
  end)

let joint_heur ?restarts ?ls_params ?full_pipeline ?prune () : t =
  (module struct
    let name = "joint"

    let solve ctx g demands =
      let r =
        Joint.optimize_ctx ctx ?restarts ?ls_params ?full_pipeline ?prune g
          demands
      in
      {
        solver = name;
        mlu = r.Joint.mlu;
        initial_mlu = nan;
        evals = 0;
        weights = Some r.Joint.int_weights;
        waypoints = Some r.Joint.waypoints;
        stages = r.Joint.stage_mlu;
      }
  end)
