type setting = int list array

let none demands = Array.make (Array.length demands) []

let of_single opts =
  Array.map (function Some w -> [ w ] | None -> []) opts

let segment_endpoints (d : Network.demand) wps =
  let rec go cur acc = function
    | [] -> List.rev ((cur, d.Network.dst) :: acc)
    | w :: rest ->
      if w = cur then go cur acc rest else go w ((cur, w) :: acc) rest
  in
  go d.Network.src [] wps |> List.filter (fun (a, b) -> a <> b)

let expand demands setting =
  if Array.length setting <> Array.length demands then
    invalid_arg "Segments.expand: setting length mismatch";
  let out = ref [] in
  for i = Array.length demands - 1 downto 0 do
    let d = demands.(i) in
    List.iter
      (fun (a, b) ->
        out := { Network.src = a; dst = b; size = d.Network.size } :: !out)
      (List.rev (segment_endpoints d setting.(i)))
  done;
  Array.of_list !out

let count_waypoints setting =
  Array.fold_left (fun acc wps -> acc + List.length wps) 0 setting

let max_waypoints setting =
  Array.fold_left (fun acc wps -> max acc (List.length wps)) 0 setting
