(** Candidate preprocessing for the waypoint optimizers.

    GreedyWPO and JOINT scan every (commodity x waypoint) pair — the
    O(n^2) cost that dominates at scale.  This pass shrinks the scan
    {e before} the solver runs, in the spirit of Brundiers et al.
    ("Preprocess your Paths", arXiv 2312.00518) and the centrality
    middlepoint selection of Trimponias et al. (arXiv 1703.05907):

    {ul
    {- a {b global middlepoint pool}: every node is scored by ECMP-aware
       betweenness — the demand-weighted fraction of shortest-path flow
       passing through it, read straight off the engine's cached
       per-destination SPF DAGs ({!Engine.Evaluator.node_flows}), so
       scoring performs no SPF run beyond what computing the loads
       already did.  [Centrality] keeps the top-k scorers; [Coverage]
       picks k nodes greedily by {e marginal} covered flow (each pick
       discounts the commodities it already covers, penalizing redundant
       candidates that sit on the same bottleneck paths);}
    {- a {b per-commodity filter}: for each (src, dst) pair the pool is
       reduced further — waypoints the pair cannot use are dropped
       (cannot reach [dst]; on {e every} shortest src-dst path already,
       where routing via the waypoint provably reproduces the direct
       ECMP split), [Reach] mode additionally empties the list of
       commodities whose direct route touches no edge hotter than
       [threshold] times the initial MLU, and the surviving list is
       capped at [k];}
    {- an {b exact scan skip}: with the commodity's own flow removed,
       the residual MLU is a lower bound on every candidate's
       utilization, so when it already fails the greedy's strict
       improvement test the whole scan is skipped with zero effect on
       the result.}}

    Pruning is off by default everywhere ([?prune = None]); every
    solver's output without it is byte-identical to previous releases.
    With [k >= n] in [Centrality]/[Coverage] mode the pass is a
    documented no-op — the full ascending candidate list — so unpruned
    results are reproduced byte-identically (asserted by the test
    suite).  All candidate lists are built by the orchestrating domain
    from one evaluator, so pruned runs keep the bit-identical-across-
    [--jobs] guarantee. *)

type mode =
  | Centrality  (** top-k pool by ECMP-betweenness score *)
  | Coverage  (** greedy marginal group-coverage pool of size k *)
  | Reach
      (** no global pool restriction: per-commodity filters plus the
          score-ordered cap at [k] only *)

type spec = {
  mode : mode;
  k : int;  (** pool size and per-commodity candidate cap *)
  threshold : float;
      (** [Reach] only: a commodity whose direct route's hottest edge
          sits below [threshold *. initial_mlu] gets an empty candidate
          list (rerouting it cannot lower the initial maximum).  The
          default is [0.] — disabled. *)
}

val default_k : int
(** The default pool size (16) used by the CLI when [--prune] is given
    a non-positive value and by the bench experiment. *)

val spec : ?mode:mode -> ?threshold:float -> int -> spec
(** [spec k] with mode [Centrality] and threshold [0.].
    @raise Invalid_argument if [k < 1] or [threshold < 0]. *)

val mode_name : mode -> string

val mode_of_string : string -> (mode, string) result
(** Inverse of {!mode_name}; [Error] carries a usage message. *)

type t
(** A prepared pruner: global scores, the pool, and the per-pair
    candidate cache.  Bound to the evaluator it was prepared from (same
    weights, prepare-time loads); use only from the domain that owns
    that evaluator. *)

val prepare :
  Obs.Ctx.t -> spec -> Engine.Evaluator.t -> Network.demand array -> t
(** Scores middlepoints and selects the pool for [demands] under the
    evaluator's current weights and commodity loads.  The evaluator must
    already have its commodities attached.  Records one
    ["prune:prepare"] span (attrs: mode, k, pool size) on the context's
    tracer.  Unroutable pairs contribute no score and are skipped. *)

val pool : t -> int array
(** The global middlepoint pool, best score first (a copy). *)

val no_op : t -> bool
(** [true] when the spec guarantees byte-identical results
    ([k >= n] in [Centrality]/[Coverage] mode): {!candidates} then
    returns the full ascending list and only the exact scan skip
    remains active. *)

val candidates : t -> src:int -> dst:int -> int array
(** The pruned waypoint candidates for segment [(src, dst)], best score
    first, endpoints excluded, capped at [spec.k] (memoized per pair; do
    not mutate).  Multi-round greedies pass the current segment anchor
    as [src]. *)

val scan_skippable : t -> loads:float array -> u_min:float -> bool
(** The exact residual bound: [loads] must be the per-edge loads with
    the commodity under scan already removed.  When the residual MLU is
    [>= u_min -. 1e-12], no candidate (each only adds load) can pass the
    greedy's strict improvement test, so skipping the scan cannot change
    the result. *)
