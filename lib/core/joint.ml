type result = {
  weights : Weights.t;
  int_weights : int array;
  waypoints : Segments.setting;
  mlu : float;
  stage_mlu : (string * float) list;
}

(* MLU of (weights, waypoints) on the original demands, evaluated
   through the shared engine (each waypointed demand contributes one
   commodity per segment). *)
let setting_mlu ?stats g w demands setting =
  Engine.Evaluator.mlu_of ?stats g w
    (Network.to_commodities (Segments.expand demands setting))

let setting_mlu_ctx (ctx : Obs.Ctx.t) g w demands setting =
  setting_mlu ~stats:ctx.Obs.Ctx.stats g w demands setting

let optimize_iterated_ctx (ctx : Obs.Ctx.t) ?restarts
    ?(ls_params = Local_search.default_params) ?(iterations = 3)
    ?(waypoint_rounds = 1) ?prune g demands =
  if iterations < 1 then invalid_arg "Joint.optimize_iterated: iterations >= 1";
  let best = ref None in
  let consider stage int_w setting mlu stages =
    (match !best with
    | Some (_, _, _, bm, _) when bm <= mlu +. 1e-12 -> ()
    | _ -> best := Some (Weights.of_ints int_w, int_w, setting, mlu, ()));
    (stage, mlu) :: stages
  in
  let stages = ref [] in
  let int_w = ref None in
  let setting = ref (Segments.none demands) in
  for it = 1 to iterations do
    (* Weight step: optimize for the demand list split at the current
       waypoints, warm-starting from the previous weights. *)
    let split = Segments.expand demands !setting in
    let ls =
      Obs.Ctx.span ctx
        ~attrs:[ Obs.Attr.int "iteration" it ]
        "joint:weights"
        (fun () ->
          Local_search.optimize_ctx ctx ?restarts
            ~params:
              { ls_params with
                Local_search.seed = ls_params.Local_search.seed + it }
            ?init:!int_w g split)
    in
    int_w := Some ls.Local_search.weights;
    let w = Weights.of_ints ls.Local_search.weights in
    let mlu_w = setting_mlu_ctx ctx g w demands !setting in
    stages :=
      consider
        (Printf.sprintf "weights#%d" it)
        ls.Local_search.weights !setting mlu_w !stages;
    (* Waypoint step: re-pick waypoints from scratch under the new
       weights (the greedy is cheap; re-picking avoids lock-in). *)
    let wpo =
      Obs.Ctx.span ctx
        ~attrs:[ Obs.Attr.int "iteration" it ]
        "joint:waypoints"
        (fun () ->
          Greedy_wpo.optimize_multi_ctx ctx ?prune ~rounds:waypoint_rounds g w
            demands)
    in
    setting := wpo.Greedy_wpo.setting;
    stages :=
      consider
        (Printf.sprintf "waypoints#%d" it)
        ls.Local_search.weights !setting wpo.Greedy_wpo.mlu !stages
  done;
  match !best with
  | Some (weights, int_weights, waypoints, mlu, ()) ->
    { weights; int_weights; waypoints; mlu; stage_mlu = List.rev !stages }
  | None -> assert false (* iterations >= 1 always records a candidate *)

let optimize_ctx (ctx : Obs.Ctx.t) ?restarts
    ?(ls_params = Local_search.default_params) ?(full_pipeline = false) ?prune g
    demands =
  (* Step 1: link-weight optimization. *)
  let ls =
    Obs.Ctx.span ctx "joint:weights" (fun () ->
        Local_search.optimize_ctx ctx ?restarts ~params:ls_params g demands)
  in
  let w1 = Weights.of_ints ls.Local_search.weights in
  (* Step 2: greedy waypoints under those weights. *)
  let wpo =
    Obs.Ctx.span ctx "joint:waypoints" (fun () ->
        Greedy_wpo.optimize_ctx ctx ?prune g w1 demands)
  in
  let setting = Segments.of_single wpo.Greedy_wpo.waypoints in
  let stage2 = wpo.Greedy_wpo.mlu in
  let stages =
    [ ("HeurOSPF", ls.Local_search.mlu); ("GreedyWPO", stage2) ]
  in
  if not full_pipeline then
    { weights = w1; int_weights = ls.Local_search.weights; waypoints = setting;
      mlu = stage2; stage_mlu = stages }
  else begin
    (* Steps 3–4: split demands at their waypoints and re-optimize the
       weights for the split list. *)
    let split = Segments.expand demands setting in
    let ls2 =
      Obs.Ctx.span ctx "joint:split-reopt" (fun () ->
          Local_search.optimize_ctx ctx ?restarts ~params:ls_params
            ~init:ls.Local_search.weights g split)
    in
    let w2 = Weights.of_ints ls2.Local_search.weights in
    (* Evaluate the original demands + waypoints under the new weights:
       re-running the greedy under w2 also re-validates the waypoints. *)
    let mlu2 = setting_mlu_ctx ctx g w2 demands setting in
    let stages = stages @ [ ("HeurOSPF2", mlu2) ] in
    if mlu2 < stage2 -. 1e-12 then
      { weights = w2; int_weights = ls2.Local_search.weights;
        waypoints = setting; mlu = mlu2; stage_mlu = stages }
    else
      { weights = w1; int_weights = ls.Local_search.weights;
        waypoints = setting; mlu = stage2; stage_mlu = stages }
  end
