open Netgraph

exception Unroutable of int * int

type sparse = { edges : int array; flows : float array }

type dag = {
  target : int;
  dist : float array;
  out_sp : int array array;
  order : int array;
}

(* Since the lib/engine refactor this module is a thin shim: the DAG
   construction, unit-flow propagation and caching all live in
   {!Engine.Evaluator}, which is also what the optimizers drive
   directly when they need incremental re-evaluation.  The shim keeps
   the historical API (and exception) for the many one-shot callers. *)
type ctx = { ev : Engine.Evaluator.t }

let make ?stats graph weights =
  if Array.length weights <> Digraph.edge_count graph then
    invalid_arg "Ecmp.make: weight vector length mismatch";
  { ev = Engine.Evaluator.create ?stats graph weights }

let of_evaluator ev = { ev }

let evaluator ctx = ctx.ev

let graph ctx = Engine.Evaluator.graph ctx.ev

let weights ctx = Engine.Evaluator.weights ctx.ev

let dag ctx ~target =
  let d = Engine.Evaluator.dag ctx.ev ~target in
  {
    target;
    dist = d.Engine.Evaluator.dist;
    out_sp = d.Engine.Evaluator.out_sp;
    order = d.Engine.Evaluator.order;
  }

let unit_load ctx ~src ~dst =
  match Engine.Evaluator.unit_load ctx.ev ~src ~dst with
  | s -> { edges = s.Engine.Evaluator.edges; flows = s.Engine.Evaluator.flows }
  | exception Engine.Evaluator.Unroutable (s, t) -> raise (Unroutable (s, t))

let add_sparse acc s ~scale =
  for i = 0 to Array.length s.edges - 1 do
    acc.(s.edges.(i)) <- acc.(s.edges.(i)) +. (scale *. s.flows.(i))
  done

(* Ordered segment endpoints of a demand given its waypoints, skipping
   degenerate hops. *)
let segment_pairs src dst wps =
  let rec go cur acc = function
    | [] -> List.rev ((cur, dst) :: acc)
    | w :: rest ->
      if w = cur then go cur acc rest
      else go w ((cur, w) :: acc) rest
  in
  let pairs = go src [] wps in
  List.filter (fun (a, b) -> a <> b) pairs

let loads ?waypoints ctx demands =
  (match waypoints with
  | Some w when Array.length w <> Array.length demands ->
    invalid_arg "Ecmp.loads: waypoints length mismatch"
  | _ -> ());
  let acc = Array.make (Digraph.edge_count (graph ctx)) 0. in
  Array.iteri
    (fun i (d : Network.demand) ->
      let wps =
        match waypoints with Some w -> w.(i) | None -> []
      in
      List.iter
        (fun (a, b) ->
          add_sparse acc (unit_load ctx ~src:a ~dst:b) ~scale:d.Network.size)
        (segment_pairs d.Network.src d.Network.dst wps))
    demands;
  acc

let mlu = Engine.Evaluator.mlu_of_loads

let utilizations g loads =
  Array.init (Digraph.edge_count g) (fun e -> loads.(e) /. Digraph.cap g e)

let mlu_of ?waypoints g w demands =
  let ctx = make g w in
  mlu g (loads ?waypoints ctx demands)

let max_es_flow_value g w ~src ~dst =
  let ctx = make g w in
  let u = unit_load ctx ~src ~dst in
  let worst = ref 0. in
  for i = 0 to Array.length u.edges - 1 do
    let r = u.flows.(i) /. Digraph.cap g u.edges.(i) in
    if r > !worst then worst := r
  done;
  if !worst = 0. then infinity else 1. /. !worst
