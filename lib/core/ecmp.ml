open Netgraph

exception Unroutable of int * int

type sparse = { edges : int array; flows : float array }

type dag = {
  target : int;
  dist : float array;
  out_sp : int array array;
  order : int array;
}

type ctx = {
  graph : Digraph.t;
  weights : float array;
  dags : dag option array;
  units : sparse option array array; (* [dst].[src] *)
  (* scratch buffers for propagation *)
  node_flow : float array;
  edge_flow : float array;
  touched : int array; (* touched edge ids *)
}

let rel_eps = 1e-9

let make graph weights =
  if Array.length weights <> Digraph.edge_count graph then
    invalid_arg "Ecmp.make: weight vector length mismatch";
  let n = Digraph.node_count graph and m = Digraph.edge_count graph in
  {
    graph;
    weights = Array.copy weights;
    dags = Array.make n None;
    units = Array.make_matrix n n None;
    node_flow = Array.make n 0.;
    edge_flow = Array.make m 0.;
    touched = Array.make m 0;
  }

let graph ctx = ctx.graph

let weights ctx = ctx.weights

let build_dag g w target =
  let dist = Paths.dijkstra_to g ~weights:w ~target in
  let n = Digraph.node_count g in
  let out_sp =
    Array.init n (fun v ->
        if dist.(v) = infinity then [||]
        else begin
          let es = Digraph.out_edges g v in
          let keep = ref [] in
          (* Collect in reverse then re-reverse to keep edge order. *)
          for i = Array.length es - 1 downto 0 do
            let e = es.(i) in
            let u = Digraph.dst g e in
            if
              dist.(u) < infinity
              && abs_float ((w.(e) +. dist.(u)) -. dist.(v))
                 <= rel_eps *. (1. +. abs_float dist.(v))
            then keep := e :: !keep
          done;
          Array.of_list !keep
        end)
  in
  let finite = ref [] in
  for v = n - 1 downto 0 do
    if dist.(v) < infinity then finite := v :: !finite
  done;
  let order = Array.of_list !finite in
  (* Decreasing distance; ties broken by node id for determinism. *)
  Array.sort
    (fun a b ->
      let c = compare dist.(b) dist.(a) in
      if c <> 0 then c else compare a b)
    order;
  { target; dist; out_sp; order }

let dag ctx ~target =
  match ctx.dags.(target) with
  | Some d -> d
  | None ->
    let d = build_dag ctx.graph ctx.weights target in
    ctx.dags.(target) <- Some d;
    d

let compute_unit ctx src dst =
  if src = dst then { edges = [||]; flows = [||] }
  else begin
    let d = dag ctx ~target:dst in
    if d.dist.(src) = infinity then raise (Unroutable (src, dst));
    let nf = ctx.node_flow and ef = ctx.edge_flow in
    let ntouched = ref 0 in
    nf.(src) <- 1.;
    (* Propagate in decreasing-distance order; a node's whole inflow is
       known before it is processed because SP-DAG edges strictly
       decrease the distance to the target. *)
    Array.iter
      (fun v ->
        let f = nf.(v) in
        if f > 0. && v <> dst then begin
          nf.(v) <- 0.;
          let es = d.out_sp.(v) in
          let share = f /. float_of_int (Array.length es) in
          Array.iter
            (fun e ->
              if ef.(e) = 0. then begin
                ctx.touched.(!ntouched) <- e;
                incr ntouched
              end;
              ef.(e) <- ef.(e) +. share;
              nf.(Digraph.dst ctx.graph e) <- nf.(Digraph.dst ctx.graph e) +. share)
            es
        end
        else if v = dst then nf.(v) <- 0.)
      d.order;
    let k = !ntouched in
    let ids = Array.sub ctx.touched 0 k in
    Array.sort compare ids;
    let flows = Array.map (fun e -> ef.(e)) ids in
    (* Clear scratch. *)
    Array.iter (fun e -> ef.(e) <- 0.) ids;
    { edges = ids; flows }
  end

let unit_load ctx ~src ~dst =
  match ctx.units.(dst).(src) with
  | Some s -> s
  | None ->
    let s = compute_unit ctx src dst in
    ctx.units.(dst).(src) <- Some s;
    s

let add_sparse acc s ~scale =
  for i = 0 to Array.length s.edges - 1 do
    acc.(s.edges.(i)) <- acc.(s.edges.(i)) +. (scale *. s.flows.(i))
  done

(* Ordered segment endpoints of a demand given its waypoints, skipping
   degenerate hops. *)
let segment_pairs src dst wps =
  let rec go cur acc = function
    | [] -> List.rev ((cur, dst) :: acc)
    | w :: rest ->
      if w = cur then go cur acc rest
      else go w ((cur, w) :: acc) rest
  in
  let pairs = go src [] wps in
  List.filter (fun (a, b) -> a <> b) pairs

let loads ?waypoints ctx demands =
  (match waypoints with
  | Some w when Array.length w <> Array.length demands ->
    invalid_arg "Ecmp.loads: waypoints length mismatch"
  | _ -> ());
  let acc = Array.make (Digraph.edge_count ctx.graph) 0. in
  Array.iteri
    (fun i (d : Network.demand) ->
      let wps =
        match waypoints with Some w -> w.(i) | None -> []
      in
      List.iter
        (fun (a, b) ->
          add_sparse acc (unit_load ctx ~src:a ~dst:b) ~scale:d.Network.size)
        (segment_pairs d.Network.src d.Network.dst wps))
    demands;
  acc

let mlu g loads =
  let best = ref 0. in
  for e = 0 to Digraph.edge_count g - 1 do
    let u = loads.(e) /. Digraph.cap g e in
    if u > !best then best := u
  done;
  !best

let utilizations g loads =
  Array.init (Digraph.edge_count g) (fun e -> loads.(e) /. Digraph.cap g e)

let mlu_of ?waypoints g w demands =
  let ctx = make g w in
  mlu g (loads ?waypoints ctx demands)

let max_es_flow_value g w ~src ~dst =
  let ctx = make g w in
  let u = unit_load ctx ~src ~dst in
  let worst = ref 0. in
  for i = 0 to Array.length u.edges - 1 do
    let r = u.flows.(i) /. Digraph.cap g u.edges.(i) in
    if r > !worst then worst := r
  done;
  if !worst = 0. then infinity else 1. /. !worst
