open Netgraph

type params = {
  wmax : int;
  sweeps : int;
  levels : int;
  max_bumps : int;
  second : bool;
}

let default_params =
  { wmax = 64; sweeps = 12; levels = 4; max_bumps = 12; second = true }

type result = {
  weights : int array;
  weights2 : int array;
  splits : float array;
  demands : Network.demand array;
  mlu : float;
  initial_mlu : float;
  evals : int;
  sweeps_run : int;
  moves : int;
  bumps : int;
}

let optimize_ctx (ctx : Obs.Ctx.t) ?(params = default_params) ?init2 g w1
    demands =
  if params.wmax < 2 then invalid_arg "Omw.optimize: wmax < 2";
  if params.levels < 1 then invalid_arg "Omw.optimize: levels < 1";
  let m = Digraph.edge_count g in
  if Array.length w1 <> m then invalid_arg "Omw.optimize: weights length mismatch";
  let demands = Network.aggregate demands in
  let nd = Array.length demands in
  let w2 =
    match init2 with
    | Some w ->
      if Array.length w <> m then invalid_arg "Omw.optimize: init2 length mismatch";
      Array.copy w
    | None -> Array.make m 1
  in
  let tracer = ctx.Obs.Ctx.tracer in
  let stats = ctx.Obs.Ctx.stats in
  let ev1 =
    Engine.Evaluator.create ~stats ~probe:(Obs.Ctx.probe ctx) g
      (Weights.of_ints w1)
  in
  let ev2 = Engine.Evaluator.create ~stats g (Weights.of_ints w2) in
  let alpha = Array.make nd 1. in
  let scratch = Array.make m 0. in
  (* Canonical evaluation of the current (alpha, w2) configuration:
     each system's share goes through [set_commodities] on its own
     evaluator exactly like a single-weight run, and the totals add up
     edge-wise.  With every split at 1 the second commodity list is
     empty and the value is the plain system-1 engine MLU — bit-equal
     to {!Engine.Evaluator.mlu_of} on [w1], which is the degenerate-mode
     equivalence the tests pin down. *)
  let canonical () =
    let c1 = ref [] and c2 = ref [] in
    for i = nd - 1 downto 0 do
      let d = demands.(i) in
      let a = alpha.(i) in
      if a > 0. then
        c1 := (d.Network.src, d.Network.dst, a *. d.Network.size) :: !c1;
      if a < 1. then
        c2 := (d.Network.src, d.Network.dst, (1. -. a) *. d.Network.size) :: !c2
    done;
    Engine.Evaluator.set_commodities ev1 (Array.of_list !c1);
    match !c2 with
    | [] -> Engine.Evaluator.mlu ev1
    | c2 ->
      let l1 = Engine.Evaluator.loads ev1 in
      Array.blit l1 0 scratch 0 m;
      Engine.Evaluator.set_commodities ev2 (Array.of_list c2);
      let l2 = Engine.Evaluator.loads ev2 in
      for e = 0 to m - 1 do
        scratch.(e) <- scratch.(e) +. l2.(e)
      done;
      Engine.Evaluator.mlu_of_loads g scratch
  in
  (* Descent state: the aggregate load vector under the current splits,
     maintained incrementally from the cached unit flows and rebuilt
     after any second-weight change. *)
  let loads = Array.make m 0. in
  let buf1 = Array.make m 0. and buf2 = Array.make m 0. in
  let recompute_loads () =
    Array.fill loads 0 m 0.;
    for i = 0 to nd - 1 do
      let d = demands.(i) in
      let a = alpha.(i) in
      if a > 0. then
        Engine.Evaluator.add_unit ev1 ~src:d.Network.src ~dst:d.Network.dst
          ~scale:(a *. d.Network.size) ~into:loads;
      if a < 1. then
        Engine.Evaluator.add_unit ev2 ~src:d.Network.src ~dst:d.Network.dst
          ~scale:((1. -. a) *. d.Network.size) ~into:loads
    done
  in
  let mlu_of_loads_buf () =
    let worst = ref 0. in
    for e = 0 to m - 1 do
      let u = loads.(e) /. Digraph.cap g e in
      if u > !worst then worst := u
    done;
    !worst
  in
  let evals = ref 0 and moves = ref 0 and bumps = ref 0 in
  let cur_mlu = ref 0. in
  let grid =
    Array.init (params.levels + 1) (fun k ->
        float_of_int k /. float_of_int params.levels)
  in
  (* One coordinate-descent sweep: demands in index order, candidate
     splits on the grid, strict improvements applied immediately.  The
     candidate MLU comes from one O(m) scan over
     [loads + (a' - a) (unit1 - unit2)] — no engine re-evaluation. *)
  let sweep () =
    let improved = ref false in
    for i = 0 to nd - 1 do
      let d = demands.(i) in
      let a = alpha.(i) in
      Array.fill buf1 0 m 0.;
      Array.fill buf2 0 m 0.;
      Engine.Evaluator.add_unit ev1 ~src:d.Network.src ~dst:d.Network.dst
        ~scale:d.Network.size ~into:buf1;
      Engine.Evaluator.add_unit ev2 ~src:d.Network.src ~dst:d.Network.dst
        ~scale:d.Network.size ~into:buf2;
      let best_a = ref a and best = ref !cur_mlu in
      Array.iter
        (fun a' ->
          if a' <> a then begin
            incr evals;
            let da = a' -. a in
            let worst = ref 0. in
            for e = 0 to m - 1 do
              let u =
                (loads.(e) +. (da *. (buf1.(e) -. buf2.(e))))
                /. Digraph.cap g e
              in
              if u > !worst then worst := u
            done;
            if !worst < !best -. 1e-12 then begin
              best := !worst;
              best_a := a'
            end
          end)
        grid;
      if !best_a <> a then begin
        let da = !best_a -. a in
        for e = 0 to m - 1 do
          loads.(e) <- loads.(e) +. (da *. (buf1.(e) -. buf2.(e)))
        done;
        alpha.(i) <- !best_a;
        cur_mlu := mlu_of_loads_buf ();
        incr moves;
        improved := true
      end
    done;
    !improved
  in
  (* Stalled: double the second weight of the most utilized link
     (lowest edge id on ties) so system 2 detours around the
     bottleneck, then let the sweeps re-split.  Returns false once the
     weight is already at the ceiling. *)
  let bump () =
    let e_star = ref 0 and worst = ref (-1.) in
    for e = 0 to m - 1 do
      let u = loads.(e) /. Digraph.cap g e in
      if u > !worst then begin
        worst := u;
        e_star := e
      end
    done;
    let cur = w2.(!e_star) in
    let nw = min params.wmax (cur * 2) in
    if nw = cur then false
    else begin
      w2.(!e_star) <- nw;
      Engine.Evaluator.set_weight ev2 ~edge:!e_star (float_of_int nw);
      Engine.Evaluator.commit ev2;
      recompute_loads ();
      cur_mlu := mlu_of_loads_buf ();
      incr bumps;
      Obs.Tracer.instant tracer
        ~attrs:[ Obs.Attr.int "edge" !e_star; Obs.Attr.int "w2" nw ]
        "omw:bump";
      true
    end
  in
  let initial_mlu = canonical () in
  let sweeps_run = ref 0 in
  let tok = Obs.Tracer.start tracer "omw:descent" in
  Obs.Tracer.attr tracer tok (Obs.Attr.float "initial_mlu" initial_mlu);
  let best_alpha = Array.copy alpha and best_w2 = Array.copy w2 in
  if params.second && params.sweeps > 0 && nd > 0 then begin
    recompute_loads ();
    cur_mlu := mlu_of_loads_buf ();
    (* Within a sweep the internal MLU only decreases, so the
       end-of-sweep state is the sweep's best; a bump may worsen it
       temporarily, hence the snapshot of the best configuration. *)
    let best_mlu = ref !cur_mlu in
    let snapshot () =
      if !cur_mlu < !best_mlu -. 1e-12 then begin
        best_mlu := !cur_mlu;
        Array.blit alpha 0 best_alpha 0 nd;
        Array.blit w2 0 best_w2 0 m
      end
    in
    let stop = ref false in
    while !sweeps_run < params.sweeps && not !stop && not (Obs.Ctx.expired ctx)
    do
      incr sweeps_run;
      let improved = sweep () in
      snapshot ();
      Obs.Tracer.instant tracer
        ~attrs:
          [ Obs.Attr.int "sweep" !sweeps_run; Obs.Attr.float "mlu" !cur_mlu ]
        "omw:sweep";
      if not improved then
        if !bumps < params.max_bumps then begin
          if not (bump ()) then stop := true
        end
        else stop := true
    done;
    Array.blit best_alpha 0 alpha 0 nd;
    Array.blit best_w2 0 w2 0 m;
    (* An unchanged vector diffs to nothing inside [set_weights]. *)
    Engine.Evaluator.set_weights ev2 (Weights.of_ints w2);
    Engine.Evaluator.commit ev2
  end;
  let final_mlu = canonical () in
  (* Safety net: the internal O(m) scans and the canonical engine
     evaluation can disagree in the last bits, so re-check against the
     pure system-1 start and fall back to it if the descent did not
     actually win. *)
  let mlu, splits, weights2 =
    if final_mlu <= initial_mlu then (final_mlu, alpha, w2)
    else
      ( initial_mlu,
        Array.make nd 1.,
        (match init2 with Some w -> Array.copy w | None -> Array.make m 1) )
  in
  Obs.Tracer.attr tracer tok (Obs.Attr.float "mlu" mlu);
  Obs.Tracer.attr tracer tok (Obs.Attr.int "sweeps" !sweeps_run);
  Obs.Tracer.finish tracer tok;
  Obs.Metrics.incr ctx.Obs.Ctx.metrics ~by:!moves "omw.moves";
  Obs.Metrics.incr ctx.Obs.Ctx.metrics ~by:!bumps "omw.bumps";
  {
    weights = Array.copy w1;
    weights2;
    splits;
    demands;
    mlu;
    initial_mlu;
    evals = !evals;
    sweeps_run = !sweeps_run;
    moves = !moves;
    bumps = !bumps;
  }
