(** ECMP flow evaluation (§2: ES-flows restricted to shortest paths).

    Given a weight setting, traffic from [s] to [t] follows the
    shortest-path DAG towards [t] and splits evenly at every node over
    all outgoing DAG links.

    Since the lib/engine refactor this module is a thin shim over
    {!Engine.Evaluator}: a {!ctx} wraps one evaluator, which owns all
    caching (per-target DAGs and sparse unit-load vectors, computed
    lazily and invalidated on weight changes).  The shim keeps the
    historical one-shot API and exception; the optimizers drive the
    evaluator directly through its incremental move protocol.  Every
    delegated call is counted in the evaluator's {!Engine.Stats.t}
    exactly as if made on the evaluator itself. *)

exception Unroutable of int * int
(** Raised when a demand's destination is unreachable from its source. *)

type sparse = {
  edges : int array;  (** touched edge ids, ascending *)
  flows : float array;  (** load per touched edge for one flow unit *)
}

type dag = {
  target : int;
  dist : float array;  (** distance of every node to [target] *)
  out_sp : int array array;  (** per node: outgoing shortest-path edges *)
  order : int array;  (** nodes with finite distance, decreasing distance *)
}

type ctx

val make : ?stats:Engine.Stats.t -> Netgraph.Digraph.t -> Weights.t -> ctx
(** Builds a fresh underlying {!Engine.Evaluator} for the weight
    setting; nothing is computed until first use.  [stats] is handed to
    the evaluator (default: a private instance), so SPF rebuilds and
    unit-load computations triggered through this shim are attributed
    to the caller's counters. *)

val of_evaluator : Engine.Evaluator.t -> ctx
(** Wraps an existing evaluator (sharing its caches and stats). *)

val evaluator : ctx -> Engine.Evaluator.t
(** The underlying shared evaluation engine. *)

val graph : ctx -> Netgraph.Digraph.t

val weights : ctx -> Weights.t

val dag : ctx -> target:int -> dag

val unit_load : ctx -> src:int -> dst:int -> sparse
(** The per-edge load of one unit of ECMP flow from [src] to [dst]
    ([src = dst] yields the empty vector).
    @raise Unroutable if [dst] is unreachable. *)

val loads :
  ?waypoints:int list array -> ctx -> Network.demand array -> float array
(** Per-edge load of the whole demand list; [waypoints.(i)] is the
    ordered waypoint list of demand [i] (visited before the final
    destination, §2.1).  Waypoints equal to the current segment head or
    to a repeat of the previous one are skipped. *)

val add_sparse : float array -> sparse -> scale:float -> unit
(** [add_sparse acc v ~scale] accumulates [scale * v] into [acc]. *)

val mlu : Netgraph.Digraph.t -> float array -> float
(** max over links of load / capacity. *)

val utilizations : Netgraph.Digraph.t -> float array -> float array

val mlu_of :
  ?waypoints:int list array -> Netgraph.Digraph.t -> Weights.t ->
  Network.demand array -> float
(** One-shot [mlu (loads ...)]. *)

val max_es_flow_value : Netgraph.Digraph.t -> Weights.t -> src:int -> dst:int -> float
(** Size of the largest even-split ECMP flow from [src] to [dst] that
    respects capacities under this weight setting: the flow pattern is
    fixed by the weights, so this is [1 / max_e (unit_load_e / cap_e)]. *)
