(** TE instances: a capacitated network plus a demand list (§2 of the
    paper).  Nodes and edges are those of the underlying
    {!Netgraph.Digraph}. *)

type demand = {
  src : int;
  dst : int;
  size : float;  (** required bandwidth, > 0 *)
}

type t = {
  graph : Netgraph.Digraph.t;
  demands : demand array;
}

val demand : int -> int -> float -> demand
(** @raise Invalid_argument on non-positive size or equal endpoints. *)

val make : Netgraph.Digraph.t -> demand array -> t
(** @raise Invalid_argument on an endpoint outside the graph. *)

val total_demand : t -> float
(** [D], the sum of all demand sizes. *)

val aggregate : demand array -> demand array
(** Merges demands sharing (src, dst) into one demand of the summed size.
    MLU under any weight setting is invariant under this. *)

val targets : t -> int list
(** Distinct destinations appearing in the demand list (sorted). *)

val sources_for : t -> int -> int list
(** Distinct sources of demands towards the given target. *)

val to_commodities : demand array -> (int * int * float) array
(** The [(src, dst, size)] triples the evaluation engine consumes
    ({!Engine.Evaluator.set_commodities}).  Waypointed demands should be
    expanded with {!Segments.expand} first. *)

val split_demands : parts:int -> demand array -> demand array
(** Splits every demand into [parts] equal sub-demands (the paper's
    MCF-synthetic generation splits per-pair demands into |E|/4 flows). *)

val is_routable : t -> bool
(** Every demand's destination reachable from its source? *)

val pp_demand : Format.formatter -> demand -> unit
