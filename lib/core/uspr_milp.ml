open Netgraph
module Simplex = Linprog.Simplex
module Milp = Linprog.Milp

type t = {
  weights : Weights.t;
  mlu : float;
  exact : bool;
  nodes_explored : int;
}

(* Variable layout:
     0                          U
     1 + e                      w_e
     doff + ti*n + v            d_v^t
     yoff + ti*m + e            y_{e,t}   (binary)
     xoff + di*m + e            x_{d,e}   (continuous in [0,1]) *)
let lwo_ctx (octx : Obs.Ctx.t) ?wmax ?(epsilon = 0.1) ?(max_nodes = 20_000)
    ?warm g demands =
  Obs.Ctx.span octx "milp:lwo" @@ fun () ->
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let demands = Network.aggregate demands in
  let k = Array.length demands in
  let wmax = match wmax with Some w -> w | None -> 4. *. float_of_int n in
  if wmax < 1. then invalid_arg "Uspr_milp.lwo: wmax >= 1 required";
  let big = (float_of_int n *. wmax) +. 1. in
  let targets =
    List.sort_uniq compare
      (Array.to_list (Array.map (fun d -> d.Network.dst) demands))
  in
  let nt = List.length targets in
  let tindex = Hashtbl.create 8 in
  List.iteri (fun i t -> Hashtbl.replace tindex t i) targets;
  (* Which nodes reach each target (computed on the reversed graph). *)
  let reaches =
    Array.of_list
      (List.map
         (fun t -> Paths.reachable (Digraph.reverse g) ~source:t)
         targets)
  in
  Array.iter
    (fun (d : Network.demand) ->
      let ti = Hashtbl.find tindex d.Network.dst in
      if not reaches.(ti).(d.Network.src) then
        failwith
          (Printf.sprintf "Uspr_milp.lwo: demand %d->%d is not routable"
             d.Network.src d.Network.dst))
    demands;
  let uvar = 0 in
  let wvar e = 1 + e in
  let doff = 1 + m in
  let dvar ti v = doff + (ti * n) + v in
  let yoff = doff + (nt * n) in
  let yvar ti e = yoff + (ti * m) + e in
  let xoff = yoff + (nt * m) in
  let xvar di e = xoff + (di * m) + e in
  let nvars = xoff + (k * m) in
  let constrs = ref [] in
  let add row rel rhs = constrs := Simplex.constr row rel rhs :: !constrs in
  (* Weight bounds. *)
  for e = 0 to m - 1 do
    add [ (wvar e, 1.) ] Simplex.Ge 1.;
    add [ (wvar e, 1.) ] Simplex.Le wmax
  done;
  List.iteri
    (fun ti t ->
      (* Root potential. *)
      add [ (dvar ti t, 1.) ] Simplex.Eq 0.;
      for e = 0 to m - 1 do
        let v = Digraph.src g e and u = Digraph.dst g e in
        (* d_v <= w_e + d_u  (shortest-path lower bound). *)
        add [ (dvar ti v, 1.); (dvar ti u, -1.); (wvar e, -1.) ] Simplex.Le 0.;
        if reaches.(ti).(v) && v <> t then begin
          if reaches.(ti).(u) then begin
            (* Selected edge is tight: w_e + d_u - d_v <= M (1 - y). *)
            add
              [ (wvar e, 1.); (dvar ti u, 1.); (dvar ti v, -1.);
                (yvar ti e, big) ]
              Simplex.Le big;
            (* Non-selected edges are longer by the margin:
               w_e + d_u - d_v + M y >= epsilon. *)
            add
              [ (wvar e, 1.); (dvar ti u, 1.); (dvar ti v, -1.);
                (yvar ti e, big) ]
              Simplex.Ge epsilon
          end
          else
            (* Heads that cannot reach the target are never selected. *)
            add [ (yvar ti e, 1.) ] Simplex.Eq 0.
        end
        else
          (* Nodes that cannot reach t (or t itself) select nothing. *)
          add [ (yvar ti e, 1.) ] Simplex.Eq 0.
      done;
      (* Exactly one forwarding edge per reaching node. *)
      for v = 0 to n - 1 do
        if v <> t && reaches.(ti).(v) then begin
          let row =
            Array.to_list (Digraph.out_edges g v)
            |> List.map (fun e -> (yvar ti e, 1.))
          in
          add row Simplex.Eq 1.
        end
      done)
    targets;
  (* Per-demand unit flow on the forwarding tree. *)
  Array.iteri
    (fun di (d : Network.demand) ->
      let ti = Hashtbl.find tindex d.Network.dst in
      for v = 0 to n - 1 do
        if v <> d.Network.dst then begin
          let row = ref [] in
          Array.iter (fun e -> row := (xvar di e, 1.) :: !row) (Digraph.out_edges g v);
          Array.iter (fun e -> row := (xvar di e, -1.) :: !row) (Digraph.in_edges g v);
          add !row Simplex.Eq (if v = d.Network.src then 1. else 0.)
        end
      done;
      for e = 0 to m - 1 do
        add [ (xvar di e, 1.); (yvar ti e, -1.) ] Simplex.Le 0.
      done)
    demands;
  (* Capacity rows. *)
  for e = 0 to m - 1 do
    let row =
      (uvar, -.Digraph.cap g e)
      :: List.init k (fun di -> (xvar di e, demands.(di).Network.size))
    in
    add row Simplex.Le 0.
  done;
  let problem =
    { Simplex.nvars; sense = Simplex.Minimize; objective = [ (uvar, 1.) ];
      constrs = !constrs }
  in
  let integer_vars =
    List.concat_map
      (fun ti -> List.init m (fun e -> yvar ti e))
      (List.init nt Fun.id)
  in
  (* Warm start: the hop-count shortest-path trees (Dijkstra parents on
     unit weights), with non-tree weights lifted to satisfy the margin. *)
  let initial =
    let x0 = Array.make nvars 0. in
    let w0 = Array.make m 1. in
    let loads = Array.make m 0. in
    let dist_tbl = Hashtbl.create 8 in
    List.iteri
      (fun ti t ->
        let unit_w = Array.make m 1. in
        let dist = Paths.dijkstra_to g ~weights:unit_w ~target:t in
        Hashtbl.replace dist_tbl ti dist;
        (* Parent = first out-edge achieving dist(v) = 1 + dist(u). *)
        for v = 0 to n - 1 do
          if v <> t && reaches.(ti).(v) then begin
            let chosen = ref (-1) in
            Array.iter
              (fun e ->
                let u = Digraph.dst g e in
                if
                  !chosen < 0
                  && dist.(u) < infinity
                  && abs_float (1. +. dist.(u) -. dist.(v)) < 1e-9
                then chosen := e)
              (Digraph.out_edges g v);
            if !chosen >= 0 then x0.(yvar ti !chosen) <- 1.
          end;
          if reaches.(ti).(v) && dist.(v) < infinity then
            x0.(dvar ti v) <- dist.(v)
        done)
      targets;
    (* Lift weights of all non-selected edges so every margin holds for
       every target simultaneously: w_e >= max_t (d_v^t - d_u^t) + eps. *)
    for e = 0 to m - 1 do
      let v = Digraph.src g e and u = Digraph.dst g e in
      let needed = ref 1. in
      List.iteri
        (fun ti _t ->
          if x0.(yvar ti e) < 0.5 && reaches.(ti).(v) then begin
            let dist = Hashtbl.find dist_tbl ti in
            if dist.(v) < infinity && dist.(u) < infinity then
              needed := max !needed (dist.(v) -. dist.(u) +. (2. *. epsilon))
          end)
        targets;
      w0.(e) <- min wmax !needed
    done;
    (* Selected edges must stay tight at weight 1 — if a lifted weight
       clashes with a selection for another target, the warm start is
       simply rejected by the feasibility check (harmless). *)
    List.iteri
      (fun ti _ ->
        for e = 0 to m - 1 do
          if x0.(yvar ti e) > 0.5 then w0.(e) <- 1.
        done)
      targets;
    for e = 0 to m - 1 do
      x0.(wvar e) <- w0.(e)
    done;
    (* Route demands along the trees. *)
    Array.iteri
      (fun di (d : Network.demand) ->
        let ti = Hashtbl.find tindex d.Network.dst in
        let rec walk v =
          if v <> d.Network.dst then begin
            let next = ref (-1) in
            Array.iter
              (fun e -> if x0.(yvar ti e) > 0.5 then next := e)
              (Digraph.out_edges g v);
            if !next >= 0 then begin
              x0.(xvar di !next) <- 1.;
              loads.(!next) <- loads.(!next) +. d.Network.size;
              walk (Digraph.dst g !next)
            end
          end
        in
        walk d.Network.src)
      demands;
    x0.(uvar) <- Ecmp.mlu g loads;
    x0
  in
  let result, effort =
    Obs.Ctx.span octx "milp:branch-and-bound" (fun () ->
        Milp.solve_ext ~max_nodes ~initial ?warm
          ~probe:(Obs.Tracer.lp_probe octx.Obs.Ctx.tracer) problem
          ~integer_vars)
  in
  (let nodes =
     match result with
     | Milp.Solution sol -> sol.Milp.nodes_explored
     | Milp.Infeasible | Milp.Unbounded | Milp.NoIncumbent -> max_nodes
   in
   Engine.Stats.record_milp octx.Obs.Ctx.stats ~nodes
     ~lp_solves:effort.Milp.lp_solves ~lp_pivots:effort.Milp.lp_pivots
     ~warm_solves:effort.Milp.warm_solves
     ~cycle_limits:effort.Milp.cycle_limits;
   Obs.Metrics.incr octx.Obs.Ctx.metrics ~by:nodes "milp.nodes";
   Obs.Metrics.incr octx.Obs.Ctx.metrics ~by:effort.Milp.lp_solves
     "milp.lp_solves");
  match result with
  | Milp.Solution s ->
    let weights = Array.init m (fun e -> s.Milp.point.(wvar e)) in
    { weights; mlu = s.Milp.value; exact = s.Milp.status = Milp.Optimal;
      nodes_explored = s.Milp.nodes_explored }
  | Milp.Infeasible -> failwith "Uspr_milp.lwo: infeasible (internal)"
  | Milp.Unbounded -> failwith "Uspr_milp.lwo: unbounded (internal)"
  | Milp.NoIncumbent -> failwith "Uspr_milp.lwo: node limit with no incumbent"

let lwo ?wmax ?epsilon ?max_nodes ?warm ?stats g demands =
  lwo_ctx (Obs.Ctx.make ?stats ()) ?wmax ?epsilon ?max_nodes ?warm g demands

type joint_result = {
  setting : t;
  waypoints : Segments.setting;
}

let joint_ctx (octx : Obs.Ctx.t) ?wmax ?epsilon ?max_nodes ?candidates
    ?(max_combos = 512) g demands =
  let n = Digraph.node_count g in
  let k = Array.length demands in
  let candidates =
    match candidates with Some c -> c | None -> List.init n Fun.id
  in
  let options_for (d : Network.demand) =
    []
    :: List.filter_map
         (fun w ->
           if w = d.Network.src || w = d.Network.dst then None else Some [ w ])
         candidates
  in
  let options = Array.map options_for demands in
  let combos =
    Array.fold_left (fun acc o -> acc *. float_of_int (List.length o)) 1. options
  in
  if combos > float_of_int max_combos then
    invalid_arg
      (Printf.sprintf "Uspr_milp.joint: %.0f assignments exceed max_combos=%d"
         combos max_combos);
  let best = ref None in
  let setting = Array.make k [] in
  let rec enumerate i =
    if i = k then begin
      let split = Segments.expand demands setting in
      let r = lwo_ctx octx ?wmax ?epsilon ?max_nodes g split in
      Obs.Metrics.incr octx.Obs.Ctx.metrics "milp.joint_assignments";
      match !best with
      | Some (bs, _) when bs.mlu <= r.mlu +. 1e-12 -> ()
      | _ -> best := Some (r, Array.copy setting)
    end
    else
      List.iter
        (fun opt ->
          setting.(i) <- opt;
          enumerate (i + 1))
        options.(i)
  in
  Obs.Ctx.span octx
    ~attrs:[ Obs.Attr.int "assignments" (int_of_float combos) ]
    "milp:joint" (fun () -> enumerate 0);
  match !best with
  | Some (s, wps) -> { setting = s; waypoints = wps }
  | None -> assert false (* at least the all-direct assignment is tried *)

let joint ?wmax ?epsilon ?max_nodes ?candidates ?max_combos ?stats g demands =
  joint_ctx (Obs.Ctx.make ?stats ()) ?wmax ?epsilon ?max_nodes ?candidates
    ?max_combos g demands
