open Netgraph
module Simplex = Linprog.Simplex

type commodity = { src : int; dst : int; demand : float }

let commodity src dst demand =
  if src = dst then invalid_arg "Mcf.commodity: src = dst";
  if not (demand > 0.) then invalid_arg "Mcf.commodity: demand must be positive";
  { src; dst; demand }

(* Explicit integer comparator: no polymorphic [compare] and no
   [Hashtbl] keying on tuples, so commodity order (and therefore LP
   column order and degenerate-optimum selection) is reproducible. *)
let compare_pair a b =
  let c = Int.compare a.src b.src in
  if c <> 0 then c else Int.compare a.dst b.dst

let aggregate comms =
  let sorted = Array.copy comms in
  Array.stable_sort compare_pair sorted;
  (* Stable sort keeps equal keys in occurrence order, so per-pair
     demands are summed in the same order they appear in the input. *)
  let out = ref [] in
  Array.iter
    (fun c ->
      match !out with
      | hd :: tl when hd.src = c.src && hd.dst = c.dst ->
        out := { hd with demand = hd.demand +. c.demand } :: tl
      | _ -> out := c :: !out)
    sorted;
  Array.of_list (List.rev !out)

let check_routable g comms =
  Array.iter
    (fun c ->
      if not (Paths.reachable g ~source:c.src).(c.dst) then
        failwith
          (Printf.sprintf "Mcf: demand %d->%d is not routable" c.src c.dst))
    comms

(* ------------------------------------------------------------------ *)
(* Exact LP                                                             *)
(* ------------------------------------------------------------------ *)

(* The min-MLU LP in destination-aggregated form, built directly as a
   sparse bounded problem (no dense coefficient lists):
   variables 0 = U, then f_{t,e} = 1 + ti*m + e, all in [0, inf). *)
let build_mlu_lp g comms =
  let n = Digraph.node_count g and m = Digraph.edge_count g in
  let targets =
    List.sort_uniq Int.compare (Array.to_list (Array.map (fun c -> c.dst) comms))
  in
  let tindex = Hashtbl.create 16 in
  List.iteri (fun i t -> Hashtbl.replace tindex t i) targets;
  let nt = List.length targets in
  let fvar ti e = 1 + (ti * m) + e in
  let supply = Array.make_matrix nt n 0. in
  Array.iter
    (fun c ->
      let ti = Hashtbl.find tindex c.dst in
      supply.(ti).(c.src) <- supply.(ti).(c.src) +. c.demand)
    comms;
  let b = Simplex.Sparse.builder ~minimize:true (1 + (nt * m)) in
  Simplex.Sparse.set_obj b 0 1.;
  (* Flow conservation per (target, node <> target): out - in = supply. *)
  List.iteri
    (fun ti t ->
      for v = 0 to n - 1 do
        if v <> t then begin
          let row = ref [] in
          Digraph.iter_out g v (fun e -> row := (fvar ti e, 1.) :: !row);
          Digraph.iter_in g v (fun e -> row := (fvar ti e, -1.) :: !row);
          Simplex.Sparse.add_row b !row Simplex.Eq supply.(ti).(v)
        end
      done)
    targets;
  (* Capacity: sum_t f_{t,e} - U * c_e <= 0. *)
  for e = 0 to m - 1 do
    let row = ref [ (0, -.Digraph.cap g e) ] in
    for ti = 0 to nt - 1 do
      row := (fvar ti e, 1.) :: !row
    done;
    Simplex.Sparse.add_row b !row Simplex.Le 0.
  done;
  Simplex.Sparse.finish b

type warm_solve = {
  value : float;
  basis : Simplex.Sparse.basis;
  pivots : int;
  warm : bool;
  edge_flows : float array;
}

(* The LP's variable layout is 0 = U, then f_{t,e} = 1 + ti*m + e; the
   per-edge optimal flow is the sum over targets of that edge's
   aggregated flow variables.  Read straight off the simplex solution —
   no extra solve, and deterministic because the target order (and so
   the summation order) is the sorted order [build_mlu_lp] fixed. *)
let edge_flows_of_solution g comms solution =
  let m = Digraph.edge_count g in
  let nt =
    List.length
      (List.sort_uniq Int.compare
         (Array.to_list (Array.map (fun c -> c.dst) comms)))
  in
  let flows = Array.make m 0. in
  for ti = 0 to nt - 1 do
    for e = 0 to m - 1 do
      flows.(e) <- flows.(e) +. solution.(1 + (ti * m) + e)
    done
  done;
  flows

let opt_mlu_lp_warm_ext ?basis g comms =
  let comms = aggregate comms in
  check_routable g comms;
  let p = build_mlu_lp g comms in
  match Simplex.Sparse.solve ?basis p with
  | Simplex.Sparse.Optimal { value; basis = b; iters; solution } ->
    { value; basis = b; pivots = iters; warm = basis <> None;
      edge_flows = edge_flows_of_solution g comms solution }
  | Simplex.Sparse.Infeasible ->
    failwith "Mcf.opt_mlu_lp: infeasible (unroutable demand?)"
  | Simplex.Sparse.Unbounded -> failwith "Mcf.opt_mlu_lp: unbounded (internal error)"
  | Simplex.Sparse.CycleLimit _ ->
    failwith "Mcf.opt_mlu_lp: simplex iteration limit exceeded"

let opt_mlu_lp_warm ?basis g comms =
  let r = opt_mlu_lp_warm_ext ?basis g comms in
  (r.value, r.basis)

let opt_mlu_lp g comms = fst (opt_mlu_lp_warm g comms)

(* ------------------------------------------------------------------ *)
(* Fleischer / Garg–Könemann FPTAS                                      *)
(* ------------------------------------------------------------------ *)

(* One GK run on demands scaled UP by [phi]; since lambda scales
   inversely with demand size, the run's concurrent-flow factor is
   lambda/phi and the returned estimate (completed phases divided by
   log_{1+eps}(1/delta)) lower-bounds it.  Aborts once [max_phases]
   phases complete (returning the estimate so far) so the doubling
   driver can re-scale cheaply. *)
let gk_run g comms ~epsilon ~phi ~max_phases =
  let m = Digraph.edge_count g in
  let delta = (float_of_int m /. (1. -. epsilon)) ** (-1. /. epsilon) in
  let len = Array.init m (fun e -> delta /. Digraph.cap g e) in
  let dsum = ref (delta *. float_of_int m) in
  (* = sum_e c_e * len_e *)
  let by_source = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      let cur = try Hashtbl.find by_source c.src with Not_found -> [] in
      Hashtbl.replace by_source c.src ((c.dst, c.demand *. phi) :: cur))
    comms;
  let sources = Hashtbl.fold (fun s _ acc -> s :: acc) by_source [] in
  let sources = List.sort Int.compare sources in
  let phases = ref 0 in
  let aborted = ref false in
  while !dsum < 1. && not !aborted do
    List.iter
      (fun s ->
        List.iter
          (fun (t, dk) ->
            let rem = ref dk in
            while !rem > 1e-15 && !dsum < 1. do
              (* Shortest path s -> t under the current lengths. *)
              match Paths.shortest_path g ~weights:len ~source:s ~target:t with
              | None ->
                failwith
                  (Printf.sprintf "Mcf: demand %d->%d is not routable" s t)
              | Some path ->
                let bottleneck =
                  List.fold_left
                    (fun acc e -> min acc (Digraph.cap g e))
                    infinity path
                in
                let f = min !rem bottleneck in
                rem := !rem -. f;
                List.iter
                  (fun e ->
                    let c = Digraph.cap g e in
                    let old = len.(e) in
                    len.(e) <- old *. (1. +. (epsilon *. f /. c));
                    dsum := !dsum +. (c *. (len.(e) -. old)))
                  path
            done)
          (Hashtbl.find by_source s))
      sources;
    if !dsum < 1. then begin
      incr phases;
      if !phases >= max_phases then aborted := true
    end
  done;
  let log_ratio = log (1. /. delta) /. log (1. +. epsilon) in
  (float_of_int !phases /. log_ratio, !aborted)

let max_concurrent_flow ?(epsilon = 0.1) g comms =
  if Array.length comms = 0 then invalid_arg "Mcf.max_concurrent_flow: no commodities";
  let comms = aggregate comms in
  check_routable g comms;
  (* Initial scale estimate from trivial cut bounds: lambda is at most
     min_k min(out-cap(src), in-cap(dst)) / d_k. *)
  let cap_out v =
    let acc = ref 0. in
    Digraph.iter_out g v (fun e -> acc := !acc +. Digraph.cap g e);
    !acc
  and cap_in v =
    let acc = ref 0. in
    Digraph.iter_in g v (fun e -> acc := !acc +. Digraph.cap g e);
    !acc
  in
  let ub =
    Array.fold_left
      (fun acc c -> min acc (min (cap_out c.src) (cap_in c.dst) /. c.demand))
      infinity comms
  in
  (* Doubling search from above with a coarse epsilon: find phi with
     lambda/phi in [1, 4), then refine. *)
  let coarse_eps = 0.5 in
  let rec coarse phi attempts =
    if attempts > 60 then phi
    else begin
      let est, aborted = gk_run g comms ~epsilon:coarse_eps ~phi ~max_phases:200 in
      if aborted then coarse (phi *. max 2. est) (attempts + 1)
      else if est < 1. then coarse (phi /. 2.) (attempts + 1)
      else if est >= 4. then coarse (phi *. (est /. 1.5)) (attempts + 1)
      else phi *. est /. 1.5
    end
  in
  let phi0 = coarse ub 0 in
  (* Final accurate run: lambda/phi0 is near 1.5, so the phase count is
     about 1.5 * log_{1+eps}(1/delta).  The phase cap guards against a
     bad coarse estimate; an aborted run still yields a valid (slightly
     low) lower bound since the scaled GK flow is primal feasible. *)
  let delta = (float_of_int (Digraph.edge_count g) /. (1. -. epsilon)) ** (-1. /. epsilon) in
  let log_ratio = log (1. /. delta) /. log (1. +. epsilon) in
  let max_phases = int_of_float (6. *. log_ratio) + 2 in
  let est, aborted = gk_run g comms ~epsilon ~phi:phi0 ~max_phases in
  if aborted then
    Logs.warn (fun k ->
        k "Mcf.max_concurrent_flow: phase cap hit; result is a lower bound");
  est *. phi0

let opt_mlu ?(epsilon = 0.1) ?(lp_var_limit = 3000) g comms =
  let comms = aggregate comms in
  check_routable g comms;
  match comms with
  | [| c |] ->
    (* Single source-target pair: OPT = D / maxflow (§2.1). *)
    let f = Maxflow.max_flow g ~source:c.src ~target:c.dst in
    c.demand /. f.Maxflow.value
  | _ ->
    let all_same =
      let c0 = comms.(0) in
      Array.for_all (fun c -> c.src = c0.src && c.dst = c0.dst) comms
    in
    if all_same then begin
      let c0 = comms.(0) in
      let d = Array.fold_left (fun acc c -> acc +. c.demand) 0. comms in
      let f = Maxflow.max_flow g ~source:c0.src ~target:c0.dst in
      d /. f.Maxflow.value
    end
    else begin
      let m = Digraph.edge_count g in
      let targets =
        List.sort_uniq Int.compare
          (Array.to_list (Array.map (fun c -> c.dst) comms))
      in
      let nvars = 1 + (List.length targets * m) in
      if nvars <= lp_var_limit then opt_mlu_lp g comms
      else 1. /. max_concurrent_flow ~epsilon g comms
    end
