(** Multi-commodity flow: the paper's [OPT] (§2.1), the min-MLU flow with
    no routing restriction.

    [OPT] relates to maximum concurrent flow: if [lambda] is the largest
    factor such that [lambda *. d_k] is simultaneously routable within
    capacities, then the minimum MLU for demands [d_k] is [1 /. lambda].
    Small instances are solved exactly by LP (destination-aggregated);
    large ones by the Fleischer variant of the Garg–Könemann FPTAS. *)

type commodity = { src : int; dst : int; demand : float }

val commodity : int -> int -> float -> commodity

val aggregate : commodity array -> commodity array
(** Merge commodities sharing (src, dst).  Output is sorted by
    [(src, dst)] under explicit integer comparison and per-pair demands
    are summed in input occurrence order, so the result (and the LP
    column order derived from it) is deterministic. *)

val opt_mlu_lp : Netgraph.Digraph.t -> commodity array -> float
(** Exact minimum MLU via the LP
    [min U  s.t. flow conservation, sum_k f_k(e) <= U c(e)],
    solved by the sparse revised simplex on a directly-built bounded
    problem.  Intended for small and medium instances (|targets| * |E|
    up to tens of thousands of variables).
    @raise Failure if some demand is not routable. *)

val opt_mlu_lp_warm :
  ?basis:Linprog.Simplex.Sparse.basis ->
  Netgraph.Digraph.t ->
  commodity array ->
  float * Linprog.Simplex.Sparse.basis
(** Like {!opt_mlu_lp}, additionally returning the optimal simplex basis
    and accepting one from a previous solve of the same topology (and
    same commodity pair set), so consecutive nearly-identical LPs — e.g.
    demand-scaling sweeps — re-solve in a handful of pivots.  A stale
    basis never changes the result, only the iteration count. *)

type warm_solve = {
  value : float;  (** the optimal MLU *)
  basis : Linprog.Simplex.Sparse.basis;  (** for the next warm solve *)
  pivots : int;  (** simplex iterations this solve took *)
  warm : bool;  (** whether a caller basis seeded the solve *)
  edge_flows : float array;
      (** per-edge total flow at the LP optimum (summed over the
          destination-aggregated flow variables), read off the simplex
          solution with no extra solve.  These are the "necessary
          capacities" the gradient weight search descends against, and
          give serving loops a per-link view of where the optimum routes
          traffic, not just its MLU. *)
}

val opt_mlu_lp_warm_ext :
  ?basis:Linprog.Simplex.Sparse.basis ->
  Netgraph.Digraph.t ->
  commodity array ->
  warm_solve
(** {!opt_mlu_lp_warm} with the solve effort exposed: [pivots] is the
    simplex iteration count (callers tracking engine statistics record
    it via [Engine.Stats.record_lp_solve]) and [warm] reports whether a
    starting basis was supplied.  Serving loops use this to prove that
    basis reuse across a demand-delta stream actually cuts pivots. *)

val max_concurrent_flow :
  ?epsilon:float -> Netgraph.Digraph.t -> commodity array -> float
(** FPTAS for the maximum concurrent flow factor [lambda]; the result is
    within [(1 - O(epsilon))] of optimal (never above it beyond
    numerical noise).  [epsilon] defaults to [0.1]. *)

val opt_mlu :
  ?epsilon:float -> ?lp_var_limit:int -> Netgraph.Digraph.t ->
  commodity array -> float
(** Minimum MLU.  Dispatches: single source-target pair -> max flow
    (exact); small LP (fewer than [lp_var_limit] variables, default
    3000) -> simplex (exact); otherwise [1 / max_concurrent_flow]. *)
