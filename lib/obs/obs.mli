(** Structured tracing and metrics for the TE solvers.

    The paper's evaluation is about where time goes — local-search
    probes, greedy waypoint scans, MILP nodes — and the flat
    {!Engine.Stats} counter bag cannot answer that per phase.  This
    layer adds:

    - {!Tracer}: named, nested spans stamped with {!Engine.Mono},
      recorded into a bounded per-domain buffer.  Disabled tracing is
      the {!Tracer.noop} value: every instrumented site reduces to a
      tag test, no closure is allocated on the fast path.
    - {!Metrics}: counters / gauges / histograms with a deterministic
      merge, superseding ad-hoc additions to [Engine.Stats].
    - {!Ctx}: the run context every solver entry point takes — stats,
      tracer, metrics, worker pool, RNG seed and an optional deadline —
      replacing the [?stats ?jobs ?seed] optional-argument sprawl.
    - {!Export}: the shared JSON writers ([trace/1] span streams,
      [run-summary/1] digests, and the versioned envelope every
      [BENCH_*.json] is stamped with).

    {2 Determinism under [Par.Pool] fan-out}

    Worker attribution inside a pool is scheduling-dependent, so worker
    domains never write into a shared span buffer.  Instead the
    orchestrating domain {!Tracer.child}s one detached buffer per
    {e task} (restart, scenario, chunk — a deterministic key), hands it
    to whichever worker runs the task, and {!Tracer.graft}s the buffers
    back in key order at the join.  The exported trace is therefore a
    pure function of the task decomposition, not of the schedule:
    byte-identical across [--jobs] once timestamps are stripped
    ([~times:false]). *)

(** Span attributes: typed key/value pairs. *)
module Attr : sig
  type value = Int of int | Float of float | Str of string | Bool of bool

  type t = string * value

  val int : string -> int -> t
  val float : string -> float -> t
  val str : string -> string -> t
  val bool : string -> bool -> t
end

(** The exported view of one closed (or still-open) span. *)
module Span : sig
  type t = {
    id : int;  (** export-order identifier, dense from 0 *)
    parent : int;  (** enclosing span id, [-1] for a root span *)
    depth : int;  (** 0 for root spans *)
    name : string;
    t0 : float;  (** {!Engine.Mono} seconds since the tracer's epoch *)
    dur : float;  (** seconds; [-1.] if the span was never finished *)
    attrs : Attr.t list;  (** in attachment order *)
  }
end

(** Bounded span recorder.  Not thread-safe: one tracer (or child
    buffer) belongs to one domain at a time. *)
module Tracer : sig
  type t

  val noop : t
  (** The disabled tracer: every operation is a constant-time no-op and
    allocates nothing. *)

  val create : ?cap:int -> ?engine_detail:bool -> unit -> t
  (** A live tracer.  [cap] (default [65536]) bounds the number of
      spans each buffer retains; past it, new spans are counted in
      {!dropped} instead of recorded (their children attach to the
      nearest recorded ancestor).  [engine_detail] opts into the
      high-frequency evaluator spans ([ev:*]) via {!probe}. *)

  val enabled : t -> bool
  (** [false] exactly for {!noop}. *)

  val start : t -> string -> int
  (** Opens a span nested under the innermost open span of this buffer
      and returns its token ([-1] if disabled or dropped). *)

  val finish : t -> int -> unit
  (** Closes the span for a {!start} token, stamping its duration.
      Tokens [-1] are ignored.  Finishing out of LIFO order force-pops
      the spans opened since (counted in {!misnested}). *)

  val attr : t -> int -> Attr.t -> unit
  (** Attaches an attribute to the span for a token (ignored on [-1]). *)

  val with_span : t -> ?attrs:Attr.t list -> string -> (unit -> 'a) -> 'a
  (** [with_span t name f] brackets [f] in a span; the span is closed
      (and re-raises) even if [f] raises. *)

  val instant : t -> ?attrs:Attr.t list -> string -> unit
  (** A zero-duration event span. *)

  val child : t -> t
  (** A detached buffer with the parent's [cap] and [engine_detail],
      for one unit of fanned-out work.  {!child} of {!noop} is
      {!noop}. *)

  val graft : t -> key:int -> t -> unit
  (** [graft parent ~key c] attaches child buffer [c] under the
      innermost span currently open in [parent].  At export, children
      of the same attachment point appear sorted by [key] — call it
      with deterministic keys (task index, restart number) and the
      merged trace is schedule-independent.  Grafting [noop] (or onto
      [noop]) is a no-op. *)

  val probe : t -> Engine.Probe.t
  (** A probe for {!Engine.Evaluator.set_probe} feeding this buffer.
      {!Engine.Probe.null} unless the tracer is live {e and} was
      created with [~engine_detail:true]. *)

  val lp_probe : t -> Linprog.Simplex.probe
  (** The simplex / branch-and-bound hooks ([lp:*] / [milp:*] spans).
      Unlike {!probe} these fire on the orchestrating domain at
      branch-and-bound node granularity, so they are live whenever the
      tracer is — no [engine_detail] opt-in. *)

  val span_count : t -> int
  (** Spans recorded in this buffer and every grafted child. *)

  val dropped : t -> int
  (** Spans discarded because a buffer was at capacity (incl. children). *)

  val misnested : t -> int
  (** Out-of-order {!finish} repairs (incl. children); 0 on a
      well-formed trace. *)

  val spans : t -> Span.t list
  (** The merged forest, flattened deterministically: this buffer's
      spans in recording order, then each grafted child (attachment
      order, then key) with ids renumbered and depths shifted.  Open
      spans appear with [dur = -1.]. *)

  val totals : ?max_depth:int -> t -> (string * float * int) list
  (** Per-name [(total_seconds, count)] over the merged spans of depth
      [<= max_depth] (default: all), sorted by name.  Unfinished spans
      count with zero duration. *)

  val phase_totals : t -> (string * float) list
  (** {!totals} restricted to root spans — the per-phase wall-time
      breakdown of a run. *)
end

(** Counters, gauges and histograms with a deterministic merge. *)
module Metrics : sig
  type t

  val create : unit -> t

  val incr : t -> ?by:int -> string -> unit

  val gauge : t -> string -> float -> unit
  (** Last-write-wins value ({!merge} keeps the merged-in value). *)

  val observe : t -> string -> float -> unit
  (** Adds an observation to the named histogram (decade buckets from
      1e-6, tuned for durations in seconds; min/max/sum/count are exact
      for any scale). *)

  val absorb_stats : t -> Engine.Stats.t -> unit
  (** Imports every [Engine.Stats] counter as an [engine.*] counter and
      every accumulated timer as an [engine.time.*] gauge, so one
      metrics view covers both worlds. *)

  val absorb_pool : t -> Par.Pool.t -> unit
  (** Imports the pool's scheduler counters (steals, parks, regions,
      tasks, park time) as [sched.*] counters/gauges.  They are
      cumulative since pool creation and inherently
      scheduling-dependent, so this is only called on summary export —
      never into a context's live metrics, whose JSON stays
      jobs-invariant. *)

  val merge : into:t -> t -> unit

  val counters : t -> (string * int) list
  (** Sorted by name; likewise {!gauges} / {!histograms}. *)

  val gauges : t -> (string * float) list

  type hist = {
    n : int;
    sum : float;
    min : float;  (** [infinity] when [n = 0] *)
    max : float;  (** [neg_infinity] when [n = 0] *)
    buckets : (float * int) list;  (** (upper bound, count), last is +inf *)
  }

  val histograms : t -> (string * hist) list

  val hist_quantile : hist -> float -> float
  (** Estimated [q]-quantile of a histogram: linear interpolation inside
      the decade bucket holding the rank, clamped to the exact
      [[min, max]] envelope (so it is exact for [n <= 1] and never
      infinite).  [nan] when the histogram is empty. *)

  val to_json : t -> string
  (** One-line JSON object [{"counters":{...},"gauges":{...},
      "histograms":{...}}] with keys sorted; each histogram carries
      estimated [p50] / [p99] quantiles next to the exact
      n/sum/min/max/counts. *)
end

(** The solver run context. *)
module Ctx : sig
  type t = {
    stats : Engine.Stats.t;
    tracer : Tracer.t;
    metrics : Metrics.t;
    pool : Par.Pool.t;
    clones : Engine.Evaluator.Clones.cache;
        (** persistent per-worker evaluator clones, reused (delta-synced)
            across every fan-out issued through this context — including
            successive updates of a long-running server holding one
            context.  Touched only by the orchestrating domain. *)
    seed : int;
    deadline : float option;
        (** absolute {!Engine.Mono} time; advisory — solvers that honor
            it check {!expired} at a coarse granularity (outer rounds)
            so runs without a deadline stay deterministic *)
  }

  val make :
    ?stats:Engine.Stats.t ->
    ?tracer:Tracer.t ->
    ?metrics:Metrics.t ->
    ?pool:Par.Pool.t ->
    ?seed:int ->
    ?deadline:float ->
    unit ->
    t
  (** Defaults: fresh stats and metrics, {!Tracer.noop},
      {!Par.Pool.sequential}, seed [0], no deadline — equivalent to the
      legacy entry points called with no optional arguments. *)

  val default : unit -> t

  val jobs : t -> int
  (** Worker count of the context's pool. *)

  val expired : t -> bool
  (** Has the deadline passed?  [false] when none is set. *)

  val span : t -> ?attrs:Attr.t list -> string -> (unit -> 'a) -> 'a
  (** {!Tracer.with_span} on the context's tracer. *)

  val phase : t -> string -> (unit -> 'a) -> 'a
  (** A root-level phase: a span {e and} an {!Engine.Stats.time}
      accumulator of the same name, so phase totals survive even when
      tracing is off. *)

  val probe : t -> Engine.Probe.t

  val fork : t -> t
  (** A context for one unit of fanned-out work: fresh stats and
      metrics, a {!Tracer.child} buffer and a fresh (empty) clone
      cache; pool, seed and deadline are shared.  Merge back with
      {!join}. *)

  val join : key:int -> into:t -> t -> unit
  (** Merges a forked context back: stats and metrics merge, the span
      buffer grafts under [key].  Call in deterministic key order. *)
end

(** Versioned JSON artifact writers (shared by te-tool and bench). *)
module Export : sig
  val git_rev : unit -> string
  (** Current commit hash, read from [.git] directly; ["unknown"]
      outside a repository. *)

  val host_cores : unit -> int

  val json_str : string -> string
  (** JSON string literal with escaping. *)

  val envelope :
    schema:string -> ?fields:(string * string) list -> string list -> string
  (** The shared artifact envelope: [{"schema":<schema>,"git_rev":...,
      "host_cores":...,<fields>,"records":[...]}].  [fields] values and
      records are pre-rendered JSON. *)

  val write_envelope :
    path:string ->
    schema:string ->
    ?fields:(string * string) list ->
    string list ->
    unit

  val trace_lines : ?times:bool -> Tracer.t -> string list
  (** The [trace/1] JSONL stream: a header object (schema + provenance
      + span/drop counts), then one object per span of
      {!Tracer.spans}.  [~times:false] omits [t0]/[dur] — used by the
      determinism tests to compare traces byte-for-byte across
      [--jobs]. *)

  val write_trace : ?times:bool -> path:string -> Tracer.t -> unit

  val run_summary :
    ?wall:float -> ?extra:(string * string) list -> Ctx.t -> string
  (** The [run-summary/1] digest of a finished run: provenance, jobs,
      wall seconds ([wall] defaults to the sum of root-span times),
      per-phase seconds with their coverage of the wall time, engine
      counters and timers, parallel efficiency, metrics, span/drop
      counts.  [extra] appends pre-rendered JSON fields. *)

  val write_run_summary :
    ?wall:float -> ?extra:(string * string) list -> path:string -> Ctx.t -> unit
end
