(* Structured tracing/metrics.  See obs.mli for the design contract;
   the load-bearing invariant throughout is determinism: exported span
   streams and metric dumps must be pure functions of the computation,
   never of worker scheduling, so fan-out work records into detached
   child buffers grafted back under deterministic keys. *)

module Mono = Engine.Mono
module Stats = Engine.Stats

module Attr = struct
  type value = Int of int | Float of float | Str of string | Bool of bool

  type t = string * value

  let int k v = (k, Int v)

  let float k v = (k, Float v)

  let str k v = (k, Str v)

  let bool k v = (k, Bool v)
end

module Span = struct
  type t = {
    id : int;
    parent : int;
    depth : int;
    name : string;
    t0 : float;
    dur : float;
    attrs : Attr.t list;
  }
end

module Tracer = struct
  (* Internal span representation: [parent]/[depth] are buffer-local;
     the export renumbers them across grafted children. *)
  type srec = {
    s_name : string;
    s_parent : int;  (* index in the same buffer, -1 = buffer root *)
    s_depth : int;
    s_t0 : float;
    mutable s_dur : float;  (* -1. while open *)
    mutable s_attrs : Attr.t list;  (* reversed insertion order *)
  }

  type buf = {
    cap : int;
    engine_detail : bool;
    epoch : float;  (* shared with children: t0s are comparable *)
    mutable arr : srec array;
    mutable len : int;
    mutable stack : int list;  (* open span indices, innermost first *)
    mutable dropped : int;
    mutable misnest : int;
    (* grafted children, newest first: (attach index | -1, key, child) *)
    mutable kids : (int * int * buf) list;
  }

  type t = Noop | Buf of buf

  let noop = Noop

  let dummy =
    { s_name = ""; s_parent = -1; s_depth = 0; s_t0 = 0.; s_dur = 0.;
      s_attrs = [] }

  let mk_buf ~cap ~engine_detail ~epoch =
    { cap; engine_detail; epoch; arr = Array.make 64 dummy; len = 0;
      stack = []; dropped = 0; misnest = 0; kids = [] }

  let create ?(cap = 65536) ?(engine_detail = false) () =
    Buf (mk_buf ~cap ~engine_detail ~epoch:(Mono.now ()))

  let enabled = function Noop -> false | Buf _ -> true

  let start t name =
    match t with
    | Noop -> -1
    | Buf b ->
      if b.len >= b.cap then begin
        b.dropped <- b.dropped + 1;
        -1
      end
      else begin
        if b.len = Array.length b.arr then begin
          let bigger =
            Array.make (min b.cap (2 * Array.length b.arr)) dummy
          in
          Array.blit b.arr 0 bigger 0 b.len;
          b.arr <- bigger
        end;
        let s_parent, s_depth =
          match b.stack with
          | [] -> (-1, 0)
          | i :: _ -> (i, b.arr.(i).s_depth + 1)
        in
        let s =
          { s_name = name; s_parent; s_depth; s_t0 = Mono.now () -. b.epoch;
            s_dur = -1.; s_attrs = [] }
        in
        b.arr.(b.len) <- s;
        b.stack <- b.len :: b.stack;
        b.len <- b.len + 1;
        b.len - 1
      end

  let finish t tok =
    match t with
    | Noop -> ()
    | Buf b ->
      if tok >= 0 && tok < b.len then begin
        let now = Mono.now () -. b.epoch in
        let s = b.arr.(tok) in
        if s.s_dur < 0. then s.s_dur <- now -. s.s_t0;
        if List.mem tok b.stack then begin
          (* Force-close anything opened after [tok] and left open: the
             trace stays a forest even under misuse. *)
          let rec pop = function
            | [] -> []
            | i :: rest ->
              if i = tok then rest
              else begin
                b.misnest <- b.misnest + 1;
                let a = b.arr.(i) in
                if a.s_dur < 0. then a.s_dur <- now -. a.s_t0;
                pop rest
              end
          in
          b.stack <- pop b.stack
        end
        else b.misnest <- b.misnest + 1
      end

  let attr t tok a =
    match t with
    | Noop -> ()
    | Buf b ->
      if tok >= 0 && tok < b.len then
        b.arr.(tok).s_attrs <- a :: b.arr.(tok).s_attrs

  let with_span t ?(attrs = []) name f =
    match t with
    | Noop -> f ()
    | Buf _ -> (
      let tok = start t name in
      List.iter (fun a -> attr t tok a) attrs;
      match f () with
      | v ->
        finish t tok;
        v
      | exception e ->
        finish t tok;
        raise e)

  let instant t ?(attrs = []) name =
    match t with
    | Noop -> ()
    | Buf _ ->
      let tok = start t name in
      List.iter (fun a -> attr t tok a) attrs;
      finish t tok

  let child = function
    | Noop -> Noop
    | Buf b ->
      Buf (mk_buf ~cap:b.cap ~engine_detail:b.engine_detail ~epoch:b.epoch)

  let graft t ~key c =
    match (t, c) with
    | Buf b, Buf cb ->
      let attach = match b.stack with [] -> -1 | i :: _ -> i in
      b.kids <- (attach, key, cb) :: b.kids
    | _ -> ()

  let probe t =
    match t with
    | Buf b when b.engine_detail ->
      {
        Engine.Probe.enabled = true;
        start = (fun name -> start t name);
        finish = (fun tok -> finish t tok);
      }
    | _ -> Engine.Probe.null

  let lp_probe t =
    match t with
    | Buf _ ->
      {
        Linprog.Simplex.enabled = true;
        start = (fun name -> start t name);
        finish = (fun tok -> finish t tok);
      }
    | Noop -> Linprog.Simplex.null_probe

  let rec fold_bufs f acc = function
    | Noop -> acc
    | Buf b ->
      let acc = f acc b in
      List.fold_left (fun acc (_, _, cb) -> fold_bufs f acc (Buf cb)) acc
        b.kids

  let span_count t = fold_bufs (fun acc b -> acc + b.len) 0 t

  let dropped t = fold_bufs (fun acc b -> acc + b.dropped) 0 t

  let misnested t = fold_bufs (fun acc b -> acc + b.misnest) 0 t

  (* Deterministic flatten: a buffer's own spans in recording order,
     then its grafted children ordered by (attachment point, key,
     graft order), depth-shifted under their attachment span. *)
  let spans t =
    let out = ref [] in
    let counter = ref 0 in
    let rec emit ~parent_id ~depth_shift b =
      let idmap = Array.make (max 1 b.len) (-1) in
      for i = 0 to b.len - 1 do
        let s = b.arr.(i) in
        let id = !counter in
        incr counter;
        idmap.(i) <- id;
        let parent =
          if s.s_parent = -1 then parent_id else idmap.(s.s_parent)
        in
        out :=
          {
            Span.id;
            parent;
            depth = s.s_depth + depth_shift;
            name = s.s_name;
            t0 = s.s_t0;
            dur = s.s_dur;
            attrs = List.rev s.s_attrs;
          }
          :: !out
      done;
      let kids =
        List.stable_sort
          (fun (a1, k1, _) (a2, k2, _) ->
            let c = compare a1 a2 in
            if c <> 0 then c else compare k1 k2)
          (List.rev b.kids)
      in
      List.iter
        (fun (attach, _key, cb) ->
          let pid, dsh =
            if attach = -1 then (parent_id, depth_shift)
            else (idmap.(attach), b.arr.(attach).s_depth + depth_shift + 1)
          in
          emit ~parent_id:pid ~depth_shift:dsh cb)
        kids
    in
    (match t with Noop -> () | Buf b -> emit ~parent_id:(-1) ~depth_shift:0 b);
    List.rev !out

  let totals ?(max_depth = max_int) t =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (s : Span.t) ->
        if s.depth <= max_depth then begin
          let dur, n =
            match Hashtbl.find_opt tbl s.name with
            | Some (d, n) -> (d, n)
            | None -> (0., 0)
          in
          let d = if s.dur < 0. then 0. else s.dur in
          Hashtbl.replace tbl s.name (dur +. d, n + 1)
        end)
      (spans t);
    Hashtbl.fold (fun name (d, n) acc -> (name, d, n) :: acc) tbl []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

  let phase_totals t =
    List.map (fun (name, d, _) -> (name, d)) (totals ~max_depth:0 t)
end

module Metrics = struct
  (* Decade buckets sized for durations in seconds; min/max/sum stay
     exact for observations at any scale. *)
  let bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10.; 100. |]

  type hrec = {
    mutable h_n : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_counts : int array;  (* length bounds + 1; last = overflow *)
  }

  type t = {
    c : (string, int ref) Hashtbl.t;
    g : (string, float ref) Hashtbl.t;
    h : (string, hrec) Hashtbl.t;
  }

  let create () =
    { c = Hashtbl.create 16; g = Hashtbl.create 8; h = Hashtbl.create 8 }

  let incr t ?(by = 1) name =
    match Hashtbl.find_opt t.c name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t.c name (ref by)

  let gauge t name v =
    match Hashtbl.find_opt t.g name with
    | Some r -> r := v
    | None -> Hashtbl.add t.g name (ref v)

  let hrec_create () =
    { h_n = 0; h_sum = 0.; h_min = infinity; h_max = neg_infinity;
      h_counts = Array.make (Array.length bounds + 1) 0 }

  let observe t name v =
    let h =
      match Hashtbl.find_opt t.h name with
      | Some h -> h
      | None ->
        let h = hrec_create () in
        Hashtbl.add t.h name h;
        h
    in
    h.h_n <- h.h_n + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let i = ref 0 in
    while !i < Array.length bounds && v > bounds.(!i) do
      Stdlib.incr i
    done;
    h.h_counts.(!i) <- h.h_counts.(!i) + 1

  let merge ~into src =
    Hashtbl.iter (fun name r -> incr into ~by:!r name) src.c;
    Hashtbl.iter (fun name r -> gauge into name !r) src.g;
    Hashtbl.iter
      (fun name h ->
        let dst =
          match Hashtbl.find_opt into.h name with
          | Some d -> d
          | None ->
            let d = hrec_create () in
            Hashtbl.add into.h name d;
            d
        in
        dst.h_n <- dst.h_n + h.h_n;
        dst.h_sum <- dst.h_sum +. h.h_sum;
        if h.h_min < dst.h_min then dst.h_min <- h.h_min;
        if h.h_max > dst.h_max then dst.h_max <- h.h_max;
        Array.iteri
          (fun i c -> dst.h_counts.(i) <- dst.h_counts.(i) + c)
          h.h_counts)
      src.h

  let absorb_stats t (s : Stats.t) =
    let add name v = if v <> 0 then incr t ~by:v ("engine." ^ name) in
    add "evaluations" s.Stats.evaluations;
    add "full_spf" s.Stats.full_spf;
    add "incr_spf" s.Stats.incr_spf;
    add "spf_nodes_touched" s.Stats.spf_nodes_touched;
    add "dag_hits" s.Stats.dag_hits;
    add "dag_misses" s.Stats.dag_misses;
    add "unit_hits" s.Stats.unit_hits;
    add "unit_misses" s.Stats.unit_misses;
    add "unit_carried" s.Stats.unit_carried;
    add "weight_updates" s.Stats.weight_updates;
    add "dirty_dests" s.Stats.dirty_dests;
    add "clean_dests" s.Stats.clean_dests;
    add "commits" s.Stats.commits;
    add "undos" s.Stats.undos;
    add "scenarios" s.Stats.scenarios;
    add "edges_disabled" s.Stats.edges_disabled;
    add "par_regions" s.Stats.par_regions;
    add "par_tasks" s.Stats.par_tasks;
    add "candidates_pruned" s.Stats.candidates_pruned;
    add "candidates_kept" s.Stats.candidates_kept;
    add "clone_syncs" s.Stats.clone_syncs;
    add "clone_copies" s.Stats.clone_copies;
    add "milp_nodes" s.Stats.milp_nodes;
    add "lp_solves" s.Stats.lp_solves;
    add "lp_pivots" s.Stats.lp_pivots;
    add "lp_warm_solves" s.Stats.lp_warm_solves;
    add "lp_cycle_limits" s.Stats.lp_cycle_limits;
    add "worker_evals_total"
      (Array.fold_left ( + ) 0 s.Stats.worker_evals);
    if s.Stats.par_wall > 0. then gauge t "engine.par_wall" s.Stats.par_wall;
    if s.Stats.par_busy > 0. then gauge t "engine.par_busy" s.Stats.par_busy;
    List.iter
      (fun (name, secs) -> gauge t ("engine.time." ^ name) secs)
      (Stats.timers s)

  (* Scheduler internals, cumulative since the pool was created.  Only
     called on summary export (never into a live [Ctx.metrics]): the
     counters reflect dynamic scheduling, so folding them into a
     context's own metrics would break the jobs-invariance of
     [Metrics.to_json ctx.metrics]. *)
  let absorb_pool t (p : Par.Pool.t) =
    let s = Par.Pool.metrics p in
    let add name v = if v <> 0 then incr t ~by:v ("sched." ^ name) in
    add "steals" s.Par.Pool.steals;
    add "steal_races" s.Par.Pool.steal_races;
    add "parks" s.Par.Pool.parks;
    add "regions" s.Par.Pool.regions;
    add "tasks" s.Par.Pool.tasks;
    add "max_region" s.Par.Pool.max_region;
    if s.Par.Pool.park_seconds > 0. then
      gauge t "sched.park_seconds" s.Par.Pool.park_seconds

  let counters t =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.c []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let gauges t =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.g []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  type hist = {
    n : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
  }

  let histograms t =
    Hashtbl.fold
      (fun name h acc ->
        let buckets =
          List.init
            (Array.length h.h_counts)
            (fun i ->
              let ub =
                if i < Array.length bounds then bounds.(i) else infinity
              in
              (ub, h.h_counts.(i)))
        in
        (name, { n = h.h_n; sum = h.h_sum; min = h.h_min; max = h.h_max;
                 buckets })
        :: acc)
      t.h []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (* Quantile estimate off the decade buckets: find the bucket holding
     the rank and interpolate linearly inside it, clamped to the exact
     [min, max] envelope so single-observation histograms (and the tail
     +inf bucket) stay finite. *)
  let hist_quantile (h : hist) q =
    if h.n = 0 then nan
    else if q <= 0. then h.min
    else if q >= 1. then h.max
    else begin
      let rank = q *. float_of_int h.n in
      let rec go lower cum = function
        | [] -> h.max
        | (ub, c) :: rest ->
          let cum' = cum +. float_of_int c in
          if c > 0 && cum' >= rank then begin
            let lo = Float.max lower h.min in
            let hi = Float.min (if ub = infinity then h.max else ub) h.max in
            let hi = Float.max hi lo in
            lo +. ((rank -. cum) /. float_of_int c *. (hi -. lo))
          end
          else go ub cum' rest
      in
      go 0. 0. h.buckets
    end

  let json_float f =
    if Float.is_nan f then "null"
    else if f = infinity then "1e999"
    else if f = neg_infinity then "-1e999"
    else Printf.sprintf "%.17g" f

  let to_json t =
    let counters =
      counters t
      |> List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v)
      |> String.concat ", "
    in
    let gauges =
      gauges t
      |> List.map (fun (k, v) -> Printf.sprintf "%S: %s" k (json_float v))
      |> String.concat ", "
    in
    let hists =
      histograms t
      |> List.map (fun (k, h) ->
             Printf.sprintf
               "%S: {\"n\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \
                \"p50\": %s, \"p99\": %s, \"counts\": [%s]}"
               k h.n (json_float h.sum) (json_float h.min) (json_float h.max)
               (json_float (hist_quantile h 0.5))
               (json_float (hist_quantile h 0.99))
               (String.concat ", "
                  (List.map (fun (_, c) -> string_of_int c) h.buckets)))
      |> String.concat ", "
    in
    Printf.sprintf
      "{\"counters\": {%s}, \"gauges\": {%s}, \"histograms\": {%s}}" counters
      gauges hists
end

module Ctx = struct
  type t = {
    stats : Stats.t;
    tracer : Tracer.t;
    metrics : Metrics.t;
    pool : Par.Pool.t;
    clones : Engine.Evaluator.Clones.cache;
    seed : int;
    deadline : float option;
  }

  let make ?stats ?(tracer = Tracer.noop) ?metrics ?(pool = Par.Pool.sequential)
      ?(seed = 0) ?deadline () =
    {
      stats = (match stats with Some s -> s | None -> Stats.create ());
      tracer;
      metrics = (match metrics with Some m -> m | None -> Metrics.create ());
      pool;
      clones = Engine.Evaluator.Clones.create ();
      seed;
      deadline;
    }

  let default () = make ()

  let jobs t = Par.Pool.jobs t.pool

  let expired t =
    match t.deadline with None -> false | Some d -> Mono.now () > d

  let span t ?attrs name f = Tracer.with_span t.tracer ?attrs name f

  let phase t name f =
    Tracer.with_span t.tracer name (fun () ->
        Stats.time t.stats ("phase:" ^ name) f)

  let probe t = Tracer.probe t.tracer

  let fork t =
    {
      t with
      stats = Stats.create ();
      metrics = Metrics.create ();
      tracer = Tracer.child t.tracer;
      (* forked kids run inside the parent's fan-out (parallelism 1),
         so they never populate a cache — a fresh one avoids any chance
         of two domains touching the parent's slots *)
      clones = Engine.Evaluator.Clones.create ();
    }

  let join ~key ~into forked =
    Stats.merge ~into:into.stats forked.stats;
    Metrics.merge ~into:into.metrics forked.metrics;
    Tracer.graft into.tracer ~key forked.tracer
end

module Export = struct
  (* The current git revision, read straight from .git (no subprocess):
     HEAD is either a hash or "ref: <path>", and the ref lives in its
     own file or in packed-refs. *)
  let git_rev () =
    let read_line path =
      try
        let ic = open_in path in
        let l = try input_line ic with End_of_file -> "" in
        close_in ic;
        Some (String.trim l)
      with Sys_error _ -> None
    in
    let packed_ref name =
      try
        let ic = open_in (Filename.concat ".git" "packed-refs") in
        let found = ref None in
        (try
           while !found = None do
             let l = input_line ic in
             match String.index_opt l ' ' with
             | Some i when String.sub l (i + 1) (String.length l - i - 1) = name
               ->
               found := Some (String.sub l 0 i)
             | _ -> ()
           done
         with End_of_file -> ());
        close_in ic;
        !found
      with Sys_error _ -> None
    in
    match read_line (Filename.concat ".git" "HEAD") with
    | None -> "unknown"
    | Some head ->
      if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
        let name = String.trim (String.sub head 5 (String.length head - 5)) in
        match read_line (Filename.concat ".git" name) with
        | Some sha when sha <> "" -> sha
        | _ -> ( match packed_ref name with Some sha -> sha | None -> "unknown")
      end
      else if head <> "" then head
      else "unknown"

  let host_cores () = Domain.recommended_domain_count ()

  let json_str s =
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b

  let json_float = Metrics.json_float

  let provenance () =
    [
      ("git_rev", json_str (git_rev ()));
      ("host_cores", string_of_int (host_cores ()));
    ]

  let envelope ~schema ?(fields = []) records =
    let fields =
      (("schema", json_str schema) :: provenance ()) @ fields
    in
    Printf.sprintf "{%s, \"records\": [\n%s\n]}\n"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields))
      (String.concat ",\n" records)

  let write_envelope ~path ~schema ?fields records =
    let oc = open_out path in
    output_string oc (envelope ~schema ?fields records);
    close_out oc

  let attr_json (k, v) =
    Printf.sprintf "%s: %s" (json_str k)
      (match v with
      | Attr.Int i -> string_of_int i
      | Attr.Float f -> json_float f
      | Attr.Str s -> json_str s
      | Attr.Bool b -> if b then "true" else "false")

  let span_json ~times (s : Span.t) =
    let b = Buffer.create 96 in
    Buffer.add_string b
      (Printf.sprintf "{\"id\": %d, \"parent\": %d, \"depth\": %d, \"name\": %s"
         s.id s.parent s.depth (json_str s.name));
    if times then
      Buffer.add_string b
        (Printf.sprintf ", \"t0\": %s, \"dur\": %s" (json_float s.t0)
           (json_float s.dur));
    if s.attrs <> [] then
      Buffer.add_string b
        (Printf.sprintf ", \"attrs\": {%s}"
           (String.concat ", " (List.map attr_json s.attrs)));
    Buffer.add_char b '}';
    Buffer.contents b

  let trace_lines ?(times = true) t =
    let header =
      let fields =
        (("schema", json_str "trace/1") :: provenance ())
        @ [
            ("spans", string_of_int (Tracer.span_count t));
            ("dropped", string_of_int (Tracer.dropped t));
            ("misnested", string_of_int (Tracer.misnested t));
          ]
      in
      Printf.sprintf "{%s}"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields))
    in
    header :: List.map (span_json ~times) (Tracer.spans t)

  let write_trace ?times ~path t =
    let oc = open_out path in
    List.iter
      (fun l ->
        output_string oc l;
        output_char oc '\n')
      (trace_lines ?times t);
    close_out oc

  let run_summary ?wall ?(extra = []) (ctx : Ctx.t) =
    let phases = Tracer.phase_totals ctx.Ctx.tracer in
    let phase_sum = List.fold_left (fun a (_, d) -> a +. d) 0. phases in
    let wall = match wall with Some w -> w | None -> phase_sum in
    let coverage = if wall > 0. then phase_sum /. wall else nan in
    let m = Metrics.create () in
    Metrics.merge ~into:m ctx.Ctx.metrics;
    Metrics.absorb_stats m ctx.Ctx.stats;
    Metrics.absorb_pool m ctx.Ctx.pool;
    let fields =
      (("schema", json_str "run-summary/1") :: provenance ())
      @ [
          ("jobs", string_of_int (Ctx.jobs ctx));
          ("wall_seconds", json_float wall);
          ( "phases",
            Printf.sprintf "{%s}"
              (String.concat ", "
                 (List.map
                    (fun (name, d) ->
                      Printf.sprintf "%s: %s" (json_str name) (json_float d))
                    phases)) );
          ("phase_seconds", json_float phase_sum);
          ("phase_coverage", json_float coverage);
          ( "parallel_efficiency",
            json_float (Stats.parallel_efficiency ctx.Ctx.stats) );
          ("spans", string_of_int (Tracer.span_count ctx.Ctx.tracer));
          ("spans_dropped", string_of_int (Tracer.dropped ctx.Ctx.tracer));
          ("metrics", Metrics.to_json m);
        ]
      @ extra
    in
    Printf.sprintf "{%s}\n"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields))

  let write_run_summary ?wall ?extra ~path ctx =
    let oc = open_out path in
    output_string oc (run_summary ?wall ?extra ctx);
    close_out oc
end
