(** Streaming robustness sweeps: failures x demand shifts x policies.

    The paper evaluates joint weight/waypoint settings on a fixed demand
    matrix; its closing section asks how such settings behave "under
    shifts in the traffic demand" and network changes (§8).  This
    subsystem answers the measurement half of that question: given a
    {e deployed} setting, enumerate a deterministic grid of what-if
    scenarios — link failures (single, SRLG, sampled dual), demand
    perturbations (uniform scale, lognormal jitter, hot spots, diurnal
    phases) or both — evaluate every scenario under one or more reaction
    policies, and distill the results into a robustness report.

    Evaluation streams through the incremental engine: scenarios fan out
    over a {!Par.Pool} in fixed-size chunks, each worker probing its own
    {!Engine.Evaluator.copy} clone.  A failed link is an
    {!Engine.Evaluator.disable_edge} (infinite weight) probed and undone
    through the move protocol, so consecutive scenarios on a worker
    share every shortest-path DAG, unit-flow vector and load cache the
    failure did not touch — no per-scenario graph rebuild.

    Determinism: every scenario's outcome is a pure function of its
    {!spec} (all randomness is fixed into the spec at generation time),
    and specs are evaluated independently, so sweep results are
    bit-identical for every pool size and chunking.  Reports contain no
    timings for the same reason. *)

(** {1 Scenario grammar} *)

type shift =
  | No_shift
  | Uniform of float  (** every demand scaled by the factor *)
  | Jitter of { seed : int; sigma : float }
      (** i.i.d. lognormal factor [exp(sigma * N(0,1))] per demand *)
  | Hotspot of { seed : int; pairs : int; factor : float }
      (** [pairs] random demands scaled by [factor] *)
  | Diurnal of { level : float }
      (** time-of-day [level] in [0,1): each demand scaled by a sinus of
          the level plus a source-dependent phase (cities peak at
          different hours), factors within [0.4, 1.2] *)

type spec = {
  id : int;  (** index in the generated array; the report's scenario id *)
  failed : int list;  (** failed edge ids (original graph), may be [] *)
  shift : shift;
}
(** One scenario.  Self-contained: seeds are baked in at generation
    time, so a spec evaluates to the same outcome no matter when, where
    or in which order it is run. *)

type config = {
  seed : int;  (** master seed; dual sampling and per-shift seeds derive from it *)
  fail_pairs : bool;  (** fail a link together with its reverse twin *)
  include_baseline : bool;  (** include the (no failure, nominal) scenario *)
  single_failures : bool;  (** include every single-link failure case *)
  dual_failures : int;  (** sampled distinct pairs of single-failure cases *)
  srlgs : int list list;  (** shared-risk link groups failing together *)
  scales : float list;  (** uniform demand scale factors (> 0) *)
  jitters : int;  (** lognormal jitter draws *)
  jitter_sigma : float;
  hotspots : int;  (** hot-spot burst draws *)
  hotspot_pairs : int;
  hotspot_factor : float;
  diurnal : int;  (** diurnal levels, evenly spaced over the day *)
  cross : bool;
      (** if set, take the full failure x shift product; otherwise each
          failure runs on nominal demands and each shift on the intact
          topology *)
}

val default_config : config
(** Seed 1; paired single failures plus the baseline; no duals, SRLGs or
    demand shifts; [jitter_sigma = 0.25], [hotspot_pairs = 3],
    [hotspot_factor = 3.], no cross product. *)

val generate : config -> Netgraph.Digraph.t -> spec array
(** The deterministic scenario grid for this configuration, ids
    [0 .. n-1].  Baseline first, then failure cases (singles in edge-id
    order, then SRLGs, then sampled duals), then demand shifts; with
    [cross] the product is emitted failure-major.
    @raise Invalid_argument on a non-positive scale or factor, a
    negative count, or an SRLG edge outside the graph. *)

val apply_shift : shift -> Te.Network.demand array -> Te.Network.demand array
(** The shifted demand matrix.  [No_shift] returns the input array
    itself (physical equality lets the sweep skip re-attaching
    commodities); every other shift builds a fresh array and touches
    only the sizes.  Pure: same shift, same demands, same result. *)

val spec_label : Netgraph.Digraph.t -> spec -> string
(** Human-readable label, e.g. ["fail:A>B+B>A jitter#0 s=0.25"]. *)

(** {1 Serving replays} *)

type replay = {
  replay_seed : int;  (** drives flash-crowd windows and pair picks *)
  steps : int;  (** diurnal steps; at most one [delta] event each *)
  days : float;  (** diurnal periods the steps sweep through *)
  flash_crowds : int;  (** independent flash-crowd bursts *)
  flash_pairs : int;  (** demands scaled per burst *)
  flash_factor : float;  (** burst multiplier *)
  flash_len : int;  (** steps a burst stays active *)
  report_every : int;  (** a [report] event every k steps; 0 = never *)
  quit : bool;  (** end the trace with a [quit] event *)
}

val default_replay : replay
(** Seed 1, 100 steps over one day, two 8-step flash crowds scaling 3
    pairs by 3x, no reports, trailing [quit]. *)

val replay_events : replay -> Te.Network.demand array -> string list
(** Renders the diurnal + flash-crowd drift of the (aggregated) base
    matrix into [serve/1] event JSONL lines for [te-tool serve]: one
    [{"ev":"delta","changes":[...]}] line per step carrying the entries
    whose absolute size changed since the previous step (steps where
    nothing moves emit no line), interleaved [report]s, and a final
    [quit] when requested.  The daemon must be booted on the same base
    matrix for step 0's delta to mean what it says.  Deterministic:
    same replay record + same demands = byte-identical lines.
    @raise Invalid_argument on non-positive [steps] or flash factor, or
    negative counts. *)

(** {1 Policies} *)

type policy =
  | Static  (** keep the deployed setting, let ECMP reconverge *)
  | Repair
      (** keep the weights, re-run GreedyWPO on the surviving topology;
          deployed only when it beats the static outcome *)
  | Reweight of int
      (** re-optimize at most [k] link weights around the deployed
          setting ({!Te.Reopt.reoptimize}), then re-pick waypoints *)

val policy_name : policy -> string
(** ["static"], ["repair"], ["reweight:k"]. *)

val policies_of_string : string -> policy list
(** Parses a comma-separated list, e.g. ["static,repair,reweight:3"].
    @raise Invalid_argument on an unknown policy or malformed budget. *)

type deployed = {
  weights : int array;  (** the deployed integer link weights *)
  waypoints : Te.Segments.setting;  (** the deployed waypoint setting *)
}

(** {1 Sweep} *)

type policy_outcome = {
  policy : policy;
  disconnected : int;
      (** demands this policy cannot route in the scenario *)
  mlu : float;  (** [nan] iff [disconnected > 0] *)
  weight_changes : int;  (** links re-weighted by the policy *)
  waypoint_changes : int;  (** demands whose waypoints the policy changed *)
}

type outcome = {
  spec : spec;
  static_disconnected : int;
      (** demands whose deployed segment path is broken *)
  topo_disconnected : int;
      (** demands disconnected at the topology level — no policy can
          route these ([topo_disconnected <= static_disconnected]) *)
  static_mlu : float;  (** [nan] iff [static_disconnected > 0] *)
  policies : policy_outcome list;  (** one entry per requested policy *)
}

val sweep_ctx :
  Obs.Ctx.t ->
  ?chunk:int ->
  ?policies:policy list ->
  ?reopt_evals:int ->
  deployed:deployed ->
  Netgraph.Digraph.t ->
  Te.Network.demand array ->
  spec array ->
  outcome array
(** The context-taking entry point: evaluates every spec, in id order.
    [policies] defaults to [[Static]]; the static fields of each
    outcome are computed regardless.  [chunk] (default 4) sizes the
    streaming blocks handed to {!Par.Pool.map_chunked}; results are
    bit-identical for every pool size and [chunk].  [reopt_evals]
    (default 400) is the per-scenario search budget of [Reweight]; its
    local-search seed derives from the spec id, never from scheduling.

    Each scenario runs under its own forked child context: one
    ["scn:case"] span (with a ["spec"] attribute) containing one
    ["scn:policy:<name>"] span per requested policy (in turn containing
    the reacting optimizer's own spans), and per-case [scn.cases] /
    [scn.disconnected] metric ticks.  Children graft back in spec-id
    order, so the trace and metrics are bit-identical for every pool
    size too.

    Policy semantics on disconnection: [Static] reports the deployed
    segments' disconnections; [Repair] re-routes everything the
    surviving topology allows (its count is [topo_disconnected]);
    [Reweight] keeps the deployed waypoints and is skipped (reported
    disconnected) when the deployed segments are broken.  The context's
    stats accumulate engine counters from all workers, one
    {!Engine.Stats.record_scenario} tick per spec. *)

val static_sweep_rebuild :
  deployed:deployed ->
  Netgraph.Digraph.t ->
  Te.Network.demand array ->
  spec array ->
  (float * int) array
(** The rebuild oracle: evaluates the [Static] policy of every spec via
    {!Te.Failures.rebuild_outcome} (fresh subgraph and ECMP state per
    scenario).  Must agree with the static fields of {!sweep}; kept as
    the test oracle and the baseline the robustness bench measures the
    engine path against. *)

(** {1 Report} *)

type summary = {
  policy : policy;
  scenarios : int;
  disconnected_scenarios : int;
  worst_mlu : float;  (** worst finite MLU; [nan] if none *)
  worst_id : int;
      (** spec id of the most severe scenario (disconnections outrank
          any MLU; ties keep the lowest id); [-1] if no scenarios *)
  mean_mlu : float;
  p50 : float;
  p95 : float;
  p99 : float;  (** nearest-rank percentiles over finite MLUs *)
  cvar95 : float;  (** mean of the worst 5% of finite MLUs *)
  mean_weight_changes : float;
  mean_waypoint_changes : float;
  delta_worst : float;  (** worst_mlu - static worst_mlu (0 for static) *)
  delta_mean : float;
}

type report = {
  topology : string;
  nominal_mlu : float;  (** deployed setting on nominal demands *)
  scenario_count : int;
  summaries : summary list;  (** static first, then requested order *)
  worst_cases : (spec * float * int) list;
      (** up to five most severe static outcomes: spec, MLU, disconnected *)
}

val summarize :
  topology:string -> nominal_mlu:float -> outcome array -> report

val report_to_json : Netgraph.Digraph.t -> report -> string
(** Serializes the report (schema ["robustness-report/1"]).  [nan]
    becomes [null]; floats print with 17 significant digits, so equal
    reports serialize to equal bytes.  The graph is only used to label
    the worst-case scenarios. *)
